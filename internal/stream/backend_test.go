package stream

import (
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/models"
	"repro/internal/pipeline"
)

// quantBundle trains a PTQ-quantized bundle once for the backend tests.
var quantBundle = func() func(t *testing.T) *models.Bundle {
	var once sync.Once
	var b *models.Bundle
	return func(t *testing.T) *models.Bundle {
		t.Helper()
		once.Do(func() {
			cfg := datagen.DefaultConfig(81)
			cfg.BurstsPerAngle = 1
			cfg.PolarAnglesDeg = []float64{0, 40, 80}
			set := datagen.Generate(cfg)
			opts := models.DefaultTrainOptions(82)
			opts.MaxEpochs = 4
			opts.BkgLR = 5e-3
			opts.BkgBatch = 512
			opts.Swapped = true
			b = models.Train(set, opts)
			qopts := models.DefaultQuantizeOptions(83)
			qopts.Mode = models.ModePTQ
			int8net, _, err := models.QuantizeBackground(b, set, qopts)
			if err != nil {
				panic(err)
			}
			b.Int8 = int8net
		})
		return b
	}
}()

// TestBackendAlertParity runs the same recorded session through all three
// backends. The trigger is NN-independent (a Poisson count-rate test), so
// trigger identity must hold exactly across backends; the two integer
// backends must agree bitwise on the whole alert record.
func TestBackendAlertParity(t *testing.T) {
	if testing.Short() {
		t.Skip("trains networks")
	}
	b := quantBundle(t)
	events, meanRate := simSession(t, 13)

	run := func(backend pipeline.Backend) []Alert {
		cfg := DefaultConfig(meanRate)
		cfg.Seed = 42
		cfg.Bundle = b
		cfg.Backend = backend
		return feedAndDrain(cfg, events)
	}
	f32 := run(pipeline.BackendFloat32)
	i8 := run(pipeline.BackendInt8)
	fp := run(pipeline.BackendFPGASim)

	if len(f32) == 0 {
		t.Fatal("no alerts; burst not detected")
	}
	if len(i8) != len(f32) || len(fp) != len(f32) {
		t.Fatalf("alert counts differ: float32 %d, int8 %d, fpga-sim %d", len(f32), len(i8), len(fp))
	}
	for k := range f32 {
		rf, ri, rp := f32[k].Record(), i8[k].Record(), fp[k].Record()
		// Exact trigger identity across all backends.
		if ri.Seq != rf.Seq || ri.TriggerS != rf.TriggerS || ri.Significance != rf.Significance ||
			ri.BackgroundRateHz != rf.BackgroundRateHz || ri.NEvents != rf.NEvents {
			t.Errorf("alert %d: int8 trigger fields differ from float32:\n%+v\n%+v", k, ri, rf)
		}
		// Bitwise identity between the integer backends.
		if ri != rp {
			t.Errorf("alert %d: int8 and fpga-sim records differ:\n%+v\n%+v", k, ri, rp)
		}
		if !i8[k].Result.Loc.OK {
			t.Errorf("alert %d: int8 alert not localized", k)
		}
	}
}

// TestNewPanicsOnUnquantizedInt8: resolving the backend happens once at
// construction, so a misconfigured processor fails at startup, not at the
// first burst.
func TestNewPanicsOnUnquantizedInt8(t *testing.T) {
	if testing.Short() {
		t.Skip("trains networks")
	}
	b := quantBundle(t)
	plain := *b
	plain.Int8 = nil
	cfg := DefaultConfig(1000)
	cfg.Bundle = &plain
	cfg.Backend = pipeline.BackendInt8
	defer func() {
		if recover() == nil {
			t.Error("New with int8 backend and unquantized bundle did not panic")
		}
	}()
	New(cfg)
}
