package stream

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/background"
	"repro/internal/detector"
	"repro/internal/flightlog"
	"repro/internal/obs"
	"repro/internal/skymap"
	"repro/internal/xrand"
)

// tick makes a hit-less event at time t: the trigger sees it, the
// reconstruction rejects it, so trigger logic can be tested without
// paying for simulation or localization.
func tick(t float64) *detector.Event { return &detector.Event{ArrivalTime: t} }

// steadyTicks emits hit-less events at a constant rate over [t0, t1).
func steadyTicks(t0, t1, rate float64) []*detector.Event {
	var out []*detector.Event
	for t := t0; t < t1; t += 1 / rate {
		out = append(out, tick(t))
	}
	return out
}

func TestRateEstimatorConverges(t *testing.T) {
	e := &rateEstimator{binSec: 0.1, alpha: 0.1, rate: 100}
	for _, ev := range steadyTicks(0, 20, 1000) {
		e.advance(ev.ArrivalTime, false)
	}
	if math.Abs(e.rate-1000) > 50 {
		t.Errorf("rate = %.1f, want ~1000", e.rate)
	}
}

func TestRateEstimatorFrozenBins(t *testing.T) {
	e := &rateEstimator{binSec: 0.1, alpha: 0.1, rate: 1000}
	for _, ev := range steadyTicks(0, 5, 5000) { // 5× burst, frozen
		e.advance(ev.ArrivalTime, true)
	}
	if e.rate != 1000 {
		t.Errorf("frozen estimator moved: %.1f", e.rate)
	}
}

func TestRateEstimatorDecaysOverGaps(t *testing.T) {
	e := &rateEstimator{binSec: 0.1, alpha: 0.1, rate: 1000}
	e.advance(0, false)
	e.advance(100, false) // 1000 empty bins
	if e.rate > 1 {
		t.Errorf("rate after long gap = %g, want ~0", e.rate)
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := newRing(4)
	for i := 0; i < 10; i++ {
		r.push(tick(float64(i)))
	}
	if r.n != 4 || r.oldest() != 6 {
		t.Fatalf("ring n=%d oldest=%d, want 4, 6", r.n, r.oldest())
	}
	snap := r.snapshot()
	if len(snap) != 4 || snap[0].ArrivalTime != 6 || snap[3].ArrivalTime != 9 {
		t.Fatalf("snapshot = %v", times(snap))
	}
}

func times(evs []*detector.Event) []float64 {
	out := make([]float64, len(evs))
	for i, ev := range evs {
		out[i] = ev.ArrivalTime
	}
	return out
}

// feedAndDrain runs events through a new processor (blocking ingest) and
// returns every alert.
func feedAndDrain(cfg Config, events []*detector.Event) []Alert {
	p := New(cfg)
	done := make(chan []Alert)
	go func() {
		var out []Alert
		for a := range p.Alerts() {
			out = append(out, a)
		}
		done <- out
	}()
	for _, ev := range events {
		p.Ingest(ev)
	}
	p.Close()
	return <-done
}

func TestQuietStreamNoAlerts(t *testing.T) {
	cfg := DefaultConfig(1000)
	alerts := feedAndDrain(cfg, steadyTicks(0, 5, 1000))
	if len(alerts) != 0 {
		t.Fatalf("quiet stream produced %d alerts", len(alerts))
	}
}

func TestTriggerFiresOnRateExcess(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.Metrics = obs.NewRegistry()
	events := steadyTicks(0, 3, 1000)
	// A 10× excess for 100 ms starting at t=1.5.
	events = append(events, steadyTicks(1.5, 1.6, 10000)...)
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].ArrivalTime < events[j].ArrivalTime
	})
	alerts := feedAndDrain(cfg, events)
	if len(alerts) != 1 {
		t.Fatalf("%d alerts, want 1", len(alerts))
	}
	a := alerts[0]
	if a.TriggerTime < 1.4 || a.TriggerTime > 1.65 {
		t.Errorf("trigger at %.3f s, want ~1.5", a.TriggerTime)
	}
	if a.Significance < cfg.SigmaThreshold {
		t.Errorf("significance %.1f below threshold", a.Significance)
	}
	if got := cfg.Metrics.Counter(CtrTriggers).Load(); got != 1 {
		t.Errorf("trigger counter = %d", got)
	}
	if got := cfg.Metrics.Counter(CtrIngested).Load(); got != int64(len(events)) {
		t.Errorf("ingested counter = %d, want %d", got, len(events))
	}
	if occ := cfg.Metrics.Gauge(GaugeOccupancy).Load(); occ == 0 {
		t.Error("ring-occupancy gauge never set")
	}
	if rate := cfg.Metrics.Gauge(GaugeRate).Load(); math.Abs(rate-1000) > 200 {
		t.Errorf("rate gauge = %.0f, want ~1000", rate)
	}
}

func TestAlertChannelOverflowCounts(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.AlertBuffer = 1
	cfg.Metrics = obs.NewRegistry()
	var events []*detector.Event
	events = append(events, steadyTicks(0, 2, 1000)...)
	// Three well-separated bursts; nobody drains the alert channel.
	for _, t0 := range []float64{2, 6, 10} {
		events = append(events, steadyTicks(t0, t0+0.1, 20000)...)
		events = append(events, steadyTicks(t0+0.1, t0+4, 1000)...)
	}
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].ArrivalTime < events[j].ArrivalTime
	})
	p := New(cfg)
	for _, ev := range events {
		p.Ingest(ev)
	}
	p.Close()
	emitted := cfg.Metrics.Counter(CtrAlerts).Load()
	dropped := cfg.Metrics.Counter(CtrAlertsDropped).Load()
	if emitted != 1 || dropped != 2 {
		t.Fatalf("emitted=%d dropped=%d, want 1 buffered + 2 dropped", emitted, dropped)
	}
	// The buffered alert is still readable after Close.
	if _, ok := <-p.Alerts(); !ok {
		t.Fatal("buffered alert lost at Close")
	}
}

// TestBackpressureBoundedAndDeadlockFree saturates the ingest path while
// the consumer is slowed by per-record fsync journaling. The processor
// must keep bounded memory (fixed queue + ring), count its drops, and
// drain cleanly — this test runs under -race in CI.
func TestBackpressureBoundedAndDeadlockFree(t *testing.T) {
	dir := t.TempDir()
	j, err := flightlog.Open(flightlog.Options{Dir: dir, Sync: flightlog.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(1000)
	cfg.QueueEvents = 16
	cfg.AlertBuffer = 1
	cfg.Metrics = obs.NewRegistry()
	cfg.Journal = j
	p := New(cfg)
	const offered = 20000
	accepted := 0
	for i := 0; i < offered; i++ {
		if p.Offer(tick(float64(i) / 1000)) {
			accepted++
		}
	}
	p.Close()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	ingested := cfg.Metrics.Counter(CtrIngested).Load()
	dropped := cfg.Metrics.Counter(CtrDropped).Load()
	if ingested != int64(accepted) {
		t.Errorf("ingested %d != accepted %d", ingested, accepted)
	}
	if ingested+dropped != offered {
		t.Errorf("ingested %d + dropped %d != offered %d", ingested, dropped, offered)
	}
	if dropped == 0 {
		t.Error("saturation produced no drops (consumer outran a tight Offer loop through fsync?)")
	}
	// The admitted events — and only those — were journaled.
	if n, err := flightlog.Count(dir); err != nil || n != int(ingested) {
		t.Errorf("journal holds %d records (err %v), want %d", n, err, ingested)
	}
	var buf bytes.Buffer
	cfg.Metrics.WriteText(&buf)
	for _, want := range []string{CtrDropped, CtrIngested} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("obs output missing %q:\n%s", want, buf.String())
		}
	}
}

// simSession builds a realistic recorded session: quiet background with
// one real simulated burst in the middle, sorted by arrival time.
func simSession(t *testing.T, seed uint64) (events []*detector.Event, meanRate float64) {
	t.Helper()
	det := detector.DefaultConfig()
	bg := background.DefaultModel()
	rng := xrand.New(seed)
	meanRate = float64(len(bg.Simulate(&det, 1.0, rng.Split(0xCA1))))
	events = bg.Simulate(&det, 3.0, rng)
	for _, ev := range detector.SimulateBurst(&det, detector.Burst{Fluence: 2.0, PolarDeg: 20}, rng) {
		ev.ArrivalTime += 1.2
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].ArrivalTime < events[j].ArrivalTime
	})
	return events, meanRate
}

// TestCrashRecoveryReplayBitwise is the acceptance test for the journaled
// stream: record a live session, tear the journal tail as a crash
// mid-append would, then replay the recovered journal and require the
// original alert sequence bitwise (Record form; wall-clock timing is
// excluded by construction).
func TestCrashRecoveryReplayBitwise(t *testing.T) {
	events, meanRate := simSession(t, 7)
	dir := t.TempDir()
	j, err := flightlog.Open(flightlog.Options{Dir: dir, SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(meanRate)
	cfg.Seed = 42
	cfg.Journal = j
	live := feedAndDrain(cfg, events)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if len(live) == 0 {
		t.Fatal("live session produced no alerts; burst not detected")
	}
	if !live[0].Result.Loc.OK {
		t.Fatal("live alert has no localization")
	}

	// Crash mid-append: a torn partial record at the journal tail.
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.flog"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (%v)", err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x42, 0x00, 0x00, 0x00, 0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen: recovery truncates the torn tail.
	j2, err := flightlog.Open(flightlog.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if j2.Stats().RecoveredTruncation == 0 {
		t.Error("recovery reported no truncation")
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay the recovered journal into a fresh processor (same config,
	// no journal) and compare alert records bitwise.
	replayCfg := cfg
	replayCfg.Journal = nil
	p := New(replayCfg)
	done := make(chan []Alert)
	go func() {
		var out []Alert
		for a := range p.Alerts() {
			out = append(out, a)
		}
		done <- out
	}()
	n, err := ReplayJournal(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(events) {
		t.Fatalf("replayed %d events, want %d", n, len(events))
	}
	replayed := <-done
	if len(replayed) != len(live) {
		t.Fatalf("replayed %d alerts, want %d", len(replayed), len(live))
	}
	for i := range live {
		if live[i].Record() != replayed[i].Record() {
			t.Errorf("alert %d differs:\nlive:   %+v\nreplay: %+v",
				i, live[i].Record(), replayed[i].Record())
		}
	}
}

// TestReplayDeterministic replays the same journal twice; the two alert
// sequences must be identical (the property the smoke script checks
// end to end through the CLI).
func TestReplayDeterministic(t *testing.T) {
	events, meanRate := simSession(t, 11)
	dir := t.TempDir()
	j, err := flightlog.Open(flightlog.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(meanRate)
	cfg.Journal = j
	feedAndDrain(cfg, events)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	replay := func() []Record {
		rcfg := cfg
		rcfg.Journal = nil
		p := New(rcfg)
		done := make(chan []Record)
		go func() {
			var out []Record
			for a := range p.Alerts() {
				out = append(out, a.Record())
			}
			done <- out
		}()
		if _, err := ReplayJournal(dir, p); err != nil {
			t.Fatal(err)
		}
		return <-done
	}
	a, b := replay(), replay()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("replays differ in count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("alert %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestSkyMapAlertsReplayBitwise turns downlink map generation on, records
// a live session to a journal, and requires a replay to reproduce every
// alert record — including the encoded sky map payload — bitwise. The map
// is part of the downlink contract, so it must be as deterministic as the
// localization itself.
func TestSkyMapAlertsReplayBitwise(t *testing.T) {
	events, meanRate := simSession(t, 17)
	dir := t.TempDir()
	j, err := flightlog.Open(flightlog.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(meanRate)
	cfg.SkyMap = true
	cfg.Journal = j
	var live []Record
	for _, a := range feedAndDrain(cfg, events) {
		live = append(live, a.Record())
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if len(live) == 0 {
		t.Fatal("no alerts from the live session")
	}
	for i, rec := range live {
		if !rec.OK {
			continue
		}
		if rec.SkyMapB64 == "" {
			t.Fatalf("alert %d: localized but carries no sky map", i)
		}
		m, err := skymap.DecodeBase64(rec.SkyMapB64)
		if err != nil {
			t.Fatalf("alert %d: payload does not decode: %v", i, err)
		}
		if float64(m.Area90) != rec.Area90Deg2 || float64(m.Area68) != rec.Area68Deg2 {
			t.Errorf("alert %d: record areas (%v, %v) disagree with payload (%v, %v)",
				i, rec.Area68Deg2, rec.Area90Deg2, m.Area68, m.Area90)
		}
		if rec.Area68Deg2 > rec.Area90Deg2 {
			t.Errorf("alert %d: 68%% area exceeds 90%% area", i)
		}
	}

	// Replay with different worker counts: the records — payload bytes
	// included — must be identical to the live run.
	for _, workers := range []int{1, 4} {
		rcfg := cfg
		rcfg.Journal = nil
		rcfg.Workers = workers
		p := New(rcfg)
		done := make(chan []Record)
		go func() {
			var out []Record
			for a := range p.Alerts() {
				out = append(out, a.Record())
			}
			done <- out
		}()
		if _, err := ReplayJournal(dir, p); err != nil {
			t.Fatal(err)
		}
		replayed := <-done
		if len(replayed) != len(live) {
			t.Fatalf("workers=%d: replay produced %d alerts, live %d", workers, len(replayed), len(live))
		}
		for i := range live {
			if replayed[i] != live[i] {
				t.Errorf("workers=%d alert %d: replay record differs from live", workers, i)
			}
		}
	}
}

func TestAdmitGateShedsDeterministically(t *testing.T) {
	cfg := DefaultConfig(1000)
	cfg.Metrics = obs.NewRegistry()
	// Shed everything in [1, 2): the 10× excess at t=1.5 must not trigger.
	cfg.Admit = func(ev *detector.Event) bool {
		return ev.ArrivalTime < 1 || ev.ArrivalTime >= 2
	}
	events := steadyTicks(0, 3, 1000)
	events = append(events, steadyTicks(1.5, 1.6, 10000)...)
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].ArrivalTime < events[j].ArrivalTime
	})
	alerts := feedAndDrain(cfg, events)
	if len(alerts) != 0 {
		t.Fatalf("gated burst still produced %d alerts", len(alerts))
	}
	shed := cfg.Metrics.Counter(CtrShed).Load()
	ingested := cfg.Metrics.Counter(CtrIngested).Load()
	wantShed := int64(0)
	for _, ev := range events {
		if ev.ArrivalTime >= 1 && ev.ArrivalTime < 2 {
			wantShed++
		}
	}
	if shed != wantShed {
		t.Errorf("shed counter = %d, want %d", shed, wantShed)
	}
	if ingested != int64(len(events))-wantShed {
		t.Errorf("ingested counter = %d, want %d", ingested, int64(len(events))-wantShed)
	}
}
