// Package stream is the real-time front end of the on-board system: a
// continuous event-ingestion pipeline with bounded memory that detects
// burst candidates as photons arrive and hands each candidate window to
// the Fig. 6 localization pipeline.
//
// Where internal/core answers "is there a burst in this recorded
// exposure?" offline, this package answers it online, under the
// constraints flight software actually runs with:
//
//   - a bounded ring buffer holds the recent event history — memory use is
//     fixed no matter how long the flight lasts;
//   - an online background-rate estimator (EWMA over event-time bins)
//     tracks the slowly varying atmospheric rate, so the trigger threshold
//     adapts without ground contact;
//   - a sliding-window Poisson count trigger fires burst candidates, and a
//     deadtime after each trigger keeps the burst itself from inflating
//     the background estimate;
//   - backpressure is explicit: the ingest queue and the alert queue are
//     bounded channels, overloads increment drop counters in internal/obs
//     instead of growing queues, and nothing ever blocks the detector.
//
// Every piece of trigger state advances on *event time*, never wall-clock
// time, so driving the processor from a recorded flight journal
// (internal/flightlog) reproduces the live run's alert sequence exactly.
package stream

import (
	"encoding/base64"
	"math"
	"sync"

	"repro/internal/detector"
	"repro/internal/evio"
	"repro/internal/flightlog"
	"repro/internal/geom"
	"repro/internal/localize"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/recon"
	"repro/internal/skymap"
	"repro/internal/xrand"
)

// Metric names published into Config.Metrics.
const (
	CtrIngested      = "stream_events_ingested"
	CtrDropped       = "stream_events_dropped"
	CtrShed          = "stream_events_shed"
	CtrTriggers      = "stream_triggers"
	CtrAlerts        = "stream_alerts_emitted"
	CtrAlertsDropped = "stream_alerts_dropped"
	CtrJournalErrors = "stream_journal_errors"
	GaugeOccupancy   = "stream_ring_occupancy"
	GaugeRate        = "stream_bkg_rate_hz"
	StageLocalize    = "stream_localize"
)

// Config assembles the streaming trigger pipeline. DefaultConfig fills the
// flight defaults; New fills any remaining zero values.
type Config struct {
	// Recon / Loc / Bundle / MaxNNIters / Workers configure the
	// localization pipeline run on each burst candidate, exactly as in
	// internal/core (nil Bundle = no-ML pipeline).
	Recon      recon.Config
	Loc        localize.Config
	Bundle     *models.Bundle
	MaxNNIters int
	Workers    int

	// Backend selects the background-classifier inference implementation
	// ("" = float32; int8 and fpga-sim need a quantized Bundle — callers
	// should pre-validate with pipeline.NewClassifier, New panics on an
	// invalid combination). The processor resolves the backend once at New,
	// so a single classifier instance — and, for fpga-sim, a single
	// simulated-cycle ledger — spans every fired window. Ignored when
	// BkgOverride is set.
	Backend pipeline.Backend

	// WindowSec is the trigger's sliding-window width (default 0.1 s).
	WindowSec float64
	// SigmaThreshold is the Poisson significance required to fire
	// (default 8).
	SigmaThreshold float64
	// BurstWindowSec is how much data after the trigger time is
	// accumulated and localized (default 1 s).
	BurstWindowSec float64
	// PreTriggerSec includes data just before the trigger time — the
	// rising edge of the light curve (default 0.05 s).
	PreTriggerSec float64

	// RateBinSec is the background-rate estimator's bin width
	// (default 0.1 s).
	RateBinSec float64
	// RateAlpha is the EWMA weight of one completed bin (default 0.05: a
	// ~2 s time constant at the default bin width).
	RateAlpha float64
	// InitialRate seeds the estimator, in events/second — the calibrated
	// quiet-sky rate a flight would upload (required; there is no safe
	// universal default for a trigger threshold).
	InitialRate float64

	// BufferEvents is the ring-buffer capacity (default 65536); it must
	// cover PreTriggerSec+BurstWindowSec of data at burst rates or the
	// oldest window events are lost (counted, never fatal).
	BufferEvents int
	// QueueEvents is the ingest-channel capacity (default 4096). Offer
	// drops (and counts) events when it is full.
	QueueEvents int
	// AlertBuffer is the alert-channel capacity (default 16). Alerts are
	// dropped (and counted) when the consumer lags this far behind.
	AlertBuffer int

	// Admit, when non-nil, gates every submitted event before any trigger
	// state advances: an event it rejects is shed (counted under CtrShed)
	// without being journaled, buffered, or seen by the rate estimator. It
	// runs on the single consumer goroutine, so it may keep internal state;
	// determinism is the gate's contract — a gate that is a pure function
	// of the admitted event-time sequence (the chaos campaign's overload
	// model is one) keeps the alert sequence a pure function of the input.
	// Because shed events are never journaled, replaying a journal recorded
	// through a gate reproduces the gated run's alerts bitwise with no gate
	// configured.
	Admit func(*detector.Event) bool

	// BkgOverride, when non-nil, replaces the pipeline's background
	// classifier for every fired window — the hook adaptserve uses to route
	// replayed-journal windows through its shared micro-batcher instead of
	// the per-call model. Determinism is the caller's contract: replay is
	// bitwise-reproducible only if the override is itself a pure function
	// of its inputs (the serving batcher is).
	BkgOverride pipeline.BkgClassifier

	// SkyMap, when true, attaches the downlink-grade quantized sky map
	// payload (internal/skymap) to every successfully localized alert and
	// its record. The payload is a pure function of the admitted event
	// sequence, so journal replay reproduces it bitwise.
	SkyMap bool
	// SkyMapOpts configures the payload builder (zero = calibrated
	// defaults).
	SkyMapOpts skymap.Options

	// Seed drives the localization solver's random sampling; alert k uses
	// the deterministic substream Split(k+1).
	Seed uint64
	// Metrics receives the counters/gauges/stages above (nil = off).
	Metrics *obs.Registry
	// Journal, when non-nil, durably records every admitted event before
	// it is processed, so a crash can be replayed into the same alerts.
	Journal *flightlog.Journal
}

// DefaultConfig returns the flight configuration for a given calibrated
// quiet-sky event rate (events/second).
func DefaultConfig(initialRate float64) Config {
	return Config{
		Recon:          recon.DefaultConfig(),
		Loc:            localize.DefaultConfig(),
		MaxNNIters:     5,
		WindowSec:      0.1,
		SigmaThreshold: 8,
		BurstWindowSec: 1.0,
		PreTriggerSec:  0.05,
		RateBinSec:     0.1,
		RateAlpha:      0.05,
		InitialRate:    initialRate,
	}
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.Recon == (recon.Config{}) {
		c.Recon = recon.DefaultConfig()
	}
	if c.Loc == (localize.Config{}) {
		c.Loc = localize.DefaultConfig()
	}
	if c.MaxNNIters <= 0 {
		c.MaxNNIters = 5
	}
	if c.WindowSec <= 0 {
		c.WindowSec = 0.1
	}
	if c.SigmaThreshold <= 0 {
		c.SigmaThreshold = 8
	}
	if c.BurstWindowSec <= 0 {
		c.BurstWindowSec = 1.0
	}
	if c.PreTriggerSec < 0 {
		c.PreTriggerSec = 0
	}
	if c.RateBinSec <= 0 {
		c.RateBinSec = 0.1
	}
	if c.RateAlpha <= 0 || c.RateAlpha > 1 {
		c.RateAlpha = 0.05
	}
	if c.BufferEvents <= 0 {
		c.BufferEvents = 1 << 16
	}
	if c.QueueEvents <= 0 {
		c.QueueEvents = 4096
	}
	if c.AlertBuffer <= 0 {
		c.AlertBuffer = 16
	}
	return c
}

// Alert is one burst candidate detected and localized by the stream.
type Alert struct {
	// Seq numbers alerts from 0 in trigger order.
	Seq int
	// TriggerTime is the event time (seconds) of the window that fired.
	TriggerTime float64
	// Significance is the triggering window's Poisson significance.
	Significance float64
	// BackgroundRateHz is the estimator's rate when the trigger fired.
	BackgroundRateHz float64
	// NEvents is how many events the localized window held.
	NEvents int
	// Result is the pipeline outcome for the window.
	Result pipeline.Result
	// SkyMapPayload is the encoded downlink map (nil unless Config.SkyMap
	// and localization succeeded).
	SkyMapPayload []byte
	// Area68Deg2/Area90Deg2 are the payload's tempered credible areas in
	// square degrees (0 when no map was built).
	Area68Deg2, Area90Deg2 float64
}

// Record is the deterministic downlink form of an alert: every field is a
// pure function of the admitted event sequence and the configuration, so
// a journal replay reproduces records bitwise. (Result.Timing, which
// measures wall-clock, is deliberately excluded.)
type Record struct {
	Seq              int        `json:"seq"`
	TriggerS         float64    `json:"trigger_s"`
	Significance     float64    `json:"significance"`
	BackgroundRateHz float64    `json:"background_rate_hz"`
	NEvents          int        `json:"n_events"`
	OK               bool       `json:"ok"`
	Dir              [3]float64 `json:"dir"`
	ErrorRadiusDeg   float64    `json:"error_radius_deg"`
	RingsKept        int        `json:"rings_kept"`
	NNIterations     int        `json:"nn_iterations"`
	// SkyMapB64 carries the encoded downlink map (internal/skymap format)
	// in standard base64, with its tempered credible areas alongside;
	// empty/zero when map generation is off.
	SkyMapB64  string  `json:"skymap_b64,omitempty"`
	Area68Deg2 float64 `json:"area68_deg2,omitempty"`
	Area90Deg2 float64 `json:"area90_deg2,omitempty"`
}

// Record converts the alert to its downlink form.
func (a *Alert) Record() Record {
	rec := Record{
		Seq:              a.Seq,
		TriggerS:         a.TriggerTime,
		Significance:     a.Significance,
		BackgroundRateHz: a.BackgroundRateHz,
		NEvents:          a.NEvents,
		OK:               a.Result.Loc.OK,
		RingsKept:        a.Result.Kept,
		NNIterations:     a.Result.NNIterations,
	}
	if a.Result.Loc.OK {
		rec.Dir = [3]float64{a.Result.Loc.Dir.X, a.Result.Loc.Dir.Y, a.Result.Loc.Dir.Z}
		rec.ErrorRadiusDeg = a.Result.ErrorRadiusDeg
	}
	if len(a.SkyMapPayload) > 0 {
		rec.SkyMapB64 = base64.StdEncoding.EncodeToString(a.SkyMapPayload)
		rec.Area68Deg2 = a.Area68Deg2
		rec.Area90Deg2 = a.Area90Deg2
	}
	return rec
}

// ring is a bounded circular buffer of recent events, indexed by a global
// monotonically increasing sequence number.
type ring struct {
	buf  []*detector.Event
	next uint64 // sequence number of the next push
	n    int    // occupancy (≤ cap)
}

func newRing(capacity int) *ring { return &ring{buf: make([]*detector.Event, capacity)} }

// push appends ev, evicting the oldest event when full.
func (r *ring) push(ev *detector.Event) {
	r.buf[r.next%uint64(len(r.buf))] = ev
	r.next++
	if r.n < len(r.buf) {
		r.n++
	}
}

// oldest returns the sequence number of the oldest retained event.
func (r *ring) oldest() uint64 { return r.next - uint64(r.n) }

// at returns the event with sequence number seq (must be retained).
func (r *ring) at(seq uint64) *detector.Event { return r.buf[seq%uint64(len(r.buf))] }

// snapshot copies the retained events oldest-first.
func (r *ring) snapshot() []*detector.Event {
	out := make([]*detector.Event, 0, r.n)
	for seq := r.oldest(); seq != r.next; seq++ {
		out = append(out, r.at(seq))
	}
	return out
}

// rateEstimator tracks the background event rate as an EWMA over
// fixed-width event-time bins. All state advances on event time only.
type rateEstimator struct {
	binSec, alpha float64
	rate          float64 // events/second
	binStart      float64
	binCount      int
	started       bool
}

// advance moves the estimator to event time t, closing any completed bins.
// Bins that end while frozen (a burst in progress) are discarded instead
// of updating the rate, so the burst does not raise its own threshold.
func (e *rateEstimator) advance(t float64, frozen bool) {
	if !e.started {
		e.started = true
		e.binStart = math.Floor(t/e.binSec) * e.binSec
	}
	for t >= e.binStart+e.binSec {
		if !frozen {
			e.rate = (1-e.alpha)*e.rate + e.alpha*float64(e.binCount)/e.binSec
		}
		e.binCount = 0
		e.binStart += e.binSec
		// Long gaps complete many empty bins; close them in bulk.
		if gap := math.Floor((t - e.binStart) / e.binSec); gap > 1 {
			if !frozen {
				e.rate *= math.Pow(1-e.alpha, gap)
			}
			e.binStart += gap * e.binSec
		}
	}
	e.binCount++
}

// pending is a fired trigger whose burst window is still filling.
type pending struct {
	trig     float64
	deadline float64
	count    int     // events in the triggering window
	rate     float64 // background rate at trigger time
}

// Processor is the live streaming pipeline. Events enter via Offer (lossy,
// non-blocking — the detector feed) or Ingest (blocking — file and journal
// replay); alerts leave via Alerts. A single internal consumer goroutine
// owns all trigger state, so the alert sequence is a deterministic
// function of the admitted event sequence.
type Processor struct {
	cfg    Config
	in     chan *detector.Event
	alerts chan Alert
	done   chan struct{}
	stop   sync.Once

	// Consumer-goroutine state (unshared).
	ring      *ring
	rate      *rateEstimator
	winLo     uint64 // sequence of the first event inside the trigger window
	pend      *pending
	deadUntil float64
	root      *xrand.RNG
	seq       int
}

// New validates cfg and starts the processor's consumer goroutine. Callers
// must Close it to flush the final window and release the goroutine.
func New(cfg Config) *Processor {
	cfg = cfg.withDefaults()
	if cfg.BkgOverride == nil {
		cls, err := pipeline.NewClassifier(cfg.Backend, cfg.Bundle)
		if err != nil {
			panic("stream: " + err.Error())
		}
		cfg.BkgOverride = cls
	}
	p := &Processor{
		cfg:    cfg,
		in:     make(chan *detector.Event, cfg.QueueEvents),
		alerts: make(chan Alert, cfg.AlertBuffer),
		done:   make(chan struct{}),
		ring:   newRing(cfg.BufferEvents),
		rate:   &rateEstimator{binSec: cfg.RateBinSec, alpha: cfg.RateAlpha, rate: cfg.InitialRate},
		root:   xrand.New(cfg.Seed),
	}
	go p.consume()
	return p
}

// Offer submits one event without blocking: the detector-feed path. It
// returns false (and counts the drop) when the ingest queue is full —
// overload sheds load instead of growing memory.
func (p *Processor) Offer(ev *detector.Event) bool {
	select {
	case p.in <- ev:
		return true
	default:
		p.cfg.Metrics.Counter(CtrDropped).Inc()
		return false
	}
}

// Ingest submits one event, blocking until the queue accepts it: the
// lossless path used by file input and journal replay.
func (p *Processor) Ingest(ev *detector.Event) { p.in <- ev }

// Alerts returns the alert channel. It is closed by Close after the final
// window flushes.
func (p *Processor) Alerts() <-chan Alert { return p.alerts }

// Close ends the input stream, flushes a pending burst window, waits for
// the consumer to drain, and closes the alert channel. Safe to call more
// than once.
func (p *Processor) Close() {
	p.stop.Do(func() { close(p.in) })
	<-p.done
}

// consume is the single consumer goroutine: it owns all trigger state.
func (p *Processor) consume() {
	defer close(p.done)
	defer close(p.alerts)
	for ev := range p.in {
		p.step(ev)
	}
	// End of stream: a burst window that was still filling fires with the
	// data it has, like a flight segment ending mid-burst.
	if p.pend != nil {
		p.fire()
	}
}

// step advances every piece of trigger state past one admitted event.
func (p *Processor) step(ev *detector.Event) {
	m := p.cfg.Metrics
	if p.cfg.Admit != nil && !p.cfg.Admit(ev) {
		m.Counter(CtrShed).Inc()
		return
	}
	m.Counter(CtrIngested).Inc()

	if p.cfg.Journal != nil {
		blob, err := evio.Marshal([]*detector.Event{ev})
		if err == nil {
			err = p.cfg.Journal.Append(blob)
		}
		if err != nil {
			m.Counter(CtrJournalErrors).Inc()
		} else if dec, derr := evio.Unmarshal(blob); derr == nil && len(dec) == 1 {
			// Process the journaled form: evio stores hit fields as float32,
			// so localizing the original float64 event would diverge from a
			// replay at the last bit. Live and replay must see identical
			// inputs for the alert sequence to reproduce bitwise.
			ev = dec[0]
		}
	}
	t := ev.ArrivalTime

	// A pending burst whose window is complete fires before this event
	// joins the state — the window is [trig−pre, deadline).
	if p.pend != nil && t >= p.pend.deadline {
		p.fire()
	}

	frozen := p.pend != nil || t < p.deadUntil
	p.rate.advance(t, frozen)
	p.ring.push(ev)
	m.Gauge(GaugeOccupancy).Set(float64(p.ring.n))
	m.Gauge(GaugeRate).Set(p.rate.rate)

	// Advance the sliding window: events at or before t−W leave it.
	if p.winLo < p.ring.oldest() {
		p.winLo = p.ring.oldest()
	}
	for p.winLo < p.ring.next && p.ring.at(p.winLo).ArrivalTime <= t-p.cfg.WindowSec {
		p.winLo++
	}

	if p.pend != nil || t < p.deadUntil {
		return
	}
	count := int(p.ring.next - p.winLo)
	expect := p.rate.rate * p.cfg.WindowSec
	if float64(count) > expect+p.cfg.SigmaThreshold*math.Sqrt(math.Max(expect, 1)) {
		trig := p.ring.at(p.winLo).ArrivalTime
		p.pend = &pending{
			trig:     trig,
			deadline: trig + p.cfg.BurstWindowSec,
			count:    count,
			rate:     p.rate.rate,
		}
		m.Counter(CtrTriggers).Inc()
	}
}

// fire localizes the pending burst window and emits the alert.
func (p *Processor) fire() {
	pb := p.pend
	p.pend = nil
	p.deadUntil = pb.deadline

	opts := pipeline.DefaultOptions()
	opts.Recon = p.cfg.Recon
	opts.Loc = p.cfg.Loc
	opts.Bundle = p.cfg.Bundle
	opts.MaxNNIters = p.cfg.MaxNNIters
	opts.Workers = p.cfg.Workers
	opts.Metrics = p.cfg.Metrics
	opts.BkgOverride = p.cfg.BkgOverride

	m := p.cfg.Metrics
	stop := m.StartStage(StageLocalize)
	res := pipeline.RunWindow(opts, p.ring.snapshot(),
		pb.trig-p.cfg.PreTriggerSec, pb.deadline, p.root.Split(uint64(p.seq)+1))
	stop()

	expect := pb.rate * p.cfg.WindowSec
	alert := Alert{
		Seq:              p.seq,
		TriggerTime:      pb.trig,
		Significance:     (float64(pb.count) - expect) / math.Sqrt(math.Max(expect, 1)),
		BackgroundRateHz: pb.rate,
		NEvents:          countWindow(p.ring, pb.trig-p.cfg.PreTriggerSec, pb.deadline),
		Result:           res,
	}
	if p.cfg.SkyMap && res.Loc.OK {
		rings := res.ActiveRings
		var probs []float64
		if p.cfg.Bundle != nil {
			polar := geom.Deg(geom.Polar(res.Loc.Dir))
			pipeline.ApplyDEtaCalibrated(p.cfg.Bundle, rings, polar)
			probs = pipeline.BackgroundProbs(p.cfg.Bundle, rings, polar)
		}
		sopts := p.cfg.SkyMapOpts
		if sopts.Workers == 0 {
			sopts.Workers = p.cfg.Workers
		}
		pm := skymap.FromRings(&p.cfg.Loc, rings, probs, sopts)
		alert.SkyMapPayload = pm.Encode()
		alert.Area68Deg2 = float64(pm.Area68)
		alert.Area90Deg2 = float64(pm.Area90)
	}
	p.seq++
	select {
	case p.alerts <- alert:
		m.Counter(CtrAlerts).Inc()
	default:
		m.Counter(CtrAlertsDropped).Inc()
	}
}

// countWindow counts retained events with arrival time in [t0, t1).
func countWindow(r *ring, t0, t1 float64) int {
	n := 0
	for seq := r.oldest(); seq != r.next; seq++ {
		if t := r.at(seq).ArrivalTime; t >= t0 && t < t1 {
			n++
		}
	}
	return n
}

// ReplayJournal feeds every event recorded in the flight journal at dir
// through p in append order, then closes p. It returns the number of
// events replayed. Alerts appear on p.Alerts exactly as in the recorded
// session (drain them concurrently).
func ReplayJournal(dir string, p *Processor) (int, error) {
	n := 0
	err := flightlog.Replay(dir, func(payload []byte) error {
		events, err := evio.Unmarshal(payload)
		if err != nil {
			return err
		}
		for _, ev := range events {
			p.Ingest(ev)
			n++
		}
		return nil
	})
	p.Close()
	return n, err
}
