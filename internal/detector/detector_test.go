package detector

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/spectrum"
	"repro/internal/xrand"
)

func idealConfig() Config {
	cfg := DefaultConfig()
	// Disable the unmodeled effects so reported σ are exact for the tests
	// that check the clean measurement model.
	cfg.QuenchScaleMeV = 0
	cfg.LightLossProb = 0
	cfg.FiberOutlierProb = 0
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Layers = 1
	if bad.Validate() == nil {
		t.Error("1-layer config accepted")
	}
	bad = DefaultConfig()
	bad.LayerPitch = 0.1
	if bad.Validate() == nil {
		t.Error("overlapping layers accepted")
	}
	bad = DefaultConfig()
	bad.FiberPitch = 0
	if bad.Validate() == nil {
		t.Error("zero fiber pitch accepted")
	}
}

func TestGeometryHelpers(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.LayerTopZ(0) != 0 {
		t.Error("layer 0 top not at z=0")
	}
	if got := cfg.LayerTopZ(2); got != -2*cfg.LayerPitch {
		t.Errorf("layer 2 top = %v", got)
	}
	if got := cfg.LayerBottomZ(0); got != -cfg.TileThickness {
		t.Errorf("layer 0 bottom = %v", got)
	}
	wantH := 3*cfg.LayerPitch + cfg.TileThickness
	if cfg.Height() != wantH {
		t.Errorf("Height = %v, want %v", cfg.Height(), wantH)
	}
	r := cfg.BoundingRadius()
	want := math.Sqrt(cfg.TileHalfX*cfg.TileHalfX + cfg.TileHalfY*cfg.TileHalfY + wantH*wantH/4)
	if math.Abs(r-want) > 1e-12 {
		t.Errorf("BoundingRadius = %v, want %v", r, want)
	}
}

func TestTransportStraightDown(t *testing.T) {
	cfg := idealConfig()
	rng := xrand.New(1)
	n := 20000
	interacted := 0
	var deposited float64
	for i := 0; i < n; i++ {
		hits, dep := Transport(&cfg, geom.Vec{X: 1, Y: 2, Z: 5}, geom.Vec{Z: -1}, 1.0, rng, nil)
		if dep < -1e-12 || dep > 1.0+1e-9 {
			t.Fatalf("deposited energy out of range: %v", dep)
		}
		for _, h := range hits {
			if h.Layer < 0 || h.Layer >= cfg.Layers {
				t.Fatalf("hit in nonexistent layer %d", h.Layer)
			}
			// Hits must be inside the tile volume of their layer.
			if h.Pos.Z > cfg.LayerTopZ(h.Layer)+1e-9 || h.Pos.Z < cfg.LayerBottomZ(h.Layer)-1e-9 {
				t.Fatalf("hit z=%v outside layer %d", h.Pos.Z, h.Layer)
			}
			if math.Abs(h.Pos.X) > cfg.TileHalfX || math.Abs(h.Pos.Y) > cfg.TileHalfY {
				t.Fatalf("hit outside tile: %v", h.Pos)
			}
			if h.E < 0 {
				t.Fatalf("negative deposit")
			}
		}
		if len(hits) > 0 {
			interacted++
			deposited += dep
		}
	}
	// Beer–Lambert through 4 tiles of CsI at 1 MeV: interaction probability
	// 1 − exp(−μ·6cm); μ_total(1 MeV) ≈ 0.27/cm → ~0.80. Tolerate the
	// approximate cross-sections.
	frac := float64(interacted) / float64(n)
	mu := cfg.Material.MuTotal(1.0)
	want := 1 - math.Exp(-mu*float64(cfg.Layers)*cfg.TileThickness)
	if math.Abs(frac-want) > 0.03 {
		t.Errorf("interaction fraction %v, Beer–Lambert predicts %v", frac, want)
	}
}

func TestTransportMissesDetector(t *testing.T) {
	cfg := idealConfig()
	rng := xrand.New(2)
	// A photon aimed sideways far above the stack never hits a tile.
	hits, dep := Transport(&cfg, geom.Vec{X: 0, Y: 0, Z: 50}, geom.Vec{X: 1}, 1.0, rng, nil)
	if len(hits) != 0 || dep != 0 {
		t.Errorf("photon missing the stack produced %d hits, %v MeV", len(hits), dep)
	}
}

func TestTransportOrderIsSequential(t *testing.T) {
	cfg := idealConfig()
	rng := xrand.New(3)
	for i := 0; i < 2000; i++ {
		hits, _ := Transport(&cfg, geom.Vec{Z: 5}, geom.Vec{Z: -1}, 2.0, rng, nil)
		for j, h := range hits {
			if h.Order != j {
				t.Fatalf("hit orders not sequential: %v", hits)
			}
		}
	}
}

func TestMeasureThresholdAndQuantization(t *testing.T) {
	cfg := idealConfig()
	rng := xrand.New(4)
	truth := []TrueHit{
		{Pos: geom.Vec{X: 3.14, Y: -2.7, Z: -0.7}, E: 0.5, Layer: 0},
		{Pos: geom.Vec{X: -8.0, Y: 4.0, Z: -10.9}, E: 0.001, Layer: 1}, // below threshold
	}
	sawBig, sawSmall := 0, 0
	for i := 0; i < 500; i++ {
		hits := Measure(&cfg, truth, rng)
		for _, h := range hits {
			// Positions snap to fiber-pitch bin centers.
			fx := h.Pos.X/cfg.FiberPitch - math.Floor(h.Pos.X/cfg.FiberPitch)
			if math.Abs(fx-0.5) > 1e-9 {
				t.Fatalf("x=%v not at a fiber bin center", h.Pos.X)
			}
			if h.SigmaE <= 0 || h.SigmaX <= 0 {
				t.Fatal("non-positive reported uncertainty")
			}
			if h.E >= cfg.HitThreshold && h.Layer == 0 {
				sawBig++
			}
			if h.Layer == 1 {
				sawSmall++
			}
		}
	}
	if sawBig < 450 {
		t.Errorf("0.5 MeV hit survived only %d/500 times", sawBig)
	}
	if sawSmall > 5 {
		t.Errorf("1 keV hit survived %d times; threshold not applied", sawSmall)
	}
}

func TestMeasureMergesCloseDeposits(t *testing.T) {
	cfg := idealConfig()
	rng := xrand.New(5)
	truth := []TrueHit{
		{Pos: geom.Vec{X: 0, Y: 0, Z: -0.5}, E: 0.3, Layer: 0, Order: 0},
		{Pos: geom.Vec{X: 0.3, Y: 0.2, Z: -0.9}, E: 0.2, Layer: 0, Order: 1}, // within MergeRadius
		{Pos: geom.Vec{X: 10, Y: 10, Z: -10.5}, E: 0.4, Layer: 1, Order: 2},
	}
	hits := Measure(&cfg, truth, rng)
	if len(hits) != 2 {
		t.Fatalf("got %d hits, want 2 (merge of same-layer close pair)", len(hits))
	}
	// Merged energy near 0.5 (up to smearing).
	var layer0E float64
	for _, h := range hits {
		if h.Layer == 0 {
			layer0E = h.E
		}
	}
	if math.Abs(layer0E-0.5) > 0.15 {
		t.Errorf("merged energy %v, want ~0.5", layer0E)
	}
}

func TestSigmaEModel(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.SigmaE(0) < cfg.EnergyResFloor {
		t.Error("sigma below floor at zero energy")
	}
	if cfg.SigmaE(4) <= cfg.SigmaE(1) {
		t.Error("sigma not increasing with energy")
	}
}

func TestPerturb(t *testing.T) {
	rng := xrand.New(6)
	ev := &Event{Hits: []Hit{{Pos: geom.Vec{X: 5, Y: -3, Z: -11}, E: 1.2}}}
	orig := ev.Hits[0]
	Perturb(ev, 0, rng)
	if ev.Hits[0] != orig {
		t.Error("epsilon=0 modified the event")
	}
	// ε=10%: values move, typically by ~10% of magnitude.
	var moved int
	for i := 0; i < 200; i++ {
		ev.Hits[0] = orig
		Perturb(ev, 10, rng)
		if ev.Hits[0].E != orig.E {
			moved++
		}
		if math.Abs(ev.Hits[0].E-orig.E) > 0.12*6*orig.E {
			t.Fatalf("perturbation too large: %v -> %v", orig.E, ev.Hits[0].E)
		}
	}
	if moved < 190 {
		t.Error("perturbation rarely changed values")
	}
}

func TestSimulateBurstScalesWithFluence(t *testing.T) {
	cfg := idealConfig()
	rng := xrand.New(7)
	n1 := len(SimulateBurst(&cfg, Burst{Fluence: 0.5, PolarDeg: 0}, rng))
	n2 := len(SimulateBurst(&cfg, Burst{Fluence: 2.0, PolarDeg: 0}, rng))
	if n2 < 3*n1 {
		t.Errorf("4x fluence gave %d vs %d events; expected ~4x", n2, n1)
	}
	for _, ev := range SimulateBurst(&cfg, Burst{Fluence: 1, PolarDeg: 30, AzimuthDeg: 45}, rng) {
		if ev.Source != SourceGRB {
			t.Fatal("burst event not labeled GRB")
		}
		if ev.ArrivalTime < 0 || ev.ArrivalTime >= 1 {
			t.Fatalf("arrival time %v outside the 1s window", ev.ArrivalTime)
		}
		if len(ev.Hits) == 0 {
			t.Fatal("event with no hits returned")
		}
		want := geom.FromSpherical(geom.Rad(30), geom.Rad(45))
		if ev.TrueSource.Sub(want).Norm() > 1e-12 {
			t.Fatal("TrueSource mismatch")
		}
	}
}

func TestThrowPhotonDeterminism(t *testing.T) {
	cfg := idealConfig()
	ev1 := ThrowPhoton(&cfg, geom.Vec{Z: -1}, 1.0, xrand.New(42))
	ev2 := ThrowPhoton(&cfg, geom.Vec{Z: -1}, 1.0, xrand.New(42))
	if (ev1 == nil) != (ev2 == nil) {
		t.Fatal("determinism broken")
	}
	if ev1 != nil {
		if len(ev1.Hits) != len(ev2.Hits) || ev1.TotalE() != ev2.TotalE() {
			t.Error("same seed produced different events")
		}
	}
}

func TestEventTotals(t *testing.T) {
	ev := &Event{Hits: []Hit{{E: 0.5, SigmaE: 0.03}, {E: 0.25, SigmaE: 0.04}}}
	if math.Abs(ev.TotalE()-0.75) > 1e-12 {
		t.Errorf("TotalE = %v", ev.TotalE())
	}
	if math.Abs(ev.TotalSigmaE()-0.05) > 1e-12 {
		t.Errorf("TotalSigmaE = %v, want 0.05", ev.TotalSigmaE())
	}
}

func TestSourceKindString(t *testing.T) {
	if SourceGRB.String() != "grb" || SourceBackground.String() != "background" {
		t.Error("SourceKind.String wrong")
	}
}

func TestEffectiveAreaMatchesBoundingRadius(t *testing.T) {
	cfg := DefaultConfig()
	r := cfg.BoundingRadius()
	if math.Abs(EffectiveAreaCm2(&cfg)-math.Pi*r*r) > 1e-9 {
		t.Error("EffectiveAreaCm2 inconsistent with BoundingRadius")
	}
}

func TestBurstUsesCustomSpectrum(t *testing.T) {
	cfg := idealConfig()
	rng := xrand.New(8)
	// A mono-energetic-ish narrow power law: all true energies in band.
	spec := spectrum.NewPowerLaw(0, 0.9, 1.1)
	evs := SimulateBurst(&cfg, Burst{Fluence: 0.5, Spec: spec}, rng)
	for _, ev := range evs {
		if ev.TrueEnergy < 0.9 || ev.TrueEnergy > 1.1 {
			t.Fatalf("event energy %v outside custom spectrum band", ev.TrueEnergy)
		}
	}
	if len(evs) == 0 {
		t.Fatal("no events from custom-spectrum burst")
	}
}
