package detector

import (
	"math"

	"repro/internal/geom"
	"repro/internal/spectrum"
	"repro/internal/xrand"
)

// ThrowPhoton launches one photon with unit travel direction dir and energy
// e (MeV) at the detector. The entry point is sampled uniformly on the disk
// of radius cfg.BoundingRadius() perpendicular to dir through the detector
// center, so the effective aperture per throw is π·R² for every direction;
// fluence-to-count conversions must use the same area (see EffectiveAreaCm2).
//
// It returns the measured event, or nil if the photon left no measured hits.
func ThrowPhoton(cfg *Config, dir geom.Vec, e float64, rng *xrand.RNG) *Event {
	r := cfg.BoundingRadius()
	u, w := geom.OrthoBasis(dir)
	// Uniform point on the disk.
	rad := r * math.Sqrt(rng.Float64())
	phi := rng.Uniform(0, 2*math.Pi)
	sp, cp := math.Sincos(phi)
	p := cfg.Center().
		Add(u.Scale(rad * cp)).
		Add(w.Scale(rad * sp)).
		Sub(dir.Scale(2 * r)) // start upstream, outside the stack

	truth, deposited := Transport(cfg, p, dir, e, rng, nil)
	if len(truth) == 0 {
		return nil
	}
	hits := Measure(cfg, truth, rng)
	if len(hits) == 0 {
		return nil
	}
	return &Event{
		Hits:          hits,
		TrueSource:    dir.Neg(),
		TrueEnergy:    e,
		FullyAbsorbed: deposited > 0.97*e,
		TrueHits:      truth,
	}
}

// EffectiveAreaCm2 returns the aperture area used by ThrowPhoton, needed to
// convert photons/cm² into an expected throw count.
func EffectiveAreaCm2(cfg *Config) float64 {
	r := cfg.BoundingRadius()
	return math.Pi * r * r
}

// Burst describes a simulated GRB exposure.
type Burst struct {
	// Fluence is the time-integrated brightness in MeV/cm².
	Fluence float64
	// PolarDeg is the source polar angle in degrees: 0 = normally incident
	// from above, 90 = from the side.
	PolarDeg float64
	// AzimuthDeg is the source azimuth in degrees.
	AzimuthDeg float64
	// Spec is the photon spectrum; nil means spectrum.DefaultBand().
	Spec spectrum.Spectrum
	// Curve is the light curve; zero value means spectrum.DefaultLightCurve().
	Curve spectrum.LightCurve
}

// SourceDirection returns the unit vector pointing from the detector toward
// the burst.
func (b Burst) SourceDirection() geom.Vec {
	return geom.FromSpherical(geom.Rad(b.PolarDeg), geom.Rad(b.AzimuthDeg))
}

// SimulateBurst simulates all photons of a burst and returns the measured
// events (photons that left at least one measured hit). Event arrival times
// are drawn from the light curve.
func SimulateBurst(cfg *Config, b Burst, rng *xrand.RNG) []*Event {
	spec := b.Spec
	if spec == nil {
		spec = spectrum.DefaultBand()
	}
	curve := b.Curve
	if curve.Duration == 0 {
		curve = spectrum.DefaultLightCurve()
	}
	src := b.SourceDirection()
	dir := src.Neg() // photon travel direction

	mean := spectrum.PhotonsPerCm2(b.Fluence, spec) * EffectiveAreaCm2(cfg)
	n := rng.Poisson(mean)
	events := make([]*Event, 0, n/4)
	for i := 0; i < n; i++ {
		ev := ThrowPhoton(cfg, dir, spec.Sample(rng), rng)
		if ev == nil {
			continue
		}
		ev.Source = SourceGRB
		ev.ArrivalTime = curve.SampleTime(rng)
		events = append(events, ev)
	}
	return events
}
