// Package detector simulates the ADAPT gamma-ray detector: four layers of
// CsI(Na) scintillating tiles read out by crossed wavelength-shifting fiber
// arrays (paper §II-B, Fig. 1).
//
// The package replaces the paper's Geant4 + electronics-model substrate. It
// has two halves:
//
//   - transport.go: a Monte-Carlo photon transport through the tile stack
//     (Compton scattering with Klein–Nishina angles, photoelectric
//     absorption, simplified pair production with annihilation-photon
//     follow-up), producing ground-truth interaction hits; and
//   - response.go: the measurement model (unresolvable-hit merging,
//     fiber-pitch position quantization, energy smearing and thresholds,
//     per-hit reported uncertainties), producing the measured Event the
//     reconstruction sees.
//
// Coordinates: x and y span the tile plane, +z points at the sky. The top
// surface of the top tile is at z = 0; layers stack downward.
package detector

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/physics"
)

// SourceKind labels where a simulated photon came from.
type SourceKind int

const (
	// SourceGRB marks photons from the simulated burst.
	SourceGRB SourceKind = iota
	// SourceBackground marks atmospheric background particles.
	SourceBackground
)

// String implements fmt.Stringer.
func (k SourceKind) String() string {
	if k == SourceBackground {
		return "background"
	}
	return "grb"
}

// TrueHit is a ground-truth energy deposit from the transport Monte Carlo.
type TrueHit struct {
	Pos   geom.Vec // interaction point, cm
	E     float64  // deposited energy, MeV
	Layer int      // layer index, 0 = top
	Kind  physics.InteractionKind
	// Order is the time order of the deposit within its event (0 = first).
	Order int
}

// Hit is a measured energy deposit after the detector response model.
type Hit struct {
	Pos    geom.Vec // reported position, cm
	E      float64  // reported energy, MeV
	SigmaX float64  // reported 1σ position uncertainty per axis, cm
	SigmaY float64
	SigmaZ float64
	SigmaE float64 // reported 1σ energy uncertainty, MeV
	Layer  int
}

// Event is one detected gamma-ray photon: the measured hits plus the
// simulation ground truth needed for training labels and evaluation.
// Measured hits carry no time order — ordering them is the reconstruction's
// job (and a key source of the dη errors the paper's networks learn).
type Event struct {
	Hits []Hit

	// Ground truth (never visible to the flight pipeline):

	TrueSource    geom.Vec   // unit vector from detector toward the source
	TrueEnergy    float64    // incident photon energy, MeV
	Source        SourceKind // GRB or background
	FullyAbsorbed bool       // all incident energy deposited in the detector
	TrueHits      []TrueHit  // time-ordered ground-truth deposits
	ArrivalTime   float64    // seconds within the exposure window
}

// TotalE returns the summed measured energy of the event's hits.
func (ev *Event) TotalE() float64 {
	var t float64
	for i := range ev.Hits {
		t += ev.Hits[i].E
	}
	return t
}

// TotalSigmaE returns the 1σ uncertainty of TotalE (hits independent).
func (ev *Event) TotalSigmaE() float64 {
	var v float64
	for i := range ev.Hits {
		v += ev.Hits[i].SigmaE * ev.Hits[i].SigmaE
	}
	return math.Sqrt(v)
}

// Config describes the instrument geometry and measurement model. Use
// DefaultConfig and modify fields as needed; the zero value is not valid.
type Config struct {
	// Geometry.
	Layers        int     // number of tile layers
	TileHalfX     float64 // half-extent of each tile in x, cm
	TileHalfY     float64 // half-extent in y, cm
	TileThickness float64 // tile thickness in z, cm
	LayerPitch    float64 // vertical distance between tile top surfaces, cm

	// Readout.
	FiberPitch float64 // WLS fiber spacing; x/y positions quantize to it, cm

	// Tile segmentation. Each layer may be a grid of TileGridX×TileGridY
	// separate tiles with TileGap (cm) of dead space between adjacent
	// tiles. The defaults (grid 1, gap 0) model each layer as one
	// monolithic tile; the segmented geometry adds the dead-area and
	// edge-effect realism of a real multi-tile tray. Transport handles
	// gaps with Woodcock (delta) tracking, which is exact.
	TileGridX, TileGridY int
	TileGap              float64

	// Measurement model.
	EnergyResCoeff float64 // σ_E = coeff·√E ⊕ floor (MeV units)
	EnergyResFloor float64 // MeV
	HitThreshold   float64 // hits below this measured energy are lost, MeV
	MergeRadius    float64 // same-layer deposits closer than this merge, cm

	// Medium.
	Material physics.Material

	// MaxTrackedPhotons bounds secondary (annihilation) photon follow-up.
	MaxTrackedPhotons int

	// Unmodeled measurement effects. These perturb the *realized*
	// measurements but are NOT reflected in the reported per-hit
	// uncertainties — they reproduce the paper's premise that the analytic
	// propagation-of-error dη is frequently an underestimate "because our
	// detector error model is incomplete" (§II-B). Setting them to zero
	// gives an idealized detector whose reported σ are exact.

	// QuenchScaleMeV controls extra low-energy smearing from scintillator
	// quenching/nonlinearity: the realized energy σ is multiplied by
	// (1 + QuenchScaleMeV/E).
	QuenchScaleMeV float64
	// LightLossProb is the probability that a hit suffers partial light
	// collection (shadowed fiber, coupling loss), scaling its measured
	// energy by a uniform factor in [LightLossMin, LightLossMax].
	LightLossProb              float64
	LightLossMin, LightLossMax float64
	// FiberOutlierProb is the per-axis probability that a hit's x or y is
	// reported one or two fiber pitches away (optical crosstalk / missed
	// fiber).
	FiberOutlierProb float64
}

// DefaultConfig returns the ADAPT instrument model used throughout this
// reproduction: 4 layers of 40×40 cm CsI(Na) tiles, 1.5 cm thick, on a
// 10 cm vertical pitch, with ~6 mm effective fiber pitch and a 7%/√E energy
// resolution. Values are representative of the ADAPT design papers; see
// DESIGN.md §2.
func DefaultConfig() Config {
	return Config{
		Layers:            4,
		TileHalfX:         20,
		TileHalfY:         20,
		TileThickness:     1.5,
		LayerPitch:        10,
		FiberPitch:        0.6,
		EnergyResCoeff:    0.035,
		EnergyResFloor:    0.004,
		HitThreshold:      0.020,
		MergeRadius:       1.2,
		Material:          physics.CsI(),
		MaxTrackedPhotons: 8,
		QuenchScaleMeV:    0.02,
		LightLossProb:     0.08,
		LightLossMin:      0.70,
		LightLossMax:      0.95,
		FiberOutlierProb:  0.03,
	}
}

// Validate reports whether the configuration is physically meaningful.
func (c Config) Validate() error {
	switch {
	case c.Layers < 2:
		return errf("Layers must be >= 2, got %d", c.Layers)
	case c.TileHalfX <= 0 || c.TileHalfY <= 0:
		return errf("tile half-extents must be positive")
	case c.TileThickness <= 0:
		return errf("TileThickness must be positive")
	case c.LayerPitch < c.TileThickness:
		return errf("LayerPitch %g smaller than TileThickness %g", c.LayerPitch, c.TileThickness)
	case c.FiberPitch <= 0:
		return errf("FiberPitch must be positive")
	case c.Material.ElectronDensity <= 0:
		return errf("material electron density must be positive")
	}
	return nil
}

// InTileGap reports whether the x/y position falls in the dead space
// between tiles of a segmented layer. Always false for the monolithic
// default geometry.
func (c *Config) InTileGap(x, y float64) bool {
	return inGapAxis(x, c.TileHalfX, c.TileGridX, c.TileGap) ||
		inGapAxis(y, c.TileHalfY, c.TileGridY, c.TileGap)
}

// inGapAxis checks one axis: the span [-half, half] divides into n cells;
// each cell's central (width − gap) band is tile, the rest gap. The outer
// edges of the outer tiles stay live so the total footprint is unchanged.
func inGapAxis(v, half float64, n int, gap float64) bool {
	if n <= 1 || gap <= 0 {
		return false
	}
	w := 2 * half / float64(n)
	u := v + half
	cell := int(u / w)
	if cell < 0 {
		cell = 0
	}
	if cell >= n {
		cell = n - 1
	}
	frac := u - float64(cell)*w
	// Interior boundaries only: half a gap on each side of each internal
	// edge.
	if cell > 0 && frac < gap/2 {
		return true
	}
	if cell < n-1 && frac > w-gap/2 {
		return true
	}
	return false
}

// LayerTopZ returns the z coordinate of the top surface of layer i.
func (c Config) LayerTopZ(i int) float64 { return -float64(i) * c.LayerPitch }

// LayerBottomZ returns the z coordinate of the bottom surface of layer i.
func (c Config) LayerBottomZ(i int) float64 { return c.LayerTopZ(i) - c.TileThickness }

// Height returns the full vertical extent of the stack in cm.
func (c Config) Height() float64 { return float64(c.Layers-1)*c.LayerPitch + c.TileThickness }

// BoundingRadius returns the radius of a sphere centered at the stack's
// geometric center that contains the whole detector. The photon generators
// aim at this sphere.
func (c Config) BoundingRadius() float64 {
	h := c.Height() / 2
	return math.Sqrt(c.TileHalfX*c.TileHalfX + c.TileHalfY*c.TileHalfY + h*h)
}

// Center returns the geometric center of the stack.
func (c Config) Center() geom.Vec { return geom.Vec{X: 0, Y: 0, Z: -c.Height() / 2} }

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }
