package detector

import (
	"math"

	"repro/internal/geom"
	"repro/internal/physics"
	"repro/internal/units"
	"repro/internal/xrand"
)

// lowEnergyCutoff: photons below this energy are deposited locally rather
// than tracked further; their range in CsI is well under a millimeter.
const lowEnergyCutoff = 0.015 // MeV

// photonState is one photon being tracked through the stack.
type photonState struct {
	pos geom.Vec
	dir geom.Vec // unit travel direction
	e   float64  // MeV
}

// Transport propagates a photon with initial position pos (must be outside
// the tiles or on their boundary), unit travel direction dir, and energy e
// (MeV) through the tile stack, appending ground-truth hits to dst and
// returning the extended slice together with the total deposited energy.
//
// Pair production deposits e − 2·mec² locally and launches two back-to-back
// 511 keV annihilation photons, which are tracked like primaries (bounded by
// cfg.MaxTrackedPhotons to keep the worst case finite).
func Transport(cfg *Config, pos, dir geom.Vec, e float64, rng *xrand.RNG, dst []TrueHit) ([]TrueHit, float64) {
	var deposited float64
	queue := make([]photonState, 0, 4)
	queue = append(queue, photonState{pos: pos, dir: dir, e: e})
	tracked := 1
	order := 0

	for len(queue) > 0 {
		ph := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		for ph.e > lowEnergyCutoff {
			tEnter, tExit, layer, ok := nextSlabSegment(cfg, ph.pos, ph.dir)
			if !ok {
				break // escapes the stack
			}
			mu := cfg.Material.MuTotal(ph.e)
			free := rng.Exp(mu)
			if free > tExit-tEnter {
				// No interaction in this slab; jump just past its far face.
				ph.pos = ph.pos.Add(ph.dir.Scale(tExit + 1e-9))
				continue
			}
			ph.pos = ph.pos.Add(ph.dir.Scale(tEnter + free))

			// Woodcock tracking through segmented trays: a sampled
			// interaction point that lands in a tile gap is a virtual
			// collision — the photon continues unchanged. This is exact for
			// piecewise-constant attenuation with the tile material as the
			// majorant.
			if cfg.InTileGap(ph.pos.X, ph.pos.Y) {
				ph.pos = ph.pos.Add(ph.dir.Scale(1e-9))
				continue
			}

			kind := chooseInteraction(cfg.Material, ph.e, rng)
			switch kind {
			case physics.KindCompton:
				cosTheta, eOut := physics.SampleKleinNishina(ph.e, rng)
				dep := ph.e - eOut
				deposited += dep
				dst = append(dst, TrueHit{Pos: ph.pos, E: dep, Layer: layer, Kind: kind, Order: order})
				order++
				ph.dir = scatterDirection(ph.dir, cosTheta, rng)
				ph.e = eOut

			case physics.KindPhoto:
				deposited += ph.e
				dst = append(dst, TrueHit{Pos: ph.pos, E: ph.e, Layer: layer, Kind: kind, Order: order})
				order++
				ph.e = 0

			case physics.KindPair:
				dep := ph.e - 2*units.ElectronMassMeV
				if dep < 0 {
					dep = 0
				}
				deposited += dep
				dst = append(dst, TrueHit{Pos: ph.pos, E: dep, Layer: layer, Kind: kind, Order: order})
				order++
				// Positron annihilates ~in place: two back-to-back 511 keV
				// photons in a random direction.
				if tracked+2 <= cfg.MaxTrackedPhotons {
					x, y, z := rng.UnitVectorPolarRange(0, math.Pi)
					d := geom.Vec{X: x, Y: y, Z: z}
					queue = append(queue,
						photonState{pos: ph.pos, dir: d, e: units.ElectronMassMeV},
						photonState{pos: ph.pos, dir: d.Neg(), e: units.ElectronMassMeV},
					)
					tracked += 2
				}
				ph.e = 0
			}
		}
		if ph.e > 0 && ph.e <= lowEnergyCutoff {
			// Deposit the residual locally if we are inside a tile;
			// otherwise it escapes. Locality check: the photon stopped at
			// its last interaction point, which is inside a tile whenever we
			// got here via scattering, so find the containing layer.
			if layer, inside := containingLayer(cfg, ph.pos); inside {
				deposited += ph.e
				dst = append(dst, TrueHit{Pos: ph.pos, E: ph.e, Layer: layer, Kind: physics.KindPhoto, Order: order})
				order++
			}
		}
	}
	return dst, deposited
}

// chooseInteraction picks the process at an interaction vertex in proportion
// to the linear attenuation coefficients.
func chooseInteraction(m physics.Material, e float64, rng *xrand.RNG) physics.InteractionKind {
	muC := m.MuCompton(e)
	muP := m.MuPhoto(e)
	muPair := m.MuPair(e)
	u := rng.Float64() * (muC + muP + muPair)
	switch {
	case u < muC:
		return physics.KindCompton
	case u < muC+muP:
		return physics.KindPhoto
	default:
		return physics.KindPair
	}
}

// scatterDirection rotates dir by the scattering angle with uniform azimuth.
func scatterDirection(dir geom.Vec, cosTheta float64, rng *xrand.RNG) geom.Vec {
	theta := math.Acos(geom.Clamp(cosTheta, -1, 1))
	phi := rng.Uniform(0, 2*math.Pi)
	return geom.ConeDirection(dir, theta, phi)
}

// nextSlabSegment finds the closest forward segment [tEnter, tExit] of the
// ray pos + t·dir that lies inside a tile, together with that tile's layer.
// Distances are relative to pos. ok is false when the ray misses all
// remaining tiles.
func nextSlabSegment(cfg *Config, pos, dir geom.Vec) (tEnter, tExit float64, layer int, ok bool) {
	const eps = 1e-12
	bestEnter := math.Inf(1)
	for i := 0; i < cfg.Layers; i++ {
		top, bottom := cfg.LayerTopZ(i), cfg.LayerBottomZ(i)
		var t0, t1 float64
		if math.Abs(dir.Z) < eps {
			// Ray parallel to the slab faces: inside the layer's z-range or
			// not at all.
			if pos.Z > top || pos.Z < bottom {
				continue
			}
			t0, t1 = 0, math.Inf(1)
		} else {
			ta := (top - pos.Z) / dir.Z
			tb := (bottom - pos.Z) / dir.Z
			t0, t1 = math.Min(ta, tb), math.Max(ta, tb)
		}
		// Clip to the tile's x/y extent.
		tx0, tx1, okx := clipAxis(pos.X, dir.X, -cfg.TileHalfX, cfg.TileHalfX)
		if !okx {
			continue
		}
		ty0, ty1, oky := clipAxis(pos.Y, dir.Y, -cfg.TileHalfY, cfg.TileHalfY)
		if !oky {
			continue
		}
		t0 = math.Max(t0, math.Max(tx0, ty0))
		t1 = math.Min(t1, math.Min(tx1, ty1))
		if t1 <= math.Max(t0, 0) {
			continue
		}
		t0 = math.Max(t0, 0)
		if t0 < bestEnter {
			bestEnter, tEnter, tExit, layer, ok = t0, t0, t1, i, true
		}
	}
	return tEnter, tExit, layer, ok
}

// clipAxis returns the t-interval where pos+t·dir stays within [lo, hi] on
// one axis; ok is false if the interval is empty.
func clipAxis(pos, dir, lo, hi float64) (t0, t1 float64, ok bool) {
	const eps = 1e-12
	if math.Abs(dir) < eps {
		if pos < lo || pos > hi {
			return 0, 0, false
		}
		return math.Inf(-1), math.Inf(1), true
	}
	ta := (lo - pos) / dir
	tb := (hi - pos) / dir
	if ta > tb {
		ta, tb = tb, ta
	}
	return ta, tb, true
}

// containingLayer returns the layer whose tile contains p, if any.
func containingLayer(cfg *Config, p geom.Vec) (int, bool) {
	if p.X < -cfg.TileHalfX || p.X > cfg.TileHalfX || p.Y < -cfg.TileHalfY || p.Y > cfg.TileHalfY {
		return 0, false
	}
	for i := 0; i < cfg.Layers; i++ {
		if p.Z <= cfg.LayerTopZ(i) && p.Z >= cfg.LayerBottomZ(i) {
			return i, true
		}
	}
	return 0, false
}
