package detector

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

func mkTimedEvent(t float64, nHits int) *Event {
	ev := &Event{ArrivalTime: t, TrueEnergy: 1}
	for i := 0; i < nHits; i++ {
		ev.Hits = append(ev.Hits, Hit{E: 0.1, Layer: i % 4})
	}
	return ev
}

func TestMergePileUpDisabled(t *testing.T) {
	evs := []*Event{mkTimedEvent(0.5, 2), mkTimedEvent(0.1, 1)}
	out := MergePileUp(evs, 0)
	if len(out) != 2 {
		t.Fatalf("window 0 merged events")
	}
	if out[0].ArrivalTime != 0.1 {
		t.Error("output not sorted by arrival")
	}
}

func TestMergePileUpGroups(t *testing.T) {
	evs := []*Event{
		mkTimedEvent(0.100000, 2),
		mkTimedEvent(0.100001, 3), // within 2 µs of the first
		mkTimedEvent(0.100002, 1), // chains onto the second
		mkTimedEvent(0.200000, 2), // isolated
	}
	out := MergePileUp(evs, 2e-6)
	if len(out) != 2 {
		t.Fatalf("got %d events, want 2", len(out))
	}
	merged := out[0]
	if len(merged.Hits) != 6 {
		t.Errorf("merged event has %d hits, want 6", len(merged.Hits))
	}
	if math.Abs(merged.TrueEnergy-3) > 1e-12 {
		t.Errorf("merged energy %v, want 3", merged.TrueEnergy)
	}
	if merged.FullyAbsorbed {
		t.Error("merged event claims full absorption")
	}
	if out[1].ArrivalTime != 0.2 {
		t.Error("isolated event lost")
	}
	if got := PileUpFraction(4, len(out)); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("PileUpFraction = %v", got)
	}
}

func TestMergePileUpRealisticRate(t *testing.T) {
	// At 20k events/s and a 1 µs window, the collision probability per
	// event is ~2%; check the merged fraction lands in that regime.
	rng := xrand.New(1)
	var evs []*Event
	n := 20000
	for i := 0; i < n; i++ {
		evs = append(evs, mkTimedEvent(rng.Float64(), 1))
	}
	out := MergePileUp(evs, 1e-6)
	frac := PileUpFraction(n, len(out))
	if frac < 0.005 || frac > 0.06 {
		t.Errorf("pile-up fraction %v outside the Poisson expectation band (~2%%)", frac)
	}
}

func TestAPTConfig(t *testing.T) {
	apt := APTConfig()
	if err := apt.Validate(); err != nil {
		t.Fatalf("APT config invalid: %v", err)
	}
	adapt := DefaultConfig()
	if apt.TileHalfX <= adapt.TileHalfX || apt.Layers <= adapt.Layers {
		t.Error("APT not larger than ADAPT")
	}
	// The aperture drives dim-burst sensitivity: APT's must be an order of
	// magnitude larger.
	if EffectiveAreaCm2(&apt) < 8*EffectiveAreaCm2(&adapt) {
		t.Errorf("APT aperture %v cm² not ≫ ADAPT's %v cm²", EffectiveAreaCm2(&apt), EffectiveAreaCm2(&adapt))
	}
}

func TestTileGapGeometry(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.InTileGap(0, 0) || cfg.InTileGap(19, -19) {
		t.Error("monolithic geometry has gaps")
	}
	cfg.TileGridX, cfg.TileGridY = 2, 2
	cfg.TileGap = 1.0
	// The internal boundary sits at x=0: ±0.5 cm around it is dead.
	if !cfg.InTileGap(0.2, 5) || !cfg.InTileGap(-0.4, 5) {
		t.Error("internal boundary not dead")
	}
	if cfg.InTileGap(0.6, 5) || cfg.InTileGap(5, 5) {
		t.Error("live area marked dead")
	}
	// Outer edges stay live.
	if cfg.InTileGap(19.9, 0.8) {
		t.Error("outer edge marked dead")
	}
}

func TestTileGapsReduceDetection(t *testing.T) {
	mono := DefaultConfig()
	mono.QuenchScaleMeV, mono.LightLossProb, mono.FiberOutlierProb = 0, 0, 0
	seg := mono
	seg.TileGridX, seg.TileGridY = 4, 4
	seg.TileGap = 2.0 // 15% dead area per axis pair: a big, visible effect

	rng1 := xrand.New(9)
	rng2 := xrand.New(9)
	n := 4000
	hitsMono, hitsSeg := 0, 0
	for i := 0; i < n; i++ {
		if ev := ThrowPhoton(&mono, geom.Vec{Z: -1}, 0.5, rng1); ev != nil {
			hitsMono++
		}
		if ev := ThrowPhoton(&seg, geom.Vec{Z: -1}, 0.5, rng2); ev != nil {
			hitsSeg++
			for _, h := range ev.TrueHits {
				if seg.InTileGap(h.Pos.X, h.Pos.Y) {
					t.Fatal("interaction recorded inside a tile gap")
				}
			}
		}
	}
	if hitsSeg >= hitsMono {
		t.Errorf("segmented tray detected %d vs monolithic %d; gaps had no effect", hitsSeg, hitsMono)
	}
	// The reduction should be comparable to the dead-area fraction, not
	// wildly larger (Woodcock tracking must not bias attenuation).
	ratio := float64(hitsSeg) / float64(hitsMono)
	if ratio < 0.6 {
		t.Errorf("detection ratio %v; gaps removing too much", ratio)
	}
}
