package detector

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

func BenchmarkTransport(b *testing.B) {
	cfg := DefaultConfig()
	rng := xrand.New(1)
	var hits []TrueHit
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hits, _ = Transport(&cfg, geom.Vec{X: 1, Y: -2, Z: 5}, geom.Vec{Z: -1}, 1.0, rng, hits[:0])
	}
}

func BenchmarkThrowPhoton(b *testing.B) {
	cfg := DefaultConfig()
	rng := xrand.New(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ThrowPhoton(&cfg, geom.Vec{Z: -1}, 0.8, rng)
	}
}

func BenchmarkSimulateBurst(b *testing.B) {
	cfg := DefaultConfig()
	rng := xrand.New(3)
	burst := Burst{Fluence: 1.0, PolarDeg: 20}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SimulateBurst(&cfg, burst, rng)
	}
}

func BenchmarkMeasure(b *testing.B) {
	cfg := DefaultConfig()
	rng := xrand.New(4)
	truth, _ := Transport(&cfg, geom.Vec{Z: 5}, geom.Vec{Z: -1}, 2.0, rng, nil)
	for len(truth) < 3 {
		truth, _ = Transport(&cfg, geom.Vec{Z: 5}, geom.Vec{Z: -1}, 2.0, rng, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Measure(&cfg, truth, rng)
	}
}
