package detector

import "sort"

// MergePileUp models the detector's finite event-building latency: photons
// arriving within windowSec of each other cannot be separated and are read
// out as a single combined event (paper §VI lists "multiple events that
// arrive simultaneously to within the detection latency of the instrument"
// as a future error source).
//
// Events are grouped by a chain rule on arrival time — each event joins the
// current group if it arrives within windowSec of the group's *latest*
// member — and each group merges into one event carrying all hits. The
// merged event's ground truth is taken from the group's earliest member
// (the photon that opened the readout window); a merged event is therefore
// usually mis-labeled for every other photon in it, which is exactly the
// confusion pile-up causes. windowSec <= 0 returns the input unchanged
// (sorted by arrival).
func MergePileUp(events []*Event, windowSec float64) []*Event {
	sorted := append([]*Event(nil), events...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ArrivalTime < sorted[j].ArrivalTime })
	if windowSec <= 0 || len(sorted) < 2 {
		return sorted
	}
	out := make([]*Event, 0, len(sorted))
	i := 0
	for i < len(sorted) {
		group := sorted[i]
		latest := group.ArrivalTime
		j := i + 1
		for j < len(sorted) && sorted[j].ArrivalTime-latest <= windowSec {
			latest = sorted[j].ArrivalTime
			j++
		}
		if j == i+1 {
			out = append(out, group)
			i = j
			continue
		}
		merged := &Event{
			Hits:          append([]Hit(nil), group.Hits...),
			TrueSource:    group.TrueSource,
			TrueEnergy:    group.TrueEnergy,
			Source:        group.Source,
			FullyAbsorbed: false, // combined deposits never represent one photon
			TrueHits:      append([]TrueHit(nil), group.TrueHits...),
			ArrivalTime:   group.ArrivalTime,
		}
		for _, ev := range sorted[i+1 : j] {
			merged.Hits = append(merged.Hits, ev.Hits...)
			merged.TrueHits = append(merged.TrueHits, ev.TrueHits...)
			merged.TrueEnergy += ev.TrueEnergy
		}
		out = append(out, merged)
		i = j
	}
	return out
}

// PileUpFraction reports the fraction of input events that were absorbed
// into a merged event for the given window, a diagnostic for choosing
// readout parameters.
func PileUpFraction(nIn, nOut int) float64 {
	if nIn == 0 {
		return 0
	}
	return float64(nIn-nOut) / float64(nIn)
}
