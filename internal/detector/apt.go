package detector

// APTConfig returns an instrument model for the full Advanced
// Particle-astrophysics Telescope, the orbital mission ADAPT prototypes
// (paper §I, §VI). Relative to ADAPT it has a much larger active area and
// more tracking layers, which is what lets it localize even dim
// (< 0.1 MeV/cm²) bursts — the paper's future-work target of "a degree or
// less". Dimensions are representative of the APT concept papers (a ~3 m²
// class instrument with ~20 scintillator layers); the measurement model is
// inherited from the ADAPT design.
func APTConfig() Config {
	cfg := DefaultConfig()
	cfg.Layers = 20
	cfg.TileHalfX = 90
	cfg.TileHalfY = 90
	cfg.LayerPitch = 8
	return cfg
}
