package detector

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// invSqrt12 is the standard deviation of a unit-width uniform distribution,
// used for quantization uncertainties.
const invSqrt12 = 0.2886751345948129

// Measure applies the detector response model to ground-truth hits,
// returning the measured hits the reconstruction sees:
//
//  1. deposits in the same layer closer than MergeRadius merge into one
//     (energy-weighted centroid) — the fibers cannot resolve them;
//  2. x/y positions quantize to the fiber pitch; z is reported at the
//     energy-weighted depth with thickness-scale uncertainty;
//  3. energies are smeared with σ_E = coeff·√E ⊕ floor;
//  4. merged hits whose measured energy falls below HitThreshold are lost.
//
// The reported uncertainties (SigmaX/Y/Z/SigmaE) are what the flight
// software would know: quantization plus the resolution model — NOT the
// realized errors.
func Measure(cfg *Config, truth []TrueHit, rng *xrand.RNG) []Hit {
	if len(truth) == 0 {
		return nil
	}
	merged := mergeDeposits(cfg, truth)
	hits := make([]Hit, 0, len(merged))
	for _, m := range merged {
		// Realized energy: the reported resolution model, degraded by the
		// unmodeled effects (quenching at low deposit, occasional partial
		// light collection). The reported SigmaE below deliberately uses
		// only the simple model — the flight software doesn't know better.
		mean := m.E
		if cfg.LightLossProb > 0 && rng.Bool(cfg.LightLossProb) {
			mean *= rng.Uniform(cfg.LightLossMin, cfg.LightLossMax)
		}
		sigma := cfg.SigmaE(m.E)
		if cfg.QuenchScaleMeV > 0 {
			sigma *= 1 + cfg.QuenchScaleMeV/math.Max(m.E, 1e-3)
		}
		e := rng.Gaussian(mean, sigma)
		if e < cfg.HitThreshold {
			continue
		}
		x := quantize(m.Pos.X, cfg.FiberPitch)
		y := quantize(m.Pos.Y, cfg.FiberPitch)
		if cfg.FiberOutlierProb > 0 {
			if rng.Bool(cfg.FiberOutlierProb) {
				x += fiberJump(cfg.FiberPitch, rng)
			}
			if rng.Bool(cfg.FiberOutlierProb) {
				y += fiberJump(cfg.FiberPitch, rng)
			}
		}
		h := Hit{
			Pos: geom.Vec{
				X: x,
				Y: y,
				Z: rng.Gaussian(m.Pos.Z, cfg.TileThickness*invSqrt12/2),
			},
			E:      e,
			SigmaX: cfg.FiberPitch * invSqrt12,
			SigmaY: cfg.FiberPitch * invSqrt12,
			SigmaZ: cfg.TileThickness * invSqrt12,
			SigmaE: cfg.SigmaE(e),
			Layer:  m.Layer,
		}
		hits = append(hits, h)
	}
	return hits
}

// SigmaE returns the modeled 1σ energy resolution at energy e (MeV).
func (c *Config) SigmaE(e float64) float64 {
	if e < 0 {
		e = 0
	}
	s := c.EnergyResCoeff * math.Sqrt(e)
	return math.Sqrt(s*s + c.EnergyResFloor*c.EnergyResFloor)
}

// quantize snaps v to the center of its pitch-wide bin.
func quantize(v, pitch float64) float64 {
	return (math.Floor(v/pitch) + 0.5) * pitch
}

// fiberJump returns an unmodeled readout displacement of ±1 or ±2 fiber
// pitches (crosstalk to a neighbouring fiber, or a dead fiber resolved to
// the next one over).
func fiberJump(pitch float64, rng *xrand.RNG) float64 {
	mag := pitch
	if rng.Bool(0.25) {
		mag = 2 * pitch
	}
	if rng.Bool(0.5) {
		return -mag
	}
	return mag
}

// mergedDeposit is an intermediate cluster of unresolvable deposits.
type mergedDeposit struct {
	Pos   geom.Vec
	E     float64
	Layer int
	// FirstOrder is the earliest time order among the merged deposits; used
	// only for diagnostics/tests, never by the flight path.
	FirstOrder int
}

// mergeDeposits greedily clusters same-layer deposits within MergeRadius in
// the x/y plane, weighting positions by energy.
func mergeDeposits(cfg *Config, truth []TrueHit) []mergedDeposit {
	// Work on an index slice sorted by layer then energy (descending) so the
	// largest deposit in each cluster anchors it deterministically.
	idx := make([]int, len(truth))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ta, tb := truth[idx[a]], truth[idx[b]]
		if ta.Layer != tb.Layer {
			return ta.Layer < tb.Layer
		}
		return ta.E > tb.E
	})
	var out []mergedDeposit
	used := make([]bool, len(truth))
	r2 := cfg.MergeRadius * cfg.MergeRadius
	for _, i := range idx {
		if used[i] {
			continue
		}
		anchor := truth[i]
		used[i] = true
		cluster := mergedDeposit{Pos: anchor.Pos.Scale(anchor.E), E: anchor.E, Layer: anchor.Layer, FirstOrder: anchor.Order}
		for _, j := range idx {
			if used[j] || truth[j].Layer != anchor.Layer {
				continue
			}
			dx := truth[j].Pos.X - anchor.Pos.X
			dy := truth[j].Pos.Y - anchor.Pos.Y
			if dx*dx+dy*dy > r2 {
				continue
			}
			used[j] = true
			cluster.Pos = cluster.Pos.Add(truth[j].Pos.Scale(truth[j].E))
			cluster.E += truth[j].E
			if truth[j].Order < cluster.FirstOrder {
				cluster.FirstOrder = truth[j].Order
			}
		}
		if cluster.E > 0 {
			cluster.Pos = cluster.Pos.Scale(1 / cluster.E)
		}
		out = append(out, cluster)
	}
	return out
}

// Perturb adds Gaussian noise with standard deviation epsilonPct percent of
// each value to the spatial and energy measurements of every hit, as in the
// paper's robustness experiment (§IV): x' ~ N(x, (x·ε/100)²). The event is
// modified in place. Reported uncertainties are left unchanged — the point
// of the experiment is noise the flight software does not know about.
func Perturb(ev *Event, epsilonPct float64, rng *xrand.RNG) {
	if epsilonPct == 0 {
		return
	}
	f := epsilonPct / 100
	for i := range ev.Hits {
		h := &ev.Hits[i]
		h.Pos.X = rng.Gaussian(h.Pos.X, math.Abs(h.Pos.X)*f)
		h.Pos.Y = rng.Gaussian(h.Pos.Y, math.Abs(h.Pos.Y)*f)
		h.Pos.Z = rng.Gaussian(h.Pos.Z, math.Abs(h.Pos.Z)*f)
		h.E = rng.Gaussian(h.E, math.Abs(h.E)*f)
	}
}
