// Package units defines the physical constants and unit conventions used
// throughout the ADAPT reproduction.
//
// Conventions: energies are in MeV, lengths in cm, times in seconds, angles
// in radians. Fluence is time-integrated energy flux in MeV/cm².
package units

// ElectronMassMeV is the electron rest energy m_e c² in MeV. Compton
// kinematics everywhere is expressed relative to this scale.
const ElectronMassMeV = 0.510998950

// KeV converts a value in keV to MeV.
func KeV(e float64) float64 { return e * 1e-3 }

// MinSimEnergyMeV is the minimum simulated photon energy. The paper fixes a
// 30 keV floor for its evaluation bursts (§IV footnote 2).
const MinSimEnergyMeV = 0.030

// MaxSimEnergyMeV caps the simulated band; the ADAPT design targets the MeV
// regime and the Band spectrum contributes negligibly above ~30 MeV.
const MaxSimEnergyMeV = 30.0
