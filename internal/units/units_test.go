package units

import (
	"math"
	"testing"
)

func TestConstants(t *testing.T) {
	// CODATA electron rest energy: 0.51099895 MeV.
	if math.Abs(ElectronMassMeV-0.51099895) > 1e-6 {
		t.Errorf("electron mass = %v MeV", ElectronMassMeV)
	}
	if KeV(511) != 0.511 {
		t.Errorf("KeV(511) = %v", KeV(511))
	}
	// The paper's §IV footnote: 30 keV minimum simulated energy.
	if MinSimEnergyMeV != 0.030 {
		t.Errorf("minimum simulated energy = %v", MinSimEnergyMeV)
	}
	if MaxSimEnergyMeV <= MinSimEnergyMeV {
		t.Error("degenerate simulation band")
	}
}
