package sky

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/localize"
	"repro/internal/recon"
	"repro/internal/xrand"
)

func TestGridCoversHemisphere(t *testing.T) {
	g := NewGrid(16)
	if g.NumPixels() < 100 {
		t.Fatalf("only %d pixels", g.NumPixels())
	}
	// Total solid angle = 2π (the hemisphere).
	var sr float64
	for i := 0; i < g.NumPixels(); i++ {
		sr += g.PixelSr(i)
	}
	if math.Abs(sr-2*math.Pi) > 1e-9 {
		t.Errorf("total solid angle %v, want 2π", sr)
	}
	// Pixel areas roughly equal: max/min within a factor ~3 (the polar cap
	// pixel is the outlier).
	mn, mx := math.Inf(1), math.Inf(-1)
	for i := 0; i < g.NumPixels(); i++ {
		a := g.PixelSr(i)
		mn = math.Min(mn, a)
		mx = math.Max(mx, a)
	}
	if mx/mn > 4 {
		t.Errorf("pixel area ratio %v; not equal-area", mx/mn)
	}
}

func TestFindInvertsDir(t *testing.T) {
	g := NewGrid(12)
	for i := 0; i < g.NumPixels(); i++ {
		if got := g.Find(g.Dir(i)); got != i {
			t.Fatalf("Find(Dir(%d)) = %d", i, got)
		}
	}
}

func TestFindArbitraryDirections(t *testing.T) {
	g := NewGrid(10)
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		x, y, z := rng.UnitVectorPolarRange(0, math.Pi/2)
		d := geom.Vec{X: x, Y: y, Z: z}
		i := g.Find(d)
		if i < 0 || i >= g.NumPixels() {
			return false
		}
		// The pixel center must be within a few pixel scales of d.
		return geom.AngleBetween(g.Dir(i), d) < 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// ringsAround builds noisy rings through s.
func ringsAround(s geom.Vec, n int, noise float64, rng *xrand.RNG) []*recon.Ring {
	var rings []*recon.Ring
	for i := 0; i < n; i++ {
		x, y, z := rng.UnitVectorPolarRange(0, math.Pi)
		axis := geom.Vec{X: x, Y: y, Z: z}
		rings = append(rings, &recon.Ring{
			Ring: geom.Ring{Axis: axis, Eta: geom.Clamp(s.Dot(axis)+rng.Gaussian(0, noise), -1, 1), DEta: noise},
		})
	}
	return rings
}

func TestLikelihoodPeaksAtSource(t *testing.T) {
	cfg := localize.DefaultConfig()
	rng := xrand.New(1)
	s := geom.FromSpherical(geom.Rad(35), geom.Rad(120))
	rings := ringsAround(s, 80, 0.02, rng)
	g := NewGrid(16)
	m := Likelihood(&cfg, rings, g)
	best, _ := m.Best()
	if d := geom.Deg(geom.AngleBetween(best, s)); d > 6 {
		t.Errorf("map peak %v° from the source", d)
	}
	if !m.Contains(s, 0.95) {
		t.Error("95% credible region misses the source")
	}
	if m.String() == "" {
		t.Error("empty map summary")
	}
}

func TestCredibleAreaShrinksWithMoreRings(t *testing.T) {
	cfg := localize.DefaultConfig()
	s := geom.FromSpherical(geom.Rad(20), geom.Rad(-40))
	g := NewGrid(24)
	few := Likelihood(&cfg, ringsAround(s, 6, 0.15, xrand.New(2)), g)
	many := Likelihood(&cfg, ringsAround(s, 300, 0.15, xrand.New(3)), g)
	aFew := few.CredibleAreaDeg2(0.9)
	aMany := many.CredibleAreaDeg2(0.9)
	if aMany >= aFew {
		t.Errorf("more rings did not shrink the 90%% area: %v vs %v deg²", aMany, aFew)
	}
}

func TestPosteriorNormalized(t *testing.T) {
	cfg := localize.DefaultConfig()
	rng := xrand.New(4)
	s := geom.Vec{Z: 1}
	m := Likelihood(&cfg, ringsAround(s, 40, 0.02, rng), NewGrid(10))
	post := m.Posterior()
	var total float64
	for _, p := range post {
		if p < 0 {
			t.Fatal("negative posterior")
		}
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("posterior sums to %v", total)
	}
	// Credible regions nest: 50% ⊆ 90%.
	r50 := len(m.CredibleRegion(0.5))
	r90 := len(m.CredibleRegion(0.9))
	if r50 > r90 {
		t.Errorf("50%% region (%d px) larger than 90%% (%d px)", r50, r90)
	}
}

func TestTemperedWidensRegions(t *testing.T) {
	cfg := localize.DefaultConfig()
	rng := xrand.New(5)
	s := geom.FromSpherical(geom.Rad(25), geom.Rad(60))
	m := Likelihood(&cfg, ringsAround(s, 100, 0.03, rng), NewGrid(20))
	a1 := m.CredibleAreaDeg2(0.9)
	a8 := m.Tempered(8).CredibleAreaDeg2(0.9)
	if a8 <= a1 {
		t.Errorf("tempering did not widen the region: %v vs %v", a8, a1)
	}
	// The peak does not move under tempering.
	b1, _ := m.Best()
	b8, _ := m.Tempered(8).Best()
	if b1 != b8 {
		t.Error("tempering moved the peak")
	}
}

func TestTemperedEdgeCases(t *testing.T) {
	cfg := localize.DefaultConfig()
	rng := xrand.New(9)
	s := geom.FromSpherical(geom.Rad(15), geom.Rad(200))
	m := Likelihood(&cfg, ringsAround(s, 60, 0.04, rng), NewGrid(14))

	// T = 1 is the exact identity: same log-likelihoods, same posterior.
	t1 := m.Tempered(1)
	for i := range m.LogL {
		if t1.LogL[i] != m.LogL[i] {
			t.Fatalf("Tempered(1) changed LogL[%d]: %v vs %v", i, t1.LogL[i], m.LogL[i])
		}
	}

	// Tempering preserves the normalization invariant: the posterior of a
	// tempered map still sums to 1 (it is a different distribution, not a
	// rescaled one).
	for _, temp := range []float64{1, 2, 8, 32} {
		var total float64
		for _, p := range m.Tempered(temp).Posterior() {
			total += p
		}
		if math.Abs(total-1) > 1e-9 {
			t.Errorf("Tempered(%v) posterior sums to %v", temp, total)
		}
	}

	// Non-positive temperatures are a caller bug: panic, never silently
	// substitute.
	for _, temp := range []float64{0, -1, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Tempered(%v) did not panic", temp)
				}
			}()
			m.Tempered(temp)
		}()
	}
}

// TestCredibleAreaMonotone property-checks that the credible area never
// shrinks as the requested probability level grows — the defining ordering
// of nested credible regions.
func TestCredibleAreaMonotone(t *testing.T) {
	cfg := localize.DefaultConfig()
	rng := xrand.New(10)
	s := geom.FromSpherical(geom.Rad(40), geom.Rad(-60))
	m := Likelihood(&cfg, ringsAround(s, 50, 0.08, rng), NewGrid(16))
	f := func(a, b float64) bool {
		// Map two arbitrary floats into (0, 1) levels with p1 <= p2.
		p1 := math.Abs(math.Mod(a, 1))
		p2 := math.Abs(math.Mod(b, 1))
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return m.CredibleAreaDeg2(p1) <= m.CredibleAreaDeg2(p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCredibleRegionTieDeterminism pins the tie contract: when the
// credible boundary falls inside a run of equal-probability pixels, the
// region must include the lowest-indexed ones — a pure function of the
// posterior, not of sort internals.
func TestCredibleRegionTieDeterminism(t *testing.T) {
	g := NewGrid(6)
	// A perfectly flat map: every pixel ties. The posterior is then
	// proportional to pixel solid angle, which is equal within each band,
	// so ties abound at every boundary.
	m := &Map{Grid: g, LogL: make([]float64, g.NumPixels())}
	region := m.CredibleRegion(0.5)
	again := m.CredibleRegion(0.5)
	if len(region) != len(again) {
		t.Fatalf("tie-broken region size changed: %d vs %d", len(region), len(again))
	}
	for i := range region {
		if region[i] != again[i] {
			t.Fatalf("tie-broken region differs at %d: %d vs %d", i, region[i], again[i])
		}
	}
	// Among equal-probability pixels the lowest indices win. Pixels within
	// one band have identical solid angle (hence identical posterior on a
	// flat map); verify the selected set within each band is a prefix-free
	// ordered choice: sorted region indices per band must be the smallest
	// indices of that band that appear at all.
	inRegion := make(map[int]bool, len(region))
	for _, i := range region {
		inRegion[i] = true
	}
	post := m.Posterior()
	for _, i := range region {
		for j := 0; j < i; j++ {
			if post[j] == post[i] && !inRegion[j] {
				t.Fatalf("pixel %d in region but equal-probability lower index %d is not", i, j)
			}
		}
	}
}

func TestMixtureLikelihoodDownweightsBackground(t *testing.T) {
	cfg := localize.DefaultConfig()
	rng := xrand.New(6)
	s := geom.FromSpherical(geom.Rad(30), geom.Rad(-120))
	src := ringsAround(s, 40, 0.03, rng)
	// Background rings consistent with a different (decoy) direction.
	decoy := geom.FromSpherical(geom.Rad(50), geom.Rad(40))
	bkg := ringsAround(decoy, 120, 0.03, rng)
	rings := append(append([]*recon.Ring{}, src...), bkg...)
	probs := make([]float64, len(rings))
	for i := range probs {
		if i >= len(src) {
			probs[i] = 0.95 // classifier flags the decoy population
		}
	}
	g := NewGrid(16)
	m := MixtureLikelihood(&cfg, rings, probs, g)
	best, _ := m.Best()
	if d := geom.Deg(geom.AngleBetween(best, s)); d > 8 {
		t.Errorf("mixture map peaked %v° from the source (decoy won)", d)
	}
	// With no background weighting, the 3x larger decoy population wins.
	zero := make([]float64, len(rings))
	m0 := MixtureLikelihood(&cfg, rings, zero, g)
	best0, _ := m0.Best()
	if d := geom.Deg(geom.AngleBetween(best0, decoy)); d > 8 {
		t.Errorf("unweighted mixture should peak at the decoy; got %v° away", d)
	}
	// Length mismatch panics.
	defer func() {
		if recover() == nil {
			t.Error("bkgProb length mismatch did not panic")
		}
	}()
	MixtureLikelihood(&cfg, rings, probs[:3], g)
}
