// Package sky provides an equal-area pixelation of the visible (upper)
// hemisphere and posterior probability maps over it: the localization
// product a GRB mission distributes to follow-up observers (compare the
// HEALPix maps attached to GCN notices). Where internal/localize returns a
// single best direction with a Gaussian error radius, this package captures
// the full, possibly multi-modal likelihood surface and its credible
// regions.
package sky

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/localize"
	"repro/internal/recon"
)

// Grid is an equal-area pixelation of the upper hemisphere: NBands
// iso-polar bands, each divided into azimuth pixels in proportion to the
// band's solid angle, so pixel areas are approximately equal.
type Grid struct {
	NBands int
	// bandPix[i] is the number of azimuth pixels in band i.
	bandPix []int
	// bandStart[i] is the index of band i's first pixel.
	bandStart []int
	total     int
}

// NewGrid builds a grid with the given number of polar bands (resolution
// scales as ~2·NBands² pixels; 16 bands ≈ 3°-scale pixels).
func NewGrid(nBands int) *Grid {
	if nBands < 1 {
		panic("sky: need at least one band")
	}
	g := &Grid{NBands: nBands}
	g.bandPix = make([]int, nBands)
	g.bandStart = make([]int, nBands)
	// Band i spans polar angles [iπ/2N, (i+1)π/2N); its solid angle is
	// 2π(cosθ₀ − cosθ₁). Allocate pixels proportionally with at least 1.
	const targetPerBand = 4.0 // pixels per band-equivalent area unit
	for i := 0; i < nBands; i++ {
		t0 := float64(i) / float64(nBands) * math.Pi / 2
		t1 := float64(i+1) / float64(nBands) * math.Pi / 2
		area := 2 * math.Pi * (math.Cos(t0) - math.Cos(t1))
		// Normalize so the first band (smallest) gets a few pixels and the
		// total scales quadratically.
		n := int(math.Round(area / (2 * math.Pi / (targetPerBand * float64(nBands) * float64(nBands)))))
		if n < 1 {
			n = 1
		}
		g.bandPix[i] = n
		g.bandStart[i] = g.total
		g.total += n
	}
	return g
}

// NumPixels returns the pixel count.
func (g *Grid) NumPixels() int { return g.total }

// Dir returns the center direction of pixel i.
func (g *Grid) Dir(i int) geom.Vec {
	band := sort.Search(g.NBands, func(b int) bool {
		return g.bandStart[b]+g.bandPix[b] > i
	})
	j := i - g.bandStart[band]
	theta := (float64(band) + 0.5) / float64(g.NBands) * math.Pi / 2
	phi := (float64(j) + 0.5) / float64(g.bandPix[band]) * 2 * math.Pi
	return geom.FromSpherical(theta, phi)
}

// Find returns the pixel containing direction d (clamped to the upper
// hemisphere).
func (g *Grid) Find(d geom.Vec) int {
	theta := geom.Polar(d)
	if theta > math.Pi/2 {
		theta = math.Pi / 2
	}
	band := int(theta / (math.Pi / 2) * float64(g.NBands))
	if band >= g.NBands {
		band = g.NBands - 1
	}
	phi := geom.Azimuth(d)
	if phi < 0 {
		phi += 2 * math.Pi
	}
	j := int(phi / (2 * math.Pi) * float64(g.bandPix[band]))
	if j >= g.bandPix[band] {
		j = g.bandPix[band] - 1
	}
	return g.bandStart[band] + j
}

// PixelSr returns pixel i's solid angle in steradians (exact per band).
func (g *Grid) PixelSr(i int) float64 {
	band := sort.Search(g.NBands, func(b int) bool {
		return g.bandStart[b]+g.bandPix[b] > i
	})
	t0 := float64(band) / float64(g.NBands) * math.Pi / 2
	t1 := float64(band+1) / float64(g.NBands) * math.Pi / 2
	return 2 * math.Pi * (math.Cos(t0) - math.Cos(t1)) / float64(g.bandPix[band])
}

// Map is a log-likelihood surface over a grid.
type Map struct {
	Grid *Grid
	LogL []float64
}

// LikelihoodEvaluator returns the rings' joint robust log-likelihood as a
// function of direction — the continuous surface that Likelihood samples
// onto a grid and that the hierarchical payload builder (internal/skymap)
// samples adaptively.
func LikelihoodEvaluator(cfg *localize.Config, rings []*recon.Ring) func(geom.Vec) float64 {
	return func(d geom.Vec) float64 {
		return localize.LogLikelihood(cfg, rings, d)
	}
}

// Likelihood evaluates the rings' joint robust log-likelihood at every
// pixel center.
func Likelihood(cfg *localize.Config, rings []*recon.Ring, g *Grid) *Map {
	eval := LikelihoodEvaluator(cfg, rings)
	m := &Map{Grid: g, LogL: make([]float64, g.NumPixels())}
	for i := range m.LogL {
		m.LogL[i] = eval(g.Dir(i))
	}
	return m
}

// MixtureLikelihood evaluates a background-aware joint log-likelihood: each
// ring contributes ln[(1−pᵢ)·exp(−pull²/2) + pᵢ·floor], where pᵢ is the
// ring's background probability (e.g. from the background network) and
// floor = exp(−RobustCap/2) is the density a background ring contributes
// anywhere on the sky. With pᵢ = 0 for all rings this reduces to a softened
// version of the robust capped likelihood; with honest (wide) ring widths
// it keeps residual background rings from biasing the map, which hard
// capping alone cannot once pulls shrink below the cap.
func MixtureLikelihood(cfg *localize.Config, rings []*recon.Ring, bkgProb []float64, g *Grid) *Map {
	eval := MixtureEvaluator(cfg, rings, bkgProb)
	m := &Map{Grid: g, LogL: make([]float64, g.NumPixels())}
	for i := range m.LogL {
		m.LogL[i] = eval(g.Dir(i))
	}
	return m
}

// MixtureEvaluator returns MixtureLikelihood's background-aware joint
// log-likelihood as a function of direction. It panics when bkgProb and
// rings disagree in length.
func MixtureEvaluator(cfg *localize.Config, rings []*recon.Ring, bkgProb []float64) func(geom.Vec) float64 {
	if len(bkgProb) != len(rings) {
		panic("sky: bkgProb length mismatch")
	}
	floor := math.Exp(-cfg.RobustCap / 2)
	// Even a ring the classifier is sure about has some probability of
	// being mis-reconstructed junk; this floor keeps any single ring from
	// vetoing a sky region outright (the mixture analogue of hard capping).
	const pMin = 0.02
	return func(d geom.Vec) float64 {
		var ll float64
		for j, r := range rings {
			pull := r.Pull(d)
			p := pMin + (1-pMin)*bkgProb[j]
			ll += math.Log((1-p)*math.Exp(-pull*pull/2) + p*floor)
		}
		return ll
	}
}

// Best returns the maximum-likelihood pixel direction and its log-likelihood.
func (m *Map) Best() (geom.Vec, float64) {
	bi, bl := 0, math.Inf(-1)
	for i, l := range m.LogL {
		if l > bl {
			bi, bl = i, l
		}
	}
	return m.Grid.Dir(bi), bl
}

// Posterior converts the log-likelihood surface to per-pixel posterior
// probabilities (flat prior over the visible sky, solid-angle weighted).
func (m *Map) Posterior() []float64 {
	out := make([]float64, len(m.LogL))
	// Subtract the max for numerical stability.
	mx := math.Inf(-1)
	for _, l := range m.LogL {
		mx = math.Max(mx, l)
	}
	var total float64
	for i, l := range m.LogL {
		out[i] = math.Exp(l-mx) * m.Grid.PixelSr(i)
		total += out[i]
	}
	if total > 0 {
		for i := range out {
			out[i] /= total
		}
	}
	return out
}

// CredibleRegion returns the smallest set of pixels whose posterior sums to
// at least p, highest-probability first. Equal-probability pixels at the
// credible boundary are ordered by pixel index, so the region is a pure
// function of the posterior — identical across runs and platforms even when
// the boundary falls inside a tie.
func (m *Map) CredibleRegion(p float64) []int {
	post := m.Posterior()
	idx := make([]int, len(post))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := post[idx[a]], post[idx[b]]
		if pa != pb {
			return pa > pb
		}
		return idx[a] < idx[b]
	})
	var out []int
	var acc float64
	for _, i := range idx {
		out = append(out, i)
		acc += post[i]
		if acc >= p {
			break
		}
	}
	return out
}

// CredibleAreaDeg2 returns the solid angle of the p credible region in
// square degrees — the headline number of a localization notice.
func (m *Map) CredibleAreaDeg2(p float64) float64 {
	var sr float64
	for _, i := range m.CredibleRegion(p) {
		sr += m.Grid.PixelSr(i)
	}
	const deg2PerSr = (180 / math.Pi) * (180 / math.Pi)
	return sr * deg2PerSr
}

// Contains reports whether direction d falls in the p credible region.
func (m *Map) Contains(d geom.Vec, p float64) bool {
	target := m.Grid.Find(d)
	for _, i := range m.CredibleRegion(p) {
		if i == target {
			return true
		}
	}
	return false
}

// Tempered returns a copy of the map with the log-likelihood divided by T:
// the standard posterior-tempering form of an empirical systematic-error
// inflation (T = 1 is the identity, the statistical-only map; larger T
// widens every credible region). A non-positive temperature is a caller
// bug — there is no physically meaningful T ≤ 0, and silently substituting
// one would hide a miscalibrated configuration — so it panics.
func (m *Map) Tempered(t float64) *Map {
	if t <= 0 {
		panic("sky: non-positive temperature")
	}
	out := &Map{Grid: m.Grid, LogL: make([]float64, len(m.LogL))}
	for i, l := range m.LogL {
		out.LogL[i] = l / t
	}
	return out
}

// String summarizes the map.
func (m *Map) String() string {
	best, ll := m.Best()
	return fmt.Sprintf("skymap[%d px, peak %v (logL %.1f), 90%% area %.1f deg²]",
		m.Grid.NumPixels(), best, ll, m.CredibleAreaDeg2(0.9))
}
