package merge

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/detector"
	"repro/internal/evio"
	"repro/internal/flightlog"
)

// JournalFeed replays a flight journal as a merge source: records are
// decoded lazily one segment at a time (bounded memory), and a torn tail
// left by a crash mid-append ends the feed cleanly while surfacing the
// truncated byte count through TruncatedBytes — the merge counts it
// instead of silently treating the source as complete.
type JournalFeed struct {
	it  *flightlog.Iter
	buf []*detector.Event
}

// OpenJournal opens the flight journal at dir as a feed.
func OpenJournal(dir string) (*JournalFeed, error) {
	it, err := flightlog.NewIter(dir)
	if err != nil {
		return nil, err
	}
	return &JournalFeed{it: it}, nil
}

// Next implements Feed.
func (f *JournalFeed) Next() (*detector.Event, error) {
	for len(f.buf) == 0 {
		payload, err := f.it.Next()
		if err != nil {
			return nil, err // io.EOF at the durable end, ErrCorrupt before it
		}
		events, err := evio.Unmarshal(payload)
		if err != nil {
			return nil, fmt.Errorf("journal record %d: %w", f.it.Stats().Records, err)
		}
		f.buf = events
	}
	ev := f.buf[0]
	f.buf = f.buf[1:]
	return ev, nil
}

// Close implements Feed.
func (f *JournalFeed) Close() error { return nil }

// TruncatedBytes reports the journal's torn-tail truncation (final after
// Next returned io.EOF).
func (f *JournalFeed) TruncatedBytes() int64 { return f.it.Stats().TruncatedBytes }

// EvioFeed serves a recorded evio exposure file as a merge source. The
// file is loaded and stably sorted by arrival time up front — the same
// normalization adaptstream applies — because recorded exposures are not
// guaranteed to be time-ordered on disk.
type EvioFeed struct {
	events []*detector.Event
	i      int
}

// OpenEvio loads the evio file at path.
func OpenEvio(path string) (*EvioFeed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := evio.NewReader(f).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", path, err)
	}
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].ArrivalTime < events[j].ArrivalTime
	})
	return &EvioFeed{events: events}, nil
}

// Next implements Feed.
func (f *EvioFeed) Next() (*detector.Event, error) {
	if f.i >= len(f.events) {
		return nil, io.EOF
	}
	ev := f.events[f.i]
	f.i++
	return ev, nil
}

// Close implements Feed.
func (f *EvioFeed) Close() error { return nil }

// SliceFeed serves an in-memory event slice (already time-ordered) — the
// feed tests and benchmarks use, and the building block for simulated
// multi-segment exposures.
type SliceFeed struct {
	events []*detector.Event
	i      int
}

// NewSlice wraps events (not copied; must be in nondecreasing time order).
func NewSlice(events []*detector.Event) *SliceFeed { return &SliceFeed{events: events} }

// Next implements Feed.
func (f *SliceFeed) Next() (*detector.Event, error) {
	if f.i >= len(f.events) {
		return nil, io.EOF
	}
	ev := f.events[f.i]
	f.i++
	return ev, nil
}

// Close implements Feed.
func (f *SliceFeed) Close() error { return nil }

// PushFeed is the live-ingest source: detector segments push events in,
// the merge pulls them out, and a bounded channel in between makes
// backpressure explicit. Offer is the lossy detector-feed path (drops are
// counted by the caller via its return value); Ingest is the lossless
// path. CloseInput ends the feed once the segment is done.
type PushFeed struct {
	ch    chan *detector.Event
	close sync.Once
}

// NewPushFeed makes a live feed with the given buffer capacity (minimum 1).
func NewPushFeed(buffer int) *PushFeed {
	if buffer < 1 {
		buffer = 1
	}
	return &PushFeed{ch: make(chan *detector.Event, buffer)}
}

// Offer submits one event without blocking, returning false when the
// buffer is full (the caller counts the drop — overload sheds load
// instead of growing memory, exactly like stream.Processor.Offer).
func (p *PushFeed) Offer(ev *detector.Event) bool {
	select {
	case p.ch <- ev:
		return true
	default:
		return false
	}
}

// Ingest submits one event, blocking until the buffer accepts it.
func (p *PushFeed) Ingest(ev *detector.Event) { p.ch <- ev }

// CloseInput ends the input stream; Next drains what is buffered and then
// reports io.EOF. Safe to call more than once.
func (p *PushFeed) CloseInput() { p.close.Do(func() { close(p.ch) }) }

// Next implements Feed, blocking until an event is pushed or the input is
// closed.
func (p *PushFeed) Next() (*detector.Event, error) {
	ev, ok := <-p.ch
	if !ok {
		return nil, io.EOF
	}
	return ev, nil
}

// Close implements Feed. It does not close the input side: the pushing
// goroutine owns that via CloseInput.
func (p *PushFeed) Close() error { return nil }
