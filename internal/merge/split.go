package merge

import (
	"errors"
	"fmt"
	"math"
	"os"

	"repro/internal/detector"
	"repro/internal/evio"
	"repro/internal/flightlog"
	"repro/internal/xrand"
)

// SkewTime shifts event time t by offset seconds such that the merge's
// clock correction recovers t exactly: it returns the smallest float64 s
// with fl(s − offset) == t bitwise. Plain float64 addition rounds, and the
// merge's subtraction would then reproduce t only approximately — enough
// to break the bitwise alert-replay contract. The returned s differs from
// fl(t+offset) by at most a few ULPs (sub-nanosecond for second-scale
// times), so the injected skew is physically indistinguishable from the
// requested one. Returning the smallest valid s — rather than any valid
// s — makes the map strictly monotone in t, so a time-ordered feed stays
// time-ordered after skewing.
//
// An error means no valid s exists. That happens when the skew carries t
// across a binade boundary into coarser precision (e.g. t just below 1 s
// with a positive offset): the skewed grid is then twice as coarse as t's,
// and half the original times fall between its preimages. SplitJournal
// handles this by reassigning the affected record to a slice whose skew is
// invertible for it.
func SkewTime(t, offset float64) (float64, error) {
	if offset == 0 {
		return t, nil
	}
	s := t + offset
	found := math.NaN()
	for range [8]int{} {
		d := s - offset
		if d == t {
			found = s
			break
		}
		if d < t {
			s = math.Nextafter(s, math.Inf(1))
		} else {
			s = math.Nextafter(s, math.Inf(-1))
		}
	}
	if math.IsNaN(found) {
		return 0, fmt.Errorf("merge: no exactly-invertible skew of %g by %g", t, offset)
	}
	// Walk down to the smallest s that still inverts to t, so equal inputs
	// map to equal outputs and the map stays monotone. The preimage holds
	// ~ulp(t)/ulp(s) values; cap the walk so a pathological magnitude gap
	// (offsets detector clocks never exhibit) cannot spin — the capped
	// result still inverts exactly.
	for range [4096]int{} {
		lo := math.Nextafter(found, math.Inf(-1))
		if lo-offset != t {
			break
		}
		found = lo
	}
	return found, nil
}

// SplitStats reports what SplitJournal wrote.
type SplitStats struct {
	// Events[i] is how many events landed in slice i.
	Events []int
	// Records is how many source-journal records were read.
	Records int
}

// SplitJournal slices the flight journal at srcDir into len(outDirs)
// journals, assigning each record's events to a uniformly random slice
// (seeded, so a split is reproducible) and shifting each slice's event
// times by its entry in skewsSec using the exactly-invertible SkewTime.
// Within a slice, events keep their source order, so every slice is itself
// a valid time-ordered feed in its own (skewed) clock. Merging the slices
// back with OffsetSec = skewsSec[i] reproduces the original event sequence
// bitwise — the property the merge-smoke CI job enforces end to end.
func SplitJournal(srcDir string, outDirs []string, skewsSec []float64, seed uint64) (SplitStats, error) {
	st := SplitStats{Events: make([]int, len(outDirs))}
	if len(outDirs) < 2 {
		return st, errors.New("merge: split needs at least two output journals")
	}
	if len(skewsSec) != 0 && len(skewsSec) != len(outDirs) {
		return st, fmt.Errorf("merge: %d skews for %d slices", len(skewsSec), len(outDirs))
	}
	skew := func(i int) float64 {
		if len(skewsSec) == 0 {
			return 0
		}
		return skewsSec[i]
	}

	outs := make([]*flightlog.Journal, len(outDirs))
	for i, dir := range outDirs {
		// Opening an existing journal appends; a stale slice would silently
		// pollute the split, so insist on fresh output directories.
		if entries, err := os.ReadDir(dir); err == nil && len(entries) > 0 {
			return st, fmt.Errorf("merge: output journal %s is not empty", dir)
		}
		j, err := flightlog.Open(flightlog.Options{Dir: dir})
		if err != nil {
			return st, err
		}
		outs[i] = j
		defer j.Close()
	}

	// trySkew shifts a record's events by slice i's skew, or reports that
	// some event time has no exactly-invertible image under it.
	trySkew := func(events []*detector.Event, i int) ([]*detector.Event, bool) {
		skewed := make([]*detector.Event, len(events))
		for k, ev := range events {
			t, err := SkewTime(ev.ArrivalTime, skew(i))
			if err != nil {
				return nil, false
			}
			c := *ev
			c.ArrivalTime = t
			skewed[k] = &c
		}
		return skewed, true
	}

	rng := xrand.New(seed)
	err := flightlog.Replay(srcDir, func(payload []byte) error {
		st.Records++
		events, err := evio.Unmarshal(payload)
		if err != nil {
			return fmt.Errorf("record %d: %w", st.Records, err)
		}
		// A skew that carries an event across a binade boundary can be
		// non-invertible for it (see SkewTime); deterministically walk to
		// the next slice until one accepts the whole record.
		pick := rng.IntN(len(outs))
		var skewed []*detector.Event
		slice, ok := -1, false
		for d := range outs {
			i := (pick + d) % len(outs)
			if skewed, ok = trySkew(events, i); ok {
				slice = i
				break
			}
		}
		if !ok {
			return fmt.Errorf("merge: record %d: no slice skew is exactly invertible", st.Records)
		}
		blob, err := evio.Marshal(skewed)
		if err != nil {
			return err
		}
		if err := outs[slice].Append(blob); err != nil {
			return err
		}
		st.Events[slice] += len(events)
		return nil
	})
	if err != nil {
		return st, err
	}
	for _, j := range outs {
		if err := j.Close(); err != nil {
			return st, err
		}
	}
	return st, nil
}
