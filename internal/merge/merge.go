// Package merge fuses the event feeds of several detector segments into
// one globally time-ordered stream for the trigger. ADAPT-class
// instruments aggregate hits from multiple panels, each with its own
// readout clock, buffering, and failure modes; the paper's trigger (and
// internal/stream) wants a single event sequence. This package is the
// k-way event-time merge between the two:
//
//   - every source (a live push feed, a recorded evio file, or a
//     flight journal) gets a bounded prefetch buffer and a per-source
//     clock-offset correction (corrected = raw − offset);
//   - a low watermark advances on the minimum in-flight corrected event
//     time: an event is emitted only once every active source has shown an
//     event at or after it, so the fused output is globally time-ordered
//     no matter how skewed or bursty the sources are;
//   - ties are broken by (corrected time, source index, per-source arrival
//     sequence), so the fused order is a pure function of the sources'
//     contents — arrival interleaving, goroutine scheduling, and buffer
//     sizes never change it. Feeding the fused stream into
//     stream.Processor therefore reproduces alerts bitwise, and journaling
//     the fused stream yields one canonical journal whose replay does too;
//   - a silent source ages out of the watermark after StallTimeout instead
//     of freezing the merge (a dead panel must not blind the instrument);
//     events it delivers after the watermark passed them are dropped and
//     counted, never reordered;
//   - per-source observability: events, late drops, stalls, errors,
//     torn-tail truncation, buffered depth, lag behind the watermark, and
//     an online clock-skew estimate, all published through internal/obs.
package merge

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/detector"
	"repro/internal/obs"
)

// Global metric names published into Config.Metrics.
const (
	CtrEventsOut   = "merge_events_out"
	CtrLateDropped = "merge_late_dropped"
	GaugeWatermark = "merge_watermark_s"
	GaugeActive    = "merge_sources_active"
)

// Per-source metric name fragments; the full name is
// "merge_src_<name>_<fragment>".
const (
	srcCtrEvents    = "events"
	srcCtrLate      = "late_dropped"
	srcCtrStalls    = "stalls"
	srcCtrErrors    = "errors"
	srcCtrTruncated = "truncated_bytes"
	srcGaugeDepth   = "depth"
	srcGaugeLag     = "lag_s"
	srcGaugeSkew    = "skew_s"
)

// SrcMetric formats the registry name of a per-source metric, e.g.
// SrcMetric("s0", "lag_s") = "merge_src_s0_lag_s".
func SrcMetric(source, fragment string) string {
	return "merge_src_" + source + "_" + fragment
}

// Feed delivers one detector segment's events in nondecreasing raw event
// time. Next returns io.EOF at the end of the feed; any other error fails
// the source (counted, surfaced by Run) without stopping the merge.
type Feed interface {
	Next() (*detector.Event, error)
	Close() error
}

// truncationReporter is the optional Feed extension journal feeds
// implement: how many trailing bytes a torn tail cost. Consulted at EOF so
// a crash-damaged source is surfaced, not silently shortened.
type truncationReporter interface {
	TruncatedBytes() int64
}

// Source is one input to the merge.
type Source struct {
	// Name labels the source in metrics and stats (default "s<index>").
	Name string
	// OffsetSec is the source's known clock offset: an event with raw time
	// t happened at corrected time t − OffsetSec. The fused stream carries
	// corrected times.
	OffsetSec float64
	// Feed supplies the events.
	Feed Feed
}

// Config assembles a Merger.
type Config struct {
	// Sources are the feeds to fuse (at least one).
	Sources []Source
	// BufferEvents bounds each source's prefetch queue (default 1024).
	// Memory use is fixed: k × BufferEvents events plus one head per
	// source, no matter how skewed the sources are.
	BufferEvents int
	// StallTimeout ages a silent source out of the watermark: once a
	// non-exhausted source has produced nothing for this long while the
	// merge waits on it, the merge proceeds without it (0 = wait forever,
	// the right setting for deterministic file/journal merges).
	StallTimeout time.Duration
	// SkewAlpha is the EWMA weight of the per-source clock-skew estimator
	// (default 0.05).
	SkewAlpha float64
	// OnLateDrop, when non-nil, observes every event dropped behind the
	// watermark, with its corrected time, before it is discarded. It is
	// called synchronously from the merge loop, so it must be cheap and
	// needs no locking against other OnLateDrop calls. The chaos campaign
	// uses it to attribute late drops to fault phases.
	OnLateDrop func(*detector.Event)
	// Metrics receives the counters/gauges above (nil = off).
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.BufferEvents <= 0 {
		c.BufferEvents = 1024
	}
	if c.SkewAlpha <= 0 || c.SkewAlpha > 1 {
		c.SkewAlpha = 0.05
	}
	for i := range c.Sources {
		if c.Sources[i].Name == "" {
			c.Sources[i].Name = fmt.Sprintf("s%d", i)
		}
	}
	return c
}

// SourceStats is one source's accounting after (or during) a merge.
type SourceStats struct {
	// Name is the source label.
	Name string
	// Events is how many events the source contributed to the fused stream.
	Events int64
	// LateDropped counts events that arrived behind the watermark (stalled
	// source resuming, or a source violating its own time order).
	LateDropped int64
	// Stalls counts how many times the source aged out of the watermark.
	Stalls int64
	// TruncatedBytes is the torn-tail truncation the source's journal
	// reported (0 for live and evio sources, or a clean journal).
	TruncatedBytes int64
	// SkewEstSec is the online clock-skew estimate: an EWMA of how far the
	// source's raw event times run ahead of the fused watermark. For a
	// correctly-offset source it converges to OffsetSec.
	SkewEstSec float64
	// Err is the error that failed the source (nil if it ended cleanly).
	Err error
}

// sourceState is the merge loop's per-source bookkeeping. Only the reader
// goroutine writes queue/readErr/truncated (before close(queue)); the
// merge loop owns everything else. In-source ordering needs no sequence
// numbers: the queue is FIFO, so same-time events from one source keep
// their feed order.
type sourceState struct {
	src       Source
	queue     chan *detector.Event
	readErr   error // valid after queue is closed
	truncated int64 // valid after queue is closed

	head      *detector.Event // corrected-time head, nil when empty
	headRaw   float64         // head's raw time
	exhausted bool
	stalled   bool
	trackWall bool      // only pay for wall-clock reads when stalls matter
	lastWall  time.Time // wall-clock time of the last received event

	stats SourceStats

	// metric handles, resolved once (nil registry ⇒ nil no-op handles).
	ctrEvents, ctrLate, ctrStalls, ctrErrors, ctrTruncated *obs.Counter
	gaugeDepth, gaugeLag, gaugeSkew                        *obs.Gauge
}

// Merger is a k-way watermarked event-time merge. Build with New, drive
// with Run.
type Merger struct {
	cfg      Config
	sources  []*sourceState
	stop     chan struct{}
	stopOnce sync.Once

	watermark   float64
	skewInit    []bool
	ctrOut      *obs.Counter
	ctrLateAll  *obs.Counter
	gaugeWater  *obs.Gauge
	gaugeActive *obs.Gauge
	eventsOut   int64
	lateDropped int64
}

// New validates cfg and prepares a Merger. Feeds are not consumed until
// Run.
func New(cfg Config) (*Merger, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Sources) == 0 {
		return nil, errors.New("merge: at least one source required")
	}
	m := &Merger{
		cfg:         cfg,
		stop:        make(chan struct{}),
		skewInit:    make([]bool, len(cfg.Sources)),
		ctrOut:      cfg.Metrics.Counter(CtrEventsOut),
		ctrLateAll:  cfg.Metrics.Counter(CtrLateDropped),
		gaugeWater:  cfg.Metrics.Gauge(GaugeWatermark),
		gaugeActive: cfg.Metrics.Gauge(GaugeActive),
	}
	for _, src := range cfg.Sources {
		s := &sourceState{
			src:          src,
			queue:        make(chan *detector.Event, cfg.BufferEvents),
			trackWall:    cfg.StallTimeout > 0,
			lastWall:     time.Now(),
			stats:        SourceStats{Name: src.Name},
			ctrEvents:    cfg.Metrics.Counter(SrcMetric(src.Name, srcCtrEvents)),
			ctrLate:      cfg.Metrics.Counter(SrcMetric(src.Name, srcCtrLate)),
			ctrStalls:    cfg.Metrics.Counter(SrcMetric(src.Name, srcCtrStalls)),
			ctrErrors:    cfg.Metrics.Counter(SrcMetric(src.Name, srcCtrErrors)),
			ctrTruncated: cfg.Metrics.Counter(SrcMetric(src.Name, srcCtrTruncated)),
			gaugeDepth:   cfg.Metrics.Gauge(SrcMetric(src.Name, srcGaugeDepth)),
			gaugeLag:     cfg.Metrics.Gauge(SrcMetric(src.Name, srcGaugeLag)),
			gaugeSkew:    cfg.Metrics.Gauge(SrcMetric(src.Name, srcGaugeSkew)),
		}
		m.sources = append(m.sources, s)
	}
	m.watermark = math.Inf(-1)
	return m, nil
}

// Stop aborts a running merge. Safe to call from any goroutine; Run
// returns promptly without draining the remaining sources.
func (m *Merger) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
}

// read pumps one source's feed into its bounded queue. It owns the feed.
func (m *Merger) read(s *sourceState) {
	defer close(s.queue)
	defer s.src.Feed.Close()
	for {
		ev, err := s.src.Feed.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.readErr = err
			}
			if tr, ok := s.src.Feed.(truncationReporter); ok {
				s.truncated = tr.TruncatedBytes()
			}
			return
		}
		select {
		case s.queue <- ev:
		case <-m.stop:
			return
		}
	}
}

// takeHead installs an event as s's head, applying the clock correction.
// The event is copied when the correction changes its time, so feeds may
// share event storage with other consumers.
func (s *sourceState) takeHead(ev *detector.Event) {
	s.headRaw = ev.ArrivalTime
	if s.src.OffsetSec != 0 {
		c := *ev
		c.ArrivalTime = ev.ArrivalTime - s.src.OffsetSec
		ev = &c
	}
	s.head = ev
	if s.trackWall {
		s.lastWall = time.Now()
	}
}

// finish marks a source exhausted and surfaces its terminal accounting.
func (s *sourceState) finish() {
	s.exhausted = true
	s.stalled = false
	if s.readErr != nil {
		s.stats.Err = s.readErr
		s.ctrErrors.Inc()
	}
	if s.truncated > 0 {
		s.stats.TruncatedBytes = s.truncated
		s.ctrTruncated.Add(s.truncated)
	}
	s.gaugeDepth.Set(0)
}

// poll tries to fill s's head without blocking. Returns true if the head
// is now available or the source is exhausted (i.e. no wait is needed).
func (s *sourceState) poll() bool {
	if s.head != nil || s.exhausted {
		return true
	}
	select {
	case ev, ok := <-s.queue:
		if !ok {
			s.finish()
			return true
		}
		s.takeHead(ev)
		s.stalled = false
		return true
	default:
		return false
	}
}

// await blocks until s has a head, is exhausted, or its stall deadline
// passes (marking it stalled). Returns false when the merge was stopped.
func (m *Merger) await(s *sourceState) bool {
	if s.poll() {
		return true
	}
	if m.cfg.StallTimeout <= 0 {
		select {
		case ev, ok := <-s.queue:
			if !ok {
				s.finish()
			} else {
				s.takeHead(ev)
			}
			return true
		case <-m.stop:
			return false
		}
	}
	deadline := s.lastWall.Add(m.cfg.StallTimeout)
	wait := time.Until(deadline)
	if wait <= 0 {
		s.stalled = true
		s.stats.Stalls++
		s.ctrStalls.Inc()
		return true
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case ev, ok := <-s.queue:
		if !ok {
			s.finish()
		} else {
			s.takeHead(ev)
		}
		return true
	case <-t.C:
		s.stalled = true
		s.stats.Stalls++
		s.ctrStalls.Inc()
		return true
	case <-m.stop:
		return false
	}
}

// Run drives the merge to completion, calling emit with every fused event
// in globally nondecreasing corrected time. It blocks until every source
// is exhausted (or Stop is called) and returns the sources' failures
// joined (nil when all ended cleanly — torn-tail truncation is accounting,
// not failure).
func (m *Merger) Run(emit func(*detector.Event)) error {
	for _, s := range m.sources {
		go m.read(s)
	}
	for {
		// Phase 1: every non-exhausted, non-stalled source must show its
		// head before anything is emitted — this is the low watermark.
		for _, s := range m.sources {
			if s.stalled {
				// Stalled sources are polled opportunistically: if one came
				// back, it rejoins the watermark.
				s.poll()
				continue
			}
			if !m.await(s) {
				return m.finishAll()
			}
		}

		// Phase 2: pick the minimum head by (time, source index, sequence).
		var best *sourceState
		active := 0
		for _, s := range m.sources {
			if !s.exhausted && !s.stalled {
				active++
			}
			if s.head == nil {
				continue
			}
			if best == nil || s.head.ArrivalTime < best.head.ArrivalTime {
				best = s
			}
		}
		m.gaugeActive.Set(float64(active))
		if best == nil {
			allDone := true
			for _, s := range m.sources {
				if !s.exhausted {
					allDone = false
					break
				}
			}
			if allDone {
				return m.finishAll()
			}
			// Everything left is stalled with nothing buffered: wait for any
			// of them to speak (or end) rather than spinning. Waiting on the
			// sources one at a time is fine — no event can be emitted until
			// one of them produces anyway.
			if !m.awaitStalled() {
				return m.finishAll()
			}
			continue
		}

		// Phase 3: emit or drop the chosen head.
		t := best.head.ArrivalTime
		if t < m.watermark {
			// The watermark already passed this event (its source stalled
			// out, or it violated its own order). Dropping keeps the output
			// time-ordered; the drop is never silent.
			best.stats.LateDropped++
			best.ctrLate.Inc()
			m.ctrLateAll.Inc()
			m.lateDropped++
			if m.cfg.OnLateDrop != nil {
				m.cfg.OnLateDrop(best.head)
			}
			best.head = nil
			continue
		}
		ev := best.head
		best.head = nil
		m.watermark = t
		best.stats.Events++
		best.ctrEvents.Inc()
		m.ctrOut.Inc()
		m.eventsOut++
		m.gaugeWater.Set(t)
		m.observeSkew(t)
		emit(ev)
	}
}

// awaitStalled blocks until any stalled source yields an event or ends.
// Returns false when the merge was stopped. Sources are visited round-
// robin with short blocking waits so a single dead source cannot keep a
// late-reviving one waiting forever.
func (m *Merger) awaitStalled() bool {
	const slice = 10 * time.Millisecond
	for {
		for _, s := range m.sources {
			if s.exhausted || !s.stalled {
				continue
			}
			t := time.NewTimer(slice)
			select {
			case ev, ok := <-s.queue:
				t.Stop()
				if !ok {
					s.finish()
				} else {
					s.takeHead(ev)
					s.stalled = false
				}
				return true
			case <-t.C:
			case <-m.stop:
				t.Stop()
				return false
			}
		}
		allDone := true
		for _, s := range m.sources {
			if !s.exhausted {
				allDone = false
			}
		}
		if allDone {
			return true
		}
	}
}

// observeSkew updates every source's clock-skew EWMA against the fused
// watermark: a source whose raw head times systematically lead the
// watermark has a fast clock. For a source merged with the right
// OffsetSec the estimate converges to that offset.
func (m *Merger) observeSkew(watermark float64) {
	for i, s := range m.sources {
		if s.head == nil && s.stats.Events == 0 {
			continue
		}
		raw := s.headRaw // raw time of the head, or of the last event taken
		sample := raw - watermark
		if !m.skewInit[i] {
			m.skewInit[i] = true
			s.stats.SkewEstSec = sample
		} else {
			a := m.cfg.SkewAlpha
			s.stats.SkewEstSec = (1-a)*s.stats.SkewEstSec + a*sample
		}
		s.gaugeSkew.Set(s.stats.SkewEstSec)
		s.gaugeDepth.Set(float64(len(s.queue)))
		lag := 0.0
		if s.head != nil {
			if d := watermark - s.head.ArrivalTime; d > 0 {
				lag = d
			}
		} else if s.stalled {
			lag = watermark - (s.headRaw - s.src.OffsetSec)
		}
		s.gaugeLag.Set(lag)
	}
}

// finishAll joins the per-source failures once the merge loop is done.
func (m *Merger) finishAll() error {
	var errs []error
	for _, s := range m.sources {
		if s.exhausted && s.stats.Err != nil {
			errs = append(errs, fmt.Errorf("merge: source %s: %w", s.src.Name, s.stats.Err))
		}
	}
	return errors.Join(errs...)
}

// Stats returns a snapshot of every source's accounting, in source order.
// Call after Run returns (during a run it races with the merge loop).
func (m *Merger) Stats() []SourceStats {
	out := make([]SourceStats, len(m.sources))
	for i, s := range m.sources {
		out[i] = s.stats
	}
	return out
}

// EventsOut returns how many events the merge emitted.
func (m *Merger) EventsOut() int64 { return m.eventsOut }

// LateDropped returns how many events were dropped behind the watermark.
func (m *Merger) LateDropped() int64 { return m.lateDropped }
