package merge

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/evio"
	"repro/internal/flightlog"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// tick makes a hit-less event at time t: the trigger counts it, the
// reconstruction rejects it, so merge+trigger behavior can be tested
// without paying for localization.
func tick(t float64) *detector.Event { return &detector.Event{ArrivalTime: t} }

// ticksExposure builds a deterministic exposure of hit-less events: a
// steady 2 kHz background over [0, 2) with a 20 kHz burst in
// [0.9, 1.0) — enough density contrast to fire the default trigger.
func ticksExposure() []*detector.Event {
	var out []*detector.Event
	for t := 0.0; t < 2.0; t += 1.0 / 2000 {
		out = append(out, tick(t))
	}
	for t := 0.9; t < 1.0; t += 1.0 / 20000 {
		out = append(out, tick(t))
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ArrivalTime < out[j].ArrivalTime })
	return out
}

// runMerge drives a Merger and collects the fused events.
func runMerge(t *testing.T, cfg Config) []*detector.Event {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out []*detector.Event
	if err := m.Run(func(ev *detector.Event) { out = append(out, ev) }); err != nil {
		t.Fatalf("merge: %v", err)
	}
	return out
}

// triggerRecords runs the streaming trigger over events and returns the
// downlink records — the bitwise comparison unit of the merge contract.
func triggerRecords(events []*detector.Event, rate float64, workers int) []stream.Record {
	cfg := stream.DefaultConfig(rate)
	cfg.Workers = workers
	cfg.Seed = 7
	p := stream.New(cfg)
	done := make(chan []stream.Record)
	go func() {
		var out []stream.Record
		for a := range p.Alerts() {
			out = append(out, a.Record())
		}
		done <- out
	}()
	for _, ev := range events {
		p.Ingest(ev)
	}
	p.Close()
	return <-done
}

// writeJournal appends one record per event to a fresh journal at dir.
func writeJournal(t *testing.T, dir string, events []*detector.Event) {
	t.Helper()
	j, err := flightlog.Open(flightlog.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		blob, err := evio.Marshal([]*detector.Event{ev})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(blob); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// readJournalEvents collects a journal's events through the same feed the
// merge uses, so reference and merged runs see identical (evio
// round-tripped) inputs.
func readJournalEvents(t *testing.T, dir string) []*detector.Event {
	t.Helper()
	f, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []*detector.Event
	for {
		ev, err := f.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ev)
	}
	return out
}

func TestMergeOrdersSkewedSlices(t *testing.T) {
	events := ticksExposure()
	// Deal events round-robin into 3 slices with distinct exact skews,
	// falling back to the next lane when a skew is not exactly invertible
	// for an event (small times cannot absorb large offsets; see SkewTime).
	skews := []float64{0.25, 0, -0.125}
	slices := make([][]*detector.Event, 3)
	for i, ev := range events {
		for d := 0; ; d++ {
			lane := (i + d) % 3
			s, err := SkewTime(ev.ArrivalTime, skews[lane])
			if err != nil {
				continue
			}
			c := *ev
			c.ArrivalTime = s
			slices[lane] = append(slices[lane], &c)
			break
		}
	}
	reg := obs.NewRegistry()
	cfg := Config{Metrics: reg}
	for i, sl := range slices {
		cfg.Sources = append(cfg.Sources, Source{
			Name:      fmt.Sprintf("s%d", i),
			OffsetSec: skews[i],
			Feed:      NewSlice(sl),
		})
	}
	fused := runMerge(t, cfg)
	if len(fused) != len(events) {
		t.Fatalf("fused %d events, want %d", len(fused), len(events))
	}
	for i, ev := range fused {
		if ev.ArrivalTime != events[i].ArrivalTime {
			t.Fatalf("event %d: corrected time %v, want %v", i, ev.ArrivalTime, events[i].ArrivalTime)
		}
	}
	if got := reg.Counter(CtrEventsOut).Load(); got != int64(len(events)) {
		t.Errorf("%s = %d, want %d", CtrEventsOut, got, len(events))
	}
	if got := reg.Counter(SrcMetric("s1", "events")).Load(); got != int64(len(slices[1])) {
		t.Errorf("per-source events = %d, want %d", got, len(slices[1]))
	}
}

// TestMergeDeterministicAcrossInterleavings is the heart of the merge
// contract: the fused order is a pure function of the sources' contents.
// Live push feeds with adversarial arrival interleavings must fuse to the
// same sequence as quiet in-memory feeds.
func TestMergeDeterministicAcrossInterleavings(t *testing.T) {
	events := ticksExposure()
	slices := make([][]*detector.Event, 3)
	rng := xrand.New(5)
	for _, ev := range events {
		lane := rng.IntN(3)
		slices[lane] = append(slices[lane], ev)
	}
	ref := runMerge(t, Config{Sources: []Source{
		{Feed: NewSlice(slices[0])},
		{Feed: NewSlice(slices[1])},
		{Feed: NewSlice(slices[2])},
	}})

	for trial := 0; trial < 3; trial++ {
		feeds := make([]*PushFeed, 3)
		cfg := Config{BufferEvents: 8} // tiny buffers force backpressure
		for i := range feeds {
			feeds[i] = NewPushFeed(4)
			cfg.Sources = append(cfg.Sources, Source{Feed: feeds[i]})
		}
		for i := range feeds {
			go func(lane, trial int) {
				for n, ev := range slices[lane] {
					// Vary the pushing cadence per trial to vary arrival order.
					if (n+trial+lane)%17 == 0 {
						time.Sleep(time.Duration(lane+trial) * 100 * time.Microsecond)
					}
					feeds[lane].Ingest(ev)
				}
				feeds[lane].CloseInput()
			}(i, trial)
		}
		got := runMerge(t, cfg)
		if len(got) != len(ref) {
			t.Fatalf("trial %d: %d events, want %d", trial, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] { // pointer identity: the very same events, same order
				t.Fatalf("trial %d: order diverged at %d", trial, i)
			}
		}
	}
}

// TestSplitMergeBitwiseAlerts is the acceptance property: merging k
// randomly-sliced, clock-skewed journals of one exposure produces alert
// records bitwise identical to the unsliced run, at any worker count.
func TestSplitMergeBitwiseAlerts(t *testing.T) {
	events := ticksExposure()
	const rate = 2000.0
	src := filepath.Join(t.TempDir(), "src")
	writeJournal(t, src, events)
	ref := triggerRecords(readJournalEvents(t, src), rate, 1)
	if len(ref) == 0 {
		t.Fatal("reference run produced no alerts; exposure too quiet for the test to mean anything")
	}

	cases := []struct {
		k       int
		skews   []float64
		workers int
	}{
		{k: 2, skews: nil, workers: 1},
		{k: 3, skews: []float64{0.001953125, 0, -0.0009765625}, workers: 1},
		{k: 3, skews: []float64{0.001953125, 0, -0.0009765625}, workers: 4},
		{k: 5, skews: []float64{0.5, -0.25, 0.125, 0, -0.0625}, workers: 2},
	}
	for ci, tc := range cases {
		dirs := make([]string, tc.k)
		base := filepath.Join(t.TempDir(), fmt.Sprintf("case%d", ci))
		for i := range dirs {
			dirs[i] = filepath.Join(base, fmt.Sprintf("part%d", i))
		}
		st, err := SplitJournal(src, dirs, tc.skews, uint64(ci)+3)
		if err != nil {
			t.Fatalf("case %d: split: %v", ci, err)
		}
		if st.Records != len(events) {
			t.Fatalf("case %d: split read %d records, want %d", ci, st.Records, len(events))
		}
		cfg := Config{}
		for i, dir := range dirs {
			feed, err := OpenJournal(dir)
			if err != nil {
				t.Fatalf("case %d: %v", ci, err)
			}
			off := 0.0
			if len(tc.skews) > 0 {
				off = tc.skews[i]
			}
			cfg.Sources = append(cfg.Sources, Source{OffsetSec: off, Feed: feed})
		}
		fused := runMerge(t, cfg)
		got := triggerRecords(fused, rate, tc.workers)
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("case %d (k=%d workers=%d): alert records diverged from single-source run\n got %+v\nwant %+v",
				ci, tc.k, tc.workers, got, ref)
		}
	}
}

// TestMergeSurfacesTornTail: a source journal that ends mid-record (crash
// during append) must merge its durable prefix and surface the truncation,
// not fail or silently pass as complete.
func TestMergeSurfacesTornTail(t *testing.T) {
	events := ticksExposure()[:200]
	dirA := filepath.Join(t.TempDir(), "a")
	dirB := filepath.Join(t.TempDir(), "b")
	nA := 0
	var slA, slB []*detector.Event
	for i, ev := range events {
		if i%2 == 0 {
			slA = append(slA, ev)
			nA++
		} else {
			slB = append(slB, ev)
		}
	}
	writeJournal(t, dirA, slA)
	writeJournal(t, dirB, slB)

	// Tear the tail of A's last segment.
	segs, err := filepath.Glob(filepath.Join(dirA, "journal-*.flog"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("glob: %v (%d segments)", err, len(segs))
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	const torn = 5
	if err := os.Truncate(last, fi.Size()-torn); err != nil {
		t.Fatal(err)
	}

	feedA, err := OpenJournal(dirA)
	if err != nil {
		t.Fatal(err)
	}
	feedB, err := OpenJournal(dirB)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m, err := New(Config{
		Sources: []Source{{Name: "a", Feed: feedA}, {Name: "b", Feed: feedB}},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := m.Run(func(*detector.Event) { n++ }); err != nil {
		t.Fatalf("a torn tail is accounting, not failure: %v", err)
	}
	// The torn record itself (and nothing else) is missing.
	if n != len(events)-1 {
		t.Errorf("merged %d events, want %d", n, len(events)-1)
	}
	st := m.Stats()
	if st[0].TruncatedBytes == 0 {
		t.Error("source a: torn tail not surfaced in stats")
	}
	if got := reg.Counter(SrcMetric("a", "truncated_bytes")).Load(); got != st[0].TruncatedBytes {
		t.Errorf("truncated_bytes metric = %d, want %d", got, st[0].TruncatedBytes)
	}
	if st[1].TruncatedBytes != 0 {
		t.Errorf("source b: spurious truncation %d", st[1].TruncatedBytes)
	}
}

// TestMergeStallAgeOut: a silent source must age out of the watermark
// instead of freezing the merge, and its late events must be dropped and
// counted, never reordered.
func TestMergeStallAgeOut(t *testing.T) {
	live := NewPushFeed(64)
	mute := NewPushFeed(64)
	reg := obs.NewRegistry()
	m, err := New(Config{
		Sources:      []Source{{Name: "live", Feed: live}, {Name: "mute", Feed: mute}},
		StallTimeout: 30 * time.Millisecond,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	var fused []*detector.Event
	done := make(chan error)
	go func() { done <- m.Run(func(ev *detector.Event) { fused = append(fused, ev) }) }()

	// The mute source shows one early event, then goes silent; the live
	// source keeps streaming. Without age-out the merge would freeze after
	// the mute head is consumed.
	mute.Ingest(tick(0.0))
	for i := 1; i <= 50; i++ {
		live.Ingest(tick(float64(i)))
	}
	// Give the merge time to drain the live feed past the stall deadline.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter(SrcMetric("mute", "stalls")).Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("merge never aged the silent source out")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The mute source wakes up far behind the watermark.
	mute.Ingest(tick(0.5))
	mute.CloseInput()
	live.CloseInput()
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	for i := 1; i < len(fused); i++ {
		if fused[i].ArrivalTime < fused[i-1].ArrivalTime {
			t.Fatalf("output out of order at %d: %v after %v", i, fused[i].ArrivalTime, fused[i-1].ArrivalTime)
		}
	}
	st := m.Stats()
	if st[1].Stalls == 0 {
		t.Error("mute source never counted a stall")
	}
	if st[1].LateDropped == 0 {
		t.Error("late event was not dropped+counted")
	}
	if got := m.LateDropped(); got != st[1].LateDropped {
		t.Errorf("global late drops %d != source late drops %d", got, st[1].LateDropped)
	}
}

// TestMergeSourceErrorDoesNotPoisonOthers: one failing source surfaces its
// error from Run, while healthy sources still merge to completion.
func TestMergeSourceErrorDoesNotPoisonOthers(t *testing.T) {
	bad := &errFeed{after: 3, err: errors.New("readout fault")}
	good := NewSlice(ticksExposure()[:100])
	m, err := New(Config{Sources: []Source{{Name: "bad", Feed: bad}, {Name: "good", Feed: good}}})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	runErr := m.Run(func(*detector.Event) { n++ })
	if runErr == nil {
		t.Fatal("source error not surfaced")
	}
	if !strings.Contains(runErr.Error(), "bad") || !strings.Contains(runErr.Error(), "readout fault") {
		t.Errorf("error %q does not name the failed source", runErr)
	}
	if n < 100 {
		t.Errorf("healthy source only contributed %d events", n)
	}
	if st := m.Stats(); st[0].Err == nil {
		t.Error("failed source's stats carry no error")
	}
}

// errFeed yields `after` ticks then fails.
type errFeed struct {
	after int
	n     int
	err   error
}

func (f *errFeed) Next() (*detector.Event, error) {
	if f.n >= f.after {
		return nil, f.err
	}
	f.n++
	return tick(float64(f.n)), nil
}

func (f *errFeed) Close() error { return nil }

func TestSkewTimeExactInversion(t *testing.T) {
	rng := xrand.New(11)
	offsets := []float64{0.001953125, -0.0009765625, 0.003, -0.0017, 1.5, -2.25}
	checked := 0
	var lastT, lastS float64
	lastOff := math.NaN()
	for i := 0; i < 20000; i++ {
		tt := rng.Float64() * 4 // spans binade boundaries at 0.5, 1, 2
		off := offsets[i%len(offsets)]
		s, err := SkewTime(tt, off)
		if err != nil {
			continue // legitimately non-invertible across a binade jump
		}
		checked++
		if s-off != tt {
			t.Fatalf("SkewTime(%v, %v) = %v: inversion gives %v", tt, off, s, s-off)
		}
		// The canonical (smallest) preimage can sit up to ~ulp(t)/2 from
		// t+off when the offset dwarfs the result, so bound the stray by the
		// coarser of the two grids.
		big := math.Max(math.Abs(tt), math.Abs(tt+off))
		ulp := math.Nextafter(big, math.Inf(1)) - big
		if math.Abs(s-(tt+off)) > 8*ulp {
			t.Fatalf("SkewTime(%v, %v) strayed to %v", tt, off, s)
		}
		if off == lastOff && tt > lastT && s <= lastS {
			t.Fatalf("SkewTime not monotone: t %v>%v but s %v<=%v (offset %v)", tt, lastT, s, lastS, off)
		}
		if off == lastOff {
			if tt > lastT {
				lastT, lastS = tt, s
			}
		} else {
			lastOff, lastT, lastS = off, tt, s
		}
	}
	if checked < 15000 {
		t.Fatalf("only %d/20000 skews invertible; SkewTime is broken", checked)
	}
}

func TestSplitJournalRefusesDirtyOutput(t *testing.T) {
	src := filepath.Join(t.TempDir(), "src")
	writeJournal(t, src, ticksExposure()[:50])
	out := []string{filepath.Join(t.TempDir(), "p0"), src} // src is non-empty
	if _, err := SplitJournal(src, out, nil, 1); err == nil {
		t.Fatal("split into a non-empty journal dir must fail")
	}
}

// BenchmarkMergeKWay measures fused-stream throughput (events/s) for a
// k-way merge of in-memory sources — the merge loop's own cost, no
// trigger attached.
func BenchmarkMergeKWay(b *testing.B) {
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			const perSource = 20000
			slices := make([][]*detector.Event, k)
			for i := range slices {
				slices[i] = make([]*detector.Event, perSource)
				for n := range slices[i] {
					slices[i][n] = tick(float64(n)*float64(k) + float64(i))
				}
			}
			b.SetBytes(int64(k * perSource))
			b.ResetTimer()
			for it := 0; it < b.N; it++ {
				cfg := Config{}
				for i := range slices {
					cfg.Sources = append(cfg.Sources, Source{Feed: NewSlice(slices[i])})
				}
				m, err := New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				if err := m.Run(func(*detector.Event) { n++ }); err != nil {
					b.Fatal(err)
				}
				if n != k*perSource {
					b.Fatalf("fused %d, want %d", n, k*perSource)
				}
			}
		})
	}
}

func TestOnLateDropObservesDroppedEvents(t *testing.T) {
	// Source 1 violates its own time order with a backward clock step: the
	// out-of-order events fall behind the watermark and must be surfaced
	// through the OnLateDrop hook before being discarded.
	a := []*detector.Event{
		{ArrivalTime: 0.10}, {ArrivalTime: 0.20}, {ArrivalTime: 0.30}, {ArrivalTime: 0.40},
	}
	b := []*detector.Event{
		{ArrivalTime: 0.15}, {ArrivalTime: 0.35}, {ArrivalTime: 0.21}, {ArrivalTime: 0.22}, {ArrivalTime: 0.45},
	}
	var lateTimes []float64
	cfg := Config{
		Sources: []Source{
			{Name: "a", Feed: NewSlice(a)},
			{Name: "b", Feed: NewSlice(b)},
		},
		OnLateDrop: func(ev *detector.Event) { lateTimes = append(lateTimes, ev.ArrivalTime) },
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var fused []float64
	if err := m.Run(func(ev *detector.Event) { fused = append(fused, ev.ArrivalTime) }); err != nil {
		t.Fatal(err)
	}
	if m.LateDropped() != int64(len(lateTimes)) {
		t.Fatalf("hook saw %d drops, merger counted %d", len(lateTimes), m.LateDropped())
	}
	if len(lateTimes) != 2 || lateTimes[0] != 0.21 || lateTimes[1] != 0.22 {
		t.Fatalf("late-dropped times = %v, want [0.21 0.22]", lateTimes)
	}
	for i := 1; i < len(fused); i++ {
		if fused[i] < fused[i-1] {
			t.Fatalf("fused output out of order at %d: %v", i, fused)
		}
	}
}
