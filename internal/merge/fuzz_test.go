package merge

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/detector"
	"repro/internal/evio"
	"repro/internal/flightlog"
)

// journalImage builds one segment file's bytes holding the given events,
// one record each, by writing a real journal and reading it back.
func journalImage(f *testing.F, events ...*detector.Event) []byte {
	f.Helper()
	dir := f.TempDir()
	j, err := flightlog.Open(flightlog.Options{Dir: dir})
	if err != nil {
		f.Fatal(err)
	}
	for _, ev := range events {
		blob, err := evio.Marshal([]*detector.Event{ev})
		if err != nil {
			f.Fatal(err)
		}
		if err := j.Append(blob); err != nil {
			f.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		f.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.flog"))
	if err != nil || len(segs) != 1 {
		f.Fatalf("glob: %v (%d segments)", err, len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzMerge feeds three arbitrary per-source segment images through the
// full journal-feed merge and requires the structural contract on any
// input: no panic, termination, and a fused output that is nondecreasing
// in corrected event time — even when sources are corrupt, torn, empty,
// not journals at all, or hold events out of order. Source failures may
// surface as errors; they must never wedge or reorder the merge. Run with
// `go test -fuzz=FuzzMerge ./internal/merge`.
func FuzzMerge(f *testing.F) {
	ev := func(t float64) *detector.Event { return &detector.Event{ArrivalTime: t} }
	a := journalImage(f, ev(0.1), ev(0.2), ev(0.3))
	b := journalImage(f, ev(0.15), ev(0.25))
	c := journalImage(f, ev(0.05))
	empty := journalImage(f)

	f.Add(a, b, c)                           // clean 3-way merge
	f.Add(a, b[:len(b)-4], c)                // torn tail on one source
	f.Add(a, []byte("not a journal"), c)     // one source is garbage
	f.Add(empty, empty, empty)               // all empty
	f.Add(a[:11], b, append(c, 0xFF, 0x00))  // torn header + garbage tail
	f.Add(journalImage(f, ev(0.9), ev(0.1)), // out-of-order source
		journalImage(f, ev(0.5)), c)

	f.Fuzz(func(t *testing.T, d0, d1, d2 []byte) {
		var sources []Source
		for i, data := range [][]byte{d0, d1, d2} {
			if len(data) > 1<<20 {
				t.Skip("oversized input")
			}
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "journal-00000001.flog"), data, 0o644); err != nil {
				t.Fatal(err)
			}
			feed, err := OpenJournal(dir)
			if err != nil {
				// Listing a just-written directory cannot fail; anything else
				// is a real bug.
				t.Fatalf("OpenJournal(source %d): %v", i, err)
			}
			sources = append(sources, Source{Feed: feed})
		}
		m, err := New(Config{Sources: sources, BufferEvents: 16})
		if err != nil {
			t.Fatal(err)
		}
		last := -1.0
		first := true
		n := 0
		// Run may return source errors (corrupt frames, bad evio records) —
		// that is the contract working, not a failure. What must hold is
		// termination, no panic, and ordered output.
		_ = m.Run(func(e *detector.Event) {
			if !first && e.ArrivalTime < last {
				t.Fatalf("fused output regressed: %v after %v", e.ArrivalTime, last)
			}
			first = false
			last = e.ArrivalTime
			n++
		})
		if int64(n) != m.EventsOut() {
			t.Fatalf("emitted %d but EventsOut=%d", n, m.EventsOut())
		}
	})
}
