// Package features extracts the paper's model inputs from reconstructed
// Compton rings (§III "Input Features"): twelve measured quantities — the
// event's total deposited energy; position (x, y, z) and deposited energy of
// the first and second hits; and the uncertainties of the three energy
// measurements — plus a thirteenth feature, a rough guess of the source
// polar angle in degrees supplied by the localization loop.
package features

import (
	"context"
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/par"
	"repro/internal/recon"
)

// NumFeatures is the input width with the polar-angle feature (the paper's
// production configuration).
const NumFeatures = 13

// NumFeaturesNoPolar is the input width of the Fig. 7 ablation variant.
const NumFeaturesNoPolar = 12

// Extract fills dst with the ring's feature vector. polarDeg is the current
// polar-angle guess in degrees; it is appended only when withPolar is true.
// dst must have length NumFeatures or NumFeaturesNoPolar accordingly.
func Extract(r *recon.Ring, polarDeg float64, withPolar bool, dst []float32) {
	want := NumFeaturesNoPolar
	if withPolar {
		want = NumFeatures
	}
	if len(dst) != want {
		panic(fmt.Sprintf("features: dst has %d slots, want %d", len(dst), want))
	}
	dst[0] = float32(r.ETotal)
	dst[1] = float32(r.Hit1.Pos.X)
	dst[2] = float32(r.Hit1.Pos.Y)
	dst[3] = float32(r.Hit1.Pos.Z)
	dst[4] = float32(r.Hit1.E)
	dst[5] = float32(r.Hit2.Pos.X)
	dst[6] = float32(r.Hit2.Pos.Y)
	dst[7] = float32(r.Hit2.Pos.Z)
	dst[8] = float32(r.Hit2.E)
	dst[9] = float32(r.SigmaETotal)
	dst[10] = float32(r.SigmaE1)
	dst[11] = float32(r.SigmaE2)
	if withPolar {
		dst[12] = float32(polarDeg)
	}
}

// Matrix builds the feature tensor for a set of rings with a shared polar
// guess, serially.
func Matrix(rings []*recon.Ring, polarDeg float64, withPolar bool) *nn.Tensor {
	return MatrixWith(par.NewPool(1), rings, polarDeg, withPolar)
}

// MatrixWith is Matrix with row extraction sharded over the given worker
// pool. Each row is an independent function of its ring, so the result is
// identical to the serial build for any pool size.
func MatrixWith(p *par.Pool, rings []*recon.Ring, polarDeg float64, withPolar bool) *nn.Tensor {
	cols := NumFeaturesNoPolar
	if withPolar {
		cols = NumFeatures
	}
	x := nn.NewTensor(len(rings), cols)
	p.ForRange(context.Background(), len(rings), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			Extract(rings[i], polarDeg, withPolar, x.Row(i))
		}
	})
	return x
}

// Normalizer standardizes features to zero mean and unit variance using
// statistics fitted on the training set. Networks are trained and evaluated
// on normalized inputs.
type Normalizer struct {
	Mean, Std []float32
}

// FitNormalizer computes per-feature statistics from x.
func FitNormalizer(x *nn.Tensor) *Normalizer {
	n := &Normalizer{Mean: make([]float32, x.Cols), Std: make([]float32, x.Cols)}
	if x.Rows == 0 {
		for c := range n.Std {
			n.Std[c] = 1
		}
		return n
	}
	rows := float64(x.Rows)
	for c := 0; c < x.Cols; c++ {
		var mean float64
		for r := 0; r < x.Rows; r++ {
			mean += float64(x.At(r, c))
		}
		mean /= rows
		var v float64
		for r := 0; r < x.Rows; r++ {
			d := float64(x.At(r, c)) - mean
			v += d * d
		}
		sd := math.Sqrt(v / rows)
		if sd < 1e-9 {
			sd = 1
		}
		n.Mean[c] = float32(mean)
		n.Std[c] = float32(sd)
	}
	return n
}

// Apply standardizes x in place.
func (n *Normalizer) Apply(x *nn.Tensor) {
	n.ApplyWith(par.NewPool(1), x)
}

// ApplyWith standardizes x in place with the rows sharded over the given
// worker pool.
func (n *Normalizer) ApplyWith(p *par.Pool, x *nn.Tensor) {
	if x.Cols != len(n.Mean) {
		panic(fmt.Sprintf("features: normalizer fitted for %d cols, got %d", len(n.Mean), x.Cols))
	}
	p.ForRange(context.Background(), x.Rows, func(_, lo, hi int) {
		for r := lo; r < hi; r++ {
			row := x.Row(r)
			for c := range row {
				row[c] = (row[c] - n.Mean[c]) / n.Std[c]
			}
		}
	})
}

// ApplyVec standardizes a single feature vector in place.
func (n *Normalizer) ApplyVec(v []float32) {
	for c := range v {
		v[c] = (v[c] - n.Mean[c]) / n.Std[c]
	}
}
