package features

import (
	"math"
	"testing"

	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/nn"
	"repro/internal/recon"
	"repro/internal/xrand"
)

func sampleRing() *recon.Ring {
	return &recon.Ring{
		Ring:        geom.Ring{Axis: geom.Vec{Z: 1}, Eta: 0.5, DEta: 0.05},
		Hit1:        detector.Hit{Pos: geom.Vec{X: 1, Y: 2, Z: -0.5}, E: 0.3},
		Hit2:        detector.Hit{Pos: geom.Vec{X: -4, Y: 5, Z: -10.7}, E: 0.6},
		ETotal:      0.95,
		SigmaETotal: 0.04,
		SigmaE1:     0.02,
		SigmaE2:     0.03,
	}
}

func TestExtractLayout(t *testing.T) {
	r := sampleRing()
	dst := make([]float32, NumFeatures)
	Extract(r, 37.5, true, dst)
	want := []float32{0.95, 1, 2, -0.5, 0.3, -4, 5, -10.7, 0.6, 0.04, 0.02, 0.03, 37.5}
	for i, w := range want {
		if dst[i] != w {
			t.Errorf("feature %d = %v, want %v", i, dst[i], w)
		}
	}
	// The 12-feature variant drops only the polar angle.
	short := make([]float32, NumFeaturesNoPolar)
	Extract(r, 37.5, false, short)
	for i := 0; i < NumFeaturesNoPolar; i++ {
		if short[i] != want[i] {
			t.Errorf("no-polar feature %d = %v, want %v", i, short[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong dst length did not panic")
		}
	}()
	Extract(r, 0, true, make([]float32, 5))
}

func TestMatrix(t *testing.T) {
	rings := []*recon.Ring{sampleRing(), sampleRing()}
	x := Matrix(rings, 10, true)
	if x.Rows != 2 || x.Cols != NumFeatures {
		t.Fatalf("shape %dx%d", x.Rows, x.Cols)
	}
	if x.At(0, 12) != 10 || x.At(1, 12) != 10 {
		t.Error("polar column wrong")
	}
	x = Matrix(rings, 10, false)
	if x.Cols != NumFeaturesNoPolar {
		t.Error("no-polar matrix width wrong")
	}
}

func TestNormalizer(t *testing.T) {
	rng := xrand.New(1)
	x := nn.NewTensor(500, 3)
	for r := 0; r < 500; r++ {
		x.Set(r, 0, float32(rng.Gaussian(5, 2)))
		x.Set(r, 1, float32(rng.Gaussian(-3, 0.5)))
		x.Set(r, 2, 7) // constant feature: std must not blow up
	}
	n := FitNormalizer(x)
	if math.Abs(float64(n.Mean[0])-5) > 0.3 || math.Abs(float64(n.Std[0])-2) > 0.3 {
		t.Errorf("fitted stats %v ± %v", n.Mean[0], n.Std[0])
	}
	if n.Std[2] != 1 {
		t.Errorf("constant feature std = %v, want fallback 1", n.Std[2])
	}
	n.Apply(x)
	var mean, sq float64
	for r := 0; r < 500; r++ {
		mean += float64(x.At(r, 0))
		sq += float64(x.At(r, 0)) * float64(x.At(r, 0))
	}
	mean /= 500
	if math.Abs(mean) > 1e-5 {
		t.Errorf("post-apply mean %v", mean)
	}
	if sd := math.Sqrt(sq/500 - mean*mean); math.Abs(sd-1) > 1e-4 {
		t.Errorf("post-apply std %v", sd)
	}
	// ApplyVec matches Apply.
	v := []float32{5, -3, 7}
	n.ApplyVec(v)
	if math.Abs(float64(v[2])) > 1e-6 {
		t.Errorf("ApplyVec constant feature = %v", v[2])
	}
}

func TestNormalizerEmptyAndMismatch(t *testing.T) {
	n := FitNormalizer(nn.NewTensor(0, 2))
	if n.Std[0] != 1 || n.Std[1] != 1 {
		t.Error("empty fit should default std to 1")
	}
	defer func() {
		if recover() == nil {
			t.Error("column mismatch did not panic")
		}
	}()
	n.Apply(nn.NewTensor(1, 3))
}
