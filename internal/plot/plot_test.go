package plot

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/recon"
	"repro/internal/xrand"
)

func TestLinesBasic(t *testing.T) {
	var buf bytes.Buffer
	Lines(&buf, "test chart", "x", "y", []Curve{
		{Name: "rising", Points: []XY{{0, 0}, {1, 1}, {2, 4}}},
		{Name: "falling", Points: []XY{{0, 4}, {2, 0}}},
	}, 40, 10)
	out := buf.String()
	for _, want := range []string{"test chart", "rising", "falling", "o", "x:"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q", want)
		}
	}
	// Axis labels include the data range.
	if !strings.Contains(out, "4") || !strings.Contains(out, "0") {
		t.Error("axis bounds missing")
	}
}

func TestLinesDegenerate(t *testing.T) {
	var buf bytes.Buffer
	Lines(&buf, "empty", "x", "y", nil, 20, 5)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty chart should say so")
	}
	// Constant data must not divide by zero.
	buf.Reset()
	Lines(&buf, "flat", "x", "y", []Curve{{Name: "c", Points: []XY{{1, 5}, {2, 5}}}}, 20, 5)
	if buf.Len() == 0 {
		t.Error("flat chart rendered nothing")
	}
}

func TestSkyMap(t *testing.T) {
	rng := xrand.New(1)
	s := geom.FromSpherical(geom.Rad(30), geom.Rad(45))
	var rings []*recon.Ring
	for i := 0; i < 40; i++ {
		x, y, z := rng.UnitVectorPolarRange(0, 3.14)
		axis := geom.Vec{X: x, Y: y, Z: z}
		rings = append(rings, &recon.Ring{
			Ring: geom.Ring{Axis: axis, Eta: s.Dot(axis), DEta: 0.02},
		})
	}
	var buf bytes.Buffer
	SkyMap(&buf, rings, map[byte]geom.Vec{'T': s}, 21)
	out := buf.String()
	if !strings.Contains(out, "T") {
		t.Error("truth marker missing from sky map")
	}
	if !strings.Contains(out, "ring density") {
		t.Error("caption missing")
	}
	// The map is round: corners blank.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[0], "   ") {
		t.Error("top-left corner not blank")
	}
}

func TestCellDir(t *testing.T) {
	// Center looks at zenith.
	d, ok := cellDir(10, 10, 21)
	if !ok || d.Sub(geom.Vec{Z: 1}).Norm() > 1e-12 {
		t.Errorf("center direction %v", d)
	}
	// Corner is outside the horizon.
	if _, ok := cellDir(0, 0, 21); ok {
		t.Error("corner inside the circle")
	}
	// Right edge looks at the +x horizon.
	d, ok = cellDir(10, 20, 21)
	if !ok || d.Sub(geom.Vec{X: 1}).Norm() > 1e-9 {
		t.Errorf("east-horizon direction %v", d)
	}
}
