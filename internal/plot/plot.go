// Package plot renders small ASCII line charts and sky maps for terminal
// output: the reproduction's equivalents of the paper's matplotlib figures.
// It depends only on the standard library and the geometry package, so both
// the experiment harness and the examples can use it.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/geom"
	"repro/internal/recon"
)

// XY is one plotted point.
type XY struct {
	X, Y float64
}

// Curve is one named line of a chart.
type Curve struct {
	Name   string
	Points []XY
}

// markers are assigned to curves in order.
var markers = []byte{'o', 'x', '+', '*', '#', '@'}

// Lines renders the curves into an ASCII grid of the given size (columns ×
// rows of the plotting area, excluding axes). Curves are linearly
// interpolated between points; overlapping curves show the later curve's
// marker.
func Lines(w io.Writer, title, xlabel, ylabel string, curves []Curve, width, height int) {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	any := false
	for _, c := range curves {
		for _, p := range c.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				continue
			}
			any = true
			xmin = math.Min(xmin, p.X)
			xmax = math.Max(xmax, p.X)
			ymin = math.Min(ymin, p.Y)
			ymax = math.Max(ymax, p.Y)
		}
	}
	if !any {
		fmt.Fprintf(w, "%s\n  (no data)\n", title)
		return
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		return clampInt(c, 0, width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((y - ymin) / (ymax - ymin) * float64(height-1)))
		return clampInt(height-1-r, 0, height-1)
	}

	for ci, c := range curves {
		m := markers[ci%len(markers)]
		for i, p := range c.Points {
			grid[row(p.Y)][col(p.X)] = m
			if i > 0 {
				// Interpolate a light trace between consecutive points.
				q := c.Points[i-1]
				steps := width
				for s := 1; s < steps; s++ {
					t := float64(s) / float64(steps)
					x := q.X + t*(p.X-q.X)
					y := q.Y + t*(p.Y-q.Y)
					r, cc := row(y), col(x)
					if grid[r][cc] == ' ' {
						grid[r][cc] = '.'
					}
				}
			}
		}
	}

	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%10.3g ┤%s\n", ymax, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(w, "%10s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(w, "%10.3g ┤%s\n", ymin, string(grid[height-1]))
	fmt.Fprintf(w, "%10s └%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(w, "%10s  %-*.3g%*.3g\n", "", width/2, xmin, width-width/2, xmax)
	var legend []string
	for ci, c := range curves {
		legend = append(legend, fmt.Sprintf("%c %s", markers[ci%len(markers)], c.Name))
	}
	fmt.Fprintf(w, "%10s  x: %s   y: %s\n", "", xlabel, ylabel)
	fmt.Fprintf(w, "%10s  %s\n", "", strings.Join(legend, "   "))
}

// SkyMap renders the upper hemisphere in an orthographic projection from
// zenith: ring density as shading, plus labeled marker directions (e.g.
// 'T' truth, 'L' localized). size is the map diameter in characters.
func SkyMap(w io.Writer, rings []*recon.Ring, marks map[byte]geom.Vec, size int) {
	if size < 11 {
		size = 11
	}
	if size%2 == 0 {
		size++
	}
	// Density of ring surfaces per cell.
	density := make([][]float64, size)
	maxD := 0.0
	for r := range density {
		density[r] = make([]float64, size)
	}
	for row := 0; row < size; row++ {
		for col := 0; col < size; col++ {
			d, ok := cellDir(row, col, size)
			if !ok {
				continue
			}
			var acc float64
			for _, ring := range rings {
				pull := ring.Pull(d)
				if pull > -3 && pull < 3 {
					acc++
				}
			}
			density[row][col] = acc
			maxD = math.Max(maxD, acc)
		}
	}
	shades := []byte(" .:-=+%")
	order := markOrder(marks)
	for row := 0; row < size; row++ {
		line := make([]byte, size)
		for col := 0; col < size; col++ {
			d, ok := cellDir(row, col, size)
			if !ok {
				line[col] = ' '
				continue
			}
			idx := 0
			if maxD > 0 {
				idx = int(density[row][col] / maxD * float64(len(shades)-1))
			}
			line[col] = shades[idx]
			for _, mark := range order {
				if geom.AngleBetween(d, marks[mark]) < math.Pi/float64(size) {
					line[col] = mark
				}
			}
		}
		fmt.Fprintf(w, "  %s\n", doubleWide(line))
	}
	fmt.Fprintf(w, "  (orthographic view from zenith; shading = Compton-ring density)\n")
}

// markOrder fixes the marker draw order (ascending label byte) so that
// where markers overlap the same cell the winner is deterministic — a map
// range here would make repeated renders differ.
func markOrder(marks map[byte]geom.Vec) []byte {
	order := make([]byte, 0, len(marks))
	for mark := range marks {
		order = append(order, mark)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	return order
}

// Density renders an arbitrary nonnegative sky-density function in the
// same orthographic zenith projection as SkyMap: shading is the density
// normalized to its on-screen maximum, plus labeled marker directions.
// cmd/adaptmap uses it to render decoded downlink map payloads.
func Density(w io.Writer, f func(geom.Vec) float64, marks map[byte]geom.Vec, size int, caption string) {
	if size < 11 {
		size = 11
	}
	if size%2 == 0 {
		size++
	}
	density := make([][]float64, size)
	maxD := 0.0
	for r := range density {
		density[r] = make([]float64, size)
	}
	for row := 0; row < size; row++ {
		for col := 0; col < size; col++ {
			d, ok := cellDir(row, col, size)
			if !ok {
				continue
			}
			v := f(d)
			if math.IsNaN(v) || v < 0 {
				v = 0
			}
			density[row][col] = v
			maxD = math.Max(maxD, v)
		}
	}
	shades := []byte(" .:-=+%")
	order := markOrder(marks)
	for row := 0; row < size; row++ {
		line := make([]byte, size)
		for col := 0; col < size; col++ {
			d, ok := cellDir(row, col, size)
			if !ok {
				line[col] = ' '
				continue
			}
			idx := 0
			if maxD > 0 {
				idx = int(density[row][col] / maxD * float64(len(shades)-1))
			}
			line[col] = shades[idx]
			for _, mark := range order {
				if geom.AngleBetween(d, marks[mark]) < math.Pi/float64(size) {
					line[col] = mark
				}
			}
		}
		fmt.Fprintf(w, "  %s\n", doubleWide(line))
	}
	fmt.Fprintf(w, "  (%s)\n", caption)
}

// cellDir maps a map cell to the sky direction it views; ok is false
// outside the horizon circle.
func cellDir(row, col, size int) (geom.Vec, bool) {
	h := float64(size-1) / 2
	x := (float64(col) - h) / h
	y := (h - float64(row)) / h
	r2 := x*x + y*y
	if r2 > 1 {
		return geom.Vec{}, false
	}
	return geom.Vec{X: x, Y: y, Z: math.Sqrt(1 - r2)}, true
}

// doubleWide doubles each character horizontally so the circle looks round
// in typical terminal fonts.
func doubleWide(line []byte) string {
	var b strings.Builder
	for _, c := range line {
		b.WriteByte(c)
		b.WriteByte(c)
	}
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
