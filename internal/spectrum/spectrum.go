// Package spectrum models the photon energy spectra and light curves used by
// the ADAPT evaluation: the Band GRB spectrum with a fixed high-energy index
// β = −2.35 and a 30 keV minimum simulated energy (paper §IV, footnote 2),
// and a power-law atmospheric background spectrum.
//
// A Spectrum is sampled through a tabulated inverse CDF built once at
// construction, so per-photon sampling is a binary search plus one
// interpolation regardless of the spectral form.
package spectrum

import (
	"math"
	"sort"

	"repro/internal/units"
	"repro/internal/xrand"
)

// Spectrum draws photon energies (MeV) from a fixed distribution.
type Spectrum interface {
	// Sample returns one photon energy in MeV.
	Sample(rng *xrand.RNG) float64
	// MeanEnergy returns the mean photon energy in MeV, used to convert a
	// fluence (MeV/cm²) into an expected photon count per cm².
	MeanEnergy() float64
	// Bounds returns the support [lo, hi] in MeV.
	Bounds() (lo, hi float64)
}

// tableSpectrum samples any positive spectral density via a tabulated
// inverse CDF on a log-spaced energy grid.
type tableSpectrum struct {
	lo, hi float64
	cdf    []float64 // cumulative probability at each grid point, cdf[n-1]=1
	grid   []float64 // energies, log-spaced, len == len(cdf)
	mean   float64
}

const tablePoints = 1024

// newTableSpectrum builds a sampler for density(E) (unnormalized, must be
// >= 0 and finite on [lo, hi]).
func newTableSpectrum(density func(e float64) float64, lo, hi float64) *tableSpectrum {
	if !(lo > 0) || !(hi > lo) {
		panic("spectrum: bad bounds")
	}
	t := &tableSpectrum{lo: lo, hi: hi}
	t.grid = make([]float64, tablePoints)
	t.cdf = make([]float64, tablePoints)
	logLo, logHi := math.Log(lo), math.Log(hi)
	for i := range t.grid {
		t.grid[i] = math.Exp(logLo + (logHi-logLo)*float64(i)/float64(tablePoints-1))
	}
	// Trapezoidal accumulation of the density and of E·density for the mean.
	var total, eTotal float64
	prevE, prevD := t.grid[0], density(t.grid[0])
	for i := 1; i < tablePoints; i++ {
		e, d := t.grid[i], density(t.grid[i])
		de := e - prevE
		total += 0.5 * (d + prevD) * de
		eTotal += 0.5 * (d*e + prevD*prevE) * de
		t.cdf[i] = total
		prevE, prevD = e, d
	}
	if total <= 0 {
		panic("spectrum: density integrates to zero")
	}
	for i := range t.cdf {
		t.cdf[i] /= total
	}
	t.mean = eTotal / total
	return t
}

func (t *tableSpectrum) Sample(rng *xrand.RNG) float64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(t.cdf, u)
	if i <= 0 {
		return t.grid[0]
	}
	if i >= len(t.cdf) {
		return t.grid[len(t.grid)-1]
	}
	// Linear interpolation within the bracketing grid cell.
	c0, c1 := t.cdf[i-1], t.cdf[i]
	f := 0.0
	if c1 > c0 {
		f = (u - c0) / (c1 - c0)
	}
	return t.grid[i-1] + f*(t.grid[i]-t.grid[i-1])
}

func (t *tableSpectrum) MeanEnergy() float64      { return t.mean }
func (t *tableSpectrum) Bounds() (lo, hi float64) { return t.lo, t.hi }

// Band is the Band GRB spectral model. Alpha is the low-energy photon index,
// Beta the high-energy index (the paper fixes Beta = −2.35), EPeak the νFν
// peak energy in MeV.
type Band struct {
	Alpha, Beta, EPeak float64
	tab                *tableSpectrum
}

// DefaultBand returns the evaluation spectrum used throughout this
// reproduction: a typical short-GRB Band spectrum with α = −0.5,
// β = −2.35, E_peak = 0.5 MeV, sampled on [30 keV, 30 MeV].
func DefaultBand() *Band {
	return NewBand(-0.5, -2.35, 0.5)
}

// NewBand constructs a Band spectrum over the simulation energy range.
func NewBand(alpha, beta, epeak float64) *Band {
	b := &Band{Alpha: alpha, Beta: beta, EPeak: epeak}
	b.tab = newTableSpectrum(b.density, units.MinSimEnergyMeV, units.MaxSimEnergyMeV)
	return b
}

// density is the Band photon number density dN/dE (unnormalized).
func (b *Band) density(e float64) float64 {
	// Characteristic energy where the two segments join smoothly.
	e0 := b.EPeak / (2 + b.Alpha)
	ec := (b.Alpha - b.Beta) * e0
	if e < ec {
		return math.Pow(e, b.Alpha) * math.Exp(-e/e0)
	}
	return math.Pow(ec, b.Alpha-b.Beta) * math.Exp(b.Beta-b.Alpha) * math.Pow(e, b.Beta)
}

// Sample implements Spectrum.
func (b *Band) Sample(rng *xrand.RNG) float64 { return b.tab.Sample(rng) }

// MeanEnergy implements Spectrum.
func (b *Band) MeanEnergy() float64 { return b.tab.MeanEnergy() }

// Bounds implements Spectrum.
func (b *Band) Bounds() (lo, hi float64) { return b.tab.Bounds() }

// PowerLaw is a pure power-law spectrum dN/dE ∝ E^Index on [Lo, Hi] MeV,
// used for the atmospheric background.
type PowerLaw struct {
	Index, Lo, Hi float64
	mean          float64
}

// NewPowerLaw constructs a power-law spectrum.
func NewPowerLaw(index, lo, hi float64) *PowerLaw {
	p := &PowerLaw{Index: index, Lo: lo, Hi: hi}
	// Mean energy has a closed form: ∫E^(i+1)/∫E^i.
	p.mean = momentRatio(index, lo, hi)
	return p
}

func momentRatio(index, lo, hi float64) float64 {
	num := powInt(index+1, lo, hi)
	den := powInt(index, lo, hi)
	return num / den
}

// powInt integrates E^index over [lo, hi].
func powInt(index, lo, hi float64) float64 {
	if index == -1 {
		return math.Log(hi / lo)
	}
	g := index + 1
	return (math.Pow(hi, g) - math.Pow(lo, g)) / g
}

// Sample implements Spectrum.
func (p *PowerLaw) Sample(rng *xrand.RNG) float64 {
	return rng.PowerLaw(p.Index, p.Lo, p.Hi)
}

// MeanEnergy implements Spectrum.
func (p *PowerLaw) MeanEnergy() float64 { return p.mean }

// Bounds implements Spectrum.
func (p *PowerLaw) Bounds() (lo, hi float64) { return p.Lo, p.Hi }

// LightCurve gives the normalized burst intensity profile over time; its
// integral over [0, Duration] is 1.
type LightCurve struct {
	// Duration of the burst window in seconds.
	Duration float64
	// RiseFrac is the fraction of the duration spent in the linear rise of
	// the FRED (fast-rise exponential-decay) profile.
	RiseFrac float64
}

// DefaultLightCurve returns the 1-second short-GRB profile used by the
// paper's evaluation (all experiments use 1 s bursts).
func DefaultLightCurve() LightCurve {
	return LightCurve{Duration: 1.0, RiseFrac: 0.1}
}

// SampleTime draws a photon arrival time in [0, Duration) from the FRED
// profile: linear rise over RiseFrac·Duration, exponential decay after.
func (lc LightCurve) SampleTime(rng *xrand.RNG) float64 {
	rise := lc.RiseFrac * lc.Duration
	decay := (lc.Duration - rise) / 3 // ~95% of the decay fits in the window
	// Area of the triangle rise vs the truncated exponential tail.
	tailArea := decay * (1 - math.Exp(-(lc.Duration-rise)/decay))
	riseArea := rise / 2
	if rng.Float64() < riseArea/(riseArea+tailArea) {
		return rise * math.Sqrt(rng.Float64())
	}
	// Truncated exponential on [0, Duration-rise].
	u := rng.Float64()
	span := lc.Duration - rise
	t := -decay * math.Log(1-u*(1-math.Exp(-span/decay)))
	return rise + t
}

// PhotonsPerCm2 converts a fluence in MeV/cm² to the expected photon count
// per cm² for spectrum s.
func PhotonsPerCm2(fluence float64, s Spectrum) float64 {
	return fluence / s.MeanEnergy()
}
