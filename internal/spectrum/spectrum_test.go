package spectrum

import (
	"math"
	"testing"

	"repro/internal/units"
	"repro/internal/xrand"
)

func TestBandDensityContinuity(t *testing.T) {
	b := DefaultBand()
	e0 := b.EPeak / (2 + b.Alpha)
	ec := (b.Alpha - b.Beta) * e0
	lo := b.density(ec * 0.9999)
	hi := b.density(ec * 1.0001)
	if math.Abs(lo-hi)/lo > 0.01 {
		t.Errorf("Band density discontinuous at junction: %v vs %v", lo, hi)
	}
	// The Band function is positive and decreasing well above the peak.
	if b.density(5) <= 0 || b.density(10) >= b.density(5) {
		t.Error("Band high-energy tail not positive/decreasing")
	}
}

func TestBandSampleBounds(t *testing.T) {
	b := DefaultBand()
	rng := xrand.New(1)
	lo, hi := b.Bounds()
	if lo != units.MinSimEnergyMeV || hi != units.MaxSimEnergyMeV {
		t.Fatalf("Bounds = %v, %v", lo, hi)
	}
	for i := 0; i < 20000; i++ {
		e := b.Sample(rng)
		if e < lo || e > hi {
			t.Fatalf("sample out of bounds: %v", e)
		}
	}
}

func TestBandMeanMatchesSamples(t *testing.T) {
	b := DefaultBand()
	rng := xrand.New(2)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += b.Sample(rng)
	}
	got := sum / float64(n)
	want := b.MeanEnergy()
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("empirical mean %v vs tabulated %v", got, want)
	}
	if want < 0.05 || want > 2 {
		t.Errorf("Band mean energy %v MeV implausible for a short GRB", want)
	}
}

func TestBandSteeperBetaSoftens(t *testing.T) {
	soft := NewBand(-0.5, -3.0, 0.5)
	hard := NewBand(-0.5, -2.0, 0.5)
	if soft.MeanEnergy() >= hard.MeanEnergy() {
		t.Errorf("steeper beta should lower the mean: %v vs %v", soft.MeanEnergy(), hard.MeanEnergy())
	}
}

func TestPowerLawMean(t *testing.T) {
	p := NewPowerLaw(-1.75, 0.03, 30)
	rng := xrand.New(3)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		e := p.Sample(rng)
		if e < 0.03 || e > 30 {
			t.Fatalf("power-law sample out of bounds: %v", e)
		}
		sum += e
	}
	got := sum / float64(n)
	if math.Abs(got-p.MeanEnergy())/p.MeanEnergy() > 0.05 {
		t.Errorf("empirical mean %v vs closed form %v", got, p.MeanEnergy())
	}
}

func TestPowerLawIndexMinusOne(t *testing.T) {
	p := NewPowerLaw(-1, 1, 10)
	// Closed-form mean for index -1: (hi-lo)/ln(hi/lo).
	want := 9 / math.Log(10.0)
	if math.Abs(p.MeanEnergy()-want) > 1e-9 {
		t.Errorf("mean for index -1 = %v, want %v", p.MeanEnergy(), want)
	}
}

func TestLightCurveSampleTimes(t *testing.T) {
	lc := DefaultLightCurve()
	rng := xrand.New(4)
	n := 50000
	early := 0
	for i := 0; i < n; i++ {
		ts := lc.SampleTime(rng)
		if ts < 0 || ts >= lc.Duration {
			t.Fatalf("sample time out of window: %v", ts)
		}
		if ts < 0.3 {
			early++
		}
	}
	// A FRED profile front-loads the photons.
	if frac := float64(early) / float64(n); frac < 0.5 {
		t.Errorf("only %.2f of photons in the first 30%% of a FRED burst", frac)
	}
}

func TestPhotonsPerCm2(t *testing.T) {
	b := DefaultBand()
	got := PhotonsPerCm2(2.0, b)
	if math.Abs(got-2.0/b.MeanEnergy()) > 1e-12 {
		t.Errorf("PhotonsPerCm2 = %v", got)
	}
}

func TestTableSpectrumCDFMonotone(t *testing.T) {
	b := DefaultBand()
	for i := 1; i < len(b.tab.cdf); i++ {
		if b.tab.cdf[i] < b.tab.cdf[i-1] {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	if math.Abs(b.tab.cdf[len(b.tab.cdf)-1]-1) > 1e-12 {
		t.Errorf("CDF does not end at 1: %v", b.tab.cdf[len(b.tab.cdf)-1])
	}
}

func TestNewTableSpectrumPanics(t *testing.T) {
	for _, c := range []struct{ lo, hi float64 }{{0, 1}, {2, 1}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for bounds %v", c)
				}
			}()
			newTableSpectrum(func(float64) float64 { return 1 }, c.lo, c.hi)
		}()
	}
}
