package pipeline

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/xrand"
)

// TestRunBitwiseDeterministicAcrossWorkers pins the full-pipeline
// determinism contract on the ML path: reconstruction, the NN loop
// (feature extraction, sharded inference, re-localization), and the dEta
// rewrite must give bitwise-identical results for any worker count.
func TestRunBitwiseDeterministicAcrossWorkers(t *testing.T) {
	bundle := tinyBundle(t)
	events, _ := simulateExposure(1.5, 30, 42)

	run := func(workers int) Result {
		opts := DefaultOptions()
		opts.Bundle = bundle
		opts.Workers = workers
		return Run(opts, events, xrand.New(43))
	}
	serial := run(1)
	if !serial.Loc.OK {
		t.Fatal("serial run failed to localize")
	}
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if got.Loc.Dir != serial.Loc.Dir {
			t.Errorf("workers %d: Dir %+v != serial %+v", workers, got.Loc.Dir, serial.Loc.Dir)
		}
		if got.Rings != serial.Rings || got.Kept != serial.Kept ||
			got.NNIterations != serial.NNIterations ||
			got.FlaggedGRB != serial.FlaggedGRB || got.FlaggedBkg != serial.FlaggedBkg {
			t.Errorf("workers %d: counts (rings %d kept %d iters %d flagged %d/%d) != serial (%d %d %d %d/%d)",
				workers, got.Rings, got.Kept, got.NNIterations, got.FlaggedGRB, got.FlaggedBkg,
				serial.Rings, serial.Kept, serial.NNIterations, serial.FlaggedGRB, serial.FlaggedBkg)
		}
		if got.ErrorRadiusDeg != serial.ErrorRadiusDeg {
			t.Errorf("workers %d: ErrorRadiusDeg %v != serial %v",
				workers, got.ErrorRadiusDeg, serial.ErrorRadiusDeg)
		}
		if len(got.ActiveRings) != len(serial.ActiveRings) {
			t.Errorf("workers %d: %d active rings, serial %d",
				workers, len(got.ActiveRings), len(serial.ActiveRings))
		}
	}
}

// TestRunRecordsMetrics checks the obs wiring: one Run populates every
// pipeline stage histogram with exactly one sample, in pipeline order, and
// the counters reflect the run.
func TestRunRecordsMetrics(t *testing.T) {
	bundle := tinyBundle(t)
	events, _ := simulateExposure(1.0, 20, 14)

	reg := obs.NewRegistry()
	opts := DefaultOptions()
	opts.Bundle = bundle
	opts.Metrics = reg
	res := Run(opts, events, xrand.New(15))

	names := reg.StageNames()
	if len(names) != len(StageNames) {
		t.Fatalf("registry has stages %v, want %v", names, StageNames)
	}
	for i, want := range StageNames {
		if names[i] != want {
			t.Fatalf("stage order %v, want %v", names, StageNames)
		}
		if n := reg.Stage(want).Count(); n != 1 {
			t.Errorf("stage %q has %d samples, want 1", want, n)
		}
	}
	if got := reg.Counter("runs").Load(); got != 1 {
		t.Errorf("runs counter = %d, want 1", got)
	}
	if got := reg.Counter("events").Load(); got != int64(len(events)) {
		t.Errorf("events counter = %d, want %d", got, len(events))
	}
	if got := reg.Counter("rings_reconstructed").Load(); got != int64(res.Rings) {
		t.Errorf("rings_reconstructed = %d, want %d", got, res.Rings)
	}
	if got := reg.Counter("nn_iterations").Load(); got != int64(res.NNIterations) {
		t.Errorf("nn_iterations = %d, want %d", got, res.NNIterations)
	}

	// A second run accumulates into the same histograms.
	Run(opts, events, xrand.New(16))
	if n := reg.Stage(StageTotal).Count(); n != 2 {
		t.Errorf("total stage has %d samples after two runs, want 2", n)
	}

	var buf bytes.Buffer
	reg.WriteText(&buf)
	if !strings.Contains(buf.String(), StageBkgNN) {
		t.Errorf("text report missing %q:\n%s", StageBkgNN, buf.String())
	}
}

// TestRunNilMetricsIsFree ensures the no-metrics path still works (nil
// registry sinks every record call).
func TestRunNilMetricsIsFree(t *testing.T) {
	events, _ := simulateExposure(1.0, 20, 14)
	opts := DefaultOptions()
	opts.Metrics = nil
	if res := Run(opts, events, xrand.New(15)); !res.Loc.OK {
		t.Error("run with nil metrics failed")
	}
}
