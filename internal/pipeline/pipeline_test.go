package pipeline

import (
	"testing"

	"repro/internal/background"
	"repro/internal/datagen"
	"repro/internal/detector"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/xrand"
)

// simulateExposure builds one burst + background event list.
func simulateExposure(fluence, polar float64, seed uint64) ([]*detector.Event, detector.Burst) {
	det := detector.DefaultConfig()
	bg := background.DefaultModel()
	rng := xrand.New(seed)
	burst := detector.Burst{Fluence: fluence, PolarDeg: polar, AzimuthDeg: 77}
	events := detector.SimulateBurst(&det, burst, rng)
	events = append(events, bg.Simulate(&det, 1.0, rng)...)
	return events, burst
}

// tinyBundle trains a minimal model pair once for the package's tests.
var tinyBundle = func() func(t *testing.T) *models.Bundle {
	var b *models.Bundle
	return func(t *testing.T) *models.Bundle {
		t.Helper()
		if b != nil {
			return b
		}
		cfg := datagen.DefaultConfig(21)
		cfg.BurstsPerAngle = 1
		cfg.PolarAnglesDeg = []float64{0, 40, 80}
		set := datagen.Generate(cfg)
		opts := models.DefaultTrainOptions(22)
		opts.MaxEpochs = 4
		opts.BkgLR = 5e-3
		opts.BkgBatch = 512
		b = models.Train(set, opts)
		return b
	}
}()

func TestRunNoML(t *testing.T) {
	events, burst := simulateExposure(1.0, 0, 1)
	res := Run(DefaultOptions(), events, xrand.New(2))
	if !res.Loc.OK {
		t.Fatal("no-ML pipeline failed to localize")
	}
	if res.Rings < 100 {
		t.Errorf("only %d rings", res.Rings)
	}
	if res.Kept != res.Rings {
		t.Errorf("no-ML run should keep all rings: %d vs %d", res.Kept, res.Rings)
	}
	if err := res.Loc.ErrorDeg(burst.SourceDirection()); err > 15 {
		t.Errorf("bright-burst error %v°", err)
	}
	tm := res.Timing
	if tm.Total <= 0 || tm.Reconstruction <= 0 || tm.ApproxRefine <= 0 {
		t.Error("timing not populated")
	}
	if tm.BkgNN != 0 || tm.DEtaNN != 0 {
		t.Error("NN stage timing nonzero without models")
	}
}

func TestRunEmptyEvents(t *testing.T) {
	res := Run(DefaultOptions(), nil, xrand.New(3))
	if res.Loc.OK {
		t.Error("OK with no events")
	}
	if res.Rings != 0 {
		t.Error("rings from nothing")
	}
}

func TestOracleArms(t *testing.T) {
	events, burst := simulateExposure(1.0, 0, 4)
	base := Run(DefaultOptions(), events, xrand.New(5))

	events2, _ := simulateExposure(1.0, 0, 4)
	optsB := DefaultOptions()
	optsB.OracleBackground = true
	oracleB := Run(optsB, events2, xrand.New(5))
	if !oracleB.Loc.OK {
		t.Fatal("oracle-background failed")
	}
	// Every surviving ring is non-background by construction; the kept
	// count drops well below the reconstructed count (Rings is the
	// pre-filter tally in both runs).
	if oracleB.Kept >= base.Kept {
		t.Errorf("oracle background did not remove rings: kept %d vs %d", oracleB.Kept, base.Kept)
	}

	events3, _ := simulateExposure(1.0, 0, 4)
	optsD := DefaultOptions()
	optsD.OracleDEta = true
	oracleD := Run(optsD, events3, xrand.New(5))
	if !oracleD.Loc.OK {
		t.Fatal("oracle-dEta failed")
	}
	// Oracle dη typically gives the best accuracy of the three (Fig. 4);
	// assert it at least localizes well on a bright burst.
	if err := oracleD.Loc.ErrorDeg(burst.SourceDirection()); err > 5 {
		t.Errorf("oracle-dEta error %v°", err)
	}
}

func TestRunWithModels(t *testing.T) {
	if testing.Short() {
		t.Skip("trains networks")
	}
	b := tinyBundle(t)
	events, burst := simulateExposure(1.0, 0, 6)
	opts := DefaultOptions()
	opts.Bundle = b
	res := Run(opts, events, xrand.New(7))
	if !res.Loc.OK {
		t.Fatal("ML pipeline failed")
	}
	if res.NNIterations < 1 || res.NNIterations > opts.MaxNNIters {
		t.Errorf("NN iterations = %d", res.NNIterations)
	}
	if res.RingsFirstBkg != res.Rings {
		t.Errorf("first bkg pass saw %d rings of %d", res.RingsFirstBkg, res.Rings)
	}
	if res.Kept <= 0 || res.Kept > res.Rings {
		t.Errorf("kept %d of %d", res.Kept, res.Rings)
	}
	if res.Timing.BkgNN <= 0 || res.Timing.DEtaNN <= 0 {
		t.Error("NN stage timings not populated")
	}
	if res.FlaggedBkg == 0 {
		t.Error("classifier flagged no background at all")
	}
	if err := res.Loc.ErrorDeg(burst.SourceDirection()); err > 15 {
		t.Errorf("ML bright-burst error %v°", err)
	}
}

func TestAblationSwitches(t *testing.T) {
	if testing.Short() {
		t.Skip("trains networks")
	}
	b := tinyBundle(t)
	events, _ := simulateExposure(1.0, 0, 8)

	opts := DefaultOptions()
	opts.Bundle = b
	opts.DisableBkgNN = true
	res := Run(opts, events, xrand.New(9))
	if res.NNIterations != 0 {
		t.Errorf("bkg NN disabled but %d iterations ran", res.NNIterations)
	}
	if res.Timing.DEtaNN <= 0 {
		t.Error("dEta should still run with bkg disabled")
	}

	events2, _ := simulateExposure(1.0, 0, 8)
	opts = DefaultOptions()
	opts.Bundle = b
	opts.DisableDEtaNN = true
	res = Run(opts, events2, xrand.New(9))
	if res.NNIterations == 0 {
		t.Error("bkg loop should run with dEta disabled")
	}
}

func TestMaxNNItersBound(t *testing.T) {
	if testing.Short() {
		t.Skip("trains networks")
	}
	b := tinyBundle(t)
	events, _ := simulateExposure(1.0, 0, 10)
	opts := DefaultOptions()
	opts.Bundle = b
	opts.MaxNNIters = 1
	opts.ConvergeDeg = 0 // never converge early
	res := Run(opts, events, xrand.New(11))
	if res.NNIterations != 1 {
		t.Errorf("iterations = %d, want exactly 1", res.NNIterations)
	}
}

func TestBkgOverrideIsUsed(t *testing.T) {
	if testing.Short() {
		t.Skip("trains networks")
	}
	b := tinyBundle(t)
	events, _ := simulateExposure(1.0, 0, 12)

	// An override that flags nothing: every ring survives.
	opts := DefaultOptions()
	opts.Bundle = b
	opts.BkgOverride = constClassifier(0)
	res := Run(opts, events, xrand.New(13))
	if res.FlaggedBkg != 0 || res.FlaggedGRB != 0 {
		t.Error("flag-nothing override still flagged rings")
	}
	if res.Kept != res.Rings {
		t.Errorf("kept %d of %d with flag-nothing override", res.Kept, res.Rings)
	}
}

// constClassifier returns a fixed probability for every ring.
type constClassifier float32

func (c constClassifier) Probs(x *nn.Tensor) []float32 {
	out := make([]float32, x.Rows)
	for i := range out {
		out[i] = float32(c)
	}
	return out
}

func TestParallelMatchesSerial(t *testing.T) {
	events, _ := simulateExposure(1.0, 20, 14)
	opts1 := DefaultOptions()
	opts1.Workers = 1
	opts4 := DefaultOptions()
	opts4.Workers = 4
	r1 := Run(opts1, events, xrand.New(15))
	r4 := Run(opts4, events, xrand.New(15))
	if r1.Rings != r4.Rings {
		t.Errorf("worker count changed ring count: %d vs %d", r1.Rings, r4.Rings)
	}
	if r1.Loc.Dir.Sub(r4.Loc.Dir).Norm() > 1e-9 {
		t.Error("worker count changed the localization result")
	}
}
