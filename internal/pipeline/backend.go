package pipeline

import (
	"fmt"

	"repro/internal/fpga"
	"repro/internal/models"
	"repro/internal/nn"
)

// Backend names one of the pluggable inference implementations of the
// background classifier. The choice changes which arithmetic evaluates the
// network — never which events trigger or how the pipeline iterates — so
// backends are interchangeable up to quantization error:
//
//   - BackendFloat32 runs the bundle's FP32 network (the training-time
//     arithmetic; bitwise-deterministic at any worker count because shards
//     are row-aligned and each row's dot products are evaluated serially).
//   - BackendInt8 runs the QAT-quantized integer network
//     (quant.Int8Net): int8×int8→int32 accumulate with fixed-point
//     requantization. Integer arithmetic is exact, so results are bitwise
//     identical at any batch size and worker count, and identical to the
//     FPGA kernel's arithmetic by construction.
//   - BackendFPGASim runs the same integer network wrapped in the
//     synthesized kernel's cycle accounting (fpga.Kernel): numerically
//     identical to BackendInt8, plus a simulated-hardware latency ledger.
//
// The int8 and fpga-sim backends require a bundle quantized with
// adapttrain -quantize (models.Bundle.Int8 non-nil).
type Backend string

const (
	// BackendFloat32 is the default full-precision software path.
	BackendFloat32 Backend = "float32"
	// BackendInt8 is the batched integer inference path.
	BackendInt8 Backend = "int8"
	// BackendFPGASim is the integer path with synthesized-kernel cycle
	// accounting.
	BackendFPGASim Backend = "fpga-sim"
)

// Backends lists the valid backend names, for flag help text.
var Backends = []Backend{BackendFloat32, BackendInt8, BackendFPGASim}

// ParseBackend validates a backend name from a flag or config; the empty
// string means BackendFloat32.
func ParseBackend(s string) (Backend, error) {
	switch Backend(s) {
	case "", BackendFloat32:
		return BackendFloat32, nil
	case BackendInt8:
		return BackendInt8, nil
	case BackendFPGASim:
		return BackendFPGASim, nil
	}
	return "", fmt.Errorf("unknown inference backend %q (want float32, int8, or fpga-sim)", s)
}

// NewClassifier builds the background classifier implementing backend b
// over bundle's models. A nil bundle returns (nil, nil): the pipeline runs
// no-ML regardless of backend. The int8 and fpga-sim backends require a
// quantized bundle.
func NewClassifier(b Backend, bundle *models.Bundle) (BkgClassifier, error) {
	if bundle == nil {
		return nil, nil
	}
	switch b {
	case "", BackendFloat32:
		return FP32Classifier{Net: bundle.Bkg}, nil
	case BackendInt8:
		if bundle.Int8 == nil {
			return nil, fmt.Errorf("backend int8: bundle has no quantized model; train with adapttrain -quantize")
		}
		return bundle.Int8, nil
	case BackendFPGASim:
		if bundle.Int8 == nil {
			return nil, fmt.Errorf("backend fpga-sim: bundle has no quantized model; train with adapttrain -quantize")
		}
		return fpga.NewKernel(bundle.Int8, fpga.DefaultDevice()), nil
	}
	return nil, fmt.Errorf("unknown inference backend %q", b)
}

// ClassifierProbsInto evaluates cls on x into a caller-owned buffer, using
// the classifier's ProbsInto fast path when it has one. It is the one place
// callers outside the pipeline (the serving micro-batcher) should route
// backend-generic inference through.
func ClassifierProbsInto(cls BkgClassifier, x *nn.Tensor, out []float32) {
	if pi, ok := cls.(probsInto); ok {
		pi.ProbsInto(x, out)
		return
	}
	copy(out, cls.Probs(x))
}
