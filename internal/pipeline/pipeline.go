// Package pipeline implements the paper's full GRB analysis pipeline with
// the machine-learning stage in the middle of localization (Fig. 6):
//
//	reconstruct events → localize → repeat ≤5× { estimate polar angle →
//	background network flags rings → re-localize } → dEta network rewrites
//	ring widths → final localization.
//
// The pipeline can run without models (the paper's prior, no-ML pipeline),
// with oracle substitutions for the Fig. 4 upper-bound arms, or with an
// alternative background classifier (e.g. the INT8 quantized network).
// Every stage is timed with the same decomposition as the paper's
// Tables I and II.
package pipeline

import (
	"context"
	"math"
	"sort"
	"time"

	"repro/internal/detector"
	"repro/internal/features"
	"repro/internal/geom"
	"repro/internal/localize"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/recon"
	"repro/internal/xrand"
)

// BkgClassifier produces background probabilities for normalized feature
// rows. The FP32 bundle network and the INT8 quantized network both satisfy
// it.
type BkgClassifier interface {
	Probs(x *nn.Tensor) []float32
}

// FP32Classifier adapts an nn.Sequential.
type FP32Classifier struct{ Net *nn.Sequential }

// Probs implements BkgClassifier.
func (c FP32Classifier) Probs(x *nn.Tensor) []float32 { return c.Net.PredictProbs(x) }

// ProbsInto implements the probsInto fast path.
func (c FP32Classifier) ProbsInto(x *nn.Tensor, out []float32) { c.Net.PredictProbsInto(x, out) }

// probsInto is an optional BkgClassifier extension: classifiers that can
// write probabilities into a caller-owned buffer avoid one allocation and
// copy per inference shard.
type probsInto interface {
	ProbsInto(x *nn.Tensor, out []float32)
}

// Options configures a pipeline run. Zero-valued sub-configs mean package
// defaults.
type Options struct {
	Recon recon.Config
	Loc   localize.Config
	// Bundle supplies the trained networks; nil runs the no-ML pipeline.
	Bundle *models.Bundle
	// BkgOverride replaces the bundle's background classifier (e.g. with
	// the serving micro-batcher) while keeping its thresholds and
	// normalizer. When set, it takes precedence over Backend.
	BkgOverride BkgClassifier
	// Backend selects which inference implementation evaluates the
	// background network when BkgOverride is nil: float32 (default), int8,
	// or fpga-sim. The int8 and fpga-sim backends require a quantized
	// bundle (Bundle.Int8 non-nil); Run panics otherwise — callers surface
	// friendlier errors by pre-validating with NewClassifier.
	Backend Backend
	// MaxNNIters is the bound on localize↔classify iterations (paper:
	// "currently five").
	MaxNNIters int
	// ConvergeDeg stops the iteration early once the direction estimate
	// moves less than this many degrees between iterations.
	ConvergeDeg float64
	// OracleBackground removes ground-truth background rings before
	// localization (Fig. 4 middle arm). Mutually exclusive with Bundle.
	OracleBackground bool
	// OracleDEta replaces every ring's dη with its realized |η error|
	// (Fig. 4 right arm).
	OracleDEta bool
	// DEtaFloor bounds NN-predicted (and oracle) ring widths from below.
	DEtaFloor float64
	// DEtaWidenRatio: a ring's width is replaced by the dEta network's
	// prediction only when the prediction exceeds the analytic width by at
	// least this factor. The network exists to catch rings whose "actual
	// errors in η [are] much larger than our estimates predict" (§II-B);
	// for the bulk of rings the analytic propagation already orders the
	// weights well, and wholesale replacement with an honest-but-noisy
	// regression flattens that ordering. Zero means 3.
	DEtaWidenRatio float64
	// DisableBkgNN and DisableDEtaNN turn off one of the bundle's networks
	// while keeping the other, for ablation studies.
	DisableBkgNN, DisableDEtaNN bool
	// Workers caps parallelism for every stage of the run — reconstruction,
	// the localization grid search, feature extraction, and sharded NN
	// inference. 0 means the process default (par.DefaultWorkers); 1 forces
	// the serial path. Results are bitwise-identical for any value.
	Workers int
	// Metrics, when non-nil, receives the per-stage latency histograms
	// (StageNames) and run counters of every Run call — the Tables I/II
	// decomposition as a live report. A nil registry costs nothing.
	Metrics *obs.Registry
}

// DefaultOptions returns the production configuration.
func DefaultOptions() Options {
	return Options{
		Recon:       recon.DefaultConfig(),
		Loc:         localize.DefaultConfig(),
		MaxNNIters:  5,
		ConvergeDeg: 0.5,
		DEtaFloor:   0.003,
	}
}

// Timing is the per-stage elapsed time of one run, decomposed exactly as in
// the paper's Tables I and II. BkgNN and ApproxRefine accumulate over the
// iterations of the NN loop.
type Timing struct {
	Reconstruction time.Duration
	Setup          time.Duration
	DEtaNN         time.Duration
	BkgNN          time.Duration
	ApproxRefine   time.Duration
	Total          time.Duration
}

// Stage-metric names recorded into Options.Metrics, one histogram per
// Timing field.
const (
	StageReconstruction = "reconstruction"
	StageSetup          = "setup"
	StageBkgNN          = "bkg_nn"
	StageDEtaNN         = "deta_nn"
	StageApproxRefine   = "approx_refine"
	StageTotal          = "total"
)

// StageNames lists the pipeline stage metrics in pipeline (Tables I/II)
// order. Run pre-registers them so reports read top-to-bottom in this
// order regardless of which stages a particular run exercised.
var StageNames = []string{
	StageReconstruction, StageSetup, StageBkgNN, StageDEtaNN,
	StageApproxRefine, StageTotal,
}

// record publishes one run's Timing into a metrics registry. The NN-loop
// stages accumulate across iterations within a run, matching the paper's
// tables, so each histogram receives exactly one sample per Run call.
func (t *Timing) record(m *obs.Registry) {
	if m == nil {
		return
	}
	m.ObserveStage(StageReconstruction, t.Reconstruction)
	m.ObserveStage(StageSetup, t.Setup)
	m.ObserveStage(StageBkgNN, t.BkgNN)
	m.ObserveStage(StageDEtaNN, t.DEtaNN)
	m.ObserveStage(StageApproxRefine, t.ApproxRefine)
	m.ObserveStage(StageTotal, t.Total)
}

// Result reports one pipeline run.
type Result struct {
	// Loc is the final localization (Loc.OK false when no usable rings).
	Loc localize.Result
	// Rings is the number reconstructed; Kept the number surviving the
	// background filter.
	Rings, Kept int
	// RingsFirstBkg is the ring count entering the first background-network
	// pass (the paper's FPGA workload statistic: 597 on average).
	RingsFirstBkg int
	// NNIterations is how many localize↔classify iterations ran.
	NNIterations int
	// FlaggedGRB and FlaggedBkg count rings removed by the final background
	// filter, split by ground truth (evaluation diagnostics; the flight
	// pipeline never sees these).
	FlaggedGRB, FlaggedBkg int
	// ErrorRadiusDeg is the pipeline's own 1σ uncertainty estimate for the
	// final direction (Fisher information of the surviving rings) — the
	// figure a flight system downlinks, since it has no ground truth.
	ErrorRadiusDeg float64
	// ActiveRings are the rings the final localization used (background
	// filter survivors, with dEta-updated widths). Downstream products —
	// posterior sky maps, credible regions — should be built from these,
	// not from the raw reconstruction.
	ActiveRings []*recon.Ring
	// Trace records one entry per NN-loop iteration (ML runs only).
	Trace []IterationRecord
	// Timing is the stage decomposition of this run.
	Timing Timing
}

// IterationRecord captures one localize↔classify iteration for analysis.
type IterationRecord struct {
	// PolarDeg is the polar-angle guess fed to the classifier.
	PolarDeg float64
	// Flagged is how many rings the classifier rejected this iteration.
	Flagged int
	// MovedDeg is how far the direction estimate moved.
	MovedDeg float64
}

// Run executes the pipeline over one exposure's events. Every stage runs
// on one bounded worker pool (Options.Workers); the result is bitwise
// deterministic in (opts, events, rng seed) for any worker count.
func Run(opts Options, events []*detector.Event, rng *xrand.RNG) Result {
	start := time.Now()
	var res Result

	pool := par.NewPool(opts.Workers)
	// The localization solver inherits the run's parallelism bound unless
	// the caller pinned its own.
	locCfg := opts.Loc
	if locCfg.Workers == 0 {
		locCfg.Workers = pool.Workers()
	}

	m := opts.Metrics
	if m != nil {
		for _, s := range StageNames {
			m.Stage(s) // pre-register so reports keep pipeline order
		}
	}
	defer func() {
		res.Timing.record(m)
		m.Counter("runs").Inc()
		m.Counter("events").Add(int64(len(events)))
		m.Counter("rings_reconstructed").Add(int64(res.Rings))
		m.Counter("rings_kept").Add(int64(res.Kept))
		m.Counter("nn_iterations").Add(int64(res.NNIterations))
	}()

	// ---- Stage: reconstruction (parallel over events) ----
	t0 := time.Now()
	rings := reconstructAll(&opts, events, pool)
	res.Timing.Reconstruction = time.Since(t0)
	res.Rings = len(rings)

	// ---- Stage: localization setup ----
	t0 = time.Now()
	if opts.OracleBackground {
		kept := rings[:0]
		for _, r := range rings {
			if !r.Background {
				kept = append(kept, r)
			}
		}
		rings = kept
	}
	if opts.OracleDEta {
		for _, r := range rings {
			d := r.EtaError()
			if d < opts.DEtaFloor {
				d = opts.DEtaFloor
			}
			r.DEta = d
		}
	}
	flagged := make([]bool, len(rings)) // true = classified background
	active := make([]*recon.Ring, 0, len(rings))
	res.Timing.Setup = time.Since(t0)

	if len(rings) == 0 {
		res.Timing.Total = time.Since(start)
		return res
	}

	// ---- Initial localization (approx + refine) ----
	t0 = time.Now()
	loc := localize.Localize(&locCfg, rings, rng)
	res.Timing.ApproxRefine += time.Since(t0)
	if !loc.OK {
		res.Timing.Total = time.Since(start)
		return res
	}

	// ---- Iterative background rejection (Fig. 6) ----
	if opts.Bundle != nil {
		cls := opts.BkgOverride
		if cls == nil {
			var err error
			cls, err = NewClassifier(opts.Backend, opts.Bundle)
			if err != nil {
				panic("pipeline: " + err.Error())
			}
		}
		res.RingsFirstBkg = len(rings)
		prev := loc.Dir
		maxIters := opts.MaxNNIters
		if opts.DisableBkgNN {
			maxIters = 0
			active = append(active[:0], rings...)
		}
		for it := 0; it < maxIters; it++ {
			res.NNIterations = it + 1

			t0 = time.Now()
			polar := polarDeg(prev)
			x := features.MatrixWith(pool, rings, polar, opts.Bundle.WithPolar)
			opts.Bundle.BkgNorm.ApplyWith(pool, x)
			probs := parallelProbs(cls, x, pool)
			thr := opts.Bundle.Thr.For(polar)
			res.FlaggedGRB, res.FlaggedBkg = 0, 0
			for i := range rings {
				flagged[i] = probs[i] > thr
				if flagged[i] {
					if rings[i].Background {
						res.FlaggedBkg++
					} else {
						res.FlaggedGRB++
					}
				}
			}
			res.Timing.BkgNN += time.Since(t0)

			active = active[:0]
			for i, r := range rings {
				if !flagged[i] {
					active = append(active, r)
				}
			}
			if len(active) < locCfg.MinRings {
				break // classifier rejected nearly everything; keep prev
			}

			// Re-localize on the filtered set two ways: refine from the
			// previous estimate, and run a fresh approximation pass. The
			// fresh pass lets the solver escape a background-induced
			// likelihood mode once the classifier has thinned the
			// background out — the reason the paper iterates rather than
			// applying the model once — while the likelihood comparison
			// keeps a jumpy re-approximation from discarding a good mode.
			t0 = time.Now()
			refined := localize.Refine(&locCfg, active, prev)
			fresh := localize.Localize(&locCfg, active, rng)
			next := refined
			if fresh.OK && (!refined.OK ||
				localize.LogLikelihood(&locCfg, active, fresh.Dir) >
					localize.LogLikelihood(&locCfg, active, refined.Dir)) {
				next = fresh
			}
			res.Timing.ApproxRefine += time.Since(t0)
			if !next.OK {
				break
			}
			loc = next
			moved := loc.ErrorDeg(prev)
			prev = loc.Dir
			nFlagged := 0
			for _, f := range flagged {
				if f {
					nFlagged++
				}
			}
			res.Trace = append(res.Trace, IterationRecord{
				PolarDeg: polarDeg(prev), Flagged: nFlagged, MovedDeg: moved,
			})
			if moved < opts.ConvergeDeg {
				break
			}
		}

		// ---- dEta network rewrites surviving ring widths ----
		t0 = time.Now()
		if len(active) > 0 && !opts.DisableDEtaNN {
			ApplyDEtaWith(pool, opts.Bundle, active, polarDeg(prev), opts.DEtaFloor, opts.DEtaWidenRatio)
		}
		res.Timing.DEtaNN = time.Since(t0)

		// ---- Final localization seeded at the last estimate ----
		t0 = time.Now()
		if len(active) >= locCfg.MinRings {
			if final := localize.Refine(&locCfg, active, prev); final.OK {
				loc = final
			}
			res.Kept = len(active)
		} else {
			res.Kept = len(rings)
		}
		res.Timing.ApproxRefine += time.Since(t0)
	} else {
		res.Kept = len(rings)
	}

	res.Loc = loc
	res.ActiveRings = rings
	if opts.Bundle != nil && len(active) >= locCfg.MinRings {
		res.ActiveRings = active
	}
	if loc.OK {
		res.ErrorRadiusDeg = localize.ErrorRadiusDeg(&locCfg, res.ActiveRings, loc.Dir)
	}
	res.Timing.Total = time.Since(start)
	return res
}

// RunWindow executes the pipeline over the events whose arrival times fall
// in [t0, t1) — the entry point the streaming trigger uses to hand a burst
// window to localization without materializing a filtered copy per caller.
// Events need not be sorted; relative order within the window is preserved,
// so a given (opts, events, t0, t1, rng) is exactly as deterministic as Run.
func RunWindow(opts Options, events []*detector.Event, t0, t1 float64, rng *xrand.RNG) Result {
	window := make([]*detector.Event, 0, len(events))
	for _, ev := range events {
		if ev.ArrivalTime >= t0 && ev.ArrivalTime < t1 {
			window = append(window, ev)
		}
	}
	return Run(opts, window, rng)
}

// minShardRows is the smallest inference batch worth sharding: below it,
// goroutine handoff costs more than the matmul it saves.
const minShardRows = 64

// reconstructAll runs event reconstruction on the worker pool. Each event's
// ring lands in its fixed slot, then survivors are compacted in event
// order, so the ring list is identical for any worker count.
func reconstructAll(opts *Options, events []*detector.Event, p *par.Pool) []*recon.Ring {
	out := make([]*recon.Ring, len(events))
	p.ForRange(context.Background(), len(events), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if r, ok := recon.Reconstruct(&opts.Recon, events[i]); ok {
				out[i] = r
			}
		}
	})
	rings := make([]*recon.Ring, 0, len(events)/4)
	for _, r := range out {
		if r != nil {
			rings = append(rings, r)
		}
	}
	return rings
}

// parallelProbs shards classifier inference over row ranges of the feature
// matrix, writing each shard's probabilities into its fixed slice of the
// result. Classifiers implementing the probsInto fast path skip the
// per-shard allocation.
func parallelProbs(cls BkgClassifier, x *nn.Tensor, p *par.Pool) []float32 {
	out := make([]float32, x.Rows)
	if p.Workers() <= 1 || x.Rows < minShardRows {
		ClassifierProbsInto(cls, x, out)
		return out
	}
	p.ForRange(context.Background(), x.Rows, func(_, lo, hi int) {
		ClassifierProbsInto(cls, x.SliceRows(lo, hi), out[lo:hi])
	})
	return out
}

// parallelPredict1 shards single-output regression inference over row
// ranges, returning one prediction per row of x.
func parallelPredict1(net *nn.Sequential, x *nn.Tensor, p *par.Pool) []float32 {
	out := make([]float32, x.Rows)
	if p.Workers() <= 1 || x.Rows < minShardRows {
		pred := net.Predict(x)
		if pred.Cols != 1 {
			panic("pipeline: parallelPredict1 requires a single-output network")
		}
		copy(out, pred.Data)
		return out
	}
	p.ForRange(context.Background(), x.Rows, func(_, lo, hi int) {
		pred := net.Predict(x.SliceRows(lo, hi))
		if pred.Cols != 1 {
			panic("pipeline: parallelPredict1 requires a single-output network")
		}
		copy(out[lo:hi], pred.Data)
	})
	return out
}

// polarDeg returns the polar angle of a direction in degrees.
func polarDeg(v geom.Vec) float64 { return geom.Deg(geom.Polar(v)) }

// expf32 is exp on float32 via the float64 implementation.
func expf32(x float32) float32 { return float32(math.Exp(float64(x))) }

// ApplyDEta rewrites ring widths in place using the bundle's dEta network
// with the pipeline's widening-only policy (see Options.DEtaWidenRatio):
// the analytic dη is globally underconfident by a roughly uniform factor
// (the unmodeled-noise premise of §II-B), so the per-ring ratio NN/analytic
// is first normalized by its run median; a ring is widened only when the
// network singles it out as far more wrong than its peers — the
// misordered/energy-lossy rings whose false certainty "can lead our
// likelihood model astray". polarGuess is the current source polar angle
// estimate in degrees; floor bounds the widths from below (≤0 for the
// default); widenRatio ≤ 0 means the default 3.
func ApplyDEta(bundle *models.Bundle, rings []*recon.Ring, polarGuess, floor, widenRatio float64) {
	ApplyDEtaWith(nil, bundle, rings, polarGuess, floor, widenRatio)
}

// ApplyDEtaWith is ApplyDEta with inference sharded over the given worker
// pool (nil means the process-default pool).
func ApplyDEtaWith(p *par.Pool, bundle *models.Bundle, rings []*recon.Ring, polarGuess, floor, widenRatio float64) {
	if len(rings) == 0 {
		return
	}
	if floor <= 0 {
		floor = DefaultOptions().DEtaFloor
	}
	if widenRatio <= 0 {
		widenRatio = 3
	}
	nnWidth, med := dEtaPredictions(p, bundle, rings, polarGuess)
	for i, r := range rings {
		if nnWidth[i] > widenRatio*med*r.DEta {
			r.DEta = nnWidth[i]
		}
		if r.DEta < floor {
			r.DEta = floor
		}
	}
}

// ApplyDEtaCalibrated rewrites ring widths to *honest* values: every ring's
// analytic dη is scaled by the network's median correction factor (fixing
// the global underconfidence the analytic model shares across rings) and
// outliers are widened to their individual predictions. Use this when the
// widths feed an uncertainty product (credible regions, error radii) rather
// than the point-estimate's relative weighting, where ApplyDEta's
// widening-only policy preserves accuracy better.
func ApplyDEtaCalibrated(bundle *models.Bundle, rings []*recon.Ring, polarGuess float64) {
	if len(rings) == 0 {
		return
	}
	floor := DefaultOptions().DEtaFloor
	nnWidth, med := dEtaPredictions(nil, bundle, rings, polarGuess)
	for i, r := range rings {
		d := med * r.DEta
		if nnWidth[i] > d {
			d = nnWidth[i]
		}
		if d < floor {
			d = floor
		}
		r.DEta = d
	}
}

// BackgroundProbs evaluates the bundle's background classifier on rings at
// the given polar-angle guess, returning one probability per ring. Used by
// sky-map products that weight rings by their background likelihood.
// Inference is sharded over the process-default worker pool.
func BackgroundProbs(bundle *models.Bundle, rings []*recon.Ring, polarGuess float64) []float64 {
	pool := par.NewPool(0)
	x := features.MatrixWith(pool, rings, polarGuess, bundle.WithPolar)
	bundle.BkgNorm.ApplyWith(pool, x)
	probs := parallelProbs(FP32Classifier{Net: bundle.Bkg}, x, pool)
	out := make([]float64, len(probs))
	for i, p := range probs {
		out[i] = float64(p)
	}
	return out
}

// dEtaPredictions returns the network's per-ring width predictions and the
// median prediction/analytic ratio (≥1), with feature extraction and
// inference sharded over p (nil means the process-default pool).
func dEtaPredictions(p *par.Pool, bundle *models.Bundle, rings []*recon.Ring, polarGuess float64) ([]float64, float64) {
	x := features.MatrixWith(p, rings, polarGuess, bundle.WithPolar)
	bundle.DEtaNorm.ApplyWith(p, x)
	pred := parallelPredict1(bundle.DEta, x, p)
	scale := bundle.DEtaScale
	if scale <= 0 {
		scale = 1
	}
	ratios := make([]float64, len(rings))
	nnWidth := make([]float64, len(rings))
	for i, r := range rings {
		nnWidth[i] = scale * float64(expf32(pred[i]))
		ratios[i] = nnWidth[i] / r.DEta
	}
	med := medianOf(ratios)
	if med < 1 {
		med = 1
	}
	return nnWidth, med
}

// medianOf returns the median of xs without modifying it.
func medianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
