package pipeline

import (
	"fmt"
	"testing"

	"repro/internal/fpga"
	"repro/internal/nn"
	"repro/internal/nn/quant"
	"repro/internal/xrand"
)

// benchClassifiers builds the three backends over one background-net-shaped
// network (13→256→128→64→1, the paper's architecture) so their per-batch
// inference cost is directly comparable. The FP32 classifier wraps the
// unfused original; the integer backends share one converted Int8Net.
func benchClassifiers(b *testing.B) (map[string]BkgClassifier, *nn.Tensor) {
	b.Helper()
	rng := xrand.New(41)
	net := nn.NewSequential(
		nn.NewLinear(13, 256, rng), nn.NewBatchNorm1D(256), nn.NewReLU(),
		nn.NewLinear(256, 128, rng), nn.NewBatchNorm1D(128), nn.NewReLU(),
		nn.NewLinear(128, 64, rng), nn.NewBatchNorm1D(64), nn.NewReLU(),
		nn.NewLinear(64, 1, rng),
	)
	fused, err := quant.FuseForQuant(net)
	if err != nil {
		b.Fatal(err)
	}
	x := nn.NewTensor(512, 13)
	for i := range x.Data {
		x.Data[i] = float32(rng.Gaussian(0, 1))
	}
	for _, l := range fused.Layers {
		l.(*quant.QATLinear).Enabled = false
	}
	warm := &nn.Trainer{Net: fused, Loss: nn.BCEWithLogits{}, Opt: nn.NewSGD(0, 0), BatchSize: 128, MaxEpochs: 1, Patience: 5}
	warm.Fit(&nn.Dataset{X: x, Y: make([]float32, x.Rows)}, nil, rng)
	int8net, err := quant.Convert(fused)
	if err != nil {
		b.Fatal(err)
	}
	return map[string]BkgClassifier{
		string(BackendFloat32): FP32Classifier{Net: net},
		string(BackendInt8):    int8net,
		string(BackendFPGASim): fpga.NewKernel(int8net, fpga.DefaultDevice()),
	}, x
}

// BenchmarkBackendBatch measures backend-generic inference per batch size —
// the numbers behind the EXPERIMENTS.md backend table. The int8 GEMM
// amortizes its input-quantization pass and requantization setup across
// rows, so it should overtake float32 from batch 8 up.
func BenchmarkBackendBatch(b *testing.B) {
	classifiers, x := benchClassifiers(b)
	for _, batch := range []int{1, 8, 64, 512} {
		xb := nn.NewTensor(batch, x.Cols)
		copy(xb.Data, x.Data[:batch*x.Cols])
		out := make([]float32, batch)
		for _, name := range []string{"float32", "int8", "fpga-sim"} {
			cls := classifiers[name]
			b.Run(fmt.Sprintf("backend=%s/batch=%d", name, batch), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ClassifierProbsInto(cls, xb, out)
				}
			})
		}
	}
}
