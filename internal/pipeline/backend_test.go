package pipeline

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/fpga"
	"repro/internal/models"
	"repro/internal/xrand"
)

// quantBundle extends tinyBundle with a PTQ-quantized background net,
// trained once for the package's backend tests.
var quantBundle = func() func(t *testing.T) *models.Bundle {
	var b *models.Bundle
	return func(t *testing.T) *models.Bundle {
		t.Helper()
		if b != nil {
			return b
		}
		cfg := datagen.DefaultConfig(31)
		cfg.BurstsPerAngle = 1
		cfg.PolarAnglesDeg = []float64{0, 40, 80}
		set := datagen.Generate(cfg)
		opts := models.DefaultTrainOptions(32)
		opts.MaxEpochs = 4
		opts.BkgLR = 5e-3
		opts.BkgBatch = 512
		opts.Swapped = true
		b = models.Train(set, opts)
		qopts := models.DefaultQuantizeOptions(33)
		qopts.Mode = models.ModePTQ
		int8net, _, err := models.QuantizeBackground(b, set, qopts)
		if err != nil {
			t.Fatal(err)
		}
		b.Int8 = int8net
		return b
	}
}()

func TestParseBackend(t *testing.T) {
	cases := map[string]Backend{
		"": BackendFloat32, "float32": BackendFloat32,
		"int8": BackendInt8, "fpga-sim": BackendFPGASim,
	}
	for in, want := range cases {
		got, err := ParseBackend(in)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseBackend("fp16"); err == nil {
		t.Error("ParseBackend accepted an unknown backend")
	}
	if len(Backends) != 3 {
		t.Errorf("Backends lists %d names, want 3", len(Backends))
	}
}

func TestNewClassifier(t *testing.T) {
	if cls, err := NewClassifier(BackendInt8, nil); cls != nil || err != nil {
		t.Errorf("nil bundle: got %v, %v; want nil, nil", cls, err)
	}
	b := quantBundle(t)
	if cls, err := NewClassifier(BackendFloat32, b); err != nil {
		t.Error(err)
	} else if fp, ok := cls.(FP32Classifier); !ok || fp.Net != b.Bkg {
		t.Errorf("float32 classifier = %T", cls)
	}
	if cls, err := NewClassifier(BackendInt8, b); err != nil {
		t.Error(err)
	} else if cls != b.Int8 {
		t.Errorf("int8 classifier = %T", cls)
	}
	if cls, err := NewClassifier(BackendFPGASim, b); err != nil {
		t.Error(err)
	} else if k, ok := cls.(*fpga.Kernel); !ok || k.Net() != b.Int8 {
		t.Errorf("fpga-sim classifier = %T", cls)
	}

	// Integer backends demand a quantized bundle.
	plain := *b
	plain.Int8 = nil
	for _, bk := range []Backend{BackendInt8, BackendFPGASim} {
		if _, err := NewClassifier(bk, &plain); err == nil {
			t.Errorf("backend %s accepted an unquantized bundle", bk)
		}
	}
	if _, err := NewClassifier("fp16", b); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestRunBackendResolution: Options.Backend must route inference exactly
// like injecting the same classifier via BkgOverride.
func TestRunBackendResolution(t *testing.T) {
	if testing.Short() {
		t.Skip("trains networks")
	}
	b := quantBundle(t)
	events, _ := simulateExposure(1.5, 40, 5)

	run := func(backend Backend, override BkgClassifier) Result {
		opts := DefaultOptions()
		opts.Bundle = b
		opts.Backend = backend
		opts.BkgOverride = override
		return Run(opts, events, xrand.New(6))
	}

	viaBackend := run(BackendInt8, nil)
	viaOverride := run("", b.Int8)
	if viaBackend.Loc.Dir != viaOverride.Loc.Dir || viaBackend.Kept != viaOverride.Kept {
		t.Error("Backend=int8 differs from BkgOverride=Int8Net")
	}

	// fpga-sim is numerically identical to int8 and charges its ledger.
	kernel, err := NewClassifier(BackendFPGASim, b)
	if err != nil {
		t.Fatal(err)
	}
	viaFPGA := run("", kernel)
	if viaFPGA.Loc.Dir != viaBackend.Loc.Dir || viaFPGA.Kept != viaBackend.Kept {
		t.Error("fpga-sim localization differs from int8")
	}
	if kernel.(*fpga.Kernel).SimInputs() == 0 {
		t.Error("fpga kernel ledger not charged by the pipeline")
	}
}

// TestRunInt8DeterministicAcrossWorkers: the integer backend's pipeline
// results are bitwise-identical at any worker count.
func TestRunInt8DeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("trains networks")
	}
	b := quantBundle(t)
	events, _ := simulateExposure(1.5, 40, 7)
	var ref Result
	for i, workers := range []int{1, 2, 4, 7} {
		opts := DefaultOptions()
		opts.Bundle = b
		opts.Backend = BackendInt8
		opts.Workers = workers
		res := Run(opts, events, xrand.New(8))
		if i == 0 {
			ref = res
			continue
		}
		if res.Loc.Dir != ref.Loc.Dir || res.Kept != ref.Kept || res.NNIterations != ref.NNIterations {
			t.Errorf("workers=%d: int8 pipeline result differs from serial", workers)
		}
	}
}

func TestRunPanicsOnUnquantizedInt8(t *testing.T) {
	b := quantBundle(t)
	plain := *b
	plain.Int8 = nil
	opts := DefaultOptions()
	opts.Bundle = &plain
	opts.Backend = BackendInt8
	events, _ := simulateExposure(1.5, 40, 9)
	defer func() {
		if recover() == nil {
			t.Error("Run with int8 backend and unquantized bundle did not panic")
		}
	}()
	Run(opts, events, xrand.New(9))
}
