// Package core implements the on-board GRB analysis system that the rest of
// the library plugs into: burst *detection* via a count-rate trigger over
// the event stream, exposure windowing, and orchestration of the Fig. 6
// localization pipeline on each triggered window.
//
// The paper's pipeline (internal/pipeline) answers "where is the burst,
// given a 1-second window of events?"; this package answers the question
// upstream of it — "is there a burst, and which events belong to it?" —
// which APT/ADAPT must also decide autonomously in flight (§I: "promptly
// detect energetic transient events ... and rapidly communicate these
// events ... for follow-up observation").
package core

import (
	"math"
	"sort"

	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/localize"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/recon"
	"repro/internal/sky"
	"repro/internal/skymap"
	"repro/internal/xrand"
)

// Trigger is a sliding-window count-rate burst trigger: it fires when the
// event count in a WindowSec-wide window exceeds the background expectation
// by SigmaThreshold Poisson standard deviations.
type Trigger struct {
	// WindowSec is the sliding-window width in seconds.
	WindowSec float64
	// SigmaThreshold is the significance required to fire.
	SigmaThreshold float64
	// MeanRate is the expected background event rate in events/second
	// (calibrated in flight from quiet periods; here supplied directly).
	MeanRate float64
}

// DefaultTrigger returns a trigger tuned for the default background model:
// 100 ms window, 8σ. At 8σ on a Poisson window of O(1000) counts the
// false-alarm probability per window is negligible over a balloon flight.
func DefaultTrigger(meanRate float64) Trigger {
	return Trigger{WindowSec: 0.1, SigmaThreshold: 8, MeanRate: meanRate}
}

// Scan slides the window over the sorted arrival times and returns the
// start time of the first window whose count exceeds the threshold, after
// skip (seconds). ok is false if nothing fires.
func (tr Trigger) Scan(times []float64, skip float64) (trigTime float64, ok bool) {
	if tr.WindowSec <= 0 {
		return 0, false
	}
	expect := tr.MeanRate * tr.WindowSec
	threshold := expect + tr.SigmaThreshold*math.Sqrt(math.Max(expect, 1))
	lo := sort.SearchFloat64s(times, skip)
	hi := lo
	for ; lo < len(times); lo++ {
		t0 := times[lo]
		if hi < lo {
			hi = lo
		}
		for hi < len(times) && times[hi] < t0+tr.WindowSec {
			hi++
		}
		if float64(hi-lo) > threshold {
			return t0, true
		}
	}
	return 0, false
}

// Significance returns the Poisson significance of count events in one
// window: (count − expectation)/√expectation.
func (tr Trigger) Significance(count int) float64 {
	expect := tr.MeanRate * tr.WindowSec
	return (float64(count) - expect) / math.Sqrt(math.Max(expect, 1))
}

// Config assembles the full on-board system.
type Config struct {
	Recon recon.Config
	Loc   localize.Config
	// Bundle supplies the networks; nil runs the no-ML pipeline.
	Bundle *models.Bundle
	// Backend selects the background-classifier inference implementation
	// (see pipeline.Backend); "" means float32.
	Backend pipeline.Backend
	// MaxNNIters bounds the ML loop (paper: 5).
	MaxNNIters int
	// Trigger detects bursts in the event stream.
	Trigger Trigger
	// BurstWindowSec is how much data after the trigger is handed to
	// localization (the paper evaluates 1-second exposures).
	BurstWindowSec float64
	// PreTriggerSec includes data just before the trigger time (the rising
	// edge of the light curve).
	PreTriggerSec float64
	// SkyMapBands, when positive, attaches a posterior sky map of that
	// resolution to each alert (credible areas for the downlink notice).
	// Zero disables map generation.
	SkyMapBands int
	// SkyMapTemperature is the empirical systematic inflation applied to
	// alert maps (see expt.CoverageStudy for how it is fitted); ≤1 means
	// the statistical-only map.
	SkyMapTemperature float64
	// SkyMapPayload, when true, attaches the downlink-grade quantized map
	// payload (internal/skymap) to every successfully localized alert,
	// independently of SkyMapBands.
	SkyMapPayload bool
	// SkyMapPayloadOpts configures the payload builder; the zero value
	// means the skymap defaults (8 coarse bands, 4× refinement, tempered
	// at the fitted skymap.DefaultTemperature).
	SkyMapPayloadOpts skymap.Options
	// Workers caps pipeline parallelism per localized burst (0 = process
	// default, 1 = serial). Campaign drivers that fan out whole trials set
	// 1 here so the two levels of parallelism don't multiply.
	Workers int
	// Metrics, when non-nil, receives the pipeline's per-stage latency
	// histograms and counters for every localized burst.
	Metrics *obs.Registry
}

// DefaultConfig returns the flight configuration for a given background
// event rate.
func DefaultConfig(meanBackgroundRate float64) Config {
	return Config{
		Recon:          recon.DefaultConfig(),
		Loc:            localize.DefaultConfig(),
		MaxNNIters:     5,
		Trigger:        DefaultTrigger(meanBackgroundRate),
		BurstWindowSec: 1.0,
		PreTriggerSec:  0.05,
	}
}

// Alert is one detected-and-localized burst.
type Alert struct {
	// TriggerTime is when the rate trigger fired (seconds into the
	// exposure).
	TriggerTime float64
	// Significance of the triggering window.
	Significance float64
	// NEvents is the number of events handed to localization.
	NEvents int
	// Result is the pipeline outcome for the burst window.
	Result pipeline.Result
	// SkyMap is the posterior map for the downlink notice (nil unless
	// Config.SkyMapBands > 0 and localization succeeded).
	SkyMap *sky.Map
	// SkyMapPayload is the encoded downlink map (internal/skymap format;
	// nil unless Config.SkyMapPayload and localization succeeded). It is a
	// pure function of the localized rings, bitwise-identical at any
	// worker count.
	SkyMapPayload []byte
	// Area90Deg2 is the 90% credible area in square degrees (0 when no
	// map was built) — the headline number of a localization notice.
	Area90Deg2 float64
}

// System runs burst detection and localization over event streams.
type System struct {
	cfg Config
}

// NewSystem validates and builds a System.
func NewSystem(cfg Config) *System {
	if cfg.BurstWindowSec <= 0 {
		cfg.BurstWindowSec = 1.0
	}
	if cfg.MaxNNIters <= 0 {
		cfg.MaxNNIters = 5
	}
	return &System{cfg: cfg}
}

// ProcessExposure scans a full exposure's events (any order; they are
// sorted by arrival time internally), triggers on rate excesses, and
// localizes each triggered burst window. Scanning resumes after each burst
// window, so well-separated bursts in one exposure produce separate alerts.
func (s *System) ProcessExposure(events []*detector.Event, rng *xrand.RNG) []Alert {
	sorted := append([]*detector.Event(nil), events...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ArrivalTime < sorted[j].ArrivalTime })
	times := make([]float64, len(sorted))
	for i, ev := range sorted {
		times[i] = ev.ArrivalTime
	}

	var alerts []Alert
	skip := 0.0
	for {
		trig, ok := s.cfg.Trigger.Scan(times, skip)
		if !ok {
			return alerts
		}
		lo := sort.SearchFloat64s(times, trig-s.cfg.PreTriggerSec)
		hi := sort.SearchFloat64s(times, trig+s.cfg.BurstWindowSec)
		window := sorted[lo:hi]

		opts := pipeline.DefaultOptions()
		opts.Recon = s.cfg.Recon
		opts.Loc = s.cfg.Loc
		opts.Bundle = s.cfg.Bundle
		opts.Backend = s.cfg.Backend
		opts.MaxNNIters = s.cfg.MaxNNIters
		opts.Workers = s.cfg.Workers
		opts.Metrics = s.cfg.Metrics
		res := pipeline.Run(opts, window, rng.Split(uint64(lo)+1))

		// Significance of the triggering window for the alert record.
		winHi := sort.SearchFloat64s(times, trig+s.cfg.Trigger.WindowSec)
		winLo := sort.SearchFloat64s(times, trig)
		alert := Alert{
			TriggerTime:  trig,
			Significance: s.cfg.Trigger.Significance(winHi - winLo),
			NEvents:      len(window),
			Result:       res,
		}
		if (s.cfg.SkyMapBands > 0 || s.cfg.SkyMapPayload) && res.Loc.OK {
			rings := res.ActiveRings
			var probs []float64
			if s.cfg.Bundle != nil {
				polar := geom.Deg(geom.Polar(res.Loc.Dir))
				pipeline.ApplyDEtaCalibrated(s.cfg.Bundle, rings, polar)
				probs = pipeline.BackgroundProbs(s.cfg.Bundle, rings, polar)
			}
			if s.cfg.SkyMapBands > 0 {
				var m *sky.Map
				if probs != nil {
					m = sky.MixtureLikelihood(&s.cfg.Loc, rings, probs, sky.NewGrid(s.cfg.SkyMapBands))
				} else {
					m = sky.Likelihood(&s.cfg.Loc, rings, sky.NewGrid(s.cfg.SkyMapBands))
				}
				if s.cfg.SkyMapTemperature > 1 {
					m = m.Tempered(s.cfg.SkyMapTemperature)
				}
				alert.SkyMap = m
				alert.Area90Deg2 = m.CredibleAreaDeg2(0.9)
			}
			if s.cfg.SkyMapPayload {
				opts := s.cfg.SkyMapPayloadOpts
				if opts.Workers == 0 {
					opts.Workers = s.cfg.Workers
				}
				pm := skymap.FromRings(&s.cfg.Loc, rings, probs, opts)
				alert.SkyMapPayload = pm.Encode()
				if alert.SkyMap == nil {
					alert.Area90Deg2 = float64(pm.Area90)
				}
			}
		}
		alerts = append(alerts, alert)
		skip = trig + s.cfg.BurstWindowSec
	}
}
