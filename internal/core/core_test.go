package core

import (
	"math"
	"testing"

	"repro/internal/background"
	"repro/internal/detector"
	"repro/internal/xrand"
)

// buildExposure simulates duration seconds of background with optional
// bursts injected at the given start times.
func buildExposure(duration float64, burstStarts []float64, fluence float64, rng *xrand.RNG) ([]*detector.Event, float64, detector.Burst) {
	det := detector.DefaultConfig()
	bg := background.DefaultModel()
	events := bg.Simulate(&det, duration, rng)
	meanRate := float64(len(events)) / duration

	burst := detector.Burst{Fluence: fluence, PolarDeg: 20, AzimuthDeg: 130}
	for _, t0 := range burstStarts {
		for _, ev := range detector.SimulateBurst(&det, burst, rng) {
			ev.ArrivalTime += t0
			events = append(events, ev)
		}
	}
	return events, meanRate, burst
}

func TestTriggerScan(t *testing.T) {
	tr := Trigger{WindowSec: 0.1, SigmaThreshold: 5, MeanRate: 100}
	// A quiet stream: uniform times at the mean rate.
	var times []float64
	for i := 0; i < 1000; i++ {
		times = append(times, float64(i)*0.01) // exactly 100/s
	}
	if _, ok := tr.Scan(times, 0); ok {
		t.Error("trigger fired on a quiet stream")
	}
	// Inject a spike: 60 extra events within 50 ms at t=5 (expect 10/window,
	// 5σ threshold ≈ 26).
	for i := 0; i < 60; i++ {
		times = append(times, 5+0.05*float64(i)/60)
	}
	sortFloats(times)
	trig, ok := tr.Scan(times, 0)
	if !ok {
		t.Fatal("trigger missed a 60-count spike")
	}
	if trig < 4.8 || trig > 5.1 {
		t.Errorf("trigger time %v, want ~5", trig)
	}
	// skip past the spike: quiet again.
	if _, ok := tr.Scan(times, 5.2); ok {
		t.Error("trigger re-fired after the spike")
	}
}

func TestSignificance(t *testing.T) {
	tr := Trigger{WindowSec: 1, SigmaThreshold: 5, MeanRate: 100}
	if got := tr.Significance(100); math.Abs(got) > 1e-12 {
		t.Errorf("significance at expectation = %v", got)
	}
	if got := tr.Significance(150); math.Abs(got-5) > 1e-12 {
		t.Errorf("significance of +5σ excess = %v", got)
	}
}

func TestProcessExposureDetectsAndLocalizes(t *testing.T) {
	rng := xrand.New(1)
	events, meanRate, burst := buildExposure(4.0, []float64{2.0}, 2.0, rng)
	sys := NewSystem(DefaultConfig(meanRate))
	alerts := sys.ProcessExposure(events, rng)
	if len(alerts) != 1 {
		t.Fatalf("%d alerts, want 1", len(alerts))
	}
	a := alerts[0]
	if a.TriggerTime < 1.9 || a.TriggerTime > 2.4 {
		t.Errorf("trigger time %v, want ~2.0", a.TriggerTime)
	}
	if a.Significance < 8 {
		t.Errorf("significance %v below threshold", a.Significance)
	}
	if !a.Result.Loc.OK {
		t.Fatal("alert without localization")
	}
	if err := a.Result.Loc.ErrorDeg(burst.SourceDirection()); err > 10 {
		t.Errorf("alert localization error %v°", err)
	}
}

func TestProcessExposureQuiet(t *testing.T) {
	rng := xrand.New(2)
	events, meanRate, _ := buildExposure(3.0, nil, 0, rng)
	sys := NewSystem(DefaultConfig(meanRate))
	if alerts := sys.ProcessExposure(events, rng); len(alerts) != 0 {
		t.Errorf("%d false alerts on background-only exposure", len(alerts))
	}
}

func TestProcessExposureTwoBursts(t *testing.T) {
	rng := xrand.New(3)
	events, meanRate, _ := buildExposure(8.0, []float64{1.5, 5.5}, 2.0, rng)
	sys := NewSystem(DefaultConfig(meanRate))
	alerts := sys.ProcessExposure(events, rng)
	if len(alerts) != 2 {
		t.Fatalf("%d alerts, want 2", len(alerts))
	}
	if alerts[1].TriggerTime < alerts[0].TriggerTime+1 {
		t.Error("second alert inside the first burst window")
	}
}

func TestNewSystemDefaults(t *testing.T) {
	sys := NewSystem(Config{Trigger: DefaultTrigger(100)})
	if sys.cfg.BurstWindowSec != 1.0 || sys.cfg.MaxNNIters != 5 {
		t.Error("zero-value config not defaulted")
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestAlertSkyMap(t *testing.T) {
	rng := xrand.New(5)
	events, meanRate, burst := buildExposure(3.0, []float64{1.5}, 2.0, rng)
	cfg := DefaultConfig(meanRate)
	cfg.SkyMapBands = 16
	cfg.SkyMapTemperature = 8
	sys := NewSystem(cfg)
	alerts := sys.ProcessExposure(events, rng)
	if len(alerts) != 1 {
		t.Fatalf("%d alerts", len(alerts))
	}
	a := alerts[0]
	if a.SkyMap == nil {
		t.Fatal("no sky map attached")
	}
	if a.Area90Deg2 <= 0 {
		t.Error("non-positive credible area")
	}
	if !a.SkyMap.Contains(burst.SourceDirection(), 0.99) {
		t.Error("99% credible region misses the truth on a bright burst")
	}
	// Without the option, no map.
	cfg.SkyMapBands = 0
	events2, _, _ := buildExposure(3.0, []float64{1.5}, 2.0, xrand.New(5))
	alerts2 := NewSystem(cfg).ProcessExposure(events2, xrand.New(5))
	if len(alerts2) == 1 && alerts2[0].SkyMap != nil {
		t.Error("map built despite SkyMapBands=0")
	}
}
