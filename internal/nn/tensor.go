// Package nn is a from-scratch float32 neural-network library sufficient to
// reproduce the paper's two models: multilayer feed-forward networks built
// from BatchNorm1D → Linear → ReLU blocks (paper Fig. 5), trained with SGD
// under binary cross-entropy or ℓ₂ loss, with mini-batches, early stopping,
// and gob serialization. It replaces the paper's PyTorch substrate.
//
// Everything is float32: that matches the paper's FP32 deployment baseline
// and makes the INT8 quantization study in nn/quant meaningful.
package nn

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major matrix of float32: Rows samples × Cols
// features. A Tensor with Rows == 1 doubles as a vector.
type Tensor struct {
	Rows, Cols int
	Data       []float32 // len == Rows*Cols, row-major
}

// NewTensor allocates a zeroed rows×cols tensor.
func NewTensor(rows, cols int) *Tensor {
	if rows < 0 || cols < 0 {
		panic("nn: negative tensor dims")
	}
	return &Tensor{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromRows builds a tensor from a slice of equal-length rows.
func FromRows(rows [][]float32) *Tensor {
	if len(rows) == 0 {
		return NewTensor(0, 0)
	}
	t := NewTensor(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != t.Cols {
			panic(fmt.Sprintf("nn: ragged rows: row %d has %d cols, want %d", i, len(r), t.Cols))
		}
		copy(t.Row(i), r)
	}
	return t
}

// Row returns a mutable view of row i.
func (t *Tensor) Row(i int) []float32 { return t.Data[i*t.Cols : (i+1)*t.Cols] }

// At returns element (r, c).
func (t *Tensor) At(r, c int) float32 { return t.Data[r*t.Cols+c] }

// Set assigns element (r, c).
func (t *Tensor) Set(r, c int, v float32) { t.Data[r*t.Cols+c] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := NewTensor(t.Rows, t.Cols)
	copy(out.Data, t.Data)
	return out
}

// SliceRows returns a view of rows [lo, hi) sharing t's backing array.
func (t *Tensor) SliceRows(lo, hi int) *Tensor {
	return &Tensor{Rows: hi - lo, Cols: t.Cols, Data: t.Data[lo*t.Cols : hi*t.Cols]}
}

// Gather copies the given rows of t into a new tensor, in order.
func (t *Tensor) Gather(idx []int) *Tensor {
	out := NewTensor(len(idx), t.Cols)
	for i, j := range idx {
		copy(out.Row(i), t.Row(j))
	}
	return out
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Sigmoid returns 1/(1+exp(-x)) computed in float64 internally for accuracy
// at large |x|.
func Sigmoid(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// Logit returns the inverse sigmoid ln(p/(1-p)); p must be in (0, 1).
// The quantized deployment uses it to move a probability threshold into the
// pre-sigmoid domain (paper §V: "because a sigmoid is a bijective function,
// a prior threshold can instead be applied").
func Logit(p float64) float64 { return math.Log(p / (1 - p)) }
