package nn

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Dataset pairs inputs with scalar targets.
type Dataset struct {
	X *Tensor
	Y []float32
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Rows }

// Check panics if X and Y disagree on length.
func (d *Dataset) Check() {
	if len(d.Y) != d.X.Rows {
		panic(fmt.Sprintf("nn: dataset has %d targets for %d rows", len(d.Y), d.X.Rows))
	}
}

// Split partitions the dataset into two parts with the first containing
// frac of the (shuffled) samples. Used for the paper's 80/20 splits.
func (d *Dataset) Split(frac float64, rng *xrand.RNG) (a, b *Dataset) {
	d.Check()
	perm := rng.Perm(d.Len())
	k := int(frac * float64(d.Len()))
	ai, bi := perm[:k], perm[k:]
	a = &Dataset{X: d.X.Gather(ai), Y: gather(d.Y, ai)}
	b = &Dataset{X: d.X.Gather(bi), Y: gather(d.Y, bi)}
	return a, b
}

func gather(y []float32, idx []int) []float32 {
	out := make([]float32, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}

// History records per-epoch training progress.
type History struct {
	TrainLoss []float64
	ValLoss   []float64
	// BestEpoch is the epoch (0-based) with the lowest validation loss;
	// the network holds that epoch's weights after Fit returns.
	BestEpoch int
	// Stopped reports whether early stopping triggered before MaxEpochs.
	Stopped bool
}

// Trainer runs mini-batch SGD with early stopping on validation loss,
// restoring the best weights afterwards (the paper trains "for up to 120
// epochs with early stopping if validation loss ceased to improve").
type Trainer struct {
	Net       *Sequential
	Loss      Loss
	Opt       Optimizer
	BatchSize int
	MaxEpochs int
	// Patience is how many epochs validation loss may fail to improve
	// before stopping. Zero means 10.
	Patience int
	// Schedule, when non-nil, scales the optimizer's learning rate each
	// epoch (the base rate is the optimizer's rate when Fit starts).
	Schedule Schedule
	// Logf, when non-nil, receives one line per epoch.
	Logf func(format string, args ...any)
}

// Fit trains the network and returns the history. val may be nil, in which
// case training loss drives early stopping.
func (t *Trainer) Fit(train, val *Dataset, rng *xrand.RNG) History {
	train.Check()
	if val != nil {
		val.Check()
	}
	patience := t.Patience
	if patience == 0 {
		patience = 10
	}
	bs := t.BatchSize
	if bs < 2 {
		bs = 32
	}

	var hist History
	best := math.Inf(1)
	bad := 0
	var bestState *State

	idx := make([]int, train.Len())
	for i := range idx {
		idx[i] = i
	}
	baseLR := t.Opt.LearningRate()

	for epoch := 0; epoch < t.MaxEpochs; epoch++ {
		if t.Schedule != nil {
			t.Opt.SetLearningRate(baseLR * t.Schedule.Factor(epoch))
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		var epochLoss float64
		var batches int
		for lo := 0; lo+2 <= train.Len(); lo += bs {
			hi := lo + bs
			if hi > train.Len() {
				hi = train.Len()
			}
			if hi-lo < 2 {
				break // BatchNorm needs at least 2 rows
			}
			bidx := idx[lo:hi]
			x := train.X.Gather(bidx)
			y := gather(train.Y, bidx)

			t.Net.ZeroGrad()
			pred := t.Net.Forward(x, true)
			dpred := NewTensor(pred.Rows, 1)
			epochLoss += t.Loss.Eval(pred, y, dpred)
			batches++
			t.Net.Backward(dpred)
			t.Opt.Step(t.Net.Params())
		}
		if batches > 0 {
			epochLoss /= float64(batches)
		}
		hist.TrainLoss = append(hist.TrainLoss, epochLoss)

		monitored := epochLoss
		if val != nil {
			monitored = t.Evaluate(val)
			hist.ValLoss = append(hist.ValLoss, monitored)
		}
		if t.Logf != nil {
			t.Logf("epoch %3d: train=%.5f val=%.5f", epoch, epochLoss, monitored)
		}
		if monitored < best-1e-9 {
			best = monitored
			hist.BestEpoch = epoch
			bad = 0
			st := t.Net.ExportState()
			bestState = &st
		} else {
			bad++
			if bad >= patience {
				hist.Stopped = true
				break
			}
		}
	}
	if bestState != nil {
		if err := t.Net.ImportState(*bestState); err != nil {
			panic(err) // same network; cannot mismatch
		}
	}
	return hist
}

// Evaluate returns the mean loss over a dataset in eval mode.
func (t *Trainer) Evaluate(d *Dataset) float64 {
	d.Check()
	pred := t.Net.Forward(d.X, false)
	dpred := NewTensor(pred.Rows, 1) // gradient discarded
	return t.Loss.Eval(pred, d.Y, dpred)
}
