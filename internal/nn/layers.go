package nn

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Param is one learnable parameter array with its gradient accumulator.
type Param struct {
	Name string
	W    []float32 // values
	G    []float32 // gradient of the loss w.r.t. W, same length
}

// Layer is one differentiable stage of a network. Forward must cache
// whatever Backward needs; Backward consumes the gradient w.r.t. the
// layer's output and returns the gradient w.r.t. its input, accumulating
// parameter gradients into Params().G.
type Layer interface {
	// Forward computes the layer output. train toggles training-time
	// behaviour (batch statistics, observer updates).
	Forward(x *Tensor, train bool) *Tensor
	// Backward propagates gradients; must be called after a training-mode
	// Forward with a dout of the same shape as that Forward's output.
	Backward(dout *Tensor) *Tensor
	// Params returns the learnable parameters (nil for stateless layers).
	Params() []*Param
	// String describes the layer for architecture dumps.
	String() string
}

// Linear is a fully-connected layer: y = x·Wᵀ + b, with W stored [Out][In]
// row-major.
type Linear struct {
	In, Out int
	Weight  *Param // len Out*In
	Bias    *Param // len Out

	x *Tensor // cached input
}

// NewLinear creates a fully-connected layer with Kaiming-uniform
// initialization (the PyTorch default for Linear feeding ReLU).
func NewLinear(in, out int, rng *xrand.RNG) *Linear {
	l := &Linear{
		In: in, Out: out,
		Weight: &Param{Name: fmt.Sprintf("linear%dx%d.weight", in, out), W: make([]float32, in*out), G: make([]float32, in*out)},
		Bias:   &Param{Name: fmt.Sprintf("linear%dx%d.bias", in, out), W: make([]float32, out), G: make([]float32, out)},
	}
	bound := float32(1 / math.Sqrt(float64(in)))
	for i := range l.Weight.W {
		l.Weight.W[i] = float32(rng.Uniform(-float64(bound), float64(bound)))
	}
	for i := range l.Bias.W {
		l.Bias.W[i] = float32(rng.Uniform(-float64(bound), float64(bound)))
	}
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x *Tensor, train bool) *Tensor {
	if x.Cols != l.In {
		panic(fmt.Sprintf("nn: Linear expects %d inputs, got %d", l.In, x.Cols))
	}
	if train {
		l.x = x
	}
	y := NewTensor(x.Rows, l.Out)
	w := l.Weight.W
	for r := 0; r < x.Rows; r++ {
		xr := x.Row(r)
		yr := y.Row(r)
		for o := 0; o < l.Out; o++ {
			yr[o] = dot(xr, w[o*l.In:(o+1)*l.In]) + l.Bias.W[o]
		}
	}
	return y
}

// dot computes Σ a[i]*b[i] with 4-way unrolling; a and b must have equal
// length. Four independent accumulators let the scalar pipeline overlap the
// multiply-add chains.
func dot(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a) &^ 3
	b = b[:len(a)] // eliminate bounds checks in the loop
	for i := 0; i < n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for i := n; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// axpy computes y[i] += k*x[i].
func axpy(k float32, x, y []float32) {
	y = y[:len(x)]
	n := len(x) &^ 3
	for i := 0; i < n; i += 4 {
		y[i] += k * x[i]
		y[i+1] += k * x[i+1]
		y[i+2] += k * x[i+2]
		y[i+3] += k * x[i+3]
	}
	for i := n; i < len(x); i++ {
		y[i] += k * x[i]
	}
}

// Backward implements Layer.
func (l *Linear) Backward(dout *Tensor) *Tensor {
	x := l.x
	if x == nil {
		panic("nn: Linear.Backward before training-mode Forward")
	}
	dx := NewTensor(x.Rows, l.In)
	w := l.Weight.W
	for r := 0; r < x.Rows; r++ {
		xr, dr, dxr := x.Row(r), dout.Row(r), dx.Row(r)
		for o := 0; o < l.Out; o++ {
			g := dr[o]
			if g == 0 {
				continue
			}
			axpy(g, xr, l.Weight.G[o*l.In:(o+1)*l.In])
			axpy(g, w[o*l.In:(o+1)*l.In], dxr)
			l.Bias.G[o] += g
		}
	}
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// String implements Layer.
func (l *Linear) String() string { return fmt.Sprintf("Linear(%d→%d)", l.In, l.Out) }

// BatchNorm1D normalizes each feature over the batch (training) or with
// running statistics (inference), then applies a learned affine transform.
type BatchNorm1D struct {
	Dim      int
	Gamma    *Param
	Beta     *Param
	RunMean  []float32
	RunVar   []float32
	Momentum float32
	Eps      float32

	// caches
	xhat   *Tensor
	invStd []float32
}

// NewBatchNorm1D creates a batch-norm layer over dim features.
func NewBatchNorm1D(dim int) *BatchNorm1D {
	b := &BatchNorm1D{
		Dim:      dim,
		Gamma:    &Param{Name: fmt.Sprintf("bn%d.gamma", dim), W: make([]float32, dim), G: make([]float32, dim)},
		Beta:     &Param{Name: fmt.Sprintf("bn%d.beta", dim), W: make([]float32, dim), G: make([]float32, dim)},
		RunMean:  make([]float32, dim),
		RunVar:   make([]float32, dim),
		Momentum: 0.1,
		Eps:      1e-5,
	}
	for i := range b.Gamma.W {
		b.Gamma.W[i] = 1
		b.RunVar[i] = 1
	}
	return b
}

// Forward implements Layer.
func (b *BatchNorm1D) Forward(x *Tensor, train bool) *Tensor {
	if x.Cols != b.Dim {
		panic(fmt.Sprintf("nn: BatchNorm1D expects %d features, got %d", b.Dim, x.Cols))
	}
	y := NewTensor(x.Rows, x.Cols)
	if !train {
		for c := 0; c < b.Dim; c++ {
			inv := float32(1 / math.Sqrt(float64(b.RunVar[c]+b.Eps)))
			g, bt, mu := b.Gamma.W[c], b.Beta.W[c], b.RunMean[c]
			for r := 0; r < x.Rows; r++ {
				y.Set(r, c, (x.At(r, c)-mu)*inv*g+bt)
			}
		}
		return y
	}
	if x.Rows < 2 {
		panic("nn: BatchNorm1D training batch must have >= 2 rows")
	}
	n := float32(x.Rows)
	b.xhat = NewTensor(x.Rows, x.Cols)
	if cap(b.invStd) < b.Dim {
		b.invStd = make([]float32, b.Dim)
	}
	b.invStd = b.invStd[:b.Dim]
	for c := 0; c < b.Dim; c++ {
		var mean float32
		for r := 0; r < x.Rows; r++ {
			mean += x.At(r, c)
		}
		mean /= n
		var v float32
		for r := 0; r < x.Rows; r++ {
			d := x.At(r, c) - mean
			v += d * d
		}
		v /= n // biased variance, as in PyTorch's normalization path
		inv := float32(1 / math.Sqrt(float64(v+b.Eps)))
		b.invStd[c] = inv
		for r := 0; r < x.Rows; r++ {
			xh := (x.At(r, c) - mean) * inv
			b.xhat.Set(r, c, xh)
			y.Set(r, c, xh*b.Gamma.W[c]+b.Beta.W[c])
		}
		// Running stats use the unbiased variance, matching PyTorch.
		unbiased := v * n / (n - 1)
		b.RunMean[c] = (1-b.Momentum)*b.RunMean[c] + b.Momentum*mean
		b.RunVar[c] = (1-b.Momentum)*b.RunVar[c] + b.Momentum*unbiased
	}
	return y
}

// Backward implements Layer.
func (b *BatchNorm1D) Backward(dout *Tensor) *Tensor {
	xh := b.xhat
	if xh == nil {
		panic("nn: BatchNorm1D.Backward before training-mode Forward")
	}
	n := float32(xh.Rows)
	dx := NewTensor(xh.Rows, xh.Cols)
	for c := 0; c < b.Dim; c++ {
		var sumD, sumDXh float32
		for r := 0; r < xh.Rows; r++ {
			d := dout.At(r, c)
			sumD += d
			sumDXh += d * xh.At(r, c)
		}
		b.Beta.G[c] += sumD
		b.Gamma.G[c] += sumDXh
		g := b.Gamma.W[c]
		inv := b.invStd[c]
		for r := 0; r < xh.Rows; r++ {
			d := dout.At(r, c)
			dx.Set(r, c, g*inv/n*(n*d-sumD-xh.At(r, c)*sumDXh))
		}
	}
	return dx
}

// Params implements Layer.
func (b *BatchNorm1D) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// String implements Layer.
func (b *BatchNorm1D) String() string { return fmt.Sprintf("BatchNorm1D(%d)", b.Dim) }

// NumBuffers implements BufferLayer.
func (b *BatchNorm1D) NumBuffers() int { return 2 }

// ExportBuffers implements BufferLayer: [RunMean, RunVar], the order the
// serializer has always used for batch-norm state.
func (b *BatchNorm1D) ExportBuffers() [][]float32 {
	return [][]float32{
		append([]float32(nil), b.RunMean...),
		append([]float32(nil), b.RunVar...),
	}
}

// ImportBuffers implements BufferLayer.
func (b *BatchNorm1D) ImportBuffers(bufs [][]float32) error {
	if len(bufs) != 2 {
		return fmt.Errorf("batch-norm expects 2 buffers, got %d", len(bufs))
	}
	if len(bufs[0]) != b.Dim || len(bufs[1]) != b.Dim {
		return fmt.Errorf("batch-norm buffer length mismatch: %d/%d vs dim %d", len(bufs[0]), len(bufs[1]), b.Dim)
	}
	copy(b.RunMean, bufs[0])
	copy(b.RunVar, bufs[1])
	return nil
}

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (a *ReLU) Forward(x *Tensor, train bool) *Tensor {
	y := NewTensor(x.Rows, x.Cols)
	if train {
		if cap(a.mask) < len(x.Data) {
			a.mask = make([]bool, len(x.Data))
		}
		a.mask = a.mask[:len(x.Data)]
	}
	for i, v := range x.Data {
		pos := v > 0
		if pos {
			y.Data[i] = v
		}
		if train {
			a.mask[i] = pos
		}
	}
	return y
}

// Backward implements Layer.
func (a *ReLU) Backward(dout *Tensor) *Tensor {
	dx := NewTensor(dout.Rows, dout.Cols)
	for i, d := range dout.Data {
		if a.mask[i] {
			dx.Data[i] = d
		}
	}
	return dx
}

// Params implements Layer.
func (a *ReLU) Params() []*Param { return nil }

// String implements Layer.
func (a *ReLU) String() string { return "ReLU" }
