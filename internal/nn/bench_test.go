package nn

import (
	"testing"

	"repro/internal/xrand"
)

// benchNet builds the paper's background-network shape.
func benchNet() *Sequential {
	rng := xrand.New(1)
	return NewSequential(
		NewBatchNorm1D(13), NewLinear(13, 256, rng), NewReLU(),
		NewBatchNorm1D(256), NewLinear(256, 128, rng), NewReLU(),
		NewBatchNorm1D(128), NewLinear(128, 64, rng), NewReLU(),
		NewBatchNorm1D(64), NewLinear(64, 1, rng),
	)
}

func BenchmarkForwardBatch597(b *testing.B) {
	// The paper's FPGA workload: one background-net pass over 597 rings.
	net := benchNet()
	x := randTensor(597, 13, xrand.New(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func BenchmarkForwardSingle(b *testing.B) {
	net := benchNet()
	x := randTensor(1, 13, xrand.New(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func BenchmarkTrainStep(b *testing.B) {
	net := benchNet()
	rng := xrand.New(4)
	x := randTensor(256, 13, rng)
	y := make([]float32, 256)
	for i := range y {
		if i%2 == 0 {
			y[i] = 1
		}
	}
	loss := BCEWithLogits{}
	opt := NewSGD(1e-3, 0.9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrad()
		pred := net.Forward(x, true)
		dpred := NewTensor(pred.Rows, 1)
		loss.Eval(pred, y, dpred)
		net.Backward(dpred)
		opt.Step(net.Params())
	}
}
