package nn

import (
	"fmt"
	"math"
)

// Loss computes a scalar training loss and the gradient of the mean loss
// w.r.t. the network output. pred is Rows×1; target has one value per row.
type Loss interface {
	// Eval returns the mean loss and fills dpred (same shape as pred) with
	// ∂(mean loss)/∂pred.
	Eval(pred *Tensor, target []float32, dpred *Tensor) float64
	// Name identifies the loss in logs.
	Name() string
}

// BCEWithLogits is binary cross-entropy on raw logits (numerically stable;
// the sigmoid is fused into the loss as in PyTorch's BCEWithLogitsLoss).
// Targets are 0 or 1. Used for the background network (paper §III).
type BCEWithLogits struct{}

// Eval implements Loss.
func (BCEWithLogits) Eval(pred *Tensor, target []float32, dpred *Tensor) float64 {
	checkLossShapes(pred, target, dpred)
	n := float64(pred.Rows)
	var total float64
	for i := 0; i < pred.Rows; i++ {
		z := float64(pred.Data[i])
		t := float64(target[i])
		// loss = max(z,0) − z·t + log(1+exp(−|z|))
		total += math.Max(z, 0) - z*t + math.Log1p(math.Exp(-math.Abs(z)))
		dpred.Data[i] = float32((1/(1+math.Exp(-z)) - t) / n)
	}
	return total / n
}

// Name implements Loss.
func (BCEWithLogits) Name() string { return "bce-with-logits" }

// MSE is the mean squared (ℓ₂) loss, used for the dEta network's regression
// of ln(dη) (paper §III).
type MSE struct{}

// Eval implements Loss.
func (MSE) Eval(pred *Tensor, target []float32, dpred *Tensor) float64 {
	checkLossShapes(pred, target, dpred)
	n := float64(pred.Rows)
	var total float64
	for i := 0; i < pred.Rows; i++ {
		d := float64(pred.Data[i]) - float64(target[i])
		total += d * d
		dpred.Data[i] = float32(2 * d / n)
	}
	return total / n
}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

func checkLossShapes(pred *Tensor, target []float32, dpred *Tensor) {
	if pred.Cols != 1 {
		panic(fmt.Sprintf("nn: loss expects single-output predictions, got %d cols", pred.Cols))
	}
	if len(target) != pred.Rows || dpred.Rows != pred.Rows || dpred.Cols != 1 {
		panic("nn: loss shape mismatch")
	}
}

// Huber is the Huber loss with transition point Delta: quadratic for
// |error| ≤ Delta, linear beyond. More robust to the heavy-tailed ln|Δη|
// targets than plain MSE; provided for dEta-training experiments.
type Huber struct {
	// Delta is the quadratic/linear transition; zero means 1.
	Delta float64
}

// Eval implements Loss.
func (h Huber) Eval(pred *Tensor, target []float32, dpred *Tensor) float64 {
	checkLossShapes(pred, target, dpred)
	delta := h.Delta
	if delta <= 0 {
		delta = 1
	}
	n := float64(pred.Rows)
	var total float64
	for i := 0; i < pred.Rows; i++ {
		d := float64(pred.Data[i]) - float64(target[i])
		if math.Abs(d) <= delta {
			total += d * d / 2
			dpred.Data[i] = float32(d / n)
		} else {
			total += delta * (math.Abs(d) - delta/2)
			g := delta
			if d < 0 {
				g = -delta
			}
			dpred.Data[i] = float32(g / n)
		}
	}
	return total / n
}

// Name implements Loss.
func (h Huber) Name() string { return "huber" }
