package nn

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestTensorBasics(t *testing.T) {
	x := FromRows([][]float32{{1, 2, 3}, {4, 5, 6}})
	if x.Rows != 2 || x.Cols != 3 {
		t.Fatalf("shape %dx%d", x.Rows, x.Cols)
	}
	if x.At(1, 2) != 6 {
		t.Error("At wrong")
	}
	x.Set(0, 1, 9)
	if x.Row(0)[1] != 9 {
		t.Error("Set/Row wrong")
	}
	c := x.Clone()
	c.Set(0, 0, -1)
	if x.At(0, 0) == -1 {
		t.Error("Clone shares storage")
	}
	g := x.Gather([]int{1, 0, 1})
	if g.Rows != 3 || g.At(0, 0) != 4 || g.At(1, 1) != 9 {
		t.Error("Gather wrong")
	}
	v := x.SliceRows(1, 2)
	if v.Rows != 1 || v.At(0, 0) != 4 {
		t.Error("SliceRows wrong")
	}
	v.Set(0, 0, 42)
	if x.At(1, 0) != 42 {
		t.Error("SliceRows should share storage")
	}
	defer func() {
		if recover() == nil {
			t.Error("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float32{{1}, {1, 2}})
}

func TestSigmoidAndLogit(t *testing.T) {
	if s := Sigmoid(0); s != 0.5 {
		t.Errorf("Sigmoid(0) = %v", s)
	}
	if s := Sigmoid(100); s < 0.999 {
		t.Errorf("Sigmoid(100) = %v", s)
	}
	if s := Sigmoid(-100); s > 0.001 {
		t.Errorf("Sigmoid(-100) = %v", s)
	}
	// Logit inverts sigmoid.
	for _, p := range []float64{0.01, 0.3, 0.5, 0.9, 0.99} {
		if got := float64(Sigmoid(float32(Logit(p)))); math.Abs(got-p) > 1e-6 {
			t.Errorf("Sigmoid(Logit(%v)) = %v", p, got)
		}
	}
}

func TestLinearShapesAndPanics(t *testing.T) {
	rng := xrand.New(1)
	l := NewLinear(3, 2, rng)
	y := l.Forward(FromRows([][]float32{{1, 0, 0}}), false)
	if y.Rows != 1 || y.Cols != 2 {
		t.Fatalf("output shape %dx%d", y.Rows, y.Cols)
	}
	// First output = W[0][0] + b[0] for the unit input.
	want := l.Weight.W[0] + l.Bias.W[0]
	if math.Abs(float64(y.At(0, 0)-want)) > 1e-6 {
		t.Error("linear forward arithmetic wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch did not panic")
		}
	}()
	l.Forward(NewTensor(1, 5), false)
}

func TestBatchNormTrainEval(t *testing.T) {
	bn := NewBatchNorm1D(2)
	x := FromRows([][]float32{{1, 10}, {3, 30}, {5, 50}, {7, 70}})
	y := bn.Forward(x, true)
	// Training output is standardized per feature (γ=1, β=0 initially).
	for c := 0; c < 2; c++ {
		var mean, v float32
		for r := 0; r < 4; r++ {
			mean += y.At(r, c)
		}
		mean /= 4
		for r := 0; r < 4; r++ {
			d := y.At(r, c) - mean
			v += d * d
		}
		if math.Abs(float64(mean)) > 1e-5 || math.Abs(float64(v/4-1)) > 1e-3 {
			t.Errorf("feature %d not standardized: mean %v var %v", c, mean, v/4)
		}
	}
	// After many training passes, eval mode uses running stats ≈ batch
	// stats, so eval output of the same batch is ≈ standardized too.
	for i := 0; i < 200; i++ {
		bn.Forward(x, true)
	}
	// Running variance is the unbiased estimate (n/(n−1), as in PyTorch),
	// so eval output is the train value scaled by sqrt((n−1)/n).
	ye := bn.Forward(x, false)
	want := -1.3416 * math.Sqrt(3.0/4.0)
	if math.Abs(float64(ye.At(0, 0))-want) > 0.02 {
		t.Errorf("eval-mode output %v, want ~%.4f", ye.At(0, 0), want)
	}
	// Batch of one panics in training.
	defer func() {
		if recover() == nil {
			t.Error("BatchNorm train on 1 row did not panic")
		}
	}()
	bn.Forward(NewTensor(1, 2), true)
}

func TestReLUForward(t *testing.T) {
	a := NewReLU()
	y := a.Forward(FromRows([][]float32{{-1, 0, 2}}), true)
	if y.At(0, 0) != 0 || y.At(0, 1) != 0 || y.At(0, 2) != 2 {
		t.Error("ReLU forward wrong")
	}
	dx := a.Backward(FromRows([][]float32{{5, 5, 5}}))
	if dx.At(0, 0) != 0 || dx.At(0, 2) != 5 {
		t.Error("ReLU backward mask wrong")
	}
}

func TestLossValues(t *testing.T) {
	pred := FromRows([][]float32{{0}})
	dp := NewTensor(1, 1)
	// BCE at logit 0 is ln 2 regardless of target.
	if got := (BCEWithLogits{}).Eval(pred, []float32{1}, dp); math.Abs(got-math.Ln2) > 1e-9 {
		t.Errorf("BCE(0,1) = %v, want ln2", got)
	}
	if dp.Data[0] >= 0 {
		t.Error("BCE gradient sign wrong for target 1")
	}
	pred = FromRows([][]float32{{2}})
	if got := (MSE{}).Eval(pred, []float32{0}, dp); got != 4 {
		t.Errorf("MSE = %v, want 4", got)
	}
	if dp.Data[0] != 4 {
		t.Errorf("MSE gradient = %v, want 4", dp.Data[0])
	}
}

func TestSGDMomentum(t *testing.T) {
	p := &Param{W: []float32{1}, G: []float32{1}}
	o := NewSGD(0.1, 0.9)
	o.Step([]*Param{p})
	if math.Abs(float64(p.W[0]-0.9)) > 1e-6 {
		t.Errorf("first step w = %v", p.W[0])
	}
	// Momentum accumulates: v = 0.9*(-0.1) - 0.1 = -0.19.
	o.Step([]*Param{p})
	if math.Abs(float64(p.W[0]-0.71)) > 1e-6 {
		t.Errorf("second step w = %v", p.W[0])
	}
	o.Reset()
	o.Step([]*Param{p})
	if math.Abs(float64(p.W[0]-0.61)) > 1e-6 {
		t.Errorf("post-reset step w = %v", p.W[0])
	}
}

func TestTrainingLearnsLinearlySeparable(t *testing.T) {
	rng := xrand.New(7)
	n := 600
	x := NewTensor(n, 2)
	y := make([]float32, n)
	for i := 0; i < n; i++ {
		a := float32(rng.Gaussian(0, 1))
		b := float32(rng.Gaussian(0, 1))
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		if a+b > 0 {
			y[i] = 1
		}
	}
	ds := &Dataset{X: x, Y: y}
	train, val := ds.Split(0.8, rng)
	net := NewSequential(NewLinear(2, 8, rng), NewReLU(), NewLinear(8, 1, rng))
	tr := &Trainer{Net: net, Loss: BCEWithLogits{}, Opt: NewSGD(0.1, 0.9), BatchSize: 32, MaxEpochs: 40, Patience: 40}
	hist := tr.Fit(train, val, rng)
	if len(hist.TrainLoss) == 0 {
		t.Fatal("no epochs ran")
	}
	probs := net.PredictProbs(val.X)
	correct := 0
	for i, p := range probs {
		if (p > 0.5) == (val.Y[i] > 0.5) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(probs)); acc < 0.95 {
		t.Errorf("separable accuracy %v, want > 0.95", acc)
	}
}

func TestEarlyStoppingRestoresBestWeights(t *testing.T) {
	rng := xrand.New(9)
	// Pure-noise targets: validation loss cannot keep improving, so early
	// stopping must fire and the restored weights must give the recorded
	// best validation loss.
	x := randTensor(200, 3, rng)
	y := randTargets(200, rng)
	ds := &Dataset{X: x, Y: y}
	train, val := ds.Split(0.7, rng)
	net := NewSequential(NewLinear(3, 16, rng), NewReLU(), NewLinear(16, 1, rng))
	tr := &Trainer{Net: net, Loss: MSE{}, Opt: NewSGD(0.2, 0.9), BatchSize: 16, MaxEpochs: 200, Patience: 5}
	hist := tr.Fit(train, val, rng)
	if !hist.Stopped {
		t.Error("early stopping never fired on noise")
	}
	best := math.Inf(1)
	for _, v := range hist.ValLoss {
		best = math.Min(best, v)
	}
	if got := tr.Evaluate(val); math.Abs(got-best) > 1e-6 {
		t.Errorf("restored val loss %v, best seen %v", got, best)
	}
}

func TestStateRoundTrip(t *testing.T) {
	rng := xrand.New(11)
	build := func() *Sequential {
		r := xrand.New(99)
		return NewSequential(NewBatchNorm1D(3), NewLinear(3, 4, r), NewReLU(), NewLinear(4, 1, r))
	}
	a := build()
	// Perturb a's state by training a little so buffers differ from init.
	x := randTensor(32, 3, rng)
	y := randTargets(32, rng)
	tr := &Trainer{Net: a, Loss: MSE{}, Opt: NewSGD(0.05, 0.9), BatchSize: 8, MaxEpochs: 3, Patience: 10}
	tr.Fit(&Dataset{X: x, Y: y}, nil, rng)

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := build()
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	xa := a.Predict(x)
	xb := b.Predict(x)
	for i := range xa.Data {
		if xa.Data[i] != xb.Data[i] {
			t.Fatalf("prediction mismatch after round-trip at %d", i)
		}
	}
	// Mismatched architecture must error, not corrupt.
	c := NewSequential(NewLinear(3, 2, rng))
	var buf2 bytes.Buffer
	if err := a.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if err := c.Load(&buf2); err == nil {
		t.Error("loading into mismatched architecture succeeded")
	}
}

func TestDatasetSplit(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%100) + 10
		rng := xrand.New(seed)
		x := NewTensor(n, 1)
		y := make([]float32, n)
		for i := 0; i < n; i++ {
			x.Set(i, 0, float32(i))
			y[i] = float32(i)
		}
		a, b := (&Dataset{X: x, Y: y}).Split(0.8, rng)
		if a.Len()+b.Len() != n {
			return false
		}
		// Labels stay aligned with rows.
		for i := 0; i < a.Len(); i++ {
			if a.X.At(i, 0) != a.Y[i] {
				return false
			}
		}
		return a.Len() == int(0.8*float64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSequentialMisc(t *testing.T) {
	rng := xrand.New(13)
	net := NewSequential(NewBatchNorm1D(2), NewLinear(2, 3, rng), NewReLU(), NewLinear(3, 1, rng))
	if net.NumParams() != 2+2+2*3+3+3*1+1 {
		t.Errorf("NumParams = %d", net.NumParams())
	}
	if net.String() == "" {
		t.Error("empty String")
	}
	net.Params()[0].G[0] = 5
	net.ZeroGrad()
	if net.Params()[0].G[0] != 0 {
		t.Error("ZeroGrad did not clear")
	}
	probs := net.PredictProbs(randTensor(4, 2, rng))
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Errorf("prob out of range: %v", p)
		}
	}
}

func TestHuberLoss(t *testing.T) {
	h := Huber{Delta: 1}
	dp := NewTensor(1, 1)
	// Inside the quadratic region: d²/2 with gradient d.
	if got := h.Eval(FromRows([][]float32{{0.5}}), []float32{0}, dp); math.Abs(got-0.125) > 1e-9 {
		t.Errorf("huber quadratic = %v", got)
	}
	if math.Abs(float64(dp.Data[0])-0.5) > 1e-9 {
		t.Errorf("huber quadratic grad = %v", dp.Data[0])
	}
	// Outside: linear with slope ±delta.
	if got := h.Eval(FromRows([][]float32{{3}}), []float32{0}, dp); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("huber linear = %v", got)
	}
	if dp.Data[0] != 1 {
		t.Errorf("huber linear grad = %v", dp.Data[0])
	}
	if got := h.Eval(FromRows([][]float32{{-3}}), []float32{0}, dp); math.Abs(got-2.5) > 1e-9 || dp.Data[0] != -1 {
		t.Errorf("huber negative side wrong: %v grad %v", got, dp.Data[0])
	}
	if h.Name() != "huber" {
		t.Error("name wrong")
	}
}

func TestHuberGradient(t *testing.T) {
	rng := xrand.New(21)
	net := NewSequential(NewLinear(3, 5, rng), NewReLU(), NewLinear(5, 1, rng))
	x := randTensor(8, 3, rng)
	y := randTargets(8, rng)
	if frac := numericalGradCheck(t, net, Huber{Delta: 0.5}, x, y); frac > 0.08 {
		t.Errorf("huber gradient check: %.1f%% coordinates off", 100*frac)
	}
}
