package nn

// SGD is stochastic gradient descent with classical momentum and optional L2
// weight decay, matching the paper's training setup ("Networks were trained
// using the SGD optimizer", §III).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity map[*Param][]float32
}

// NewSGD constructs an optimizer with the given learning rate and momentum.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param][]float32)}
}

// Step applies one update to every parameter from its accumulated gradient.
// Gradients are not cleared; call Sequential.ZeroGrad before the next batch.
func (o *SGD) Step(params []*Param) {
	lr := float32(o.LR)
	mu := float32(o.Momentum)
	wd := float32(o.WeightDecay)
	for _, p := range params {
		v := o.velocity[p]
		if v == nil {
			v = make([]float32, len(p.W))
			o.velocity[p] = v
		}
		for i := range p.W {
			g := p.G[i]
			if wd != 0 {
				g += wd * p.W[i]
			}
			v[i] = mu*v[i] - lr*g
			p.W[i] += v[i]
		}
	}
}

// Reset clears momentum state (used when reusing an optimizer across
// training phases, e.g. QAT fine-tuning after FP32 training).
func (o *SGD) Reset() { o.velocity = make(map[*Param][]float32) }

// LearningRate implements Optimizer.
func (o *SGD) LearningRate() float64 { return o.LR }

// SetLearningRate implements Optimizer.
func (o *SGD) SetLearningRate(lr float64) { o.LR = lr }
