package quant

import (
	"math/big"
	"testing"
)

// FuzzRequantize checks the fixed-point requantization kernel on its full
// domain: any accumulator a converted network could produce, any 31-bit
// mantissa, any shift. The property is the rounding contract — the int8
// result dequantizes to within half an output step of acc·m0·2^(−shift),
// with saturation only when the true value is at or past the rail.
func FuzzRequantize(f *testing.F) {
	f.Add(int64(1234567), int32(1<<30+12345), uint(31), int32(-3))
	f.Add(int64(-987654), int32(1<<31-1), uint(40), int32(7))
	f.Add(int64(0), int32(1), uint(0), int32(0))
	f.Add(int64(-1)<<30, int32(3), uint(1), int32(127))
	f.Add(int64(1)<<30, int32(1<<30), uint(63), int32(-128))
	f.Add(int64(3), int32(1<<30), uint(31), int32(0)) // exact tie: 1.5 rounds away
	f.Fuzz(func(t *testing.T, acc int64, m0 int32, shift uint, zero int32) {
		// Constrain to the domain the kernel is specified over: shifts below
		// the word width, non-negative mantissa, and an accumulator small
		// enough that acc·m0 fits in int64 (layer arithmetic guarantees this
		// for real networks; |acc| ≤ In·128² + |bias|).
		shift %= 64
		if m0 < 0 {
			m0 = ^m0
		}
		acc %= 1 << 31

		got := requantize(acc, m0, shift, zero)
		prod := new(big.Int).Mul(big.NewInt(acc), big.NewInt(int64(m0)))
		half := new(big.Int)
		if shift > 0 {
			half.Lsh(big.NewInt(1), shift-1)
		}
		scaled := func(q int64) *big.Int {
			return new(big.Int).Lsh(big.NewInt(q-int64(zero)), shift)
		}

		switch {
		case got > -128 && got < 127:
			// Interior result: |(q−zero)·2^shift − prod| ≤ 2^(shift−1),
			// exact when shift is zero.
			diff := new(big.Int).Abs(new(big.Int).Sub(scaled(int64(got)), prod))
			if diff.Cmp(half) > 0 {
				t.Errorf("requantize(%d, %d, %d, %d) = %d: off by %s > half step %s",
					acc, m0, shift, zero, got, diff, half)
			}
		case got == 127:
			// Saturated high: the true value must be at least the rail
			// minus half a step.
			rail := new(big.Int).Sub(scaled(127), half)
			if prod.Cmp(rail) < 0 {
				t.Errorf("requantize(%d, %d, %d, %d) saturated to 127 below the rail", acc, m0, shift, zero)
			}
		case got == -128:
			rail := new(big.Int).Add(scaled(-128), half)
			if prod.Cmp(rail) > 0 {
				t.Errorf("requantize(%d, %d, %d, %d) saturated to -128 above the rail", acc, m0, shift, zero)
			}
		}
	})
}
