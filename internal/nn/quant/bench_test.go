package quant

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/xrand"
)

// benchInt8 builds a quantized network of the paper's background-net shape.
func benchInt8(b *testing.B) (*Int8Net, *nn.Sequential, []float32) {
	b.Helper()
	rng := xrand.New(1)
	net := nn.NewSequential(
		nn.NewLinear(13, 256, rng), nn.NewBatchNorm1D(256), nn.NewReLU(),
		nn.NewLinear(256, 128, rng), nn.NewBatchNorm1D(128), nn.NewReLU(),
		nn.NewLinear(128, 64, rng), nn.NewBatchNorm1D(64), nn.NewReLU(),
		nn.NewLinear(64, 1, rng),
	)
	fused, err := FuseForQuant(net)
	if err != nil {
		b.Fatal(err)
	}
	x := nn.NewTensor(512, 13)
	for i := range x.Data {
		x.Data[i] = float32(rng.Gaussian(0, 1))
	}
	for _, l := range fused.Layers {
		l.(*QATLinear).Enabled = false
	}
	warm := &nn.Trainer{Net: fused, Loss: nn.BCEWithLogits{}, Opt: nn.NewSGD(0, 0), BatchSize: 128, MaxEpochs: 1, Patience: 5}
	warm.Fit(&nn.Dataset{X: x, Y: make([]float32, 512)}, nil, rng)
	for _, l := range fused.Layers {
		l.(*QATLinear).Enabled = true
	}
	int8net, err := Convert(fused)
	if err != nil {
		b.Fatal(err)
	}
	return int8net, net, x.Row(0)
}

func BenchmarkInt8Logit(b *testing.B) {
	int8net, _, row := benchInt8(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		int8net.Logit(row)
	}
}

func BenchmarkFP32Single(b *testing.B) {
	_, net, row := benchInt8(b)
	x := nn.FromRows([][]float32{row})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}
