//go:build amd64

package quant

// dotInt8 computes Σ x[i]·w[i]; x and w must have equal length. On amd64
// it is the SSE2 kernel in dot_amd64.s: 16 int8 lanes are sign-extended to
// int16 and multiply-accumulated pairwise with PMADDWD, eight MACs per
// instruction against the scalar loop's one. SSE2 is the amd64 baseline,
// so no runtime feature detection is needed.
//
// Overflow: each PMADDWD lane is at most 2·128² < 2¹⁵ and the four int32
// accumulator lanes each absorb ⌈len/8⌉ of them, so lanes stay exact for
// len < 2¹⁵ — far above any layer width (the background net's widest layer
// is 256).
//
//go:noescape
func dotInt8(x, w []int8) int64
