// Package quant implements post-training INT8 quantization of the nn
// networks, mirroring the paper's §V study: quantization-aware training
// (QAT) with fused Linear+BatchNorm+ReLU blocks, per-tensor affine
// quantization of activations, per-tensor symmetric quantization of weights,
// and an integer-only inference path (int8 × int8 → int32 accumulate,
// fixed-point requantization) equivalent to PyTorch's 'x86' eager-mode
// configuration in structure.
//
// The flow matches the paper:
//
//  1. retrain the background model with the block order reversed to
//     Linear→BN→ReLU so the three ops can fuse (§V "Methodology");
//  2. fold each BatchNorm into its Linear (FoldBN);
//  3. fine-tune with fake quantization (QATLinear, straight-through
//     estimator);
//  4. convert to an integer Net (Convert) whose final sigmoid is elided —
//     the classification threshold is applied in the logit domain instead
//     (§V "FPGA Deployment").
package quant

import (
	"fmt"
	"math"
)

// QParams maps float values x to int8 codes q = clamp(round(x/Scale) + Zero).
type QParams struct {
	Scale float32
	Zero  int32
}

// Quantize returns the int8 code for x.
func (p QParams) Quantize(x float32) int8 {
	q := int32(math.RoundToEven(float64(x/p.Scale))) + p.Zero
	return clampInt8(q)
}

// Dequantize returns the float value of code q.
func (p QParams) Dequantize(q int8) float32 {
	return p.Scale * float32(int32(q)-p.Zero)
}

// FakeQuantize rounds x through the int8 grid and back (quantize-dequantize),
// the QAT forward-path operation.
func (p QParams) FakeQuantize(x float32) float32 {
	return p.Dequantize(p.Quantize(x))
}

func clampInt8(q int32) int8 {
	if q < -128 {
		return -128
	}
	if q > 127 {
		return 127
	}
	return int8(q)
}

// Asymmetric chooses activation quantization parameters covering [min, max]
// with the zero point chosen so that 0.0 is exactly representable.
func Asymmetric(min, max float32) QParams {
	if min > 0 {
		min = 0
	}
	if max < 0 {
		max = 0
	}
	if max == min {
		max = min + 1e-6
	}
	scale := (max - min) / 255
	zero := int32(math.RoundToEven(float64(-min/scale))) - 128
	if zero < -128 {
		zero = -128
	}
	if zero > 127 {
		zero = 127
	}
	return QParams{Scale: scale, Zero: zero}
}

// Symmetric chooses weight quantization parameters with zero point 0
// covering [−maxAbs, maxAbs].
func Symmetric(maxAbs float32) QParams {
	if maxAbs == 0 {
		maxAbs = 1e-6
	}
	return QParams{Scale: maxAbs / 127, Zero: 0}
}

// Observer tracks the running min/max of a tensor across training batches,
// the MinMaxObserver of PyTorch's default QAT config.
type Observer struct {
	Min, Max float32
	seen     bool
}

// Update folds a batch of values into the running range.
func (o *Observer) Update(xs []float32) {
	for _, x := range xs {
		if !o.seen {
			o.Min, o.Max, o.seen = x, x, true
			continue
		}
		if x < o.Min {
			o.Min = x
		}
		if x > o.Max {
			o.Max = x
		}
	}
}

// Ready reports whether the observer has seen any data.
func (o *Observer) Ready() bool { return o.seen }

// QParams returns asymmetric parameters for the observed range.
func (o *Observer) QParams() QParams {
	if !o.seen {
		return QParams{Scale: 1, Zero: 0}
	}
	return Asymmetric(o.Min, o.Max)
}

// String implements fmt.Stringer.
func (o *Observer) String() string {
	return fmt.Sprintf("Observer[%.4g, %.4g]", o.Min, o.Max)
}

// Export returns the observer state as a flat buffer [min, max, seen] so it
// can ride in an nn.State buffer slot (see QATLinear.ExportBuffers).
func (o *Observer) Export() []float32 {
	seen := float32(0)
	if o.seen {
		seen = 1
	}
	return []float32{o.Min, o.Max, seen}
}

// Import restores state captured by Export.
func (o *Observer) Import(buf []float32) error {
	if len(buf) != 3 {
		return fmt.Errorf("quant: observer buffer has %d values, want 3", len(buf))
	}
	o.Min, o.Max, o.seen = buf[0], buf[1], buf[2] != 0
	return nil
}

// maxAbs returns max |x| over xs.
func maxAbs(xs []float32) float32 {
	var m float32
	for _, x := range xs {
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}

// requantMultiplier decomposes a positive real multiplier M into a 31-bit
// fixed-point mantissa m0 and right-shift so that M ≈ m0 · 2^(−shift), the
// standard integer-only requantization form (Jacob et al. 2018, as used by
// PyTorch and TFLite kernels).
func requantMultiplier(m float64) (m0 int32, shift uint) {
	if m <= 0 {
		panic("quant: non-positive requant multiplier")
	}
	exp := 0
	frac := m
	for frac >= 1 {
		frac /= 2
		exp++
	}
	for frac < 0.5 {
		frac *= 2
		exp--
	}
	// frac ∈ [0.5, 1); mantissa in [2^30, 2^31).
	q := int64(math.RoundToEven(frac * (1 << 31)))
	if q == 1<<31 {
		q /= 2
		exp++
	}
	sh := 31 - exp
	if sh < 0 {
		panic("quant: requant multiplier too large")
	}
	return int32(q), uint(sh)
}

// requantize applies y = round(acc · m0 · 2^(−shift)) + zero with saturating
// int8 output, using only integer arithmetic.
func requantize(acc int64, m0 int32, shift uint, zero int32) int8 {
	prod := acc * int64(m0)
	var q int64
	if shift == 0 {
		// A zero shift means the multiplier is already integral; a rounding
		// right shift by zero is the identity. Unreachable for multipliers
		// produced by requantMultiplier (< 1 ⇒ shift ≥ 31) but kept total so
		// the function is well-defined on all inputs (see FuzzRequantize).
		q = prod
	} else {
		// Rounding right shift, round-half-away-from-zero.
		round := int64(1) << (shift - 1)
		if prod < 0 {
			round--
		}
		q = (prod + round) >> shift
	}
	return clampInt8Wide(q + int64(zero))
}

// clampInt8Wide saturates an int64 to the int8 range; requantize needs the
// wide form because acc·m0 can exceed int32 before the shift for adversarial
// (fuzzed) inputs even though converted networks never produce them.
func clampInt8Wide(q int64) int8 {
	if q < -128 {
		return -128
	}
	if q > 127 {
		return 127
	}
	return int8(q)
}
