//go:build !amd64

package quant

// dotInt8 computes Σ x[i]·w[i]; x and w must have equal length. On
// architectures without a SIMD kernel it is the portable scalar loop.
func dotInt8(x, w []int8) int64 { return dotInt8Generic(x, w) }
