//go:build amd64

#include "textflag.h"

// func dotInt8(x, w []int8) int64
//
// SSE2 int8 dot product. 16 elements per iteration: each half of the two
// 16-byte loads is sign-extended to int16 lanes (self-interleave then
// arithmetic shift), multiply-accumulated pairwise by PMADDWL into four
// int32 lanes, and the lanes are reduced at the end. The tail runs
// element-wise. Only len(x) elements are read from either slice.
TEXT ·dotInt8(SB), NOSPLIT, $0-56
	MOVQ x_base+0(FP), SI
	MOVQ x_len+8(FP), CX
	MOVQ w_base+24(FP), DI
	XORQ AX, AX            // element index
	XORQ R10, R10          // scalar tail accumulator
	PXOR X0, X0            // 4-lane int32 accumulator
	MOVQ CX, BX
	ANDQ $-16, BX          // SIMD-covered length
	JZ   tail

loop:
	MOVOU (SI)(AX*1), X1
	MOVOU (DI)(AX*1), X2

	MOVOU     X1, X3
	PUNPCKLBW X3, X3       // low 8 bytes doubled into int16 lanes
	PSRAW     $8, X3       // arithmetic shift = sign-extend x[0..7]
	MOVOU     X2, X4
	PUNPCKLBW X4, X4
	PSRAW     $8, X4       // sign-extend w[0..7]
	PMADDWL   X4, X3       // pairwise int16 MAC into 4 int32 lanes
	PADDD     X3, X0

	MOVOU     X1, X3
	PUNPCKHBW X3, X3
	PSRAW     $8, X3       // sign-extend x[8..15]
	MOVOU     X2, X4
	PUNPCKHBW X4, X4
	PSRAW     $8, X4
	PMADDWL   X4, X3
	PADDD     X3, X0

	ADDQ $16, AX
	CMPQ AX, BX
	JLT  loop

tail:
	CMPQ AX, CX
	JGE  done
	MOVBQSX (SI)(AX*1), R8
	MOVBQSX (DI)(AX*1), R9
	IMULQ   R9, R8
	ADDQ    R8, R10
	INCQ    AX
	JMP     tail

done:
	PSHUFD $0x4E, X0, X1   // swap the two 64-bit halves
	PADDD  X1, X0
	PSHUFD $0xB1, X0, X1   // swap adjacent 32-bit lanes
	PADDD  X1, X0
	MOVL   X0, AX          // low int32 lane
	MOVLQSX AX, AX
	ADDQ   R10, AX
	MOVQ   AX, ret+48(FP)
	RET
