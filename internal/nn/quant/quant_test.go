package quant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/xrand"
)

func TestQParamsRoundTrip(t *testing.T) {
	p := Asymmetric(-2, 6)
	f := func(raw float64) bool {
		x := float32(math.Mod(raw, 8))
		if x < -2 {
			x = -2
		}
		if x > 6 {
			x = 6
		}
		back := p.Dequantize(p.Quantize(x))
		return math.Abs(float64(back-x)) <= float64(p.Scale)/2+1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Zero must be exactly representable for asymmetric activation params.
	if got := p.Dequantize(p.Quantize(0)); got != 0 {
		t.Errorf("zero not exactly representable: %v", got)
	}
}

func TestQParamsSaturation(t *testing.T) {
	p := Asymmetric(0, 1)
	if p.Quantize(100) != 127 {
		t.Error("no saturation high")
	}
	if p.Quantize(-100) != -128 {
		t.Error("no saturation low")
	}
}

func TestSymmetric(t *testing.T) {
	p := Symmetric(2.54)
	if p.Zero != 0 {
		t.Error("symmetric zero point not 0")
	}
	if got := p.Quantize(2.54); got != 127 {
		t.Errorf("max maps to %d, want 127", got)
	}
	if got := p.Quantize(-2.54); got != -127 {
		t.Errorf("-max maps to %d, want -127", got)
	}
	if Symmetric(0).Scale <= 0 {
		t.Error("zero maxAbs gives non-positive scale")
	}
}

func TestObserver(t *testing.T) {
	var o Observer
	if o.Ready() {
		t.Error("fresh observer ready")
	}
	o.Update([]float32{1, -3, 2})
	o.Update([]float32{5})
	if o.Min != -3 || o.Max != 5 {
		t.Errorf("observer range [%v, %v]", o.Min, o.Max)
	}
	if !o.Ready() {
		t.Error("observer not ready after updates")
	}
	if o.String() == "" {
		t.Error("empty observer string")
	}
	p := o.QParams()
	if p.Dequantize(p.Quantize(-3)) < -3.1 || p.Dequantize(p.Quantize(5)) > 5.1 {
		t.Error("observer qparams don't cover the range")
	}
}

func TestRequantMultiplier(t *testing.T) {
	for _, m := range []float64{0.0001, 0.3, 0.5, 0.9999, 1.0, 3.7, 100} {
		m0, shift := requantMultiplier(m)
		got := float64(m0) / math.Pow(2, float64(shift))
		if math.Abs(got-m)/m > 1e-8 {
			t.Errorf("requantMultiplier(%v) reconstructs to %v", m, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive multiplier did not panic")
		}
	}()
	requantMultiplier(0)
}

func TestRequantizeMatchesFloat(t *testing.T) {
	m := 0.0123
	m0, shift := requantMultiplier(m)
	for _, acc := range []int64{-100000, -1234, -1, 0, 1, 999, 54321} {
		got := requantize(acc, m0, shift, 3)
		want := clampInt8(int32(math.RoundToEven(float64(acc)*m)) + 3)
		if got != want && got != want+1 && got != want-1 {
			t.Errorf("requantize(%d) = %d, float says %d", acc, got, want)
		}
	}
}

func TestFoldBNEquivalence(t *testing.T) {
	rng := xrand.New(1)
	lin := nn.NewLinear(5, 4, rng)
	bn := nn.NewBatchNorm1D(4)
	// Give BN non-trivial statistics and affine parameters.
	for i := 0; i < 4; i++ {
		bn.RunMean[i] = float32(rng.Gaussian(0, 1))
		bn.RunVar[i] = float32(0.5 + rng.Float64())
		bn.Gamma.W[i] = float32(rng.Gaussian(1, 0.3))
		bn.Beta.W[i] = float32(rng.Gaussian(0, 0.5))
	}
	folded := FoldBN(lin, bn)
	x := nn.NewTensor(6, 5)
	for i := range x.Data {
		x.Data[i] = float32(rng.Gaussian(0, 2))
	}
	want := bn.Forward(lin.Forward(x, false), false)
	got := folded.Forward(x, false)
	for i := range want.Data {
		if math.Abs(float64(want.Data[i]-got.Data[i])) > 1e-4 {
			t.Fatalf("folded output differs at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
}

// buildTrainedSwapped trains a small layer-swapped classifier on a
// synthetic separable task and returns it with its data.
func buildTrainedSwapped(t *testing.T) (*nn.Sequential, *nn.Dataset) {
	t.Helper()
	rng := xrand.New(2)
	n := 800
	x := nn.NewTensor(n, 4)
	y := make([]float32, n)
	for i := 0; i < n; i++ {
		var s float32
		for c := 0; c < 4; c++ {
			v := float32(rng.Gaussian(0, 1))
			x.Set(i, c, v)
			s += v
		}
		if s > 0 {
			y[i] = 1
		}
	}
	net := nn.NewSequential(
		nn.NewLinear(4, 16, rng), nn.NewBatchNorm1D(16), nn.NewReLU(),
		nn.NewLinear(16, 8, rng), nn.NewBatchNorm1D(8), nn.NewReLU(),
		nn.NewLinear(8, 1, rng),
	)
	ds := &nn.Dataset{X: x, Y: y}
	tr := &nn.Trainer{Net: net, Loss: nn.BCEWithLogits{}, Opt: nn.NewSGD(0.05, 0.9), BatchSize: 64, MaxEpochs: 25, Patience: 25}
	tr.Fit(ds, nil, rng)
	return net, ds
}

func TestFuseQATConvertPipeline(t *testing.T) {
	net, ds := buildTrainedSwapped(t)

	fused, err := FuseForQuant(net)
	if err != nil {
		t.Fatal(err)
	}
	// Fused-but-unquantized must match the original closely.
	for _, l := range fused.Layers {
		l.(*QATLinear).Enabled = false
	}
	orig := net.Predict(ds.X)
	fz := fused.Predict(ds.X)
	for i := range orig.Data {
		if math.Abs(float64(orig.Data[i]-fz.Data[i])) > 1e-3 {
			t.Fatalf("fusion changed output at %d: %v vs %v", i, orig.Data[i], fz.Data[i])
		}
	}

	// QAT: observers warm up, then fake-quant fine-tuning.
	rng := xrand.New(3)
	for _, l := range fused.Layers {
		l.(*QATLinear).Enabled = false
	}
	warm := &nn.Trainer{Net: fused, Loss: nn.BCEWithLogits{}, Opt: nn.NewSGD(0, 0), BatchSize: 128, MaxEpochs: 1, Patience: 10}
	warm.Fit(ds, nil, rng)
	for _, l := range fused.Layers {
		l.(*QATLinear).Enabled = true
	}
	qat := &nn.Trainer{Net: fused, Loss: nn.BCEWithLogits{}, Opt: nn.NewSGD(0.01, 0.9), BatchSize: 128, MaxEpochs: 3, Patience: 10}
	qat.Fit(ds, nil, rng)

	int8net, err := Convert(fused)
	if err != nil {
		t.Fatal(err)
	}

	// Agreement: integer inference must classify like the FP32 model for
	// the overwhelming majority of inputs.
	probs := net.PredictProbs(ds.X)
	agree := 0
	for i := 0; i < ds.Len(); i++ {
		pInt := int8net.Prob(ds.X.Row(i))
		if (pInt > 0.5) == (probs[i] > 0.5) {
			agree++
		}
	}
	if frac := float64(agree) / float64(ds.Len()); frac < 0.93 {
		t.Errorf("INT8 agrees with FP32 on only %.1f%% of inputs", 100*frac)
	}

	// The integer path is deterministic.
	if int8net.Logit(ds.X.Row(0)) != int8net.Logit(ds.X.Row(0)) {
		t.Error("integer inference not deterministic")
	}
	// Weight storage is ~4x smaller than FP32.
	fpBytes := 0
	for _, p := range net.Params() {
		fpBytes += 4 * len(p.W)
	}
	if int8net.NumWeightBytes() >= fpBytes/2 {
		t.Errorf("INT8 storage %d not substantially below FP32 %d", int8net.NumWeightBytes(), fpBytes)
	}
}

func TestFuseRejectsWrongOrder(t *testing.T) {
	rng := xrand.New(4)
	// The paper's original (BN-first) order cannot fuse.
	net := nn.NewSequential(nn.NewBatchNorm1D(3), nn.NewLinear(3, 1, rng))
	if _, err := FuseForQuant(net); err == nil {
		t.Error("BN-first network fused without error")
	}
}

func TestConvertRequiresObservers(t *testing.T) {
	rng := xrand.New(5)
	net := nn.NewSequential(nn.NewLinear(3, 2, rng), nn.NewReLU(), nn.NewLinear(2, 1, rng))
	fused, err := FuseForQuant(net)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Convert(fused); err == nil {
		t.Error("Convert succeeded with cold observers")
	}
}

func TestInt8NetInputValidation(t *testing.T) {
	net, ds := buildTrainedSwapped(t)
	fused, _ := FuseForQuant(net)
	rng := xrand.New(6)
	warm := &nn.Trainer{Net: fused, Loss: nn.BCEWithLogits{}, Opt: nn.NewSGD(0, 0), BatchSize: 128, MaxEpochs: 1, Patience: 5}
	warm.Fit(ds, nil, rng)
	int8net, err := Convert(fused)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong feature count did not panic")
		}
	}()
	int8net.Logit([]float32{1, 2})
}
