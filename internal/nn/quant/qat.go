package quant

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// FoldBN folds a BatchNorm1D (using its running statistics) into the Linear
// layer that precedes it, returning a new Linear with
// W' = γ·W/√(σ²+ε) and b' = γ·(b−μ)/√(σ²+ε) + β. The inputs are not
// modified.
func FoldBN(l *nn.Linear, bn *nn.BatchNorm1D) *nn.Linear {
	if bn.Dim != l.Out {
		panic(fmt.Sprintf("quant: FoldBN dims: linear out %d, bn %d", l.Out, bn.Dim))
	}
	out := &nn.Linear{
		In: l.In, Out: l.Out,
		Weight: &nn.Param{Name: l.Weight.Name + ".folded", W: make([]float32, len(l.Weight.W)), G: make([]float32, len(l.Weight.W))},
		Bias:   &nn.Param{Name: l.Bias.Name + ".folded", W: make([]float32, len(l.Bias.W)), G: make([]float32, len(l.Bias.W))},
	}
	for o := 0; o < l.Out; o++ {
		inv := float32(1 / math.Sqrt(float64(bn.RunVar[o]+bn.Eps)))
		k := bn.Gamma.W[o] * inv
		for i := 0; i < l.In; i++ {
			out.Weight.W[o*l.In+i] = l.Weight.W[o*l.In+i] * k
		}
		out.Bias.W[o] = (l.Bias.W[o]-bn.RunMean[o])*k + bn.Beta.W[o]
	}
	return out
}

// FuseForQuant converts a network of the *swapped* block order
// [Linear, BatchNorm1D, ReLU]×k ... Linear into a Sequential of QATLinear
// layers (BN folded, ReLU fused). The input network must follow that layer
// pattern; anything else is an error, because silent partial fusion would
// invalidate the quantization study. The input network is not modified.
func FuseForQuant(net *nn.Sequential) (*nn.Sequential, error) {
	var layers []nn.Layer
	ls := net.Layers
	for i := 0; i < len(ls); {
		lin, ok := ls[i].(*nn.Linear)
		if !ok {
			return nil, fmt.Errorf("quant: layer %d is %s, want Linear", i, ls[i])
		}
		fused := cloneLinear(lin)
		withReLU := false
		j := i + 1
		if j < len(ls) {
			if bn, ok := ls[j].(*nn.BatchNorm1D); ok {
				fused = FoldBN(lin, bn)
				j++
			}
		}
		if j < len(ls) {
			if _, ok := ls[j].(*nn.ReLU); ok {
				withReLU = true
				j++
			}
		}
		layers = append(layers, NewQATLinear(fused, withReLU))
		i = j
	}
	return nn.NewSequential(layers...), nil
}

func cloneLinear(l *nn.Linear) *nn.Linear {
	return &nn.Linear{
		In: l.In, Out: l.Out,
		Weight: &nn.Param{Name: l.Weight.Name, W: append([]float32(nil), l.Weight.W...), G: make([]float32, len(l.Weight.G))},
		Bias:   &nn.Param{Name: l.Bias.Name, W: append([]float32(nil), l.Bias.W...), G: make([]float32, len(l.Bias.G))},
	}
}

// QATLinear is a fused Linear (+ ReLU) trained with fake quantization: the
// weights pass through the int8 grid on every forward, and the output
// activations pass through the observed activation grid. Gradients use the
// straight-through estimator (STE) with range clipping.
type QATLinear struct {
	Lin      *nn.Linear
	WithReLU bool

	// InObs observes this layer's input range (used at conversion for the
	// first layer's input quantization; later layers reuse the previous
	// layer's ActObs).
	InObs Observer
	// ActObs observes the post-activation output range.
	ActObs Observer

	// Enabled toggles fake quantization; when false the layer behaves as a
	// plain fused Linear(+ReLU) while still updating observers in training
	// mode (observer warm-up).
	Enabled bool
	// PerChannel quantizes each output row's weights with its own scale
	// (per-channel symmetric quantization, one of the "broader range of
	// quantization strategies" the paper's §VI plans to investigate).
	PerChannel bool

	shadow   []float32 // original weights saved across the fake-quant swap
	reluMask []bool    // pre-activation > 0, for backward
	clipMask []bool    // value inside the int8-representable range
	swapped  bool
}

// NewQATLinear wraps an already-fused Linear.
func NewQATLinear(lin *nn.Linear, withReLU bool) *QATLinear {
	return &QATLinear{Lin: lin, WithReLU: withReLU, Enabled: true}
}

// Forward implements nn.Layer.
func (q *QATLinear) Forward(x *nn.Tensor, train bool) *nn.Tensor {
	if train {
		q.InObs.Update(x.Data)
	}
	if q.Enabled {
		if q.shadow == nil {
			q.shadow = make([]float32, len(q.Lin.Weight.W))
		}
		copy(q.shadow, q.Lin.Weight.W)
		if q.PerChannel {
			for o := 0; o < q.Lin.Out; o++ {
				row := q.Lin.Weight.W[o*q.Lin.In : (o+1)*q.Lin.In]
				wp := Symmetric(maxAbs(row))
				for i, w := range row {
					row[i] = wp.FakeQuantize(w)
				}
			}
		} else {
			wp := Symmetric(maxAbs(q.Lin.Weight.W))
			for i, w := range q.Lin.Weight.W {
				q.Lin.Weight.W[i] = wp.FakeQuantize(w)
			}
		}
		q.swapped = true
		if !train {
			// Inference: restore immediately after use.
			defer q.restoreWeights()
		}
	}
	y := q.Lin.Forward(x, train)
	if q.WithReLU {
		if train {
			q.reluMask = growBool(q.reluMask, len(y.Data))
		}
		for i, v := range y.Data {
			pos := v > 0
			if !pos {
				y.Data[i] = 0
			}
			if train {
				q.reluMask[i] = pos
			}
		}
	}
	if train {
		q.ActObs.Update(y.Data)
	}
	if q.Enabled && q.ActObs.Ready() {
		ap := q.ActObs.QParams()
		lo, hi := ap.Dequantize(-128), ap.Dequantize(127)
		if train {
			q.clipMask = growBool(q.clipMask, len(y.Data))
		}
		for i, v := range y.Data {
			if train {
				q.clipMask[i] = v >= lo && v <= hi
			}
			y.Data[i] = ap.FakeQuantize(v)
		}
	} else if train {
		q.clipMask = q.clipMask[:0]
	}
	return y
}

// Backward implements nn.Layer.
func (q *QATLinear) Backward(dout *nn.Tensor) *nn.Tensor {
	if len(q.clipMask) == len(dout.Data) {
		for i := range dout.Data {
			if !q.clipMask[i] {
				dout.Data[i] = 0
			}
		}
	}
	if q.WithReLU {
		for i := range dout.Data {
			if !q.reluMask[i] {
				dout.Data[i] = 0
			}
		}
	}
	dx := q.Lin.Backward(dout)
	if q.swapped {
		// STE: gradients were computed against the quantized weights; apply
		// them to the full-precision shadow copy.
		q.restoreWeights()
	}
	return dx
}

func (q *QATLinear) restoreWeights() {
	if q.swapped {
		copy(q.Lin.Weight.W, q.shadow)
		q.swapped = false
	}
}

// Params implements nn.Layer.
func (q *QATLinear) Params() []*nn.Param { return q.Lin.Params() }

// NumBuffers implements nn.BufferLayer.
func (q *QATLinear) NumBuffers() int { return 2 }

// ExportBuffers implements nn.BufferLayer: the two observer ranges, which
// are exactly the non-learnable state Convert needs. Round-tripping a
// QAT-trained network through nn.State therefore reproduces the identical
// integer network.
func (q *QATLinear) ExportBuffers() [][]float32 {
	return [][]float32{q.InObs.Export(), q.ActObs.Export()}
}

// ImportBuffers implements nn.BufferLayer.
func (q *QATLinear) ImportBuffers(bufs [][]float32) error {
	if len(bufs) != 2 {
		return fmt.Errorf("quant: QATLinear expects 2 buffers, got %d", len(bufs))
	}
	if err := q.InObs.Import(bufs[0]); err != nil {
		return err
	}
	return q.ActObs.Import(bufs[1])
}

// String implements nn.Layer.
func (q *QATLinear) String() string {
	s := fmt.Sprintf("QATLinear(%d→%d", q.Lin.In, q.Lin.Out)
	if q.WithReLU {
		s += "+ReLU"
	}
	return s + ")"
}

func growBool(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	return b[:n]
}
