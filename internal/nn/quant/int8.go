package quant

import (
	"fmt"

	"repro/internal/nn"
)

// Int8Layer is one fused integer layer: int8 weights, int32 bias in the
// accumulator scale, and a fixed-point requantization to the next layer's
// int8 activation grid. The final layer of a network skips requantization
// and instead dequantizes its accumulator to a float logit.
type Int8Layer struct {
	In, Out int
	W       []int8 // Out×In row-major
	Bias    []int32
	ReLU    bool

	InZero   int32   // zero point of the incoming activations
	OutZero  int32   // zero point of the outgoing activations
	M0       int32   // requant multiplier mantissa (per-tensor mode)
	Shift    uint    // requant multiplier shift (per-tensor mode)
	DeqScale float32 // s_in·s_w, for final-layer logit dequantization
	Final    bool

	// Per-channel mode: when PerChannel is true, each output row o has its
	// own weight scale, so requantization (or final dequantization) uses
	// the per-row entries below instead of M0/Shift/DeqScale.
	PerChannel bool
	M0s        []int32
	Shifts     []uint
	DeqScales  []float32
}

// Int8Net is a fully integer inference network for a single-output model.
type Int8Net struct {
	Input  QParams // quantization of the float input features
	Layers []Int8Layer

	// biasAdj caches the zero-point-folded biases used by the batched GEMM
	// path (see gemm.go). Populated by Prepare; nil means fold per call.
	biasAdj [][]int64
}

// Convert turns a QAT-trained network (a Sequential of *QATLinear built by
// FuseForQuant, with observers populated by training) into an integer
// network. The final QATLinear becomes a logit-producing layer with no
// activation requantization.
func Convert(net *nn.Sequential) (*Int8Net, error) {
	if len(net.Layers) == 0 {
		return nil, fmt.Errorf("quant: empty network")
	}
	out := &Int8Net{}
	var inQP QParams
	for i, l := range net.Layers {
		q, ok := l.(*QATLinear)
		if !ok {
			return nil, fmt.Errorf("quant: layer %d is %s, want QATLinear", i, l)
		}
		if i == 0 {
			if !q.InObs.Ready() {
				return nil, fmt.Errorf("quant: input observer never saw data; run QAT first")
			}
			inQP = q.InObs.QParams()
			out.Input = inQP
		}
		il := Int8Layer{
			In: q.Lin.In, Out: q.Lin.Out,
			W:          make([]int8, len(q.Lin.Weight.W)),
			Bias:       make([]int32, len(q.Lin.Bias.W)),
			ReLU:       q.WithReLU,
			InZero:     inQP.Zero,
			PerChannel: q.PerChannel,
			Final:      i == len(net.Layers)-1,
		}
		var actQP QParams
		if !il.Final {
			if !q.ActObs.Ready() {
				return nil, fmt.Errorf("quant: layer %d activation observer never saw data", i)
			}
			actQP = q.ActObs.QParams()
			il.OutZero = actQP.Zero
		}
		if q.PerChannel {
			il.M0s = make([]int32, il.Out)
			il.Shifts = make([]uint, il.Out)
			il.DeqScales = make([]float32, il.Out)
			for o := 0; o < il.Out; o++ {
				row := q.Lin.Weight.W[o*il.In : (o+1)*il.In]
				wp := Symmetric(maxAbs(row))
				for j, w := range row {
					il.W[o*il.In+j] = wp.Quantize(w)
				}
				accScale := inQP.Scale * wp.Scale
				il.Bias[o] = int32(roundf(q.Lin.Bias.W[o] / accScale))
				il.DeqScales[o] = accScale
				if !il.Final {
					il.M0s[o], il.Shifts[o] = requantMultiplier(float64(accScale) / float64(actQP.Scale))
				}
			}
		} else {
			wp := Symmetric(maxAbs(q.Lin.Weight.W))
			for j, w := range q.Lin.Weight.W {
				il.W[j] = wp.Quantize(w)
			}
			accScale := inQP.Scale * wp.Scale
			il.DeqScale = accScale
			for j, b := range q.Lin.Bias.W {
				il.Bias[j] = int32(roundf(b / accScale))
			}
			if !il.Final {
				il.M0, il.Shift = requantMultiplier(float64(accScale) / float64(actQP.Scale))
			}
		}
		if !il.Final {
			inQP = actQP
		}
		out.Layers = append(out.Layers, il)
	}
	out.Prepare()
	return out, nil
}

func roundf(x float32) float32 {
	if x >= 0 {
		return float32(int64(x + 0.5))
	}
	return float32(int64(x - 0.5))
}

// Logit runs integer inference on one feature vector and returns the float
// logit (pre-sigmoid). Apply a threshold in logit space to classify, as the
// paper's FPGA deployment does.
func (n *Int8Net) Logit(features []float32) float32 {
	if len(n.Layers) == 0 {
		panic("quant: empty Int8Net")
	}
	if len(features) != n.Layers[0].In {
		panic(fmt.Sprintf("quant: Int8Net expects %d features, got %d", n.Layers[0].In, len(features)))
	}
	x := make([]int8, len(features))
	for i, f := range features {
		x[i] = n.Input.Quantize(f)
	}
	var logit float32
	for li := range n.Layers {
		l := &n.Layers[li]
		y := make([]int8, l.Out)
		for o := 0; o < l.Out; o++ {
			acc := int64(l.Bias[o])
			wr := l.W[o*l.In : (o+1)*l.In]
			for i, xi := range x {
				acc += int64(int32(xi)-l.InZero) * int64(wr[i])
			}
			if l.Final {
				if l.PerChannel {
					logit = float32(acc) * l.DeqScales[o]
				} else {
					logit = float32(acc) * l.DeqScale
				}
				continue
			}
			var q int8
			if l.PerChannel {
				q = requantize(acc, l.M0s[o], l.Shifts[o], l.OutZero)
			} else {
				q = requantize(acc, l.M0, l.Shift, l.OutZero)
			}
			if l.ReLU && int32(q) < l.OutZero {
				q = clampInt8(l.OutZero)
			}
			y[o] = q
		}
		if l.Final {
			if l.Out != 1 {
				panic("quant: final layer must have a single output")
			}
			return logit
		}
		x = y
	}
	return logit
}

// Prob runs integer inference and applies the float sigmoid, for
// comparisons against the FP32 model. The deployed path uses Logit with a
// pre-computed logit-domain threshold instead.
func (n *Int8Net) Prob(features []float32) float32 {
	return nn.Sigmoid(n.Logit(features))
}

// NumWeightBytes returns the weight storage in bytes (int8 per weight),
// for the resource comparison against FP32 (4 bytes per weight).
func (n *Int8Net) NumWeightBytes() int {
	total := 0
	for _, l := range n.Layers {
		total += len(l.W) + 4*len(l.Bias)
	}
	return total
}
