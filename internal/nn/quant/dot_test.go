package quant

import (
	"testing"

	"repro/internal/xrand"
)

// TestDotInt8MatchesGeneric differential-tests the active dotInt8 (the
// SIMD kernel on amd64) against the portable scalar reference across
// lengths that hit every lane/tail combination.
func TestDotInt8MatchesGeneric(t *testing.T) {
	rng := xrand.New(51)
	for _, n := range []int{0, 1, 3, 7, 8, 13, 15, 16, 17, 31, 32, 64, 255, 256, 257} {
		for trial := 0; trial < 8; trial++ {
			x := make([]int8, n)
			w := make([]int8, n)
			for i := range x {
				x[i] = int8(rng.Uint64())
				w[i] = int8(rng.Uint64())
			}
			if got, want := dotInt8(x, w), dotInt8Generic(x, w); got != want {
				t.Fatalf("n=%d trial %d: dotInt8 = %d, generic = %d", n, trial, got, want)
			}
		}
	}

	// Extremes: -128·-128 accumulated across a full layer width.
	n := 256
	lo := make([]int8, n)
	for i := range lo {
		lo[i] = -128
	}
	if got, want := dotInt8(lo, lo), int64(n)*128*128; got != want {
		t.Fatalf("all -128: dotInt8 = %d, want %d", got, want)
	}
}

// TestDotInt8NoOverread: the kernel must read only len(x) elements of w
// even when w's backing array is longer.
func TestDotInt8NoOverread(t *testing.T) {
	back := make([]int8, 64)
	for i := range back {
		back[i] = 127
	}
	x := make([]int8, 19)
	for i := range x {
		x[i] = 2
	}
	if got, want := dotInt8(x, back[:19]), int64(19*2*127); got != want {
		t.Fatalf("dotInt8 = %d, want %d", got, want)
	}
}

// FuzzDotInt8 drives the differential test from the fuzzer: any byte pair
// of equal length must produce identical sums from the SIMD and scalar
// paths.
func FuzzDotInt8(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{4, 5, 6})
	f.Add([]byte{0x80, 0x7F, 0x80, 0x7F, 0x80, 0x7F, 0x80, 0x7F, 0x80, 0x7F, 0x80, 0x7F, 0x80, 0x7F, 0x80, 0x7F, 1}, make([]byte, 17))
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		x := make([]int8, n)
		w := make([]int8, n)
		for i := 0; i < n; i++ {
			x[i] = int8(a[i])
			w[i] = int8(b[i])
		}
		if got, want := dotInt8(x, w), dotInt8Generic(x, w); got != want {
			t.Errorf("len %d: dotInt8 = %d, generic = %d", n, got, want)
		}
	})
}

func BenchmarkDotInt8(b *testing.B) {
	x := make([]int8, 256)
	w := make([]int8, 256)
	rng := xrand.New(52)
	for i := range x {
		x[i] = int8(rng.Uint64())
		w[i] = int8(rng.Uint64())
	}
	b.SetBytes(256)
	for i := 0; i < b.N; i++ {
		dotInt8(x, w)
	}
}

func BenchmarkDotInt8Generic(b *testing.B) {
	x := make([]int8, 256)
	w := make([]int8, 256)
	rng := xrand.New(53)
	for i := range x {
		x[i] = int8(rng.Uint64())
		w[i] = int8(rng.Uint64())
	}
	b.SetBytes(256)
	for i := 0; i < b.N; i++ {
		dotInt8Generic(x, w)
	}
}
