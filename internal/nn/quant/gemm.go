package quant

import (
	"fmt"

	"repro/internal/nn"
)

// This file is the batched integer inference path: one int8 GEMM per layer
// over a whole feature matrix, instead of one vector pass per row (Logit).
// Batching amortizes the per-layer requantization setup and keeps the int8
// weight matrix hot in cache across rows, which is where the INT8 model
// overtakes the FP32 network (see BenchmarkBackendBatch): the arithmetic
// per MAC is comparable, but the batched path is allocation-free per row,
// fuses ReLU into requantization, and never touches float until the final
// logit.
//
// Determinism: every operation is exact integer arithmetic, so the result
// of a row is independent of the batch it rides in and of any row-range
// sharding — batched inference is bitwise-identical to per-row Logit calls
// at any batch size and worker count.

// prepare computes the zero-point-folded biases used by the batched path:
//
//	biasAdj[o] = Bias[o] − InZero·Σᵢ W[o·In+i]
//
// so the inner GEMM loop is a plain Σ xᵢ·wᵢ over raw int8 codes with no
// per-element zero-point subtraction. The fold is exact integer algebra,
// so results are bitwise-identical to the unfolded form used by Logit.
//
// Convert calls Prepare at construction time, and models.LoadBundle calls
// it after gob decoding (gob cannot restore the unexported cache). A
// hand-built Int8Net that skips Prepare computes the fold per call instead
// (never writing the cache, so concurrent first calls stay race-free). An
// Int8Net must not be mutated after its first inference.
func (n *Int8Net) Prepare() {
	adj := make([][]int64, len(n.Layers))
	for li := range n.Layers {
		adj[li] = biasAdjusted(&n.Layers[li])
	}
	n.biasAdj = adj
}

// biasAdjusted returns the zero-point-folded bias vector of one layer.
func biasAdjusted(l *Int8Layer) []int64 {
	adj := make([]int64, l.Out)
	for o := 0; o < l.Out; o++ {
		var sw int32
		for _, w := range l.W[o*l.In : (o+1)*l.In] {
			sw += int32(w)
		}
		adj[o] = int64(l.Bias[o]) - int64(l.InZero)*int64(sw)
	}
	return adj
}

// Logits runs batched integer inference and returns one float logit per
// row of x.
func (n *Int8Net) Logits(x *nn.Tensor) []float32 {
	out := make([]float32, x.Rows)
	n.LogitsInto(x, out)
	return out
}

// LogitsInto is Logits writing into out, which must have exactly x.Rows
// slots. It is safe for concurrent use; sharded callers (the pipeline's
// parallel inference, the serving micro-batcher) get bitwise-identical
// results at any shard boundary.
func (n *Int8Net) LogitsInto(x *nn.Tensor, out []float32) {
	if len(n.Layers) == 0 {
		panic("quant: empty Int8Net")
	}
	if x.Cols != n.Layers[0].In {
		panic(fmt.Sprintf("quant: Int8Net expects %d features, got %d", n.Layers[0].In, x.Cols))
	}
	if len(out) != x.Rows {
		panic("quant: LogitsInto output length must equal x.Rows")
	}
	rows := x.Rows
	if rows == 0 {
		return
	}
	last := &n.Layers[len(n.Layers)-1]
	if !last.Final || last.Out != 1 {
		panic("quant: Int8Net final layer must be a single-output Final layer")
	}

	// One quantization pass over the input, then two ping-pong activation
	// buffers sized for the widest hidden layer.
	maxOut := 0
	for i := range n.Layers {
		if l := &n.Layers[i]; !l.Final && l.Out > maxOut {
			maxOut = l.Out
		}
	}
	xq := make([]int8, rows*x.Cols)
	for i, f := range x.Data {
		xq[i] = n.Input.Quantize(f)
	}
	var bufA, bufB []int8
	if maxOut > 0 {
		bufA = make([]int8, rows*maxOut)
		bufB = make([]int8, rows*maxOut)
	}

	cur := xq
	for li := range n.Layers {
		l := &n.Layers[li]
		var badj []int64
		if n.biasAdj != nil {
			badj = n.biasAdj[li]
		} else {
			badj = biasAdjusted(l)
		}
		if l.Final {
			w := l.W[:l.In]
			scale := l.DeqScale
			if l.PerChannel {
				scale = l.DeqScales[0]
			}
			for r := 0; r < rows; r++ {
				acc := badj[0] + dotInt8(cur[r*l.In:(r+1)*l.In], w)
				out[r] = float32(acc) * scale
			}
			return
		}
		y := bufA[:rows*l.Out]
		for r := 0; r < rows; r++ {
			xrow := cur[r*l.In : (r+1)*l.In]
			yrow := y[r*l.Out : (r+1)*l.Out]
			for o := 0; o < l.Out; o++ {
				acc := badj[o] + dotInt8(xrow, l.W[o*l.In:(o+1)*l.In])
				var q int8
				if l.PerChannel {
					q = requantize(acc, l.M0s[o], l.Shifts[o], l.OutZero)
				} else {
					q = requantize(acc, l.M0, l.Shift, l.OutZero)
				}
				if l.ReLU && int32(q) < l.OutZero {
					q = clampInt8(l.OutZero)
				}
				yrow[o] = q
			}
		}
		cur, bufA, bufB = y, bufB, bufA
	}
	panic("quant: Int8Net has no Final layer")
}

// Probs runs batched integer inference and applies the float sigmoid per
// row. Together with ProbsInto it satisfies the pipeline's BkgClassifier
// contract, so an Int8Net can be injected directly as a background
// classifier.
func (n *Int8Net) Probs(x *nn.Tensor) []float32 {
	out := make([]float32, x.Rows)
	n.ProbsInto(x, out)
	return out
}

// ProbsInto is Probs writing into a caller-owned buffer (the pipeline's
// allocation-free sharded fast path).
func (n *Int8Net) ProbsInto(x *nn.Tensor, out []float32) {
	n.LogitsInto(x, out)
	for i, v := range out {
		out[i] = nn.Sigmoid(v)
	}
}

// dotInt8Generic computes Σ x[i]·w[i] in int32 with 4-way unrolling; x and
// w must have equal length. The accumulator cannot overflow: |x·w| ≤ 128²
// and layer widths are far below 2³¹/128². It is the portable dotInt8
// implementation and the reference the SIMD kernel is differential-tested
// against (TestDotInt8MatchesGeneric, FuzzDotInt8).
func dotInt8Generic(x, w []int8) int64 {
	var s0, s1, s2, s3 int32
	n := len(x) &^ 3
	w = w[:len(x)] // eliminate bounds checks in the loop
	for i := 0; i < n; i += 4 {
		s0 += int32(x[i]) * int32(w[i])
		s1 += int32(x[i+1]) * int32(w[i+1])
		s2 += int32(x[i+2]) * int32(w[i+2])
		s3 += int32(x[i+3]) * int32(w[i+3])
	}
	for i := n; i < len(x); i++ {
		s0 += int32(x[i]) * int32(w[i])
	}
	return int64(s0 + s1 + s2 + s3)
}
