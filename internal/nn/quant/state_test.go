package quant

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/nn"
	"repro/internal/xrand"
)

// TestQATStateRoundTrip is the deployment serialization contract: a
// QAT-trained network written through nn's Save/Load must convert to an
// Int8Net with byte-identical integer parameters and bitwise-identical
// inference. Observer ranges ride in the new buffer slots; losing them
// would silently recalibrate the integer model.
func TestQATStateRoundTrip(t *testing.T) {
	net, ds := buildTrainedSwapped(t)
	fused, err := FuseForQuant(net)
	if err != nil {
		t.Fatal(err)
	}
	calibrate(fused, ds, xrand.New(9))
	// A short fake-quantized fine-tune so weights and observers both carry
	// state that differs from initialization.
	tr := &nn.Trainer{Net: fused, Loss: nn.BCEWithLogits{}, Opt: nn.NewSGD(0.01, 0.9), BatchSize: 128, MaxEpochs: 2, Patience: 10}
	tr.Fit(ds, nil, xrand.New(10))

	var buf bytes.Buffer
	if err := fused.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into an independently initialized network of the same shape.
	rng := xrand.New(42)
	blank := nn.NewSequential(
		nn.NewLinear(4, 16, rng), nn.NewBatchNorm1D(16), nn.NewReLU(),
		nn.NewLinear(16, 8, rng), nn.NewBatchNorm1D(8), nn.NewReLU(),
		nn.NewLinear(8, 1, rng),
	)
	restored, err := FuseForQuant(blank)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}

	a, err := Convert(fused)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Convert(restored)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Layers, b.Layers) {
		t.Fatal("integer layers differ after state round-trip")
	}
	if a.Input != b.Input {
		t.Fatalf("input qparams differ after round-trip: %+v vs %+v", a.Input, b.Input)
	}
	la, lb := a.Logits(ds.X), b.Logits(ds.X)
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("row %d: restored logit %v != original %v", i, lb[i], la[i])
		}
	}
}

// TestQATImportRejectsMissingBuffers: a state captured before observer
// serialization existed (no buffer slots) must fail loudly, not restore a
// silently uncalibrated network.
func TestQATImportRejectsMissingBuffers(t *testing.T) {
	net, ds := buildTrainedSwapped(t)
	fused, err := FuseForQuant(net)
	if err != nil {
		t.Fatal(err)
	}
	calibrate(fused, ds, xrand.New(9))
	st := fused.ExportState()
	st.Buffers = nil
	if err := fused.ImportState(st); err == nil {
		t.Fatal("ImportState accepted a state with no observer buffers")
	}
}
