package quant

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/xrand"
)

// calibrate runs one observer-warmup epoch over ds (PTQ calibration).
func calibrate(fused *nn.Sequential, ds *nn.Dataset, rng *xrand.RNG) {
	for _, l := range fused.Layers {
		l.(*QATLinear).Enabled = false
	}
	warm := &nn.Trainer{Net: fused, Loss: nn.BCEWithLogits{}, Opt: nn.NewSGD(0, 0), BatchSize: 128, MaxEpochs: 1, Patience: 5}
	warm.Fit(ds, nil, rng)
	for _, l := range fused.Layers {
		l.(*QATLinear).Enabled = true
	}
}

func TestPerChannelConvertAgrees(t *testing.T) {
	net, ds := buildTrainedSwapped(t)
	rng := xrand.New(11)

	fused, err := FuseForQuant(net)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range fused.Layers {
		l.(*QATLinear).PerChannel = true
	}
	calibrate(fused, ds, rng)
	int8net, err := Convert(fused)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range int8net.Layers {
		if !l.PerChannel || len(l.M0s) != l.Out || len(l.DeqScales) != l.Out {
			t.Fatal("per-channel metadata missing")
		}
	}
	probs := net.PredictProbs(ds.X)
	agree := 0
	for i := 0; i < ds.Len(); i++ {
		if (int8net.Prob(ds.X.Row(i)) > 0.5) == (probs[i] > 0.5) {
			agree++
		}
	}
	if frac := float64(agree) / float64(ds.Len()); frac < 0.93 {
		t.Errorf("per-channel INT8 agreement %.3f", frac)
	}
}

func TestPerChannelBeatsPerTensorOnSkewedWeights(t *testing.T) {
	// A single linear layer with wildly different row magnitudes: the
	// per-tensor scale crushes the small row to zero codes, per-channel
	// preserves it.
	rng := xrand.New(12)
	lin := nn.NewLinear(4, 2, rng)
	for i := 0; i < 4; i++ {
		lin.Weight.W[i] = 10 * float32(i+1)     // row 0: O(10)
		lin.Weight.W[4+i] = 0.01 * float32(i+1) // row 1: O(0.01)
	}
	lin.Bias.W[0], lin.Bias.W[1] = 0, 0

	mkNet := func(perChannel bool) *Int8Net {
		q := NewQATLinear(cloneLinear(lin), false)
		q.PerChannel = perChannel
		net := nn.NewSequential(q, NewQATLinear(nn.NewLinear(2, 1, xrand.New(1)), false))
		x := nn.NewTensor(16, 4)
		for i := range x.Data {
			x.Data[i] = float32(xrand.New(uint64(i)).Gaussian(0, 1))
		}
		calibrate(net, &nn.Dataset{X: x, Y: make([]float32, 16)}, xrand.New(13))
		n, err := Convert(net)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	perTensor := mkNet(false)
	perChannel := mkNet(true)

	// Quantized codes of the small row must be non-degenerate per-channel.
	ptRow := perTensor.Layers[0].W[4:8]
	pcRow := perChannel.Layers[0].W[4:8]
	ptNonZero, pcNonZero := 0, 0
	for i := 0; i < 4; i++ {
		if ptRow[i] != 0 {
			ptNonZero++
		}
		if pcRow[i] != 0 {
			pcNonZero++
		}
	}
	if pcNonZero != 4 {
		t.Errorf("per-channel lost small-row precision: %v", pcRow)
	}
	if ptNonZero != 0 {
		t.Logf("note: per-tensor preserved %d small-row codes (scale-dependent)", ptNonZero)
	}
	// Per-channel reconstruction error of the small row is strictly lower.
	rowErr := func(codes []int8, scale float32) float64 {
		var e float64
		for i := 0; i < 4; i++ {
			e += math.Abs(float64(float32(codes[i])*scale) - float64(0.01*float32(i+1)))
		}
		return e
	}
	// Scales: per-tensor uses max|W| over both rows; per-channel row 1 uses
	// its own max.
	ptScale := Symmetric(40).Scale
	pcScale := Symmetric(0.04).Scale
	if rowErr(pcRow, pcScale) >= rowErr(ptRow, ptScale) {
		t.Error("per-channel did not reduce small-row reconstruction error")
	}
}
