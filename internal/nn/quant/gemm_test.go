package quant

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/xrand"
)

// convertTrained builds a trained, calibrated, converted Int8Net and its
// dataset. perChannel selects per-output-row weight scales.
func convertTrained(t *testing.T, perChannel bool) (*Int8Net, *nn.Dataset) {
	t.Helper()
	net, ds := buildTrainedSwapped(t)
	fused, err := FuseForQuant(net)
	if err != nil {
		t.Fatal(err)
	}
	if perChannel {
		for _, l := range fused.Layers {
			l.(*QATLinear).PerChannel = true
		}
	}
	calibrate(fused, ds, xrand.New(11))
	int8net, err := Convert(fused)
	if err != nil {
		t.Fatal(err)
	}
	return int8net, ds
}

// TestBatchedMatchesPerRow is the backend determinism contract: the batched
// GEMM must be bitwise-identical to per-row Logit calls at every batch
// size, because the zero-point fold is exact integer algebra.
func TestBatchedMatchesPerRow(t *testing.T) {
	for _, perChannel := range []bool{false, true} {
		name := "per-tensor"
		if perChannel {
			name = "per-channel"
		}
		t.Run(name, func(t *testing.T) {
			int8net, ds := convertTrained(t, perChannel)
			for _, batch := range []int{1, 3, 8, 64} {
				x := nn.NewTensor(batch, ds.X.Cols)
				for r := 0; r < batch; r++ {
					copy(x.Row(r), ds.X.Row(r*7%ds.Len()))
				}
				logits := int8net.Logits(x)
				probs := int8net.Probs(x)
				for r := 0; r < batch; r++ {
					if want := int8net.Logit(x.Row(r)); logits[r] != want {
						t.Fatalf("batch %d row %d: batched logit %v != per-row %v", batch, r, logits[r], want)
					}
					if want := int8net.Prob(x.Row(r)); probs[r] != want {
						t.Fatalf("batch %d row %d: batched prob %v != per-row %v", batch, r, probs[r], want)
					}
				}
			}
		})
	}
}

// TestBatchedShardInvariance checks that splitting a batch at any boundary
// produces bitwise-identical results — the property the pipeline's sharded
// parallel inference and the serving micro-batcher rely on.
func TestBatchedShardInvariance(t *testing.T) {
	int8net, ds := convertTrained(t, false)
	n := 32
	x := nn.NewTensor(n, ds.X.Cols)
	for r := 0; r < n; r++ {
		copy(x.Row(r), ds.X.Row(r%ds.Len()))
	}
	whole := int8net.Logits(x)
	for _, cut := range []int{1, 5, 16, 31} {
		lo := nn.NewTensor(cut, x.Cols)
		hi := nn.NewTensor(n-cut, x.Cols)
		copy(lo.Data, x.Data[:cut*x.Cols])
		copy(hi.Data, x.Data[cut*x.Cols:])
		got := append(int8net.Logits(lo), int8net.Logits(hi)...)
		for i := range whole {
			if got[i] != whole[i] {
				t.Fatalf("cut %d row %d: sharded %v != whole %v", cut, i, got[i], whole[i])
			}
		}
	}
}

// TestBatchedUnprepared: a net without the Prepare cache (e.g. hand-built)
// must compute the same results and must not write the cache on the fly.
func TestBatchedUnprepared(t *testing.T) {
	int8net, ds := convertTrained(t, false)
	x := nn.NewTensor(4, ds.X.Cols)
	for r := 0; r < 4; r++ {
		copy(x.Row(r), ds.X.Row(r))
	}
	want := int8net.Logits(x)

	cold := *int8net
	cold.biasAdj = nil
	got := cold.Logits(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: unprepared %v != prepared %v", i, got[i], want[i])
		}
	}
	if cold.biasAdj != nil {
		t.Error("inference wrote the bias cache; Prepare must be the only writer")
	}
}

func TestLogitsIntoValidation(t *testing.T) {
	int8net, ds := convertTrained(t, false)
	in := ds.X.Cols

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("empty net", func() {
		var empty Int8Net
		empty.LogitsInto(nn.NewTensor(1, in), make([]float32, 1))
	})
	mustPanic("wrong feature count", func() {
		int8net.LogitsInto(nn.NewTensor(1, in+1), make([]float32, 1))
	})
	mustPanic("short output", func() {
		int8net.LogitsInto(nn.NewTensor(2, in), make([]float32, 1))
	})

	// Zero rows is a no-op, not an error.
	int8net.LogitsInto(nn.NewTensor(0, in), nil)
}
