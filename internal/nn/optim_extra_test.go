package nn

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)² by feeding the analytic gradient; Adam must converge
	// near 3 quickly.
	p := &Param{W: []float32{0}, G: []float32{0}}
	o := NewAdam(0.1)
	for i := 0; i < 300; i++ {
		p.G[0] = 2 * (p.W[0] - 3)
		o.Step([]*Param{p})
	}
	if math.Abs(float64(p.W[0])-3) > 0.05 {
		t.Errorf("Adam converged to %v, want 3", p.W[0])
	}
}

func TestAdamTrainsFasterThanPlainSGDHere(t *testing.T) {
	if testing.Short() {
		t.Skip("trains networks")
	}
	build := func() (*Sequential, *Dataset) {
		rng := xrand.New(7)
		n := 400
		x := NewTensor(n, 2)
		y := make([]float32, n)
		for i := 0; i < n; i++ {
			a := float32(rng.Gaussian(0, 1))
			b := float32(rng.Gaussian(0, 1))
			x.Set(i, 0, a)
			x.Set(i, 1, b)
			if a*b > 0 { // XOR-like: needs the hidden layer
				y[i] = 1
			}
		}
		net := NewSequential(NewLinear(2, 16, rng), NewReLU(), NewLinear(16, 1, rng))
		return net, &Dataset{X: x, Y: y}
	}
	run := func(opt Optimizer) float64 {
		net, ds := build()
		tr := &Trainer{Net: net, Loss: BCEWithLogits{}, Opt: opt, BatchSize: 32, MaxEpochs: 10, Patience: 100}
		// Rebind the optimizer's params maps to this net by just using it.
		h := tr.Fit(ds, nil, xrand.New(9))
		return h.TrainLoss[len(h.TrainLoss)-1]
	}
	sgdLoss := run(NewSGD(0.01, 0)) // plain SGD, no momentum
	adamLoss := run(NewAdam(0.01))
	if adamLoss >= sgdLoss {
		t.Errorf("Adam (%.4f) not faster than momentum-free SGD (%.4f) in 10 epochs", adamLoss, sgdLoss)
	}
}

func TestSchedules(t *testing.T) {
	if (ConstantSchedule{}).Factor(17) != 1 {
		t.Error("constant schedule not 1")
	}
	s := StepSchedule{Every: 10, Gamma: 0.5}
	if s.Factor(0) != 1 || s.Factor(9) != 1 {
		t.Error("step schedule decays too early")
	}
	if s.Factor(10) != 0.5 || s.Factor(25) != 0.25 {
		t.Errorf("step schedule factors wrong: %v %v", s.Factor(10), s.Factor(25))
	}
	c := CosineSchedule{Span: 100, MinFactor: 0.1}
	if c.Factor(0) != 1 {
		t.Errorf("cosine at 0 = %v", c.Factor(0))
	}
	if math.Abs(c.Factor(100)-0.1) > 1e-12 || math.Abs(c.Factor(500)-0.1) > 1e-12 {
		t.Error("cosine does not hold at MinFactor")
	}
	if mid := c.Factor(50); math.Abs(mid-0.55) > 1e-12 {
		t.Errorf("cosine midpoint = %v, want 0.55", mid)
	}
	// Monotone non-increasing over the span.
	prev := 2.0
	for e := 0; e <= 100; e += 5 {
		f := c.Factor(e)
		if f > prev {
			t.Fatal("cosine schedule not monotone")
		}
		prev = f
	}
}

func TestScheduleAppliedByTrainer(t *testing.T) {
	rng := xrand.New(11)
	net := NewSequential(NewLinear(2, 1, rng))
	x := randTensor(32, 2, rng)
	y := randTargets(32, rng)
	opt := NewSGD(1.0, 0)
	tr := &Trainer{
		Net: net, Loss: MSE{}, Opt: opt, BatchSize: 8, MaxEpochs: 3,
		Patience: 100, Schedule: StepSchedule{Every: 1, Gamma: 0.1},
	}
	tr.Fit(&Dataset{X: x, Y: y}, nil, rng)
	// After 3 epochs the last applied factor is 0.1² (epoch index 2).
	if math.Abs(opt.LearningRate()-0.01) > 1e-12 {
		t.Errorf("final LR %v, want 0.01", opt.LearningRate())
	}
}

func TestDropout(t *testing.T) {
	d := NewDropout(0.5, 42)
	x := NewTensor(10, 100)
	x.Fill(1)
	// Inference: identity.
	if y := d.Forward(x, false); y != x {
		t.Error("inference dropout not a pass-through")
	}
	// Training: ~half zeroed, survivors scaled by 2.
	y := d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 400 || zeros > 600 {
		t.Errorf("dropped %d of 1000, want ~500", zeros)
	}
	// Backward mirrors the mask.
	dout := NewTensor(10, 100)
	dout.Fill(1)
	dx := d.Backward(dout)
	for i := range dx.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("backward mask inconsistent with forward")
		}
	}
	if d.String() != "Dropout" || d.Params() != nil {
		t.Error("metadata wrong")
	}
	// Invalid probability panics.
	defer func() {
		if recover() == nil {
			t.Error("NewDropout(1) did not panic")
		}
	}()
	NewDropout(1, 0)
}

func TestDropoutGradientProperty(t *testing.T) {
	// With dropout active the network is still a valid piecewise-linear
	// function of its parameters for a fixed mask. Fixing the mask requires
	// replaying the same stream, so rebuild the layer per evaluation. We
	// check only that training with dropout still reduces loss.
	rng := xrand.New(13)
	n := 300
	x := randTensor(n, 4, rng)
	y := make([]float32, n)
	for i := 0; i < n; i++ {
		y[i] = x.At(i, 0) + 0.5*x.At(i, 1)
	}
	net := NewSequential(NewLinear(4, 16, rng), NewReLU(), NewDropout(0.2, 99), NewLinear(16, 1, rng))
	tr := &Trainer{Net: net, Loss: MSE{}, Opt: NewSGD(0.05, 0.9), BatchSize: 32, MaxEpochs: 15, Patience: 100}
	h := tr.Fit(&Dataset{X: x, Y: y}, nil, rng)
	if h.TrainLoss[len(h.TrainLoss)-1] >= h.TrainLoss[0]*0.5 {
		t.Errorf("dropout net failed to train: %v → %v", h.TrainLoss[0], h.TrainLoss[len(h.TrainLoss)-1])
	}
}
