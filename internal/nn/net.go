package nn

import "strings"

// Sequential chains layers; the output of each feeds the next.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a network from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs the network. train toggles training-time behaviour in every
// layer.
func (s *Sequential) Forward(x *Tensor, train bool) *Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates dout through the network in reverse, accumulating
// parameter gradients, and returns the gradient w.r.t. the input.
func (s *Sequential) Backward(dout *Tensor) *Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	return dout
}

// Params returns all learnable parameters in layer order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears every parameter gradient.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		for i := range p.G {
			p.G[i] = 0
		}
	}
}

// NumParams returns the total learnable parameter count.
func (s *Sequential) NumParams() int {
	n := 0
	for _, p := range s.Params() {
		n += len(p.W)
	}
	return n
}

// String prints the architecture, one layer per line.
func (s *Sequential) String() string {
	var b strings.Builder
	b.WriteString("Sequential[")
	for i, l := range s.Layers {
		if i > 0 {
			b.WriteString(" → ")
		}
		b.WriteString(l.String())
	}
	b.WriteString("]")
	return b.String()
}

// Predict runs inference (eval mode) and returns the raw outputs.
func (s *Sequential) Predict(x *Tensor) *Tensor { return s.Forward(x, false) }

// PredictProbs runs inference and applies a sigmoid to a single-output
// network, returning one probability per row.
func (s *Sequential) PredictProbs(x *Tensor) []float32 {
	out := make([]float32, x.Rows)
	s.PredictProbsInto(x, out)
	return out
}

// PredictProbsInto is PredictProbs writing into out, which must have
// exactly x.Rows slots. Sharded inference paths use it to write each
// shard's probabilities straight into its slice of the result, avoiding a
// per-shard allocation and copy.
func (s *Sequential) PredictProbsInto(x *Tensor, out []float32) {
	y := s.Predict(x)
	if y.Cols != 1 {
		panic("nn: PredictProbs requires a single-output network")
	}
	if len(out) != y.Rows {
		panic("nn: PredictProbsInto output length must equal x.Rows")
	}
	for i := range out {
		out[i] = Sigmoid(y.Data[i])
	}
}
