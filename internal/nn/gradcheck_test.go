package nn

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// numericalGradCheck compares the analytic parameter gradients of net under
// loss against central finite differences. Returns the max relative error.
func numericalGradCheck(t *testing.T, net *Sequential, loss Loss, x *Tensor, y []float32) float64 {
	t.Helper()
	// Analytic pass. BatchNorm's batch statistics make the loss a function
	// of the whole batch; finite differences below recompute the full
	// forward, so the comparison is consistent.
	net.ZeroGrad()
	pred := net.Forward(x, true)
	dpred := NewTensor(pred.Rows, 1)
	loss.Eval(pred, y, dpred)
	net.Backward(dpred)

	analytic := map[*Param][]float32{}
	for _, p := range net.Params() {
		analytic[p] = append([]float32(nil), p.G...)
	}

	evalLoss := func() float64 {
		pred := net.Forward(x, true)
		dp := NewTensor(pred.Rows, 1)
		return loss.Eval(pred, y, dp)
	}

	const h = 1e-2 // float32 arithmetic: coarse steps beat roundoff
	bad, total := 0, 0
	for _, p := range net.Params() {
		for i := range p.W {
			orig := p.W[i]
			p.W[i] = orig + h
			up := evalLoss()
			p.W[i] = orig - h
			down := evalLoss()
			p.W[i] = orig
			numeric := (up - down) / (2 * h)
			a := float64(analytic[p][i])
			denom := math.Max(math.Abs(numeric)+math.Abs(a), 1e-4)
			total++
			if math.Abs(numeric-a)/denom > 0.05 {
				bad++
			}
		}
	}
	// A systematic backward bug corrupts most coordinates; finite
	// differences across a ReLU kink corrupt only the few whose
	// perturbation flips an activation. Score the fraction.
	return float64(bad) / float64(total)
}

func TestGradientLinear(t *testing.T) {
	rng := xrand.New(1)
	net := NewSequential(NewLinear(4, 3, rng), NewLinear(3, 1, rng))
	x := randTensor(6, 4, rng)
	y := randTargets(6, rng)
	if frac := numericalGradCheck(t, net, MSE{}, x, y); frac > 0 {
		t.Errorf("linear gradient check: %.1f%% coordinates off", 100*frac)
	}
}

func TestGradientReLU(t *testing.T) {
	rng := xrand.New(2)
	net := NewSequential(NewLinear(4, 6, rng), NewReLU(), NewLinear(6, 1, rng))
	x := randTensor(8, 4, rng)
	y := randTargets(8, rng)
	if frac := numericalGradCheck(t, net, MSE{}, x, y); frac > 0.05 {
		t.Errorf("relu gradient check: %.1f%% coordinates off", 100*frac)
	}
}

func TestGradientBatchNorm(t *testing.T) {
	rng := xrand.New(3)
	net := NewSequential(NewBatchNorm1D(4), NewLinear(4, 1, rng))
	x := randTensor(8, 4, rng)
	y := randTargets(8, rng)
	if frac := numericalGradCheck(t, net, MSE{}, x, y); frac > 0.02 {
		t.Errorf("batchnorm gradient check: %.1f%% coordinates off", 100*frac)
	}
}

func TestGradientPaperBlockWithBCE(t *testing.T) {
	rng := xrand.New(4)
	// A miniature of the paper's block structure: BN → FC → ReLU → BN → FC.
	net := NewSequential(
		NewBatchNorm1D(5),
		NewLinear(5, 7, rng),
		NewReLU(),
		NewBatchNorm1D(7),
		NewLinear(7, 1, rng),
	)
	x := randTensor(10, 5, rng)
	y := make([]float32, 10)
	for i := range y {
		if rng.Bool(0.5) {
			y[i] = 1
		}
	}
	if frac := numericalGradCheck(t, net, BCEWithLogits{}, x, y); frac > 0.06 {
		t.Errorf("paper-block gradient check: %.1f%% coordinates off", 100*frac)
	}
}

func randTensor(rows, cols int, rng *xrand.RNG) *Tensor {
	x := NewTensor(rows, cols)
	for i := range x.Data {
		x.Data[i] = float32(rng.Gaussian(0, 1))
	}
	return x
}

func randTargets(n int, rng *xrand.RNG) []float32 {
	y := make([]float32, n)
	for i := range y {
		y[i] = float32(rng.Gaussian(0, 1))
	}
	return y
}
