package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// State is a serializable snapshot of a network: every learnable parameter
// plus non-learnable buffers (batch-norm running statistics, quantization
// observer ranges), keyed by position so it can be restored into a freshly
// constructed network of the same architecture.
type State struct {
	Params  [][]float32
	Buffers [][]float32
}

// BufferLayer is implemented by layers that carry non-learnable state which
// must survive serialization: BatchNorm1D's running statistics, and the
// quant package's QATLinear observer ranges. Buffers are matched by
// position, like params, so the buffer count and order of each layer must
// be stable across export and import. BatchNorm1D exports [RunMean, RunVar]
// — the order the pre-interface serializer used — so states written by
// older builds restore unchanged.
type BufferLayer interface {
	// NumBuffers returns how many buffer slices the layer exports; it must
	// match len(ExportBuffers()) and the slice count ImportBuffers expects.
	NumBuffers() int
	// ExportBuffers returns copies of the layer's buffers.
	ExportBuffers() [][]float32
	// ImportBuffers restores buffers captured from an identically shaped
	// layer; it receives exactly NumBuffers slices.
	ImportBuffers(bufs [][]float32) error
}

// ExportState captures the network's full state.
func (s *Sequential) ExportState() State {
	var st State
	for _, p := range s.Params() {
		st.Params = append(st.Params, append([]float32(nil), p.W...))
	}
	for _, l := range s.Layers {
		if bl, ok := l.(BufferLayer); ok {
			st.Buffers = append(st.Buffers, bl.ExportBuffers()...)
		}
	}
	return st
}

// ImportState restores a snapshot captured from an identically shaped
// network.
func (s *Sequential) ImportState(st State) error {
	ps := s.Params()
	if len(ps) != len(st.Params) {
		return fmt.Errorf("nn: state has %d params, network has %d", len(st.Params), len(ps))
	}
	for i, p := range ps {
		if len(p.W) != len(st.Params[i]) {
			return fmt.Errorf("nn: param %d length mismatch: %d vs %d", i, len(st.Params[i]), len(p.W))
		}
		copy(p.W, st.Params[i])
	}
	bi := 0
	for li, l := range s.Layers {
		bl, ok := l.(BufferLayer)
		if !ok {
			continue
		}
		n := bl.NumBuffers()
		if bi+n > len(st.Buffers) {
			return fmt.Errorf("nn: state missing buffers for layer %d (%s)", li, l)
		}
		if err := bl.ImportBuffers(st.Buffers[bi : bi+n]); err != nil {
			return fmt.Errorf("nn: layer %d (%s): %w", li, l, err)
		}
		bi += n
	}
	if bi != len(st.Buffers) {
		return fmt.Errorf("nn: state has %d extra buffers", len(st.Buffers)-bi)
	}
	return nil
}

// Save writes the network state to w with gob encoding.
func (s *Sequential) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(s.ExportState())
}

// Load reads a state written by Save into the network.
func (s *Sequential) Load(r io.Reader) error {
	var st State
	if err := gob.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("nn: decode state: %w", err)
	}
	return s.ImportState(st)
}

// SaveFile writes the network state to path.
func (s *Sequential) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return s.Save(f)
}

// LoadFile reads a state written by SaveFile.
func (s *Sequential) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}
