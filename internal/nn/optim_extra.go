package nn

import "math"

// Optimizer updates parameters from their accumulated gradients. SGD and
// Adam implement it; the Trainer accepts either.
type Optimizer interface {
	// Step applies one update; gradients are not cleared.
	Step(params []*Param)
	// LearningRate returns the current rate; SetLearningRate changes it
	// (used by LR schedules).
	LearningRate() float64
	SetLearningRate(lr float64)
}

// Adam is the Adam optimizer (Kingma & Ba 2015). The paper trains with SGD;
// Adam is provided for the hyperparameter-search and quantization
// experiments, where a faster-converging optimizer shortens sweeps.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	m, v    map[*Param][]float32
	stepNum int
}

// NewAdam constructs Adam with the canonical defaults β₁=0.9, β₂=0.999.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param][]float32), v: make(map[*Param][]float32),
	}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.stepNum++
	b1 := float32(o.Beta1)
	b2 := float32(o.Beta2)
	// Bias correction factors.
	c1 := 1 - math.Pow(o.Beta1, float64(o.stepNum))
	c2 := 1 - math.Pow(o.Beta2, float64(o.stepNum))
	lr := float32(o.LR * math.Sqrt(c2) / c1)
	eps := float32(o.Eps)
	for _, p := range params {
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = make([]float32, len(p.W))
			v = make([]float32, len(p.W))
			o.m[p] = m
			o.v[p] = v
		}
		for i := range p.W {
			g := p.G[i]
			m[i] = b1*m[i] + (1-b1)*g
			v[i] = b2*v[i] + (1-b2)*g*g
			p.W[i] -= lr * m[i] / (sqrtf(v[i]) + eps)
		}
	}
}

// LearningRate implements Optimizer.
func (o *Adam) LearningRate() float64 { return o.LR }

// SetLearningRate implements Optimizer.
func (o *Adam) SetLearningRate(lr float64) { o.LR = lr }

func sqrtf(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// Schedule maps an epoch index to a learning-rate multiplier.
type Schedule interface {
	// Factor returns the LR multiplier for the given 0-based epoch.
	Factor(epoch int) float64
}

// ConstantSchedule keeps the base learning rate.
type ConstantSchedule struct{}

// Factor implements Schedule.
func (ConstantSchedule) Factor(int) float64 { return 1 }

// StepSchedule multiplies the rate by Gamma every Every epochs.
type StepSchedule struct {
	Every int
	Gamma float64
}

// Factor implements Schedule.
func (s StepSchedule) Factor(epoch int) float64 {
	if s.Every <= 0 {
		return 1
	}
	return math.Pow(s.Gamma, float64(epoch/s.Every))
}

// CosineSchedule anneals the rate to MinFactor over Span epochs following a
// half cosine, then holds.
type CosineSchedule struct {
	Span      int
	MinFactor float64
}

// Factor implements Schedule.
func (s CosineSchedule) Factor(epoch int) float64 {
	if s.Span <= 0 {
		return 1
	}
	t := float64(epoch) / float64(s.Span)
	if t > 1 {
		t = 1
	}
	return s.MinFactor + (1-s.MinFactor)*(1+math.Cos(math.Pi*t))/2
}

// Dropout randomly zeroes each activation with probability P during
// training, scaling survivors by 1/(1−P) (inverted dropout); inference is a
// pass-through. The unit uses its own deterministic stream so a fixed seed
// reproduces training exactly.
type Dropout struct {
	P    float64
	seed uint64
	n    uint64
	mask []bool
}

// NewDropout creates a dropout layer; seed fixes its mask stream.
func NewDropout(p float64, seed uint64) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0, 1)")
	}
	return &Dropout{P: p, seed: seed}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *Tensor, train bool) *Tensor {
	if !train || d.P == 0 {
		return x
	}
	y := NewTensor(x.Rows, x.Cols)
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]bool, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data {
		if d.rand() < d.P {
			d.mask[i] = false
		} else {
			d.mask[i] = true
			y.Data[i] = v * scale
		}
	}
	return y
}

// rand is a SplitMix64-based uniform in [0,1).
func (d *Dropout) rand() float64 {
	d.n++
	z := d.seed + d.n*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// Backward implements Layer.
func (d *Dropout) Backward(dout *Tensor) *Tensor {
	if d.P == 0 {
		return dout
	}
	dx := NewTensor(dout.Rows, dout.Cols)
	scale := float32(1 / (1 - d.P))
	for i, g := range dout.Data {
		if d.mask[i] {
			dx.Data[i] = g * scale
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// String implements Layer.
func (d *Dropout) String() string { return "Dropout" }
