// Package par is the shared worker-pool substrate for the repository's hot
// paths (localization grid search, pipeline NN sharding, campaign trial
// fan-out). It exists so every parallel site follows the same discipline:
//
//   - bounded goroutines: a Pool never runs more than Workers goroutines at
//     once, so nested parallel stages cannot oversubscribe the machine;
//   - chunked index ranges: work over [0, n) is split into one contiguous
//     subrange per shard with a FIXED shard→subrange mapping (shard s always
//     owns the same indices for a given n and worker count), so results can
//     be written into preallocated slots without locks;
//   - deterministic reduction: MapChunks returns per-shard results in shard
//     order, so callers reduce in index order and get bitwise-identical
//     results regardless of goroutine scheduling;
//   - context cancellation: shards that have not started when the context is
//     cancelled never run, and the error is reported to the caller;
//   - panic propagation: a panic in any shard is re-raised in the calling
//     goroutine instead of crashing the process from a detached goroutine.
//
// Determinism is a hard requirement of the reproduction (tier-1 tests pin
// exact localization outputs per seed), which is why the package offers
// only fixed-assignment data parallelism and no work stealing: a stealing
// scheduler would make the shard→index mapping depend on timing.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide parallelism default used when a Pool
// is constructed with workers <= 0. Zero means runtime.GOMAXPROCS(0).
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker count used by
// NewPool(0). n <= 0 restores the GOMAXPROCS default. Command-line tools
// wire their -parallelism flag here so library code picks it up without
// plumbing a value through every call site.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers reports the current process-wide default parallelism.
func DefaultWorkers() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Pool is a bounded parallelism budget. The zero value and nil are both
// valid and mean "the process default": all methods work on a nil *Pool.
// A Pool is cheap (no resident goroutines — workers are spawned per call
// and bounded by Workers()), so constructing one per pipeline run is fine.
type Pool struct {
	workers int
}

// NewPool returns a pool bounded to the given number of concurrent
// goroutines. workers <= 0 means DefaultWorkers().
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = 0
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's concurrency bound (always >= 1).
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return DefaultWorkers()
	}
	return p.workers
}

// Shards reports how many shards ForRange/MapChunks will use for n items:
// min(Workers, n), at least 1 for n > 0.
func (p *Pool) Shards(n int) int {
	s := p.Workers()
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// shardRange returns the fixed contiguous subrange [lo, hi) owned by shard
// s when n items are split into shards chunks.
func shardRange(n, shards, s int) (lo, hi int) {
	chunk := (n + shards - 1) / shards
	lo = s * chunk
	hi = lo + chunk
	if hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	return lo, hi
}

// panicValue carries a recovered panic from a shard goroutine back to the
// calling goroutine.
type panicValue struct {
	shard int
	value any
}

// ForRange calls fn once per shard, concurrently, with the shard index and
// the fixed subrange [lo, hi) of [0, n) it owns. It blocks until every
// started shard returns. If ctx is cancelled, shards that have not started
// are skipped and ctx.Err() is returned (shards already running are not
// interrupted; long-running fn bodies should poll ctx themselves). A panic
// inside fn is re-raised in the caller after all shards settle.
//
// fn must not assume shards run in any order, but may assume no two calls
// overlap in index range, so writing to disjoint slots of a shared slice
// needs no locking.
func (p *Pool) ForRange(ctx context.Context, n int, fn func(shard, lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	shards := p.Shards(n)
	if shards == 1 {
		// Serial fast path: no goroutine, panics propagate natively.
		if err := ctx.Err(); err != nil {
			return err
		}
		fn(0, 0, n)
		return nil
	}

	var (
		wg       sync.WaitGroup
		panicked atomic.Pointer[panicValue]
	)
	for s := 0; s < shards; s++ {
		lo, hi := shardRange(n, shards, s)
		if lo >= hi {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, &panicValue{shard: s, value: r})
				}
			}()
			if ctx.Err() != nil {
				return
			}
			fn(s, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
	if pv := panicked.Load(); pv != nil {
		panic(fmt.Sprintf("par: shard %d panicked: %v", pv.shard, pv.value))
	}
	return ctx.Err()
}

// ForEach runs fn(i) for every i in [0, n) across the pool's shards. It is
// ForRange with the inner index loop written for the caller.
func (p *Pool) ForEach(ctx context.Context, n int, fn func(i int)) error {
	return p.ForRange(ctx, n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// MapChunks evaluates fn over each shard's subrange of [0, n) and returns
// the per-shard results in shard order (index order). Reducing the returned
// slice left-to-right is therefore deterministic: the association of work to
// shards and the order of results are both fixed functions of (n, workers),
// independent of goroutine scheduling. On cancellation the slice holds the
// zero value for shards that never ran, alongside a non-nil error.
func MapChunks[T any](ctx context.Context, p *Pool, n int, fn func(lo, hi int) T) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	out := make([]T, p.Shards(n))
	err := p.ForRange(ctx, n, func(shard, lo, hi int) {
		out[shard] = fn(lo, hi)
	})
	return out, err
}
