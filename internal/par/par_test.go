package par

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolSizing(t *testing.T) {
	if got := NewPool(3).Workers(); got != 3 {
		t.Errorf("NewPool(3).Workers() = %d, want 3", got)
	}
	if got := NewPool(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("NewPool(0).Workers() = %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	var nilPool *Pool
	if got := nilPool.Workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("nil pool Workers() = %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}

	SetDefaultWorkers(5)
	defer SetDefaultWorkers(0)
	if got := NewPool(0).Workers(); got != 5 {
		t.Errorf("after SetDefaultWorkers(5): Workers() = %d, want 5", got)
	}
	// An explicit bound is unaffected by the process default.
	if got := NewPool(2).Workers(); got != 2 {
		t.Errorf("NewPool(2).Workers() = %d, want 2", got)
	}

	// Shards never exceed the item count.
	if got := NewPool(8).Shards(3); got != 3 {
		t.Errorf("Shards(3) with 8 workers = %d, want 3", got)
	}
	if got := NewPool(2).Shards(100); got != 2 {
		t.Errorf("Shards(100) with 2 workers = %d, want 2", got)
	}
}

func TestShardRangesPartition(t *testing.T) {
	// The fixed shard→subrange mapping must tile [0, n) exactly, in order,
	// for any (n, shards) combination.
	for n := 0; n <= 40; n++ {
		for shards := 1; shards <= 9; shards++ {
			next := 0
			for s := 0; s < shards; s++ {
				lo, hi := shardRange(n, shards, s)
				if lo != next && lo < hi {
					t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", n, shards, s, lo, next)
				}
				if hi > n {
					t.Fatalf("n=%d shards=%d: shard %d ends at %d > n", n, shards, s, hi)
				}
				if lo < hi {
					next = hi
				}
			}
			if next != n {
				t.Fatalf("n=%d shards=%d: shards cover [0,%d), want [0,%d)", n, shards, next, n)
			}
		}
	}
}

func TestForRangeCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		const n = 1000
		hits := make([]int32, n)
		err := NewPool(workers).ForRange(context.Background(), n, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForRangeBoundedGoroutines(t *testing.T) {
	const workers = 4
	var cur, max atomic.Int32
	err := NewPool(workers).ForRange(context.Background(), 1000, func(_, lo, hi int) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		for i := 0; i < 1000; i++ { // dwell so shards overlap
			runtime.Gosched()
		}
		cur.Add(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := max.Load(); m > workers {
		t.Errorf("observed %d concurrent shards, bound is %d", m, workers)
	}
}

func TestForRangeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Int32{}
	err := NewPool(4).ForRange(ctx, 100, func(_, lo, hi int) { ran.Add(1) })
	if err != context.Canceled {
		t.Errorf("pre-cancelled ctx: err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("pre-cancelled ctx: %d shards ran, want 0", ran.Load())
	}

	// Cancelling mid-run: shards that started finish, the error surfaces.
	ctx2, cancel2 := context.WithCancel(context.Background())
	var once sync.Once
	err = NewPool(2).ForRange(ctx2, 10, func(_, lo, hi int) {
		once.Do(cancel2)
	})
	if err != context.Canceled {
		t.Errorf("mid-run cancel: err = %v, want context.Canceled", err)
	}
}

func TestForRangePanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} { // serial fast path and parallel path
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("workers=%d: panic did not propagate", workers)
					return
				}
				if workers > 1 {
					if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
						t.Errorf("workers=%d: recovered %v, want message containing 'boom'", workers, r)
					}
				}
			}()
			NewPool(workers).ForRange(context.Background(), 100, func(_, lo, hi int) {
				if lo == 0 {
					panic("boom")
				}
			})
		}()
	}
}

func TestForEach(t *testing.T) {
	const n = 257
	var sum atomic.Int64
	if err := NewPool(3).ForEach(context.Background(), n, func(i int) { sum.Add(int64(i)) }); err != nil {
		t.Fatal(err)
	}
	if want := int64(n * (n - 1) / 2); sum.Load() != want {
		t.Errorf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestMapChunksOrderedReduceDeterminism(t *testing.T) {
	// A floating-point reduction is scheduling-sensitive if results arrive
	// out of order; MapChunks must hand back shard results in index order so
	// the reduce is bitwise stable across runs and worker counts ≥ the same
	// shard layout.
	const n = 10_000
	xs := make([]float64, n)
	v := 1.0
	for i := range xs {
		v = v*1.0000001 + float64(i%7)*1e-9
		xs[i] = v
	}
	reduceWith := func(workers int) float64 {
		chunks, err := MapChunks(context.Background(), NewPool(workers), n, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			return s
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, c := range chunks {
			total += c
		}
		return total
	}

	// Same worker count → same shard layout → bitwise-identical sum on
	// every run, regardless of scheduling.
	for _, workers := range []int{2, 4, 7} {
		first := reduceWith(workers)
		for rep := 0; rep < 20; rep++ {
			if got := reduceWith(workers); got != first {
				t.Fatalf("workers=%d: run %d sum %v != first %v", workers, rep, got, first)
			}
		}
	}
}

func TestMapChunksShardOrder(t *testing.T) {
	chunks, err := MapChunks(context.Background(), NewPool(4), 100, func(lo, hi int) int { return lo })
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(chunks); i++ {
		if chunks[i] <= chunks[i-1] {
			t.Fatalf("chunk starts not in shard order: %v", chunks)
		}
	}
}

func TestForRangeEmpty(t *testing.T) {
	if err := NewPool(4).ForRange(context.Background(), 0, func(_, lo, hi int) {
		t.Error("fn called for n=0")
	}); err != nil {
		t.Fatal(err)
	}
}
