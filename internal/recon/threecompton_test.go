package recon

import (
	"math"
	"testing"

	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/physics"
)

// threeHitChain builds an exact three-interaction event for a photon of
// energy e traveling along travel, scattering at theta1 then theta2, with
// the final interaction depositing only part of the remainder when
// absorbedFrac < 1 (escaped energy).
func threeHitChain(e, theta1, theta2, absorbedFrac float64) ([]detector.Hit, []int) {
	travel := geom.Vec{Z: -1}
	r0 := geom.Vec{Z: -0.5}
	eAfter1 := physics.ScatteredEnergy(e, theta1)
	d1 := geom.ConeDirection(travel, theta1, 0.7)
	r1 := r0.Add(d1.Scale(9))
	eAfter2 := physics.ScatteredEnergy(eAfter1, theta2)
	d2 := geom.ConeDirection(d1, theta2, 2.1)
	r2 := r1.Add(d2.Scale(8))
	hits := []detector.Hit{
		{Pos: r0, E: e - eAfter1, SigmaE: 0.02, Layer: 0},
		{Pos: r1, E: eAfter1 - eAfter2, SigmaE: 0.02, Layer: 1},
		{Pos: r2, E: eAfter2 * absorbedFrac, SigmaE: 0.02, Layer: 3},
	}
	return hits, []int{0, 1, 2}
}

func TestEstimateIncidentEnergy3CExact(t *testing.T) {
	// Fully absorbed: the kinematic estimate must reproduce the incident
	// energy from geometry + the second deposit alone.
	for _, e := range []float64{0.8, 1.5, 3.0} {
		hits, order := threeHitChain(e, geom.Rad(35), geom.Rad(50), 1.0)
		got, ok := EstimateIncidentEnergy3C(hits, order)
		if !ok {
			t.Fatalf("E=%v: estimate failed", e)
		}
		if math.Abs(got-e)/e > 1e-9 {
			t.Errorf("E=%v: kinematic estimate %v", e, got)
		}
	}
}

func TestEstimateIncidentEnergy3CEscapedEnergy(t *testing.T) {
	// Half the final deposit escapes: the summed energy is low, the
	// kinematic estimate is not (it never uses the third deposit's value).
	e := 2.0
	hits, order := threeHitChain(e, geom.Rad(30), geom.Rad(45), 0.5)
	sum := hits[0].E + hits[1].E + hits[2].E
	if sum >= e {
		t.Fatal("test setup: no energy escaped")
	}
	got, ok := EstimateIncidentEnergy3C(hits, order)
	if !ok {
		t.Fatal("estimate failed")
	}
	if math.Abs(got-e)/e > 1e-9 {
		t.Errorf("estimate %v, want %v despite escape", got, e)
	}
}

func TestEstimateIncidentEnergy3CDegenerate(t *testing.T) {
	// Collinear hits: no angle, no constraint.
	hits := []detector.Hit{
		{Pos: geom.Vec{Z: 0}, E: 0.3},
		{Pos: geom.Vec{Z: -10}, E: 0.3},
		{Pos: geom.Vec{Z: -20}, E: 0.3},
	}
	if _, ok := EstimateIncidentEnergy3C(hits, []int{0, 1, 2}); ok {
		t.Error("collinear chain produced an estimate")
	}
	// Two hits: not applicable.
	if _, ok := EstimateIncidentEnergy3C(hits[:2], []int{0, 1}); ok {
		t.Error("two-hit event produced an estimate")
	}
}

func TestThreeComptonImprovesEtaForEscapedEvents(t *testing.T) {
	// Given the true hit order, the 3C-corrected total energy must yield an
	// η far closer to the truth than the summed-deposit energy for an
	// escaped-energy event. (The full Reconstruct path may also mis-sequence
	// such events — the biased energy sum distorts the ordering FOM too,
	// which is exactly the reconstruction pathology the paper's dEta network
	// learns — so this test pins the energy correction in isolation.)
	cfg := DefaultConfig()
	cfg.Max3CEnergyFactor = 3
	e := 2.0
	theta1 := geom.Rad(30)
	hits, order := threeHitChain(e, theta1, geom.Rad(45), 0.4)
	sum := hits[0].E + hits[1].E + hits[2].E

	corrected := applyThreeCompton(&cfg, hits, order, sum)
	if math.Abs(corrected-e)/e > 1e-9 {
		t.Fatalf("corrected energy %v, want %v", corrected, e)
	}
	trueEta := math.Cos(theta1)
	etaSum := etaFromEnergies(sum, hits[0].E)
	eta3C := etaFromEnergies(corrected, hits[0].E)
	if math.Abs(eta3C-trueEta) > 1e-9 {
		t.Errorf("3C eta %v, truth %v", eta3C, trueEta)
	}
	if math.Abs(etaSum-trueEta) < 0.01 {
		t.Error("test setup: summed-energy eta not actually biased")
	}
}

func TestThreeComptonCapsPathologicalEstimates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Max3CEnergyFactor = 3
	// A nearly-forward second scatter gives a huge kinematic estimate; the
	// cap must keep the summed energy instead.
	hits, order := threeHitChain(1.0, geom.Rad(30), geom.Rad(2), 1.0)
	sum := hits[0].E + hits[1].E + hits[2].E
	got := applyThreeCompton(&cfg, hits, order, sum)
	if got > 3*sum {
		t.Errorf("cap failed: %v vs sum %v", got, sum)
	}
}
