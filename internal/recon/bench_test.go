package recon

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/xrand"
)

// benchEvents simulates a pool of detected events for reconstruction
// benchmarks.
func benchEvents(n int) []*detector.Event {
	cfg := detector.DefaultConfig()
	rng := xrand.New(7)
	var out []*detector.Event
	for len(out) < n {
		ev := detector.ThrowPhoton(&cfg, geom.Vec{Z: -1}, 0.9, rng)
		if ev != nil && len(ev.Hits) >= 2 {
			out = append(out, ev)
		}
	}
	return out
}

func BenchmarkReconstruct(b *testing.B) {
	cfg := DefaultConfig()
	events := benchEvents(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Reconstruct(&cfg, events[i%len(events)])
	}
}

func BenchmarkSequenceMulti(b *testing.B) {
	cfg := DefaultConfig()
	// Pick events with 3+ hits (permutation search path).
	var multi []*detector.Event
	for _, ev := range benchEvents(2048) {
		if len(ev.Hits) >= 3 {
			multi = append(multi, ev)
		}
	}
	if len(multi) == 0 {
		b.Skip("no multi-hit events generated")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sequence(&cfg, multi[i%len(multi)].Hits)
	}
}
