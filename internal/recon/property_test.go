package recon

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/physics"
	"repro/internal/xrand"
)

// TestRingPassesThroughSourceProperty: for any noiseless two-hit event whose
// ordering is unambiguous, the reconstructed ring surface contains the true
// source direction exactly (|s·c − η| ≈ 0). This is the defining invariant
// of Compton-ring reconstruction.
func TestRingPassesThroughSourceProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		// Source anywhere in the upper 85°; energy in the MeV band; small
		// scattering angle keeps E1 < E2 so the two-hit heuristic cannot
		// flip the order.
		src := geom.FromSpherical(rng.Uniform(0, geom.Rad(85)), rng.Uniform(0, 2*math.Pi))
		e := rng.Uniform(0.5, 3)
		theta := rng.Uniform(geom.Rad(10), geom.Rad(35))
		phi := rng.Uniform(0, 2*math.Pi)
		lever := rng.Uniform(cfg.MinLeverArm+1, 25)
		r1 := geom.Vec{X: rng.Uniform(-10, 10), Y: rng.Uniform(-10, 10), Z: rng.Uniform(-1.5, 0)}

		ev := syntheticEvent(e, theta, phi, lever, src, r1)
		if ev.Hits[0].E >= ev.Hits[1].E {
			return true // ordering ambiguous; not this property's subject
		}
		r, ok := Reconstruct(&cfg, ev)
		if !ok {
			return true // filtered (e.g. backscatter-like kinematics)
		}
		return math.Abs(r.Residual(src)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestDEtaPositiveProperty: the analytic width is positive and at least the
// configured floor for every reconstructable event.
func TestDEtaPositiveProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		src := geom.FromSpherical(rng.Uniform(0, geom.Rad(80)), rng.Uniform(0, 2*math.Pi))
		ev := syntheticEvent(
			rng.Uniform(0.2, 5),
			rng.Uniform(geom.Rad(5), geom.Rad(120)),
			rng.Uniform(0, 2*math.Pi),
			rng.Uniform(4, 30),
			src,
			geom.Vec{Z: -0.5},
		)
		r, ok := Reconstruct(&cfg, ev)
		if !ok {
			return true
		}
		return r.DEta >= cfg.DEtaFloor && !math.IsNaN(r.DEta) && !math.IsInf(r.DEta, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestEtaConsistencyProperty: the reconstructed η always equals the value
// implied by the Compton formula for the measured energies (whatever order
// the sequencer picked).
func TestEtaConsistencyProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed uint64) bool {
		rng := xrand.New(seed)
		src := geom.FromSpherical(rng.Uniform(0, geom.Rad(80)), 0)
		ev := syntheticEvent(
			rng.Uniform(0.3, 4),
			rng.Uniform(geom.Rad(10), geom.Rad(100)),
			1.0,
			rng.Uniform(5, 20),
			src,
			geom.Vec{Z: -0.5},
		)
		r, ok := Reconstruct(&cfg, ev)
		if !ok {
			return true
		}
		want := physics.CosThetaFromEnergies(r.ETotal, r.ETotal-r.Hit1.E)
		return math.Abs(r.Eta-geom.Clamp(want, -1, 1)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
