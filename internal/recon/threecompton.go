package recon

import (
	"math"

	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/units"
)

// EstimateIncidentEnergy3C applies the classic three-Compton technique
// (Kurfess et al. 2000): for an event with at least three time-ordered
// interactions, the scattering angle at the *second* vertex is measurable
// geometrically, so the photon energy entering that vertex — and hence the
// incident energy — can be solved from the Compton formula without the
// photon being fully absorbed:
//
//	E₂ = E₂dep/2 + sqrt(E₂dep²/4 + E₂dep·mec²/(1−cosθ₂))
//	E_incident = E₁dep + E₂
//
// where θ₂ is the angle between (r₂−r₁) and (r₃−r₂). ok is false when the
// geometry is degenerate (collinear hits give no constraint).
//
// The technique matters for events that are *not* fully absorbed: summing
// deposits underestimates the incident energy and biases η; the kinematic
// estimate does not. It is exposed as an optional reconstruction mode
// (Config.ThreeComptonEnergy) because the paper's pipeline sums deposits.
func EstimateIncidentEnergy3C(hits []detector.Hit, order []int) (eIncident float64, ok bool) {
	if len(order) < 3 {
		return 0, false
	}
	h1, h2, h3 := hits[order[0]], hits[order[1]], hits[order[2]]
	a := h2.Pos.Sub(h1.Pos)
	b := h3.Pos.Sub(h2.Pos)
	if a.Norm() == 0 || b.Norm() == 0 {
		return 0, false
	}
	cosTheta2 := a.Unit().Dot(b.Unit())
	oneMinus := 1 - cosTheta2
	if oneMinus < 1e-6 {
		return 0, false // forward-degenerate: no kinematic constraint
	}
	e2dep := h2.E
	if e2dep <= 0 {
		return 0, false
	}
	mec2 := units.ElectronMassMeV
	// Energy entering vertex 2 from the Compton formula with the geometric
	// angle: E₂ − E₂' relation with E₂' = E₂ − e2dep gives a quadratic in
	// E₂ whose positive root is:
	e2 := e2dep/2 + math.Sqrt(e2dep*e2dep/4+e2dep*mec2/oneMinus)
	return h1.E + e2, true
}

// applyThreeCompton recomputes the ring's η (and the stored total energy)
// using the kinematic incident-energy estimate when the event has three or
// more sequenced hits and the estimate exceeds the summed deposits (a
// partially-absorbed event). Returns the possibly-updated total energy.
func applyThreeCompton(cfg *Config, hits []detector.Hit, order []int, etotSum float64) float64 {
	e3c, ok := EstimateIncidentEnergy3C(hits, order)
	if !ok {
		return etotSum
	}
	// Use the kinematic estimate only when it says energy escaped (it can
	// only correct upward; below the sum it is dominated by angle noise).
	if e3c <= etotSum {
		return etotSum
	}
	// Guard against pathological geometry blowing the estimate up.
	if e3c > cfg.Max3CEnergyFactor*etotSum {
		return etotSum
	}
	return e3c
}

// geomSanity is referenced by tests to document the geometry convention.
var _ = geom.Vec{}
