package recon

import (
	"math"
	"testing"

	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/physics"
	"repro/internal/units"
)

// syntheticEvent builds a two-hit event for a photon of energy e arriving
// from source direction src (unit, pointing from detector to source) that
// scatters through angle theta at r1 and is absorbed at distance lever
// along the scattered direction. Azimuth of the scatter plane is phi.
func syntheticEvent(e, theta, phi, lever float64, src geom.Vec, r1 geom.Vec) *detector.Event {
	travel := src.Neg()
	eOut := physics.ScatteredEnergy(e, theta)
	e1 := e - eOut
	scattered := geom.ConeDirection(travel, theta, phi)
	r2 := r1.Add(scattered.Scale(lever))
	mk := func(pos geom.Vec, dep float64, layer, order int) (detector.Hit, detector.TrueHit) {
		h := detector.Hit{Pos: pos, E: dep, SigmaX: 0.17, SigmaY: 0.17, SigmaZ: 0.43, SigmaE: 0.02, Layer: layer}
		th := detector.TrueHit{Pos: pos, E: dep, Layer: layer, Order: order}
		return h, th
	}
	h1, t1 := mk(r1, e1, 0, 0)
	h2, t2 := mk(r2, eOut, 2, 1)
	return &detector.Event{
		Hits:          []detector.Hit{h1, h2},
		TrueHits:      []detector.TrueHit{t1, t2},
		TrueSource:    src,
		TrueEnergy:    e,
		FullyAbsorbed: true,
	}
}

func TestReconstructCleanEvent(t *testing.T) {
	cfg := DefaultConfig()
	src := geom.FromSpherical(geom.Rad(25), geom.Rad(40))
	theta := geom.Rad(35)
	ev := syntheticEvent(1.0, theta, 1.2, 12, src, geom.Vec{X: 1, Y: -2, Z: -0.5})

	r, ok := Reconstruct(&cfg, ev)
	if !ok {
		t.Fatal("clean event rejected")
	}
	// η must equal cos(θ) (energies are exact here).
	if math.Abs(r.Eta-math.Cos(theta)) > 1e-9 {
		t.Errorf("eta = %v, want %v", r.Eta, math.Cos(theta))
	}
	// The ring surface passes through the true source: s·c = η.
	if math.Abs(r.TrueEta-r.Eta) > 1e-9 {
		t.Errorf("ring misses true source: TrueEta %v vs Eta %v", r.TrueEta, r.Eta)
	}
	// Axis points from hit2 toward hit1.
	axis := ev.Hits[0].Pos.Sub(ev.Hits[1].Pos).Unit()
	if r.Axis.Sub(axis).Norm() > 1e-12 {
		t.Error("axis not through first two hits")
	}
	if !r.OrderedCorrectly {
		t.Error("correct sequencing not recognized")
	}
	if r.DEta <= 0 {
		t.Error("non-positive dEta")
	}
	if r.Background {
		t.Error("synthetic GRB event labeled background")
	}
	if r.NHits != 2 {
		t.Errorf("NHits = %d", r.NHits)
	}
}

func TestEtaErrorIsZeroForExactRing(t *testing.T) {
	cfg := DefaultConfig()
	src := geom.Vec{Z: 1}
	// Small scattering angle keeps E1 < E2, so the two-hit ordering
	// heuristic cannot flip the hits (a flip is legitimate pipeline
	// behaviour but not what this test is about).
	ev := syntheticEvent(1.0, geom.Rad(30), 0.4, 15, src, geom.Vec{X: 0, Y: 0, Z: -0.3})
	r, ok := Reconstruct(&cfg, ev)
	if !ok {
		t.Fatal("rejected")
	}
	if r.EtaError() > 1e-9 {
		t.Errorf("EtaError = %v for an exact event", r.EtaError())
	}
}

func TestQualityFilters(t *testing.T) {
	cfg := DefaultConfig()
	src := geom.Vec{Z: 1}

	// Single-hit events cannot form a ring.
	ev := syntheticEvent(1.0, geom.Rad(30), 0, 12, src, geom.Vec{Z: -0.5})
	ev.Hits = ev.Hits[:1]
	if _, ok := Reconstruct(&cfg, ev); ok {
		t.Error("single-hit event accepted")
	}

	// Too many hits → pile-up rejection.
	ev = syntheticEvent(1.0, geom.Rad(30), 0, 12, src, geom.Vec{Z: -0.5})
	for i := 0; i < cfg.MaxHits; i++ {
		ev.Hits = append(ev.Hits, detector.Hit{Pos: geom.Vec{X: float64(i), Z: -11}, E: 0.05, SigmaE: 0.01, Layer: 1})
	}
	if _, ok := Reconstruct(&cfg, ev); ok {
		t.Error("pile-up event accepted")
	}

	// Short lever arm → unusable axis.
	ev = syntheticEvent(1.0, geom.Rad(30), 0, cfg.MinLeverArm/2, src, geom.Vec{Z: -0.5})
	if _, ok := Reconstruct(&cfg, ev); ok {
		t.Error("short-lever event accepted")
	}

	// Kinematically impossible energies (E1 too large for any angle).
	ev = syntheticEvent(1.0, geom.Rad(30), 0, 12, src, geom.Vec{Z: -0.5})
	ev.Hits[0].E = 0.95
	ev.Hits[1].E = 0.05
	// With E=1 and E1=0.95, E'=0.05 gives cosθ = 1 − mec²(1/0.05 − 1) ≈ −8.7:
	// impossible either way around (1/0.95−1 ≈ .028 → other order fine, so
	// sequencing flips the order; make both impossible by shrinking E2 too).
	ev.Hits[1].E = 0.002
	ev.Hits[0].E = 0.998
	if _, ok := Reconstruct(&cfg, ev); ok {
		t.Error("kinematically impossible event accepted")
	}
}

func TestSequencePairPrefersValidOrder(t *testing.T) {
	cfg := DefaultConfig()
	// Construct energies where only one order is admissible:
	// E = 1.3, E1 = 0.2 → E' = 1.1, cosθ = 1 − mec²(1/1.1 − 1/1.3) ≈ 0.93 ✓
	// Swapped: E1 = 1.1 → E' = 0.2, cosθ = 1 − mec²(1/0.2 − 1/1.3) ≈ −1.16 ✗
	hits := []detector.Hit{
		{Pos: geom.Vec{Z: -10}, E: 1.1, SigmaE: 0.02, Layer: 1},
		{Pos: geom.Vec{Z: 0}, E: 0.2, SigmaE: 0.02, Layer: 0},
	}
	order, ok := Sequence(&cfg, hits)
	if !ok {
		t.Fatal("no admissible order found")
	}
	if hits[order[0]].E != 0.2 {
		t.Errorf("sequencing picked the inadmissible order")
	}
}

func TestSequencePairHeuristicWhenBothValid(t *testing.T) {
	cfg := DefaultConfig()
	// Low energies: both orders admissible; the heuristic puts the larger
	// deposit second (photoabsorption).
	hits := []detector.Hit{
		{Pos: geom.Vec{Z: 0}, E: 0.20, SigmaE: 0.02, Layer: 0},
		{Pos: geom.Vec{Z: -10}, E: 0.25, SigmaE: 0.02, Layer: 1},
	}
	order, ok := Sequence(&cfg, hits)
	if !ok {
		t.Fatal("no order found")
	}
	if hits[order[1]].E != 0.25 {
		t.Error("heuristic did not put larger deposit second")
	}
}

func TestSequenceThreeHitEvent(t *testing.T) {
	cfg := DefaultConfig()
	// Build a genuine three-interaction chain and check the sequencer
	// recovers the time order from kinematic+geometric consistency.
	e := 2.0
	travel := geom.Vec{Z: -1}
	r0 := geom.Vec{X: 0, Y: 0, Z: -0.5}
	theta1 := geom.Rad(30)
	eAfter1 := physics.ScatteredEnergy(e, theta1)
	d1 := geom.ConeDirection(travel, theta1, 0.3)
	r1 := r0.Add(d1.Scale(10))
	theta2 := geom.Rad(45)
	eAfter2 := physics.ScatteredEnergy(eAfter1, theta2)
	d2 := geom.ConeDirection(d1, theta2, 2.0)
	r2 := r1.Add(d2.Scale(9))

	hits := []detector.Hit{
		{Pos: r2, E: eAfter2, SigmaE: 0.02, Layer: 3},           // last (absorbed)
		{Pos: r0, E: e - eAfter1, SigmaE: 0.02, Layer: 0},       // first
		{Pos: r1, E: eAfter1 - eAfter2, SigmaE: 0.02, Layer: 2}, // second
	}
	order, ok := Sequence(&cfg, hits)
	if !ok {
		t.Fatal("three-hit chain not sequenced")
	}
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDEtaGrowsWithEnergyUncertainty(t *testing.T) {
	cfg := DefaultConfig()
	src := geom.Vec{Z: 1}
	mk := func(sigmaE float64) float64 {
		ev := syntheticEvent(1.0, geom.Rad(40), 0.9, 12, src, geom.Vec{Z: -0.4})
		for i := range ev.Hits {
			ev.Hits[i].SigmaE = sigmaE
		}
		r, ok := Reconstruct(&cfg, ev)
		if !ok {
			t.Fatal("rejected")
		}
		return r.DEta
	}
	if mk(0.10) <= mk(0.01) {
		t.Error("dEta does not grow with energy uncertainty")
	}
}

func TestDEtaFloor(t *testing.T) {
	cfg := DefaultConfig()
	src := geom.Vec{Z: 1}
	ev := syntheticEvent(1.0, geom.Rad(40), 0.9, 25, src, geom.Vec{Z: -0.4})
	for i := range ev.Hits {
		ev.Hits[i].SigmaE = 1e-9
		ev.Hits[i].SigmaX = 1e-9
		ev.Hits[i].SigmaY = 1e-9
		ev.Hits[i].SigmaZ = 1e-9
	}
	r, ok := Reconstruct(&cfg, ev)
	if !ok {
		t.Fatal("rejected")
	}
	if r.DEta < cfg.DEtaFloor {
		t.Errorf("dEta %v below floor %v", r.DEta, cfg.DEtaFloor)
	}
}

func TestEtaFromEnergiesFormula(t *testing.T) {
	// Exact Compton relation round-trip.
	e := 1.7
	theta := geom.Rad(62)
	eOut := physics.ScatteredEnergy(e, theta)
	got := etaFromEnergies(e, e-eOut)
	if math.Abs(got-math.Cos(theta)) > 1e-12 {
		t.Errorf("etaFromEnergies = %v, want cos %v", got, theta)
	}
	if !math.IsInf(etaFromEnergies(1, 1.5), -1) {
		t.Error("negative scattered energy should give -Inf eta")
	}
	_ = units.ElectronMassMeV
}
