package recon

import (
	"math"
	"sort"

	"repro/internal/detector"
	"repro/internal/units"
)

// Sequence infers the time order of an event's measured hits. It returns
// indices into hits such that order[0] is the inferred first interaction.
// ok is false when no ordering is kinematically admissible.
//
// For events with three or more hits, every permutation of the
// MaxSequenced highest-energy hits is scored by the standard Compton
// sequencing figure of merit: at each internal vertex the scattering angle
// implied by the energies must match the angle implied by the geometry.
// Two-hit events have no internal vertex, so ordering falls back to
// kinematic admissibility plus the "larger deposit is usually the
// photoabsorption (second)" heuristic — which is right most of the time and
// wrong often enough to matter, as in the real pipeline.
func Sequence(cfg *Config, hits []detector.Hit) (order []int, ok bool) {
	switch {
	case len(hits) < 2:
		return nil, false
	case len(hits) == 2:
		return sequencePair(hits)
	default:
		return sequenceMulti(cfg, hits)
	}
}

// sequencePair orders a two-hit event.
func sequencePair(hits []detector.Hit) ([]int, bool) {
	etot := hits[0].E + hits[1].E
	valid01 := kinematicallyValid(etot, hits[0].E)
	valid10 := kinematicallyValid(etot, hits[1].E)
	switch {
	case valid01 && !valid10:
		return []int{0, 1}, true
	case valid10 && !valid01:
		return []int{1, 0}, true
	case !valid01 && !valid10:
		return nil, false
	}
	// Both admissible: the photoabsorption usually deposits more energy, so
	// put the larger deposit second.
	if hits[0].E <= hits[1].E {
		return []int{0, 1}, true
	}
	return []int{1, 0}, true
}

// kinematicallyValid reports whether treating e1 as the first deposit of a
// photon with total energy etot gives |cosθ| ≤ 1 (with a small tolerance for
// measurement smearing).
func kinematicallyValid(etot, e1 float64) bool {
	eOut := etot - e1
	if eOut <= 0 {
		return false
	}
	eta := 1 - units.ElectronMassMeV*(1/eOut-1/etot)
	return eta >= -1.1 && eta <= 1.0001
}

// sequenceMulti scores permutations of the highest-energy hits.
func sequenceMulti(cfg *Config, hits []detector.Hit) ([]int, bool) {
	// Select the hits to sequence: all of them up to MaxSequenced, by
	// descending energy; the rest contribute only to the energy total.
	sel := make([]int, len(hits))
	for i := range sel {
		sel[i] = i
	}
	sort.Slice(sel, func(a, b int) bool { return hits[sel[a]].E > hits[sel[b]].E })
	if len(sel) > cfg.MaxSequenced {
		sel = sel[:cfg.MaxSequenced]
	}

	var etot float64
	for i := range hits {
		etot += hits[i].E
	}

	best := math.Inf(1)
	var bestOrder []int
	perm := make([]int, len(sel))
	copy(perm, sel)
	permute(perm, 0, func(p []int) {
		fom, admissible := sequenceFOM(hits, p, etot)
		if admissible && fom < best {
			best = fom
			bestOrder = append(bestOrder[:0], p...)
		}
	})
	if bestOrder == nil {
		return nil, false
	}
	return bestOrder, true
}

// sequenceFOM computes the Compton sequencing figure of merit for ordering p
// of the event's hits: the summed squared mismatch between the kinematic and
// geometric scattering-angle cosines at each internal vertex, in units of a
// rough per-vertex uncertainty. Lower is better.
func sequenceFOM(hits []detector.Hit, p []int, etot float64) (fom float64, admissible bool) {
	// Energy entering the first vertex is the event total; the unsequenced
	// remainder is treated as deposited at the end of the chain.
	// First-vertex admissibility (this is the η that becomes the ring).
	if !kinematicallyValid(etot, hits[p[0]].E) {
		return 0, false
	}
	ein := etot
	for v := 0; v < len(p); v++ {
		if v >= 1 && v+1 < len(p) {
			eout := ein - hits[p[v]].E
			if eout <= 0 {
				return 0, false
			}
			cosKin := 1 - units.ElectronMassMeV*(1/eout-1/ein)
			if cosKin < -1.2 {
				return 0, false
			}
			a := hits[p[v]].Pos.Sub(hits[p[v-1]].Pos)
			b := hits[p[v+1]].Pos.Sub(hits[p[v]].Pos)
			if a.Norm() == 0 || b.Norm() == 0 {
				return 0, false
			}
			cosGeom := a.Unit().Dot(b.Unit())
			d := cosGeom - cosKin
			// Per-vertex scale: dominated by position quantization over
			// short lever arms; 0.1 in cosine is representative and the
			// ranking is insensitive to the exact value.
			fom += d * d / 0.01
		}
		ein -= hits[p[v]].E
	}
	return fom, true
}

// permute calls visit for every permutation of s[k:] (Heap's algorithm,
// iterative on the recursion index).
func permute(s []int, k int, visit func([]int)) {
	if k == len(s)-1 {
		visit(s)
		return
	}
	for i := k; i < len(s); i++ {
		s[k], s[i] = s[i], s[k]
		permute(s, k+1, visit)
		s[k], s[i] = s[i], s[k]
	}
}
