// Package recon reconstructs Compton rings from measured detector events
// (paper §II-B): it orders the unordered hits of each event, computes the
// ring parameters (axis c, opening-angle cosine η), and estimates the ring
// width dη by propagation of error from the reported measurement
// uncertainties, following Boggs & Jean (2000).
//
// The sequencing step is where realistic dη failures originate: a mis-ordered
// pair of hits yields a completely wrong ring whose analytic dη is still
// small — exactly the "false certainty" failure mode the paper's dEta
// network exists to fix.
package recon

import (
	"math"

	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/units"
)

// Ring is a reconstructed Compton ring with everything the downstream
// pipeline (and the ML feature extraction) needs.
type Ring struct {
	geom.Ring // Axis (c), Eta (η), DEta (analytic dη)

	// Hit1 and Hit2 are the inferred first and second interactions.
	Hit1, Hit2 detector.Hit
	// ETotal is the summed measured energy of the event (MeV).
	ETotal float64
	// SigmaETotal, SigmaE1, SigmaE2 are the reported 1σ uncertainties of the
	// total and of the first two deposited energies (the three energy
	// uncertainties the paper uses as model features).
	SigmaETotal, SigmaE1, SigmaE2 float64
	// NHits is the number of measured hits in the parent event.
	NHits int

	// Ground truth (never visible to the flight pipeline):

	// TrueEta is s_true·Axis, the value η should have taken for the true
	// source direction. For background events it is still filled in relative
	// to the particle's own arrival direction, but is not meaningful as a
	// GRB constraint.
	TrueEta float64
	// Background reports whether the parent event was a background particle.
	Background bool
	// TrueSource is the parent event's true origin direction.
	TrueSource geom.Vec
	// OrderedCorrectly reports whether the inferred first two hits match the
	// ground-truth time order.
	OrderedCorrectly bool
	// ArrivalTime is inherited from the parent event (seconds).
	ArrivalTime float64
}

// EtaError returns the realized error |η − TrueEta|, the quantity the dEta
// network is trained to predict (its natural log).
func (r *Ring) EtaError() float64 { return math.Abs(r.Eta - r.TrueEta) }

// Config holds the reconstruction and quality-filter parameters.
type Config struct {
	// MaxHits: events with more measured hits than this are rejected as
	// unreconstructable pile-up.
	MaxHits int
	// MaxSequenced caps how many of the highest-energy hits participate in
	// sequencing (permutation search is factorial).
	MaxSequenced int
	// MinLeverArm rejects rings whose first two hits are closer than this
	// (cm); the axis direction is unusable below it.
	MinLeverArm float64
	// EtaTolerance: rings with |η| > 1 + EtaTolerance are rejected as
	// kinematically impossible.
	EtaTolerance float64
	// MinE1 rejects rings whose first deposit is below this energy (MeV).
	MinE1 float64
	// DEtaFloor is the minimum reported dη; prevents zero-width rings.
	DEtaFloor float64
	// ThreeComptonEnergy enables the three-Compton incident-energy estimate
	// for events with ≥3 sequenced hits (see EstimateIncidentEnergy3C).
	// Off by default: the paper's pipeline sums deposits.
	ThreeComptonEnergy bool
	// Max3CEnergyFactor caps the kinematic estimate at this multiple of the
	// summed deposits (guards against degenerate geometry). Zero means 3.
	Max3CEnergyFactor float64
}

// DefaultConfig returns the reconstruction settings used by the experiments.
func DefaultConfig() Config {
	return Config{
		MaxHits:      8,
		MaxSequenced: 4,
		MinLeverArm:  3.0,
		EtaTolerance: 0.05,
		MinE1:        0.025,
		DEtaFloor:    0.005,
	}
}

// Reconstruct builds a Compton ring from a measured event. ok is false when
// the event fails the quality filters ("the pre-localization stages of the
// pipeline deemed [it in]correctly reconstructed", §III).
func Reconstruct(cfg *Config, ev *detector.Event) (*Ring, bool) {
	n := len(ev.Hits)
	if n < 2 || n > cfg.MaxHits {
		return nil, false
	}
	order, ok := Sequence(cfg, ev.Hits)
	if !ok {
		return nil, false
	}
	h1, h2 := ev.Hits[order[0]], ev.Hits[order[1]]

	lever := h1.Pos.Dist(h2.Pos)
	if lever < cfg.MinLeverArm {
		return nil, false
	}
	if h1.E < cfg.MinE1 {
		return nil, false
	}

	etot := ev.TotalE()
	if cfg.ThreeComptonEnergy && len(order) >= 3 {
		c := *cfg
		if c.Max3CEnergyFactor <= 0 {
			c.Max3CEnergyFactor = 3
		}
		etot = applyThreeCompton(&c, ev.Hits, order, etot)
	}
	eta := etaFromEnergies(etot, h1.E)
	if math.Abs(eta) > 1+cfg.EtaTolerance {
		return nil, false
	}

	axis := h1.Pos.Sub(h2.Pos).Unit()
	dEta := propagateDEta(cfg, h1, h2, etot, ev.TotalSigmaE(), eta, lever)

	r := &Ring{
		Ring:        geom.Ring{Axis: axis, Eta: geom.Clamp(eta, -1, 1), DEta: dEta},
		Hit1:        h1,
		Hit2:        h2,
		ETotal:      etot,
		SigmaETotal: ev.TotalSigmaE(),
		SigmaE1:     h1.SigmaE,
		SigmaE2:     h2.SigmaE,
		NHits:       n,
		TrueEta:     ev.TrueSource.Dot(axis),
		Background:  ev.Source == detector.SourceBackground,
		TrueSource:  ev.TrueSource,
		ArrivalTime: ev.ArrivalTime,
	}
	r.OrderedCorrectly = orderedCorrectly(ev, order)
	return r, true
}

// etaFromEnergies computes η = cosθ of the first scatter from the total
// event energy and the first deposit: the photon entered with E = etot and
// left the first vertex with E' = etot − e1.
func etaFromEnergies(etot, e1 float64) float64 {
	eOut := etot - e1
	if eOut <= 0 {
		return math.Inf(-1)
	}
	return 1 - units.ElectronMassMeV*(1/eOut-1/etot)
}

// propagateDEta is the analytic propagation-of-error estimate of the ring
// width (Boggs & Jean 2000): energy terms from the η formula plus the
// axis-direction error from position uncertainty across the lever arm,
// folded into cosine space via sinθ.
func propagateDEta(cfg *Config, h1, h2 detector.Hit, etot, sigmaETot, eta, lever float64) float64 {
	eOther := etot - h1.E
	mec2 := units.ElectronMassMeV

	// η = 1 − mec²/E_other + mec²/E_tot with E_tot = E1 + E_other; treat E1
	// and E_other as the independent measurements.
	dEtaDE1 := -mec2 / (etot * etot)
	dEtaDEOther := mec2/(eOther*eOther) - mec2/(etot*etot)

	// σ(E_other) combines everything that is not hit 1. The reported total
	// σ includes hit 1; subtract in quadrature (guarding the floor).
	sigmaEOther := math.Sqrt(math.Max(0, sigmaETot*sigmaETot-h1.SigmaE*h1.SigmaE))

	vE := dEtaDE1*dEtaDE1*h1.SigmaE*h1.SigmaE + dEtaDEOther*dEtaDEOther*sigmaEOther*sigmaEOther

	// Axis error: transverse position uncertainty of both hits across the
	// lever arm, expressed as an angle, enters η with weight sinθ.
	sigmaPos := math.Sqrt(h1.SigmaX*h1.SigmaX + h1.SigmaY*h1.SigmaY + h1.SigmaZ*h1.SigmaZ +
		h2.SigmaX*h2.SigmaX + h2.SigmaY*h2.SigmaY + h2.SigmaZ*h2.SigmaZ)
	// Only ~2/3 of the position variance is transverse to the axis on
	// average; the exact projection depends on the axis orientation and is
	// not worth the precision here.
	axisAngle := sigmaPos * 0.8165 / lever
	sinTheta := math.Sqrt(math.Max(0, 1-eta*eta))
	vPos := sinTheta * sinTheta * axisAngle * axisAngle

	d := math.Sqrt(vE + vPos)
	if d < cfg.DEtaFloor {
		d = cfg.DEtaFloor
	}
	return d
}

// orderedCorrectly compares the inferred first two hits against the
// ground-truth time order by matching measured hits to the nearest
// ground-truth deposits.
func orderedCorrectly(ev *detector.Event, order []int) bool {
	if len(ev.TrueHits) < 2 {
		return false
	}
	// Find the ground-truth deposits with Order 0 and 1 (post-merge the
	// earliest deposit of each measured cluster dominates, so nearest-truth
	// matching is adequate for a diagnostic label).
	first := nearestTrue(ev, ev.Hits[order[0]].Pos)
	second := nearestTrue(ev, ev.Hits[order[1]].Pos)
	return first < second
}

// nearestTrue returns the minimum ground-truth Order among deposits nearest
// to p (within the merge scale).
func nearestTrue(ev *detector.Event, p geom.Vec) int {
	best, bestD := 1<<30, math.Inf(1)
	for _, t := range ev.TrueHits {
		d := t.Pos.Dist(p)
		if d < bestD || (d == bestD && t.Order < best) {
			best, bestD = t.Order, d
		}
	}
	return best
}
