// Package tune implements the hyperparameter search of the paper's §III
// "Model Training": the paper used the Weights & Biases platform "to search
// over different combinations of batch size, learning rate, and
// architectural variables including the number of FC layers, the maximum
// width of any layer, and the width of each layer relative to the maximum."
//
// This package provides the same search space and a random-search driver
// (WandB's default sweep strategy) scoring candidates by validation loss
// with early stopping, entirely offline.
package tune

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/nn"
	"repro/internal/xrand"
)

// Candidate is one point in the search space.
type Candidate struct {
	// LayersFC is the number of fully-connected layers (the paper settled
	// on four for both networks).
	LayersFC int
	// MaxWidth is the widest FC layer.
	MaxWidth int
	// Shape positions the widest layer: widths ramp up to MaxWidth at the
	// layer indexed by Peak (0-based among hidden layers) and decay
	// geometrically on both sides with ratio Taper in (0, 1].
	Peak  int
	Taper float64
	// BatchSize and LR are the training hyperparameters.
	BatchSize int
	LR        float64
}

// Widths expands the candidate into per-layer FC output widths, always
// ending in a single output.
func (c Candidate) Widths() []int {
	n := c.LayersFC
	if n < 2 {
		n = 2
	}
	hidden := n - 1 // last layer is the 1-wide output
	w := make([]int, 0, n)
	for i := 0; i < hidden; i++ {
		d := math.Abs(float64(i - c.Peak))
		width := int(math.Round(float64(c.MaxWidth) * math.Pow(c.Taper, d)))
		if width < 2 {
			width = 2
		}
		w = append(w, width)
	}
	return append(w, 1)
}

// String implements fmt.Stringer.
func (c Candidate) String() string {
	return fmt.Sprintf("fc=%d widths=%v batch=%d lr=%.3g", c.LayersFC, c.Widths(), c.BatchSize, c.LR)
}

// Space bounds the random search, mirroring the paper's search variables.
type Space struct {
	LayersFC   []int     // choices for FC depth
	MaxWidths  []int     // choices for the widest layer
	Tapers     []float64 // width decay ratios
	BatchSizes []int
	LRLog10Min float64 // LR sampled log-uniformly in [10^min, 10^max]
	LRLog10Max float64
}

// DefaultSpace returns a search space containing the paper's two chosen
// architectures (background: 4 FC, max width 256 at the first layer,
// decreasing; dEta: 4 FC, max width 16 in the middle).
func DefaultSpace() Space {
	return Space{
		LayersFC:   []int{3, 4, 5},
		MaxWidths:  []int{16, 32, 64, 128, 256},
		Tapers:     []float64{0.5, 0.7, 1.0},
		BatchSizes: []int{256, 1024, 4096},
		LRLog10Min: -4,
		LRLog10Max: -1.5,
	}
}

// Sample draws a random candidate from the space.
func (s Space) Sample(rng *xrand.RNG) Candidate {
	depth := s.LayersFC[rng.IntN(len(s.LayersFC))]
	return Candidate{
		LayersFC:  depth,
		MaxWidth:  s.MaxWidths[rng.IntN(len(s.MaxWidths))],
		Peak:      rng.IntN(depth - 1),
		Taper:     s.Tapers[rng.IntN(len(s.Tapers))],
		BatchSize: s.BatchSizes[rng.IntN(len(s.BatchSizes))],
		LR:        math.Pow(10, rng.Uniform(s.LRLog10Min, s.LRLog10Max)),
	}
}

// BuildNet constructs a network for a candidate using the given block
// builder (models.NewMLP or models.NewMLPSwapped have this shape).
type BuildNet func(in int, widths []int, rng *xrand.RNG) *nn.Sequential

// Options configures a search run.
type Options struct {
	Seed       uint64
	Trials     int // candidates to evaluate
	MaxEpochs  int // per-candidate training budget
	Patience   int
	InFeatures int
	Loss       nn.Loss
	Build      BuildNet
	Logf       func(format string, args ...any)
}

// Result is one evaluated candidate.
type Result struct {
	Candidate Candidate
	ValLoss   float64
	Epochs    int
}

// Search runs random search over the space, training each candidate on
// train and scoring on val, and returns all results ordered best-first.
func Search(space Space, opts Options, train, val *nn.Dataset) []Result {
	if opts.Trials <= 0 {
		opts.Trials = 10
	}
	if opts.MaxEpochs <= 0 {
		opts.MaxEpochs = 20
	}
	if opts.Patience <= 0 {
		opts.Patience = 5
	}
	rng := xrand.New(opts.Seed)

	results := make([]Result, 0, opts.Trials)
	for trial := 0; trial < opts.Trials; trial++ {
		cand := space.Sample(rng.Split(uint64(trial) + 1))
		net := opts.Build(opts.InFeatures, cand.Widths(), rng.Split(uint64(trial)+1000))
		tr := &nn.Trainer{
			Net:       net,
			Loss:      opts.Loss,
			Opt:       nn.NewSGD(cand.LR, 0.9),
			BatchSize: clampBatch(cand.BatchSize, train.Len()),
			MaxEpochs: opts.MaxEpochs,
			Patience:  opts.Patience,
		}
		hist := tr.Fit(train, val, rng.Split(uint64(trial)+2000))
		loss := tr.Evaluate(val)
		results = append(results, Result{Candidate: cand, ValLoss: loss, Epochs: len(hist.TrainLoss)})
		if opts.Logf != nil {
			opts.Logf("trial %2d: %s → val %.5f (%d epochs)", trial, cand, loss, len(hist.TrainLoss))
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].ValLoss < results[j].ValLoss })
	return results
}

func clampBatch(b, n int) int {
	if b > n/2 && n >= 4 {
		b = n / 2
	}
	if b < 2 {
		b = 2
	}
	return b
}
