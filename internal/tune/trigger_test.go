package tune

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/xrand"
)

func TestTriggerSpaceSampleBounds(t *testing.T) {
	s := DefaultTriggerSpace()
	rng := xrand.New(7)
	for i := 0; i < 200; i++ {
		c := s.Sample(rng)
		if c.WindowSec < 0.01 || c.WindowSec > 1 {
			t.Fatalf("WindowSec %g outside [0.01, 1]", c.WindowSec)
		}
		if c.SigmaThreshold < s.SigmaMin || c.SigmaThreshold > s.SigmaMax {
			t.Fatalf("SigmaThreshold %g outside [%g, %g]", c.SigmaThreshold, s.SigmaMin, s.SigmaMax)
		}
		if c.RateAlpha <= 0 || c.RateAlpha > 0.26 {
			t.Fatalf("RateAlpha %g outside (0, 0.26]", c.RateAlpha)
		}
	}
}

func TestSearchTriggerDeterministicAndSorted(t *testing.T) {
	// Synthetic objective with a known optimum: prefer sigma near 6.
	obj := func(c TriggerCandidate) (float64, error) {
		if c == (TriggerCandidate{}) {
			c.SigmaThreshold = 8 // the flight default the zero value stands for
		}
		return -math.Abs(c.SigmaThreshold - 6), nil
	}
	opts := TriggerOptions{Seed: 3, Trials: 12}
	a := SearchTrigger(DefaultTriggerSpace(), opts, obj)
	b := SearchTrigger(DefaultTriggerSpace(), opts, obj)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeds produced different search results")
	}
	if len(a) != 13 {
		t.Fatalf("got %d results, want 13 (baseline + 12 trials)", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i].Score > a[i-1].Score {
			t.Fatalf("results not sorted best-first at %d: %g > %g", i, a[i].Score, a[i-1].Score)
		}
	}
	// The baseline (zero candidate) must have been evaluated.
	found := false
	for _, r := range a {
		if r.Candidate == (TriggerCandidate{}) {
			found = true
		}
	}
	if !found {
		t.Error("baseline candidate missing from results")
	}
}

func TestSearchTriggerObjectiveError(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	obj := func(c TriggerCandidate) (float64, error) {
		calls++
		if calls == 2 {
			return 0, boom
		}
		return 1, nil
	}
	res := SearchTrigger(DefaultTriggerSpace(), TriggerOptions{Seed: 1, Trials: 3}, obj)
	if len(res) != 4 {
		t.Fatalf("got %d results, want 4", len(res))
	}
	last := res[len(res)-1]
	if !errors.Is(last.Err, boom) || !math.IsInf(last.Score, -1) {
		t.Errorf("failed candidate not sorted last with −Inf score: %+v", last)
	}
}
