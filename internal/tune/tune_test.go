package tune

import (
	"math"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/xrand"
)

func TestCandidateWidths(t *testing.T) {
	// The paper's background net: 4 FC, max 256 at the first layer,
	// gradually decreasing. Peak 0, taper 0.5 reproduces 256→128→64→1.
	c := Candidate{LayersFC: 4, MaxWidth: 256, Peak: 0, Taper: 0.5}
	w := c.Widths()
	want := []int{256, 128, 64, 1}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("widths = %v, want %v", w, want)
		}
	}
	// The paper's dEta net shape: max 16 in the middle, shorter at the
	// ends. Peak 1, taper 0.5 gives 8→16→8→1.
	c = Candidate{LayersFC: 4, MaxWidth: 16, Peak: 1, Taper: 0.5}
	w = c.Widths()
	want = []int{8, 16, 8, 1}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("dEta-shape widths = %v, want %v", w, want)
		}
	}
	// Output layer is always width 1; hidden widths never drop below 2.
	c = Candidate{LayersFC: 5, MaxWidth: 4, Peak: 0, Taper: 0.3}
	w = c.Widths()
	if w[len(w)-1] != 1 {
		t.Error("last width not 1")
	}
	for _, x := range w[:len(w)-1] {
		if x < 2 {
			t.Errorf("hidden width %d < 2", x)
		}
	}
	if c.String() == "" {
		t.Error("empty candidate string")
	}
}

func TestSampleStaysInSpace(t *testing.T) {
	space := DefaultSpace()
	rng := xrand.New(1)
	for i := 0; i < 500; i++ {
		c := space.Sample(rng)
		if !containsInt(space.LayersFC, c.LayersFC) ||
			!containsInt(space.MaxWidths, c.MaxWidth) ||
			!containsInt(space.BatchSizes, c.BatchSize) {
			t.Fatalf("sample outside space: %+v", c)
		}
		if c.Peak < 0 || c.Peak >= c.LayersFC-1 {
			t.Fatalf("peak %d out of range for depth %d", c.Peak, c.LayersFC)
		}
		lg := math.Log10(c.LR)
		if lg < space.LRLog10Min-1e-9 || lg > space.LRLog10Max+1e-9 {
			t.Fatalf("lr %v outside range", c.LR)
		}
	}
}

func TestSearchFindsWorkingConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("trains candidates")
	}
	// A learnable binary task; the search must return results sorted by
	// validation loss, with the best one distinctly better than chance.
	rng := xrand.New(2)
	n := 1200
	x := nn.NewTensor(n, 3)
	y := make([]float32, n)
	for i := 0; i < n; i++ {
		var s float32
		for c := 0; c < 3; c++ {
			v := float32(rng.Gaussian(0, 1))
			x.Set(i, c, v)
			s += v
		}
		if s > 0 {
			y[i] = 1
		}
	}
	ds := &nn.Dataset{X: x, Y: y}
	train, val := ds.Split(0.8, rng)

	space := Space{
		LayersFC:   []int{3, 4},
		MaxWidths:  []int{8, 32},
		Tapers:     []float64{0.5, 1.0},
		BatchSizes: []int{64},
		LRLog10Min: -2.5,
		LRLog10Max: -0.5,
	}
	results := Search(space, Options{
		Seed: 3, Trials: 6, MaxEpochs: 8, Patience: 4,
		InFeatures: 3, Loss: nn.BCEWithLogits{}, Build: models.NewMLP,
	}, train, val)

	if len(results) != 6 {
		t.Fatalf("%d results, want 6", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].ValLoss < results[i-1].ValLoss {
			t.Fatal("results not sorted best-first")
		}
	}
	if results[0].ValLoss > 0.4 { // chance is ln2 ≈ 0.693
		t.Errorf("best candidate val loss %v; search failed to find a learner", results[0].ValLoss)
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
