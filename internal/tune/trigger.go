package tune

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/xrand"
)

// Trigger-threshold search. The streaming trigger has three flight knobs —
// sliding-window width, Poisson significance threshold, and the rate
// estimator's EWMA weight — and the chaos campaign scores any setting of
// them with a single deterministic number (detection efficiency at a fixed
// false-alert budget). This file runs the same random-search strategy as
// the architecture sweep above over those three knobs, against any such
// objective.

// TriggerCandidate is one trigger configuration under evaluation. The zero
// value means "the flight defaults" (the stream package fills them in).
type TriggerCandidate struct {
	WindowSec      float64
	SigmaThreshold float64
	RateAlpha      float64
}

// String implements fmt.Stringer.
func (c TriggerCandidate) String() string {
	if c == (TriggerCandidate{}) {
		return "flight defaults"
	}
	return fmt.Sprintf("window=%.3gs sigma=%.3g alpha=%.3g", c.WindowSec, c.SigmaThreshold, c.RateAlpha)
}

// TriggerSpace bounds the trigger random search. Window and alpha are
// sampled log-uniformly (their useful ranges span decades), sigma
// uniformly.
type TriggerSpace struct {
	WindowLog10Min, WindowLog10Max float64
	SigmaMin, SigmaMax             float64
	AlphaLog10Min, AlphaLog10Max   float64
}

// DefaultTriggerSpace brackets the flight defaults (0.1 s, 8σ, α 0.05) by
// roughly an order of magnitude in each direction that still makes
// physical sense for second-scale bursts.
func DefaultTriggerSpace() TriggerSpace {
	return TriggerSpace{
		WindowLog10Min: -2, // 10 ms
		WindowLog10Max: 0,  // 1 s
		SigmaMin:       4,
		SigmaMax:       16,
		AlphaLog10Min:  -2.3, // ~0.005
		AlphaLog10Max:  -0.6, // ~0.25
	}
}

// Sample draws a random candidate from the space.
func (s TriggerSpace) Sample(rng *xrand.RNG) TriggerCandidate {
	return TriggerCandidate{
		WindowSec:      math.Pow(10, rng.Uniform(s.WindowLog10Min, s.WindowLog10Max)),
		SigmaThreshold: rng.Uniform(s.SigmaMin, s.SigmaMax),
		RateAlpha:      math.Pow(10, rng.Uniform(s.AlphaLog10Min, s.AlphaLog10Max)),
	}
}

// TriggerObjective scores one candidate; higher is better. The chaos
// campaign's Prepared.Objective is the intended implementation: detection
// efficiency minus the over-budget false-alert penalty, a pure function of
// the candidate for a prepared (spec, seed).
type TriggerObjective func(TriggerCandidate) (float64, error)

// TriggerOptions configures a trigger search run.
type TriggerOptions struct {
	Seed   uint64
	Trials int // random candidates beyond the baseline (default 10)
	Logf   func(format string, args ...any)
}

// TriggerResult is one evaluated candidate.
type TriggerResult struct {
	Candidate TriggerCandidate
	Score     float64
	Err       error // evaluation failure; Score is −Inf
}

// SearchTrigger random-searches the space against the objective and
// returns all results ordered best-first. Trial 0 is always the zero
// candidate (the flight defaults), so the search can never recommend a
// configuration that scored worse than what flies today. The sequence of
// candidates is a pure function of the seed, so a deterministic objective
// makes the whole search deterministic.
func SearchTrigger(space TriggerSpace, opts TriggerOptions, objective TriggerObjective) []TriggerResult {
	if opts.Trials <= 0 {
		opts.Trials = 10
	}
	rng := xrand.New(opts.Seed)

	results := make([]TriggerResult, 0, opts.Trials+1)
	evaluate := func(trial int, cand TriggerCandidate) {
		score, err := objective(cand)
		if err != nil {
			score = math.Inf(-1)
		}
		results = append(results, TriggerResult{Candidate: cand, Score: score, Err: err})
		if opts.Logf != nil {
			if err != nil {
				opts.Logf("trigger trial %2d: %s → error: %v", trial, cand, err)
			} else {
				opts.Logf("trigger trial %2d: %s → objective %.4f", trial, cand, score)
			}
		}
	}

	evaluate(0, TriggerCandidate{})
	for trial := 1; trial <= opts.Trials; trial++ {
		evaluate(trial, space.Sample(rng.Split(uint64(trial))))
	}
	// Stable: earlier trials win ties, so the baseline beats an equal-scoring
	// exotic candidate.
	sort.SliceStable(results, func(i, j int) bool { return results[i].Score > results[j].Score })
	return results
}
