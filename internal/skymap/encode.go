package skymap

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/sky"
)

// Binary payload format (all integers little-endian, floats IEEE-754
// binary32), mirroring the evio/flightlog framing idiom (ASCII magic,
// version word, trailing CRC-32/IEEE over everything before it):
//
//	offset  size  field
//	0       4     magic "ASKM"
//	4       2     version (= 1)
//	6       2     flags (reserved, must be 0)
//	8       2     coarseBands
//	10      2     refineFactor
//	12      4     temperature (f32, > 0)
//	16      4     logFloor (f32, < 0; quantization floor in ln units)
//	20      12    peakDir (3 × f32 unit vector)
//	32      4     thr68 (f32; relative ln density at the 68% contour)
//	36      4     thr90
//	40      4     area68 (f32, deg²)
//	44      4     area90
//	48      4     nCoarse (u32; must equal the coarse grid pixel count)
//	52      4     nTiles (u32)
//	56      —     coarse layer: nCoarse × u8 quantized values
//	…       —     nTiles tiles, ascending coarse index, each:
//	                coarse u32 | nFine u16 | nFine × u16 quantized values
//	end−4   4     CRC-32/IEEE of all preceding bytes
//
// The fine-pixel membership of each tile is NOT serialized: it is a pure
// function of (coarseBands, refineFactor), recomputed by the decoder, so
// nFine is pure validation. Decode accepts exactly the bytes Encode
// produces — every reserved bit, count, and the CRC are checked, and any
// trailing bytes are an error — which makes encode→decode→encode the
// identity on valid payloads (the property FuzzSkymapDecode pins).

// Magic identifies a skymap payload.
const Magic = "ASKM"

// Version is the payload format version.
const Version = 1

const headerSize = 56

// EncodedSize returns the exact payload size in bytes.
func (m *Map) EncodedSize() int {
	n := headerSize + len(m.Coarse) + 4
	for _, t := range m.Tiles {
		n += 6 + 2*len(t.Values)
	}
	return n
}

// Encode serializes the map. It is a pure function of the exported fields.
func (m *Map) Encode() []byte {
	b := make([]byte, 0, m.EncodedSize())
	b = append(b, Magic...)
	b = binary.LittleEndian.AppendUint16(b, Version)
	b = binary.LittleEndian.AppendUint16(b, 0) // flags
	b = binary.LittleEndian.AppendUint16(b, uint16(m.CoarseBands))
	b = binary.LittleEndian.AppendUint16(b, uint16(m.RefineFactor))
	b = binary.LittleEndian.AppendUint32(b, math.Float32bits(m.Temperature))
	b = binary.LittleEndian.AppendUint32(b, math.Float32bits(m.LogFloor))
	for _, c := range m.PeakDir {
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(c))
	}
	b = binary.LittleEndian.AppendUint32(b, math.Float32bits(m.Thr68))
	b = binary.LittleEndian.AppendUint32(b, math.Float32bits(m.Thr90))
	b = binary.LittleEndian.AppendUint32(b, math.Float32bits(m.Area68))
	b = binary.LittleEndian.AppendUint32(b, math.Float32bits(m.Area90))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Coarse)))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Tiles)))
	b = append(b, m.Coarse...)
	for _, t := range m.Tiles {
		b = binary.LittleEndian.AppendUint32(b, uint32(t.Coarse))
		b = binary.LittleEndian.AppendUint16(b, uint16(len(t.Values)))
		for _, v := range t.Values {
			b = binary.LittleEndian.AppendUint16(b, v)
		}
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b
}

// EncodeBase64 returns the payload in standard base64 — the form alert
// records and the serve endpoint carry.
func (m *Map) EncodeBase64() string {
	return base64.StdEncoding.EncodeToString(m.Encode())
}

type cursor struct {
	b   []byte
	off int
}

func (c *cursor) take(n int) ([]byte, error) {
	if len(c.b)-c.off < n {
		return nil, fmt.Errorf("skymap: truncated payload at offset %d", c.off)
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out, nil
}

func (c *cursor) u16() (uint16, error) {
	b, err := c.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (c *cursor) u32() (uint32, error) {
	b, err := c.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *cursor) f32() (float32, error) {
	v, err := c.u32()
	return math.Float32frombits(v), err
}

func finite32(v float32) bool {
	f := float64(v)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// maxAreaDeg2 bounds a credible area claim: the whole visible hemisphere,
// with slack for float32 rounding.
const maxAreaDeg2 = 2*math.Pi*deg2PerSr + 1

// Decode parses and fully validates a payload. Every accepted payload
// re-encodes to exactly the input bytes; anything else — bad magic,
// version, reserved bits, non-finite or out-of-range header fields, counts
// inconsistent with the grid geometry, CRC mismatch, truncation, trailing
// garbage — is an error.
func Decode(b []byte) (*Map, error) {
	if len(b) < headerSize+4 {
		return nil, fmt.Errorf("skymap: payload too short (%d bytes)", len(b))
	}
	if string(b[:4]) != Magic {
		return nil, fmt.Errorf("skymap: bad magic %q", b[:4])
	}
	body, crc := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if got := crc32.ChecksumIEEE(body); got != crc {
		return nil, fmt.Errorf("skymap: CRC mismatch (got %08x, want %08x)", got, crc)
	}
	c := &cursor{b: body, off: 4}
	version, _ := c.u16()
	if version != Version {
		return nil, fmt.Errorf("skymap: unsupported version %d", version)
	}
	flags, _ := c.u16()
	if flags != 0 {
		return nil, fmt.Errorf("skymap: reserved flags %#x set", flags)
	}
	coarseBands, _ := c.u16()
	refineFactor, _ := c.u16()
	if coarseBands < 2 || coarseBands > MaxCoarseBands {
		return nil, fmt.Errorf("skymap: coarseBands %d out of range [2, %d]", coarseBands, MaxCoarseBands)
	}
	if refineFactor < 1 || refineFactor > MaxRefineFactor {
		return nil, fmt.Errorf("skymap: refineFactor %d out of range [1, %d]", refineFactor, MaxRefineFactor)
	}
	m := &Map{CoarseBands: int(coarseBands), RefineFactor: int(refineFactor)}
	var err error
	if m.Temperature, err = c.f32(); err != nil {
		return nil, err
	}
	if !finite32(m.Temperature) || m.Temperature <= 0 {
		return nil, fmt.Errorf("skymap: invalid temperature %v", m.Temperature)
	}
	if m.LogFloor, err = c.f32(); err != nil {
		return nil, err
	}
	if !finite32(m.LogFloor) || m.LogFloor >= 0 {
		return nil, fmt.Errorf("skymap: invalid log floor %v", m.LogFloor)
	}
	var norm2 float64
	for i := range m.PeakDir {
		if m.PeakDir[i], err = c.f32(); err != nil {
			return nil, err
		}
		if !finite32(m.PeakDir[i]) {
			return nil, fmt.Errorf("skymap: non-finite peak direction")
		}
		norm2 += float64(m.PeakDir[i]) * float64(m.PeakDir[i])
	}
	if norm2 < 0.99 || norm2 > 1.01 {
		return nil, fmt.Errorf("skymap: peak direction not a unit vector (|d|² = %v)", norm2)
	}
	for _, f := range []struct {
		dst    *float32
		name   string
		lo, hi float64
	}{
		{&m.Thr68, "thr68", float64(m.LogFloor), 0},
		{&m.Thr90, "thr90", float64(m.LogFloor), 0},
		{&m.Area68, "area68", 0, maxAreaDeg2},
		{&m.Area90, "area90", 0, maxAreaDeg2},
	} {
		if *f.dst, err = c.f32(); err != nil {
			return nil, err
		}
		if !finite32(*f.dst) || float64(*f.dst) < f.lo || float64(*f.dst) > f.hi {
			return nil, fmt.Errorf("skymap: %s %v out of range [%v, %v]", f.name, *f.dst, f.lo, f.hi)
		}
	}
	nCoarse, _ := c.u32()
	nTiles, _ := c.u32()
	coarse := sky.NewGrid(m.CoarseBands)
	fine := sky.NewGrid(m.CoarseBands * m.RefineFactor)
	if int(nCoarse) != coarse.NumPixels() {
		return nil, fmt.Errorf("skymap: coarse count %d, grid has %d pixels", nCoarse, coarse.NumPixels())
	}
	if int(nTiles) > coarse.NumPixels() {
		return nil, fmt.Errorf("skymap: %d tiles for %d coarse pixels", nTiles, coarse.NumPixels())
	}
	raw, err := c.take(int(nCoarse))
	if err != nil {
		return nil, err
	}
	m.Coarse = append([]uint8(nil), raw...)
	members := tileMembers(coarse, fine)
	prev := -1
	for t := 0; t < int(nTiles); t++ {
		ci, err := c.u32()
		if err != nil {
			return nil, err
		}
		if int(ci) <= prev || int(ci) >= coarse.NumPixels() {
			return nil, fmt.Errorf("skymap: tile coarse index %d out of order or range", ci)
		}
		prev = int(ci)
		nFine, err := c.u16()
		if err != nil {
			return nil, err
		}
		if int(nFine) != len(members[int(ci)]) {
			return nil, fmt.Errorf("skymap: tile %d has %d fine values, geometry says %d", ci, nFine, len(members[int(ci)]))
		}
		tile := Tile{Coarse: int(ci), Values: make([]uint16, nFine)}
		for k := range tile.Values {
			if tile.Values[k], err = c.u16(); err != nil {
				return nil, err
			}
		}
		m.Tiles = append(m.Tiles, tile)
	}
	if c.off != len(body) {
		return nil, fmt.Errorf("skymap: %d trailing bytes", len(body)-c.off)
	}
	m.finish()
	return m, nil
}

// DecodeBase64 decodes a standard-base64 payload string.
func DecodeBase64(s string) (*Map, error) {
	raw, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("skymap: bad base64: %v", err)
	}
	return Decode(raw)
}
