package skymap

import (
	"bytes"
	"testing"

	"repro/internal/geom"
)

// FuzzSkymapDecode pins the codec's canonical-form contract: Decode either
// rejects the input or accepts a payload whose re-encoding is byte-for-byte
// the input. Any accept/re-encode divergence would break the bitwise
// determinism the serving cache and journal replay rely on.
func FuzzSkymapDecode(f *testing.F) {
	m := Build(func(d geom.Vec) float64 { return -50 * geom.AngleBetween(d, geom.Vec{Z: 1}) }, Options{CoarseBands: 4, RefineFactor: 2, MaxTiles: 4})
	f.Add(m.Encode())
	flat := Build(func(geom.Vec) float64 { return 0 }, Options{CoarseBands: 2, RefineFactor: 1, MaxTiles: 1})
	f.Add(flat.Encode())
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		re := d.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted payload is not canonical: %d bytes in, %d bytes re-encoded", len(data), len(re))
		}
		// Accepted maps must be safe to interrogate.
		if a := d.CredibleAreaDeg2(0.9); a < 0 {
			t.Fatalf("negative credible area %v", a)
		}
		d.LogDensity(geom.Vec{Z: 1})
	})
}
