package skymap

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/localize"
	"repro/internal/recon"
	"repro/internal/xrand"
)

// testRings builds noisy rings through s.
func testRings(s geom.Vec, n int, noise float64, rng *xrand.RNG) []*recon.Ring {
	var rings []*recon.Ring
	for i := 0; i < n; i++ {
		x, y, z := rng.UnitVectorPolarRange(0, math.Pi)
		axis := geom.Vec{X: x, Y: y, Z: z}
		rings = append(rings, &recon.Ring{
			Ring: geom.Ring{Axis: axis, Eta: geom.Clamp(s.Dot(axis)+rng.Gaussian(0, noise), -1, 1), DEta: noise},
		})
	}
	return rings
}

func buildTestMap(t testing.TB, opts Options) (*Map, geom.Vec) {
	t.Helper()
	cfg := localize.DefaultConfig()
	s := geom.FromSpherical(geom.Rad(30), geom.Rad(75))
	rings := testRings(s, 120, 0.03, xrand.New(11))
	return FromRings(&cfg, rings, nil, opts), s
}

func TestRoundTripExact(t *testing.T) {
	m, _ := buildTestMap(t, Options{})
	b := m.Encode()
	if len(b) != m.EncodedSize() {
		t.Fatalf("EncodedSize %d, Encode produced %d", m.EncodedSize(), len(b))
	}
	d, err := Decode(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	b2 := d.Encode()
	if !bytes.Equal(b, b2) {
		t.Fatalf("encode→decode→encode not identity: %d vs %d bytes", len(b), len(b2))
	}
	// The decoded map is semantically identical too.
	if d.CoarseBands != m.CoarseBands || d.RefineFactor != m.RefineFactor ||
		d.Temperature != m.Temperature || d.LogFloor != m.LogFloor ||
		d.PeakDir != m.PeakDir || len(d.Tiles) != len(m.Tiles) {
		t.Fatal("decoded header differs from original")
	}
	// Base64 transport round-trips as well.
	d64, err := DecodeBase64(m.EncodeBase64())
	if err != nil {
		t.Fatalf("base64 round trip: %v", err)
	}
	if !bytes.Equal(d64.Encode(), b) {
		t.Fatal("base64 round trip changed the payload")
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	var payloads [][]byte
	for _, w := range []int{1, 2, 7} {
		m, _ := buildTestMap(t, Options{Workers: w})
		payloads = append(payloads, m.Encode())
	}
	for i := 1; i < len(payloads); i++ {
		if !bytes.Equal(payloads[0], payloads[i]) {
			t.Fatalf("payload differs between worker counts 1 and %d", []int{1, 2, 7}[i])
		}
	}
}

func TestPayloadSizeBudget(t *testing.T) {
	m, _ := buildTestMap(t, Options{})
	if n := len(m.Encode()); n > 4096 {
		t.Errorf("default payload %d bytes; downlink budget is a few KB", n)
	}
	// The coarse context layer alone stays under a KB.
	if len(m.Coarse) > 1024 {
		t.Errorf("coarse layer %d pixels", len(m.Coarse))
	}
}

func TestEmbeddedContoursMatchRecomputed(t *testing.T) {
	m, _ := buildTestMap(t, Options{})
	d, err := Decode(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	thr68, area68 := d.contour(0.68)
	thr90, area90 := d.contour(0.90)
	if float32(thr68) != d.Thr68 || float32(area68) != d.Area68 {
		t.Errorf("68%% contour: recomputed (%v, %v), embedded (%v, %v)", thr68, area68, d.Thr68, d.Area68)
	}
	if float32(thr90) != d.Thr90 || float32(area90) != d.Area90 {
		t.Errorf("90%% contour: recomputed (%v, %v), embedded (%v, %v)", thr90, area90, d.Thr90, d.Area90)
	}
	if d.Area68 > d.Area90 {
		t.Errorf("68%% area %v exceeds 90%% area %v", d.Area68, d.Area90)
	}
}

func TestTruthInsideCredibleRegion(t *testing.T) {
	m, s := buildTestMap(t, Options{})
	if pd := geom.Deg(geom.AngleBetween(m.Peak(), s)); pd > 6 {
		t.Errorf("peak %v° from the source", pd)
	}
	if !m.Contains(s, 0.90) {
		t.Error("tempered 90% region misses the source")
	}
	if !m.Contains(m.Peak(), 0.68) {
		t.Error("peak itself outside the 68% region")
	}
	if a := m.CredibleAreaDeg2(0.90); a != float64(m.Area90) {
		// CredibleAreaDeg2 recomputes from quantized data and must agree
		// with the embedded header at float32 precision.
		if float32(a) != m.Area90 {
			t.Errorf("CredibleAreaDeg2(0.90) = %v, header %v", a, m.Area90)
		}
	}
}

func TestRefinementCoversPeak(t *testing.T) {
	m, _ := buildTestMap(t, Options{})
	if len(m.Tiles) == 0 {
		t.Fatal("no refined tiles on a concentrated posterior")
	}
	if _, ok := m.fineVal[m.fine.Find(m.Peak())]; !ok {
		t.Error("peak direction not covered by a fine tile")
	}
	// Fine pixels at the mode sharpen the resolution: the fine grid has
	// RefineFactor² smaller pixels.
	if m.NumFine() == 0 {
		t.Fatal("tiles carry no fine values")
	}
}

func TestTemperatureOneIsStatisticalMap(t *testing.T) {
	m1, _ := buildTestMap(t, Options{Temperature: 1})
	mT, _ := buildTestMap(t, Options{})
	if m1.Temperature != 1 || mT.Temperature != DefaultTemperature {
		t.Fatalf("temperatures %v, %v", m1.Temperature, mT.Temperature)
	}
	// Tempering at T > 1 widens the credible regions.
	if float64(mT.Area90) <= float64(m1.Area90) {
		t.Errorf("tempered 90%% area %v not wider than statistical %v", mT.Area90, m1.Area90)
	}
}

func TestDegenerateFlatSurface(t *testing.T) {
	m := Build(func(geom.Vec) float64 { return 0 }, Options{})
	b := m.Encode()
	d, err := Decode(b)
	if err != nil {
		t.Fatalf("flat surface decode: %v", err)
	}
	if !bytes.Equal(d.Encode(), b) {
		t.Fatal("flat surface does not round-trip")
	}
	// Flat posterior: the 90% region covers ~90% of the hemisphere.
	hemi := 2 * math.Pi * deg2PerSr
	if a := float64(m.Area90); a < 0.7*hemi || a > hemi+1 {
		t.Errorf("flat 90%% area %v deg², hemisphere is %v", a, hemi)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	m, _ := buildTestMap(t, Options{})
	good := m.Encode()

	if _, err := Decode(nil); err == nil {
		t.Error("nil payload accepted")
	}
	if _, err := Decode(good[:len(good)-5]); err == nil {
		t.Error("truncated payload accepted")
	}
	for _, off := range []int{0, 4, 6, 8, 20, headerSize + 3, len(good) - 1} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Errorf("corrupt byte at offset %d accepted", off)
		}
	}
	// Trailing garbage with a recomputed (valid) CRC still fails.
	body := append([]byte(nil), good[:len(good)-4]...)
	body = append(body, 0, 0)
	body = binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	if _, err := Decode(body); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestQuantizeDequantize(t *testing.T) {
	const floor = -18.0
	if q := quantize(0, floor, 255); q != 255 {
		t.Errorf("quantize(0) = %d", q)
	}
	if q := quantize(floor-5, floor, 255); q != 0 {
		t.Errorf("below-floor quantize = %d", q)
	}
	if q := quantize(math.NaN(), floor, 255); q != 0 {
		t.Errorf("NaN quantize = %d", q)
	}
	if v := dequantize(255, 255, floor); v != 0 {
		t.Errorf("dequantize(max) = %v", v)
	}
	if v := dequantize(0, 255, floor); v != floor {
		t.Errorf("dequantize(0) = %v", v)
	}
	// Quantization is monotone and bounded within one step of the input.
	prev := -1
	for v := floor; v <= 0; v += 0.01 {
		q := quantize(v, floor, 65535)
		if q < prev {
			t.Fatalf("quantize not monotone at %v", v)
		}
		prev = q
		if got := dequantize(q, 65535, floor); math.Abs(got-v) > -floor/65535 {
			t.Fatalf("dequantize error %v at %v", got-v, v)
		}
	}
}

func TestMixtureSurfaceBuilds(t *testing.T) {
	cfg := localize.DefaultConfig()
	s := geom.FromSpherical(geom.Rad(20), geom.Rad(-30))
	rings := testRings(s, 60, 0.04, xrand.New(3))
	probs := make([]float64, len(rings))
	m := FromRings(&cfg, rings, probs, Options{})
	if pd := geom.Deg(geom.AngleBetween(m.Peak(), s)); pd > 8 {
		t.Errorf("mixture map peak %v° from the source", pd)
	}
	if !bytes.Equal(m.Encode(), mustRedecode(t, m.Encode())) {
		t.Error("mixture map does not round-trip")
	}
}

func mustRedecode(t *testing.T, b []byte) []byte {
	t.Helper()
	d, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	return d.Encode()
}
