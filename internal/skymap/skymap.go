// Package skymap renders posterior sky surfaces into downlink-grade
// payloads: a hierarchical equal-area pixelization (coarse bands over the
// whole visible hemisphere, fine tiles only where the posterior
// concentrates), log-probability quantized to uint8/uint16 with a per-map
// scale, and the tempered 68%/90% credible contours embedded in the
// header. This is the product a GRB telemetry link actually carries —
// compare the HEALPix maps attached to GCN notices — where internal/sky
// holds the full-resolution float surface a ground analysis works with.
//
// Determinism is the load-bearing contract: Build is a pure function of
// (evaluator, options) at any worker count, and Encode is a pure function
// of the map, so the serving fleet can cache payloads exactly and a flight
// journal replay reproduces live alert maps bitwise.
package skymap

import (
	"context"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/localize"
	"repro/internal/par"
	"repro/internal/recon"
	"repro/internal/sky"
)

// Defaults and format bounds. The bounds are enforced by Decode so a
// hostile payload cannot request an enormous grid allocation.
const (
	// DefaultCoarseBands is the whole-sky context layer resolution
	// (~4·bands² pixels; 8 bands ≈ 256 pixels ≈ 9°-scale).
	DefaultCoarseBands = 8
	// DefaultRefineFactor multiplies the band count for the fine layer
	// (8×4 = 32 bands ≈ 2°-scale pixels near the mode).
	DefaultRefineFactor = 4
	// DefaultMaxTiles caps how many coarse pixels are refined.
	DefaultMaxTiles = 32
	// DefaultRefineFraction is the coarse posterior mass the refined tiles
	// must cover (tile count permitting).
	DefaultRefineFraction = 0.999
	// DefaultDynamicRange is how many natural-log units below the peak the
	// quantization floor sits; density further down clips to the floor.
	DefaultDynamicRange = 18.0
	// DefaultTemperature is the empirically fitted posterior-tempering
	// systematic inflation (see EXPERIMENTS.md "Credible-region coverage":
	// analytic regions undercover, T=16 restores near-nominal coverage).
	DefaultTemperature = 16.0

	// MaxCoarseBands and MaxRefineFactor bound what Decode accepts.
	MaxCoarseBands  = 32
	MaxRefineFactor = 8
)

// Options configures Build. The zero value of every field means the
// documented default.
type Options struct {
	// CoarseBands is the context layer's polar band count [2, MaxCoarseBands].
	CoarseBands int
	// RefineFactor multiplies CoarseBands for the fine layer
	// [1, MaxRefineFactor]; 1 disables genuine refinement.
	RefineFactor int
	// MaxTiles caps the number of refined coarse pixels.
	MaxTiles int
	// RefineFraction is the coarse posterior mass to cover with fine tiles
	// (0 < f ≤ 1); refinement stops at MaxTiles regardless.
	RefineFraction float64
	// DynamicRange is the quantization depth in natural-log units below
	// the peak.
	DynamicRange float64
	// Temperature divides the log-likelihood before quantization (the
	// sky.Map.Tempered calibration); 0 means DefaultTemperature, 1 means
	// the statistical-only map, and negative values panic.
	Temperature float64
	// Workers caps evaluation parallelism (0 = process default, 1 =
	// serial). The map is bitwise-identical for any value.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.CoarseBands == 0 {
		o.CoarseBands = DefaultCoarseBands
	}
	if o.RefineFactor == 0 {
		o.RefineFactor = DefaultRefineFactor
	}
	if o.MaxTiles == 0 {
		o.MaxTiles = DefaultMaxTiles
	}
	if o.RefineFraction == 0 {
		o.RefineFraction = DefaultRefineFraction
	}
	if o.DynamicRange == 0 {
		o.DynamicRange = DefaultDynamicRange
	}
	if o.Temperature == 0 {
		o.Temperature = DefaultTemperature
	}
	if o.CoarseBands < 2 || o.CoarseBands > MaxCoarseBands {
		panic("skymap: CoarseBands out of range")
	}
	if o.RefineFactor < 1 || o.RefineFactor > MaxRefineFactor {
		panic("skymap: RefineFactor out of range")
	}
	if o.Temperature < 0 {
		panic("skymap: negative temperature")
	}
	if o.RefineFraction < 0 || o.RefineFraction > 1 {
		panic("skymap: RefineFraction out of range")
	}
	if o.MaxTiles < 1 {
		o.MaxTiles = 1
	}
	if o.DynamicRange < 0 {
		panic("skymap: negative dynamic range")
	}
	return o
}

// Tile is one refined coarse pixel: quantized fine-layer values for every
// fine pixel whose center falls inside coarse pixel Coarse, in ascending
// fine-index order. The fine indices themselves are not stored — the
// coarse→fine assignment is a pure function of the two grids, so the
// decoder recomputes it.
type Tile struct {
	Coarse int
	Values []uint16
}

// Map is a hierarchical quantized posterior sky map: the decoded (or
// freshly built) form of a payload. All header fields are stored at the
// serialized float32 precision so encode→decode→encode is byte-identical.
type Map struct {
	// CoarseBands and RefineFactor fix both grid geometries.
	CoarseBands  int
	RefineFactor int
	// Temperature is the tempering divisor baked into the values (1 =
	// statistical-only).
	Temperature float32
	// LogFloor is the quantization floor: quantized value 0 means the log
	// density sits LogFloor (< 0) natural-log units below the peak.
	LogFloor float32
	// PeakDir is the maximum-density pixel center (unit vector).
	PeakDir [3]float32
	// Thr68/Thr90 are the credible contours embedded for the downlink
	// consumer: a direction is inside the p region iff its relative log
	// density is ≥ the threshold. Area68/Area90 are the region areas in
	// square degrees.
	Thr68, Thr90   float32
	Area68, Area90 float32
	// Coarse holds one uint8 per coarse pixel (whole-sky context layer).
	Coarse []uint8
	// Tiles are the refined coarse pixels, ascending by Coarse index.
	Tiles []Tile

	// Derived lookup state (rebuilt by finish, never serialized).
	coarse, fine *sky.Grid
	fineVal      map[int]uint16
}

// finish (re)builds the derived grids and the fine-pixel lookup.
func (m *Map) finish() {
	m.coarse = sky.NewGrid(m.CoarseBands)
	m.fine = sky.NewGrid(m.CoarseBands * m.RefineFactor)
	members := tileMembers(m.coarse, m.fine)
	m.fineVal = make(map[int]uint16)
	for _, t := range m.Tiles {
		for k, j := range members[t.Coarse] {
			if k < len(t.Values) {
				m.fineVal[j] = t.Values[k]
			}
		}
	}
}

// tileMembers assigns every fine pixel to the coarse pixel containing its
// center: members[c] lists c's fine pixels in ascending fine-index order.
// The assignment is a pure function of the two grids.
func tileMembers(coarse, fine *sky.Grid) map[int][]int {
	members := make(map[int][]int, coarse.NumPixels())
	for j := 0; j < fine.NumPixels(); j++ {
		c := coarse.Find(fine.Dir(j))
		members[c] = append(members[c], j)
	}
	return members
}

// quantize maps a relative log density v ∈ [floor, 0] onto [0, qmax].
// NaN and everything at or below the floor clip to 0; 0 and above clip to
// qmax.
func quantize(v, floor float64, qmax int) int {
	if !(v > floor) { // NaN-safe
		return 0
	}
	if v >= 0 {
		return qmax
	}
	q := int(math.Round((v - floor) / -floor * float64(qmax)))
	if q < 0 {
		q = 0
	}
	if q > qmax {
		q = qmax
	}
	return q
}

// dequantize inverts quantize: q=0 → floor, q=qmax → 0.
func dequantize(q, qmax int, floor float64) float64 {
	return floor * (1 - float64(q)/float64(qmax))
}

// Build evaluates the log-likelihood surface eval hierarchically and
// quantizes it into a Map: every coarse pixel is evaluated, then the
// smallest set of coarse pixels covering RefineFraction of the coarse
// posterior mass (at most MaxTiles, ties broken by pixel index) is
// re-evaluated on the fine grid. The result is a pure function of (eval,
// opts) — identical at any Workers value.
func Build(eval func(geom.Vec) float64, opts Options) *Map {
	opts = opts.withDefaults()
	coarse := sky.NewGrid(opts.CoarseBands)
	fine := sky.NewGrid(opts.CoarseBands * opts.RefineFactor)
	pool := par.NewPool(opts.Workers)
	temp := opts.Temperature

	// Coarse layer: tempered log-likelihood at every pixel center, each
	// value in its fixed slot.
	cl := make([]float64, coarse.NumPixels())
	pool.ForRange(context.Background(), len(cl), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			cl[i] = eval(coarse.Dir(i)) / temp
		}
	})

	// Refinement selection: coarse posterior mass, highest first, ties by
	// pixel index.
	mx := math.Inf(-1)
	for _, v := range cl {
		if v > mx {
			mx = v
		}
	}
	if math.IsInf(mx, -1) || math.IsNaN(mx) {
		mx = 0 // degenerate surface: fall through to a flat selection
	}
	mass := make([]float64, len(cl))
	var total float64
	for i, v := range cl {
		mass[i] = math.Exp(v-mx) * coarse.PixelSr(i)
		total += mass[i]
	}
	if !(total > 0) {
		for i := range mass {
			mass[i] = coarse.PixelSr(i)
		}
		total = 2 * math.Pi
	}
	order := make([]int, len(mass))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ma, mb := mass[order[a]], mass[order[b]]
		if ma != mb {
			return ma > mb
		}
		return order[a] < order[b]
	})
	var refined []int
	var acc float64
	for _, i := range order {
		if len(refined) >= opts.MaxTiles {
			break
		}
		refined = append(refined, i)
		acc += mass[i]
		if acc >= opts.RefineFraction*total {
			break
		}
	}
	sort.Ints(refined)

	// Fine layer: evaluate only the member pixels of refined tiles.
	members := tileMembers(coarse, fine)
	var fineIdx []int
	for _, c := range refined {
		fineIdx = append(fineIdx, members[c]...)
	}
	fl := make([]float64, len(fineIdx))
	pool.ForRange(context.Background(), len(fineIdx), func(_, lo, hi int) {
		for k := lo; k < hi; k++ {
			fl[k] = eval(fine.Dir(fineIdx[k])) / temp
		}
	})

	// Global peak: the maximum evaluated density. Fine pixels win ties —
	// they are the resolution the notice quotes.
	peak := mx
	peakFine := -1
	for k, v := range fl {
		if v > peak {
			peak, peakFine = v, fineIdx[k]
		}
	}
	peakCoarse := 0
	if peakFine < 0 {
		for i, v := range cl {
			if v == peak {
				peakCoarse = i
				break
			}
		}
	}
	if math.IsInf(peak, -1) || math.IsNaN(peak) {
		peak = 0
	}

	// Quantize both layers relative to the peak.
	floor := -opts.DynamicRange
	m := &Map{
		CoarseBands:  opts.CoarseBands,
		RefineFactor: opts.RefineFactor,
		Temperature:  float32(temp),
		LogFloor:     float32(floor),
		Coarse:       make([]uint8, len(cl)),
	}
	for i, v := range cl {
		m.Coarse[i] = uint8(quantize(v-peak, floor, 255))
	}
	k := 0
	for _, c := range refined {
		tile := Tile{Coarse: c, Values: make([]uint16, len(members[c]))}
		for kk := range tile.Values {
			tile.Values[kk] = uint16(quantize(fl[k]-peak, floor, 65535))
			k++
		}
		m.Tiles = append(m.Tiles, tile)
	}

	var pd geom.Vec
	if peakFine >= 0 {
		pd = fine.Dir(peakFine)
	} else {
		pd = coarse.Dir(peakCoarse)
	}
	m.PeakDir = [3]float32{float32(pd.X), float32(pd.Y), float32(pd.Z)}

	m.finish()

	// Embed the tempered credible contours, computed from the *quantized*
	// data so the decoder reproduces them exactly.
	thr68, area68 := m.contour(0.68)
	thr90, area90 := m.contour(0.90)
	m.Thr68, m.Area68 = float32(thr68), float32(area68)
	m.Thr90, m.Area90 = float32(thr90), float32(area90)
	return m
}

// FromRings builds the downlink map for a localized burst from its
// surviving rings: the background-aware mixture surface when per-ring
// background probabilities are supplied, the plain robust likelihood
// otherwise.
func FromRings(cfg *localize.Config, rings []*recon.Ring, bkgProb []float64, opts Options) *Map {
	var eval func(geom.Vec) float64
	if bkgProb != nil {
		eval = sky.MixtureEvaluator(cfg, rings, bkgProb)
	} else {
		eval = sky.LikelihoodEvaluator(cfg, rings)
	}
	return Build(eval, opts)
}

// cell is one effective-resolution element of the hierarchical map: a fine
// pixel inside a refined tile, or an unrefined coarse pixel.
type cell struct {
	logd float64 // relative log density (≤ 0)
	sr   float64 // solid angle
	fine bool
	idx  int
}

// cells lists the map's effective elements in a fixed deterministic order:
// unrefined coarse pixels ascending, then tile fine pixels ascending.
func (m *Map) cells() []cell {
	refined := make(map[int]bool, len(m.Tiles))
	for _, t := range m.Tiles {
		refined[t.Coarse] = true
	}
	floor := float64(m.LogFloor)
	var out []cell
	for i, q := range m.Coarse {
		if refined[i] {
			continue
		}
		out = append(out, cell{logd: dequantize(int(q), 255, floor), sr: m.coarse.PixelSr(i), idx: i})
	}
	members := tileMembers(m.coarse, m.fine)
	for _, t := range m.Tiles {
		mem := members[t.Coarse]
		for k, q := range t.Values {
			out = append(out, cell{logd: dequantize(int(q), 65535, floor), sr: m.fine.PixelSr(mem[k]), fine: true, idx: mem[k]})
		}
	}
	return out
}

const deg2PerSr = (180 / math.Pi) * (180 / math.Pi)

// contour computes the highest-posterior-density credible contour at level
// p from the quantized data: cells are ranked by density (ties: fine
// before coarse, then pixel index) and accumulated until their posterior
// mass reaches p. It returns the relative log-density threshold of the
// last included cell and the included area in square degrees.
func (m *Map) contour(p float64) (thr float64, areaDeg2 float64) {
	cs := m.cells()
	sort.Slice(cs, func(a, b int) bool {
		if cs[a].logd != cs[b].logd {
			return cs[a].logd > cs[b].logd
		}
		if cs[a].fine != cs[b].fine {
			return cs[a].fine
		}
		return cs[a].idx < cs[b].idx
	})
	var total float64
	for _, c := range cs {
		total += math.Exp(c.logd) * c.sr
	}
	var acc, sr float64
	thr = 0
	for _, c := range cs {
		acc += math.Exp(c.logd) * c.sr
		sr += c.sr
		thr = c.logd
		if acc >= p*total {
			break
		}
	}
	return thr, sr * deg2PerSr
}

// CredibleAreaDeg2 returns the area of the p credible region in square
// degrees, recomputed from the quantized payload (for p = 0.68 / 0.90 it
// equals the embedded Area68/Area90 by construction).
func (m *Map) CredibleAreaDeg2(p float64) float64 {
	_, area := m.contour(p)
	return area
}

// LogDensity returns the relative log posterior density (≤ 0, peak = 0)
// at direction d: the fine layer where d falls inside an evaluated fine
// pixel, the coarse context layer elsewhere.
func (m *Map) LogDensity(d geom.Vec) float64 {
	if q, ok := m.fineVal[m.fine.Find(d)]; ok {
		return dequantize(int(q), 65535, float64(m.LogFloor))
	}
	return dequantize(int(m.Coarse[m.coarse.Find(d)]), 255, float64(m.LogFloor))
}

// Contains reports whether direction d lies inside the p credible region.
func (m *Map) Contains(d geom.Vec, p float64) bool {
	thr, _ := m.contour(p)
	return m.LogDensity(d) >= thr
}

// Peak returns the map's maximum-density direction.
func (m *Map) Peak() geom.Vec {
	return geom.Vec{X: float64(m.PeakDir[0]), Y: float64(m.PeakDir[1]), Z: float64(m.PeakDir[2])}
}

// NumFine returns the total fine-pixel count across tiles.
func (m *Map) NumFine() int {
	n := 0
	for _, t := range m.Tiles {
		n += len(t.Values)
	}
	return n
}
