package chaos

import (
	"bytes"
	"testing"
)

// FuzzScenarioParse hammers the JSON spec parser with arbitrary bytes. The
// parser fronts untrusted scenario files, so it must never panic, and any
// spec it accepts must be valid, encodable, and stable under one more
// parse/encode round trip (the canonical-form contract chaos-smoke's
// byte-diff relies on).
func FuzzScenarioParse(f *testing.F) {
	for _, s := range Library() {
		f.Add(s.Encode())
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","duration_sec":1,"background":{}}`))
	f.Add([]byte(`{"name":"x","duration_sec":1e309,"background":{"rate_hz":-1}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("ParseSpec accepted a spec Validate rejects: %v", verr)
		}
		enc := s.Encode()
		s2, err := ParseSpec(enc)
		if err != nil {
			t.Fatalf("accepted spec does not re-parse: %v\n%s", err, enc)
		}
		if !bytes.Equal(enc, s2.Encode()) {
			t.Fatalf("encoding not canonical:\n%s\nvs\n%s", enc, s2.Encode())
		}
	})
}
