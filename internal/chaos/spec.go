// Package chaos composes flight-like stress campaigns against the on-board
// stack and scores them like a mission review.
//
// The existing smoke tests replay clean single-burst exposures; a real
// orbit is messier: bursts overlap, the background breathes with the
// orbital phase and spikes in SAA-like passages, detector panels drop out
// and rejoin, clocks drift past the static skew correction, journals are
// backfilled while live data keeps flowing, and the serve layer saturates.
// This package turns each of those into a composable scenario primitive,
// drives the real internal/merge → internal/stream pipeline with the
// composed stress, and reports detection efficiency at a fixed false-alert
// budget, event-time alert latency percentiles, and per-fault-phase
// drop/late accounting.
//
// Determinism is the whole point: a scenario run is a pure function of
// (spec, seed) — every random draw comes from fixed substreams of the
// deterministic seeded RNG, the merge's fused order is a pure function of
// source contents, the overload gate advances on event time only, and the
// localization pipeline is bitwise-identical at any worker count. Two runs
// of the same (spec, seed) therefore produce byte-identical scorecards and
// alert records at any parallelism — which is what lets trigger-threshold
// tuning (internal/tune) treat the scorer as a deterministic objective.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/campaign"
)

// Limits on spec contents, enforced by Validate. They bound what a parsed
// scenario can ask the generator for (the parser accepts untrusted JSON).
const (
	MaxDurationSec = 600
	MaxLanes       = 16
	MaxBursts      = 64
	MaxFaults      = 16
	MaxRateHz      = 1e6
)

// Spec is one chaos scenario: a deterministic description of an exposure —
// what arrives, through which detector lanes, and which faults strike when.
// The zero value is not runnable; build specs in Go or parse them from
// JSON with ParseSpec, then Validate.
type Spec struct {
	// Name labels the scenario in scorecards and metrics.
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description,omitempty"`
	// DurationSec is the exposure length in seconds (0 < d ≤ MaxDurationSec).
	DurationSec float64 `json:"duration_sec"`
	// Lanes is the number of detector segments feeding the merge
	// (default 1, ≤ MaxLanes). Generated events are dealt across lanes by a
	// seeded RNG, so every lane sees a statistically equivalent stream.
	Lanes int `json:"lanes,omitempty"`
	// LaneOffsets gives each lane a static clock offset in seconds: lane
	// raw times are true times plus the offset, and the merge is configured
	// with the same offset, so the correction is exact. Empty means all
	// zero; otherwise it must have exactly Lanes entries.
	LaneOffsets []float64 `json:"lane_offsets,omitempty"`

	// Background shapes the time-varying background environment.
	Background BackgroundSpec `json:"background"`
	// Bursts are the explicitly placed bursts.
	Bursts []BurstSpec `json:"bursts,omitempty"`
	// RandomBursts, when non-nil, adds population-sampled bursts on top of
	// the explicit ones.
	RandomBursts *RandomBurstSpec `json:"random_bursts,omitempty"`

	// Dropouts are detector-lane outage windows.
	Dropouts []DropoutSpec `json:"dropouts,omitempty"`
	// Drifts are per-lane clock faults beyond the static offset correction.
	Drifts []DriftSpec `json:"drifts,omitempty"`
	// Overload, when non-nil, models sustained serve-layer saturation as a
	// deterministic event-time admission gate in front of the trigger.
	Overload *OverloadSpec `json:"overload,omitempty"`
	// Downlink, when non-nil, runs the post-trigger telemetry downlink over
	// an emulated lossy link: alert records, sky-map payloads, the
	// scorecard snapshot, and delta-compressed journal backfill contend for
	// the bandwidth budget, and the scorecard gains a downlink section.
	Downlink *DownlinkSpec `json:"downlink,omitempty"`

	// Trigger overrides the stream trigger's flight defaults; zero fields
	// keep the defaults. The tuner searches over these three fields.
	Trigger TriggerSpec `json:"trigger,omitempty"`
	// FalseAlertBudget is the number of false alerts the mission review
	// tolerates for this scenario; the scorecard objective penalizes any
	// excess.
	FalseAlertBudget int `json:"false_alert_budget"`
}

// BackgroundSpec describes the time-varying background rate: a base rate
// modulated sinusoidally (orbital phase) and multiplied inside SAA-like
// passage windows. The instantaneous thrown-particle rate is
//
//	rate(t) = RateHz · (1 + ModFraction·sin(2πt/ModPeriodSec + ModPhaseRad)) · saa(t)
//
// realized by deterministic thinning of an envelope-rate Poisson stream.
type BackgroundSpec struct {
	// RateHz is the base thrown-particle rate (0 = the calibrated default
	// model rate, background.DefaultModel().RatePerSecond).
	RateHz float64 `json:"rate_hz,omitempty"`
	// ModFraction is the sinusoidal modulation amplitude in [0, 1).
	ModFraction float64 `json:"mod_fraction,omitempty"`
	// ModPeriodSec is the modulation period (required when ModFraction > 0).
	ModPeriodSec float64 `json:"mod_period_sec,omitempty"`
	// ModPhaseRad is the modulation phase at t = 0.
	ModPhaseRad float64 `json:"mod_phase_rad,omitempty"`
	// SAA lists rate-multiplier passage windows.
	SAA []SAASpec `json:"saa,omitempty"`
}

// SAASpec is one SAA-like passage: the background rate is multiplied by
// RateFactor while t ∈ [StartSec, EndSec).
type SAASpec struct {
	StartSec   float64 `json:"start_sec"`
	EndSec     float64 `json:"end_sec"`
	RateFactor float64 `json:"rate_factor"`
}

// BurstSpec places one burst: onset time plus the simulator's burst
// parameters (fluence in MeV/cm², source angles in degrees).
type BurstSpec struct {
	TimeSec    float64 `json:"time_sec"`
	Fluence    float64 `json:"fluence"`
	PolarDeg   float64 `json:"polar_deg"`
	AzimuthDeg float64 `json:"azimuth_deg,omitempty"`
}

// RandomBurstSpec adds Count bursts sampled from the standard log N–log S
// population (campaign.Population), with onsets uniform in
// [StartSec, EndSec).
type RandomBurstSpec struct {
	Count       int     `json:"count"`
	FluenceMin  float64 `json:"fluence_min"`
	FluenceMax  float64 `json:"fluence_max"`
	Slope       float64 `json:"slope"`
	MaxPolarDeg float64 `json:"max_polar_deg"`
	StartSec    float64 `json:"start_sec"`
	EndSec      float64 `json:"end_sec"`
}

// population converts the spec to the campaign sampling distribution.
func (r *RandomBurstSpec) population() campaign.Population {
	return campaign.Population{
		FluenceMin:  r.FluenceMin,
		FluenceMax:  r.FluenceMax,
		Slope:       r.Slope,
		MaxPolarDeg: r.MaxPolarDeg,
	}
}

// DropoutSpec silences one lane for a window: events the lane would have
// delivered in [StartSec, EndSec) (true time) are lost. With Backfill set,
// the lost events are instead recovered from the lane's journal by a
// separate merge source that races the live feeds — the watermarked merge
// must weave them back in without reordering or losing anything.
type DropoutSpec struct {
	Lane     int     `json:"lane"`
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
	Backfill bool    `json:"backfill,omitempty"`
}

// DriftSpec corrupts one lane's clock beyond the static offset correction,
// starting at StartSec (true time): a one-time step of StepSec followed by
// a linear drift of DriftPerSec seconds per second. A negative step makes
// the lane locally non-monotonic, which the merge surfaces as late drops
// rather than reordering.
type DriftSpec struct {
	Lane        int     `json:"lane"`
	StartSec    float64 `json:"start_sec"`
	StepSec     float64 `json:"step_sec,omitempty"`
	DriftPerSec float64 `json:"drift_per_sec,omitempty"`
}

// warp maps a true event time to the lane's faulty clock.
func (d DriftSpec) warp(t float64) float64 {
	if t < d.StartSec {
		return t
	}
	return t + d.StepSec + d.DriftPerSec*(t-d.StartSec)
}

// OverloadSpec models sustained serve-layer overload: while
// t ∈ [StartSec, EndSec), admission to the trigger is capped at CapacityHz
// events/second with BurstEvents of instantaneous headroom (a token bucket
// advancing on event time — deterministic for a given fused stream).
// Events beyond capacity are shed and counted, exactly like the serve
// layer's bounded admission rejecting with 429 under load.
type OverloadSpec struct {
	StartSec    float64 `json:"start_sec"`
	EndSec      float64 `json:"end_sec"`
	CapacityHz  float64 `json:"capacity_hz"`
	BurstEvents int     `json:"burst_events,omitempty"`
}

// DownlinkSpec configures the post-trigger telemetry downlink simulation:
// the bandwidth budget, the link fault model, and how long past the end of
// the exposure the link may keep draining. The simulation is event-time
// deterministic, so the scorecard's downlink section is a pure function of
// (spec, seed) like everything else.
type DownlinkSpec struct {
	// BudgetBytesPerSec is the downlink bandwidth budget (required > 0).
	BudgetBytesPerSec float64 `json:"budget_bytes_per_sec"`
	// ChunkBytes is the per-chunk payload size (0 = the 1024-byte default).
	ChunkBytes int `json:"chunk_bytes,omitempty"`
	// DropProb / CorruptProb / ReorderProb shape the link fault model
	// (drop and corrupt in [0, 0.9], reorder in [0, 1]).
	DropProb    float64 `json:"drop_prob,omitempty"`
	CorruptProb float64 `json:"corrupt_prob,omitempty"`
	ReorderProb float64 `json:"reorder_prob,omitempty"`
	// Outages are total link blackouts: every frame in the window is lost.
	Outages []LinkOutageSpec `json:"outages,omitempty"`
	// DrainDeadlineSec bounds how long past the exposure end the link may
	// run to finish backfill (0 = 3600 s).
	DrainDeadlineSec float64 `json:"drain_deadline_sec,omitempty"`
}

// LinkOutageSpec is one downlink blackout window in event time.
type LinkOutageSpec struct {
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
}

// TriggerSpec overrides the stream trigger's flight defaults. Zero fields
// keep the defaults (0.1 s window, 8σ, rate EWMA α 0.05). These are the
// three knobs trigger-threshold tuning searches over.
type TriggerSpec struct {
	WindowSec      float64 `json:"window_sec,omitempty"`
	SigmaThreshold float64 `json:"sigma_threshold,omitempty"`
	RateAlpha      float64 `json:"rate_alpha,omitempty"`
}

// ParseSpec decodes and validates a JSON scenario spec. Unknown fields are
// rejected, so a typoed fault never silently becomes a clean run.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("chaos: parse spec: %w", err)
	}
	// Trailing garbage after the spec object is a malformed file, not data
	// for a future parser.
	if dec.More() {
		return nil, fmt.Errorf("chaos: parse spec: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Encode renders the spec as indented JSON (the inverse of ParseSpec).
func (s *Spec) Encode() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic("chaos: encode spec: " + err.Error()) // specs hold only plain data
	}
	return append(b, '\n')
}

// finite reports whether v is a usable finite number.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate checks the spec against the package limits and internal
// consistency. A valid spec is safe to hand to the generator: every window
// is well-formed, every lane index exists, and every rate and count is
// bounded.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("chaos: spec needs a name")
	}
	if !finite(s.DurationSec) || s.DurationSec <= 0 || s.DurationSec > MaxDurationSec {
		return fmt.Errorf("chaos: duration_sec must be in (0, %d], got %g", MaxDurationSec, s.DurationSec)
	}
	lanes := s.Lanes
	if lanes == 0 {
		lanes = 1
	}
	if lanes < 1 || lanes > MaxLanes {
		return fmt.Errorf("chaos: lanes must be in [1, %d], got %d", MaxLanes, s.Lanes)
	}
	if len(s.LaneOffsets) != 0 && len(s.LaneOffsets) != lanes {
		return fmt.Errorf("chaos: lane_offsets has %d entries for %d lanes", len(s.LaneOffsets), lanes)
	}
	for i, off := range s.LaneOffsets {
		if !finite(off) || math.Abs(off) > 60 {
			return fmt.Errorf("chaos: lane_offsets[%d] = %g out of range [-60, 60]", i, off)
		}
	}
	if err := s.Background.validate(); err != nil {
		return err
	}
	if len(s.Bursts) > MaxBursts {
		return fmt.Errorf("chaos: %d bursts exceeds the limit of %d", len(s.Bursts), MaxBursts)
	}
	for i, b := range s.Bursts {
		switch {
		case !finite(b.TimeSec) || b.TimeSec < 0 || b.TimeSec >= s.DurationSec:
			return fmt.Errorf("chaos: bursts[%d].time_sec = %g outside [0, %g)", i, b.TimeSec, s.DurationSec)
		case !finite(b.Fluence) || b.Fluence <= 0 || b.Fluence > 1000:
			return fmt.Errorf("chaos: bursts[%d].fluence = %g out of (0, 1000]", i, b.Fluence)
		case !finite(b.PolarDeg) || b.PolarDeg < 0 || b.PolarDeg > 90:
			return fmt.Errorf("chaos: bursts[%d].polar_deg = %g out of [0, 90]", i, b.PolarDeg)
		case !finite(b.AzimuthDeg) || math.Abs(b.AzimuthDeg) > 360:
			return fmt.Errorf("chaos: bursts[%d].azimuth_deg = %g out of [-360, 360]", i, b.AzimuthDeg)
		}
	}
	if r := s.RandomBursts; r != nil {
		if r.Count < 1 || r.Count > MaxBursts {
			return fmt.Errorf("chaos: random_bursts.count must be in [1, %d], got %d", MaxBursts, r.Count)
		}
		if len(s.Bursts)+r.Count > MaxBursts {
			return fmt.Errorf("chaos: %d explicit + %d random bursts exceeds the limit of %d",
				len(s.Bursts), r.Count, MaxBursts)
		}
		if err := r.population().Validate(); err != nil {
			return fmt.Errorf("chaos: random_bursts: %w", err)
		}
		if !finite(r.StartSec) || !finite(r.EndSec) || r.StartSec < 0 || r.EndSec <= r.StartSec || r.EndSec > s.DurationSec {
			return fmt.Errorf("chaos: random_bursts window [%g, %g) invalid for duration %g",
				r.StartSec, r.EndSec, s.DurationSec)
		}
	}
	if len(s.Dropouts) > MaxFaults {
		return fmt.Errorf("chaos: %d dropouts exceeds the limit of %d", len(s.Dropouts), MaxFaults)
	}
	for i, d := range s.Dropouts {
		if d.Lane < 0 || d.Lane >= lanes {
			return fmt.Errorf("chaos: dropouts[%d].lane = %d with %d lanes", i, d.Lane, lanes)
		}
		if !finite(d.StartSec) || !finite(d.EndSec) || d.StartSec < 0 || d.EndSec <= d.StartSec {
			return fmt.Errorf("chaos: dropouts[%d] window [%g, %g) invalid", i, d.StartSec, d.EndSec)
		}
	}
	if len(s.Drifts) > MaxFaults {
		return fmt.Errorf("chaos: %d drifts exceeds the limit of %d", len(s.Drifts), MaxFaults)
	}
	for i, d := range s.Drifts {
		if d.Lane < 0 || d.Lane >= lanes {
			return fmt.Errorf("chaos: drifts[%d].lane = %d with %d lanes", i, d.Lane, lanes)
		}
		if !finite(d.StartSec) || d.StartSec < 0 {
			return fmt.Errorf("chaos: drifts[%d].start_sec = %g invalid", i, d.StartSec)
		}
		if !finite(d.StepSec) || math.Abs(d.StepSec) > 10 {
			return fmt.Errorf("chaos: drifts[%d].step_sec = %g out of [-10, 10]", i, d.StepSec)
		}
		// DriftPerSec > -1 keeps the warp monotone; steps are the sanctioned
		// way to make a lane non-monotonic.
		if !finite(d.DriftPerSec) || d.DriftPerSec <= -0.5 || d.DriftPerSec > 0.5 {
			return fmt.Errorf("chaos: drifts[%d].drift_per_sec = %g out of (-0.5, 0.5]", i, d.DriftPerSec)
		}
	}
	if o := s.Overload; o != nil {
		if !finite(o.StartSec) || !finite(o.EndSec) || o.StartSec < 0 || o.EndSec <= o.StartSec {
			return fmt.Errorf("chaos: overload window [%g, %g) invalid", o.StartSec, o.EndSec)
		}
		if !finite(o.CapacityHz) || o.CapacityHz <= 0 || o.CapacityHz > MaxRateHz {
			return fmt.Errorf("chaos: overload.capacity_hz = %g out of (0, %g]", o.CapacityHz, float64(MaxRateHz))
		}
		if o.BurstEvents < 0 || o.BurstEvents > 1<<20 {
			return fmt.Errorf("chaos: overload.burst_events = %d out of [0, 2^20]", o.BurstEvents)
		}
	}
	if d := s.Downlink; d != nil {
		if err := d.validate(); err != nil {
			return err
		}
	}
	if err := s.Trigger.validate(); err != nil {
		return err
	}
	if s.FalseAlertBudget < 0 || s.FalseAlertBudget > 1<<20 {
		return fmt.Errorf("chaos: false_alert_budget = %d out of [0, 2^20]", s.FalseAlertBudget)
	}
	return nil
}

func (b *BackgroundSpec) validate() error {
	if !finite(b.RateHz) || b.RateHz < 0 || b.RateHz > MaxRateHz {
		return fmt.Errorf("chaos: background.rate_hz = %g out of [0, %g]", b.RateHz, float64(MaxRateHz))
	}
	if !finite(b.ModFraction) || b.ModFraction < 0 || b.ModFraction >= 1 {
		return fmt.Errorf("chaos: background.mod_fraction = %g out of [0, 1)", b.ModFraction)
	}
	if b.ModFraction > 0 && (!finite(b.ModPeriodSec) || b.ModPeriodSec <= 0) {
		return fmt.Errorf("chaos: background.mod_period_sec = %g must be positive with modulation on", b.ModPeriodSec)
	}
	if !finite(b.ModPhaseRad) || math.Abs(b.ModPhaseRad) > 2*math.Pi {
		return fmt.Errorf("chaos: background.mod_phase_rad = %g out of [-2π, 2π]", b.ModPhaseRad)
	}
	if len(b.SAA) > MaxFaults {
		return fmt.Errorf("chaos: %d saa windows exceeds the limit of %d", len(b.SAA), MaxFaults)
	}
	for i, w := range b.SAA {
		if !finite(w.StartSec) || !finite(w.EndSec) || w.StartSec < 0 || w.EndSec <= w.StartSec {
			return fmt.Errorf("chaos: saa[%d] window [%g, %g) invalid", i, w.StartSec, w.EndSec)
		}
		if !finite(w.RateFactor) || w.RateFactor < 0 || w.RateFactor > 100 {
			return fmt.Errorf("chaos: saa[%d].rate_factor = %g out of [0, 100]", i, w.RateFactor)
		}
	}
	return nil
}

func (d *DownlinkSpec) validate() error {
	if !finite(d.BudgetBytesPerSec) || d.BudgetBytesPerSec <= 0 || d.BudgetBytesPerSec > 1e12 {
		return fmt.Errorf("chaos: downlink.budget_bytes_per_sec = %g out of (0, 1e12]", d.BudgetBytesPerSec)
	}
	if d.ChunkBytes < 0 || d.ChunkBytes > 60000 {
		return fmt.Errorf("chaos: downlink.chunk_bytes = %d out of [0, 60000]", d.ChunkBytes)
	}
	if !finite(d.DropProb) || d.DropProb < 0 || d.DropProb > 0.9 {
		return fmt.Errorf("chaos: downlink.drop_prob = %g out of [0, 0.9]", d.DropProb)
	}
	if !finite(d.CorruptProb) || d.CorruptProb < 0 || d.CorruptProb > 0.9 {
		return fmt.Errorf("chaos: downlink.corrupt_prob = %g out of [0, 0.9]", d.CorruptProb)
	}
	if !finite(d.ReorderProb) || d.ReorderProb < 0 || d.ReorderProb > 1 {
		return fmt.Errorf("chaos: downlink.reorder_prob = %g out of [0, 1]", d.ReorderProb)
	}
	if len(d.Outages) > MaxFaults {
		return fmt.Errorf("chaos: %d downlink outages exceeds the limit of %d", len(d.Outages), MaxFaults)
	}
	for i, w := range d.Outages {
		if !finite(w.StartSec) || !finite(w.EndSec) || w.StartSec < 0 || w.EndSec <= w.StartSec {
			return fmt.Errorf("chaos: downlink.outages[%d] window [%g, %g) invalid", i, w.StartSec, w.EndSec)
		}
	}
	if !finite(d.DrainDeadlineSec) || d.DrainDeadlineSec < 0 || d.DrainDeadlineSec > 86400 {
		return fmt.Errorf("chaos: downlink.drain_deadline_sec = %g out of [0, 86400]", d.DrainDeadlineSec)
	}
	return nil
}

func (t TriggerSpec) validate() error {
	if !finite(t.WindowSec) || t.WindowSec < 0 || t.WindowSec > 10 {
		return fmt.Errorf("chaos: trigger.window_sec = %g out of [0, 10]", t.WindowSec)
	}
	if !finite(t.SigmaThreshold) || t.SigmaThreshold < 0 || t.SigmaThreshold > 100 {
		return fmt.Errorf("chaos: trigger.sigma_threshold = %g out of [0, 100]", t.SigmaThreshold)
	}
	if !finite(t.RateAlpha) || t.RateAlpha < 0 || t.RateAlpha > 1 {
		return fmt.Errorf("chaos: trigger.rate_alpha = %g out of [0, 1]", t.RateAlpha)
	}
	return nil
}

// lanes returns the effective lane count (the zero value means one).
func (s *Spec) lanes() int {
	if s.Lanes == 0 {
		return 1
	}
	return s.Lanes
}

// laneOffset returns lane i's static clock offset.
func (s *Spec) laneOffset(i int) float64 {
	if len(s.LaneOffsets) == 0 {
		return 0
	}
	return s.LaneOffsets[i]
}

// rateFactor evaluates the background modulation factor at true time t,
// relative to the base rate.
func (b *BackgroundSpec) rateFactor(t float64) float64 {
	f := 1.0
	if b.ModFraction > 0 {
		f *= 1 + b.ModFraction*math.Sin(2*math.Pi*t/b.ModPeriodSec+b.ModPhaseRad)
	}
	for _, w := range b.SAA {
		if t >= w.StartSec && t < w.EndSec {
			f *= w.RateFactor
		}
	}
	return f
}

// envelope returns an upper bound on rateFactor over the whole exposure,
// used as the thinning envelope.
func (b *BackgroundSpec) envelope() float64 {
	f := 1 + b.ModFraction
	saa := 1.0
	for _, w := range b.SAA {
		if w.RateFactor > saa {
			saa = w.RateFactor
		}
	}
	return f * saa
}
