package chaos

import "repro/internal/tune"

// Objective adapts a prepared scenario to the trigger tuner: each candidate
// is evaluated by a full deterministic pipeline run over the prepared
// exposure, scored by the scorecard objective (detection efficiency minus
// the over-budget false-alert penalty). Because generation happens once at
// Prepare and the run is a pure function of the candidate, the returned
// objective is deterministic — random search over it reproduces exactly for
// a fixed search seed.
func (p *Prepared) Objective(opts Options) tune.TriggerObjective {
	return func(c tune.TriggerCandidate) (float64, error) {
		tr := TriggerSpec{
			WindowSec:      c.WindowSec,
			SigmaThreshold: c.SigmaThreshold,
			RateAlpha:      c.RateAlpha,
		}
		// The search's baseline (zero) candidate means "whatever the spec
		// configured", matching how adaptsim falls back when the baseline
		// wins.
		if tr == (TriggerSpec{}) {
			tr = p.Spec.Trigger
		}
		card, _, err := p.RunTrigger(tr, opts)
		if err != nil {
			return 0, err
		}
		return card.Objective, nil
	}
}
