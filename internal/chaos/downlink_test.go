package chaos

import (
	"bytes"
	"testing"
)

// miniDownlink is a fast lossy-downlink scenario: one burst, a mid-pass
// outage, and enough drop/reorder to force retransmissions, at a rate low
// enough that the full journal backfill drains quickly.
func miniDownlink() *Spec {
	return &Spec{
		Name:        "mini-downlink",
		DurationSec: 3,
		Lanes:       2,
		Background:  BackgroundSpec{RateHz: 1500},
		Bursts:      []BurstSpec{{TimeSec: 1.2, Fluence: 4, PolarDeg: 25}},
		Downlink: &DownlinkSpec{
			BudgetBytesPerSec: 16384,
			DropProb:          0.1,
			CorruptProb:       0.02,
			ReorderProb:       0.2,
			Outages:           []LinkOutageSpec{{StartSec: 3.2, EndSec: 3.8}},
		},
		FalseAlertBudget: 1,
	}
}

// TestDownlinkScenario runs the emulated egress leg end to end: the link
// must drain, reproduce the onboard journal bitwise despite drops,
// corruption, reordering, and an outage, compress the backfill at least
// 2×, and stay byte-deterministic across runs and worker counts.
func TestDownlinkScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	spec := miniDownlink()
	const seed = 23

	card1, _, sc := runOnce(t, spec, seed, 1)
	card2, _, _ := runOnce(t, spec, seed, 1)
	card4, _, _ := runOnce(t, spec, seed, 4)
	if !bytes.Equal(card1, card2) {
		t.Errorf("downlink scorecard differs between identical runs:\n%s\nvs\n%s", card1, card2)
	}
	if !bytes.Equal(card1, card4) {
		t.Errorf("downlink scorecard differs between workers 1 and 4:\n%s\nvs\n%s", card1, card4)
	}

	dl := sc.Downlink
	if dl == nil {
		t.Fatal("scorecard has no downlink section")
	}
	if !dl.Drained {
		t.Errorf("downlink did not drain by the deadline (drain_sec %g)", dl.DrainSec)
	}
	if !dl.JournalIntact {
		t.Error("ground journal is not bitwise-identical to the onboard journal")
	}
	if dl.JournalRecords == 0 || dl.JournalRawBytes == 0 {
		t.Errorf("empty journal backfill: %d records, %d bytes", dl.JournalRecords, dl.JournalRawBytes)
	}
	if dl.CompressionRatio < 2.0 {
		t.Errorf("journal compression ratio %.2f below the 2x floor", dl.CompressionRatio)
	}
	if dl.Retransmits == 0 {
		t.Error("lossy link needed no retransmits")
	}
	if dl.OutageLost == 0 {
		t.Error("outage window lost no frames")
	}
	if dl.FramesDropped == 0 || dl.FramesCorrupted == 0 {
		t.Errorf("fault model inactive: %d dropped, %d corrupted", dl.FramesDropped, dl.FramesCorrupted)
	}
	if sc.BurstsDetected != 1 {
		t.Fatalf("burst not detected, downlink alert leg untested")
	}
	if dl.AlertLatency == nil || dl.AlertLatency.Count == 0 {
		t.Error("no alert latency recorded")
	}
	if dl.BytesByClass["alert"] == 0 || dl.BytesByClass["journal"] == 0 {
		t.Errorf("missing per-class byte accounting: %v", dl.BytesByClass)
	}
}
