package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/detector"
	"repro/internal/downlink"
	"repro/internal/evio"
	"repro/internal/obs"
	"repro/internal/stream"
)

// downlinkSeedSalt decorrelates the link emulator's fault substreams from
// the scenario generator's, which both derive from the run seed. The value
// is "downlink" read as a little-endian u64.
const downlinkSeedSalt = 0x6b6e696c6e776f64

// downlinkBatchRecords is the journal-backfill batch size fed through the
// delta codec, matching the flight default in cmd/adaptlink. Batches this
// size amortize the per-batch deflate dictionary reset: the quiet-sky
// ratio is 2.12x at 4096 records vs 1.98x at 512.
const downlinkBatchRecords = 4096

// DownlinkScore is the mission review of the run's telemetry egress: the
// same alerts, sky maps, and scorecard the scenario produced, pushed with
// the full lane journal through a bandwidth-budgeted, faulty link and
// reassembled on the ground. Like the rest of the scorecard it is a pure
// function of (spec, seed) — the link emulator runs in event time with
// seeded fault substreams.
type DownlinkScore struct {
	BudgetBytesPerSec float64 `json:"budget_bytes_per_sec"`

	// Drained reports whether everything was delivered and acked before
	// the drain deadline; DrainSec is the event time at which the link
	// went quiescent (or the deadline, if it did not).
	Drained  bool    `json:"drained"`
	DrainSec float64 `json:"drain_sec"`

	ChunksSent        int64            `json:"chunks_sent"`
	Retransmits       int64            `json:"retransmits"`
	FramesDropped     int64            `json:"frames_dropped"`
	FramesCorrupted   int64            `json:"frames_corrupted"`
	OutageLost        int64            `json:"outage_lost"`
	AcksLost          int64            `json:"acks_lost"`
	BudgetUtilization float64          `json:"budget_utilization"`
	BytesByClass      map[string]int64 `json:"frame_bytes_by_class"`

	// Journal backfill accounting: the full lane journal (lane-major, one
	// evio record per event) is delta-compressed, downlinked, and compared
	// record-for-record against the onboard original.
	JournalRecords    int     `json:"journal_records"`
	JournalRawBytes   int64   `json:"journal_raw_bytes"`
	JournalCodecBytes int64   `json:"journal_codec_bytes"`
	CompressionRatio  float64 `json:"compression_ratio"`
	JournalIntact     bool    `json:"journal_intact"`

	// AlertLatency summarizes enqueue→ground-delivery latency for the
	// alert class, in event-time seconds — the tax the link adds on top of
	// the trigger latency the main scorecard reports.
	AlertLatency *downlink.Summary `json:"alert_latency,omitempty"`
}

// downlinkItem is one payload awaiting enqueue, with its event time.
type downlinkItem struct {
	t       float64
	class   downlink.Class
	payload []byte
}

// runDownlink replays the run's telemetry products through the emulated
// link described by the spec's downlink section and scores the outcome.
// card is the pre-downlink scorecard (its encoded form is itself one of the
// payloads, riding the scorecard class).
func runDownlink(p *Prepared, cfg stream.Config, alerts []stream.Alert, card *Scorecard, metrics *obs.Registry) (*DownlinkScore, error) {
	d := p.Spec.Downlink

	// Flight-side journal: every lane event in lane-major order, one
	// canonical evio record per event — the same shape internal/stream
	// journals to flightlog.
	var records [][]byte
	var rawBytes int64
	for _, lane := range p.gen.lanes {
		for _, ev := range lane {
			rec, err := evio.Marshal([]*detector.Event{ev})
			if err != nil {
				return nil, fmt.Errorf("chaos: downlink journal: %w", err)
			}
			records = append(records, rec)
			rawBytes += int64(len(rec))
		}
	}

	outages := make([]downlink.Window, len(d.Outages))
	for i, w := range d.Outages {
		outages[i] = downlink.Window{StartSec: w.StartSec, EndSec: w.EndSec}
	}

	var ground [][]byte
	var groundErr error
	sess, err := downlink.NewSession(downlink.Config{
		BudgetBytesPerSec: d.BudgetBytesPerSec,
		ChunkBytes:        d.ChunkBytes,
		Seed:              p.Seed ^ downlinkSeedSalt,
		Loss: downlink.LossProfile{
			DropProb:    d.DropProb,
			CorruptProb: d.CorruptProb,
			ReorderProb: d.ReorderProb,
			Outages:     outages,
		},
		Metrics: metrics,
		OnMessage: func(class downlink.Class, _ uint32, payload []byte, _ float64) {
			if class != downlink.ClassJournal || groundErr != nil {
				return
			}
			recs, err := downlink.DecodeRecords(payload)
			if err != nil {
				groundErr = err
				return
			}
			ground = append(ground, recs...)
		},
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: downlink: %w", err)
	}

	// Queue every product at the event time it becomes available: alerts
	// (and their sky maps) when the localization window closes, the
	// scorecard and the journal backfill at end of exposure.
	var items []downlinkItem
	for i := range alerts {
		rec := alerts[i].Record()
		t := rec.TriggerS + cfg.BurstWindowSec
		sky := rec.SkyMapB64
		rec.SkyMapB64 = "" // the map rides its own class, not the alert record
		blob, err := json.Marshal(rec)
		if err != nil {
			return nil, fmt.Errorf("chaos: downlink alert: %w", err)
		}
		items = append(items, downlinkItem{t: t, class: downlink.ClassAlert, payload: blob})
		if sky != "" {
			items = append(items, downlinkItem{t: t, class: downlink.ClassSkyMap, payload: []byte(sky)})
		}
	}
	items = append(items, downlinkItem{t: p.Spec.DurationSec, class: downlink.ClassScorecard, payload: card.Encode()})
	var codecBytes int64
	for lo := 0; lo < len(records); lo += downlinkBatchRecords {
		hi := min(lo+downlinkBatchRecords, len(records))
		enc, err := downlink.EncodeRecords(records[lo:hi], downlink.CodecOptions{})
		if err != nil {
			return nil, fmt.Errorf("chaos: downlink codec: %w", err)
		}
		codecBytes += int64(len(enc))
		items = append(items, downlinkItem{t: p.Spec.DurationSec, class: downlink.ClassJournal, payload: enc})
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].t < items[j].t })

	lastT := 0.0
	for _, it := range items {
		t := it.t
		if t < lastT {
			t = lastT
		}
		if err := sess.EnqueueAt(t, it.class, it.payload); err != nil {
			return nil, fmt.Errorf("chaos: downlink enqueue: %w", err)
		}
		lastT = t
	}

	deadline := d.DrainDeadlineSec
	if deadline <= 0 {
		deadline = 3600
	}
	drained := sess.Flush(lastT + deadline)
	if groundErr != nil {
		return nil, fmt.Errorf("chaos: downlink reassembly: %w", groundErr)
	}

	intact := drained && len(ground) == len(records)
	if intact {
		for i := range records {
			if !bytes.Equal(ground[i], records[i]) {
				intact = false
				break
			}
		}
	}

	st := sess.Stats()
	score := &DownlinkScore{
		BudgetBytesPerSec: d.BudgetBytesPerSec,
		Drained:           drained,
		DrainSec:          st.ElapsedSec,
		ChunksSent:        st.ChunksSent,
		Retransmits:       st.Retransmits,
		FramesDropped:     st.FramesDropped,
		FramesCorrupted:   st.FramesCorrupted,
		OutageLost:        st.OutageLost,
		AcksLost:          st.AcksLost,
		BudgetUtilization: st.BudgetUtilization,
		BytesByClass:      make(map[string]int64, downlink.NumClasses),
		JournalRecords:    len(records),
		JournalRawBytes:   rawBytes,
		JournalCodecBytes: codecBytes,
		JournalIntact:     intact,
		AlertLatency:      st.Latency[downlink.ClassAlert],
	}
	for c := downlink.Class(0); c < downlink.NumClasses; c++ {
		score.BytesByClass[c.String()] = st.FrameBytesByClass[c]
	}
	if codecBytes > 0 {
		score.CompressionRatio = float64(rawBytes) / float64(codecBytes)
	}
	return score, nil
}
