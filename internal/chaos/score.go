package chaos

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/stream"
)

// Detection matching window: an alert counts for a burst when its trigger
// time lands in [onset − MatchEarlySec, onset + MatchLateSec]. The early
// slack covers the pre-trigger rise, the late slack the light-curve tail —
// the same convention the threshold campaign uses. Alerts matching no
// burst are false alerts.
const (
	MatchEarlySec = 0.3
	MatchLateSec  = 1.0
)

// FalseAlertPenalty is the objective's cost per false alert beyond the
// budget: Objective = efficiency − FalseAlertPenalty·max(0, FA − budget).
// A quarter efficiency point per excess alert makes one runaway trigger
// configuration strictly worse than a slightly deafer one, which is the
// mission trade the budget encodes.
const FalseAlertPenalty = 0.25

// Scorecard is the mission review for one scenario run. Every field is a
// pure function of (spec, seed): event-time quantities only, no wall
// clock, no worker count — so it reproduces byte-for-byte across runs and
// parallelism settings. Wall-clock observability lives in the obs registry
// instead.
type Scorecard struct {
	Scenario    string      `json:"scenario"`
	Seed        uint64      `json:"seed"`
	DurationSec float64     `json:"duration_sec"`
	Lanes       int         `json:"lanes"`
	Trigger     TriggerSpec `json:"trigger"`

	EventsGenerated  int   `json:"events_generated"`
	DropoutLost      int   `json:"dropout_lost"`
	BackfillEvents   int   `json:"backfill_events"`
	MergeLateDropped int64 `json:"merge_late_dropped"`
	OverloadShed     int64 `json:"overload_shed"`

	BurstsInjected      int     `json:"bursts_injected"`
	BurstsDetected      int     `json:"bursts_detected"`
	DetectionEfficiency float64 `json:"detection_efficiency"`
	Alerts              int     `json:"alerts"`
	FalseAlerts         int     `json:"false_alerts"`
	FalseAlertBudget    int     `json:"false_alert_budget"`
	WithinBudget        bool    `json:"within_budget"`
	Objective           float64 `json:"objective"`

	Localized   int     `json:"localized"`
	LocErr68Deg float64 `json:"loc_err68_deg,omitempty"`

	// Alert latency in event time: from burst onset to the end of the
	// localization window (trigger + burst window), over detected bursts.
	LatencyP50Sec float64 `json:"latency_p50_sec,omitempty"`
	LatencyP90Sec float64 `json:"latency_p90_sec,omitempty"`
	LatencyMaxSec float64 `json:"latency_max_sec,omitempty"`

	Bursts []BurstScore `json:"bursts"`
	Phases []PhaseScore `json:"phases,omitempty"`

	// Downlink scores the telemetry egress leg when the spec configures
	// one: the run's products replayed through the emulated lossy link.
	Downlink *DownlinkScore `json:"downlink,omitempty"`
}

// BurstScore is one injected burst's outcome.
type BurstScore struct {
	TimeSec    float64 `json:"time_sec"`
	Fluence    float64 `json:"fluence"`
	PolarDeg   float64 `json:"polar_deg"`
	Events     int     `json:"events"`
	Detected   bool    `json:"detected"`
	AlertSeq   int     `json:"alert_seq"` // first matching alert, −1 if none
	LatencySec float64 `json:"latency_sec,omitempty"`
	LocOK      bool    `json:"loc_ok,omitempty"`
	LocErrDeg  float64 `json:"loc_err_deg,omitempty"`
}

// PhaseScore attributes pipeline stress to one fault phase's time window.
// The counters are event-time attributions: late drops and shed events by
// their corrected event time, alerts by trigger time.
type PhaseScore struct {
	Name      string  `json:"name"`
	StartSec  float64 `json:"start_sec"`
	EndSec    float64 `json:"end_sec"`
	LateDrops int64   `json:"late_drops"`
	Shed      int64   `json:"shed"`
	Alerts    int64   `json:"alerts"`
}

// Encode renders the scorecard as indented JSON with a trailing newline —
// the machine-readable form adaptsim emits and chaos-smoke diffs.
func (c *Scorecard) Encode() []byte {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		panic("chaos: encode scorecard: " + err.Error()) // plain data only
	}
	return append(b, '\n')
}

// phaseKind selects which per-phase counter an observation lands in.
type phaseKind int

const (
	phaseLate phaseKind = iota
	phaseShed
	phaseAlert
)

// phaseWindow is one fault phase's attribution bucket. Each counter has a
// single writer goroutine (late: merge loop, shed: stream consumer,
// alerts: the scorer after both are done), so plain fields suffice.
type phaseWindow struct {
	name               string
	startSec, endSec   float64
	late, shed, alerts int64
}

// phaseSet is the scenario's fault phases, in spec order.
type phaseSet struct {
	windows []*phaseWindow
}

// buildPhases derives one attribution window per configured fault.
func buildPhases(s *Spec) *phaseSet {
	ps := &phaseSet{}
	add := func(name string, start, end float64) {
		ps.windows = append(ps.windows, &phaseWindow{name: name, startSec: start, endSec: end})
	}
	for i, w := range s.Background.SAA {
		add(fmt.Sprintf("saa%d", i), w.StartSec, w.EndSec)
	}
	for i, d := range s.Dropouts {
		add(fmt.Sprintf("dropout%d", i), d.StartSec, d.EndSec)
	}
	for i, d := range s.Drifts {
		add(fmt.Sprintf("drift%d", i), d.StartSec, s.DurationSec)
	}
	if o := s.Overload; o != nil {
		add("overload", o.StartSec, o.EndSec)
	}
	return ps
}

// observe attributes one event-time observation to every phase whose
// window contains it.
func (ps *phaseSet) observe(t float64, k phaseKind) {
	for _, w := range ps.windows {
		if t < w.startSec || t >= w.endSec {
			continue
		}
		switch k {
		case phaseLate:
			w.late++
		case phaseShed:
			w.shed++
		case phaseAlert:
			w.alerts++
		}
	}
}

// scoreCounters carries the runner's fault accounting into the scorer.
type scoreCounters struct {
	lateDropped int64
	shed        int64
}

// score matches alerts against injected bursts and assembles the
// scorecard.
func score(p *Prepared, tr TriggerSpec, cfg stream.Config, alerts []stream.Alert, phases *phaseSet, c scoreCounters) *Scorecard {
	card := &Scorecard{
		Scenario:         p.Spec.Name,
		Seed:             p.Seed,
		DurationSec:      p.Spec.DurationSec,
		Lanes:            p.Spec.lanes(),
		Trigger:          tr,
		EventsGenerated:  p.gen.eventsGenerated,
		DropoutLost:      p.gen.dropoutLost,
		BackfillEvents:   p.gen.backfillEvents,
		MergeLateDropped: c.lateDropped,
		OverloadShed:     c.shed,
		BurstsInjected:   len(p.gen.bursts),
		Alerts:           len(alerts),
		FalseAlertBudget: p.Spec.FalseAlertBudget,
	}

	matches := func(trig float64, b BurstTruth) bool {
		return trig >= b.TimeSec-MatchEarlySec && trig <= b.TimeSec+MatchLateSec
	}
	for i := range alerts {
		a := &alerts[i]
		phases.observe(a.TriggerTime, phaseAlert)
		hit := false
		for _, b := range p.gen.bursts {
			if matches(a.TriggerTime, b) {
				hit = true
				break
			}
		}
		if !hit {
			card.FalseAlerts++
		}
	}

	var latencies, locErrs []float64
	for _, b := range p.gen.bursts {
		bs := BurstScore{
			TimeSec:  b.TimeSec,
			Fluence:  b.Fluence,
			PolarDeg: b.PolarDeg,
			Events:   b.Events,
			AlertSeq: -1,
		}
		for i := range alerts {
			a := &alerts[i]
			if !matches(a.TriggerTime, b) {
				continue
			}
			bs.Detected = true
			bs.AlertSeq = a.Seq
			bs.LatencySec = a.TriggerTime + cfg.BurstWindowSec - b.TimeSec
			latencies = append(latencies, bs.LatencySec)
			if a.Result.Loc.OK {
				src := geom.FromSpherical(geom.Rad(b.PolarDeg), geom.Rad(b.AzimuthDeg))
				bs.LocOK = true
				bs.LocErrDeg = geom.Deg(geom.AngleBetween(a.Result.Loc.Dir, src))
				locErrs = append(locErrs, bs.LocErrDeg)
				card.Localized++
			}
			break // first matching alert scores the burst
		}
		if bs.Detected {
			card.BurstsDetected++
		}
		card.Bursts = append(card.Bursts, bs)
	}

	// Efficiency of a burst-free scenario is vacuously 1: such scenarios
	// exist purely to price false alerts, and the objective must not
	// reward deafness there.
	card.DetectionEfficiency = 1
	if card.BurstsInjected > 0 {
		card.DetectionEfficiency = float64(card.BurstsDetected) / float64(card.BurstsInjected)
	}
	excess := card.FalseAlerts - card.FalseAlertBudget
	card.WithinBudget = excess <= 0
	card.Objective = card.DetectionEfficiency - FalseAlertPenalty*math.Max(0, float64(excess))

	if len(latencies) > 0 {
		card.LatencyP50Sec = stats.Containment(latencies, 0.50)
		card.LatencyP90Sec = stats.Containment(latencies, 0.90)
		mx := latencies[0]
		for _, v := range latencies[1:] {
			if v > mx {
				mx = v
			}
		}
		card.LatencyMaxSec = mx
	}
	if len(locErrs) > 0 {
		card.LocErr68Deg = stats.Containment(locErrs, 0.68)
	}

	for _, w := range phases.windows {
		card.Phases = append(card.Phases, PhaseScore{
			Name:      w.name,
			StartSec:  w.startSec,
			EndSec:    w.endSec,
			LateDrops: w.late,
			Shed:      w.shed,
			Alerts:    w.alerts,
		})
	}
	return card
}

// publish mirrors the scorecard's deterministic accounting into the obs
// registry, alongside the merge/stream counters the run already emitted.
func publish(m *obs.Registry, card *Scorecard, phases *phaseSet) {
	if m == nil {
		return
	}
	m.Counter(CtrGenerated).Add(int64(card.EventsGenerated))
	m.Counter(CtrDropoutLost).Add(int64(card.DropoutLost))
	m.Counter(CtrBackfill).Add(int64(card.BackfillEvents))
	m.Counter(CtrLateDropped).Add(card.MergeLateDropped)
	m.Counter(CtrShed).Add(card.OverloadShed)
	m.Counter(CtrDetected).Add(int64(card.BurstsDetected))
	m.Counter(CtrFalseAlerts).Add(int64(card.FalseAlerts))
	for _, w := range phases.windows {
		m.Counter(PhaseMetric(w.name, "late_drops")).Add(w.late)
		m.Counter(PhaseMetric(w.name, "shed")).Add(w.shed)
		m.Counter(PhaseMetric(w.name, "alerts")).Add(w.alerts)
	}
}
