package chaos

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/stream"
)

// miniFlight is a fast multi-fault scenario for tests: two offset lanes, an
// SAA passage, a backfilled dropout, a backward clock step, and an overload
// window, with one burst inside the faulted region. Rates are far below the
// library's so the full determinism matrix stays quick.
func miniFlight() *Spec {
	return &Spec{
		Name:        "mini-flight",
		DurationSec: 3.5,
		Lanes:       2,
		LaneOffsets: []float64{0, 0.07},
		Background: BackgroundSpec{
			RateHz:       3500,
			ModFraction:  0.2,
			ModPeriodSec: 2,
			SAA:          []SAASpec{{StartSec: 1.0, EndSec: 1.8, RateFactor: 2}},
		},
		Bursts:           []BurstSpec{{TimeSec: 1.5, Fluence: 4, PolarDeg: 25}},
		Dropouts:         []DropoutSpec{{Lane: 1, StartSec: 1.2, EndSec: 2.0, Backfill: true}},
		Drifts:           []DriftSpec{{Lane: 0, StartSec: 2.2, StepSec: -0.03, DriftPerSec: 0.005}},
		Overload:         &OverloadSpec{StartSec: 2.4, EndSec: 3.0, CapacityHz: 1500, BurstEvents: 64},
		FalseAlertBudget: 2,
	}
}

// runOnce prepares and runs a spec from scratch, returning the scorecard
// bytes and the alert-record JSON.
func runOnce(t *testing.T, spec *Spec, seed uint64, workers int) ([]byte, []byte, *Scorecard) {
	t.Helper()
	prep, err := Prepare(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	card, recs, err := prep.Run(Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	return card.Encode(), rb, card
}

// TestDeterminismAcrossRunsAndWorkers is the acceptance regression for the
// subsystem: the same (scenario, seed) must produce byte-identical
// scorecards and alert records across fresh Prepare+Run invocations and
// across localization worker counts, with the dropout/rejoin, backfill,
// drift, and overload faults all active.
func TestDeterminismAcrossRunsAndWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	spec := miniFlight()
	const seed = 11

	card1, recs1, sc := runOnce(t, spec, seed, 1)
	card2, recs2, _ := runOnce(t, spec, seed, 1)
	card4, recs4, _ := runOnce(t, spec, seed, 4)

	if !bytes.Equal(card1, card2) {
		t.Errorf("scorecard differs between two identical runs:\n%s\nvs\n%s", card1, card2)
	}
	if !bytes.Equal(card1, card4) {
		t.Errorf("scorecard differs between workers 1 and 4:\n%s\nvs\n%s", card1, card4)
	}
	if !bytes.Equal(recs1, recs2) {
		t.Error("alert records differ between two identical runs")
	}
	if !bytes.Equal(recs1, recs4) {
		t.Error("alert records differ between workers 1 and 4")
	}

	// The same run doubles as the fault-primitive functional check: every
	// configured fault must actually have bitten.
	if sc.BackfillEvents == 0 {
		t.Error("backfilled dropout recovered no events")
	}
	if sc.MergeLateDropped == 0 {
		t.Error("backward clock step produced no merge late drops")
	}
	if sc.OverloadShed == 0 {
		t.Error("overload window shed no events")
	}
	if sc.EventsGenerated == 0 {
		t.Error("no events generated")
	}
	if sc.BurstsDetected != 1 {
		t.Errorf("burst during dropout+SAA not detected (detected %d of %d)",
			sc.BurstsDetected, sc.BurstsInjected)
	}
	for _, b := range sc.Bursts {
		if b.Detected && b.LatencySec <= 0 {
			t.Errorf("detected burst has non-positive latency %g", b.LatencySec)
		}
	}
}

// TestDeterminismDifferentSeedsDiffer guards against the scorer accidentally
// ignoring the exposure: different seeds must not produce identical event
// accounting.
func TestDeterminismDifferentSeedsDiffer(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	spec := &Spec{
		Name:        "tiny",
		DurationSec: 1.5,
		Background:  BackgroundSpec{RateHz: 3000},
	}
	_, _, a := runOnce(t, spec, 1, 1)
	_, _, b := runOnce(t, spec, 2, 1)
	if a.EventsGenerated == b.EventsGenerated {
		t.Errorf("seeds 1 and 2 generated identical event counts (%d); RNG not wired through",
			a.EventsGenerated)
	}
}

// TestCleanDetection checks the happy path: a clean single-burst scenario
// detects its burst, localizes it, stays within budget, and scores a
// positive objective.
func TestCleanDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	spec := &Spec{
		Name:             "clean",
		DurationSec:      2.5,
		Background:       BackgroundSpec{RateHz: 3500},
		Bursts:           []BurstSpec{{TimeSec: 1.2, Fluence: 4, PolarDeg: 20}},
		FalseAlertBudget: 1,
	}
	_, recs, sc := runOnce(t, spec, 5, 2)
	if sc.BurstsDetected != 1 {
		t.Fatalf("clean burst not detected: %+v", sc)
	}
	if sc.DetectionEfficiency != 1 {
		t.Errorf("efficiency = %g, want 1", sc.DetectionEfficiency)
	}
	if !sc.WithinBudget {
		t.Errorf("clean scenario blew the false-alert budget: %d > %d", sc.FalseAlerts, sc.FalseAlertBudget)
	}
	if sc.Objective <= 0 {
		t.Errorf("objective = %g, want positive", sc.Objective)
	}
	if sc.Localized == 0 {
		t.Error("detected burst was not localized")
	}
	if sc.LatencyP50Sec <= 0 || sc.LatencyMaxSec < sc.LatencyP50Sec {
		t.Errorf("latency percentiles inconsistent: p50=%g max=%g", sc.LatencyP50Sec, sc.LatencyMaxSec)
	}
	var out []stream.Record
	if err := json.Unmarshal(recs, &out); err != nil {
		t.Fatalf("records not valid JSON: %v", err)
	}
	if len(out) != sc.Alerts {
		t.Errorf("record count %d != scorecard alerts %d", len(out), sc.Alerts)
	}
}

// TestDropoutWithoutBackfillLosesEvents checks the lossy dropout primitive
// and its phase attribution.
func TestDropoutWithoutBackfillLosesEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	spec := &Spec{
		Name:        "lossy-dropout",
		DurationSec: 2,
		Lanes:       2,
		Background:  BackgroundSpec{RateHz: 3000},
		Dropouts:    []DropoutSpec{{Lane: 0, StartSec: 0.5, EndSec: 1.5}},
	}
	_, _, sc := runOnce(t, spec, 3, 1)
	if sc.DropoutLost == 0 {
		t.Error("dropout lost no events")
	}
	if sc.BackfillEvents != 0 {
		t.Error("non-backfill dropout produced backfill events")
	}
	found := false
	for _, ph := range sc.Phases {
		if ph.Name == "dropout0" {
			found = true
		}
	}
	if !found {
		t.Errorf("no dropout0 phase in scorecard: %+v", sc.Phases)
	}
}

// TestMetricsPublished checks the obs wiring: a run with a registry must
// surface the chaos counters and the per-phase attribution.
func TestMetricsPublished(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	spec := miniFlight()
	prep, err := Prepare(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	card, _, err := prep.Run(Options{Workers: 1, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(CtrGenerated).Load(); got != int64(card.EventsGenerated) {
		t.Errorf("%s = %d, scorecard says %d", CtrGenerated, got, card.EventsGenerated)
	}
	if got := reg.Counter(CtrShed).Load(); got != card.OverloadShed {
		t.Errorf("%s = %d, scorecard says %d", CtrShed, got, card.OverloadShed)
	}
	if got := reg.Counter(PhaseMetric("overload", "shed")).Load(); got == 0 {
		t.Error("per-phase overload shed counter is zero")
	}
	// The stream's own shed counter must agree with the chaos attribution.
	if got := reg.Counter(stream.CtrShed).Load(); got != card.OverloadShed {
		t.Errorf("stream %s = %d, scorecard says %d", stream.CtrShed, got, card.OverloadShed)
	}
}

// TestPreparedRunTriggerReuse checks the tuner's contract: one Prepare, many
// trigger candidates, with an absurdly deaf candidate detecting nothing and
// the default detecting the burst.
func TestPreparedRunTriggerReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	spec := &Spec{
		Name:             "reuse",
		DurationSec:      2.5,
		Background:       BackgroundSpec{RateHz: 3500},
		Bursts:           []BurstSpec{{TimeSec: 1.2, Fluence: 4, PolarDeg: 20}},
		FalseAlertBudget: 1,
	}
	prep, err := Prepare(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	def, _, err := prep.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A 10 s window at 100σ is deaf to this burst: the burst's ~18k events
	// against a 10 s expectation of ~20k background events is only ~12σ.
	deaf, _, err := prep.RunTrigger(TriggerSpec{WindowSec: 10, SigmaThreshold: 100}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if def.BurstsDetected != 1 {
		t.Errorf("default trigger missed the burst: %+v", def)
	}
	if deaf.BurstsDetected != 0 || deaf.Alerts != 0 {
		t.Errorf("deaf trigger still alerted: %+v", deaf)
	}
	if deaf.Objective >= def.Objective {
		t.Errorf("deaf objective %g not below default %g", deaf.Objective, def.Objective)
	}
}

// TestLibraryScenariosValidate checks every built-in spec is valid, named,
// survives an encode/parse round trip, and is reachable through Builtin.
func TestLibraryScenariosValidate(t *testing.T) {
	lib := Library()
	if len(lib) == 0 {
		t.Fatal("empty scenario library")
	}
	seen := map[string]bool{}
	for _, s := range lib {
		if err := s.Validate(); err != nil {
			t.Errorf("library scenario %q invalid: %v", s.Name, err)
		}
		if seen[s.Name] {
			t.Errorf("duplicate library scenario name %q", s.Name)
		}
		seen[s.Name] = true
		rt, err := ParseSpec(s.Encode())
		if err != nil {
			t.Errorf("scenario %q does not round-trip: %v", s.Name, err)
			continue
		}
		if rt.Name != s.Name {
			t.Errorf("round trip renamed %q to %q", s.Name, rt.Name)
		}
		got, err := Builtin(s.Name)
		if err != nil || got.Name != s.Name {
			t.Errorf("Builtin(%q) = %v, %v", s.Name, got, err)
		}
	}
	if _, err := Builtin("no-such-scenario"); err == nil {
		t.Error("Builtin accepted an unknown name")
	}
}

// TestOverloadGate unit-tests the token bucket on a synthetic time series.
func TestOverloadGate(t *testing.T) {
	o := &OverloadSpec{StartSec: 1, EndSec: 2, CapacityHz: 10, BurstEvents: 2}
	gate := o.gate()
	if !gate(0.5) {
		t.Error("gate closed outside the window")
	}
	// Inside the window: 2 tokens of headroom, then refill at 10/s.
	if !gate(1.0) || !gate(1.0) {
		t.Error("burst headroom not honored")
	}
	if gate(1.0) {
		t.Error("admitted beyond burst headroom with no time advance")
	}
	if !gate(1.2) { // 0.2 s × 10 Hz = 2 tokens refilled
		t.Error("refill not honored")
	}
	if !gate(2.0) {
		t.Error("gate closed after the window")
	}
}
