package chaos

import (
	"fmt"
	"math"

	"repro/internal/detector"
	"repro/internal/merge"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// Chaos metric names published through internal/obs. Per-phase counters use
// PhaseMetric.
const (
	CtrGenerated   = "chaos_events_generated"
	CtrDropoutLost = "chaos_dropout_lost"
	CtrBackfill    = "chaos_backfill_events"
	CtrLateDropped = "chaos_merge_late_dropped"
	CtrShed        = "chaos_overload_shed"
	CtrDetected    = "chaos_bursts_detected"
	CtrFalseAlerts = "chaos_false_alerts"
)

// PhaseMetric names a per-fault-phase counter, e.g.
// chaos_phase_dropout0_late_drops.
func PhaseMetric(phase, what string) string {
	return "chaos_phase_" + phase + "_" + what
}

// Prepared is a scenario with its exposure fully generated and its quiet
// rate calibrated, ready to run. Generation is the expensive half and does
// not depend on the trigger configuration, so the trigger tuner prepares
// once and runs many candidates against the same exposure.
type Prepared struct {
	Spec *Spec
	Seed uint64

	gen         *generated
	initialRate float64
}

// Prepare validates the spec and materializes the exposure for the given
// seed. The result is a pure function of (spec, seed).
func Prepare(spec *Spec, seed uint64) (*Prepared, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	root := xrand.New(seed)
	return &Prepared{
		Spec:        spec,
		Seed:        seed,
		gen:         generate(spec, root),
		initialRate: calibrateRate(spec, root),
	}, nil
}

// InitialRate exposes the calibrated quiet-sky detected-event rate
// (events/second) that seeds the trigger's rate estimator.
func (p *Prepared) InitialRate() float64 { return p.initialRate }

// Bursts returns the injected-burst ground truth, in onset order.
func (p *Prepared) Bursts() []BurstTruth { return p.gen.bursts }

// Options configures one run of a prepared scenario. The zero value runs
// the no-ML pipeline single-threaded with no metrics.
type Options struct {
	// Workers parallelizes the per-alert localization pipeline (≤0 = 1).
	// The scorecard is bitwise-identical at any worker count.
	Workers int
	// Bundle/Backend select the ML models and inference implementation for
	// the background classifier (nil bundle = no-ML pipeline).
	Bundle  *models.Bundle
	Backend pipeline.Backend
	// Metrics receives merge/stream/chaos counters (nil = off). Metrics
	// include wall-clock stage timings and are NOT part of the
	// deterministic scorecard.
	Metrics *obs.Registry
}

// Run drives the full merge → stream pipeline over the prepared exposure
// with the spec's trigger configuration and scores the outcome. The
// scorecard and records are pure functions of (spec, seed): byte-identical
// across repeated runs and across worker counts.
func (p *Prepared) Run(opts Options) (*Scorecard, []stream.Record, error) {
	return p.RunTrigger(p.Spec.Trigger, opts)
}

// RunTrigger is Run with an explicit trigger configuration, overriding the
// spec's. The trigger tuner uses it to evaluate candidates against one
// prepared exposure.
func (p *Prepared) RunTrigger(tr TriggerSpec, opts Options) (*Scorecard, []stream.Record, error) {
	if err := tr.validate(); err != nil {
		return nil, nil, err
	}
	// stream.New panics on an invalid backend/bundle combination;
	// pre-validate so a bad flag surfaces as an error.
	if _, err := pipeline.NewClassifier(opts.Backend, opts.Bundle); err != nil {
		return nil, nil, fmt.Errorf("chaos: %w", err)
	}

	phases := buildPhases(p.Spec)

	cfg := stream.DefaultConfig(p.initialRate)
	if tr.WindowSec > 0 {
		cfg.WindowSec = tr.WindowSec
	}
	if tr.SigmaThreshold > 0 {
		cfg.SigmaThreshold = tr.SigmaThreshold
	}
	if tr.RateAlpha > 0 {
		cfg.RateAlpha = tr.RateAlpha
	}
	cfg.Workers = opts.Workers
	cfg.Bundle = opts.Bundle
	cfg.Backend = opts.Backend
	cfg.Seed = p.Seed
	cfg.Metrics = opts.Metrics
	// The scorer must see every alert; the default lossy depth of 16 is a
	// flight-downlink concern, not a scoring one.
	cfg.AlertBuffer = 4096
	cfg.BufferEvents = 1 << 17

	var shed int64
	if o := p.Spec.Overload; o != nil {
		gate := o.gate()
		cfg.Admit = func(ev *detector.Event) bool {
			if gate(ev.ArrivalTime) {
				return true
			}
			shed++
			phases.observe(ev.ArrivalTime, phaseShed)
			return false
		}
	}

	var lateDropped int64
	sources := make([]merge.Source, 0, len(p.gen.lanes)+len(p.gen.backfills))
	for i, lane := range p.gen.lanes {
		sources = append(sources, merge.Source{
			Name:      fmt.Sprintf("lane%d", i),
			OffsetSec: p.Spec.laneOffset(i),
			Feed:      merge.NewSlice(lane),
		})
	}
	for i, bf := range p.gen.backfills {
		sources = append(sources, merge.Source{
			Name:      fmt.Sprintf("backfill%d", i),
			OffsetSec: p.Spec.laneOffset(bf.lane),
			Feed:      merge.NewSlice(bf.events),
		})
	}
	m, err := merge.New(merge.Config{
		Sources:      sources,
		BufferEvents: 8192,
		// StallTimeout 0: wait forever, keeping the fused order a pure
		// function of source contents — the backfill race is real at the
		// goroutine level but invisible in the output.
		OnLateDrop: func(ev *detector.Event) {
			lateDropped++
			phases.observe(ev.ArrivalTime, phaseLate)
		},
		Metrics: opts.Metrics,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("chaos: assemble merge: %w", err)
	}

	proc := stream.New(cfg)
	var alerts []stream.Alert
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for a := range proc.Alerts() {
			alerts = append(alerts, a)
		}
	}()
	mergeErr := m.Run(proc.Ingest)
	proc.Close()
	<-drained
	if mergeErr != nil {
		return nil, nil, fmt.Errorf("chaos: merge: %w", mergeErr)
	}

	card := score(p, tr, cfg, alerts, phases, scoreCounters{
		lateDropped: lateDropped,
		shed:        shed,
	})
	if p.Spec.Downlink != nil {
		dl, err := runDownlink(p, cfg, alerts, card, opts.Metrics)
		if err != nil {
			return nil, nil, err
		}
		card.Downlink = dl
	}
	publish(opts.Metrics, card, phases)

	recs := make([]stream.Record, len(alerts))
	for i := range alerts {
		recs[i] = alerts[i].Record()
	}
	return card, recs, nil
}

// gate returns the overload admission gate: a token bucket refilled at
// CapacityHz, advancing on event time only, so its accept/shed sequence is
// a pure function of the fused event-time sequence.
func (o *OverloadSpec) gate() func(t float64) bool {
	burst := float64(o.BurstEvents)
	if burst <= 0 {
		burst = 64
	}
	tokens := burst
	last := math.Inf(-1)
	return func(t float64) bool {
		if t < o.StartSec || t >= o.EndSec {
			return true
		}
		if math.IsInf(last, -1) {
			last = t
		}
		if t > last {
			tokens = math.Min(burst, tokens+(t-last)*o.CapacityHz)
			last = t
		}
		if tokens >= 1 {
			tokens--
			return true
		}
		return false
	}
}
