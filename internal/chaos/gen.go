package chaos

import (
	"math"
	"sort"

	"repro/internal/background"
	"repro/internal/detector"
	"repro/internal/xrand"
)

// Substream keys. Every random draw in a scenario comes from a fixed Split
// of the root seed, so the generated exposure is a pure function of
// (spec, seed) regardless of evaluation order or worker count.
const (
	keyBackground  = 1     // envelope-rate background simulation
	keyThinLane    = 2     // thinning accept/reject + lane assignment
	keyRandomBurst = 3     // population sampling + onset placement
	keyCalibrate   = 0xCA1 // quiet-rate calibration (convention shared with the binaries)
	keyBurstSim    = 100   // + burst index: burst photon simulation
	keyBurstLane   = 200   // + burst index: burst lane assignment
)

// BurstTruth is the ground truth for one injected burst, kept for scoring.
type BurstTruth struct {
	// TimeSec is the burst onset in true (corrected) time.
	TimeSec float64 `json:"time_sec"`
	// Fluence / PolarDeg / AzimuthDeg echo the injected burst parameters.
	Fluence    float64 `json:"fluence"`
	PolarDeg   float64 `json:"polar_deg"`
	AzimuthDeg float64 `json:"azimuth_deg"`
	// Events is how many detected events the burst contributed before
	// faults.
	Events int `json:"events"`
	// Random marks population-sampled (vs explicitly placed) bursts.
	Random bool `json:"random,omitempty"`
}

// laneEvent pairs an event with its true arrival time; the event's own
// ArrivalTime becomes the lane's faulty clock reading during generation.
type laneEvent struct {
	ev     *detector.Event
	atTrue float64
}

// backfillFeed is one recovered-journal merge source: the events a lane
// lost to a Backfill dropout, replayed in journal order with the lane's
// own (faulty) clock.
type backfillFeed struct {
	lane   int
	events []*detector.Event
}

// generated is the fully materialized exposure: per-lane feeds (raw lane
// clock times, ordered by occurrence), backfill feeds, and accounting.
type generated struct {
	lanes     [][]*detector.Event // index = lane; ArrivalTime = raw lane clock
	backfills []backfillFeed      // one per Backfill dropout with recovered events
	bursts    []BurstTruth

	eventsGenerated int // detected events before faults
	dropoutLost     int // events lost to non-backfill dropouts
	backfillEvents  int // events routed through backfill sources
}

// generate materializes the scenario: simulate background and bursts on the
// true-time axis, deal events across lanes, then apply faults lane by lane
// (dropout extraction, clock warps, static offsets). Every step draws from
// fixed substreams of root, so the result is a pure function of (spec, seed).
func generate(spec *Spec, root *xrand.RNG) *generated {
	det := detector.DefaultConfig()
	lanes := spec.lanes()

	baseRate := spec.Background.RateHz
	if baseRate == 0 {
		baseRate = background.DefaultModel().RatePerSecond
	}
	env := spec.Background.envelope()

	// Background: simulate at the envelope rate, then thin each event down
	// to the instantaneous rate. Thinning consumes the substream in the
	// simulator's generation order, which is itself deterministic.
	bg := background.DefaultModel()
	bg.RatePerSecond = baseRate * env
	bgEvents := bg.Simulate(&det, spec.DurationSec, root.Split(keyBackground))
	thin := root.Split(keyThinLane)
	perLane := make([][]laneEvent, lanes)
	total := 0
	for _, ev := range bgEvents {
		keep := thin.Float64() < spec.Background.rateFactor(ev.ArrivalTime)/env
		lane := thin.IntN(lanes) // always drawn, so acceptance doesn't shift later draws' lanes
		if !keep {
			continue
		}
		perLane[lane] = append(perLane[lane], laneEvent{ev, ev.ArrivalTime})
		total++
	}

	// Bursts: explicit placements first, then population-sampled ones, each
	// on its own substream. Burst event times are light-curve offsets from
	// the onset.
	var gBursts []BurstTruth
	addBurst := func(idx int, b detector.Burst, onset float64, random bool) {
		evs := detector.SimulateBurst(&det, b, root.Split(uint64(keyBurstSim+idx)))
		laneRNG := root.Split(uint64(keyBurstLane + idx))
		added := 0
		for _, ev := range evs {
			t := onset + ev.ArrivalTime
			ev.ArrivalTime = t
			lane := laneRNG.IntN(lanes) // always drawn, even for out-of-window tails
			if t >= spec.DurationSec {
				continue // light-curve tail past the exposure
			}
			perLane[lane] = append(perLane[lane], laneEvent{ev, t})
			total++
			added++
		}
		gBursts = append(gBursts, BurstTruth{
			TimeSec:    onset,
			Fluence:    b.Fluence,
			PolarDeg:   b.PolarDeg,
			AzimuthDeg: b.AzimuthDeg,
			Events:     added,
			Random:     random,
		})
	}

	idx := 0
	for _, b := range spec.Bursts {
		addBurst(idx, detector.Burst{
			Fluence:    b.Fluence,
			PolarDeg:   b.PolarDeg,
			AzimuthDeg: b.AzimuthDeg,
		}, b.TimeSec, false)
		idx++
	}
	if r := spec.RandomBursts; r != nil {
		pop := r.population()
		sampler := root.Split(keyRandomBurst)
		for j := 0; j < r.Count; j++ {
			b := pop.Sample(sampler)
			onset := sampler.Uniform(r.StartSec, r.EndSec)
			addBurst(idx, b, onset, true)
			idx++
		}
	}

	// Scoring wants bursts in onset order; sampling order is an RNG detail.
	sort.SliceStable(gBursts, func(i, j int) bool { return gBursts[i].TimeSec < gBursts[j].TimeSec })

	// Each lane delivers events in occurrence order — sort by true time
	// (ties keep the deterministic append order).
	for lane := range perLane {
		evs := perLane[lane]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].atTrue < evs[j].atTrue })
	}

	g := &generated{
		lanes:           make([][]*detector.Event, lanes),
		bursts:          gBursts,
		eventsGenerated: total,
	}

	// Faults, per lane: extract dropout windows (true time), then warp the
	// surviving clock readings, then add the static offset the merge will
	// correct. Order preserved throughout — a drifted lane delivers in
	// occurrence order with corrupted timestamps, which is exactly how a
	// non-monotonic clock step turns into merge late drops.
	for lane := range perLane {
		var kept []laneEvent
		backfillOf := make(map[int][]laneEvent) // dropout index → recovered events
		for _, le := range perLane[lane] {
			lost := false
			for di, d := range spec.Dropouts {
				if d.Lane == lane && le.atTrue >= d.StartSec && le.atTrue < d.EndSec {
					if d.Backfill {
						backfillOf[di] = append(backfillOf[di], le)
						g.backfillEvents++
					} else {
						g.dropoutLost++
					}
					lost = true
					break
				}
			}
			if !lost {
				kept = append(kept, le)
			}
		}

		warp := func(le laneEvent) float64 {
			t := le.atTrue
			for _, d := range spec.Drifts {
				if d.Lane == lane {
					t = d.warp(t)
				}
			}
			return t + spec.laneOffset(lane)
		}
		feed := make([]*detector.Event, len(kept))
		for i, le := range kept {
			le.ev.ArrivalTime = warp(le)
			feed[i] = le.ev
		}
		g.lanes[lane] = feed

		// Backfill feeds replay the lane's journal for the outage window:
		// same warped clock, same offset, delivered in journal (time)
		// order, racing the live feeds through the merge.
		for di := 0; di < len(spec.Dropouts); di++ {
			evs, ok := backfillOf[di]
			if !ok {
				continue
			}
			bf := make([]*detector.Event, len(evs))
			for i, le := range evs {
				le.ev.ArrivalTime = warp(le)
				bf[i] = le.ev
			}
			sort.SliceStable(bf, func(i, j int) bool { return bf[i].ArrivalTime < bf[j].ArrivalTime })
			g.backfills = append(g.backfills, backfillFeed{lane: lane, events: bf})
		}
	}
	return g
}

// calibrateRate measures the quiet-sky detected-event rate (events/second)
// for the scenario's base background, seeding the trigger's rate estimator
// the way a flight would upload a calibrated value.
func calibrateRate(spec *Spec, root *xrand.RNG) float64 {
	det := detector.DefaultConfig()
	bg := background.DefaultModel()
	if spec.Background.RateHz != 0 {
		bg.RatePerSecond = spec.Background.RateHz
	}
	n := len(bg.Simulate(&det, 1.0, root.Split(keyCalibrate)))
	return math.Max(float64(n), 1)
}
