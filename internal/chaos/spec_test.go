package chaos

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

const validSpecJSON = `{
  "name": "from-json",
  "duration_sec": 4,
  "lanes": 2,
  "lane_offsets": [0, 0.1],
  "background": {
    "rate_hz": 5000,
    "mod_fraction": 0.2,
    "mod_period_sec": 3,
    "saa": [{"start_sec": 1, "end_sec": 2, "rate_factor": 2.5}]
  },
  "bursts": [{"time_sec": 1.5, "fluence": 3, "polar_deg": 30, "azimuth_deg": 45}],
  "random_bursts": {
    "count": 2, "fluence_min": 0.5, "fluence_max": 4, "slope": 1.5,
    "max_polar_deg": 60, "start_sec": 0.5, "end_sec": 3.5
  },
  "dropouts": [{"lane": 1, "start_sec": 1, "end_sec": 2, "backfill": true}],
  "drifts": [{"lane": 0, "start_sec": 2, "step_sec": -0.02, "drift_per_sec": 0.01}],
  "overload": {"start_sec": 2.5, "end_sec": 3.5, "capacity_hz": 2000, "burst_events": 32},
  "trigger": {"window_sec": 0.2, "sigma_threshold": 6, "rate_alpha": 0.1},
  "false_alert_budget": 2
}`

func TestParseSpecValid(t *testing.T) {
	s, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "from-json" || s.Lanes != 2 || len(s.Bursts) != 1 || s.RandomBursts.Count != 2 {
		t.Errorf("parsed spec mangled: %+v", s)
	}
	if s.Overload == nil || s.Overload.CapacityHz != 2000 {
		t.Errorf("overload not parsed: %+v", s.Overload)
	}
	// Round trip: encode and re-parse must reproduce the spec exactly.
	rt, err := ParseSpec(s.Encode())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !reflect.DeepEqual(s, rt) {
		t.Errorf("round trip changed the spec:\n%+v\nvs\n%+v", s, rt)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		name, json, wantErr string
	}{
		{"unknown field", `{"name":"x","duration_sec":1,"background":{},"typo_field":1}`, "typo_field"},
		{"trailing garbage", `{"name":"x","duration_sec":1,"background":{}} {"more":1}`, "trailing"},
		{"not json", `not json at all`, "parse"},
		{"missing name", `{"duration_sec":1,"background":{}}`, "name"},
		{"zero duration", `{"name":"x","duration_sec":0,"background":{}}`, "duration"},
		{"huge duration", `{"name":"x","duration_sec":1e9,"background":{}}`, "duration"},
		{"nan-ish rate", `{"name":"x","duration_sec":1,"background":{"rate_hz":1e300}}`, "rate_hz"},
		{"too many lanes", `{"name":"x","duration_sec":1,"lanes":99,"background":{}}`, "lanes"},
		{"offset count", `{"name":"x","duration_sec":1,"lanes":2,"lane_offsets":[1],"background":{}}`, "lane_offsets"},
		{"burst out of window", `{"name":"x","duration_sec":1,"background":{},"bursts":[{"time_sec":5,"fluence":1,"polar_deg":0}]}`, "time_sec"},
		{"bad fluence", `{"name":"x","duration_sec":1,"background":{},"bursts":[{"time_sec":0.5,"fluence":-1,"polar_deg":0}]}`, "fluence"},
		{"bad dropout lane", `{"name":"x","duration_sec":1,"background":{},"dropouts":[{"lane":3,"start_sec":0,"end_sec":1}]}`, "lane"},
		{"inverted dropout", `{"name":"x","duration_sec":1,"background":{},"dropouts":[{"lane":0,"start_sec":1,"end_sec":0.5}]}`, "window"},
		{"wild drift", `{"name":"x","duration_sec":1,"background":{},"drifts":[{"lane":0,"start_sec":0,"drift_per_sec":0.9}]}`, "drift_per_sec"},
		{"bad overload", `{"name":"x","duration_sec":1,"background":{},"overload":{"start_sec":0,"end_sec":1,"capacity_hz":0}}`, "capacity_hz"},
		{"bad population", `{"name":"x","duration_sec":1,"background":{},"random_bursts":{"count":1,"fluence_min":2,"fluence_max":1,"slope":1,"max_polar_deg":60,"start_sec":0,"end_sec":1}}`, "Fluence"},
		{"bad mod", `{"name":"x","duration_sec":1,"background":{"mod_fraction":0.5}}`, "mod_period"},
		{"bad saa", `{"name":"x","duration_sec":1,"background":{"saa":[{"start_sec":0,"end_sec":1,"rate_factor":-1}]}}`, "rate_factor"},
		{"bad trigger", `{"name":"x","duration_sec":1,"background":{},"trigger":{"sigma_threshold":1000}}`, "sigma_threshold"},
	}
	for _, tc := range cases {
		_, err := ParseSpec([]byte(tc.json))
		if err == nil {
			t.Errorf("%s: accepted %s", tc.name, tc.json)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestRateFactorAndEnvelope(t *testing.T) {
	b := BackgroundSpec{
		RateHz:       1000,
		ModFraction:  0.5,
		ModPeriodSec: 4,
		SAA:          []SAASpec{{StartSec: 10, EndSec: 12, RateFactor: 3}},
	}
	env := b.envelope()
	want := 1.5 * 3.0
	if env != want {
		t.Errorf("envelope = %g, want %g", env, want)
	}
	// The factor must never exceed the envelope (thinning correctness).
	for ts := 0.0; ts < 16; ts += 0.05 {
		if f := b.rateFactor(ts); f > env || f < 0 {
			t.Fatalf("rateFactor(%g) = %g outside [0, %g]", ts, f, env)
		}
	}
	// Peak of the sinusoid at t = 1 (period 4): factor 1.5 outside the SAA.
	if f := b.rateFactor(1); f < 1.49 || f > 1.5 {
		t.Errorf("rateFactor at sinusoid peak = %g, want ≈1.5", f)
	}
	// Inside the SAA the passage multiplier applies on top: at t = 10 the
	// sinusoid is at a zero crossing (sin(5π) = 0), so the factor is
	// exactly the SAA multiplier.
	if f := b.rateFactor(10); math.Abs(f-3) > 1e-9 {
		t.Errorf("rateFactor inside SAA at modulation zero = %g, want 3", f)
	}
}

func TestDriftWarp(t *testing.T) {
	d := DriftSpec{Lane: 0, StartSec: 2, StepSec: -0.05, DriftPerSec: 0.01}
	if got := d.warp(1.5); got != 1.5 {
		t.Errorf("warp before start = %g, want identity", got)
	}
	if got := d.warp(2); got != 1.95 {
		t.Errorf("warp at start = %g, want 1.95 (step applied)", got)
	}
	if got := d.warp(3); got != 3-0.05+0.01 {
		t.Errorf("warp at start+1 = %g, want %g", got, 3-0.05+0.01)
	}
}
