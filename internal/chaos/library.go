package chaos

import (
	"fmt"
	"sort"
	"strings"
)

// Built-in scenario library. Rates are deliberately below the flight
// default background (32 kHz thrown) so a full-library sweep stays cheap
// enough for CI; the faults, not the raw rate, are what these scenarios
// stress. Every scenario validates, so Builtin never returns an invalid
// spec.

// builtins constructs the library fresh on every call — callers may
// mutate the returned specs (the tuner does) without poisoning the
// library.
func builtins() []*Spec {
	return []*Spec{
		{
			Name:        "calm",
			Description: "quiet sky, no bursts: a pure false-alert soak",
			DurationSec: 8,
			Lanes:       2,
			Background:  BackgroundSpec{RateHz: 12000},
		},
		{
			Name:        "storm",
			Description: "overlapping and back-to-back bursts on a steady background",
			DurationSec: 8,
			Lanes:       2,
			Background:  BackgroundSpec{RateHz: 12000},
			Bursts: []BurstSpec{
				{TimeSec: 2.0, Fluence: 4, PolarDeg: 20},
				{TimeSec: 2.4, Fluence: 3, PolarDeg: 55, AzimuthDeg: 120},
				{TimeSec: 5.5, Fluence: 2.5, PolarDeg: 35, AzimuthDeg: -60},
			},
			FalseAlertBudget: 1,
		},
		{
			Name:        "orbit",
			Description: "sinusoidal orbital background modulation under a mid-exposure burst",
			DurationSec: 8,
			Lanes:       2,
			Background: BackgroundSpec{
				RateHz:       12000,
				ModFraction:  0.3,
				ModPeriodSec: 4,
			},
			Bursts:           []BurstSpec{{TimeSec: 4.2, Fluence: 3, PolarDeg: 30}},
			FalseAlertBudget: 1,
		},
		{
			Name:        "saa",
			Description: "SAA-like passage tripling the background, with bursts inside and outside it",
			DurationSec: 8,
			Lanes:       2,
			Background: BackgroundSpec{
				RateHz: 12000,
				SAA:    []SAASpec{{StartSec: 2, EndSec: 4, RateFactor: 3}},
			},
			Bursts: []BurstSpec{
				{TimeSec: 3.0, Fluence: 4, PolarDeg: 25},
				{TimeSec: 5.5, Fluence: 3, PolarDeg: 45, AzimuthDeg: 90},
			},
			FalseAlertBudget: 2,
		},
		{
			Name:        "dropout",
			Description: "detector lane drops out mid-exposure and rejoins; its events are lost",
			DurationSec: 8,
			Lanes:       2,
			Background:  BackgroundSpec{RateHz: 12000},
			Dropouts:    []DropoutSpec{{Lane: 1, StartSec: 2, EndSec: 4}},
			Bursts: []BurstSpec{
				{TimeSec: 3.0, Fluence: 4, PolarDeg: 30},
				{TimeSec: 5.5, Fluence: 3, PolarDeg: 40, AzimuthDeg: 45},
			},
			FalseAlertBudget: 1,
		},
		{
			Name:             "backfill",
			Description:      "dropout recovered from the lane journal, backfill racing the live feeds",
			DurationSec:      8,
			Lanes:            2,
			Background:       BackgroundSpec{RateHz: 12000},
			Dropouts:         []DropoutSpec{{Lane: 0, StartSec: 2, EndSec: 3.5, Backfill: true}},
			Bursts:           []BurstSpec{{TimeSec: 2.5, Fluence: 4, PolarDeg: 30}},
			FalseAlertBudget: 1,
		},
		{
			Name:             "drift",
			Description:      "lane clock steps backward and drifts beyond the static skew correction",
			DurationSec:      8,
			Lanes:            2,
			Background:       BackgroundSpec{RateHz: 12000},
			Drifts:           []DriftSpec{{Lane: 1, StartSec: 3, StepSec: -0.05, DriftPerSec: 0.01}},
			Bursts:           []BurstSpec{{TimeSec: 5.0, Fluence: 3, PolarDeg: 30}},
			FalseAlertBudget: 1,
		},
		{
			Name:        "overload",
			Description: "sustained serve-layer overload sheds events ahead of the trigger",
			DurationSec: 8,
			Lanes:       2,
			Background:  BackgroundSpec{RateHz: 12000},
			Overload:    &OverloadSpec{StartSec: 2, EndSec: 5, CapacityHz: 4000, BurstEvents: 256},
			Bursts: []BurstSpec{
				{TimeSec: 3.0, Fluence: 5, PolarDeg: 25},
				{TimeSec: 6.0, Fluence: 3, PolarDeg: 40, AzimuthDeg: -30},
			},
			FalseAlertBudget: 1,
		},
		{
			Name:        "downlink_outage",
			Description: "lossy 16 kB/s downlink with a mid-pass outage carrying live alerts and full journal backfill",
			DurationSec: 8,
			Lanes:       2,
			Background:  BackgroundSpec{RateHz: 3000},
			Bursts: []BurstSpec{
				{TimeSec: 2.0, Fluence: 4, PolarDeg: 25},
				{TimeSec: 6.0, Fluence: 3, PolarDeg: 40, AzimuthDeg: 60},
			},
			Downlink: &DownlinkSpec{
				BudgetBytesPerSec: 16384,
				DropProb:          0.1,
				ReorderProb:       0.2,
				Outages:           []LinkOutageSpec{{StartSec: 9, EndSec: 12}},
			},
			FalseAlertBudget: 1,
		},
		{
			Name:        "flight",
			Description: "multi-fault orbit: modulation, SAA passage, dropout+backfill, offsets, overload, overlapping bursts",
			DurationSec: 9,
			Lanes:       3,
			LaneOffsets: []float64{0, 0.12, -0.08},
			Background: BackgroundSpec{
				RateHz:       12000,
				ModFraction:  0.25,
				ModPeriodSec: 5,
				SAA:          []SAASpec{{StartSec: 4.5, EndSec: 6.5, RateFactor: 2.5}},
			},
			Dropouts: []DropoutSpec{{Lane: 2, StartSec: 2.5, EndSec: 4, Backfill: true}},
			Overload: &OverloadSpec{StartSec: 6.8, EndSec: 8.2, CapacityHz: 6000, BurstEvents: 256},
			Bursts: []BurstSpec{
				{TimeSec: 3.0, Fluence: 4, PolarDeg: 20},                    // during the dropout
				{TimeSec: 3.3, Fluence: 3, PolarDeg: 50, AzimuthDeg: 100},   // overlapping the first
				{TimeSec: 5.2, Fluence: 3.5, PolarDeg: 35, AzimuthDeg: -45}, // inside the SAA passage
			},
			FalseAlertBudget: 2,
		},
	}
}

// Library returns the built-in scenarios in curated order (calm first,
// flight last). The slice and its specs are fresh copies.
func Library() []*Spec { return builtins() }

// Names returns the built-in scenario names, sorted.
func Names() []string {
	specs := builtins()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// Builtin returns a fresh copy of the named built-in scenario.
func Builtin(name string) (*Spec, error) {
	for _, s := range builtins() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("chaos: no built-in scenario %q (have %s)", name, strings.Join(Names(), ", "))
}
