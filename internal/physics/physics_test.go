package physics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
	"repro/internal/xrand"
)

func TestScatteredEnergyLimits(t *testing.T) {
	// Forward scatter loses no energy.
	if got := ScatteredEnergy(1.0, 0); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("forward scatter E' = %v", got)
	}
	// Backscatter at high energy approaches mec²/2.
	if got := ScatteredEnergy(100, math.Pi); math.Abs(got-units.ElectronMassMeV/2) > 0.01 {
		t.Errorf("backscatter limit = %v, want ~%v", got, units.ElectronMassMeV/2)
	}
	// Energy loss is monotone in angle.
	prev := math.Inf(1)
	for theta := 0.0; theta <= math.Pi; theta += 0.1 {
		e := ScatteredEnergy(2.0, theta)
		if e > prev+1e-12 {
			t.Fatalf("scattered energy not monotone at theta=%v", theta)
		}
		prev = e
	}
}

func TestCosThetaInvertsScatteredEnergy(t *testing.T) {
	f := func(rawE, rawTheta float64) bool {
		e := 0.05 + math.Mod(math.Abs(rawE), 20)
		theta := math.Mod(math.Abs(rawTheta), math.Pi)
		eOut := ScatteredEnergy(e, theta)
		got := CosThetaFromEnergies(e, eOut)
		return math.Abs(got-math.Cos(theta)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestKleinNishinaSampling(t *testing.T) {
	rng := xrand.New(1)
	for _, e := range []float64{0.05, 0.3, 1.0, 5.0, 25.0} {
		n := 20000
		var sumCos float64
		for i := 0; i < n; i++ {
			cosT, eOut := SampleKleinNishina(e, rng)
			if cosT < -1-1e-12 || cosT > 1+1e-12 {
				t.Fatalf("cos out of range: %v", cosT)
			}
			if eOut <= 0 || eOut > e+1e-12 {
				t.Fatalf("scattered energy out of range: %v of %v", eOut, e)
			}
			// Kinematic consistency between the returned pair.
			if want := ScatteredEnergy(e, math.Acos(cosT)); math.Abs(want-eOut)/e > 1e-9 {
				t.Fatalf("inconsistent (cos, E') pair at E=%v", e)
			}
			sumCos += cosT
		}
		meanCos := sumCos / float64(n)
		if meanCos < 0 {
			t.Errorf("E=%v: mean cos %v — KN should be forward-peaked", e, meanCos)
		}
		// Higher energies scatter more forward.
		_ = meanCos
	}
	// Forward peaking grows with energy.
	mean := func(e float64) float64 {
		var s float64
		n := 30000
		for i := 0; i < n; i++ {
			c, _ := SampleKleinNishina(e, rng)
			s += c
		}
		return s / float64(n)
	}
	if mean(10) <= mean(0.1) {
		t.Error("KN forward peaking does not grow with energy")
	}
}

func TestKNTotalCrossSection(t *testing.T) {
	// Thomson limit at E → 0: 8πr²/3 ≈ 6.652e-25 cm².
	if got := KleinNishinaTotalCrossSection(1e-9); math.Abs(got-6.652e-25)/6.652e-25 > 0.01 {
		t.Errorf("Thomson limit = %v", got)
	}
	// Monotone decreasing with energy.
	prev := math.Inf(1)
	for _, e := range []float64{0.01, 0.1, 0.5, 1, 5, 30} {
		s := KleinNishinaTotalCrossSection(e)
		if s <= 0 || s >= prev {
			t.Fatalf("cross-section not positive/decreasing at %v MeV", e)
		}
		prev = s
	}
	// Reference value at 1 MeV: ~2.11e-25 cm² (standard tables).
	if got := KleinNishinaTotalCrossSection(1.0); math.Abs(got-2.112e-25)/2.112e-25 > 0.02 {
		t.Errorf("KN at 1 MeV = %v, want ~2.11e-25", got)
	}
}

func TestMaterialCoefficients(t *testing.T) {
	m := CsI()
	// Photoelectric dominates at low energies, Compton at ~1 MeV.
	if m.MuPhoto(0.05) <= m.MuCompton(0.05) {
		t.Error("photoelectric should dominate at 50 keV in CsI")
	}
	if m.MuCompton(1.0) <= m.MuPhoto(1.0) {
		t.Error("Compton should dominate at 1 MeV in CsI")
	}
	// Crossover at the configured reference energy.
	ref := m.PhotoRefEnergy
	if r := m.MuPhoto(ref) / m.MuCompton(ref); math.Abs(r-1) > 0.01 {
		t.Errorf("photo/Compton at crossover = %v", r)
	}
	// Pair production: zero below threshold, growing above.
	if m.MuPair(1.0) != 0 {
		t.Error("pair production below threshold")
	}
	if m.MuPair(5) <= 0 || m.MuPair(20) <= m.MuPair(5) {
		t.Error("pair production not growing above threshold")
	}
	// Total is the sum of the parts.
	e := 2.5
	if got := m.MuTotal(e); math.Abs(got-(m.MuCompton(e)+m.MuPhoto(e)+m.MuPair(e))) > 1e-15 {
		t.Error("MuTotal != sum of components")
	}
	// Interaction length at 1 MeV is a few cm in CsI (tables: μ/ρ ≈ 0.058
	// cm²/g → μ ≈ 0.26 /cm → λ ≈ 3.8 cm). Allow generous tolerance.
	lambda := 1 / m.MuTotal(1.0)
	if lambda < 2 || lambda > 7 {
		t.Errorf("CsI interaction length at 1 MeV = %v cm, want ~4", lambda)
	}
}

func TestInteractionKindString(t *testing.T) {
	if KindCompton.String() != "compton" || KindPhoto.String() != "photo" || KindPair.String() != "pair" {
		t.Error("InteractionKind.String wrong")
	}
	if InteractionKind(99).String() != "unknown" {
		t.Error("unknown kind should stringify as unknown")
	}
}
