package physics

import (
	"math"

	"repro/internal/units"
)

// Material describes a scintillator medium well enough to compute linear
// attenuation coefficients for the three processes the simulator models.
type Material struct {
	// Name for diagnostics.
	Name string
	// ElectronDensity in electrons/cm³.
	ElectronDensity float64
	// PhotoRefEnergy is the energy (MeV) at which the photoelectric and
	// Compton linear attenuation coefficients are equal. For high-Z
	// scintillators such as CsI this crossover sits near 0.3 MeV.
	PhotoRefEnergy float64
	// PhotoSlope is the power-law slope of the photoelectric cross-section
	// (≈ 3 between absorption edges for E well above the K edge).
	PhotoSlope float64
	// PairScale scales the pair-production coefficient (cm⁻¹) at 10 MeV.
	PairScale float64
}

// CsI returns the CsI(Na) scintillator used in the ADAPT tile stack.
// Density 4.51 g/cm³, Z/A ≈ 0.416 gives n_e ≈ 1.13e24 /cm³. The
// photoelectric crossover and pair scale are fits to NIST XCOM attenuation
// tables for CsI (good to ~20% across 30 keV–30 MeV, which is sufficient for
// interaction-length realism).
func CsI() Material {
	return Material{
		Name:            "CsI(Na)",
		ElectronDensity: 1.13e24,
		PhotoRefEnergy:  0.26,
		PhotoSlope:      3.0,
		PairScale:       0.021,
	}
}

// MuCompton returns the Compton linear attenuation coefficient (cm⁻¹) at
// energy e (MeV).
func (m Material) MuCompton(e float64) float64 {
	return m.ElectronDensity * KleinNishinaTotalCrossSection(e)
}

// MuPhoto returns the photoelectric linear attenuation coefficient (cm⁻¹).
// It is anchored to equal MuCompton at PhotoRefEnergy and falls as
// E^−PhotoSlope above it (the inter-edge behaviour; K-edge fine structure is
// below the 30 keV simulation floor for Cs/I K edges ≈ 33–36 keV and is
// deliberately smoothed over).
func (m Material) MuPhoto(e float64) float64 {
	ref := m.MuCompton(m.PhotoRefEnergy)
	return ref * math.Pow(m.PhotoRefEnergy/e, m.PhotoSlope)
}

// MuPair returns the pair-production linear attenuation coefficient (cm⁻¹),
// zero below threshold (2 mec²) and growing logarithmically above, anchored
// to PairScale at 10 MeV.
func (m Material) MuPair(e float64) float64 {
	const threshold = 2 * units.ElectronMassMeV
	if e <= threshold*1.05 {
		return 0
	}
	ref := math.Log(10 / threshold)
	return m.PairScale * math.Log(e/threshold) / ref
}

// MuTotal returns the total linear attenuation coefficient (cm⁻¹).
func (m Material) MuTotal(e float64) float64 {
	return m.MuCompton(e) + m.MuPhoto(e) + m.MuPair(e)
}

// InteractionKind labels the process chosen at an interaction vertex.
type InteractionKind int

const (
	// KindCompton is incoherent (Compton) scattering.
	KindCompton InteractionKind = iota
	// KindPhoto is photoelectric absorption (full energy deposit).
	KindPhoto
	// KindPair is pair production (treated as a local full deposit followed
	// by possible 511 keV annihilation escape; see detector.transport).
	KindPair
)

// String implements fmt.Stringer.
func (k InteractionKind) String() string {
	switch k {
	case KindCompton:
		return "compton"
	case KindPhoto:
		return "photo"
	case KindPair:
		return "pair"
	default:
		return "unknown"
	}
}
