// Package physics implements the gamma-ray interaction physics needed by the
// ADAPT detector simulator: Compton kinematics, Klein–Nishina scattering
// angle sampling, and approximate interaction cross-sections for the CsI(Na)
// scintillator.
//
// This package replaces the paper's Geant4 substrate. The kinematics are
// exact; the total cross-sections are smooth parametric fits chosen to give
// the right interaction-length scale and the right Compton/photoabsorption
// balance across the 30 keV – 30 MeV simulation band. See DESIGN.md §2 for
// the substitution rationale.
package physics

import (
	"math"

	"repro/internal/units"
	"repro/internal/xrand"
)

// ScatteredEnergy returns the photon energy E' after Compton scattering of a
// photon with energy e (MeV) through angle theta: the Compton formula
// E' = E / (1 + (E/mec²)(1 − cosθ)).
func ScatteredEnergy(e, theta float64) float64 {
	return e / (1 + (e/units.ElectronMassMeV)*(1-math.Cos(theta)))
}

// CosThetaFromEnergies returns the cosine of the Compton scattering angle
// implied by the incident energy e and scattered energy eOut:
// cosθ = 1 + mec²(1/e − 1/eOut)... rearranged from the Compton formula as
// cosθ = 1 − mec²(1/eOut − 1/e). The result is NOT clamped; values outside
// [−1, 1] indicate kinematically inconsistent energies (e.g. from measurement
// error) and are meaningful to the caller.
func CosThetaFromEnergies(e, eOut float64) float64 {
	return 1 - units.ElectronMassMeV*(1/eOut-1/e)
}

// SampleKleinNishina draws a Compton scattering angle for a photon of energy
// e (MeV) from the Klein–Nishina differential cross-section, using the
// standard composition–rejection method (as in Geant4's G4KleinNishina
// model). It returns cosTheta and the scattered photon energy.
func SampleKleinNishina(e float64, rng *xrand.RNG) (cosTheta, eOut float64) {
	alpha := e / units.ElectronMassMeV
	eps0 := 1 / (1 + 2*alpha)
	eps0Sq := eps0 * eps0
	a1 := -math.Log(eps0)
	a2 := (1 - eps0Sq) / 2
	for {
		var eps float64
		if rng.Float64()*(a1+a2) < a1 {
			eps = math.Exp(-a1 * rng.Float64()) // ∝ 1/eps on [eps0, 1]
		} else {
			eps = math.Sqrt(eps0Sq + (1-eps0Sq)*rng.Float64()) // ∝ eps
		}
		oneMinusCos := (1 - eps) / (alpha * eps)
		sinSq := oneMinusCos * (2 - oneMinusCos)
		g := 1 - eps*sinSq/(1+eps*eps)
		if rng.Float64() <= g {
			return 1 - oneMinusCos, eps * e
		}
	}
}

// classicalElectronRadiusCm is r_e in cm.
const classicalElectronRadiusCm = 2.8179403262e-13

// KleinNishinaTotalCrossSection returns the total Compton cross-section per
// electron (cm²) at photon energy e (MeV), from the closed-form integral of
// the Klein–Nishina formula.
func KleinNishinaTotalCrossSection(e float64) float64 {
	a := e / units.ElectronMassMeV
	if a < 1e-6 {
		// Thomson limit with the first relativistic correction.
		return (8 * math.Pi / 3) * classicalElectronRadiusCm * classicalElectronRadiusCm * (1 - 2*a)
	}
	r2 := classicalElectronRadiusCm * classicalElectronRadiusCm
	l := math.Log(1 + 2*a)
	term1 := (1 + a) / (a * a) * (2*(1+a)/(1+2*a) - l/a)
	term2 := l / (2 * a)
	term3 := -(1 + 3*a) / ((1 + 2*a) * (1 + 2*a))
	return 2 * math.Pi * r2 * (term1 + term2 + term3)
}
