// Package xrand provides a deterministic, splittable pseudo-random number
// generator for the ADAPT simulation stack.
//
// The simulator must be reproducible across runs and across parallel workers:
// every trial, event, and training shuffle derives its stream from a parent
// seed via Split, so results are independent of scheduling order. The core
// generator is xoshiro256**, which is fast, has a 2^256-1 period, and passes
// BigCrush; SplitMix64 is used for seeding and splitting, as recommended by
// the xoshiro authors.
package xrand

import (
	"math"
	"math/bits"
)

// RNG is a xoshiro256** generator. The zero value is not usable; construct
// with New or Split.
type RNG struct {
	s         [4]uint64
	spare     float64 // cached second variate from the polar method
	haveSpare bool
}

// splitMix64 advances the state and returns the next SplitMix64 output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start in the all-zero state; SplitMix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split returns a new generator whose stream is a deterministic function of
// r's seed material and key, without perturbing r's own stream. Use it to
// give each trial/event/worker an independent substream.
func (r *RNG) Split(key uint64) *RNG {
	// Mix the initial state words with the key through SplitMix64. We mix
	// state, not output, so Split is insensitive to how much of r's stream
	// has been consumed only via the current state snapshot — callers that
	// want scheduling independence should Split before consuming.
	sm := r.s[0] ^ rotl(r.s[1], 17) ^ rotl(r.s[2], 31) ^ r.s[3] ^ (key * 0xd1342543de82ef95)
	child := &RNG{}
	for i := range child.s {
		child.s[i] = splitMix64(&sm)
	}
	if child.s[0]|child.s[1]|child.s[2]|child.s[3] == 0 {
		child.s[0] = 1
	}
	return child
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1), never exactly zero, which is
// safe to pass to log.
func (r *RNG) Float64Open() float64 {
	for {
		if v := r.Float64(); v > 0 {
			return v
		}
	}
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// IntN returns a uniform integer in [0, n). n must be positive.
func (r *RNG) IntN(n int) int {
	if n <= 0 {
		panic("xrand: IntN with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	un := uint64(n)
	threshold := -un % un
	for {
		hi, lo := bits.Mul64(r.Uint64(), un)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Norm returns a standard normal variate (Marsaglia polar method with a
// cached spare).
func (r *RNG) Norm() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// Gaussian returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) Gaussian(mean, sigma float64) float64 {
	return mean + sigma*r.Norm()
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	return -math.Log(r.Float64Open()) / rate
}

// Poisson returns a Poisson variate with the given mean. For large means it
// uses the Gaussian approximation with continuity correction, which is more
// than adequate for event-count sampling.
func (r *RNG) Poisson(mean float64) int {
	switch {
	case mean <= 0:
		return 0
	case mean < 30:
		// Knuth's product method.
		l := math.Exp(-mean)
		k, p := 0, 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		n := int(math.Round(r.Gaussian(mean, math.Sqrt(mean))))
		if n < 0 {
			n = 0
		}
		return n
	}
}

// PowerLaw returns a variate from dN/dE ∝ E^index on [lo, hi]. index may be
// any real value, including the special case index == -1.
func (r *RNG) PowerLaw(index, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		panic("xrand: PowerLaw needs 0 < lo < hi")
	}
	u := r.Float64()
	if index == -1 {
		return lo * math.Exp(u*math.Log(hi/lo))
	}
	g := index + 1
	a, b := math.Pow(lo, g), math.Pow(hi, g)
	return math.Pow(a+u*(b-a), 1/g)
}

// UnitVectorPolarRange returns a random unit direction with polar angle theta
// uniform in solid angle between thetaLo and thetaHi (radians, measured from
// +Z), azimuth uniform.
func (r *RNG) UnitVectorPolarRange(thetaLo, thetaHi float64) (x, y, z float64) {
	cosHi := math.Cos(thetaLo) // note inversion: cos decreasing in theta
	cosLo := math.Cos(thetaHi)
	z = cosLo + (cosHi-cosLo)*r.Float64()
	st := math.Sqrt(math.Max(0, 1-z*z))
	phi := r.Uniform(0, 2*math.Pi)
	s, c := math.Sincos(phi)
	return st * c, st * s, z
}

// CosineLawAngle samples theta in [0, π/2] from the cosine-law distribution
// p(θ) ∝ sin(θ)cos(θ), the angular distribution of an isotropic flux
// crossing a plane. Used for atmospheric background arrival directions.
func (r *RNG) CosineLawAngle() float64 {
	return math.Asin(math.Sqrt(r.Float64()))
}

// Shuffle randomly permutes indices [0, n) reported through swap, using the
// Fisher–Yates algorithm.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
