package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if New(1).Uint64() == New(2).Uint64() {
		t.Error("different seeds produced identical first output")
	}
}

func TestSplitIndependence(t *testing.T) {
	root := New(7)
	c1 := root.Split(1)
	c2 := root.Split(2)
	c1again := root.Split(1)
	if c1.Uint64() != c1again.Uint64() {
		t.Error("Split with same key not reproducible")
	}
	if c1again.Uint64() == c2.Uint64() {
		t.Error("Split children with different keys correlated on second draw")
	}
	// Splitting must not consume the parent stream.
	p1 := New(7)
	p2 := New(7)
	_ = p2.Split(99)
	if p1.Uint64() != p2.Uint64() {
		t.Error("Split perturbed the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
	for i := 0; i < 1000; i++ {
		if v := r.Float64Open(); v <= 0 || v >= 1 {
			t.Fatalf("Float64Open out of (0,1): %v", v)
		}
	}
}

func TestUniformMoments(t *testing.T) {
	r := New(11)
	n := 50000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Uniform(2, 6)
		if v < 2 || v >= 6 {
			t.Fatalf("Uniform out of range: %v", v)
		}
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	if math.Abs(mean-4) > 0.05 {
		t.Errorf("Uniform(2,6) mean = %v, want ~4", mean)
	}
	variance := sq/float64(n) - mean*mean
	if math.Abs(variance-16.0/12) > 0.05 {
		t.Errorf("Uniform(2,6) var = %v, want ~1.333", variance)
	}
}

func TestIntN(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	n := 70000
	for i := 0; i < n; i++ {
		v := r.IntN(7)
		if v < 0 || v >= 7 {
			t.Fatalf("IntN out of range: %d", v)
		}
		counts[v]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-float64(n)/7) > 5*math.Sqrt(float64(n)/7) {
			t.Errorf("IntN bucket %d count %d deviates >5 sigma", b, c)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("IntN(0) did not panic")
		}
	}()
	r.IntN(0)
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	n := 100000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean = %v", mean)
	}
	if math.Abs(sd-1) > 0.02 {
		t.Errorf("Norm sd = %v", sd)
	}
	// Gaussian with explicit parameters.
	var gsum float64
	for i := 0; i < n; i++ {
		gsum += r.Gaussian(10, 2)
	}
	if got := gsum / float64(n); math.Abs(got-10) > 0.05 {
		t.Errorf("Gaussian(10,2) mean = %v", got)
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	n := 100000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(2.5)
		if v < 0 {
			t.Fatalf("Exp negative: %v", v)
		}
		sum += v
	}
	if got := sum / float64(n); math.Abs(got-0.4) > 0.01 {
		t.Errorf("Exp(2.5) mean = %v, want 0.4", got)
	}
}

func TestPoisson(t *testing.T) {
	r := New(19)
	for _, mean := range []float64{0, 0.5, 3, 12, 100, 5000} {
		n := 20000
		var sum float64
		for i := 0; i < n; i++ {
			v := r.Poisson(mean)
			if v < 0 {
				t.Fatalf("Poisson negative")
			}
			sum += float64(v)
		}
		got := sum / float64(n)
		tolerance := 5 * math.Sqrt(math.Max(mean, 1)/float64(n))
		if math.Abs(got-mean) > tolerance {
			t.Errorf("Poisson(%v) mean = %v (tolerance %v)", mean, got, tolerance)
		}
	}
}

func TestPowerLaw(t *testing.T) {
	r := New(23)
	for _, index := range []float64{-2.35, -1.75, -1, 0, 1.5} {
		lo, hi := 0.03, 30.0
		n := 20000
		below := 0
		for i := 0; i < n; i++ {
			v := r.PowerLaw(index, lo, hi)
			if v < lo || v > hi {
				t.Fatalf("PowerLaw(%v) out of bounds: %v", index, v)
			}
			if v < 1 {
				below++
			}
		}
		// Analytic CDF at 1: steeper spectra concentrate low.
		var want float64
		if index == -1 {
			want = math.Log(1/lo) / math.Log(hi/lo)
		} else {
			g := index + 1
			want = (math.Pow(1, g) - math.Pow(lo, g)) / (math.Pow(hi, g) - math.Pow(lo, g))
		}
		got := float64(below) / float64(n)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("PowerLaw(%v) P(X<1) = %v, want %v", index, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("PowerLaw with bad bounds did not panic")
		}
	}()
	r.PowerLaw(-2, -1, 1)
}

func TestUnitVectorPolarRange(t *testing.T) {
	r := New(29)
	for i := 0; i < 5000; i++ {
		x, y, z := r.UnitVectorPolarRange(0, math.Pi/2)
		if n := math.Sqrt(x*x + y*y + z*z); math.Abs(n-1) > 1e-12 {
			t.Fatalf("not unit: %v", n)
		}
		if z < -1e-12 {
			t.Fatalf("upper-hemisphere sample has z=%v", z)
		}
	}
	// Solid-angle uniformity: mean z over the full sphere is 0.
	var sum float64
	n := 50000
	for i := 0; i < n; i++ {
		_, _, z := r.UnitVectorPolarRange(0, math.Pi)
		sum += z
	}
	if math.Abs(sum/float64(n)) > 0.01 {
		t.Errorf("full-sphere mean z = %v", sum/float64(n))
	}
}

func TestCosineLawAngle(t *testing.T) {
	r := New(31)
	n := 50000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.CosineLawAngle()
		if v < 0 || v > math.Pi/2 {
			t.Fatalf("CosineLawAngle out of range: %v", v)
		}
		sum += v
	}
	// E[θ] for p ∝ sinθcosθ on [0, π/2] is π/4... actually
	// E[θ] = ∫θ·2sinθcosθ dθ = ∫θ sin(2θ) dθ = π/4.
	if got := sum / float64(n); math.Abs(got-math.Pi/4) > 0.01 {
		t.Errorf("CosineLawAngle mean = %v, want %v", got, math.Pi/4)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShuffleUniformity(t *testing.T) {
	// Position counts of element 0 across many shuffles of [0..3].
	r := New(37)
	counts := make([]int, 4)
	n := 40000
	for i := 0; i < n; i++ {
		s := []int{0, 1, 2, 3}
		r.Shuffle(4, func(a, b int) { s[a], s[b] = s[b], s[a] })
		for pos, v := range s {
			if v == 0 {
				counts[pos]++
			}
		}
	}
	for pos, c := range counts {
		if math.Abs(float64(c)-float64(n)/4) > 5*math.Sqrt(float64(n)/4) {
			t.Errorf("element 0 at position %d: %d times, deviates >5 sigma", pos, c)
		}
	}
}

func TestBool(t *testing.T) {
	r := New(41)
	n := 50000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if got := float64(hits) / float64(n); math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", got)
	}
}
