package expt

import (
	"repro/internal/features"
	"repro/internal/nn"
)

// makeTestFeatures builds a small matrix of plausible (unnormalized)
// feature rows for adapter tests.
func makeTestFeatures() *nn.Tensor {
	x := nn.NewTensor(8, features.NumFeatures)
	for r := 0; r < x.Rows; r++ {
		row := x.Row(r)
		row[0] = 0.5 + 0.1*float32(r) // total energy
		row[1] = float32(r) - 4       // hit1 x
		row[2] = 2
		row[3] = -0.7
		row[4] = 0.2
		row[5] = -3
		row[6] = float32(r)
		row[7] = -10.7
		row[8] = 0.3
		row[9] = 0.04
		row[10] = 0.02
		row[11] = 0.03
		row[12] = float32(10 * (r % 9))
	}
	return x
}
