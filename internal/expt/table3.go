package expt

import (
	"fmt"
	"io"

	"repro/internal/features"
	"repro/internal/fpga"
)

// Table3Workload is the ring count the paper times the FPGA kernel on ("the
// first iteration of the background network processed 597 rings on
// average", §V).
const Table3Workload = 597

// Table3 reproduces the FPGA quantization comparison (paper Table III):
// the background-network kernel synthesized (via the analytic dataflow
// model) in INT8 and FP32, with latency, initiation interval, resource
// usage, and the total time for the Table3Workload rings at the
// conservative 10 ns clock. The cycle-level simulator cross-checks the
// n·II + (L − II) closed form.
func Table3(w io.Writer) (int8Rep, fp32Rep fpga.Report) {
	layers := fpga.BackgroundNetLayers(features.NumFeatures)
	dev := fpga.DefaultDevice()
	int8Rep = fpga.Synthesize(layers, fpga.INT8, dev)
	fp32Rep = fpga.Synthesize(layers, fpga.FP32, dev)

	fmt.Fprintf(w, "\nTable III — quantization results on FPGA (analytic dataflow model, %.0f MHz)\n", 1e3/dev.ClockNs)
	fmt.Fprintf(w, "  %-30s %-12s %-12s\n", "Statistic", "INT8", "FP32")
	row := func(name string, a, b any) { fmt.Fprintf(w, "  %-30s %-12v %-12v\n", name, a, b) }
	row("Latency (cycles)", int8Rep.Latency, fp32Rep.Latency)
	row("Initiation Interval (cycles)", int8Rep.II, fp32Rep.II)
	row("BRAM Blocks", int8Rep.BRAM, fp32Rep.BRAM)
	row("DSP Slices", int8Rep.DSP, fp32Rep.DSP)
	row("Flip-Flops", int8Rep.FF, fp32Rep.FF)
	row("Lookup Tables", int8Rep.LUT, fp32Rep.LUT)
	row(fmt.Sprintf("Latency (ms) for %d rings", Table3Workload),
		fmt.Sprintf("%.2f", int8Rep.TotalMs(Table3Workload)),
		fmt.Sprintf("%.2f", fp32Rep.TotalMs(Table3Workload)))
	fmt.Fprintf(w, "  throughput ratio INT8/FP32: %.2fx\n", int8Rep.Throughput()/fp32Rep.Throughput())
	fmt.Fprintf(w, "  simulator cross-check: INT8 %d cycles (formula %d), FP32 %d (formula %d)\n",
		fpga.Simulate(int8Rep, Table3Workload), int8Rep.TotalCycles(Table3Workload),
		fpga.Simulate(fp32Rep, Table3Workload), fp32Rep.TotalCycles(Table3Workload))
	return int8Rep, fp32Rep
}
