package expt

import (
	"fmt"
	"io"
	"runtime"

	"repro/internal/detector"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// TimingRow is one stage of the Tables I/II decomposition.
type TimingRow struct {
	Stage   string
	Summary stats.TimingSummary
}

// Timing reproduces the paper's Tables I and II: per-stage elapsed times of
// the full ML pipeline on a 1 MeV/cm², normally incident burst, repeated
// reps times. workers=1 is the slow-platform proxy for the paper's RPi 3B+
// (Table I) and workers=NumCPU the proxy for the Atom board (Table II);
// see DESIGN.md §2 for the substitution.
func Timing(w io.Writer, sc Scale, workers int, label string) []TimingRow {
	e := newEnv()
	bundle := SharedBundle(sc)
	root := xrand.New(0x71)

	stages := []string{
		"Reconstruction", "Localization Setup", "DEta NN Inference",
		"Bkg NN Inference", "Approx + Refine", "Total (Max 5 iter)",
	}
	samples := make(map[string][]float64, len(stages))

	for rep := 0; rep < sc.TimingReps; rep++ {
		rng := root.Split(uint64(rep))
		burst := detector.Burst{Fluence: 1.0, PolarDeg: 0, AzimuthDeg: rng.Uniform(0, 360)}
		events := detector.SimulateBurst(&e.det, burst, rng)
		events = append(events, e.bg.Simulate(&e.det, 1.0, rng)...)

		opts := pipeline.DefaultOptions()
		opts.Bundle = bundle
		opts.Workers = workers
		res := pipeline.Run(opts, events, rng)

		ms := func(d interface{ Seconds() float64 }) float64 { return d.Seconds() * 1e3 }
		samples["Reconstruction"] = append(samples["Reconstruction"], ms(res.Timing.Reconstruction))
		samples["Localization Setup"] = append(samples["Localization Setup"], ms(res.Timing.Setup))
		samples["DEta NN Inference"] = append(samples["DEta NN Inference"], ms(res.Timing.DEtaNN))
		samples["Bkg NN Inference"] = append(samples["Bkg NN Inference"], ms(res.Timing.BkgNN))
		samples["Approx + Refine"] = append(samples["Approx + Refine"], ms(res.Timing.ApproxRefine))
		samples["Total (Max 5 iter)"] = append(samples["Total (Max 5 iter)"], ms(res.Timing.Total))
	}

	var rows []TimingRow
	fmt.Fprintf(w, "\n%s (workers=%d, GOMAXPROCS=%d, %d reps)\n", label, workers, runtime.GOMAXPROCS(0), sc.TimingReps)
	fmt.Fprintf(w, "  %-22s %-14s %s\n", "Stage", "Mean (ms)", "Range (ms)")
	for _, st := range stages {
		s := stats.SummarizeTimings(samples[st])
		rows = append(rows, TimingRow{Stage: st, Summary: s})
		fmt.Fprintf(w, "  %-22s %-14.1f %.0f–%.0f\n", st, s.MeanMs, s.MinMs, s.MaxMs)
	}
	return rows
}

// TableI runs the slow-platform (single-worker) proxy of the paper's
// Table I (RPi 3B+).
func TableI(w io.Writer, sc Scale) []TimingRow {
	return Timing(w, sc, 1, "Table I — timing results, single-worker proxy for RPi 3B+")
}

// TableII runs the parallel proxy of the paper's Table II (Atom E3845,
// four cores).
func TableII(w io.Writer, sc Scale) []TimingRow {
	return Timing(w, sc, 4, "Table II — timing results, 4-worker proxy for Atom E3845")
}
