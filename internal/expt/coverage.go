package expt

import (
	"fmt"
	"io"

	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/localize"
	"repro/internal/pipeline"
	"repro/internal/recon"
	"repro/internal/sky"
	"repro/internal/xrand"
)

// CoverageResult reports one arm × level of the credible-region
// calibration study.
type CoverageResult struct {
	Arm          string
	Level        float64 // nominal credible level
	Covered      int     // trials whose region contained the truth
	Trials       int
	MeanAreaDeg2 float64
}

// Fraction returns the empirical coverage.
func (c CoverageResult) Fraction() float64 {
	if c.Trials == 0 {
		return 0
	}
	return float64(c.Covered) / float64(c.Trials)
}

// coverageTemperatures is the grid scanned for the empirical systematic
// inflation (posterior tempering) of the third arm.
var coverageTemperatures = []float64{1, 2, 4, 8, 16, 32}

// CoverageStudy validates the system's *self-reported* localization
// uncertainty: over many bursts, the p-credible region of the downlinked
// posterior sky map should contain the true direction in ≈ p of trials.
// A flight system whose regions undercover wastes follow-up telescope time.
//
// Three arms, telling the full calibration story:
//
//  1. "no-ML (analytic)": robust likelihood over all rings with analytic
//     dη — overconfident, the paper's "false certainty" failure mode seen
//     as a coverage deficit.
//  2. "ML mixture": the flight product — background-filter survivors,
//     dEta-network-calibrated widths, classifier-weighted mixture
//     likelihood. Better, but statistical widths cannot absorb the
//     estimator's systematic error.
//  3. "ML + empirical": arm 2's posterior tempered by a factor fitted on
//     an independent calibration half of the trials — the standard
//     mission practice (cf. Fermi-GBM's empirically fitted systematic
//     localization error).
//
// This calibration view is an addition of this reproduction; the paper
// evaluates only ground-truth containment.
func CoverageStudy(w io.Writer, sc Scale) []CoverageResult {
	e := newEnv()
	rc := recon.DefaultConfig()
	lc := localize.DefaultConfig()
	bundle := SharedBundle(sc)
	grid := sky.NewGrid(24)
	levels := []float64{0.68, 0.90}
	arms := []string{"no-ML (analytic)", "ML mixture", "ML + empirical"}
	results := make([]CoverageResult, 0, len(arms)*len(levels))
	for _, arm := range arms {
		for _, p := range levels {
			results = append(results, CoverageResult{Arm: arm, Level: p})
		}
	}
	at := func(arm, level int) *CoverageResult { return &results[arm*len(levels)+level] }

	type trialMaps struct {
		truth   geom.Vec
		mlMap   *sky.Map
		noMLMap *sky.Map
	}
	var all []trialMaps

	root := xrand.New(0xC0F)
	trials := sc.Trials * sc.MetaTrials
	for trial := 0; trial < trials; trial++ {
		rng := root.Split(uint64(trial) + 1)
		burst := detector.Burst{
			Fluence:    1.0,
			PolarDeg:   rng.Uniform(0, 70),
			AzimuthDeg: rng.Uniform(0, 360),
		}
		events := detector.SimulateBurst(&e.det, burst, rng)
		events = append(events, e.bg.Simulate(&e.det, 1.0, rng)...)
		var rings []*recon.Ring
		for _, ev := range events {
			if r, ok := recon.Reconstruct(&rc, ev); ok {
				rings = append(rings, r)
			}
		}
		if len(rings) < lc.MinRings {
			continue
		}

		tm := trialMaps{truth: burst.SourceDirection()}
		tm.noMLMap = sky.Likelihood(&lc, rings, grid)

		opts := pipeline.DefaultOptions()
		opts.Bundle = bundle
		pres := pipeline.Run(opts, events, rng)
		if !pres.Loc.OK {
			continue
		}
		polar := geom.Deg(geom.Polar(pres.Loc.Dir))
		pipeline.ApplyDEtaCalibrated(bundle, pres.ActiveRings, polar)
		probs := pipeline.BackgroundProbs(bundle, pres.ActiveRings, polar)
		tm.mlMap = sky.MixtureLikelihood(&lc, pres.ActiveRings, probs, grid)
		all = append(all, tm)
	}

	// Arms 1 and 2 evaluate on every trial.
	for _, tm := range all {
		for li, p := range levels {
			r := at(0, li)
			r.Trials++
			if tm.noMLMap.Contains(tm.truth, p) {
				r.Covered++
			}
			r.MeanAreaDeg2 += tm.noMLMap.CredibleAreaDeg2(p)

			r = at(1, li)
			r.Trials++
			if tm.mlMap.Contains(tm.truth, p) {
				r.Covered++
			}
			r.MeanAreaDeg2 += tm.mlMap.CredibleAreaDeg2(p)
		}
	}

	// Arm 3: fit the temperature on the first half, evaluate on the second.
	half := len(all) / 2
	temperature := coverageTemperatures[len(coverageTemperatures)-1]
	for _, t := range coverageTemperatures {
		covered := 0
		for _, tm := range all[:half] {
			if tm.mlMap.Tempered(t).Contains(tm.truth, 0.90) {
				covered++
			}
		}
		if half > 0 && float64(covered)/float64(half) >= 0.90 {
			temperature = t
			break
		}
	}
	for _, tm := range all[half:] {
		m := tm.mlMap.Tempered(temperature)
		for li, p := range levels {
			r := at(2, li)
			r.Trials++
			if m.Contains(tm.truth, p) {
				r.Covered++
			}
			r.MeanAreaDeg2 += m.CredibleAreaDeg2(p)
		}
	}

	for i := range results {
		if results[i].Trials > 0 {
			results[i].MeanAreaDeg2 /= float64(results[i].Trials)
		}
	}

	fmt.Fprintf(w, "\nCredible-region coverage calibration (1 MeV/cm², %d trials; fitted temperature %.0f)\n",
		trials, temperature)
	fmt.Fprintf(w, "  %-18s %-8s %-10s %-14s\n", "arm", "level", "coverage", "mean area deg²")
	for _, r := range results {
		fmt.Fprintf(w, "  %-18s %-8.2f %-10.3f %-14.1f\n", r.Arm, r.Level, r.Fraction(), r.MeanAreaDeg2)
	}
	return results
}
