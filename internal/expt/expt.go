// Package expt regenerates every table and figure of the paper's evaluation
// (the per-experiment index in DESIGN.md §4): the Fig. 4 motivation study,
// the Fig. 7 polar-angle-input ablation, the Fig. 8/9 accuracy studies, the
// Fig. 10 robustness study, the Table I/II timing decomposition, the Fig. 11
// quantized-model accuracy study, and the Table III FPGA kernel comparison.
//
// All drivers print text tables to an io.Writer and also return their data,
// so the same code backs cmd/adaptbench, the root bench_test.go targets, and
// the integration tests. Workload sizes are scaled by ADAPT_SCALE
// (ci | default | full); the paper's 1000-trial × 10-meta-trial protocol is
// the "full" setting.
package expt

import (
	"fmt"
	"io"
	"os"

	"repro/internal/background"
	"repro/internal/detector"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Scale controls experiment workload sizes.
type Scale struct {
	Name string
	// Trials per figure point per meta-trial.
	Trials int
	// MetaTrials groups trials for error bars (paper: 10).
	MetaTrials int
	// TrainBurstsPerAngle sizes the training set.
	TrainBurstsPerAngle int
	// TrainEpochs bounds model training.
	TrainEpochs int
	// TimingReps is the repetition count for Tables I/II (paper: 300).
	TimingReps int
	// PolarStepDeg is the polar-angle grid spacing for Figs 7/8/11
	// (paper: 10°).
	PolarStepDeg float64
}

var scales = map[string]Scale{
	"ci": {
		Name: "ci", Trials: 8, MetaTrials: 2,
		TrainBurstsPerAngle: 1, TrainEpochs: 6,
		TimingReps: 5, PolarStepDeg: 40,
	},
	"default": {
		Name: "default", Trials: 25, MetaTrials: 3,
		TrainBurstsPerAngle: 3, TrainEpochs: 30,
		TimingReps: 40, PolarStepDeg: 20,
	},
	"full": {
		Name: "full", Trials: 100, MetaTrials: 10,
		TrainBurstsPerAngle: 10, TrainEpochs: 120,
		TimingReps: 300, PolarStepDeg: 10,
	},
}

// CurrentScale reads ADAPT_SCALE (ci | default | full); unset or unknown
// values mean "default".
func CurrentScale() Scale {
	if s, ok := scales[os.Getenv("ADAPT_SCALE")]; ok {
		return s
	}
	return scales["default"]
}

// ScaleByName returns a named scale for programmatic use.
func ScaleByName(name string) (Scale, bool) {
	s, ok := scales[name]
	return s, ok
}

// Point is one x-position of a figure series with 68% and 95% containment
// values and their meta-trial error bars.
type Point struct {
	X        float64
	C68, C95 stats.MeanErr
}

// Series is one labeled curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// evalCase describes one figure point's workload.
type evalCase struct {
	fluence    float64
	polarDeg   float64
	epsilonPct float64 // Fig. 10 perturbation
	configure  func(*pipeline.Options)
}

// env bundles the simulation configuration shared by all experiments.
type env struct {
	det detector.Config
	bg  background.Model
}

func newEnv() env {
	return env{det: detector.DefaultConfig(), bg: background.DefaultModel()}
}

// evaluate runs one figure point: MetaTrials × Trials bursts, each through
// the pipeline, returning containment statistics with meta-trial error
// bars. The RNG stream is a pure function of (seed, point), independent of
// evaluation order.
func (e *env) evaluate(sc Scale, seed uint64, c evalCase) (c68, c95 stats.MeanErr) {
	return e.evaluateWith(sc, seed, c, nil)
}

// evaluateWith is evaluate with an optional event-stream transform applied
// after simulation and perturbation (used by the pile-up study).
func (e *env) evaluateWith(sc Scale, seed uint64, c evalCase, transform func([]*detector.Event, *xrand.RNG) []*detector.Event) (c68, c95 stats.MeanErr) {
	root := xrand.New(seed)
	var m68, m95 []float64
	for meta := 0; meta < sc.MetaTrials; meta++ {
		var errs []float64
		for trial := 0; trial < sc.Trials; trial++ {
			rng := root.Split(uint64(meta)<<20 | uint64(trial)<<1)
			burst := detector.Burst{
				Fluence:    c.fluence,
				PolarDeg:   c.polarDeg,
				AzimuthDeg: rng.Uniform(0, 360),
			}
			events := detector.SimulateBurst(&e.det, burst, rng)
			events = append(events, e.bg.Simulate(&e.det, 1.0, rng)...)
			if c.epsilonPct > 0 {
				for _, ev := range events {
					detector.Perturb(ev, c.epsilonPct, rng)
				}
			}
			if transform != nil {
				events = transform(events, rng)
			}
			opts := pipeline.DefaultOptions()
			if c.configure != nil {
				c.configure(&opts)
			}
			res := pipeline.Run(opts, events, rng)
			if res.Loc.OK {
				errs = append(errs, res.Loc.ErrorDeg(burst.SourceDirection()))
			} else {
				// A failed localization is maximally wrong, not missing:
				// score it at the worst possible separation so containment
				// statistics cannot improve by failing.
				errs = append(errs, 180)
			}
		}
		a, b := stats.Containment68And95(errs)
		m68 = append(m68, a)
		m95 = append(m95, b)
	}
	return stats.OverMetaTrials(m68), stats.OverMetaTrials(m95)
}

// polarGrid returns the polar angles for Figs 7/8/11 at the scale's step.
func polarGrid(sc Scale) []float64 {
	var out []float64
	for a := 0.0; a <= 80; a += sc.PolarStepDeg {
		out = append(out, a)
	}
	return out
}

// printSeries renders figure data as an aligned text table.
func printSeries(w io.Writer, title, xlabel string, series []Series) {
	fmt.Fprintf(w, "\n%s\n", title)
	for _, s := range series {
		fmt.Fprintf(w, "  series %q\n", s.Name)
		fmt.Fprintf(w, "    %-10s %-16s %-16s\n", xlabel, "68% cont. (deg)", "95% cont. (deg)")
		for _, p := range s.Points {
			fmt.Fprintf(w, "    %-10.3g %-16s %-16s\n", p.X, p.C68, p.C95)
		}
	}
}
