package expt

import (
	"bytes"
	"strings"
	"testing"
)

func ciScale(t *testing.T) Scale {
	t.Helper()
	sc, ok := ScaleByName("ci")
	if !ok {
		t.Fatal("ci scale missing")
	}
	return sc
}

func TestScales(t *testing.T) {
	for _, name := range []string{"ci", "default", "full"} {
		sc, ok := ScaleByName(name)
		if !ok {
			t.Fatalf("scale %q missing", name)
		}
		if sc.Trials <= 0 || sc.MetaTrials <= 0 || sc.TrainEpochs <= 0 {
			t.Errorf("scale %q has zero fields: %+v", name, sc)
		}
	}
	full, _ := ScaleByName("full")
	if full.Trials != 100 || full.MetaTrials != 10 || full.TimingReps != 300 || full.TrainEpochs != 120 {
		t.Errorf("full scale does not match the paper protocol: %+v", full)
	}
	if _, ok := ScaleByName("bogus"); ok {
		t.Error("bogus scale resolved")
	}
	t.Setenv("ADAPT_SCALE", "ci")
	if CurrentScale().Name != "ci" {
		t.Error("ADAPT_SCALE not honored")
	}
	t.Setenv("ADAPT_SCALE", "nonsense")
	if CurrentScale().Name != "default" {
		t.Error("unknown ADAPT_SCALE should fall back to default")
	}
}

func TestPolarGrid(t *testing.T) {
	sc := Scale{PolarStepDeg: 10}
	g := polarGrid(sc)
	if len(g) != 9 || g[0] != 0 || g[8] != 80 {
		t.Errorf("10° grid = %v", g)
	}
	sc.PolarStepDeg = 40
	if g := polarGrid(sc); len(g) != 3 {
		t.Errorf("40° grid = %v", g)
	}
}

func TestTable3Output(t *testing.T) {
	var buf bytes.Buffer
	i8, f32 := Table3(&buf)
	out := buf.String()
	for _, want := range []string{"Table III", "INT8", "FP32", "Initiation Interval", "597"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table III output missing %q", want)
		}
	}
	if i8.II >= f32.II {
		t.Error("Table III: INT8 II not below FP32")
	}
}

func TestFig4Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	var buf bytes.Buffer
	series := Fig4(&buf, ciScale(t))
	if len(series) != 3 {
		t.Fatalf("Fig4 has %d arms", len(series))
	}
	def := series[0].Points[0]
	oracleBkg := series[1].Points[0]
	// The motivation figure's core claim: fully correcting background
	// improves containment versus the default arm.
	if oracleBkg.C95.Mean > def.C95.Mean+1 {
		t.Errorf("oracle background (%.2f) not better than default (%.2f) at 95%%",
			oracleBkg.C95.Mean, def.C95.Mean)
	}
	if !strings.Contains(buf.String(), "Fig. 4") {
		t.Error("missing figure header")
	}
}

func TestTimingTable(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation- and training-heavy")
	}
	sc := ciScale(t)
	var buf bytes.Buffer
	rows := Timing(&buf, sc, 1, "test table")
	if len(rows) != 6 {
		t.Fatalf("%d timing rows, want 6", len(rows))
	}
	names := []string{"Reconstruction", "Localization Setup", "DEta NN Inference", "Bkg NN Inference", "Approx + Refine", "Total (Max 5 iter)"}
	var total, sum float64
	for i, r := range rows {
		if r.Stage != names[i] {
			t.Errorf("row %d = %q, want %q", i, r.Stage, names[i])
		}
		if r.Summary.MeanMs < 0 || r.Summary.N != sc.TimingReps {
			t.Errorf("row %q summary %+v", r.Stage, r.Summary)
		}
		if r.Stage == "Total (Max 5 iter)" {
			total = r.Summary.MeanMs
		} else {
			sum += r.Summary.MeanMs
		}
	}
	// The stage decomposition must roughly add up to the total.
	if total < 0.7*sum || sum > 1.5*total+5 {
		t.Errorf("stage sum %.1f ms vs total %.1f ms", sum, total)
	}
}

func TestInt8ClassifierAdapter(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy")
	}
	sc := ciScale(t)
	int8net, bundle := Int8Background(sc)
	if int8net == nil || bundle == nil {
		t.Fatal("nil quantized model")
	}
	// The adapter must produce valid probabilities matching direct calls.
	set := trainingSet(sc, 1001)
	_ = set
	cls := Int8Classifier{Net: int8net}
	x := makeTestFeatures()
	bundle.BkgNorm.Apply(x)
	probs := cls.Probs(x)
	if len(probs) != x.Rows {
		t.Fatal("prob count mismatch")
	}
	for i, p := range probs {
		if p < 0 || p > 1 {
			t.Errorf("prob %d = %v", i, p)
		}
		if p != int8net.Prob(x.Row(i)) {
			t.Error("adapter disagrees with direct call")
		}
	}
}

func TestModelCacheReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy")
	}
	sc := ciScale(t)
	a := SharedBundle(sc)
	b := SharedBundle(sc)
	if a != b {
		t.Error("SharedBundle retrained instead of reusing the cache")
	}
	if p := CachePath(sc, "polar"); p == "" {
		t.Error("empty cache path")
	}
}

func TestQuantStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("training-heavy")
	}
	var buf bytes.Buffer
	results := QuantStudy(&buf, ciScale(t))
	if len(results) != len(QuantStrategies) {
		t.Fatalf("%d results, want %d", len(results), len(QuantStrategies))
	}
	for _, r := range results {
		if r.Agreement < 0.8 {
			t.Errorf("%s agreement %v; quantization badly broken", r.Strategy.Name, r.Agreement)
		}
	}
}

func TestAPTStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	var buf bytes.Buffer
	series := APTStudy(&buf, ciScale(t))
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	// The paper's future-work claim: APT localizes dim bursts to within a
	// degree or so. Allow slack for ci-scale statistics.
	for _, s := range series {
		for _, p := range s.Points {
			if p.X >= 0.1 && p.C68.Mean > 3 {
				t.Errorf("%s at %.2f MeV/cm²: %.2f° not degree-scale", s.Name, p.X, p.C68.Mean)
			}
		}
	}
}

// TestFiguresSmoke runs every figure driver once at ci scale, checking the
// structural contract: correct series counts, all points populated with
// finite containment values.
func TestFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation- and training-heavy")
	}
	sc := ciScale(t)
	check := func(name string, series []Series, wantSeries, wantPoints int) {
		t.Helper()
		if len(series) != wantSeries {
			t.Fatalf("%s: %d series, want %d", name, len(series), wantSeries)
		}
		for _, s := range series {
			if len(s.Points) != wantPoints {
				t.Fatalf("%s %q: %d points, want %d", name, s.Name, len(s.Points), wantPoints)
			}
			for _, p := range s.Points {
				if !(p.C68.Mean >= 0 && p.C68.Mean <= 180) || !(p.C95.Mean >= p.C68.Mean-1e-9) {
					t.Errorf("%s %q at x=%v: c68=%v c95=%v", name, s.Name, p.X, p.C68, p.C95)
				}
			}
		}
	}
	grid := len(polarGrid(sc))
	var buf bytes.Buffer
	check("fig7", Fig7(&buf, sc), 2, grid)
	check("fig8", Fig8(&buf, sc), 2, grid)
	check("fig9", Fig9(&buf, sc), 2, len(Fig9Fluences))
	check("fig10", Fig10(&buf, sc), 2, len(Fig10Epsilons))
	check("fig11", Fig11(&buf, sc), 2, grid)
	check("ablation-thresholds", AblationThresholds(&buf, sc), 2, 3)
	check("ablation-iterations", AblationIterations(&buf, sc), 2, 2)
	check("ablation-gating", AblationGating(&buf, sc), 2, 2)
	check("ablation-widening", AblationWidening(&buf, sc), 3, 2)
	check("ablation-threecompton", AblationThreeCompton(&buf, sc), 2, 2)
	check("ablation-detaloss", AblationDEtaLoss(&buf, sc), 2, 2)
	check("pileup", PileUpStudy(&buf, sc), len(PileUpWindows), 2)
}

func TestCoverageStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation- and training-heavy")
	}
	var buf bytes.Buffer
	results := CoverageStudy(&buf, ciScale(t))
	if len(results) != 6 {
		t.Fatalf("%d results, want 6 (3 arms x 2 levels)", len(results))
	}
	for _, r := range results {
		if r.Fraction() < 0 || r.Fraction() > 1 {
			t.Errorf("%s@%v: coverage %v", r.Arm, r.Level, r.Fraction())
		}
		if r.Trials > 0 && r.MeanAreaDeg2 <= 0 {
			t.Errorf("%s@%v: non-positive area", r.Arm, r.Level)
		}
	}
	// The empirically tempered arm must cover at least as well as the raw
	// ML mixture at the 90% level (that is its whole purpose).
	if results[5].Trials > 0 && results[3].Trials > 0 &&
		results[5].Fraction() < results[3].Fraction() {
		t.Errorf("empirical arm (%v) worse than raw mixture (%v) at 90%%",
			results[5].Fraction(), results[3].Fraction())
	}
}
