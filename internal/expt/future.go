package expt

import (
	"fmt"
	"io"

	"repro/internal/background"
	"repro/internal/datagen"
	"repro/internal/detector"
	"repro/internal/models"
	"repro/internal/pipeline"
	"repro/internal/spectrum"
	"repro/internal/xrand"
)

// This file implements the paper's §VI future-work studies:
//
//   - the full APT instrument ("whose much larger detector ... could allow
//     localization of even dim (< 0.1 MeV/cm²) GRBs to within a degree or
//     less") — APTStudy;
//   - simultaneous events within the detection latency — PileUpStudy; and
//   - a broader range of quantization strategies — QuantStudy (PTQ vs QAT,
//     per-tensor vs per-channel).

// aptEnv returns the orbital-instrument simulation setup: the APT geometry
// and a space (L2) background environment — no atmospheric albedo, a harder
// diffuse spectrum, and a rate calibrated to the larger aperture.
func aptEnv() env {
	return env{
		det: detector.APTConfig(),
		bg: background.Model{
			RatePerSecond:  45000,
			AlbedoFraction: 0.05,
			Spec:           spectrum.NewPowerLaw(-2.0, 0.030, 30.0),
		},
	}
}

// APTBundle trains (and caches) networks on APT-geometry simulations; the
// ADAPT-trained networks do not transfer because the feature distributions
// (hit coordinates, lever arms, background mixture) differ.
func APTBundle(sc Scale) *models.Bundle {
	return loadOrTrain(sc, "apt", func() *models.Bundle {
		e := aptEnv()
		gen := datagen.DefaultConfig(4001)
		gen.Detector = &e.det
		gen.Background = &e.bg
		gen.Fluence = 0.3 // train in the dim regime APT targets
		gen.BurstsPerAngle = 1
		set := datagen.Generate(gen)
		return models.Train(set, trainOptions(sc, 4002, true, false))
	})
}

// APTFluences is the dim-burst grid of the APT study.
var APTFluences = []float64{0.05, 0.1, 0.25}

// APTStudy measures localization accuracy of the full APT instrument on dim
// bursts, with and without the networks.
func APTStudy(w io.Writer, sc Scale) []Series {
	e := aptEnv()
	bundle := APTBundle(sc)
	var noML, ml Series
	noML.Name = "APT without NN models"
	ml.Name = "APT with NN models"
	for i, f := range APTFluences {
		c68, c95 := e.evaluate(sc, 0x1000+uint64(i), evalCase{fluence: f, polarDeg: 0})
		noML.Points = append(noML.Points, Point{X: f, C68: c68, C95: c95})
		c68, c95 = e.evaluate(sc, 0x1080+uint64(i), evalCase{
			fluence: f, polarDeg: 0,
			configure: func(o *pipeline.Options) { o.Bundle = bundle },
		})
		ml.Points = append(ml.Points, Point{X: f, C68: c68, C95: c95})
	}
	out := []Series{noML, ml}
	printSeries(w, "Future work — full APT instrument on dim bursts (§VI; normal incidence)", "MeV/cm^2", out)
	return out
}

// PileUpWindows are the event-builder latency windows studied (seconds).
var PileUpWindows = []float64{0, 2e-5, 1e-4}

// PileUpStudy measures the impact of simultaneous-event confusion on
// localization: events arriving within the readout window merge into
// combined (mis-reconstructable) events before the pipeline runs.
func PileUpStudy(w io.Writer, sc Scale) []Series {
	e := newEnv()
	bundle := SharedBundle(sc)
	var out []Series
	for _, window := range PileUpWindows {
		win := window
		name := "no pile-up"
		if win > 0 {
			name = fmt.Sprintf("window %.0f µs", win*1e6)
		}
		s := Series{Name: name}
		for _, arm := range []struct {
			label string
			ml    bool
		}{{"no-ML", false}, {"ML", true}} {
			useML := arm.ml
			c68, c95 := e.evaluateWith(sc, 0x1100+uint64(win*1e7), evalCase{
				fluence: 2.0, polarDeg: 0,
				configure: func(o *pipeline.Options) {
					if useML {
						o.Bundle = bundle
					}
				},
			}, func(events []*detector.Event, _ *xrand.RNG) []*detector.Event {
				return detector.MergePileUp(events, win)
			})
			x := 0.0
			if useML {
				x = 1
			}
			s.Points = append(s.Points, Point{X: x, C68: c68, C95: c95})
		}
		out = append(out, s)
	}
	printSeries(w, "Future work — simultaneous events within the detection latency (§VI; 2 MeV/cm², x=0 no-ML, x=1 ML)", "arm", out)
	return out
}

// QuantStrategy labels one quantization configuration of the QuantStudy.
type QuantStrategy struct {
	Name       string
	Mode       models.QuantMode
	PerChannel bool
}

// QuantStrategies are the §VI "broader range of quantization strategies".
var QuantStrategies = []QuantStrategy{
	{"QAT per-tensor (paper §V)", models.ModeQAT, false},
	{"QAT per-channel", models.ModeQAT, true},
	{"PTQ per-tensor", models.ModePTQ, false},
	{"PTQ per-channel", models.ModePTQ, true},
}

// QuantStudyResult reports one strategy's agreement with the FP32 model.
type QuantStudyResult struct {
	Strategy  QuantStrategy
	Agreement float64 // fraction of held-out rings classified identically
}

// QuantStudy converts the swapped background network under each strategy
// and measures thresholded-classification agreement with the FP32 model on
// a held-out simulated ring set.
func QuantStudy(w io.Writer, sc Scale) []QuantStudyResult {
	b := SwappedBundle(sc)
	set := trainingSet(sc, 1001)
	eval := datagen.BackgroundDataset(set, b.WithPolar)
	b.BkgNorm.Apply(eval.X)
	ref := b.Bkg.PredictProbs(eval.X)

	var out []QuantStudyResult
	fmt.Fprintf(w, "\nFuture work — quantization strategies (§VI): agreement with FP32 classification\n")
	fmt.Fprintf(w, "  %-28s %s\n", "strategy", "agreement")
	for i, strat := range QuantStrategies {
		qopts := models.DefaultQuantizeOptions(5000 + uint64(i))
		qopts.Mode = strat.Mode
		qopts.PerChannel = strat.PerChannel
		if sc.Name == "ci" {
			qopts.QATEpochs = 1
		}
		int8net, _, err := models.QuantizeBackground(b, set, qopts)
		if err != nil {
			panic(fmt.Sprintf("expt: quant study: %v", err))
		}
		agree := 0
		n := eval.Len()
		if n > 4000 {
			n = 4000
		}
		for r := 0; r < n; r++ {
			if (int8net.Prob(eval.X.Row(r)) > 0.5) == (ref[r] > 0.5) {
				agree++
			}
		}
		res := QuantStudyResult{Strategy: strat, Agreement: float64(agree) / float64(n)}
		out = append(out, res)
		fmt.Fprintf(w, "  %-28s %.4f\n", strat.Name, res.Agreement)
	}
	return out
}
