package expt

import (
	"fmt"
	"io"
	"time"
)

// RunAll regenerates every paper table and figure plus the ablations,
// writing text tables to w. It is the engine behind cmd/adaptbench.
func RunAll(w io.Writer, sc Scale) {
	start := time.Now()
	fmt.Fprintf(w, "ADAPT reproduction — full evaluation at scale %q\n", sc.Name)
	fmt.Fprintf(w, "(trials/point=%d, meta-trials=%d, timing reps=%d)\n", sc.Trials, sc.MetaTrials, sc.TimingReps)

	Fig4(w, sc)
	Fig7(w, sc)
	Fig8(w, sc)
	Fig9(w, sc)
	Fig10(w, sc)
	TableI(w, sc)
	TableII(w, sc)
	Fig11(w, sc)
	Table3(w)

	fmt.Fprintf(w, "\nAblations\n")
	AblationThresholds(w, sc)
	AblationIterations(w, sc)
	AblationGating(w, sc)
	AblationWidening(w, sc)
	AblationThreeCompton(w, sc)
	AblationDEtaLoss(w, sc)

	fmt.Fprintf(w, "\nFuture-work studies (§VI)\n")
	QuantStudy(w, sc)
	PileUpStudy(w, sc)
	APTStudy(w, sc)
	CoverageStudy(w, sc)

	fmt.Fprintf(w, "\ncompleted in %v\n", time.Since(start).Round(time.Second))
}
