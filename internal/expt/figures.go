package expt

import (
	"fmt"
	"io"

	"repro/internal/nn"
	"repro/internal/nn/quant"
	"repro/internal/pipeline"
)

// Fig4 reproduces the motivation study (paper Fig. 4): localization accuracy
// of the no-ML pipeline on a 1 MeV/cm², normally-incident burst, for the
// default pipeline versus the two oracle arms (background rings removed
// using ground truth; dη replaced by the realized η error).
func Fig4(w io.Writer, sc Scale) []Series {
	e := newEnv()
	arms := []struct {
		name      string
		configure func(*pipeline.Options)
	}{
		{"background + dEta error (default)", nil},
		{"background removed (oracle)", func(o *pipeline.Options) { o.OracleBackground = true }},
		{"true dEta (oracle)", func(o *pipeline.Options) { o.OracleDEta = true }},
	}
	var out []Series
	for i, arm := range arms {
		c68, c95 := e.evaluate(sc, 0x40+uint64(i), evalCase{
			fluence: 1.0, polarDeg: 0, configure: arm.configure,
		})
		out = append(out, Series{Name: arm.name, Points: []Point{{X: 1.0, C68: c68, C95: c95}}})
	}
	fmt.Fprintf(w, "\nFig. 4 — impact of background particles and dEta error on localization accuracy\n")
	fmt.Fprintf(w, "(1 MeV/cm², normal incidence, no-ML pipeline; error bars over %d meta-trials)\n", sc.MetaTrials)
	fmt.Fprintf(w, "  %-36s %-16s %-16s\n", "arm", "68% cont. (deg)", "95% cont. (deg)")
	for _, s := range out {
		fmt.Fprintf(w, "  %-36s %-16s %-16s\n", s.Name, s.Points[0].C68, s.Points[0].C95)
	}
	return out
}

// Fig7 reproduces the polar-angle-input ablation (paper Fig. 7):
// localization error versus source polar angle for models trained with and
// without the polar-angle feature.
func Fig7(w io.Writer, sc Scale) []Series {
	e := newEnv()
	withPolar := SharedBundle(sc)
	noPolar := NoPolarBundle(sc)
	var sWith, sWithout Series
	sWith.Name = "Polar"
	sWithout.Name = "No Polar"
	for _, a := range polarGrid(sc) {
		c68, c95 := e.evaluate(sc, 0x700+uint64(a), evalCase{
			fluence: 1.0, polarDeg: a,
			configure: func(o *pipeline.Options) { o.Bundle = withPolar },
		})
		sWith.Points = append(sWith.Points, Point{X: a, C68: c68, C95: c95})
		c68, c95 = e.evaluate(sc, 0x780+uint64(a), evalCase{
			fluence: 1.0, polarDeg: a,
			configure: func(o *pipeline.Options) { o.Bundle = noPolar },
		})
		sWithout.Points = append(sWithout.Points, Point{X: a, C68: c68, C95: c95})
	}
	out := []Series{sWithout, sWith}
	printSeries(w, "Fig. 7 — impact of including polar angle as a model input (1 MeV/cm²)", "polar(deg)", out)
	return out
}

// Fig8 reproduces localization accuracy versus polar angle for the ML
// pipeline against the prior no-ML pipeline (paper Fig. 8).
func Fig8(w io.Writer, sc Scale) []Series {
	e := newEnv()
	bundle := SharedBundle(sc)
	var noML, ml Series
	noML.Name = "without NN models"
	ml.Name = "with NN models"
	for _, a := range polarGrid(sc) {
		c68, c95 := e.evaluate(sc, 0x800+uint64(a), evalCase{fluence: 1.0, polarDeg: a})
		noML.Points = append(noML.Points, Point{X: a, C68: c68, C95: c95})
		c68, c95 = e.evaluate(sc, 0x880+uint64(a), evalCase{
			fluence: 1.0, polarDeg: a,
			configure: func(o *pipeline.Options) { o.Bundle = bundle },
		})
		ml.Points = append(ml.Points, Point{X: a, C68: c68, C95: c95})
	}
	out := []Series{noML, ml}
	printSeries(w, "Fig. 8 — localization accuracy vs polar angle (1 MeV/cm²)", "polar(deg)", out)
	return out
}

// Fig9Fluences is the brightness grid for the fluence study.
var Fig9Fluences = []float64{0.25, 0.5, 1.0, 2.0, 4.0}

// Fig9 reproduces localization accuracy versus fluence for normally
// incident bursts (paper Fig. 9).
func Fig9(w io.Writer, sc Scale) []Series {
	e := newEnv()
	bundle := SharedBundle(sc)
	var noML, ml Series
	noML.Name = "without NN models"
	ml.Name = "with NN models"
	for i, f := range Fig9Fluences {
		c68, c95 := e.evaluate(sc, 0x900+uint64(i), evalCase{fluence: f, polarDeg: 0})
		noML.Points = append(noML.Points, Point{X: f, C68: c68, C95: c95})
		c68, c95 = e.evaluate(sc, 0x980+uint64(i), evalCase{
			fluence: f, polarDeg: 0,
			configure: func(o *pipeline.Options) { o.Bundle = bundle },
		})
		ml.Points = append(ml.Points, Point{X: f, C68: c68, C95: c95})
	}
	out := []Series{noML, ml}
	printSeries(w, "Fig. 9 — localization accuracy vs fluence (normal incidence)", "MeV/cm^2", out)
	return out
}

// Fig10Epsilons is the perturbation grid of the robustness study (§IV).
var Fig10Epsilons = []float64{0, 1, 5, 10}

// Fig10 reproduces the robustness study (paper Fig. 10): Gaussian noise
// with σ = ε% of each hit's spatial and energy values is injected before
// reconstruction.
func Fig10(w io.Writer, sc Scale) []Series {
	e := newEnv()
	bundle := SharedBundle(sc)
	var noML, ml Series
	noML.Name = "without NN models"
	ml.Name = "with NN models"
	for i, eps := range Fig10Epsilons {
		c68, c95 := e.evaluate(sc, 0xA00+uint64(i), evalCase{fluence: 1.0, polarDeg: 0, epsilonPct: eps})
		noML.Points = append(noML.Points, Point{X: eps, C68: c68, C95: c95})
		c68, c95 = e.evaluate(sc, 0xA80+uint64(i), evalCase{
			fluence: 1.0, polarDeg: 0, epsilonPct: eps,
			configure: func(o *pipeline.Options) { o.Bundle = bundle },
		})
		ml.Points = append(ml.Points, Point{X: eps, C68: c68, C95: c95})
	}
	out := []Series{noML, ml}
	printSeries(w, "Fig. 10 — localization accuracy with perturbed inputs (1 MeV/cm², normal incidence)", "epsilon(%)", out)
	return out
}

// Int8Classifier adapts the quantized background network to the pipeline's
// classifier interface.
type Int8Classifier struct{ Net *quant.Int8Net }

// Probs implements pipeline.BkgClassifier.
func (c Int8Classifier) Probs(x *nn.Tensor) []float32 {
	out := make([]float32, x.Rows)
	for i := range out {
		out[i] = c.Net.Prob(x.Row(i))
	}
	return out
}

// Fig11 reproduces the quantized-model accuracy study (paper Fig. 11):
// localization accuracy across polar angles using the INT8 background
// network versus its FP32 (layer-swapped, fused-trainable) counterpart,
// both with the FP32 dEta model.
func Fig11(w io.Writer, sc Scale) []Series {
	e := newEnv()
	int8net, swapped := Int8Background(sc)
	var fp32, int8s Series
	fp32.Name = "FP32"
	int8s.Name = "INT8"
	for _, a := range polarGrid(sc) {
		c68, c95 := e.evaluate(sc, 0xB00+uint64(a), evalCase{
			fluence: 1.0, polarDeg: a,
			configure: func(o *pipeline.Options) { o.Bundle = swapped },
		})
		fp32.Points = append(fp32.Points, Point{X: a, C68: c68, C95: c95})
		c68, c95 = e.evaluate(sc, 0xB00+uint64(a), evalCase{
			fluence: 1.0, polarDeg: a,
			configure: func(o *pipeline.Options) {
				o.Bundle = swapped
				o.BkgOverride = Int8Classifier{Net: int8net}
			},
		})
		int8s.Points = append(int8s.Points, Point{X: a, C68: c68, C95: c95})
	}
	out := []Series{fp32, int8s}
	printSeries(w, "Fig. 11 — localization accuracy with quantized background model (1 MeV/cm²)", "polar(deg)", out)
	return out
}
