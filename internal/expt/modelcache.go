package expt

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/datagen"
	"repro/internal/models"
	"repro/internal/nn/quant"
)

// Trained models are expensive on a laptop-class host, so the harness
// trains each variant once per scale and caches it: in memory for the
// process, and on disk under the user cache directory so repeated bench
// runs skip training entirely. Delete the cache directory (printed by
// CachePath) or set ADAPT_NO_MODEL_CACHE=1 to force retraining.

// cacheVersion invalidates on-disk models when training code changes shape.
const cacheVersion = "v3"

type variantKey struct {
	scale   string
	variant string
}

var (
	cacheMu     sync.Mutex
	bundleCache = map[variantKey]*models.Bundle{}
	int8Cache   = map[string]*quant.Int8Net{}
)

// CachePath returns the on-disk location for a model variant at a scale.
func CachePath(sc Scale, variant string) string {
	base, err := os.UserCacheDir()
	if err != nil {
		base = os.TempDir()
	}
	return filepath.Join(base, "adapt-repro", fmt.Sprintf("%s-%s-%s.gob", cacheVersion, sc.Name, variant))
}

func diskCacheEnabled() bool { return os.Getenv("ADAPT_NO_MODEL_CACHE") == "" }

// trainingSet generates the (deterministic) training data for a scale.
func trainingSet(sc Scale, seed uint64) *datagen.Set {
	gen := datagen.DefaultConfig(seed)
	gen.BurstsPerAngle = sc.TrainBurstsPerAngle
	return datagen.Generate(gen)
}

// trainOptions returns the scale-adjusted training configuration. The
// paper's exact hyperparameters (batch 4096 / lr 5.204e-4) assume its
// ~1M-ring dataset and a GPU; on this reproduction's scaled datasets the
// same plateau is reached faster with a proportionally larger step (see
// EXPERIMENTS.md "Training protocol").
func trainOptions(sc Scale, seed uint64, withPolar, swapped bool) models.TrainOptions {
	opts := models.DefaultTrainOptions(seed)
	opts.WithPolar = withPolar
	opts.Swapped = swapped
	opts.MaxEpochs = sc.TrainEpochs
	opts.Patience = sc.TrainEpochs/3 + 2
	opts.BkgLR = 5e-3
	opts.BkgBatch = 1024
	return opts
}

// loadOrTrain returns the named model variant, training it at most once.
func loadOrTrain(sc Scale, variant string, train func() *models.Bundle) *models.Bundle {
	key := variantKey{sc.Name, variant}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if b, ok := bundleCache[key]; ok {
		return b
	}
	path := CachePath(sc, variant)
	if diskCacheEnabled() {
		if b, err := models.LoadBundleFile(path); err == nil {
			bundleCache[key] = b
			return b
		}
	}
	b := train()
	bundleCache[key] = b
	if diskCacheEnabled() {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err == nil {
			_ = b.SaveFile(path) // best-effort; cache misses just retrain
		}
	}
	return b
}

// SharedBundle returns the production model pair (13 features, polar-angle
// input), used by Figs 8–10 and the timing tables.
func SharedBundle(sc Scale) *models.Bundle {
	return loadOrTrain(sc, "polar", func() *models.Bundle {
		return models.Train(trainingSet(sc, 1001), trainOptions(sc, 2001, true, false))
	})
}

// NoPolarBundle returns the Fig. 7 ablation variant trained without the
// polar-angle feature.
func NoPolarBundle(sc Scale) *models.Bundle {
	return loadOrTrain(sc, "nopolar", func() *models.Bundle {
		return models.Train(trainingSet(sc, 1001), trainOptions(sc, 2001, false, false))
	})
}

// SwappedBundle returns the layer-swapped (fusion-friendly) FP32 bundle
// that seeds the quantization study (§V).
func SwappedBundle(sc Scale) *models.Bundle {
	return loadOrTrain(sc, "swapped", func() *models.Bundle {
		return models.Train(trainingSet(sc, 1001), trainOptions(sc, 2001, true, true))
	})
}

// Int8Background returns the INT8 quantized background network derived from
// SwappedBundle by QAT (in-memory cache only; conversion is cheap once the
// swapped bundle exists).
func Int8Background(sc Scale) (*quant.Int8Net, *models.Bundle) {
	b := SwappedBundle(sc)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if n, ok := int8Cache[sc.Name]; ok {
		return n, b
	}
	qopts := models.DefaultQuantizeOptions(3001)
	if sc.Name == "ci" {
		qopts.QATEpochs = 2
	}
	n, _, err := models.QuantizeBackground(b, trainingSet(sc, 1001), qopts)
	if err != nil {
		panic(fmt.Sprintf("expt: quantize: %v", err))
	}
	int8Cache[sc.Name] = n
	return n, b
}
