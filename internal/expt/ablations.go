package expt

import (
	"fmt"
	"io"

	"repro/internal/datagen"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/pipeline"
)

// AblationThresholds compares the paper's per-polar-bin classification
// thresholds against a single global threshold (design choice from §III).
func AblationThresholds(w io.Writer, sc Scale) []Series {
	e := newEnv()
	perBin := SharedBundle(sc)

	// Rebuild a bundle that shares networks but uses one global threshold:
	// refit on the training distribution with every sample in one bin.
	set := trainingSet(sc, 1001)
	ds := datagen.BackgroundDataset(set, perBin.WithPolar)
	perBin.BkgNorm.Apply(ds.X)
	probs := perBin.Bkg.PredictProbs(ds.X)
	zeros := make([]float64, len(probs))
	globalThr := models.FitThresholds(probs, ds.Y, zeros, 0)
	global := *perBin
	global.Thr = globalThr

	var sBin, sGlobal Series
	sBin.Name = "per-bin thresholds"
	sGlobal.Name = "global threshold"
	for _, a := range []float64{0, 40, 80} {
		c68, c95 := e.evaluate(sc, 0xC00+uint64(a), evalCase{
			fluence: 1.0, polarDeg: a,
			configure: func(o *pipeline.Options) { o.Bundle = perBin },
		})
		sBin.Points = append(sBin.Points, Point{X: a, C68: c68, C95: c95})
		c68, c95 = e.evaluate(sc, 0xC00+uint64(a), evalCase{
			fluence: 1.0, polarDeg: a,
			configure: func(o *pipeline.Options) { o.Bundle = &global },
		})
		sGlobal.Points = append(sGlobal.Points, Point{X: a, C68: c68, C95: c95})
	}
	out := []Series{sBin, sGlobal}
	printSeries(w, "Ablation — per-polar-bin vs global classification threshold (1 MeV/cm²)", "polar(deg)", out)
	return out
}

// AblationIterations compares the paper's iterative (≤5) application of the
// background network against a single application (design rationale of
// Fig. 6: iteration "is more effective at removing background Compton rings
// than a single application").
func AblationIterations(w io.Writer, sc Scale) []Series {
	e := newEnv()
	bundle := SharedBundle(sc)
	var out []Series
	for _, iters := range []int{1, 5} {
		s := Series{Name: fmt.Sprintf("max %d iteration(s)", iters)}
		for _, f := range []float64{0.5, 1.0} {
			it := iters
			c68, c95 := e.evaluate(sc, 0xD00+uint64(iters)<<8+uint64(f*4), evalCase{
				fluence: f, polarDeg: 0,
				configure: func(o *pipeline.Options) {
					o.Bundle = bundle
					o.MaxNNIters = it
					o.ConvergeDeg = 0 // always use the full budget
				},
			})
			s.Points = append(s.Points, Point{X: f, C68: c68, C95: c95})
		}
		out = append(out, s)
	}
	printSeries(w, "Ablation — iterative vs single-shot background rejection (normal incidence)", "MeV/cm^2", out)
	return out
}

// AblationGating compares the robust ring gating in refinement against
// ungated weighted least squares (design choice in the localization stage).
func AblationGating(w io.Writer, sc Scale) []Series {
	e := newEnv()
	var out []Series
	for _, gated := range []bool{true, false} {
		name := "gated (default)"
		if !gated {
			name = "ungated least squares"
		}
		s := Series{Name: name}
		for _, f := range []float64{0.5, 1.0} {
			g := gated
			c68, c95 := e.evaluate(sc, 0xE00+uint64(f*4), evalCase{
				fluence: f, polarDeg: 0,
				configure: func(o *pipeline.Options) {
					if !g {
						o.Loc.GateSigma = 1e9
						o.Loc.MaxGateCos = 1e9
					}
				},
			})
			s.Points = append(s.Points, Point{X: f, C68: c68, C95: c95})
		}
		out = append(out, s)
	}
	printSeries(w, "Ablation — robust ring gating in refinement (no-ML pipeline, normal incidence)", "MeV/cm^2", out)
	return out
}

// AblationWidening compares dEta-update policies: replace every ring's
// width with the network prediction (ratio 1), the default selective
// widening (median-normalized ratio 3), and no dEta update at all.
func AblationWidening(w io.Writer, sc Scale) []Series {
	e := newEnv()
	bundle := SharedBundle(sc)
	policies := []struct {
		name      string
		configure func(*pipeline.Options)
	}{
		{"replace all (ratio 1)", func(o *pipeline.Options) { o.Bundle = bundle; o.DEtaWidenRatio = 1 }},
		{"selective widen (default)", func(o *pipeline.Options) { o.Bundle = bundle }},
		{"dEta net off", func(o *pipeline.Options) { o.Bundle = bundle; o.DisableDEtaNN = true }},
	}
	var out []Series
	for i, p := range policies {
		s := Series{Name: p.name}
		for _, a := range []float64{0, 40} {
			c68, c95 := e.evaluate(sc, 0xF00+uint64(i)<<8+uint64(a), evalCase{
				fluence: 1.0, polarDeg: a, configure: p.configure,
			})
			s.Points = append(s.Points, Point{X: a, C68: c68, C95: c95})
		}
		out = append(out, s)
	}
	printSeries(w, "Ablation — dEta update policy (1 MeV/cm²)", "polar(deg)", out)
	return out
}

// AblationThreeCompton evaluates the optional three-Compton incident-energy
// estimate (recon.EstimateIncidentEnergy3C) against the paper's
// summed-deposit reconstruction, on the no-ML pipeline.
func AblationThreeCompton(w io.Writer, sc Scale) []Series {
	e := newEnv()
	var out []Series
	for _, enabled := range []bool{false, true} {
		name := "summed deposits (paper)"
		if enabled {
			name = "three-Compton energy"
		}
		s := Series{Name: name}
		for _, f := range []float64{1.0, 2.0} {
			en := enabled
			c68, c95 := e.evaluate(sc, 0x1300+uint64(f*4), evalCase{
				fluence: f, polarDeg: 0,
				configure: func(o *pipeline.Options) {
					o.Recon.ThreeComptonEnergy = en
				},
			})
			s.Points = append(s.Points, Point{X: f, C68: c68, C95: c95})
		}
		out = append(out, s)
	}
	printSeries(w, "Ablation — three-Compton incident-energy estimate (no-ML pipeline, normal incidence)", "MeV/cm^2", out)
	return out
}

// AblationDEtaLoss compares the paper's ℓ₂ dEta-training loss against the
// Huber loss, which is less sensitive to the heavy tail of the ln|Δη|
// targets.
func AblationDEtaLoss(w io.Writer, sc Scale) []Series {
	e := newEnv()
	mseBundle := SharedBundle(sc)
	huberBundle := loadOrTrain(sc, "huber", func() *models.Bundle {
		opts := trainOptions(sc, 2001, true, false)
		opts.DEtaLoss = nn.Huber{Delta: 1}
		return models.Train(trainingSet(sc, 1001), opts)
	})
	var out []Series
	for i, arm := range []struct {
		name   string
		bundle *models.Bundle
	}{{"L2 loss (paper)", mseBundle}, {"Huber loss", huberBundle}} {
		s := Series{Name: arm.name}
		b := arm.bundle
		for _, a := range []float64{0, 40} {
			c68, c95 := e.evaluate(sc, 0x1400+uint64(i)<<8+uint64(a), evalCase{
				fluence: 1.0, polarDeg: a,
				configure: func(o *pipeline.Options) { o.Bundle = b },
			})
			s.Points = append(s.Points, Point{X: a, C68: c68, C95: c95})
		}
		out = append(out, s)
	}
	printSeries(w, "Ablation — dEta training loss (1 MeV/cm²)", "polar(deg)", out)
	return out
}
