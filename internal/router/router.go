// Package router is the fleet front door for adaptserve: one HTTP
// process that fronts N shared-nothing replicas and turns them into a
// single logical service.
//
// Three mechanisms stack, each earning its keep independently:
//
//   - Routing. Requests are consistent-hashed on their content (endpoint +
//     canonicalized query + body bytes), so identical ground-reprocessing
//     bodies land on the same replica while distinct work spreads ~evenly.
//     Health is probed via the replicas' JSON /readyz (ejection after a
//     failure streak, readmission on recovery), and a primary that reports
//     itself at its own admission bound is bypassed for the least-loaded
//     healthy replica instead of being fed a guaranteed 429.
//
//   - Retries. Failed attempts (transport errors, 5xx, 429) are retried
//     against the next candidate under a hard per-request budget, honoring
//     jittered Retry-After hints. Retrying is safe precisely because every
//     endpoint is deterministic and side-effect-free: re-sending a body is
//     idempotent by construction.
//
//   - Exact caching. Because replica responses are bitwise-deterministic
//     functions of (request bytes, model generation, backend), the router
//     caches results exactly — a hit replays the very bytes a replica
//     produced, it does not approximate them. Concurrent identical
//     requests collapse onto one upstream fetch (single-flight), and the
//     cache is bounded by bytes and entries with LRU eviction. Entries are
//     keyed by content hash and validated against the fleet's current
//     uniform (generation, backend) identity; a mixed fleet (mid rolling
//     reload) bypasses the cache rather than risk serving one generation's
//     answer for another's.
//
// The operational assumption, stated rather than hidden: shared-nothing
// replicas are deployed with identical model artifacts, so equal
// generation numbers mean equal weights. The generation axis exists to
// fence rolling reloads, not to distinguish divergent deployments.
package router

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Config sizes the router.
type Config struct {
	// Replicas are the adaptserve base URLs (e.g. "http://127.0.0.1:8081").
	// At least one is required.
	Replicas []string
	// Vnodes is the consistent-hash points per replica (0 = DefaultVnodes).
	Vnodes int
	// ProbeInterval is the /readyz polling period (0 = 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round (0 = 2s).
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive-failure streak (probe or request
	// transport) that ejects a replica (0 = 2).
	FailThreshold int
	// RetryBudget is the maximum number of re-sent attempts after the
	// first, per request (negative = 0, i.e. no retries; 0 = default 2).
	RetryBudget int
	// RetryAfterCap bounds how long one 429 Retry-After hint can hold a
	// request (0 = 2s); the client's own deadline always wins.
	RetryAfterCap time.Duration
	// AttemptTimeout bounds each upstream attempt (0 = no per-attempt
	// bound; the request context still applies).
	AttemptTimeout time.Duration
	// CacheMaxBytes / CacheMaxEntries bound the exact result cache
	// (0 = 256 MiB / 4096 entries; CacheMaxBytes < 0 disables caching
	// and single-flight collapsing entirely).
	CacheMaxBytes   int64
	CacheMaxEntries int
	// MaxBodyBytes caps request bodies (0 = 64 MiB), mirroring adaptserve.
	MaxBodyBytes int64
	// Client overrides the upstream HTTP client (default: pooled
	// transport, no overall timeout — deadlines come from the request).
	Client *http.Client
	// Metrics receives the router's counters/gauges/histograms; nil
	// creates a fresh registry (exposed at /metrics either way).
	Metrics *obs.Registry
}

// Router is the adaptrouter HTTP service.
type Router struct {
	cfg         Config
	metrics     *obs.Registry
	replicas    []*replicaState
	ring        *Ring
	cache       *resultCache
	client      *http.Client
	probeClient *http.Client
	mux         *http.ServeMux
	httpSrv     *http.Server
	draining    atomic.Bool
	probeStop   context.CancelFunc
}

// New builds a Router and starts its health prober. Callers must Shutdown
// (or Close) to stop the prober.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("router: no replicas configured")
	}
	seen := map[string]bool{}
	for i, r := range cfg.Replicas {
		u, err := url.Parse(r)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("router: replica %d: %q is not an absolute URL", i, r)
		}
		cfg.Replicas[i] = strings.TrimRight(r, "/")
		if seen[cfg.Replicas[i]] {
			return nil, fmt.Errorf("router: duplicate replica %q", cfg.Replicas[i])
		}
		seen[cfg.Replicas[i]] = true
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 2
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 2
	}
	if cfg.RetryBudget < 0 {
		cfg.RetryBudget = 0
	}
	if cfg.RetryAfterCap <= 0 {
		cfg.RetryAfterCap = 2 * time.Second
	}
	if cfg.CacheMaxBytes == 0 {
		cfg.CacheMaxBytes = 256 << 20
	}
	if cfg.CacheMaxEntries <= 0 {
		cfg.CacheMaxEntries = 4096
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}

	rt := &Router{cfg: cfg, metrics: cfg.Metrics}
	rt.client = cfg.Client
	if rt.client == nil {
		rt.client = &http.Client{}
	}
	rt.probeClient = &http.Client{Timeout: cfg.ProbeTimeout}
	for i, name := range cfg.Replicas {
		rt.replicas = append(rt.replicas, newReplicaState(name, i, rt.metrics))
	}
	rt.ring = NewRing(cfg.Replicas, cfg.Vnodes)
	if cfg.CacheMaxBytes > 0 {
		rt.cache = newResultCache(cfg.CacheMaxBytes, cfg.CacheMaxEntries, rt.metrics)
	}

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/v1/localize", rt.handleProxy)
	rt.mux.HandleFunc("/v1/classify", rt.handleProxy)
	rt.mux.HandleFunc("/v1/skymap", rt.handleProxy)
	rt.mux.HandleFunc("/v1/replay", rt.handleProxy)
	rt.mux.HandleFunc("/admin/reload", rt.handleReload)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/readyz", rt.handleReadyz)
	rt.mux.HandleFunc("/fleet", rt.handleFleet)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/version", rt.handleVersion)
	rt.httpSrv = &http.Server{Handler: rt.mux, ReadHeaderTimeout: 10 * time.Second}

	probeCtx, cancel := context.WithCancel(context.Background())
	rt.probeStop = cancel
	go rt.probeLoop(probeCtx)
	return rt, nil
}

// Handler exposes the route table (for httptest and embedding).
func (rt *Router) Handler() http.Handler { return rt.mux }

// Metrics returns the router's registry.
func (rt *Router) Metrics() *obs.Registry { return rt.metrics }

// Serve accepts connections on l until Shutdown.
func (rt *Router) Serve(l net.Listener) error {
	err := rt.httpSrv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the router: readiness flips to 503, the prober stops,
// and in-flight proxied requests run to completion (bounded by ctx).
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.draining.Store(true)
	rt.probeStop()
	return rt.httpSrv.Shutdown(ctx)
}

// Close stops the prober without serving-side drain (for tests using
// Handler directly).
func (rt *Router) Close() { rt.probeStop() }

// ---- fleet identity ----

// fleetIdentity returns the (model generation, backend) every healthy
// reported replica agrees on. uniform is false while any two disagree or
// no healthy replica has reported yet — the exact cache stands down
// rather than guess which generation a routed request will hit.
func (rt *Router) fleetIdentity() (gen uint64, backend string, uniform bool) {
	first := true
	for _, rep := range rt.replicas {
		if !rep.healthy.Load() {
			continue
		}
		r, ok := rep.lastReport()
		if !ok {
			return 0, "", false
		}
		if first {
			gen, backend, first = r.ModelGeneration, r.Backend, false
			continue
		}
		if r.ModelGeneration != gen || r.Backend != backend {
			return 0, "", false
		}
	}
	return gen, backend, !first
}

// ---- request hashing ----

// contentKey hashes what determines a deterministic endpoint's answer:
// the path, the canonicalized query (sorted; deadline_ms excluded — it
// shapes queueing, never the body), and the raw body bytes. Returns the
// hex cache key and the 64-bit ring key (first 8 bytes of the digest).
func contentKey(path string, query url.Values, body []byte) (string, uint64) {
	h := sha256.New()
	io.WriteString(h, path)
	h.Write([]byte{0})
	keys := make([]string, 0, len(query))
	for k := range query {
		if k == "deadline_ms" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vs := append([]string(nil), query[k]...)
		sort.Strings(vs)
		for _, v := range vs {
			io.WriteString(h, k)
			h.Write([]byte{'='})
			io.WriteString(h, v)
			h.Write([]byte{0})
		}
	}
	h.Write([]byte{0})
	h.Write(body)
	sum := h.Sum(nil)
	return hex.EncodeToString(sum), binary.BigEndian.Uint64(sum[:8])
}

// ---- replica selection ----

// pickReplica chooses the next replica for a request: the first healthy,
// untried candidate in ring order that is not overloaded; failing that,
// the least-loaded healthy untried replica (even an overloaded one —
// its 429 still beats a guaranteed local failure); nil when every
// replica is tried or ejected.
func (rt *Router) pickReplica(ringKey uint64, tried []bool) *replicaState {
	var fallback *replicaState
	for _, idx := range rt.ring.Candidates(ringKey) {
		rep := rt.replicas[idx]
		if tried[idx] || !rep.healthy.Load() {
			continue
		}
		if !rep.overloaded() {
			return rep
		}
		if fallback == nil || rep.load() < fallback.load() {
			fallback = rep
		}
	}
	if fallback != nil {
		rt.metrics.Counter("router_least_loaded_fallbacks").Inc()
	}
	return fallback
}

// ---- the proxy core ----

// upstreamResult is one upstream attempt's outcome.
type upstreamResult struct {
	status      int
	contentType string
	gen         uint64
	backend     string
	body        []byte
	retryAfter  time.Duration
}

var errNoReplica = errors.New("router: no healthy replica available")

// forward runs the retry loop: up to 1+RetryBudget attempts across
// distinct replicas (429/5xx/transport retried, client errors returned
// as-is), honoring capped Retry-After waits. attempts reports upstream
// sends actually made.
func (rt *Router) forward(ctx context.Context, path, rawQuery, contentType string, body []byte, ringKey uint64) (res *upstreamResult, attempts int, err error) {
	tried := make([]bool, len(rt.replicas))
	maxAttempts := 1 + rt.cfg.RetryBudget
	var lastErr error
	var lastRes *upstreamResult
	for attempts < maxAttempts {
		if ctx.Err() != nil {
			break
		}
		rep := rt.pickReplica(ringKey, tried)
		if rep == nil {
			// Every replica tried or ejected. Give the budget's remaining
			// attempts a second pass (a 429'd replica may have drained
			// after the Retry-After wait) unless nothing is healthy.
			if !rt.anyHealthy() {
				break
			}
			for i := range tried {
				tried[i] = false
			}
			rep = rt.pickReplica(ringKey, tried)
			if rep == nil {
				break
			}
		}
		tried[rep.idx] = true
		if attempts > 0 {
			rt.metrics.Counter("router_retries").Inc()
			rep.mRetries.Inc()
		}
		attempts++
		res, err := rt.sendOnce(ctx, rep, path, rawQuery, contentType, body)
		if err != nil {
			lastErr = err
			rt.metrics.Counter("router_upstream_transport_errors").Inc()
			if rep.noteFailure(rt.cfg.FailThreshold) {
				rt.metrics.Counter("router_ejections").Inc()
			}
			continue
		}
		switch {
		case res.status == http.StatusTooManyRequests:
			lastRes = res
			rt.metrics.Counter("router_upstream_429").Inc()
			if attempts < maxAttempts {
				rt.waitRetryAfter(ctx, res.retryAfter)
			}
		case res.status >= 500:
			lastRes = res
			rt.metrics.Counter("router_upstream_5xx").Inc()
		default:
			// 2xx and non-retryable client errors pass through.
			return res, attempts, nil
		}
	}
	if lastRes != nil {
		return lastRes, attempts, nil
	}
	if lastErr != nil {
		return nil, attempts, lastErr
	}
	if ctx.Err() != nil {
		return nil, attempts, ctx.Err()
	}
	return nil, attempts, errNoReplica
}

func (rt *Router) anyHealthy() bool {
	for _, rep := range rt.replicas {
		if rep.healthy.Load() {
			return true
		}
	}
	return false
}

// sendOnce proxies one attempt to one replica.
func (rt *Router) sendOnce(ctx context.Context, rep *replicaState, path, rawQuery, contentType string, body []byte) (*upstreamResult, error) {
	if rt.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
		defer cancel()
	}
	u := rep.name + path
	if rawQuery != "" {
		u += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	rep.acquire()
	defer rep.release()
	stop := rt.metrics.StartStage("router_upstream")
	resp, err := rt.client.Do(req)
	stop()
	if err != nil {
		rep.mFailures.Inc()
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxBodyBytes+1))
	if err != nil {
		rep.mFailures.Inc()
		return nil, err
	}
	res := &upstreamResult{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		body:        respBody,
	}
	if v := resp.Header.Get(serve.HeaderModelGeneration); v != "" {
		res.gen, _ = strconv.ParseUint(v, 10, 64)
	}
	res.backend = resp.Header.Get(serve.HeaderBackend)
	if v := resp.Header.Get("Retry-After"); v != "" {
		if sec, err := strconv.Atoi(v); err == nil && sec > 0 {
			res.retryAfter = time.Duration(sec) * time.Second
		}
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
		rep.mFailures.Inc()
	} else {
		rep.noteSuccess()
	}
	return res, nil
}

// waitRetryAfter sleeps for a 429's hint, capped by RetryAfterCap and the
// request context. With no hint it backs off a few jittered milliseconds
// so a burst of rejected retries does not arrive in lockstep.
func (rt *Router) waitRetryAfter(ctx context.Context, hint time.Duration) {
	wait := hint
	if wait <= 0 {
		wait = time.Duration(2+rand.IntN(8)) * time.Millisecond
	}
	if wait > rt.cfg.RetryAfterCap {
		wait = rt.cfg.RetryAfterCap
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// ---- HTTP handlers ----

const (
	headerCache    = "X-Adapt-Router-Cache"
	headerReplica  = "X-Adapt-Router-Replica"
	headerAttempts = "X-Adapt-Router-Attempts"
)

func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	stop := rt.metrics.StartStage("router_proxy")
	defer stop()
	rt.metrics.Counter("router_requests").Inc()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		rt.metrics.Counter("router_bad_request").Inc()
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	key, ringKey := contentKey(r.URL.Path, r.URL.Query(), body)

	gen, backend, uniform := rt.fleetIdentity()
	if uniform {
		if e, ok := rt.cache.get(key, gen, backend); ok {
			rt.metrics.Counter("router_cache_hits").Inc()
			rt.writeUpstream(w, e.status, e.contentType, e.gen, e.backend, e.body, "hit", 0)
			return
		}
	} else if rt.cache != nil {
		rt.metrics.Counter("router_cache_bypass").Inc()
	}

	// Single-flight: collapse concurrent identical requests onto one
	// upstream fetch. Only exact-cacheable traffic (uniform fleet, cache
	// enabled) collapses; anything else goes straight upstream.
	if uniform && rt.cache != nil {
		f, leader := rt.cache.join(key)
		if !leader {
			rt.awaitFlight(w, r, f)
			return
		}
		rt.metrics.Counter("router_cache_misses").Inc()
		res, attempts, err := rt.forward(r.Context(), r.URL.Path, r.URL.RawQuery, r.Header.Get("Content-Type"), body, ringKey)
		if err != nil {
			rt.failProxy(w, err)
			f.err = err
			rt.cache.finish(key, f)
			return
		}
		if res.status >= 200 && res.status < 300 && res.gen == gen && res.backend == backend {
			f.entry = &cacheEntry{
				key:         key,
				status:      res.status,
				contentType: res.contentType,
				gen:         res.gen,
				backend:     res.backend,
				body:        res.body,
			}
		} else {
			f.status, f.contentType, f.body = res.status, res.contentType, res.body
		}
		rt.writeUpstream(w, res.status, res.contentType, res.gen, res.backend, res.body, "miss", attempts)
		rt.cache.finish(key, f)
		return
	}

	res, attempts, err := rt.forward(r.Context(), r.URL.Path, r.URL.RawQuery, r.Header.Get("Content-Type"), body, ringKey)
	if err != nil {
		rt.failProxy(w, err)
		return
	}
	rt.writeUpstream(w, res.status, res.contentType, res.gen, res.backend, res.body, "bypass", attempts)
}

// awaitFlight serves a follower of a collapsed request.
func (rt *Router) awaitFlight(w http.ResponseWriter, r *http.Request, f *flight) {
	rt.metrics.Counter("router_collapsed").Inc()
	select {
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "deadline expired awaiting collapsed request")
		return
	case <-f.done:
	}
	switch {
	case f.entry != nil:
		e := f.entry
		rt.writeUpstream(w, e.status, e.contentType, e.gen, e.backend, e.body, "collapsed", 0)
	case f.err != nil:
		rt.failProxy(w, f.err)
	default:
		rt.writeUpstream(w, f.status, f.contentType, 0, "", f.body, "collapsed", 0)
	}
}

// failProxy maps a forwarding error with no upstream response onto HTTP.
func (rt *Router) failProxy(w http.ResponseWriter, err error) {
	rt.metrics.Counter("router_failed").Inc()
	switch {
	case errors.Is(err, errNoReplica):
		rt.metrics.Counter("router_no_replica").Inc()
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request deadline expired: %v", err)
	default:
		writeError(w, http.StatusBadGateway, "upstream failed: %v", err)
	}
}

// writeUpstream relays an upstream (or cached) result to the client.
func (rt *Router) writeUpstream(w http.ResponseWriter, status int, contentType string, gen uint64, backend string, body []byte, cacheState string, attempts int) {
	if contentType != "" {
		w.Header().Set("Content-Type", contentType)
	}
	if backend != "" {
		w.Header().Set(serve.HeaderBackend, backend)
		w.Header().Set(serve.HeaderModelGeneration, strconv.FormatUint(gen, 10))
	}
	w.Header().Set(headerCache, cacheState)
	if attempts > 0 {
		w.Header().Set(headerAttempts, strconv.Itoa(attempts))
	}
	if status >= 200 && status < 300 {
		rt.metrics.Counter("router_ok").Inc()
	}
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"error\":%q}\n", fmt.Sprintf(format, args...))
}

// handleReload fans POST /admin/reload out to every replica (healthy or
// not — a reload is exactly how an ejected-but-alive replica gets fixed)
// and reports each outcome. 200 when every replica accepted, 502
// otherwise. The reload itself invalidates cached results naturally: the
// fleet generation moves, so old entries stop matching.
func (rt *Router) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	type outcome struct {
		URL    string `json:"url"`
		Status int    `json:"status"`
		Body   string `json:"body"`
	}
	outcomes := make([]outcome, len(rt.replicas))
	allOK := true
	for i, rep := range rt.replicas {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, rep.name+"/admin/reload", strings.NewReader(string(body)))
		if err != nil {
			outcomes[i] = outcome{URL: rep.name, Status: 0, Body: err.Error()}
			allOK = false
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rt.client.Do(req)
		if err != nil {
			outcomes[i] = outcome{URL: rep.name, Status: 0, Body: err.Error()}
			allOK = false
			continue
		}
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		outcomes[i] = outcome{URL: rep.name, Status: resp.StatusCode, Body: strings.TrimSpace(string(b))}
		if resp.StatusCode != http.StatusOK {
			allOK = false
		}
	}
	status := http.StatusOK
	if !allOK {
		status = http.StatusBadGateway
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSONBody(w, map[string]any{"ok": allOK, "replicas": outcomes})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// RouterReadyz is the JSON body of the router's GET /readyz: ready while
// not draining and at least one replica is healthy.
type RouterReadyz struct {
	Ready           bool   `json:"ready"`
	Draining        bool   `json:"draining"`
	Replicas        int    `json:"replicas"`
	HealthyReplicas int    `json:"healthy_replicas"`
	FleetUniform    bool   `json:"fleet_uniform"`
	ModelGeneration uint64 `json:"model_generation,omitempty"`
	Backend         string `json:"backend,omitempty"`
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	healthy := 0
	for _, rep := range rt.replicas {
		if rep.healthy.Load() {
			healthy++
		}
	}
	gen, backend, uniform := rt.fleetIdentity()
	resp := RouterReadyz{
		Ready:           !rt.draining.Load() && healthy > 0,
		Draining:        rt.draining.Load(),
		Replicas:        len(rt.replicas),
		HealthyReplicas: healthy,
		FleetUniform:    uniform,
		ModelGeneration: gen,
		Backend:         backend,
	}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSONBody(w, resp)
}

// FleetResponse is the JSON body of GET /fleet.
type FleetResponse struct {
	Replicas []FleetReplica `json:"replicas"`
	// CacheHitRatio is hits/(hits+misses) over the router's lifetime
	// (0 with no lookups yet).
	CacheHitRatio float64 `json:"cache_hit_ratio"`
}

func (rt *Router) handleFleet(w http.ResponseWriter, r *http.Request) {
	resp := FleetResponse{}
	for _, rep := range rt.replicas {
		resp.Replicas = append(resp.Replicas, rep.fleetRow())
	}
	hits := rt.metrics.Counter("router_cache_hits").Load()
	misses := rt.metrics.Counter("router_cache_misses").Load()
	if hits+misses > 0 {
		resp.CacheHitRatio = float64(hits) / float64(hits+misses)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	writeJSONBody(w, resp)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	bi := buildinfo.Get()
	fmt.Fprintf(w, "# TYPE adapt_build_info gauge\nadapt_build_info{version=%q,commit=%q,go_version=%q} 1\n",
		bi.Version, bi.Commit, bi.GoVersion)
	for i, rep := range rt.replicas {
		fmt.Fprintf(w, "# TYPE adapt_router_replica_info gauge\nadapt_router_replica_info{replica=\"%d\",url=%q} 1\n",
			i, rep.name)
	}
	hits := rt.metrics.Counter("router_cache_hits").Load()
	misses := rt.metrics.Counter("router_cache_misses").Load()
	ratio := 0.0
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(w, "# TYPE adapt_router_cache_hit_ratio gauge\nadapt_router_cache_hit_ratio %g\n", ratio)
	rt.metrics.WritePrometheus(w, "adapt")
}

func (rt *Router) handleVersion(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	writeJSONBody(w, map[string]any{
		"version":  buildinfo.Get(),
		"role":     "router",
		"replicas": rt.cfg.Replicas,
	})
}

func writeJSONBody(w io.Writer, v any) {
	json.NewEncoder(w).Encode(v)
}
