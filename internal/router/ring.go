package router

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring over replica names. Each replica owns
// Vnodes points on a 64-bit circle, placed by hashing "name#i"; a request
// key routes to the replica owning the first point clockwise of the key.
// Because a replica's points depend only on its own name, removing one
// replica reassigns only the keys it owned (~1/N of the keyspace) and
// leaves every other key's assignment untouched — the property that keeps
// a fleet's per-replica working sets (and OS page caches) warm across
// membership churn. The ring is immutable after construction; membership
// changes are handled by the caller filtering Candidates against live
// health, not by rebuilding.
type Ring struct {
	points []ringPoint // sorted by hash, ties broken by replica index
	n      int
}

type ringPoint struct {
	hash    uint64
	replica int
}

// DefaultVnodes balances assignment evenness (stddev ~ 1/√vnodes of the
// mean share) against ring size; 128 points per replica keeps the maximum
// share within a few percent of 1/N for small fleets.
const DefaultVnodes = 128

// NewRing places each of names on the circle vnodes times (0 means
// DefaultVnodes). Names must be distinct; the ring routes by index into
// the original slice.
func NewRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{n: len(names), points: make([]ringPoint, 0, len(names)*vnodes)}
	for i, name := range names {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashPoint(name, v), replica: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].replica < r.points[b].replica
	})
	return r
}

// hashPoint hashes one virtual node (FNV-1a 64 of "name#v").
func hashPoint(name string, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{'#'})
	h.Write([]byte(strconv.Itoa(v)))
	return h.Sum64()
}

// Primary returns the replica index owning key (-1 on an empty ring).
func (r *Ring) Primary(key uint64) int {
	if len(r.points) == 0 {
		return -1
	}
	return r.points[r.search(key)].replica
}

// Candidates returns every replica index in ring-walk order starting at
// key's owner: the primary first, then each distinct replica as its first
// point is encountered clockwise. Filtering this order against live
// health gives deterministic failover — the same key always walks the
// same replica sequence.
func (r *Ring) Candidates(key uint64) []int {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	start := r.search(key)
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}

// search finds the first point with hash >= key, wrapping to 0.
func (r *Ring) search(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		return 0
	}
	return i
}
