package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// replicaState is the router's live view of one adaptserve replica: its
// health (probed via /readyz and demoted by request-path transport
// failures), the router's own in-flight count against it, and the last
// readyz report (queue shape + model identity) used for load-aware
// fallback and cache keying.
type replicaState struct {
	name string // base URL, e.g. "http://127.0.0.1:8081"
	idx  int

	healthy atomic.Bool
	// fails counts consecutive failures (probe or request transport);
	// reaching the router's FailThreshold ejects the replica. Any probe
	// success resets it and readmits.
	fails atomic.Int64
	// inflight is the router's live count of requests outstanding against
	// this replica — fresher than the probed report, which is up to one
	// probe interval stale.
	inflight atomic.Int64

	mu     sync.Mutex
	report serve.ReadyzResponse
	hasRpt bool

	// obs handles, resolved once (per-replica flat metric names).
	mInflight *obs.Gauge
	mHealthy  *obs.Gauge
	mAttempts *obs.Counter
	mFailures *obs.Counter
	mEjected  *obs.Counter
	mRetries  *obs.Counter
}

func newReplicaState(name string, idx int, reg *obs.Registry) *replicaState {
	r := &replicaState{
		name:      name,
		idx:       idx,
		mInflight: reg.Gauge(fmt.Sprintf("router_replica_%d_inflight", idx)),
		mHealthy:  reg.Gauge(fmt.Sprintf("router_replica_%d_healthy", idx)),
		mAttempts: reg.Counter(fmt.Sprintf("router_replica_%d_attempts", idx)),
		mFailures: reg.Counter(fmt.Sprintf("router_replica_%d_failures", idx)),
		mEjected:  reg.Counter(fmt.Sprintf("router_replica_%d_ejections", idx)),
		mRetries:  reg.Counter(fmt.Sprintf("router_replica_%d_retries", idx)),
	}
	// Until the first probe answers, assume healthy: a cold router must
	// route somewhere, and a genuinely dead replica fails its first
	// request or probe immediately.
	r.healthy.Store(true)
	r.mHealthy.Set(1)
	return r
}

// acquire/release bracket one proxied request against this replica.
func (r *replicaState) acquire() {
	r.mInflight.Set(float64(r.inflight.Add(1)))
	r.mAttempts.Inc()
}

func (r *replicaState) release() {
	r.mInflight.Set(float64(r.inflight.Add(-1)))
}

// lastReport returns the most recent readyz body and whether one exists.
func (r *replicaState) lastReport() (serve.ReadyzResponse, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.report, r.hasRpt
}

// load scores this replica for least-loaded comparisons: the larger of
// the router's live in-flight count and the replica's own last-reported
// admitted total (in-flight + queued). The max reconciles two imperfect
// views — the local count misses other clients, the report is stale.
func (r *replicaState) load() int64 {
	local := r.inflight.Load()
	if rep, ok := r.lastReport(); ok {
		if reported := rep.InFlight + rep.QueueDepth; reported > local {
			return reported
		}
	}
	return local
}

// overloaded reports whether sending one more request would likely be
// refused: the load estimate has reached the replica's own admission
// bound (compute slots + waiting room) as reported by /readyz. Unknown
// bounds (no report yet) never read as overloaded.
func (r *replicaState) overloaded() bool {
	rep, ok := r.lastReport()
	if !ok {
		return false
	}
	bound := int64(rep.MaxConcurrent + rep.QueueLimit)
	if bound <= 0 {
		return false
	}
	return r.load() >= bound
}

// noteFailure records one consecutive failure; crossing threshold ejects.
// It returns true when this call performed the ejection (for counting).
func (r *replicaState) noteFailure(threshold int) bool {
	n := r.fails.Add(1)
	if n >= int64(threshold) && r.healthy.CompareAndSwap(true, false) {
		r.mHealthy.Set(0)
		r.mEjected.Inc()
		return true
	}
	return false
}

// noteSuccess clears the failure streak; a previously ejected replica is
// readmitted. Returns true when this call performed the readmission.
func (r *replicaState) noteSuccess() bool {
	r.fails.Store(0)
	if r.healthy.CompareAndSwap(false, true) {
		r.mHealthy.Set(1)
		return true
	}
	return false
}

// probe fetches /readyz once and applies the result: a 200 with a parsed
// body is a success (report stored), anything else — transport error,
// non-200, unparseable body — is a failure. A 503 "draining" response
// still stores the report so /fleet can show the drain, but counts as a
// failure so the replica is ejected from routing.
func (r *replicaState) probe(ctx context.Context, client *http.Client, base string, threshold int) (ejected, readmitted bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return r.noteFailure(threshold), false
	}
	resp, err := client.Do(req)
	if err != nil {
		return r.noteFailure(threshold), false
	}
	defer resp.Body.Close()
	var body serve.ReadyzResponse
	decodeErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body)
	if decodeErr == nil {
		r.mu.Lock()
		r.report, r.hasRpt = body, true
		r.mu.Unlock()
	}
	if resp.StatusCode != http.StatusOK || decodeErr != nil {
		return r.noteFailure(threshold), false
	}
	return false, r.noteSuccess()
}

// FleetReplica is one replica's row in the /fleet report.
type FleetReplica struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// InFlight is the router's live outstanding count; Load is the
	// least-loaded comparison score (max of local and reported).
	InFlight int64 `json:"in_flight"`
	Load     int64 `json:"load"`
	// Report is the last successfully parsed /readyz body, if any.
	Report *serve.ReadyzResponse `json:"report,omitempty"`
}

func (r *replicaState) fleetRow() FleetReplica {
	row := FleetReplica{
		URL:      r.name,
		Healthy:  r.healthy.Load(),
		InFlight: r.inflight.Load(),
		Load:     r.load(),
	}
	if rep, ok := r.lastReport(); ok {
		c := rep
		row.Report = &c
	}
	return row
}

// probeLoop re-probes every replica each interval until ctx is done.
func (rt *Router) probeLoop(ctx context.Context) {
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.ProbeNow(ctx)
		}
	}
}

// ProbeNow probes every replica once, concurrently, and waits for the
// answers. It is called by the probe loop on every tick and exported so
// cold starts (and tests) can establish fleet health synchronously
// instead of sleeping for a probe interval.
func (rt *Router) ProbeNow(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, rep := range rt.replicas {
		wg.Add(1)
		go func(rep *replicaState) {
			defer wg.Done()
			ejected, readmitted := rep.probe(ctx, rt.probeClient, rep.name, rt.cfg.FailThreshold)
			if ejected {
				rt.metrics.Counter("router_ejections").Inc()
			}
			if readmitted {
				rt.metrics.Counter("router_readmissions").Inc()
			}
		}(rep)
	}
	wg.Wait()
	healthy := 0
	for _, rep := range rt.replicas {
		if rep.healthy.Load() {
			healthy++
		}
	}
	rt.metrics.Gauge("router_replicas_healthy").Set(float64(healthy))
}
