package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/background"
	"repro/internal/detector"
	"repro/internal/evio"
	"repro/internal/serve"
	"repro/internal/xrand"
)

// simulateBody builds one burst+background exposure as an evio payload.
func simulateBody(t *testing.T, fluence, polar float64, seed uint64) []byte {
	t.Helper()
	det := detector.DefaultConfig()
	bg := background.DefaultModel()
	rng := xrand.New(seed)
	burst := detector.Burst{Fluence: fluence, PolarDeg: polar, AzimuthDeg: 77}
	events := detector.SimulateBurst(&det, burst, rng)
	events = append(events, bg.Simulate(&det, 0.5, rng)...)
	var buf bytes.Buffer
	if err := evio.WriteAll(&buf, events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newReplicas boots n real adaptserve servers (no-ML pipeline: localize
// is fully deterministic without models) and returns their base URLs.
func newReplicas(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := serve.New(serve.Config{MaxConcurrent: 2, QueueDepth: 32})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// newRouter builds a probed, ready-to-route Router over the URLs.
func newRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Hour // tests drive probes explicitly
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rt.ProbeNow(context.Background())
	return rt
}

func postBody(t *testing.T, client *http.Client, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, serve.ContentTypeEvio, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestRoutedBitwiseIdentical is the routing acceptance test: a request
// through the router returns byte-for-byte what every replica returns
// directly (with ?canonical=1 zeroing the per-run timing noise), because
// the backends are deterministic and the router is transparent.
func TestRoutedBitwiseIdentical(t *testing.T) {
	urls := newReplicas(t, 3)
	rt := newRouter(t, Config{Replicas: append([]string(nil), urls...)})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	body := simulateBody(t, 1.0, 30, 7)
	const q = "/v1/localize?seed=7&canonical=1"

	var direct [][]byte
	for _, u := range urls {
		resp, b := postBody(t, http.DefaultClient, u+q, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("direct POST = %d: %s", resp.StatusCode, b)
		}
		direct = append(direct, b)
	}
	for i := 1; i < len(direct); i++ {
		if !bytes.Equal(direct[i], direct[0]) {
			t.Fatalf("replicas disagree with each other:\n%s\n%s", direct[0], direct[i])
		}
	}

	resp, routed := postBody(t, http.DefaultClient, rts.URL+q, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed POST = %d: %s", resp.StatusCode, routed)
	}
	if !bytes.Equal(routed, direct[0]) {
		t.Fatalf("routed body differs from direct:\nrouted: %s\ndirect: %s", routed, direct[0])
	}
	if got := resp.Header.Get(headerCache); got != "miss" {
		t.Errorf("first routed request cache state = %q, want miss", got)
	}
	if resp.Header.Get(serve.HeaderBackend) != "float32" {
		t.Errorf("missing/wrong %s header: %q", serve.HeaderBackend, resp.Header.Get(serve.HeaderBackend))
	}
}

// TestCacheHitBitwiseIdentical: a repeat of an identical request is a
// cache hit and returns exactly the missed response's bytes.
func TestCacheHitBitwiseIdentical(t *testing.T) {
	urls := newReplicas(t, 2)
	rt := newRouter(t, Config{Replicas: urls})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	body := simulateBody(t, 1.0, 40, 11)
	const q = "/v1/localize?seed=3&canonical=1"

	resp1, b1 := postBody(t, http.DefaultClient, rts.URL+q, body)
	resp2, b2 := postBody(t, http.DefaultClient, rts.URL+q, body)
	if resp1.StatusCode != 200 || resp2.StatusCode != 200 {
		t.Fatalf("statuses %d, %d", resp1.StatusCode, resp2.StatusCode)
	}
	if got := resp2.Header.Get(headerCache); got != "hit" {
		t.Fatalf("second request cache state = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cache hit not bitwise-identical to miss:\nmiss: %s\nhit:  %s", b1, b2)
	}
	// Distinct query → distinct key → miss.
	resp3, _ := postBody(t, http.DefaultClient, rts.URL+"/v1/localize?seed=4&canonical=1", body)
	if got := resp3.Header.Get(headerCache); got != "miss" {
		t.Errorf("different seed cache state = %q, want miss", got)
	}
	reg := rt.Metrics()
	if hits := reg.Counter("router_cache_hits").Load(); hits != 1 {
		t.Errorf("router_cache_hits = %d, want 1", hits)
	}
	if misses := reg.Counter("router_cache_misses").Load(); misses != 2 {
		t.Errorf("router_cache_misses = %d, want 2", misses)
	}
}

// fakeReplica is a scriptable upstream: a /readyz that reports a healthy
// JSON body and a /v1/localize whose behavior the test controls.
type fakeReplica struct {
	ts       *httptest.Server
	attempts atomic.Int64
	handler  atomic.Pointer[http.HandlerFunc]
	ready    atomic.Bool
}

func newFakeReplica(t *testing.T) *fakeReplica {
	t.Helper()
	f := &fakeReplica{}
	f.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		status := http.StatusOK
		rdy := f.ready.Load()
		if !rdy {
			status = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(serve.ReadyzResponse{
			Ready: rdy, InFlight: 0, QueueDepth: 0,
			MaxConcurrent: 4, QueueLimit: 16,
			ModelGeneration: 0, Backend: "float32",
		})
	})
	mux.HandleFunc("/v1/localize", func(w http.ResponseWriter, r *http.Request) {
		f.attempts.Add(1)
		(*f.handler.Load())(w, r)
	})
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(serve.HeaderModelGeneration, "0")
		w.Header().Set(serve.HeaderBackend, "float32")
		io.Copy(io.Discard, r.Body)
		fmt.Fprintln(w, `{"ok":true,"fake":1}`)
	})
	f.handler.Store(&ok)
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

func (f *fakeReplica) respond(h http.HandlerFunc) { f.handler.Store(&h) }

// TestRetryBudgetNeverExceeded injects persistent faults and counts the
// upstream attempts the router actually makes: never more than
// 1 + RetryBudget, for 5xx, 429, and timeout faults alike.
func TestRetryBudgetNeverExceeded(t *testing.T) {
	cases := []struct {
		name       string
		fail       func(w http.ResponseWriter, r *http.Request)
		wantStatus int
	}{
		{"5xx", func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		}, http.StatusInternalServerError},
		{"429", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "full", http.StatusTooManyRequests)
		}, http.StatusTooManyRequests},
		{"timeout", func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(2 * time.Second) // far beyond AttemptTimeout
		}, http.StatusServiceUnavailable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fakes := []*fakeReplica{newFakeReplica(t), newFakeReplica(t), newFakeReplica(t)}
			var urls []string
			for _, f := range fakes {
				f.respond(tc.fail)
				urls = append(urls, f.ts.URL)
			}
			const budget = 2
			rt := newRouter(t, Config{
				Replicas:       urls,
				RetryBudget:    budget,
				RetryAfterCap:  20 * time.Millisecond,
				AttemptTimeout: 150 * time.Millisecond,
				FailThreshold:  100, // keep replicas routable so attempts hit the budget, not ejection
			})
			rts := httptest.NewServer(rt.Handler())
			defer rts.Close()

			resp, body := postBody(t, http.DefaultClient, rts.URL+"/v1/localize", []byte("payload"))
			var total int64
			for _, f := range fakes {
				total += f.attempts.Load()
			}
			if total > budget+1 {
				t.Fatalf("%d upstream attempts, budget allows %d", total, budget+1)
			}
			if tc.name != "timeout" && total != budget+1 {
				t.Errorf("%d upstream attempts, want exactly %d (budget exhausted)", total, budget+1)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("final status = %d (%s), want %d", resp.StatusCode, body, tc.wantStatus)
			}
			if got := rt.Metrics().Counter("router_retries").Load(); got > budget {
				t.Errorf("router_retries = %d, want <= %d", got, budget)
			}
		})
	}
}

// TestRetryAfterHonored: a 429 with Retry-After delays the retry by the
// (capped) hint, and the retry succeeds on a recovered replica.
func TestRetryAfterHonored(t *testing.T) {
	f := newFakeReplica(t)
	var first atomic.Bool
	first.Store(true)
	okBody := `{"ok":true}` + "\n"
	f.respond(func(w http.ResponseWriter, r *http.Request) {
		if first.CompareAndSwap(true, false) {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "full", http.StatusTooManyRequests)
			return
		}
		w.Header().Set(serve.HeaderModelGeneration, "0")
		w.Header().Set(serve.HeaderBackend, "float32")
		io.WriteString(w, okBody)
	})
	const cap = 300 * time.Millisecond
	rt := newRouter(t, Config{
		Replicas:      []string{f.ts.URL},
		RetryBudget:   2,
		RetryAfterCap: cap,
	})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	t0 := time.Now()
	resp, body := postBody(t, http.DefaultClient, rts.URL+"/v1/localize", []byte("x"))
	elapsed := time.Since(t0)
	if resp.StatusCode != http.StatusOK || string(body) != okBody {
		t.Fatalf("final = %d %q", resp.StatusCode, body)
	}
	if elapsed < cap {
		t.Errorf("retried after %v, want >= %v (capped Retry-After honored)", elapsed, cap)
	}
	if got := resp.Header.Get(headerAttempts); got != "2" {
		t.Errorf("attempts header = %q, want 2", got)
	}
}

// TestFailoverAndEjection: killing a replica mid-fleet must not fail any
// request (transport errors retry on survivors), and the dead replica is
// ejected after its failure streak, then readmitted when it returns.
func TestFailoverAndEjection(t *testing.T) {
	urls := newReplicas(t, 2)
	dead := newFakeReplica(t)
	all := append(append([]string(nil), urls...), dead.ts.URL)
	rt := newRouter(t, Config{
		Replicas:      all,
		RetryBudget:   3,
		FailThreshold: 2,
	})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	body := simulateBody(t, 1.0, 20, 5)
	// Kill the fake replica outright: connection-refused transport errors.
	dead.ts.Close()

	// Every request must still succeed; enough of them guarantees some
	// would have routed to the dead replica first.
	for i := 0; i < 12; i++ {
		q := fmt.Sprintf("/v1/localize?seed=%d&canonical=1", i+1)
		resp, b := postBody(t, http.DefaultClient, rts.URL+q, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d failed: %d %s", i, resp.StatusCode, b)
		}
	}
	// The request-path failure streak alone must have ejected it.
	var deadState *replicaState
	for _, rep := range rt.replicas {
		if rep.name == dead.ts.URL {
			deadState = rep
		}
	}
	if deadState == nil {
		t.Fatal("dead replica not found in router state")
	}
	if deadState.healthy.Load() {
		t.Error("dead replica still marked healthy after failure streak")
	}
	if got := rt.Metrics().Counter("router_ejections").Load(); got < 1 {
		t.Errorf("router_ejections = %d, want >= 1", got)
	}

	// Once ejected, requests no longer pay the connection-refused tax:
	// no retries needed.
	before := rt.Metrics().Counter("router_retries").Load()
	for i := 0; i < 4; i++ {
		q := fmt.Sprintf("/v1/localize?seed=%d&canonical=1", 100+i)
		resp, _ := postBody(t, http.DefaultClient, rts.URL+q, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-ejection request failed: %d", resp.StatusCode)
		}
	}
	if after := rt.Metrics().Counter("router_retries").Load(); after != before {
		t.Errorf("ejected replica still receiving attempts: retries %d -> %d", before, after)
	}
}

// TestReadmission: a replica whose /readyz recovers is routed to again.
func TestReadmission(t *testing.T) {
	f := newFakeReplica(t)
	rt := newRouter(t, Config{Replicas: []string{f.ts.URL}, FailThreshold: 1})

	f.ready.Store(false)
	rt.ProbeNow(context.Background())
	if rt.replicas[0].healthy.Load() {
		t.Fatal("replica not ejected on unready probe")
	}
	if got := rt.Metrics().Counter("router_ejections").Load(); got != 1 {
		t.Errorf("router_ejections = %d, want 1", got)
	}

	f.ready.Store(true)
	rt.ProbeNow(context.Background())
	if !rt.replicas[0].healthy.Load() {
		t.Fatal("replica not readmitted on recovered probe")
	}
	if got := rt.Metrics().Counter("router_readmissions").Load(); got != 1 {
		t.Errorf("router_readmissions = %d, want 1", got)
	}
}

// TestSingleFlightCollapse: concurrent identical requests produce one
// upstream fetch and byte-identical responses for every caller.
func TestSingleFlightCollapse(t *testing.T) {
	f := newFakeReplica(t)
	release := make(chan struct{})
	f.respond(func(w http.ResponseWriter, r *http.Request) {
		<-release // hold the leader upstream until all followers join
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(serve.HeaderModelGeneration, "0")
		w.Header().Set(serve.HeaderBackend, "float32")
		io.Copy(io.Discard, r.Body)
		fmt.Fprintln(w, `{"ok":true,"collapsed":1}`)
	})
	rt := newRouter(t, Config{Replicas: []string{f.ts.URL}})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(rts.URL+"/v1/localize", serve.ContentTypeEvio, bytes.NewReader([]byte("same-body")))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	// Wait until the followers have had a chance to pile onto the flight,
	// then let the leader's upstream answer.
	deadline := time.Now().Add(5 * time.Second)
	for rt.Metrics().Counter("router_collapsed").Load() < n-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := f.attempts.Load(); got != 1 {
		t.Errorf("upstream saw %d requests, want 1 (single-flight)", got)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("collapsed response %d differs", i)
		}
	}
	if got := rt.Metrics().Counter("router_collapsed").Load(); got != n-1 {
		t.Errorf("router_collapsed = %d, want %d", got, n-1)
	}
}

// TestRouterEndpoints covers readyz/fleet/metrics/version plumbing.
func TestRouterEndpoints(t *testing.T) {
	urls := newReplicas(t, 2)
	rt := newRouter(t, Config{Replicas: urls})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(rts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, string(b)
	}

	if resp, body := get("/readyz"); resp.StatusCode != 200 {
		t.Errorf("/readyz = %d %s", resp.StatusCode, body)
	} else {
		var rr RouterReadyz
		if err := json.Unmarshal([]byte(body), &rr); err != nil {
			t.Fatalf("readyz not JSON: %v", err)
		}
		if !rr.Ready || rr.HealthyReplicas != 2 || !rr.FleetUniform {
			t.Errorf("readyz = %+v", rr)
		}
	}

	if resp, body := get("/fleet"); resp.StatusCode != 200 {
		t.Errorf("/fleet = %d", resp.StatusCode)
	} else {
		var fr FleetResponse
		if err := json.Unmarshal([]byte(body), &fr); err != nil {
			t.Fatalf("fleet not JSON: %v", err)
		}
		if len(fr.Replicas) != 2 || !fr.Replicas[0].Healthy || fr.Replicas[0].Report == nil {
			t.Errorf("fleet = %+v", fr)
		}
	}

	// Route one request then check the exposition mentions the router
	// families.
	body := simulateBody(t, 0.5, 10, 3)
	postBody(t, http.DefaultClient, rts.URL+"/v1/localize?canonical=1", body)
	if _, metrics := get("/metrics"); !contains(metrics, "adapt_router_cache_hit_ratio") ||
		!contains(metrics, "adapt_router_replica_0_inflight") ||
		!contains(metrics, "adapt_router_requests_total") {
		t.Errorf("metrics exposition missing router families:\n%.400s", metrics)
	}
	if resp, body := get("/version"); resp.StatusCode != 200 || !contains(body, "router") {
		t.Errorf("/version = %d %s", resp.StatusCode, body)
	}
	if resp, _ := get("/healthz"); resp.StatusCode != 200 {
		t.Errorf("/healthz = %d", resp.StatusCode)
	}
}

// TestRouterDrain: Shutdown flips readiness and stops the prober.
func TestRouterDrain(t *testing.T) {
	urls := newReplicas(t, 1)
	rt := newRouter(t, Config{Replicas: urls})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after drain = %d, want 503", rec.Code)
	}
}

// TestNoHealthyReplica: with every replica ejected the router answers 503
// without hanging.
func TestNoHealthyReplica(t *testing.T) {
	f := newFakeReplica(t)
	rt := newRouter(t, Config{Replicas: []string{f.ts.URL}, FailThreshold: 1})
	f.ready.Store(false)
	rt.ProbeNow(context.Background())
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	resp, body := postBody(t, http.DefaultClient, rts.URL+"/v1/localize", []byte("x"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d %s, want 503", resp.StatusCode, body)
	}
	if got := rt.Metrics().Counter("router_no_replica").Load(); got != 1 {
		t.Errorf("router_no_replica = %d, want 1", got)
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }
