package router

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
)

func entry(key string, gen uint64, backend string, n int) *cacheEntry {
	return &cacheEntry{
		key:         key,
		status:      200,
		contentType: "application/json",
		gen:         gen,
		backend:     backend,
		body:        bytes.Repeat([]byte{'x'}, n),
	}
}

func TestCacheHitAndGenerationFencing(t *testing.T) {
	c := newResultCache(1<<20, 16, obs.NewRegistry())
	e := entry("k1", 1, "float32", 100)
	c.put(e)

	if got, ok := c.get("k1", 1, "float32"); !ok || !bytes.Equal(got.body, e.body) {
		t.Fatalf("expected hit with matching identity, ok=%v", ok)
	}
	// A different generation is a different answer: no hit, and the stale
	// entry is gone afterwards even for its own generation.
	if _, ok := c.get("k1", 2, "float32"); ok {
		t.Fatal("hit across generations")
	}
	if _, ok := c.get("k1", 1, "float32"); ok {
		t.Fatal("stale-generation entry not evicted on sight")
	}

	c.put(entry("k2", 3, "int8", 10))
	if _, ok := c.get("k2", 3, "fpga-sim"); ok {
		t.Fatal("hit across backends")
	}
}

func TestCacheLRUBounds(t *testing.T) {
	// Byte bound: each entry charges body + key + contentType + 64 ≈ 381
	// bytes here, so the third insert exceeds 1000 and evicts the oldest.
	c := newResultCache(1000, 100, obs.NewRegistry())
	c.put(entry("a", 1, "b", 300))
	c.put(entry("b", 1, "b", 300))
	c.put(entry("c", 1, "b", 300))
	if _, ok := c.get("a", 1, "b"); ok {
		t.Error("oldest entry survived byte-bound eviction")
	}
	if _, ok := c.get("c", 1, "b"); !ok {
		t.Error("newest entry evicted")
	}

	// Entry bound with a generous byte budget.
	c2 := newResultCache(1<<20, 2, obs.NewRegistry())
	c2.put(entry("a", 1, "b", 10))
	c2.put(entry("b", 1, "b", 10))
	_, _ = c2.get("a", 1, "b") // touch: "a" is now MRU
	c2.put(entry("c", 1, "b", 10))
	if _, ok := c2.get("b", 1, "b"); ok {
		t.Error("LRU entry survived entry-bound eviction")
	}
	if _, ok := c2.get("a", 1, "b"); !ok {
		t.Error("recently used entry evicted instead of LRU")
	}

	// An entry larger than the whole budget is refused, not cached.
	c3 := newResultCache(100, 10, obs.NewRegistry())
	c3.put(entry("big", 1, "b", 1000))
	if _, ok := c3.get("big", 1, "b"); ok {
		t.Error("over-budget entry cached")
	}
}

// TestCacheSingleFlight checks the collapse protocol: one leader per key,
// followers all receive the leader's entry after finish.
func TestCacheSingleFlight(t *testing.T) {
	c := newResultCache(1<<20, 16, obs.NewRegistry())
	const n = 32
	leaders := make(chan *flight, n)
	bodies := make([][]byte, n)

	// Barrier: every goroutine joins before the flight is finished, so
	// exactly one join can lead.
	var joined, wg sync.WaitGroup
	joined.Add(n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, leader := c.join("k")
			if leader {
				leaders <- f
			}
			joined.Done()
			<-f.done // closed by finish below
			bodies[i] = f.entry.body
		}(i)
	}

	joined.Wait()
	f := <-leaders
	f.entry = entry("k", 1, "float32", 64)
	c.finish("k", f)
	wg.Wait()

	select {
	case extra := <-leaders:
		t.Fatalf("more than one leader for a key: %v", extra)
	default:
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("follower %d body differs from leader's", i)
		}
	}
	// The finished flight's entry is in the cache for later requests.
	if _, ok := c.get("k", 1, "float32"); !ok {
		t.Error("finished flight not cached")
	}
	// And the flight table is empty: a new join leads again.
	if _, leader := c.join("k"); !leader {
		t.Error("flight table not cleared after finish")
	}
}

// TestNilCache checks the disabled-cache path: every lookup misses and
// every join leads, so the router code needs no nil branches.
func TestNilCache(t *testing.T) {
	var c *resultCache
	if _, ok := c.get("k", 1, "b"); ok {
		t.Error("nil cache hit")
	}
	c.put(entry("k", 1, "b", 10)) // must not panic
	f, leader := c.join("k")
	if !leader {
		t.Error("nil cache join did not lead")
	}
	c.finish("k", f)
	select {
	case <-f.done:
	default:
		t.Error("nil cache finish did not close the flight")
	}
}

func TestCacheEvictionCounters(t *testing.T) {
	reg := obs.NewRegistry()
	c := newResultCache(1<<20, 2, reg)
	for i := 0; i < 5; i++ {
		c.put(entry(fmt.Sprintf("k%d", i), 1, "b", 10))
	}
	if got := reg.Counter("router_cache_evictions").Load(); got != 3 {
		t.Errorf("evictions = %d, want 3", got)
	}
	if got := reg.Gauge("router_cache_entries").Load(); got != 2 {
		t.Errorf("entries gauge = %g, want 2", got)
	}
}
