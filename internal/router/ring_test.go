package router

import (
	"fmt"
	"math/rand/v2"
	"testing"
)

func ringNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return names
}

// TestRingMovement is the consistent-hashing contract: removing one
// replica from an N-replica ring moves ONLY the keys that replica owned
// (~1/N of the keyspace) and leaves every other key's primary untouched.
// A modulo-hash router would move (N-1)/N of the keys here.
func TestRingMovement(t *testing.T) {
	const nReplicas = 5
	const nKeys = 20000
	names := ringNames(nReplicas)
	full := NewRing(names, 0)

	// Remove replica 2 by building the ring the router would use if it
	// were gone; surviving indices shift down, so compare by name.
	removed := 2
	var survivors []string
	for i, n := range names {
		if i != removed {
			survivors = append(survivors, n)
		}
	}
	reduced := NewRing(survivors, 0)

	rng := rand.New(rand.NewPCG(1, 2))
	ownedByRemoved := 0
	for i := 0; i < nKeys; i++ {
		key := rng.Uint64()
		before := names[full.Primary(key)]
		after := survivors[reduced.Primary(key)]
		if before == names[removed] {
			ownedByRemoved++
			continue // its keys must move somewhere
		}
		if before != after {
			t.Fatalf("key %#x moved %s -> %s though its owner survived", key, before, after)
		}
	}
	frac := float64(ownedByRemoved) / float64(nKeys)
	if frac < 0.08 || frac > 0.35 {
		t.Errorf("removed replica owned %.1f%% of keys, want ~%.1f%%", 100*frac, 100.0/nReplicas)
	}
}

// TestRingBalance checks vnode placement spreads keys roughly evenly.
func TestRingBalance(t *testing.T) {
	const nReplicas = 4
	const nKeys = 40000
	r := NewRing(ringNames(nReplicas), 0)
	counts := make([]int, nReplicas)
	rng := rand.New(rand.NewPCG(7, 9))
	for i := 0; i < nKeys; i++ {
		counts[r.Primary(rng.Uint64())]++
	}
	for i, c := range counts {
		share := float64(c) / float64(nKeys)
		if share < 0.10 || share > 0.45 {
			t.Errorf("replica %d owns %.1f%% of keys, want near %.1f%%", i, 100*share, 100.0/nReplicas)
		}
	}
}

// TestRingCandidates checks the failover walk: deterministic, starts at
// the primary, and visits every replica exactly once.
func TestRingCandidates(t *testing.T) {
	names := ringNames(6)
	r := NewRing(names, 0)
	rng := rand.New(rand.NewPCG(3, 5))
	for i := 0; i < 200; i++ {
		key := rng.Uint64()
		c1 := r.Candidates(key)
		c2 := r.Candidates(key)
		if len(c1) != len(names) {
			t.Fatalf("Candidates returned %d of %d replicas", len(c1), len(names))
		}
		if c1[0] != r.Primary(key) {
			t.Fatalf("Candidates[0] = %d, Primary = %d", c1[0], r.Primary(key))
		}
		seen := make(map[int]bool)
		for j, idx := range c1 {
			if c2[j] != idx {
				t.Fatal("Candidates not deterministic")
			}
			if seen[idx] {
				t.Fatalf("replica %d repeated in candidates", idx)
			}
			seen[idx] = true
		}
	}
}

// TestRingEmpty covers the degenerate rings.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Primary(42); got != -1 {
		t.Errorf("empty ring Primary = %d, want -1", got)
	}
	if got := r.Candidates(42); got != nil {
		t.Errorf("empty ring Candidates = %v, want nil", got)
	}
	one := NewRing([]string{"http://solo"}, 3)
	if got := one.Primary(99); got != 0 {
		t.Errorf("single ring Primary = %d, want 0", got)
	}
}
