package router

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// cacheEntry is one cached upstream result. Exactness rests on the
// backends' determinism contract: a 2xx body from a deterministic
// endpoint is a pure function of (request bytes, model generation,
// backend), so replaying the stored bytes IS re-running the request —
// bitwise, not approximately. The entry records which (generation,
// backend) produced it; a lookup only hits when the fleet still serves
// that exact pair.
type cacheEntry struct {
	key         string
	status      int
	contentType string
	gen         uint64
	backend     string
	body        []byte
}

func (e *cacheEntry) size() int64 { return int64(len(e.body) + len(e.key) + len(e.contentType) + 64) }

// flight is one in-progress upstream fetch that concurrent identical
// requests collapse onto. The leader closes done after filling either
// entry (a cacheable 2xx) or the raw status/body of a non-cacheable
// outcome; err is set only when no upstream response existed at all.
type flight struct {
	done        chan struct{}
	entry       *cacheEntry
	status      int
	contentType string
	body        []byte
	err         error
}

// resultCache is the router's exact dedup/result cache: a byte- and
// entry-bounded LRU plus a single-flight table. All methods are safe for
// concurrent use. A nil *resultCache disables caching (every lookup
// misses, joins always lead).
type resultCache struct {
	mu         sync.Mutex
	maxBytes   int64
	maxEntries int
	bytes      int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	flights    map[string]*flight

	mBytes   *obs.Gauge
	mEntries *obs.Gauge
	mEvicted *obs.Counter
}

func newResultCache(maxBytes int64, maxEntries int, reg *obs.Registry) *resultCache {
	return &resultCache{
		maxBytes:   maxBytes,
		maxEntries: maxEntries,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		flights:    make(map[string]*flight),
		mBytes:     reg.Gauge("router_cache_bytes"),
		mEntries:   reg.Gauge("router_cache_entries"),
		mEvicted:   reg.Counter("router_cache_evictions"),
	}
}

// get returns the entry for key iff it exists and was produced by exactly
// (gen, backend) — the current uniform fleet identity. A stale-generation
// entry is evicted on sight rather than left to age out, so a fleet-wide
// model reload promptly frees the old generation's memory.
func (c *resultCache) get(key string, gen uint64, backend string) (*cacheEntry, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != gen || e.backend != backend {
		c.removeLocked(el)
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e, true
}

// put inserts (or replaces) an entry and evicts from the LRU tail until
// the byte and entry bounds hold again. Entries larger than the whole
// budget are not cached.
func (c *resultCache) put(e *cacheEntry) {
	if c == nil {
		return
	}
	if e.size() > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[e.key]; ok {
		c.removeLocked(el)
	}
	el := c.ll.PushFront(e)
	c.items[e.key] = el
	c.bytes += e.size()
	for (c.bytes > c.maxBytes || c.ll.Len() > c.maxEntries) && c.ll.Len() > 1 {
		c.removeLocked(c.ll.Back())
		c.mEvicted.Inc()
	}
	c.mBytes.Set(float64(c.bytes))
	c.mEntries.Set(float64(c.ll.Len()))
}

func (c *resultCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.size()
	c.mBytes.Set(float64(c.bytes))
	c.mEntries.Set(float64(c.ll.Len()))
}

// join enters the single-flight table: the first caller for a key becomes
// the leader (leader=true) and must call finish exactly once; every later
// caller for the same key gets the same flight to wait on.
func (c *resultCache) join(key string) (f *flight, leader bool) {
	if c == nil {
		return &flight{done: make(chan struct{})}, true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	c.flights[key] = f
	return f, true
}

// finish publishes the leader's outcome (already stored in f), installs a
// cacheable entry, and releases the followers.
func (c *resultCache) finish(key string, f *flight) {
	if c != nil {
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		if f.entry != nil {
			c.put(f.entry)
		}
	}
	close(f.done)
}
