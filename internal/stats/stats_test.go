package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestContainmentDefinition(t *testing.T) {
	// The paper's definition: the largest error observed in at most p of
	// the trials — rank ceil(p·n) of the sorted sample.
	xs := []float64{5, 1, 3, 2, 4} // sorted: 1 2 3 4 5
	if got := Containment(xs, 0.68); got != 4 {
		t.Errorf("68%% of 5 = %v, want 4 (rank ceil(3.4)=4)", got)
	}
	if got := Containment(xs, 0.95); got != 5 {
		t.Errorf("95%% of 5 = %v, want 5", got)
	}
	if got := Containment(xs, 0.2); got != 1 {
		t.Errorf("20%% of 5 = %v, want 1", got)
	}
	// Input must not be reordered.
	if xs[0] != 5 {
		t.Error("Containment mutated its input")
	}
	if !math.IsNaN(Containment(nil, 0.68)) {
		t.Error("empty input should give NaN")
	}
	c68, c95 := Containment68And95(xs)
	if c68 != 4 || c95 != 5 {
		t.Errorf("Containment68And95 = %v, %v", c68, c95)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-2.138) > 0.001 {
		t.Errorf("StdDev = %v, want ~2.138 (sample)", got)
	}
	if StdDev([]float64{3}) != 0 {
		t.Error("StdDev of singleton should be 0")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean of empty should be NaN")
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	lo, hi := MinMax(xs)
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
	if got := Median([]float64{1, 2, 3, 4, 5}); got != 3 {
		t.Errorf("Median = %v", got)
	}
}

func TestOverMetaTrials(t *testing.T) {
	m := OverMetaTrials([]float64{10, 12, 14})
	if m.Mean != 12 {
		t.Errorf("meta mean = %v", m.Mean)
	}
	// Standard error = sd/sqrt(3) = 2/sqrt(3).
	if math.Abs(m.Err-2/math.Sqrt(3)) > 1e-9 {
		t.Errorf("meta err = %v", m.Err)
	}
	if m.String() == "" {
		t.Error("empty MeanErr string")
	}
	if !math.IsNaN(OverMetaTrials(nil).Mean) {
		t.Error("empty meta-trials should give NaN mean")
	}
}

func TestTimingSummary(t *testing.T) {
	s := SummarizeTimings([]float64{10, 20, 30})
	if s.MeanMs != 20 || s.MinMs != 10 || s.MaxMs != 30 || s.N != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
	if z := SummarizeTimings(nil); z.N != 0 {
		t.Error("empty summary not zero")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 55} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin 0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin 1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.999
		t.Errorf("bin 4 = %d", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestContainmentOrderingProperty(t *testing.T) {
	f := func(seed uint64, rawN uint8) bool {
		n := int(rawN%60) + 1
		rng := newTestRNG(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.next() * 100
		}
		lo, hi := MinMax(xs)
		c50 := Containment(xs, 0.5)
		c68 := Containment(xs, 0.68)
		c95 := Containment(xs, 0.95)
		return lo <= c50 && c50 <= c68 && c68 <= c95 && c95 <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// newTestRNG is a tiny deterministic generator local to the stats tests
// (stats must not depend on xrand).
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{s: seed*2862933555777941757 + 3037000493} }

func (r *testRNG) next() float64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return float64(r.s>>11) / (1 << 53)
}
