// Package stats provides the summary statistics the paper reports:
// containment percentiles of localization error (68% / 95%), error bars over
// meta-trials, and small helpers for histograms and timing summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Containment returns the p-quantile of xs using the paper's definition:
// "the largest error observed in at most p fraction of trials" — i.e. the
// value at rank ceil(p·n) in the sorted sample. xs is not modified.
func Containment(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	k := int(math.Ceil(p*float64(len(s)))) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(s) {
		k = len(s) - 1
	}
	return s[k]
}

// Containment68And95 returns the two containment levels the paper reports.
func Containment68And95(xs []float64) (c68, c95 float64) {
	return Containment(xs, 0.68), Containment(xs, 0.95)
}

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var v float64
	for _, x := range xs {
		d := x - m
		v += d * d
	}
	return math.Sqrt(v / float64(n-1))
}

// MinMax returns the extrema of xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Median returns the sample median.
func Median(xs []float64) float64 { return Containment(xs, 0.5) }

// MeanErr is a mean with a symmetric error bar (as in the paper's
// "error bars are over ten meta-trials").
type MeanErr struct {
	Mean, Err float64
}

// String implements fmt.Stringer, printing "mean ± err".
func (m MeanErr) String() string { return fmt.Sprintf("%.2f ± %.2f", m.Mean, m.Err) }

// OverMetaTrials summarizes per-meta-trial values as mean ± standard error.
func OverMetaTrials(vals []float64) MeanErr {
	if len(vals) == 0 {
		return MeanErr{Mean: math.NaN()}
	}
	return MeanErr{
		Mean: Mean(vals),
		Err:  StdDev(vals) / math.Sqrt(float64(len(vals))),
	}
}

// TimingSummary summarizes a stage's elapsed times in milliseconds the way
// the paper's Tables I and II do: mean plus min–max range.
type TimingSummary struct {
	MeanMs, MinMs, MaxMs float64
	N                    int
}

// SummarizeTimings builds a TimingSummary from elapsed milliseconds.
func SummarizeTimings(ms []float64) TimingSummary {
	if len(ms) == 0 {
		return TimingSummary{}
	}
	min, max := MinMax(ms)
	return TimingSummary{MeanMs: Mean(ms), MinMs: min, MaxMs: max, N: len(ms)}
}

// String implements fmt.Stringer in the paper's "mean (range)" style.
func (t TimingSummary) String() string {
	return fmt.Sprintf("%.1f ms (%.0f–%.0f)", t.MeanMs, t.MinMs, t.MaxMs)
}

// Histogram is a fixed-bin histogram used for diagnostics.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
}

// NewHistogram creates a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) {
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations including overflow bins.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}
