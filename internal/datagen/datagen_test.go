package datagen

import (
	"math"
	"testing"

	"repro/internal/features"
)

// tinyConfig keeps generation fast for unit tests.
func tinyConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.BurstsPerAngle = 1
	cfg.PolarAnglesDeg = []float64{0, 40, 80}
	cfg.Fluence = 1.0
	return cfg
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(tinyConfig(5))
	b := Generate(tinyConfig(5))
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i].Ring.Eta != b.Samples[i].Ring.Eta ||
			a.Samples[i].PolarGuessDeg != b.Samples[i].PolarGuessDeg {
			t.Fatalf("sample %d differs between identical runs", i)
		}
	}
	c := Generate(tinyConfig(6))
	if len(c.Samples) == len(a.Samples) && len(a.Samples) > 0 && c.Samples[0].Ring.Eta == a.Samples[0].Ring.Eta {
		t.Error("different seeds produced identical data")
	}
}

func TestGenerateLabelsAndGuesses(t *testing.T) {
	set := Generate(tinyConfig(7))
	if len(set.Samples) < 100 {
		t.Fatalf("only %d samples", len(set.Samples))
	}
	nBkg := set.CountBackground()
	if nBkg == 0 || nBkg == len(set.Samples) {
		t.Error("background labels degenerate")
	}
	angles := map[float64]bool{0: false, 40: false, 80: false}
	for _, s := range set.Samples {
		if s.PolarGuessDeg < 0 || s.PolarGuessDeg > 90 {
			t.Fatalf("polar guess %v out of range", s.PolarGuessDeg)
		}
		if _, ok := angles[s.TruePolarDeg]; !ok {
			t.Fatalf("unexpected true polar %v", s.TruePolarDeg)
		}
		angles[s.TruePolarDeg] = true
		// Guess is near truth (5° noise).
		if math.Abs(s.PolarGuessDeg-s.TruePolarDeg) > 30 {
			t.Errorf("polar guess %v far from truth %v", s.PolarGuessDeg, s.TruePolarDeg)
		}
	}
	for a, seen := range angles {
		if !seen {
			t.Errorf("no samples from angle %v", a)
		}
	}
}

func TestBackgroundDataset(t *testing.T) {
	set := Generate(tinyConfig(8))
	ds := BackgroundDataset(set, true)
	if ds.X.Rows != len(set.Samples) || ds.X.Cols != features.NumFeatures {
		t.Fatalf("dataset shape %dx%d", ds.X.Rows, ds.X.Cols)
	}
	var ones int
	for i, y := range ds.Y {
		if y != 0 && y != 1 {
			t.Fatalf("label %v not binary", y)
		}
		if (y == 1) != set.Samples[i].Ring.Background {
			t.Fatalf("label %d disagrees with ground truth", i)
		}
		if y == 1 {
			ones++
		}
	}
	if ones != set.CountBackground() {
		t.Error("positive count mismatch")
	}
	// The no-polar variant is one column narrower.
	if BackgroundDataset(set, false).X.Cols != features.NumFeaturesNoPolar {
		t.Error("no-polar dataset width wrong")
	}
}

func TestDEtaDataset(t *testing.T) {
	set := Generate(tinyConfig(9))
	ds := DEtaDataset(set, true)
	wantRows := len(set.Samples) - set.CountBackground()
	if ds.X.Rows != wantRows {
		t.Fatalf("dEta dataset has %d rows, want %d (GRB only)", ds.X.Rows, wantRows)
	}
	for _, y := range ds.Y {
		if math.IsNaN(float64(y)) || math.IsInf(float64(y), 0) {
			t.Fatal("non-finite dEta target")
		}
		// ln of a floored error: bounded below by ln(floor).
		if float64(y) < math.Log(DEtaTargetFloor)-1e-5 {
			t.Fatalf("target %v below ln(floor)", y)
		}
	}
}

func TestPolarBins(t *testing.T) {
	set := Generate(tinyConfig(10))
	bins := PolarBins(set)
	if len(bins) != len(set.Samples) {
		t.Fatal("PolarBins length mismatch")
	}
	for i := range bins {
		if bins[i] != set.Samples[i].PolarGuessDeg {
			t.Fatal("PolarBins values mismatch")
		}
	}
}

func TestTrainingMixMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical check")
	}
	// At the default generation settings the GRB/background split should
	// sit near the paper's 60/40.
	set := Generate(DefaultConfig(11))
	frac := 1 - float64(set.CountBackground())/float64(len(set.Samples))
	if frac < 0.5 || frac > 0.72 {
		t.Errorf("GRB fraction %v outside the calibrated 60/40 band", frac)
	}
}
