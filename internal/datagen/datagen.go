// Package datagen produces labeled training data for the two networks by
// running the full simulation → reconstruction chain, mirroring the paper's
// §III "Model Training": GRB photons evenly divided across nine source polar
// angles from 0° to 80° in ten-degree increments, background particles from
// the atmospheric model, and only rings that pass the pre-localization
// quality filters retained. Labels come from simulation ground truth.
package datagen

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/background"
	"repro/internal/detector"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/recon"
	"repro/internal/xrand"
)

// Config controls dataset generation.
type Config struct {
	// Seed makes generation reproducible.
	Seed uint64
	// PolarAnglesDeg lists the source polar angles; nil means the paper's
	// 0°–80° in 10° steps.
	PolarAnglesDeg []float64
	// BurstsPerAngle is how many 1-second bursts to simulate at each angle.
	BurstsPerAngle int
	// Fluence of each training burst in MeV/cm².
	Fluence float64
	// PolarGuessNoiseDeg is the σ of Gaussian noise added to the true polar
	// angle to form the polar-guess feature; the paper found the guess
	// useful when "roughly correct (to within about 10°)".
	PolarGuessNoiseDeg float64
	// Detector, Recon, Background: nil/zero values mean package defaults.
	Detector   *detector.Config
	Recon      *recon.Config
	Background *background.Model
	// Workers caps parallel simulation goroutines; 0 means GOMAXPROCS.
	Workers int
}

// DefaultConfig returns a generation setup sized for this reproduction
// (scaled down from the paper's 270M photons; see DESIGN.md §2).
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:               seed,
		BurstsPerAngle:     3,
		Fluence:            3.3,
		PolarGuessNoiseDeg: 5,
	}
}

// Sample is one labeled ring.
type Sample struct {
	Ring *recon.Ring
	// PolarGuessDeg is the noisy polar-angle feature assigned at generation.
	PolarGuessDeg float64
	// TruePolarDeg is the burst's actual polar angle.
	TruePolarDeg float64
}

// Set is a generated collection of labeled rings.
type Set struct {
	Samples []Sample
}

// CountBackground returns how many samples are background rings.
func (s *Set) CountBackground() int {
	n := 0
	for _, smp := range s.Samples {
		if smp.Ring.Background {
			n++
		}
	}
	return n
}

// Generate runs the simulation chain and returns the labeled ring set.
// Work is distributed over (angle, burst) jobs; results are deterministic
// for a given Config regardless of scheduling.
func Generate(cfg Config) *Set {
	angles := cfg.PolarAnglesDeg
	if angles == nil {
		angles = []float64{0, 10, 20, 30, 40, 50, 60, 70, 80}
	}
	det := cfg.Detector
	if det == nil {
		d := detector.DefaultConfig()
		det = &d
	}
	rc := cfg.Recon
	if rc == nil {
		r := recon.DefaultConfig()
		rc = &r
	}
	bg := cfg.Background
	if bg == nil {
		b := background.DefaultModel()
		bg = &b
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct {
		angleIdx, burst int
	}
	jobs := make(chan job)
	results := make([][]Sample, len(angles)*cfg.BurstsPerAngle)
	root := xrand.New(cfg.Seed)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				slot := j.angleIdx*cfg.BurstsPerAngle + j.burst
				rng := root.Split(uint64(slot) + 1)
				results[slot] = simulateOne(det, rc, bg, cfg, angles[j.angleIdx], rng)
			}
		}()
	}
	for ai := range angles {
		for b := 0; b < cfg.BurstsPerAngle; b++ {
			jobs <- job{ai, b}
		}
	}
	close(jobs)
	wg.Wait()

	set := &Set{}
	for _, rs := range results {
		set.Samples = append(set.Samples, rs...)
	}
	return set
}

// simulateOne produces the labeled rings of one burst + its background
// window.
func simulateOne(det *detector.Config, rc *recon.Config, bg *background.Model, cfg Config, angleDeg float64, rng *xrand.RNG) []Sample {
	burst := detector.Burst{Fluence: cfg.Fluence, PolarDeg: angleDeg, AzimuthDeg: rng.Uniform(0, 360)}
	events := detector.SimulateBurst(det, burst, rng)
	events = append(events, bg.Simulate(det, 1.0, rng)...)
	var out []Sample
	for _, ev := range events {
		r, ok := recon.Reconstruct(rc, ev)
		if !ok {
			continue
		}
		guess := angleDeg + rng.Gaussian(0, cfg.PolarGuessNoiseDeg)
		if guess < 0 {
			guess = -guess
		}
		if guess > 90 {
			guess = 90
		}
		out = append(out, Sample{Ring: r, PolarGuessDeg: guess, TruePolarDeg: angleDeg})
	}
	return out
}

// DEtaTargetFloor is the minimum |η error| used when forming the regression
// target; it keeps ln(dη) finite for the occasional near-perfect ring.
const DEtaTargetFloor = 1e-4

// BackgroundDataset builds the classifier dataset: features (with or
// without the polar-angle input) and labels 1 = background, 0 = GRB.
func BackgroundDataset(set *Set, withPolar bool) *nn.Dataset {
	cols := features.NumFeaturesNoPolar
	if withPolar {
		cols = features.NumFeatures
	}
	x := nn.NewTensor(len(set.Samples), cols)
	y := make([]float32, len(set.Samples))
	for i, s := range set.Samples {
		features.Extract(s.Ring, s.PolarGuessDeg, withPolar, x.Row(i))
		if s.Ring.Background {
			y[i] = 1
		}
	}
	return &nn.Dataset{X: x, Y: y}
}

// DEtaDataset builds the regression dataset: GRB rings only (the paper
// removes background rings from the dEta training set), target ln of the
// realized η error.
func DEtaDataset(set *Set, withPolar bool) *nn.Dataset {
	cols := features.NumFeaturesNoPolar
	if withPolar {
		cols = features.NumFeatures
	}
	var rows int
	for _, s := range set.Samples {
		if !s.Ring.Background {
			rows++
		}
	}
	x := nn.NewTensor(rows, cols)
	y := make([]float32, rows)
	i := 0
	for _, s := range set.Samples {
		if s.Ring.Background {
			continue
		}
		features.Extract(s.Ring, s.PolarGuessDeg, withPolar, x.Row(i))
		y[i] = float32(math.Log(math.Max(s.Ring.EtaError(), DEtaTargetFloor)))
		i++
	}
	return &nn.Dataset{X: x, Y: y}
}

// PolarBins returns the per-sample polar-guess values, used for per-bin
// threshold selection.
func PolarBins(set *Set) []float64 {
	out := make([]float64, len(set.Samples))
	for i, s := range set.Samples {
		out[i] = s.PolarGuessDeg
	}
	return out
}
