package localize

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/xrand"
)

// TestParallelBitwiseIdentical pins the determinism contract of the
// parallel grid search: for a fixed seed, any worker count must produce a
// result bitwise identical to the serial path — same direction floats,
// same iteration count, same gated-ring count. Candidate scores land in
// fixed index slots and the reduction runs in index order, so scheduling
// cannot leak into the answer.
func TestParallelBitwiseIdentical(t *testing.T) {
	s := geom.Vec{X: 0.3, Y: -0.2, Z: 0.93}.Unit()
	run := func(workers int, seed uint64) Result {
		cfg := DefaultConfig()
		cfg.Workers = workers
		rings := syntheticRings(s, 70, 0.02, 90, xrand.New(seed))
		return Localize(&cfg, rings, xrand.New(seed+1))
	}
	for _, seed := range []uint64{3, 17, 101} {
		serial := run(1, seed)
		if !serial.OK {
			t.Fatalf("seed %d: serial localization failed", seed)
		}
		for _, workers := range []int{2, 3, 4, 8, 16} {
			got := run(workers, seed)
			if got.Dir != serial.Dir {
				t.Errorf("seed %d workers %d: Dir %+v != serial %+v",
					seed, workers, got.Dir, serial.Dir)
			}
			if got.RingsUsed != serial.RingsUsed || got.Iterations != serial.Iterations ||
				got.Converged != serial.Converged || got.OK != serial.OK {
				t.Errorf("seed %d workers %d: result %+v != serial %+v",
					seed, workers, got, serial)
			}
		}
	}
}

// TestApproximateParallelBitwiseIdentical checks the approximation stage's
// seeds alone, where the parallel candidate scoring lives.
func TestApproximateParallelBitwiseIdentical(t *testing.T) {
	s := geom.Vec{X: -0.1, Y: 0.4, Z: 0.9}.Unit()
	seedsFor := func(workers int) []geom.Vec {
		cfg := DefaultConfig()
		cfg.Workers = workers
		rings := syntheticRings(s, 50, 0.02, 50, xrand.New(7))
		return Approximate(&cfg, rings, xrand.New(8), 3)
	}
	serial := seedsFor(1)
	if len(serial) == 0 {
		t.Fatal("no seeds from serial approximation")
	}
	for _, workers := range []int{2, 4, 9} {
		got := seedsFor(workers)
		if len(got) != len(serial) {
			t.Fatalf("workers %d: %d seeds, serial had %d", workers, len(got), len(serial))
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Errorf("workers %d: seed %d = %+v, serial %+v", workers, i, got[i], serial[i])
			}
		}
	}
}
