package localize

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/recon"
	"repro/internal/xrand"
)

// syntheticRings builds n rings whose surfaces pass (with Gaussian noise of
// width noise in cosine space) through the true direction s. Ring axes are
// random directions; background rings, if any, are appended with random η.
func syntheticRings(s geom.Vec, n int, noise float64, nBackground int, rng *xrand.RNG) []*recon.Ring {
	var rings []*recon.Ring
	for i := 0; i < n; i++ {
		x, y, z := rng.UnitVectorPolarRange(0, math.Pi)
		axis := geom.Vec{X: x, Y: y, Z: z}
		eta := s.Dot(axis) + rng.Gaussian(0, noise)
		rings = append(rings, &recon.Ring{
			Ring:       geom.Ring{Axis: axis, Eta: geom.Clamp(eta, -1, 1), DEta: math.Max(noise, 0.005)},
			TrueSource: s,
		})
	}
	for i := 0; i < nBackground; i++ {
		x, y, z := rng.UnitVectorPolarRange(0, math.Pi)
		axis := geom.Vec{X: x, Y: y, Z: z}
		rings = append(rings, &recon.Ring{
			Ring:       geom.Ring{Axis: axis, Eta: rng.Uniform(-1, 1), DEta: math.Max(noise, 0.005)},
			Background: true,
		})
	}
	rng.Shuffle(len(rings), func(i, j int) { rings[i], rings[j] = rings[j], rings[i] })
	return rings
}

func TestLocalizeCleanRings(t *testing.T) {
	cfg := DefaultConfig()
	rng := xrand.New(1)
	s := geom.FromSpherical(geom.Rad(25), geom.Rad(100))
	rings := syntheticRings(s, 80, 0.01, 0, rng)
	res := Localize(&cfg, rings, rng)
	if !res.OK {
		t.Fatal("localization failed")
	}
	if err := res.ErrorDeg(s); err > 1.0 {
		t.Errorf("clean-ring error %v°, want < 1°", err)
	}
	if res.RingsUsed < 40 {
		t.Errorf("only %d rings gated in", res.RingsUsed)
	}
}

func TestLocalizeWithBackground(t *testing.T) {
	cfg := DefaultConfig()
	rng := xrand.New(2)
	s := geom.FromSpherical(geom.Rad(40), geom.Rad(-60))
	rings := syntheticRings(s, 60, 0.02, 120, rng) // 2:1 background
	res := Localize(&cfg, rings, rng)
	if !res.OK {
		t.Fatal("localization failed")
	}
	if err := res.ErrorDeg(s); err > 3.0 {
		t.Errorf("background-contaminated error %v°, want < 3°", err)
	}
}

func TestRefineConvergesFromOffset(t *testing.T) {
	cfg := DefaultConfig()
	rng := xrand.New(3)
	s := geom.FromSpherical(geom.Rad(10), geom.Rad(30))
	rings := syntheticRings(s, 100, 0.01, 0, rng)
	start := geom.FromSpherical(geom.Rad(18), geom.Rad(35)) // ~8° off
	res := Refine(&cfg, rings, start)
	if !res.OK || res.ErrorDeg(s) > 1.0 {
		t.Errorf("refinement from offset: err %v°", res.ErrorDeg(s))
	}
	if !res.Converged && res.Iterations == cfg.MaxIters {
		t.Log("refinement used the full iteration budget (acceptable but noteworthy)")
	}
}

func TestRotationEquivariance(t *testing.T) {
	// Localizing rotated rings must give the rotated answer (around the z
	// axis, which preserves the SkyOnly constraint).
	cfg := DefaultConfig()
	s := geom.FromSpherical(geom.Rad(35), geom.Rad(0))
	rng := xrand.New(4)
	rings := syntheticRings(s, 60, 0.01, 0, rng)
	res1 := Localize(&cfg, rings, xrand.New(99))

	phi := geom.Rad(70)
	zAxis := geom.Vec{Z: 1}
	var rotated []*recon.Ring
	for _, r := range rings {
		rr := *r
		rr.Axis = geom.RotateAbout(r.Axis, zAxis, phi)
		rotated = append(rotated, &rr)
	}
	res2 := Localize(&cfg, rotated, xrand.New(99))
	want := geom.RotateAbout(res1.Dir, zAxis, phi)
	if !res1.OK || !res2.OK {
		t.Fatal("localization failed")
	}
	if d := geom.Deg(geom.AngleBetween(res2.Dir, want)); d > 1.5 {
		t.Errorf("rotated solution differs by %v° from rotating the solution", d)
	}
}

func TestNoRings(t *testing.T) {
	cfg := DefaultConfig()
	res := Localize(&cfg, nil, xrand.New(5))
	if res.OK {
		t.Error("OK with no rings")
	}
	if dirs := Approximate(&cfg, nil, xrand.New(5), 3); dirs != nil {
		t.Error("Approximate returned seeds with no rings")
	}
}

func TestApproximateSeedsAreSeparatedAndOnSky(t *testing.T) {
	cfg := DefaultConfig()
	rng := xrand.New(6)
	s := geom.FromSpherical(geom.Rad(50), geom.Rad(10))
	rings := syntheticRings(s, 50, 0.02, 50, rng)
	seeds := Approximate(&cfg, rings, rng, 3)
	if len(seeds) == 0 {
		t.Fatal("no seeds")
	}
	for i, a := range seeds {
		if cfg.SkyOnly && a.Z < -0.05 {
			t.Errorf("seed %d below the horizon: %v", i, a)
		}
		for j := i + 1; j < len(seeds); j++ {
			if a.Dot(seeds[j]) > 0.9999 {
				t.Errorf("seeds %d and %d coincide", i, j)
			}
		}
	}
}

func TestGateWidensWhenStarved(t *testing.T) {
	cfg := DefaultConfig()
	rng := xrand.New(7)
	s := geom.Vec{Z: 1}
	// All rings far from the probe direction: the gate must widen rather
	// than return an empty set.
	var rings []*recon.Ring
	for i := 0; i < 10; i++ {
		x, y, z := rng.UnitVectorPolarRange(0, math.Pi)
		rings = append(rings, &recon.Ring{
			Ring: geom.Ring{Axis: geom.Vec{X: x, Y: y, Z: z}, Eta: -0.9, DEta: 0.01},
		})
	}
	got, n := gate(&cfg, rings, s)
	if n == 0 || len(got) == 0 {
		t.Error("gate returned nothing even after widening")
	}
}

func TestSolve3(t *testing.T) {
	m := [3][3]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}}
	b := [3]float64{2, 6, 12}
	x, ok := solve3(m, b)
	if !ok || math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-2) > 1e-12 || math.Abs(x[2]-3) > 1e-12 {
		t.Errorf("solve3 diagonal = %v, ok=%v", x, ok)
	}
	// A system requiring pivoting.
	m = [3][3]float64{{0, 1, 0}, {1, 0, 0}, {0, 0, 1}}
	b = [3]float64{5, 7, 9}
	x, ok = solve3(m, b)
	if !ok || x[0] != 7 || x[1] != 5 || x[2] != 9 {
		t.Errorf("solve3 pivot = %v, ok=%v", x, ok)
	}
	// Singular matrix.
	m = [3][3]float64{{1, 1, 0}, {1, 1, 0}, {0, 0, 0}}
	if _, ok := solve3(m, [3]float64{1, 1, 0}); ok {
		t.Error("singular system solved")
	}
}

func TestLogLikelihoodCap(t *testing.T) {
	cfg := DefaultConfig()
	s := geom.Vec{Z: 1}
	near := &recon.Ring{Ring: geom.Ring{Axis: geom.Vec{Z: 1}, Eta: 1, DEta: 0.1}}
	far := &recon.Ring{Ring: geom.Ring{Axis: geom.Vec{Z: 1}, Eta: -1, DEta: 0.001}}
	llNear := LogLikelihood(&cfg, []*recon.Ring{near}, s)
	llFar := LogLikelihood(&cfg, []*recon.Ring{far}, s)
	if llNear != 0 {
		t.Errorf("on-surface ring likelihood = %v, want 0", llNear)
	}
	if llFar != -cfg.RobustCap/2 {
		t.Errorf("far ring likelihood = %v, want capped at %v", llFar, -cfg.RobustCap/2)
	}
}

func TestSkyOnlyProjection(t *testing.T) {
	cfg := DefaultConfig()
	rng := xrand.New(8)
	// Rings consistent with a below-horizon source; the solver must keep
	// the estimate at or above the horizon.
	s := geom.FromSpherical(geom.Rad(120), 0) // 30° below horizon
	rings := syntheticRings(s, 60, 0.01, 0, rng)
	res := Refine(&cfg, rings, geom.FromSpherical(geom.Rad(85), 0))
	if res.OK && res.Dir.Z < -1e-9 {
		t.Errorf("estimate dove below the horizon: %v", res.Dir)
	}
}

func TestErrorRadiusEstimate(t *testing.T) {
	cfg := DefaultConfig()
	rng := xrand.New(10)
	s := geom.FromSpherical(geom.Rad(30), geom.Rad(45))

	// Tighter rings → smaller estimated radius; and more rings → smaller.
	few := syntheticRings(s, 20, 0.05, 0, rng)
	many := syntheticRings(s, 200, 0.05, 0, rng)
	tight := syntheticRings(s, 20, 0.005, 0, rng)

	rFew := ErrorRadiusDeg(&cfg, few, s)
	rMany := ErrorRadiusDeg(&cfg, many, s)
	rTight := ErrorRadiusDeg(&cfg, tight, s)
	if !(rMany < rFew) {
		t.Errorf("more rings did not shrink the estimate: %v vs %v", rMany, rFew)
	}
	if !(rTight < rFew) {
		t.Errorf("tighter rings did not shrink the estimate: %v vs %v", rTight, rFew)
	}
	if ErrorRadiusDeg(&cfg, nil, s) != 180 {
		t.Error("no rings should give the maximal radius")
	}
}

func TestErrorRadiusCalibration(t *testing.T) {
	// The self-reported radius should be the right order of magnitude:
	// across trials, the realized error's 68% containment should sit
	// within a factor of a few of the mean estimate.
	cfg := DefaultConfig()
	root := xrand.New(11)
	var errs []float64
	var estimates []float64
	for trial := 0; trial < 40; trial++ {
		rng := root.Split(uint64(trial))
		s := geom.FromSpherical(rng.Uniform(0, geom.Rad(60)), rng.Uniform(0, 2*math.Pi))
		rings := syntheticRings(s, 120, 0.02, 0, rng)
		res := Localize(&cfg, rings, rng)
		if !res.OK {
			continue
		}
		errs = append(errs, geom.Deg(geom.AngleBetween(res.Dir, s)))
		estimates = append(estimates, ErrorRadiusDeg(&cfg, rings, res.Dir))
	}
	if len(errs) < 30 {
		t.Fatal("too many localization failures")
	}
	var meanEst, meanErr float64
	for i := range errs {
		meanEst += estimates[i]
		meanErr += errs[i]
	}
	meanEst /= float64(len(errs))
	meanErr /= float64(len(errs))
	if meanEst <= 0 {
		t.Fatal("non-positive estimate")
	}
	ratio := meanErr / meanEst
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("estimate off by %vx (mean err %v°, mean estimate %v°)", ratio, meanErr, meanEst)
	}
}
