// Package localize infers a single GRB source direction from a set of
// Compton rings (paper §II-B, "Computational Pipeline"). The algorithm has
// the paper's two stages:
//
//   - Approximation: sample a small number of rings, take candidate
//     directions on each sampled ring's surface, and keep the candidate
//     that maximizes the joint robust likelihood of the sample.
//   - Refinement: iterate { gate rings consistent with the current estimate;
//     solve the weighted "almost-linear" least-squares problem
//     min Σ wᵢ (s·cᵢ − ηᵢ)² over s ∈ R³; renormalize s } to convergence.
//
// The gating step is what makes the solver robust to background rings and
// badly reconstructed rings: anything farther than GateSigma ring widths
// from the current estimate contributes nothing to the update.
package localize

import (
	"context"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/par"
	"repro/internal/recon"
	"repro/internal/xrand"
)

// Config holds the localization parameters.
type Config struct {
	// SampleRings is how many rings the approximation stage samples.
	SampleRings int
	// CandidatesPerRing is how many directions are taken on each sampled
	// ring's surface.
	CandidatesPerRing int
	// GateSigma is the ring-gating threshold κ in units of dη.
	GateSigma float64
	// MaxGateCos caps the gate half-width κ·dη in cosine space, so rings
	// with honestly large widths still only vote near their surface instead
	// of admitting most of the sky.
	MaxGateCos float64
	// RobustCap caps each ring's squared pull in the likelihood, so far-away
	// rings saturate instead of dominating.
	RobustCap float64
	// MaxIters bounds the refinement loop.
	MaxIters int
	// ConvergeRad: refinement stops when the estimate moves less than this
	// angle (radians) in one iteration.
	ConvergeRad float64
	// MinRings is the minimum number of gated rings required to trust a
	// least-squares update; below it the gate is widened.
	MinRings int
	// SkyOnly restricts candidate directions to the upper hemisphere
	// (Earth blocks ADAPT's view from below, §III).
	SkyOnly bool
	// Workers caps the parallelism of the approximation grid search and
	// seed refinement: 0 means the process default (par.DefaultWorkers),
	// 1 forces the serial path. Any value produces bitwise-identical
	// results for a given seed — candidates are scored into fixed index
	// slots and reduced in index order.
	Workers int
}

// DefaultConfig returns the solver settings used by the experiments.
func DefaultConfig() Config {
	return Config{
		SampleRings:       16,
		CandidatesPerRing: 36,
		GateSigma:         3.0,
		MaxGateCos:        0.20,
		RobustCap:         9.0,
		MaxIters:          25,
		ConvergeRad:       geom.Rad(0.02),
		MinRings:          5,
		SkyOnly:           true,
	}
}

// Result is the output of a localization run.
type Result struct {
	// Dir is the inferred unit source direction.
	Dir geom.Vec
	// RingsUsed is the number of rings inside the final gate.
	RingsUsed int
	// Iterations is the number of refinement iterations performed.
	Iterations int
	// Converged reports whether the estimate moved less than ConvergeRad on
	// the final iteration.
	Converged bool
	// OK is false when there were not enough rings to localize at all.
	OK bool
}

// ErrorDeg returns the angular separation in degrees between the result and
// the true direction.
func (r Result) ErrorDeg(truth geom.Vec) float64 {
	return geom.Deg(geom.AngleBetween(r.Dir, truth))
}

// LogLikelihood returns the joint robust log-likelihood of direction s given
// the rings: Σ −min(pull², cap)/2. Higher is better.
func LogLikelihood(cfg *Config, rings []*recon.Ring, s geom.Vec) float64 {
	var ll float64
	for _, r := range rings {
		p := r.Pull(s)
		ll -= math.Min(p*p, cfg.RobustCap) / 2
	}
	return ll
}

// Approximate picks initial directions by sampling rings and scoring
// candidate directions on their surfaces (paper: "Approximation picks a
// small random sample of incoming Compton rings and considers the set of
// candidate source directions that lie close to at least one of these
// rings, choosing the direction s₀ that maximizes the joint likelihood of
// the sample"). It returns up to maxSeeds well-separated candidates in
// decreasing likelihood order; refining several seeds and keeping the most
// likely final answer is what makes the stage robust when most rings are
// background.
func Approximate(cfg *Config, rings []*recon.Ring, rng *xrand.RNG, maxSeeds int) []geom.Vec {
	if len(rings) == 0 || maxSeeds < 1 {
		return nil
	}
	nSample := cfg.SampleRings
	if nSample > len(rings) {
		nSample = len(rings)
	}
	sample := make([]*recon.Ring, 0, nSample)
	for _, i := range rng.Perm(len(rings))[:nSample] {
		sample = append(sample, rings[i])
	}

	// Collect the candidate grid first (the RNG stream must stay serial),
	// then score it on the worker pool: each candidate's joint likelihood
	// over all rings is independent, and this candidate × ring loop is the
	// localization hot spot. Scores land in fixed index slots, so the
	// parallel path is bitwise-identical to the serial one.
	type scored struct {
		dir geom.Vec
		ll  float64
	}
	var cands []scored
	buf := make([]geom.Vec, 0, cfg.CandidatesPerRing)
	for _, r := range sample {
		buf = r.Points(buf[:0], cfg.CandidatesPerRing, rng.Uniform(0, 2*math.Pi))
		for _, cand := range buf {
			if cfg.SkyOnly && cand.Z < -0.05 {
				continue
			}
			cands = append(cands, scored{dir: cand})
		}
	}
	par.NewPool(cfg.Workers).ForRange(context.Background(), len(cands), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			cands[i].ll = LogLikelihood(cfg, rings, cands[i].dir)
		}
	})
	sort.Slice(cands, func(i, j int) bool { return cands[i].ll > cands[j].ll })

	// Keep the best candidates that are mutually separated, so the seeds
	// explore distinct likelihood modes instead of one cluster.
	const minSepCos = 0.995 // ~5.7°
	var seeds []geom.Vec
	for _, c := range cands {
		distinct := true
		for _, s := range seeds {
			if c.dir.Dot(s) > minSepCos {
				distinct = false
				break
			}
		}
		if distinct {
			seeds = append(seeds, c.dir)
			if len(seeds) == maxSeeds {
				break
			}
		}
	}
	return seeds
}

// Refine improves an initial direction by iteratively-gated weighted least
// squares (the paper's "almost-linear least-squares" refinement).
func Refine(cfg *Config, rings []*recon.Ring, s0 geom.Vec) Result {
	if len(rings) == 0 {
		return Result{}
	}
	s := s0.Unit()
	res := Result{Dir: s, OK: true}
	for it := 0; it < cfg.MaxIters; it++ {
		res.Iterations = it + 1
		gated, used := gate(cfg, rings, s)
		res.RingsUsed = used
		next, ok := solveLSQ(gated, s)
		if !ok {
			break
		}
		if cfg.SkyOnly && next.Z < 0 {
			// Project back to the horizon rather than letting the estimate
			// dive below the Earth limb.
			next.Z = 0
			if next.Norm() == 0 {
				break
			}
			next = next.Unit()
		}
		move := geom.AngleBetween(s, next)
		s = next
		res.Dir = s
		if move < cfg.ConvergeRad {
			res.Converged = true
			break
		}
	}
	return res
}

// ErrorRadiusDeg estimates the 1σ angular uncertainty (degrees) of a
// localization at s from the Fisher information of the gated rings: each
// ring constrains the component of s along its axis with weight 1/dη²,
// giving the 2×2 information matrix in the tangent plane at s. The returned
// radius is the geometric mean of the two principal 1σ extents — what the
// flight system would downlink as its own error estimate, since ground
// truth is unavailable in flight.
func ErrorRadiusDeg(cfg *Config, rings []*recon.Ring, s geom.Vec) float64 {
	gated, _ := gate(cfg, rings, s)
	if len(gated) == 0 {
		return 180
	}
	u, w := geom.OrthoBasis(s)
	var h00, h01, h11 float64
	for _, r := range gated {
		// d(s·c)/dt along tangent direction t is t·c; information adds
		// (t·c)(t'·c)/dη².
		cu := r.Axis.Dot(u)
		cw := r.Axis.Dot(w)
		wgt := 1 / (r.DEta * r.DEta)
		h00 += wgt * cu * cu
		h01 += wgt * cu * cw
		h11 += wgt * cw * cw
	}
	det := h00*h11 - h01*h01
	if det <= 0 {
		return 180
	}
	// Covariance = H⁻¹; principal variances are the eigenvalues. Their
	// geometric mean is sqrt(det(H⁻¹)) = 1/sqrt(det(H)).
	sigmaRad := math.Sqrt(1 / math.Sqrt(det))
	return geom.Deg(sigmaRad)
}

// Localize runs approximation followed by refinement. It refines the
// best-scoring well-separated seeds from the approximation stage and keeps
// the refined direction with the highest joint likelihood.
func Localize(cfg *Config, rings []*recon.Ring, rng *xrand.RNG) Result {
	seeds := Approximate(cfg, rings, rng, 3)
	if len(seeds) == 0 {
		return Result{}
	}
	// Refine every seed concurrently (each reads the shared rings and
	// mutates nothing), then pick the winner in seed order so ties break
	// exactly as the serial loop did.
	refined := make([]Result, len(seeds))
	par.NewPool(cfg.Workers).ForEach(context.Background(), len(seeds), func(i int) {
		refined[i] = Refine(cfg, rings, seeds[i])
	})
	best := math.Inf(-1)
	var bestRes Result
	for _, res := range refined {
		if !res.OK {
			continue
		}
		if ll := LogLikelihood(cfg, rings, res.Dir); ll > best {
			best, bestRes = ll, res
		}
	}
	return bestRes
}

// gate returns the rings within GateSigma ring widths (capped at MaxGateCos
// in cosine space) of s, widening the gate when fewer than MinRings survive.
func gate(cfg *Config, rings []*recon.Ring, s geom.Vec) ([]*recon.Ring, int) {
	k := cfg.GateSigma
	cap := cfg.MaxGateCos
	if cap <= 0 {
		cap = math.Inf(1)
	}
	for widen := 0; widen < 3; widen++ {
		var out []*recon.Ring
		for _, r := range rings {
			w := k * r.DEta
			if w > cap {
				w = cap
			}
			if math.Abs(r.Residual(s)) <= w {
				out = append(out, r)
			}
		}
		if len(out) >= cfg.MinRings {
			return out, len(out)
		}
		k *= 2
		cap *= 2
	}
	return rings, len(rings)
}

// solveLSQ solves min_s Σ wᵢ(s·cᵢ − ηᵢ)² via the 3×3 normal equations and
// renormalizes. prev seeds the Tikhonov fallback when the system is nearly
// singular (all ring axes parallel).
func solveLSQ(rings []*recon.Ring, prev geom.Vec) (geom.Vec, bool) {
	if len(rings) == 0 {
		return geom.Vec{}, false
	}
	var m [3][3]float64
	var b [3]float64
	for _, r := range rings {
		w := 1 / (r.DEta * r.DEta)
		c := [3]float64{r.Axis.X, r.Axis.Y, r.Axis.Z}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] += w * c[i] * c[j]
			}
			b[i] += w * r.Eta * c[i]
		}
	}
	// Tikhonov regularization toward the previous estimate stabilizes the
	// degenerate case and barely perturbs the well-conditioned one.
	lambda := 1e-6 * (m[0][0] + m[1][1] + m[2][2])
	p := [3]float64{prev.X, prev.Y, prev.Z}
	for i := 0; i < 3; i++ {
		m[i][i] += lambda
		b[i] += lambda * p[i]
	}
	x, ok := solve3(m, b)
	if !ok {
		return geom.Vec{}, false
	}
	v := geom.Vec{X: x[0], Y: x[1], Z: x[2]}
	if v.Norm() == 0 {
		return geom.Vec{}, false
	}
	return v.Unit(), true
}

// solve3 solves a 3×3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(m [3][3]float64, b [3]float64) ([3]float64, bool) {
	a := [3][4]float64{}
	for i := 0; i < 3; i++ {
		copy(a[i][:3], m[i][:])
		a[i][3] = b[i]
	}
	for col := 0; col < 3; col++ {
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-30 {
			return [3]float64{}, false
		}
		a[col], a[piv] = a[piv], a[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < 4; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	var x [3]float64
	for i := 0; i < 3; i++ {
		x[i] = a[i][3] / a[i][i]
	}
	return x, true
}
