package localize

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/recon"
	"repro/internal/xrand"
)

// benchWorkload builds a paper-scale ring set: ~600 rings, 1:2.2
// source:background, around a 25°-polar source.
func benchWorkload() ([]*recon.Ring, geom.Vec) {
	rng := xrand.New(42)
	s := geom.FromSpherical(geom.Rad(25), geom.Rad(140))
	rings := syntheticRings(s, 190, 0.02, 420, rng)
	return rings, s
}

func BenchmarkApproximate(b *testing.B) {
	cfg := DefaultConfig()
	rings, _ := benchWorkload()
	rng := xrand.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Approximate(&cfg, rings, rng, 3)
	}
}

func BenchmarkRefine(b *testing.B) {
	cfg := DefaultConfig()
	rings, s := benchWorkload()
	start := geom.FromSpherical(geom.Rad(28), geom.Rad(143))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Refine(&cfg, rings, start)
	}
	_ = s
}

func BenchmarkLocalize(b *testing.B) {
	cfg := DefaultConfig()
	rings, _ := benchWorkload()
	rng := xrand.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Localize(&cfg, rings, rng)
	}
}
