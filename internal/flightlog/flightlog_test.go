package flightlog

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// appendAll opens a journal in dir, appends every payload, and closes it.
func appendAll(t *testing.T, opts Options, payloads [][]byte) {
	t.Helper()
	j, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if err := j.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// replayAll collects every payload in dir.
func replayAll(t *testing.T, dir string) [][]byte {
	t.Helper()
	var out [][]byte
	if err := Replay(dir, func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func testPayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("record-%04d:%s", i, bytes.Repeat([]byte{byte(i)}, i%37)))
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := testPayloads(200)
	appendAll(t, Options{Dir: dir}, want)
	got := replayAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch: %q != %q", i, got[i], want[i])
		}
	}
}

func TestEmptyAndZeroLengthRecords(t *testing.T) {
	dir := t.TempDir()
	if n, err := Count(dir); err != nil || n != 0 {
		t.Fatalf("empty dir Count = %d, %v", n, err)
	}
	appendAll(t, Options{Dir: dir}, [][]byte{{}, []byte("x"), {}})
	got := replayAll(t, dir)
	if len(got) != 3 || len(got[0]) != 0 || string(got[1]) != "x" || len(got[2]) != 0 {
		t.Fatalf("zero-length records did not round-trip: %q", got)
	}
}

func TestSegmentRotationBySize(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record (~47 bytes framed) rotates quickly.
	appendAll(t, Options{Dir: dir, SegmentBytes: 128}, testPayloads(50))
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) < 5 {
		t.Fatalf("expected many segments at 128-byte rotation, got %d", len(seqs))
	}
	if got := replayAll(t, dir); len(got) != 50 {
		t.Fatalf("rotation lost records: %d/50", len(got))
	}
}

func TestSegmentRotationByAge(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	j, err := Open(Options{Dir: dir, SegmentMaxAge: time.Minute, Now: clock})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	now = now.Add(2 * time.Minute)
	if err := j.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, _ := listSegments(dir)
	if len(seqs) != 2 {
		t.Fatalf("age rotation: %d segments, want 2", len(seqs))
	}
	if got := replayAll(t, dir); len(got) != 2 {
		t.Fatalf("age rotation lost records: %d/2", len(got))
	}
}

func TestRetentionMaxSegments(t *testing.T) {
	dir := t.TempDir()
	appendAll(t, Options{Dir: dir, SegmentBytes: 128, MaxSegments: 3}, testPayloads(60))
	seqs, _ := listSegments(dir)
	if len(seqs) > 3 {
		t.Fatalf("retention kept %d segments, want <= 3", len(seqs))
	}
	// The survivors replay cleanly and are the newest records.
	got := replayAll(t, dir)
	if len(got) == 0 || len(got) >= 60 {
		t.Fatalf("retention replay count = %d, want partial tail", len(got))
	}
	if want := []byte(fmt.Sprintf("record-%04d", 59)); !bytes.HasPrefix(got[len(got)-1], want) {
		t.Fatalf("last surviving record = %q, want prefix %q", got[len(got)-1], want)
	}
}

func TestRetentionMaxTotalBytes(t *testing.T) {
	dir := t.TempDir()
	appendAll(t, Options{Dir: dir, SegmentBytes: 256, MaxTotalBytes: 1024}, testPayloads(100))
	var total int64
	seqs, _ := listSegments(dir)
	for _, s := range seqs {
		fi, err := os.Stat(filepath.Join(dir, segName(s)))
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	// Allow one segment of slack: retention runs before the new segment
	// opens, so the active segment can push past the bound.
	if total > 1024+512 {
		t.Fatalf("retention left %d bytes on disk, want <= ~1536", total)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncNone, SyncInterval, SyncAlways} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			appendAll(t, Options{Dir: dir, Sync: pol, SyncEveryBytes: 64}, testPayloads(20))
			if got := replayAll(t, dir); len(got) != 20 {
				t.Fatalf("%v policy lost records: %d/20", pol, len(got))
			}
		})
	}
}

// lastSegPath returns the path of the newest segment.
func lastSegPath(t *testing.T, dir string) string {
	t.Helper()
	seqs, err := listSegments(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	return filepath.Join(dir, segName(seqs[len(seqs)-1]))
}

func TestRecoveryTruncatesTornTail(t *testing.T) {
	cases := []struct {
		name string
		tear func(t *testing.T, path string)
	}{
		{"partial-frame", func(t *testing.T, path string) {
			// Append half a frame header: length says 100, no payload.
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			var frame [frameSize]byte
			binary.LittleEndian.PutUint32(frame[0:4], 100)
			f.Write(frame[:])
			f.Close()
		}},
		{"garbage-bytes", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			f.Write([]byte{0xDE, 0xAD, 0xBE})
			f.Close()
		}},
		{"truncated-payload", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			// Cut into the last record's payload.
			if err := os.Truncate(path, fi.Size()-5); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt-crc", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a bit in the last byte (inside the final payload).
			data[len(data)-1] ^= 0x80
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			want := testPayloads(30)
			appendAll(t, Options{Dir: dir}, want)
			tc.tear(t, lastSegPath(t, dir))

			// Read-only replay tolerates the tear.
			got := replayAll(t, dir)
			if len(got) > 30 {
				t.Fatalf("replay invented records: %d", len(got))
			}
			// Reopen: recovery truncates, and appends resume cleanly.
			j, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatal(err)
			}
			if tc.name != "truncated-payload" && tc.name != "corrupt-crc" {
				if j.Stats().RecoveredTruncation == 0 {
					t.Error("recovery reported no truncation for a torn tail")
				}
				if len(got) != 30 {
					t.Errorf("pure-tail tear lost whole records: %d/30", len(got))
				}
			}
			if err := j.Append([]byte("post-crash")); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			again := replayAll(t, dir)
			if len(again) != len(got)+1 {
				t.Fatalf("after recovery+append: %d records, want %d", len(again), len(got)+1)
			}
			for i := range got {
				if !bytes.Equal(again[i], got[i]) {
					t.Fatalf("record %d changed across recovery", i)
				}
			}
			if string(again[len(again)-1]) != "post-crash" {
				t.Fatalf("post-recovery record = %q", again[len(again)-1])
			}
		})
	}
}

func TestRecoveryTornHeader(t *testing.T) {
	dir := t.TempDir()
	// A crash can tear the header of a freshly rotated segment.
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte("AFL"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != 1 || string(got[0]) != "hello" {
		t.Fatalf("torn-header recovery replay = %q", got)
	}
}

func TestReplayCorruptMiddleSegmentErrors(t *testing.T) {
	dir := t.TempDir()
	appendAll(t, Options{Dir: dir, SegmentBytes: 128}, testPayloads(40))
	seqs, _ := listSegments(dir)
	if len(seqs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(seqs))
	}
	// Corrupt a payload byte in the middle segment.
	mid := filepath.Join(dir, segName(seqs[len(seqs)/2]))
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = Replay(dir, func([]byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Replay over corrupt middle segment: %v, want ErrCorrupt", err)
	}
}

func TestReplayFnErrorAborts(t *testing.T) {
	dir := t.TempDir()
	appendAll(t, Options{Dir: dir}, testPayloads(5))
	sentinel := errors.New("stop")
	n := 0
	err := Replay(dir, func([]byte) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) || n != 3 {
		t.Fatalf("fn error: err=%v after %d records", err, n)
	}
}

func TestByteExactDeterministicEncoding(t *testing.T) {
	// The same payload sequence must produce identical journal bytes —
	// the property that makes journal shipping and dedup possible.
	payloads := testPayloads(64)
	dirs := [2]string{t.TempDir(), t.TempDir()}
	var blobs [2][]byte
	for i, dir := range dirs {
		appendAll(t, Options{Dir: dir, SegmentBytes: 512}, payloads)
		seqs, _ := listSegments(dir)
		for _, s := range seqs {
			b, err := os.ReadFile(filepath.Join(dir, segName(s)))
			if err != nil {
				t.Fatal(err)
			}
			blobs[i] = append(blobs[i], b...)
		}
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatal("identical append sequences produced different journal bytes")
	}
}

func TestAppendAfterCloseAndOversizeRecord(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(make([]byte, MaxRecordBytes+1)); err == nil {
		t.Error("oversize record accepted")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	if err := j.Append([]byte("x")); err == nil {
		t.Error("append after Close accepted")
	}
}

func TestConcurrentAppend(t *testing.T) {
	// Run under -race in CI. Concurrent appenders interleave but every
	// record survives intact.
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 8, 50
	done := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < perG; i++ {
				if err := j.Append([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if n, err := Count(dir); err != nil || n != goroutines*perG {
		t.Fatalf("Count = %d, %v; want %d", n, err, goroutines*perG)
	}
}

func TestStats(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append([]byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.Appended != 10 || st.Segments != 1 || st.ActiveSeq != 1 {
		t.Errorf("Stats = %+v", st)
	}
	if want := int64(headerSize + 10*(frameSize+10)); st.ActiveBytes != want || st.TotalBytes != want {
		t.Errorf("Stats bytes = %+v, want %d", st, want)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
