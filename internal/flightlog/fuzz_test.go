package flightlog

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSegment builds a valid segment blob from payloads for the seed corpus.
func fuzzSegment(payloads ...[]byte) []byte {
	var buf bytes.Buffer
	buf.Write(segMagic[:])
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:2], Version)
	buf.Write(hdr[:])
	for _, p := range payloads {
		var frame [frameSize]byte
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(p))
		buf.Write(frame[:])
		buf.Write(p)
	}
	return buf.Bytes()
}

// FuzzRecover writes arbitrary bytes as a journal's final segment and
// requires the recovery path to hold its contract on any of them: Open
// never panics and never errors on framing damage, the recovered journal
// accepts appends, and a replay returns exactly the recovered records plus
// the new one. Run with `go test -fuzz=FuzzRecover ./internal/flightlog`.
func FuzzRecover(f *testing.F) {
	f.Add(fuzzSegment())                                      // header only
	f.Add(fuzzSegment([]byte("hello"), []byte("world")))      // valid records
	f.Add(fuzzSegment([]byte("hello"))[:headerSize+3])        // torn frame
	f.Add(append(fuzzSegment([]byte("a")), 0xFF, 0x00, 0x12)) // garbage tail
	f.Add([]byte{})                                           // empty file
	f.Add([]byte("AFL"))                                      // torn header
	f.Add([]byte("XXXXYYYY"))                                 // bad magic
	f.Add(fuzzSegment(bytes.Repeat([]byte{7}, 300)))          // larger record
	tornLen := fuzzSegment()
	tornLen = append(tornLen, 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0) // huge length, no payload
	f.Add(tornLen)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Read-only replay of the damaged journal must not panic; collect
		// what it recovers.
		var before [][]byte
		if err := Replay(dir, func(p []byte) error {
			before = append(before, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("Replay errored on single-segment damage: %v", err)
		}

		j, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("Open failed to recover: %v", err)
		}
		if err := j.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("Append after recovery: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}

		var after [][]byte
		if err := Replay(dir, func(p []byte) error {
			after = append(after, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("Replay after recovery: %v", err)
		}
		if len(after) != len(before)+1 {
			t.Fatalf("recovered %d records + 1 appended, replayed %d", len(before), len(after))
		}
		for i := range before {
			if !bytes.Equal(after[i], before[i]) {
				t.Fatalf("record %d changed across recovery", i)
			}
		}
		if string(after[len(after)-1]) != "post-recovery" {
			t.Fatalf("appended record = %q", after[len(after)-1])
		}
	})
}
