// Package flightlog is a durable append-only journal for the flight data
// path: raw photon events (or any opaque payload) are framed into
// CRC32-checked, length-prefixed records and appended to a sequence of
// segment files. The design goals are the ones a balloon flight imposes:
//
//   - crash safety: power can vanish mid-write, so Open scans the last
//     segment and truncates a torn tail back to the last valid record;
//   - bounded storage: segments rotate by size (and optionally age) and a
//     retention policy deletes the oldest sealed segments;
//   - deterministic replay: the byte stream is a pure function of the
//     appended payload sequence, so replaying a recorded session feeds the
//     downstream trigger pipeline the exact events of the live run.
//
// On-disk layout (little-endian). Each segment file is
//
//	segment := magic("AFLG") version(u16) reserved(u16) record*
//	record  := length(u32) crc32(u32) payload(length bytes)
//
// where crc32 is the IEEE checksum of the payload. A record is valid iff
// its full frame is present and the checksum matches; the first invalid
// frame in the final segment marks the durable end of the journal.
package flightlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// segment framing constants.
var segMagic = [4]byte{'A', 'F', 'L', 'G'}

const (
	// Version of the on-disk segment format.
	Version uint16 = 1
	// headerSize is the fixed segment-file header length.
	headerSize = 8
	// frameSize is the per-record frame overhead (length + crc).
	frameSize = 8
	// MaxRecordBytes bounds a single record payload; a length prefix above
	// it is treated as corruption rather than an allocation request.
	MaxRecordBytes = 1 << 26 // 64 MiB
)

// SyncPolicy selects when appended records are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncNone never fsyncs explicitly; durability is whatever the OS
	// page cache provides. Fastest, loses the tail on power failure.
	SyncNone SyncPolicy = iota
	// SyncInterval fsyncs after every Options.SyncEveryBytes of appended
	// payload — the bounded-loss middle ground a flight recorder runs.
	SyncInterval
	// SyncAlways fsyncs after every record. Slowest, loses nothing.
	SyncAlways
)

// String implements fmt.Stringer for reports and benchmarks.
func (p SyncPolicy) String() string {
	switch p {
	case SyncNone:
		return "none"
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options configures a Journal. The zero value of every field means the
// documented default.
type Options struct {
	// Dir holds the segment files; created if missing.
	Dir string
	// SegmentBytes rotates to a new segment once the current one reaches
	// this size (default 8 MiB).
	SegmentBytes int64
	// SegmentMaxAge rotates a non-empty segment once it has been open this
	// long (0 = no age-based rotation). Age rotation exists so a quiet
	// period still seals (and can ship/compact) recent data.
	SegmentMaxAge time.Duration
	// Sync is the fsync policy (default SyncNone).
	Sync SyncPolicy
	// SyncEveryBytes is the SyncInterval threshold (default 1 MiB).
	SyncEveryBytes int64
	// MaxSegments keeps at most this many segment files, deleting the
	// oldest sealed ones at rotation (0 = keep all).
	MaxSegments int
	// MaxTotalBytes bounds the journal's total on-disk size the same way
	// (0 = unlimited). The active segment is never deleted.
	MaxTotalBytes int64
	// Now supplies the clock for age rotation (nil = time.Now). Tests
	// inject a fake clock; replay never consults it.
	Now func() time.Time
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.SegmentBytes <= 0 {
		out.SegmentBytes = 8 << 20
	}
	if out.SyncEveryBytes <= 0 {
		out.SyncEveryBytes = 1 << 20
	}
	if out.Now == nil {
		out.Now = time.Now
	}
	return out
}

// Stats reports a journal's current shape.
type Stats struct {
	// Segments is the number of live segment files.
	Segments int
	// ActiveSeq is the sequence number of the segment being appended to.
	ActiveSeq uint64
	// ActiveBytes is the size of the active segment.
	ActiveBytes int64
	// TotalBytes is the on-disk size across all live segments.
	TotalBytes int64
	// Appended counts records appended through this handle.
	Appended int64
	// RecoveredTruncation reports how many bytes Open cut from a torn
	// tail (0 for a clean journal).
	RecoveredTruncation int64
}

// Journal is an open, appendable flight journal. All methods are safe for
// concurrent use; records from concurrent Append calls are serialized in
// an unspecified but valid order.
type Journal struct {
	mu        sync.Mutex
	opts      Options
	f         *os.File
	seq       uint64 // active segment sequence number
	segBytes  int64  // bytes written to the active segment
	segBorn   time.Time
	unsynced  int64
	appended  int64
	recovered int64
	closed    bool
}

// Dir returns the journal's directory, as passed to Open.
func (j *Journal) Dir() string { return j.opts.Dir }

// segName formats the file name of segment seq.
func segName(seq uint64) string { return fmt.Sprintf("journal-%08d.flog", seq) }

// listSegments returns the live segment sequence numbers in dir, sorted.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		var seq uint64
		if n, err := fmt.Sscanf(e.Name(), "journal-%d.flog", &seq); err == nil && n == 1 &&
			e.Name() == segName(seq) {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Open creates or resumes the journal in opts.Dir. Resuming scans the last
// segment, truncates anything after the final valid record (the torn tail
// of a crash mid-append), and appends after it.
func Open(opts Options) (*Journal, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("flightlog: Options.Dir required")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	seqs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	j := &Journal{opts: opts, segBorn: opts.Now()}
	if len(seqs) == 0 {
		if err := j.openSegment(1); err != nil {
			return nil, err
		}
		return j, nil
	}

	// Recover the last segment: find the valid prefix and truncate to it.
	last := seqs[len(seqs)-1]
	path := filepath.Join(opts.Dir, segName(last))
	valid, _, err := scanSegment(path, nil)
	if err != nil {
		return nil, fmt.Errorf("flightlog: recovering %s: %w", segName(last), err)
	}
	size := int64(0)
	if fi, err := os.Stat(path); err == nil {
		size = fi.Size()
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if valid < size {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, err
		}
		j.recovered = size - valid
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	j.f, j.seq, j.segBytes = f, last, valid
	if j.segBytes == 0 {
		// Header was torn too; rewrite it so the segment is well-formed.
		if err := j.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// openSegment creates segment seq and makes it active.
func (j *Journal) openSegment(seq uint64) error {
	path := filepath.Join(j.opts.Dir, segName(seq))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	j.f, j.seq, j.segBytes = f, seq, 0
	j.segBorn = j.opts.Now()
	return j.writeHeader()
}

// writeHeader writes the segment header at the current (empty) position.
func (j *Journal) writeHeader() error {
	var hdr [headerSize]byte
	copy(hdr[:4], segMagic[:])
	binary.LittleEndian.PutUint16(hdr[4:6], Version)
	if _, err := j.f.Write(hdr[:]); err != nil {
		return err
	}
	j.segBytes = headerSize
	return nil
}

// Append frames payload into one record and appends it to the active
// segment, rotating and applying retention first if the segment is full.
func (j *Journal) Append(payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return fmt.Errorf("flightlog: record of %d bytes exceeds MaxRecordBytes", len(payload))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("flightlog: append after Close")
	}
	if j.segBytes >= j.opts.SegmentBytes ||
		(j.opts.SegmentMaxAge > 0 && j.segBytes > headerSize &&
			j.opts.Now().Sub(j.segBorn) >= j.opts.SegmentMaxAge) {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	var frame [frameSize]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	if _, err := j.f.Write(frame[:]); err != nil {
		return err
	}
	if _, err := j.f.Write(payload); err != nil {
		return err
	}
	n := int64(frameSize + len(payload))
	j.segBytes += n
	j.appended++
	switch j.opts.Sync {
	case SyncAlways:
		return j.f.Sync()
	case SyncInterval:
		j.unsynced += n
		if j.unsynced >= j.opts.SyncEveryBytes {
			j.unsynced = 0
			return j.f.Sync()
		}
	}
	return nil
}

// rotateLocked seals the active segment, applies retention, and opens the
// next one. Caller holds j.mu.
func (j *Journal) rotateLocked() error {
	if err := j.f.Sync(); err != nil {
		return err
	}
	if err := j.f.Close(); err != nil {
		return err
	}
	if err := j.applyRetentionLocked(); err != nil {
		return err
	}
	j.unsynced = 0
	return j.openSegment(j.seq + 1)
}

// applyRetentionLocked deletes the oldest sealed segments until the
// MaxSegments / MaxTotalBytes limits hold (counting the segment about to
// be created).
func (j *Journal) applyRetentionLocked() error {
	if j.opts.MaxSegments <= 0 && j.opts.MaxTotalBytes <= 0 {
		return nil
	}
	seqs, err := listSegments(j.opts.Dir)
	if err != nil {
		return err
	}
	var total int64
	sizes := make(map[uint64]int64, len(seqs))
	for _, s := range seqs {
		fi, err := os.Stat(filepath.Join(j.opts.Dir, segName(s)))
		if err != nil {
			return err
		}
		sizes[s] = fi.Size()
		total += fi.Size()
	}
	for len(seqs) > 1 &&
		((j.opts.MaxSegments > 0 && len(seqs)+1 > j.opts.MaxSegments) ||
			(j.opts.MaxTotalBytes > 0 && total > j.opts.MaxTotalBytes)) {
		oldest := seqs[0]
		if err := os.Remove(filepath.Join(j.opts.Dir, segName(oldest))); err != nil {
			return err
		}
		total -= sizes[oldest]
		seqs = seqs[1:]
	}
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.unsynced = 0
	return j.f.Sync()
}

// Close syncs and closes the active segment. The journal can be reopened
// with Open; Append after Close errors.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// Stats returns the journal's current shape.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Stats{
		ActiveSeq:           j.seq,
		ActiveBytes:         j.segBytes,
		Appended:            j.appended,
		RecoveredTruncation: j.recovered,
	}
	seqs, err := listSegments(j.opts.Dir)
	if err != nil {
		return st
	}
	st.Segments = len(seqs)
	for _, s := range seqs {
		if fi, err := os.Stat(filepath.Join(j.opts.Dir, segName(s))); err == nil {
			st.TotalBytes += fi.Size()
		}
	}
	return st
}

// scanSegment reads one segment file, calling fn (when non-nil) with each
// valid payload, and returns the byte offset of the end of the valid
// prefix. A missing/short/corrupt header yields validBytes 0. Scanning
// stops without error at the first torn or corrupt frame — distinguishing
// "crash tail" from "bit rot" is the caller's policy.
func scanSegment(path string, fn func(payload []byte) error) (validBytes int64, records int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	return scanSegmentBytes(data, fn)
}

// validHeader reports whether data starts with a well-formed segment header.
func validHeader(data []byte) bool {
	return len(data) >= headerSize && [4]byte(data[0:4]) == segMagic &&
		binary.LittleEndian.Uint16(data[4:6]) == Version
}

// scanSegmentBytes is scanSegment over an in-memory segment image.
func scanSegmentBytes(data []byte, fn func(payload []byte) error) (validBytes int64, records int, err error) {
	if !validHeader(data) {
		return 0, 0, nil
	}
	off := int64(headerSize)
	for {
		rest := data[off:]
		if len(rest) < frameSize {
			return off, records, nil
		}
		n := int64(binary.LittleEndian.Uint32(rest[0:4]))
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if n > MaxRecordBytes || int64(len(rest)) < frameSize+n {
			return off, records, nil
		}
		payload := rest[frameSize : frameSize+n]
		if crc32.ChecksumIEEE(payload) != crc {
			return off, records, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, records, err
			}
		}
		off += frameSize + n
		records++
	}
}

// ErrCorrupt reports CRC/framing corruption strictly before the journal's
// durable end (i.e. not a recoverable torn tail).
var ErrCorrupt = errors.New("flightlog: corrupt record before journal end")

// ReplayStats reports what a replay actually read — in particular whether
// the journal ended in a torn tail, so consumers (the multi-detector merge,
// the HTTP replay endpoint) can surface the truncation instead of silently
// treating a crash-damaged source as complete.
type ReplayStats struct {
	// Records is the number of valid records delivered.
	Records int
	// TruncatedBytes counts bytes after the last valid record of the final
	// segment (0 for a journal that ends cleanly on a record boundary).
	TruncatedBytes int64
}

// Replay reads every record of the journal in dir, in append order,
// calling fn with each payload. The payload slice is only valid during the
// call. A torn tail in the final segment is tolerated (the scan stops
// there, exactly as Open would truncate); an invalid prefix in any earlier
// segment returns ErrCorrupt, since records after it are unreachable in a
// pure append-order replay. fn errors abort the replay.
func Replay(dir string, fn func(payload []byte) error) error {
	_, err := ReplayWithStats(dir, fn)
	return err
}

// ReplayWithStats is Replay, additionally reporting how many records were
// delivered and how many trailing bytes a torn tail cost. The stats are
// valid even when the replay aborts with an error.
func ReplayWithStats(dir string, fn func(payload []byte) error) (ReplayStats, error) {
	var st ReplayStats
	seqs, err := listSegments(dir)
	if err != nil {
		return st, err
	}
	for i, seq := range seqs {
		path := filepath.Join(dir, segName(seq))
		valid, records, err := scanSegment(path, fn)
		st.Records += records
		if err != nil {
			return st, err
		}
		fi, err := os.Stat(path)
		if err != nil {
			return st, err
		}
		if valid < fi.Size() {
			if i < len(seqs)-1 {
				return st, fmt.Errorf("%w: %s at offset %d", ErrCorrupt, segName(seq), valid)
			}
			st.TruncatedBytes = fi.Size() - valid
		}
	}
	return st, nil
}

// Iter streams a journal's records pull-style: one segment is held in
// memory at a time, so memory use is bounded by SegmentBytes no matter how
// long the journal is. The k-way merge uses one Iter per source so it can
// interleave sources by event time instead of draining each journal whole.
type Iter struct {
	dir     string
	seqs    []uint64
	seg     int      // next segment index to load
	pending [][]byte // remaining records of the loaded segment
	stats   ReplayStats
	err     error
}

// NewIter opens a record iterator over the journal in dir.
func NewIter(dir string) (*Iter, error) {
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	return &Iter{dir: dir, seqs: seqs}, nil
}

// Next returns the next record payload (owned by the caller), io.EOF at the
// durable end of the journal, or ErrCorrupt for damage strictly before it.
// A torn final-segment tail ends the iteration cleanly and is reported in
// Stats, mirroring Replay.
func (it *Iter) Next() ([]byte, error) {
	for {
		if it.err != nil {
			return nil, it.err
		}
		if len(it.pending) > 0 {
			p := it.pending[0]
			it.pending = it.pending[1:]
			it.stats.Records++
			return p, nil
		}
		if it.seg >= len(it.seqs) {
			it.err = io.EOF
			return nil, io.EOF
		}
		path := filepath.Join(it.dir, segName(it.seqs[it.seg]))
		it.seg++
		valid, _, err := scanSegment(path, func(payload []byte) error {
			it.pending = append(it.pending, append([]byte(nil), payload...))
			return nil
		})
		if err != nil {
			it.err = err
			return nil, err
		}
		fi, err := os.Stat(path)
		if err != nil {
			it.err = err
			return nil, err
		}
		if valid < fi.Size() {
			if it.seg < len(it.seqs) {
				it.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, filepath.Base(path), valid)
				// Records scanned from the damaged segment are unreachable in
				// append order; drop them.
				it.pending = nil
				return nil, it.err
			}
			it.stats.TruncatedBytes = fi.Size() - valid
		}
	}
}

// Stats reports what the iterator has read so far; TruncatedBytes is final
// once Next has returned io.EOF.
func (it *Iter) Stats() ReplayStats { return it.stats }

// ScanStream parses data as the concatenation of one or more journal
// segment files — the body format of the adaptserve replay endpoint, where
// a client ships `cat journal-*.flog` — calling fn with every valid record
// payload in order. A torn tail after the last valid record is tolerated
// and counted; bytes at a segment boundary that are neither a segment
// header nor a valid frame end the scan the same way. Data that does not
// begin with a segment header is an error, not a truncation.
func ScanStream(data []byte, fn func(payload []byte) error) (ReplayStats, error) {
	var st ReplayStats
	if !validHeader(data) {
		return st, errors.New("flightlog: body is not a flight-journal segment stream")
	}
	off := int64(0)
	for off < int64(len(data)) {
		if !validHeader(data[off:]) {
			st.TruncatedBytes = int64(len(data)) - off
			return st, nil
		}
		valid, records, err := scanSegmentBytes(data[off:], fn)
		st.Records += records
		if err != nil {
			return st, err
		}
		// valid is always ≥ headerSize here (the header was just checked), so
		// the scan makes progress every iteration; the next loop turn either
		// finds another segment header at off or counts the rest as tail.
		off += valid
	}
	return st, nil
}

// Count returns the number of valid records in the journal at dir.
func Count(dir string) (int, error) {
	n := 0
	err := Replay(dir, func([]byte) error { n++; return nil })
	return n, err
}
