package flightlog

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// iterAll drains an Iter, returning the payloads and the terminal error.
func iterAll(t *testing.T, dir string) ([][]byte, ReplayStats, error) {
	t.Helper()
	it, err := NewIter(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	for {
		p, err := it.Next()
		if err != nil {
			return out, it.Stats(), err
		}
		out = append(out, p)
	}
}

func TestIterMatchesReplay(t *testing.T) {
	dir := t.TempDir()
	want := testPayloads(300)
	// Small segments so the iterator crosses several files.
	appendAll(t, Options{Dir: dir, SegmentBytes: 2048}, want)

	got, st, err := iterAll(t, dir)
	if !errors.Is(err, io.EOF) {
		t.Fatalf("terminal error %v, want io.EOF", err)
	}
	if len(got) != len(want) || st.Records != len(want) {
		t.Fatalf("iterated %d records (stats %d), want %d", len(got), st.Records, len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if st.TruncatedBytes != 0 {
		t.Fatalf("clean journal reports %d truncated bytes", st.TruncatedBytes)
	}
}

func TestIterSurfacesTornTail(t *testing.T) {
	dir := t.TempDir()
	want := testPayloads(50)
	appendAll(t, Options{Dir: dir}, want)
	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.flog"))
	fi, err := os.Stat(segs[len(segs)-1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[len(segs)-1], fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	got, st, err := iterAll(t, dir)
	if !errors.Is(err, io.EOF) {
		t.Fatalf("torn tail must end iteration cleanly, got %v", err)
	}
	if len(got) != len(want)-1 {
		t.Fatalf("iterated %d records, want %d (last record torn)", len(got), len(want)-1)
	}
	if st.TruncatedBytes == 0 {
		t.Fatal("torn tail not reported in stats")
	}

	// ReplayWithStats agrees with the iterator.
	rst, err := ReplayWithStats(dir, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if rst != st {
		t.Fatalf("ReplayWithStats %+v != Iter stats %+v", rst, st)
	}
}

func TestIterCorruptMiddleSegmentErrors(t *testing.T) {
	dir := t.TempDir()
	appendAll(t, Options{Dir: dir, SegmentBytes: 1024}, testPayloads(200))
	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.flog"))
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	// Damage a middle segment's tail: records beyond it are unreachable in
	// append order, so this must be corruption, not truncation.
	fi, err := os.Stat(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[1], fi.Size()-2); err != nil {
		t.Fatal(err)
	}
	_, _, err = iterAll(t, dir)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-journal damage returned %v, want ErrCorrupt", err)
	}
}

func TestScanStreamConcatenatedSegments(t *testing.T) {
	dir := t.TempDir()
	want := testPayloads(120)
	appendAll(t, Options{Dir: dir, SegmentBytes: 2048}, want)
	segs, _ := filepath.Glob(filepath.Join(dir, "journal-*.flog"))
	if len(segs) < 2 {
		t.Fatalf("want ≥2 segments, got %d", len(segs))
	}
	var body []byte
	for _, seg := range segs {
		b, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		body = append(body, b...)
	}

	var got [][]byte
	st, err := ScanStream(body, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != len(want) || len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", st.Records, len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if st.TruncatedBytes != 0 {
		t.Fatalf("clean stream reports %d truncated bytes", st.TruncatedBytes)
	}

	// A torn tail on the concatenation is tolerated and counted.
	st2, err := ScanStream(body[:len(body)-4], func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st2.Records != len(want)-1 || st2.TruncatedBytes == 0 {
		t.Fatalf("torn stream: %d records, %d truncated bytes", st2.Records, st2.TruncatedBytes)
	}

	// A body that is not a journal at all is an error, not a truncation.
	if _, err := ScanStream([]byte("definitely not a journal"), func([]byte) error { return nil }); err == nil {
		t.Fatal("garbage body accepted")
	}
}
