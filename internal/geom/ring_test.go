package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRingPointOnSurface(t *testing.T) {
	f := func(ax, ay, az, rawEta, phi float64) bool {
		a := Vec{ax, ay, az}
		if !isFinite(a) || a.Norm() < 1e-6 || math.IsNaN(rawEta) || math.IsNaN(phi) || math.IsInf(rawEta, 0) || math.IsInf(phi, 0) {
			return true // skip degenerate inputs
		}
		eta := math.Mod(rawEta, 1) // in (-1, 1)
		r := Ring{Axis: a.Unit(), Eta: eta, DEta: 0.01}
		p := r.Point(phi)
		return p.IsUnit(1e-9) && math.Abs(p.Dot(r.Axis)-eta) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func isFinite(v Vec) bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}

func TestRingResidualAndPull(t *testing.T) {
	r := Ring{Axis: Vec{0, 0, 1}, Eta: 0.5, DEta: 0.1}
	s := FromSpherical(math.Acos(0.5), 1.0) // exactly on the ring
	if got := r.Residual(s); math.Abs(got) > 1e-12 {
		t.Errorf("Residual on surface = %v", got)
	}
	zenith := Vec{0, 0, 1}
	if got := r.Residual(zenith); !almost(got, 0.5, tol) {
		t.Errorf("Residual at zenith = %v, want 0.5", got)
	}
	if got := r.Pull(zenith); !almost(got, 5, tol) {
		t.Errorf("Pull at zenith = %v, want 5", got)
	}
	if !r.Contains(s, 1) {
		t.Error("Contains false on surface")
	}
	if r.Contains(zenith, 3) {
		t.Error("Contains true 5 sigma away")
	}
}

func TestRingEtaClamping(t *testing.T) {
	r := Ring{Axis: Vec{0, 0, 1}, Eta: 1.5, DEta: 0.1}
	p := r.Point(0.7)
	if p.Sub(Vec{0, 0, 1}).Norm() > 1e-12 {
		t.Errorf("Point with eta>1 = %v, want axis", p)
	}
	if got := r.OpeningAngle(); got != 0 {
		t.Errorf("OpeningAngle with eta>1 = %v", got)
	}
	r.Eta = -2
	if got := r.OpeningAngle(); !almost(got, math.Pi, tol) {
		t.Errorf("OpeningAngle with eta<-1 = %v", got)
	}
}

func TestRingPoints(t *testing.T) {
	r := Ring{Axis: Vec{1, 1, 1}.Unit(), Eta: 0.3, DEta: 0.05}
	pts := r.Points(nil, 8, 0.123)
	if len(pts) != 8 {
		t.Fatalf("Points returned %d, want 8", len(pts))
	}
	for i, p := range pts {
		if math.Abs(p.Dot(r.Axis)-0.3) > 1e-9 {
			t.Errorf("point %d off surface", i)
		}
	}
	// Appending extends rather than overwriting.
	more := r.Points(pts, 4, 0)
	if len(more) != 12 {
		t.Errorf("append-style Points returned %d, want 12", len(more))
	}
	// Distinct azimuths produce distinct points.
	if pts[0].Sub(pts[4]).Norm() < 1e-6 {
		t.Error("uniformly spaced points coincide")
	}
}
