package geom

import "math"

// Ring is the geometric part of a Compton ring: the set of directions s on
// the unit sphere with s·Axis = Eta, thickened by the Gaussian width DEta in
// cosine space. Axis is the unit vector through the first two hits (from the
// second hit toward the first, i.e. pointing back toward the sky).
type Ring struct {
	Axis Vec     // unit vector c
	Eta  float64 // cosine of the ring opening angle, in [-1, 1]
	DEta float64 // 1-sigma Gaussian width of Eta, > 0
}

// Residual returns the signed distance in cosine space between direction s
// and the ring surface: s·Axis − Eta. s must be unit length.
func (r Ring) Residual(s Vec) float64 { return s.Dot(r.Axis) - r.Eta }

// Pull returns Residual(s)/DEta, the residual in units of the ring width.
func (r Ring) Pull(s Vec) float64 { return r.Residual(s) / r.DEta }

// Contains reports whether s lies within k ring widths of the ring surface.
func (r Ring) Contains(s Vec, k float64) bool {
	return math.Abs(r.Pull(s)) <= k
}

// Point returns the direction on the exact ring surface at azimuth phi about
// the ring axis. If |Eta| > 1 it is clamped, collapsing the ring to the axis
// (or its negation).
func (r Ring) Point(phi float64) Vec {
	eta := Clamp(r.Eta, -1, 1)
	return ConeDirection(r.Axis, math.Acos(eta), phi)
}

// Points appends n directions uniformly spaced in azimuth around the ring
// surface to dst and returns the extended slice. phase offsets the azimuths,
// which callers use to decorrelate candidate sets across rings.
func (r Ring) Points(dst []Vec, n int, phase float64) []Vec {
	for i := 0; i < n; i++ {
		dst = append(dst, r.Point(phase+2*math.Pi*float64(i)/float64(n)))
	}
	return dst
}

// OpeningAngle returns arccos(Eta) in radians, clamping Eta to [-1, 1].
func (r Ring) OpeningAngle() float64 {
	return math.Acos(Clamp(r.Eta, -1, 1))
}
