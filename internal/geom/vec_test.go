package geom

import (
	"math"
	"testing"
	"testing/quick"
)

const tol = 1e-12

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

// bound maps arbitrary quick-generated floats into a physically plausible
// range, discarding NaN/Inf and extreme magnitudes that overflow float64
// intermediates (detector coordinates are O(10) cm).
func bound(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 1e6)
}

func TestBasicOps(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{-4, 5, 0.5}
	if got := v.Add(w); got != (Vec{-3, 7, 3.5}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec{5, -3, 2.5}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Neg(); got != (Vec{-1, -2, -3}) {
		t.Errorf("Neg = %v", got)
	}
	if got := v.Dot(w); !almost(got, -4+10+1.5, tol) {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Norm2(); !almost(got, 14, tol) {
		t.Errorf("Norm2 = %v", got)
	}
	if got := v.Norm(); !almost(got, math.Sqrt(14), tol) {
		t.Errorf("Norm = %v", got)
	}
	if got := v.Dist(v); got != 0 {
		t.Errorf("Dist(v,v) = %v", got)
	}
}

func TestCrossProperties(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec{bound(ax), bound(ay), bound(az)}
		b := Vec{bound(bx), bound(by), bound(bz)}
		c := a.Cross(b)
		// Orthogonal to both operands (within numeric tolerance scaled to
		// the operand magnitudes).
		scale := (a.Norm() + 1) * (b.Norm() + 1)
		return math.Abs(c.Dot(a)) <= 1e-9*scale*scale && math.Abs(c.Dot(b)) <= 1e-9*scale*scale
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	// Right-handedness on the canonical basis.
	if got := (Vec{1, 0, 0}).Cross(Vec{0, 1, 0}); got != (Vec{0, 0, 1}) {
		t.Errorf("x cross y = %v, want z", got)
	}
}

func TestUnit(t *testing.T) {
	u := Vec{3, 4, 0}.Unit()
	if !almost(u.Norm(), 1, tol) {
		t.Errorf("Unit norm = %v", u.Norm())
	}
	if !u.IsUnit(1e-12) {
		t.Error("IsUnit false for unit vector")
	}
	defer func() {
		if recover() == nil {
			t.Error("Unit of zero vector did not panic")
		}
	}()
	Vec{}.Unit()
}

func TestAngleBetween(t *testing.T) {
	cases := []struct {
		a, b Vec
		want float64
	}{
		{Vec{1, 0, 0}, Vec{1, 0, 0}, 0},
		{Vec{1, 0, 0}, Vec{0, 1, 0}, math.Pi / 2},
		{Vec{1, 0, 0}, Vec{-1, 0, 0}, math.Pi},
		{Vec{1, 0, 0}, Vec{5, 5, 0}, math.Pi / 4},
	}
	for _, c := range cases {
		if got := AngleBetween(c.a, c.b); !almost(got, c.want, 1e-12) {
			t.Errorf("AngleBetween(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// Stability for nearly parallel vectors: acos-based formulas lose
	// precision here; atan2 must not.
	a := Vec{1, 0, 0}
	b := Vec{1, 1e-9, 0}
	if got := AngleBetween(a, b); !almost(got, 1e-9, 1e-15) {
		t.Errorf("near-parallel angle = %v, want 1e-9", got)
	}
}

func TestSphericalRoundTrip(t *testing.T) {
	f := func(rawTheta, rawPhi float64) bool {
		theta := math.Mod(math.Abs(rawTheta), math.Pi)
		phi := math.Mod(rawPhi, math.Pi) // keep away from the ±π seam
		v := FromSpherical(theta, phi)
		if !v.IsUnit(1e-12) {
			return false
		}
		return almost(Polar(v), theta, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if got := Azimuth(Vec{0, 1, 0}); !almost(got, math.Pi/2, tol) {
		t.Errorf("Azimuth(+y) = %v", got)
	}
	if got := Polar(Vec{0, 0, -2}); !almost(got, math.Pi, tol) {
		t.Errorf("Polar(-z) = %v", got)
	}
}

func TestDegRad(t *testing.T) {
	if !almost(Deg(math.Pi), 180, tol) || !almost(Rad(180), math.Pi, tol) {
		t.Error("Deg/Rad conversion wrong")
	}
	if !almost(Rad(Deg(1.234)), 1.234, tol) {
		t.Error("Deg/Rad not inverse")
	}
}

func TestOrthoBasis(t *testing.T) {
	dirs := []Vec{{0, 0, 1}, {1, 0, 0}, {0.99, 0.1, 0}, {1, 1, 1}, {-0.3, 0.2, -0.9}}
	for _, n := range dirs {
		u, w := OrthoBasis(n)
		nu := n.Unit()
		if !u.IsUnit(1e-12) || !w.IsUnit(1e-12) {
			t.Errorf("OrthoBasis(%v): non-unit outputs", n)
		}
		if math.Abs(u.Dot(nu)) > 1e-12 || math.Abs(w.Dot(nu)) > 1e-12 || math.Abs(u.Dot(w)) > 1e-12 {
			t.Errorf("OrthoBasis(%v): not orthogonal", n)
		}
		// Right-handed: u × w = n.
		if u.Cross(w).Sub(nu).Norm() > 1e-12 {
			t.Errorf("OrthoBasis(%v): not right-handed", n)
		}
	}
}

func TestRotateAbout(t *testing.T) {
	axis := Vec{0, 0, 1}
	v := Vec{1, 0, 0}
	got := RotateAbout(v, axis, math.Pi/2)
	if got.Sub(Vec{0, 1, 0}).Norm() > 1e-12 {
		t.Errorf("RotateAbout 90° about z = %v, want (0,1,0)", got)
	}
	// Norm preservation and axis invariance (property).
	f := func(vx, vy, vz, angle float64) bool {
		v := Vec{bound(vx), bound(vy), bound(vz)}
		if math.IsNaN(angle) || math.IsInf(angle, 0) {
			angle = 1
		}
		angle = math.Mod(angle, 2*math.Pi)
		axis := Vec{1, 2, -1}.Unit()
		r := RotateAbout(v, axis, angle)
		return almost(r.Norm(), v.Norm(), 1e-9*(1+v.Norm())) &&
			almost(r.Dot(axis), v.Dot(axis), 1e-9*(1+v.Norm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConeDirection(t *testing.T) {
	axis := Vec{0.3, -0.4, 0.87}.Unit()
	for _, theta := range []float64{0, 0.3, 1.2, math.Pi / 2, 2.8} {
		for _, phi := range []float64{0, 1, 3, 6} {
			d := ConeDirection(axis, theta, phi)
			if !d.IsUnit(1e-12) {
				t.Fatalf("ConeDirection not unit at theta=%v phi=%v", theta, phi)
			}
			if !almost(d.Dot(axis), math.Cos(theta), 1e-12) {
				t.Fatalf("ConeDirection dot = %v, want cos %v", d.Dot(axis), theta)
			}
		}
	}
}

func TestClampAndLerp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp wrong")
	}
	a, b := Vec{0, 0, 0}, Vec{2, 4, 6}
	if got := a.Lerp(b, 0.5); got != (Vec{1, 2, 3}) {
		t.Errorf("Lerp = %v", got)
	}
}

func TestString(t *testing.T) {
	if s := (Vec{1, 2, 3}).String(); s == "" {
		t.Error("empty String()")
	}
}
