// Package geom provides the small amount of 3-D vector and spherical
// geometry needed by the ADAPT reconstruction and localization pipeline:
// vectors, rotations, angular separations, orthonormal frames, and sampling
// of points on a Compton ring.
//
// All angles are in radians unless a function name says otherwise. Directions
// are represented as unit 3-vectors; callers are expected to normalize unless
// the function documents that it normalizes for them.
package geom

import (
	"fmt"
	"math"
)

// Vec is a 3-vector in detector coordinates. X and Y span the tile plane;
// +Z points up, out of the top of the instrument toward the sky.
type Vec struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns k*v.
func (v Vec) Scale(k float64) Vec { return Vec{k * v.X, k * v.Y, k * v.Z} }

// Neg returns -v.
func (v Vec) Neg() Vec { return Vec{-v.X, -v.Y, -v.Z} }

// Dot returns the inner product v·w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec) Cross(w Vec) Vec {
	return Vec{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length |v|.
func (v Vec) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns |v|².
func (v Vec) Norm2() float64 { return v.Dot(v) }

// Unit returns v/|v|. It panics on the zero vector, which always indicates a
// logic error upstream (a degenerate event should have been filtered).
// Components are pre-scaled by the largest magnitude so that |v|² cannot
// overflow or underflow for any finite non-zero input.
func (v Vec) Unit() Vec {
	m := math.Max(math.Abs(v.X), math.Max(math.Abs(v.Y), math.Abs(v.Z)))
	if m == 0 {
		panic("geom: Unit of zero vector")
	}
	s := v.Scale(1 / m)
	return s.Scale(1 / s.Norm())
}

// IsUnit reports whether |v| is within tol of 1.
func (v Vec) IsUnit(tol float64) bool {
	return math.Abs(v.Norm()-1) <= tol
}

// Dist returns the Euclidean distance |v-w|.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Norm() }

// String implements fmt.Stringer.
func (v Vec) String() string {
	return fmt.Sprintf("(%.4g, %.4g, %.4g)", v.X, v.Y, v.Z)
}

// Lerp returns (1-t)*v + t*w.
func (v Vec) Lerp(w Vec, t float64) Vec {
	return v.Scale(1 - t).Add(w.Scale(t))
}

// AngleBetween returns the angle in [0, π] between directions v and w.
// Both inputs must be non-zero; they need not be unit length.
// The implementation uses atan2 of the cross/dot pair, which is numerically
// stable for nearly parallel and nearly antiparallel vectors (unlike acos of
// the normalized dot product).
func AngleBetween(v, w Vec) float64 {
	return math.Atan2(v.Cross(w).Norm(), v.Dot(w))
}

// Clamp returns x limited to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// FromSpherical returns the unit vector at polar angle theta (from +Z) and
// azimuth phi (from +X toward +Y).
func FromSpherical(theta, phi float64) Vec {
	st, ct := math.Sincos(theta)
	sp, cp := math.Sincos(phi)
	return Vec{st * cp, st * sp, ct}
}

// Polar returns the polar angle in [0, π] of direction v measured from +Z.
// v need not be unit length.
func Polar(v Vec) float64 {
	return math.Atan2(math.Hypot(v.X, v.Y), v.Z)
}

// Azimuth returns the azimuth in (-π, π] of direction v measured from +X.
func Azimuth(v Vec) float64 {
	return math.Atan2(v.Y, v.X)
}

// Deg converts radians to degrees.
func Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Rad converts degrees to radians.
func Rad(deg float64) float64 { return deg * math.Pi / 180 }

// OrthoBasis returns two unit vectors u, w such that {u, w, n.Unit()} is a
// right-handed orthonormal basis. n must be non-zero.
func OrthoBasis(n Vec) (u, w Vec) {
	n = n.Unit()
	// Pick the coordinate axis least aligned with n to avoid degeneracy.
	ref := Vec{1, 0, 0}
	if math.Abs(n.X) > 0.9 {
		ref = Vec{0, 1, 0}
	}
	u = ref.Cross(n).Unit()
	w = n.Cross(u)
	return u, w
}

// RotateAbout rotates v by angle about the unit axis using Rodrigues'
// formula. axis must be unit length.
func RotateAbout(v, axis Vec, angle float64) Vec {
	s, c := math.Sincos(angle)
	return v.Scale(c).
		Add(axis.Cross(v).Scale(s)).
		Add(axis.Scale(axis.Dot(v) * (1 - c)))
}

// ConeDirection returns the unit vector obtained by tilting axis (unit) by
// opening angle theta, at azimuth phi about the axis. The returned vector d
// satisfies d·axis = cos(theta).
func ConeDirection(axis Vec, theta, phi float64) Vec {
	u, w := OrthoBasis(axis)
	st, ct := math.Sincos(theta)
	sp, cp := math.Sincos(phi)
	return axis.Unit().Scale(ct).Add(u.Scale(st * cp)).Add(w.Scale(st * sp))
}
