package background

import (
	"math"
	"testing"

	"repro/internal/detector"
	"repro/internal/xrand"
)

func TestSampleDirectionMixture(t *testing.T) {
	m := DefaultModel()
	rng := xrand.New(1)
	n := 50000
	up := 0
	for i := 0; i < n; i++ {
		d := m.SampleDirection(rng)
		if !d.IsUnit(1e-9) {
			t.Fatal("direction not unit")
		}
		if d.Z > 0 {
			up++
		}
	}
	frac := float64(up) / float64(n)
	if math.Abs(frac-m.AlbedoFraction) > 0.01 {
		t.Errorf("upward fraction %v, want %v", frac, m.AlbedoFraction)
	}
}

func TestSimulateLabelsAndWindow(t *testing.T) {
	m := DefaultModel()
	m.RatePerSecond = 3000 // keep the test fast
	cfg := detector.DefaultConfig()
	rng := xrand.New(2)
	evs := m.Simulate(&cfg, 0.5, rng)
	if len(evs) == 0 {
		t.Fatal("no background events")
	}
	for _, ev := range evs {
		if ev.Source != detector.SourceBackground {
			t.Fatal("background event mislabeled")
		}
		if ev.ArrivalTime < 0 || ev.ArrivalTime >= 0.5 {
			t.Fatalf("arrival %v outside window", ev.ArrivalTime)
		}
	}
}

func TestSimulateRateScaling(t *testing.T) {
	m := DefaultModel()
	m.RatePerSecond = 4000
	cfg := detector.DefaultConfig()
	n1 := len(m.Simulate(&cfg, 1, xrand.New(3)))
	m.RatePerSecond = 16000
	n4 := len(m.Simulate(&cfg, 1, xrand.New(3)))
	if n4 < 3*n1 {
		t.Errorf("4x rate gave %d vs %d events", n4, n1)
	}
}

// TestCalibration documents the background:source ring budget the
// experiments rely on (paper §II: localization typically receives 2–3× as
// many background as GRB Compton rings in a short-burst window). The test
// asserts the simulated event ratio stays in a regime that produces that
// ring ratio downstream.
func TestCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check is statistical")
	}
	m := DefaultModel()
	cfg := detector.DefaultConfig()
	rng := xrand.New(4)
	bkg := len(m.Simulate(&cfg, 1, rng))
	src := len(detector.SimulateBurst(&cfg, detector.Burst{Fluence: 1, PolarDeg: 0}, rng))
	ratio := float64(bkg) / float64(src)
	// Event-level ratio ~4-5 corresponds to ring-level 2–3x after the
	// reconstruction filters (background events are softer and reconstruct
	// less often).
	if ratio < 3 || ratio > 7 {
		t.Errorf("background/source event ratio %v outside calibrated band", ratio)
	}
}
