// Package background models the diffuse MeV background radiation that
// dominates ADAPT's event stream at balloon altitude (paper §II, Fig. 3).
//
// The paper uses the atmospheric background models of Chen et al. (ICRC
// 2023); those spectra and angular distributions are not public, so this
// package substitutes a parametric model that preserves the properties the
// localization pipeline and the background network are sensitive to:
//
//   - a steeper (power-law) spectrum than the burst's Band spectrum;
//   - arrival directions dominated by upward-moving atmospheric albedo from
//     below, plus a diffuse downward component — in particular, NOT
//     consistent with any single sky direction; and
//   - a Poisson event rate calibrated so localization sees roughly 2–3×
//     as many background as source Compton rings for a 1 MeV/cm² burst
//     (paper §II: "2–3× as many Compton rings from background particles").
package background

import (
	"math"

	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/spectrum"
	"repro/internal/xrand"
)

// Model describes the background environment for one exposure.
type Model struct {
	// RatePerSecond is the expected number of background particles thrown at
	// the detector aperture per second of exposure. The default is
	// calibrated (see DefaultModel) so that a 1-second exposure yields
	// ~2.5× as many reconstructed background rings as source rings from a
	// 1 MeV/cm² normally-incident burst.
	RatePerSecond float64
	// AlbedoFraction is the fraction of particles arriving from below
	// (upward-moving atmospheric albedo); the rest arrive as a diffuse
	// downward/sideways flux.
	AlbedoFraction float64
	// Spec is the particle energy spectrum; nil means the default power law
	// with index −1.75 over the simulation band.
	Spec spectrum.Spectrum
}

// DefaultModel returns the calibrated background environment used by the
// experiments. The rate was tuned against detector.DefaultConfig() and the
// default Band spectrum; see the calibration test in this package.
func DefaultModel() Model {
	return Model{
		RatePerSecond:  32000,
		AlbedoFraction: 0.65,
		Spec:           spectrum.NewPowerLaw(-1.75, 0.030, 30.0),
	}
}

// SampleDirection draws a particle travel direction. Albedo particles move
// upward with a cosine-law angle about +Z; diffuse particles move downward
// with a cosine-law angle about −Z, with a wide sideways tail.
func (m Model) SampleDirection(rng *xrand.RNG) geom.Vec {
	if rng.Bool(m.AlbedoFraction) {
		// Upward-moving: polar angle of travel measured from +Z.
		theta := rng.CosineLawAngle()
		phi := rng.Uniform(0, 2*math.Pi)
		return geom.FromSpherical(theta, phi)
	}
	// Downward diffuse: travel direction in the lower hemisphere.
	theta := math.Pi - rng.CosineLawAngle()
	phi := rng.Uniform(0, 2*math.Pi)
	return geom.FromSpherical(theta, phi)
}

// Simulate generates the background events for an exposure of the given
// duration in seconds. Arrival times are uniform over the window.
func (m Model) Simulate(cfg *detector.Config, duration float64, rng *xrand.RNG) []*detector.Event {
	spec := m.Spec
	if spec == nil {
		spec = spectrum.NewPowerLaw(-1.75, 0.030, 30.0)
	}
	n := rng.Poisson(m.RatePerSecond * duration)
	events := make([]*detector.Event, 0, n/8)
	for i := 0; i < n; i++ {
		dir := m.SampleDirection(rng)
		ev := detector.ThrowPhoton(cfg, dir, spec.Sample(rng), rng)
		if ev == nil {
			continue
		}
		ev.Source = detector.SourceBackground
		ev.ArrivalTime = rng.Uniform(0, duration)
		events = append(events, ev)
	}
	return events
}
