package downlink

import (
	"fmt"

	"repro/internal/obs"
)

// message is one enqueued payload, fragmented lazily into chunks.
type message struct {
	class      Class
	id         uint32
	payload    []byte
	enqueuedAt float64
	nextChunk  int // index of the next un-transmitted chunk
	total      int // chunk count
}

// Scheduler is the flight-side egress queue: four strict-priority classes
// of messages, fragmented into chunks on demand. Priority is re-evaluated
// at every chunk boundary, so a message enqueued in a higher class
// preempts a lower-class message mid-flight — its remaining chunks simply
// wait. The scheduler itself is time-free; pacing (token bucket, contact
// windows) and reliability (ARQ) belong to the Session driving it.
//
// Scheduler is not safe for concurrent use: like the stream processor's
// trigger state, it is owned by a single driving goroutine.
type Scheduler struct {
	chunkBytes int
	queues     [NumClasses][]*message
	nextMsgID  [NumClasses]uint32
	nextSeq    uint32
	metrics    *obs.Registry
}

// NewScheduler returns a scheduler fragmenting payloads into chunks of at
// most chunkBytes (0 = the 1024-byte default).
func NewScheduler(chunkBytes int, metrics *obs.Registry) *Scheduler {
	if chunkBytes <= 0 {
		chunkBytes = 1024
	}
	if chunkBytes > MaxChunkPayload {
		chunkBytes = MaxChunkPayload
	}
	return &Scheduler{chunkBytes: chunkBytes, metrics: metrics}
}

// Enqueue appends a payload to its class queue at event time t, returning
// the per-class message ID. Empty payloads are legal (a single empty
// chunk). Payloads larger than 65535 chunks are rejected.
func (s *Scheduler) Enqueue(t float64, class Class, payload []byte) (uint32, error) {
	if class >= NumClasses {
		return 0, fmt.Errorf("downlink: unknown class %d", class)
	}
	total := (len(payload) + s.chunkBytes - 1) / s.chunkBytes
	if total == 0 {
		total = 1
	}
	if total > 0xFFFF {
		return 0, fmt.Errorf("downlink: payload of %d bytes needs %d chunks (limit 65535)", len(payload), total)
	}
	id := s.nextMsgID[class]
	s.nextMsgID[class]++
	s.queues[class] = append(s.queues[class], &message{
		class:      class,
		id:         id,
		payload:    payload,
		enqueuedAt: t,
		total:      total,
	})
	s.metrics.Gauge(GaugeQueuePrefix + "_" + class.String()).Set(float64(len(s.queues[class])))
	return id, nil
}

// NextChunk pops the next chunk to transmit under strict class priority,
// assigning it the next link sequence number. It returns false when every
// queue is empty.
func (s *Scheduler) NextChunk() (*Chunk, float64, bool) {
	for class := Class(0); class < NumClasses; class++ {
		q := s.queues[class]
		if len(q) == 0 {
			continue
		}
		m := q[0]
		lo := m.nextChunk * s.chunkBytes
		hi := min(lo+s.chunkBytes, len(m.payload))
		c := &Chunk{
			Class:   m.class,
			MsgID:   m.id,
			Index:   uint16(m.nextChunk),
			Total:   uint16(m.total),
			Seq:     s.nextSeq,
			Payload: m.payload[lo:hi],
		}
		s.nextSeq++
		m.nextChunk++
		if m.nextChunk == m.total {
			s.queues[class] = q[1:]
			s.metrics.Gauge(GaugeQueuePrefix + "_" + class.String()).Set(float64(len(s.queues[class])))
		}
		return c, m.enqueuedAt, true
	}
	return nil, 0, false
}

// Pending reports whether any chunk remains to transmit.
func (s *Scheduler) Pending() bool {
	for _, q := range s.queues {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// PendingAbove reports whether any chunk of class strictly higher priority
// than class remains queued.
func (s *Scheduler) PendingAbove(class Class) bool {
	for c := Class(0); c < class; c++ {
		if len(s.queues[c]) > 0 {
			return true
		}
	}
	return false
}

// QueueDepth returns the number of messages waiting in class c.
func (s *Scheduler) QueueDepth(c Class) int { return len(s.queues[c]) }

// PendingBytes returns the not-yet-transmitted payload bytes across all
// classes.
func (s *Scheduler) PendingBytes() int {
	n := 0
	for _, q := range s.queues {
		for _, m := range q {
			n += len(m.payload) - min(m.nextChunk*s.chunkBytes, len(m.payload))
		}
	}
	return n
}
