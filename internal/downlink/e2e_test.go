package downlink

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/background"
	"repro/internal/detector"
	"repro/internal/flightlog"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// burstSession simulates a flight session with a real burst on top of
// background, mirroring the stream package's test fixture.
func burstSession(t *testing.T, seed uint64) (events []*detector.Event, meanRate float64) {
	t.Helper()
	det := detector.DefaultConfig()
	bg := background.DefaultModel()
	rng := xrand.New(seed)
	meanRate = float64(len(bg.Simulate(&det, 1.0, rng.Split(0xCA1))))
	events = bg.Simulate(&det, 3.0, rng)
	for _, ev := range detector.SimulateBurst(&det, detector.Burst{Fluence: 2.0, PolarDeg: 20}, rng) {
		ev.ArrivalTime += 1.2
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].ArrivalTime < events[j].ArrivalTime
	})
	return events, meanRate
}

// drainAlerts runs events through a stream processor and collects alerts.
func drainAlerts(cfg stream.Config, events []*detector.Event) []stream.Record {
	p := stream.New(cfg)
	done := make(chan []stream.Record)
	go func() {
		var out []stream.Record
		for a := range p.Alerts() {
			out = append(out, a.Record())
		}
		done <- out
	}()
	for _, ev := range events {
		p.Ingest(ev)
	}
	p.Close()
	return <-done
}

// journalBytes concatenates a journal directory's segments in order.
func journalBytes(t *testing.T, dir string) []byte {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.flog"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	sort.Strings(segs)
	var all []byte
	for _, seg := range segs {
		b, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
	}
	return all
}

// TestJournalDownlinkReplayBitwise is the full mission loop: a live flight
// session journals every admitted event; the journal is batched through
// the delta codec and downlinked over a 10% lossy, reordering link; the
// ground reassembles a byte-identical journal; and replaying that journal
// through a fresh stream processor reproduces the live alert records
// exactly. Loss on the wire must be invisible end to end.
func TestJournalDownlinkReplayBitwise(t *testing.T) {
	events, meanRate := burstSession(t, 7)
	liveDir := t.TempDir()
	j, err := flightlog.Open(flightlog.Options{Dir: liveDir, SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.DefaultConfig(meanRate)
	cfg.Seed = 42
	cfg.Journal = j
	live := drainAlerts(cfg, events)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if len(live) == 0 {
		t.Fatal("live session produced no alerts")
	}

	// Flight side: batch the journal records through the delta codec and
	// enqueue as journal-class backfill, one message per batch.
	var records [][]byte
	if err := flightlog.Replay(liveDir, func(p []byte) error {
		records = append(records, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(records) != len(events) {
		t.Fatalf("journal has %d records, want %d", len(records), len(events))
	}

	groundDir := t.TempDir()
	g, err := flightlog.Open(flightlog.Options{Dir: groundDir, SegmentBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var downErr error
	sess, err := NewSession(Config{
		BudgetBytesPerSec: 256 << 10,
		Seed:              1234,
		Loss:              LossProfile{DropProb: 0.10, ReorderProb: 0.25, ReorderDelaySec: 0.3},
		OnMessage: func(class Class, _ uint32, payload []byte, _ float64) {
			if class != ClassJournal || downErr != nil {
				return
			}
			recs, err := DecodeRecords(payload)
			if err != nil {
				downErr = err
				return
			}
			for _, rec := range recs {
				if err := g.Append(rec); err != nil {
					downErr = err
					return
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const batchSize = 512
	for lo := 0; lo < len(records); lo += batchSize {
		batch := records[lo:min(lo+batchSize, len(records))]
		enc, err := EncodeRecords(batch, CodecOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sess.Enqueue(ClassJournal, enc); err != nil {
			t.Fatal(err)
		}
	}
	if !sess.Flush(3600) {
		t.Fatal("downlink did not drain")
	}
	if downErr != nil {
		t.Fatal(downErr)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if st := sess.Stats(); st.Retransmits == 0 {
		t.Fatal("lossy downlink needed no retransmits")
	}

	// The reassembled journal must be byte-identical to the onboard one.
	if !bytes.Equal(journalBytes(t, liveDir), journalBytes(t, groundDir)) {
		t.Fatal("ground journal differs from onboard journal")
	}

	// And replaying it must reproduce the live alerts bitwise, regardless
	// of worker count.
	for _, workers := range []int{1, 4} {
		rcfg := cfg
		rcfg.Journal = nil
		rcfg.Workers = workers
		p := stream.New(rcfg)
		done := make(chan []stream.Record)
		go func() {
			var out []stream.Record
			for a := range p.Alerts() {
				out = append(out, a.Record())
			}
			done <- out
		}()
		if _, err := stream.ReplayJournal(groundDir, p); err != nil {
			t.Fatal(err)
		}
		replayed := <-done
		if len(replayed) != len(live) {
			t.Fatalf("workers=%d: replay produced %d alerts, live %d", workers, len(replayed), len(live))
		}
		for i := range live {
			if replayed[i] != live[i] {
				t.Errorf("workers=%d alert %d: replayed record differs from live", workers, i)
			}
		}
	}
}
