package downlink

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Wire format (all integers little-endian), following the evio/flightlog/
// skymap framing idiom: ASCII magic, version word, trailing CRC-32/IEEE
// over everything before it. Two frame kinds share the 8-byte prelude:
//
//	prelude := magic "ADLK"(4) version(u16) type(u8) class(u8)
//
//	data  := prelude msgID(u32) chunkIdx(u16) nChunks(u16) seq(u32)
//	         payloadLen(u16) payload crc32(u32)
//	ack   := prelude cumAck(u32) nSack(u16) nNak(u16)
//	         sack(nSack × u32) nak(nNak × u32) crc32(u32)
//
// A data frame's seq is the link-level chunk sequence number, assigned once
// at first transmission and reused verbatim on retransmission, so the
// ground can dedupe and detect gaps. An ack frame's class byte is zero.
// cumAck is the next seq the ground expects (every seq < cumAck received);
// sack lists received seqs beyond the gap, nak lists the missing seqs the
// flight side should retransmit. DecodeFrame accepts exactly the bytes the
// encoders produce — frame type, counts, lengths, and the CRC are all
// checked — which is the property FuzzChunkDecode pins.

// Frame type bytes.
const (
	frameData = 1
	frameAck  = 2
)

// FrameVersion is the wire-format version.
const FrameVersion uint16 = 1

var frameMagic = [4]byte{'A', 'D', 'L', 'K'}

const (
	preludeSize    = 8
	dataHeaderSize = preludeSize + 14 // msgID, chunkIdx, nChunks, seq, payloadLen
	ackHeaderSize  = preludeSize + 8  // cumAck, nSack, nNak
	crcSize        = 4

	// MaxChunkPayload bounds a single chunk's payload so the length field
	// can never describe more than the u16 range minus framing.
	MaxChunkPayload = 60000
	// maxAckList bounds the sack/nak lists an ack frame may carry.
	maxAckList = 512
)

// DataOverhead is the framing cost of one data chunk in bytes.
const DataOverhead = dataHeaderSize + crcSize

// Chunk is one transmitted fragment of a message.
type Chunk struct {
	// Class is the traffic class of the message this chunk belongs to.
	Class Class
	// MsgID numbers messages from 0 within their class, in enqueue order.
	MsgID uint32
	// Index / Total locate the chunk within its message (Index < Total).
	Index, Total uint16
	// Seq is the link-level chunk sequence number, stable across
	// retransmissions.
	Seq uint32
	// Payload is this chunk's fragment of the message payload.
	Payload []byte
}

// FrameSize returns the encoded size of the chunk's data frame.
func (c *Chunk) FrameSize() int { return DataOverhead + len(c.Payload) }

// EncodeFrame serializes the chunk as one data frame.
func (c *Chunk) EncodeFrame() []byte {
	b := make([]byte, 0, c.FrameSize())
	b = append(b, frameMagic[:]...)
	b = binary.LittleEndian.AppendUint16(b, FrameVersion)
	b = append(b, frameData, byte(c.Class))
	b = binary.LittleEndian.AppendUint32(b, c.MsgID)
	b = binary.LittleEndian.AppendUint16(b, c.Index)
	b = binary.LittleEndian.AppendUint16(b, c.Total)
	b = binary.LittleEndian.AppendUint32(b, c.Seq)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(c.Payload)))
	b = append(b, c.Payload...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b
}

// Ack is the ground's selective-repeat control state: cumulative ack plus
// explicit received/missing lists.
type Ack struct {
	// Cum is the next expected seq: every seq < Cum has been received.
	Cum uint32
	// Sack lists received seqs ≥ Cum (ascending, bounded).
	Sack []uint32
	// Nak lists missing seqs in [Cum, highest seen] (ascending, bounded).
	Nak []uint32
}

// FrameSize returns the encoded size of the ack frame.
func (a *Ack) FrameSize() int { return ackHeaderSize + 4*(len(a.Sack)+len(a.Nak)) + crcSize }

// EncodeFrame serializes the ack as one control frame.
func (a *Ack) EncodeFrame() []byte {
	b := make([]byte, 0, a.FrameSize())
	b = append(b, frameMagic[:]...)
	b = binary.LittleEndian.AppendUint16(b, FrameVersion)
	b = append(b, frameAck, 0)
	b = binary.LittleEndian.AppendUint32(b, a.Cum)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(a.Sack)))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(a.Nak)))
	for _, s := range a.Sack {
		b = binary.LittleEndian.AppendUint32(b, s)
	}
	for _, s := range a.Nak {
		b = binary.LittleEndian.AppendUint32(b, s)
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b
}

// Frame is one decoded wire frame: exactly one of Chunk or Ack is non-nil.
type Frame struct {
	Chunk *Chunk
	Ack   *Ack
}

// DecodeFrame parses and fully validates one frame from the start of data,
// returning the frame and its encoded length. Trailing bytes after the
// frame are not an error — frames are streamed back to back in files and
// pipes — but every byte of the frame itself is checked, CRC last.
func DecodeFrame(data []byte) (*Frame, int, error) {
	if len(data) < preludeSize {
		return nil, 0, fmt.Errorf("downlink: frame truncated at %d bytes", len(data))
	}
	if [4]byte(data[0:4]) != frameMagic {
		return nil, 0, fmt.Errorf("downlink: bad frame magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != FrameVersion {
		return nil, 0, fmt.Errorf("downlink: unsupported frame version %d", v)
	}
	typ, class := data[6], data[7]
	switch typ {
	case frameData:
		if class >= NumClasses {
			return nil, 0, fmt.Errorf("downlink: unknown class %d", class)
		}
		if len(data) < dataHeaderSize {
			return nil, 0, fmt.Errorf("downlink: data frame truncated at %d bytes", len(data))
		}
		n := int(binary.LittleEndian.Uint16(data[20:22]))
		if n > MaxChunkPayload {
			return nil, 0, fmt.Errorf("downlink: chunk payload %d exceeds limit", n)
		}
		size := dataHeaderSize + n + crcSize
		if len(data) < size {
			return nil, 0, fmt.Errorf("downlink: data frame needs %d bytes, have %d", size, len(data))
		}
		if err := checkCRC(data[:size]); err != nil {
			return nil, 0, err
		}
		c := &Chunk{
			Class:   Class(class),
			MsgID:   binary.LittleEndian.Uint32(data[8:12]),
			Index:   binary.LittleEndian.Uint16(data[12:14]),
			Total:   binary.LittleEndian.Uint16(data[14:16]),
			Seq:     binary.LittleEndian.Uint32(data[16:20]),
			Payload: append([]byte(nil), data[dataHeaderSize:dataHeaderSize+n]...),
		}
		if c.Total == 0 || c.Index >= c.Total {
			return nil, 0, fmt.Errorf("downlink: chunk %d/%d out of range", c.Index, c.Total)
		}
		return &Frame{Chunk: c}, size, nil
	case frameAck:
		if class != 0 {
			return nil, 0, fmt.Errorf("downlink: ack frame with nonzero class %d", class)
		}
		if len(data) < ackHeaderSize {
			return nil, 0, fmt.Errorf("downlink: ack frame truncated at %d bytes", len(data))
		}
		nSack := int(binary.LittleEndian.Uint16(data[12:14]))
		nNak := int(binary.LittleEndian.Uint16(data[14:16]))
		if nSack > maxAckList || nNak > maxAckList {
			return nil, 0, fmt.Errorf("downlink: ack lists %d+%d exceed limit", nSack, nNak)
		}
		size := ackHeaderSize + 4*(nSack+nNak) + crcSize
		if len(data) < size {
			return nil, 0, fmt.Errorf("downlink: ack frame needs %d bytes, have %d", size, len(data))
		}
		if err := checkCRC(data[:size]); err != nil {
			return nil, 0, err
		}
		a := &Ack{Cum: binary.LittleEndian.Uint32(data[8:12])}
		off := ackHeaderSize
		for i := 0; i < nSack; i++ {
			a.Sack = append(a.Sack, binary.LittleEndian.Uint32(data[off:off+4]))
			off += 4
		}
		for i := 0; i < nNak; i++ {
			a.Nak = append(a.Nak, binary.LittleEndian.Uint32(data[off:off+4]))
			off += 4
		}
		return &Frame{Ack: a}, size, nil
	}
	return nil, 0, fmt.Errorf("downlink: unknown frame type %d", typ)
}

// checkCRC verifies the trailing CRC-32 of a complete frame image.
func checkCRC(frame []byte) error {
	body, want := frame[:len(frame)-crcSize], binary.LittleEndian.Uint32(frame[len(frame)-crcSize:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return fmt.Errorf("downlink: frame CRC mismatch (got %08x, want %08x)", got, want)
	}
	return nil
}

// ScanFrames walks a byte stream of back-to-back frames, calling fn for
// each valid frame. A frame that fails to decode costs a one-byte resync
// scan to the next magic — the receiver's answer to mid-stream corruption —
// and is counted; the final return is (frames delivered, bytes skipped).
func ScanFrames(data []byte, fn func(*Frame)) (frames int, skipped int) {
	off := 0
	for off < len(data) {
		f, n, err := DecodeFrame(data[off:])
		if err == nil {
			fn(f)
			frames++
			off += n
			continue
		}
		// Resync: advance to the next candidate magic strictly after off.
		next := indexMagic(data, off+1)
		if next < 0 {
			skipped += len(data) - off
			break
		}
		skipped += next - off
		off = next
	}
	return frames, skipped
}

// indexMagic returns the offset of the first frame magic at or after from,
// or -1.
func indexMagic(data []byte, from int) int {
	for i := from; i+4 <= len(data); i++ {
		if [4]byte(data[i:i+4]) == frameMagic {
			return i
		}
	}
	return -1
}
