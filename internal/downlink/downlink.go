// Package downlink models the telemetry egress path between the flight
// stack and the ground: the one resource the whole on-board architecture
// exists to conserve. Alerts, sky maps, scorecards, and journal backfill
// are produced on board (internal/stream, internal/skymap, internal/chaos)
// but a balloon or orbital link delivers a few kilobytes per second across
// intermittent contact windows, with drops, reordering, corruption, and
// outages in between. This package makes that link a first-class,
// deterministic subsystem:
//
//   - a Scheduler drains four strict-priority traffic classes
//     (alerts > sky maps > scorecards > journal backfill) through a
//     token-bucket bandwidth budget and contact windows, preempting at
//     chunk boundaries so a fresh alert always jumps a deep backfill queue;
//   - payloads are packed into CRC32-framed, sequence-numbered chunks
//     (frame.go) small enough that one corrupted frame costs one
//     retransmission, not a message;
//   - journal segments ride a delta+varint evio codec (codec.go) that
//     exploits the detector's structure — constant per-axis sigmas,
//     pitch-quantized positions, monotone arrival times — to cut backfill
//     to a measured fraction of raw bytes while reproducing the journal
//     records bitwise;
//   - a Session (session.go) binds the flight transmitter to a ground
//     Reassembler through a LinkEmulator that injects seeded
//     drop/reorder/corruption/outage faults, with a selective-repeat ARQ
//     layer (bounded retransmit window, cumulative ACK + SACK + NAK
//     control frames, RTO backstop) recovering every loss.
//
// Determinism is the same contract the rest of the repo holds: the entire
// link simulation advances on event time with every random draw taken from
// a per-transmission substream of the seeded RNG, so for any (seed, loss
// profile) where the link is not permanently severed, the ground-side
// output — including the reassembled journal — is a byte-exact pure
// function of the inputs, across runs and worker counts.
package downlink

import "fmt"

// Class is a downlink traffic class. Lower values are strictly higher
// priority: the scheduler never sends a chunk of class c while any chunk of
// a class < c is ready.
type Class uint8

const (
	// ClassAlert carries burst alert records — the product the mission
	// exists for; latency-critical.
	ClassAlert Class = iota
	// ClassSkyMap carries encoded ASKM localization payloads
	// (internal/skymap) accompanying alerts.
	ClassSkyMap
	// ClassScorecard carries scorecards and metrics snapshots.
	ClassScorecard
	// ClassJournal carries delta-compressed journal-segment backfill — the
	// bulk class that fills whatever budget the others leave.
	ClassJournal

	// NumClasses is the number of traffic classes.
	NumClasses = 4
)

// String implements fmt.Stringer for reports and metric names.
func (c Class) String() string {
	switch c {
	case ClassAlert:
		return "alert"
	case ClassSkyMap:
		return "skymap"
	case ClassScorecard:
		return "scorecard"
	case ClassJournal:
		return "journal"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Window is a half-open event-time interval [StartSec, EndSec), used both
// for contact windows (when the link can transmit) and outages (when every
// frame in flight is lost).
type Window struct {
	StartSec float64 `json:"start_sec"`
	EndSec   float64 `json:"end_sec"`
}

// contains reports whether t falls inside the window.
func (w Window) contains(t float64) bool { return t >= w.StartSec && t < w.EndSec }

// Metric names published into Config.Metrics. Per-class counters append
// "_" + Class.String().
const (
	CtrBytesPrefix   = "downlink_bytes"       // payload+frame bytes transmitted, per class
	CtrChunksPrefix  = "downlink_chunks"      // chunk transmissions, per class
	CtrRetransPrefix = "downlink_retransmits" // retransmissions, per class
	CtrDropped       = "downlink_frames_dropped"
	CtrCorrupted     = "downlink_frames_corrupted"
	CtrOutageLost    = "downlink_frames_outage_lost"
	CtrAcksSent      = "downlink_acks_sent"
	CtrAcksLost      = "downlink_acks_lost"
	CtrDelivered     = "downlink_messages_delivered"
	GaugeUtilization = "downlink_budget_utilization"
	GaugeQueuePrefix = "downlink_queue_depth" // per class
	StageDeliver     = "downlink_deliver_latency"
)
