package downlink

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/detector"
	"repro/internal/evio"
	"repro/internal/flightlog"
	"repro/internal/geom"
)

// Delta-compressed evio codec for journal-segment backfill.
//
// The flight journal stores one canonical evio blob per admitted event
// (internal/stream), so raw backfill pays the 8-byte evio stream header,
// full float32 hit fields, and an 8-byte float64 arrival time for every
// record. This codec re-encodes a batch of journal records into one
// payload that exploits the structure the detector response imposes:
//
//   - per-hit sigmas are constants of the detector geometry, x/y positions
//     are quantized to the fiber pitch, and SigmaE is (modulo float32
//     rounding) the detector resolution model evaluated at the measured
//     energy — so XOR against the previous value (or the model's
//     prediction) leaves mostly zero bytes;
//   - arrival times are monotone, so consecutive float64 bit patterns are
//     close: the difference of the raw bit patterns is zigzag-varint
//     encoded (bit-exact, unlike a float subtraction);
//   - fields are stored columnar, each float32 field split into four XORed
//     byte planes, so the downstream entropy stage sees long runs of
//     zeros and small per-field alphabets instead of interleaved noise.
//
// The preconditioned stream is then (by default) deflate-compressed.
// Everything is bit-exact: Decode reconstructs each record's event list
// and re-marshals it through evio.Marshal, and Encode falls back to
// storing a record raw whenever the record is not a canonical evio blob,
// so DecodeRecords(EncodeRecords(r)) is byte-identical to r for ANY record
// list. That is the property that lets ground reassembly reproduce the
// onboard journal bitwise. The SigmaE model prediction is a compression
// prior only — a journal written under a non-default detector config still
// round-trips exactly, just with a fatter residual stream.
//
// Batch layout (little-endian):
//
//	batch := magic "ADLC"(4) version(u16) flags(u16) nRecords(uvarint) body
//	body  := dir nhits srcflags arrival planes sigEresid layer
//	         (deflate-compressed as a whole iff flags bit0)
//
//	dir      := uvarint len, then per record:
//	            0x00 nEvents(uvarint) | 0x01 rawLen(uvarint) rawBytes
//	nhits    := uvarint len, then one uvarint per event
//	srcflags := source, flags bytes per event (2·nEvents, unprefixed)
//	arrival  := uvarint len, then one varint per event (bit-pattern delta)
//	planes   := for each float32 field, 4 byte planes of the XOR-against-
//	            previous bit patterns (lengths implied by the counts)
//	sigEresid:= uvarint len, then one uvarint per hit (XOR vs model)
//	layer    := uvarint len, then one uvarint per hit

// CodecVersion is the batch format version.
const CodecVersion uint16 = 2

var codecMagic = [4]byte{'A', 'D', 'L', 'C'}

const (
	codecFlagFlate = 1 << 0

	// MaxBatchRecords bounds a batch so a hostile count varint is rejected
	// before allocation.
	MaxBatchRecords = 1 << 20
	// maxBatchEvents bounds the total events across one batch.
	maxBatchEvents = 1 << 20
	// maxBatchHits bounds the total hits across one batch.
	maxBatchHits = 1 << 24
)

// CodecOptions tunes EncodeRecords. The zero value is the flight default:
// columnar delta preconditioning with a deflate entropy stage.
type CodecOptions struct {
	// NoFlate disables the deflate stage, leaving the pure preconditioned
	// stream (measured separately in EXPERIMENTS.md).
	NoFlate bool
}

// Float32 field columns. Event-level fields come first, hit-level after.
const (
	fTrueSrcX = iota
	fTrueSrcY
	fTrueSrcZ
	fTrueEnergy
	numEventFields
)
const (
	fPosX = numEventFields + iota
	fPosY
	fPosZ
	fHitE
	fSigmaX
	fSigmaY
	fSigmaZ
	numF32Fields
)

// plane32 is a byte-transposed XOR-delta column for one float32 field: the
// bit pattern is XORed against the field's previous value and the four
// result bytes land in four separate planes.
type plane32 struct {
	prev   uint32
	planes [4][]byte
}

func (p *plane32) put(v float64) {
	bits := math.Float32bits(float32(v))
	d := bits ^ p.prev
	p.prev = bits
	p.planes[0] = append(p.planes[0], byte(d))
	p.planes[1] = append(p.planes[1], byte(d>>8))
	p.planes[2] = append(p.planes[2], byte(d>>16))
	p.planes[3] = append(p.planes[3], byte(d>>24))
}

// sigmaEPredictor predicts a hit's reported SigmaE from its measured
// energy using the default detector resolution model — the flight-side
// truth for every journal this repo writes. It is only a prior: the
// residual stream keeps the codec lossless for any input.
var sigmaEModel = detector.DefaultConfig()

func predictSigmaE(e float64) uint32 {
	return math.Float32bits(float32(sigmaEModel.SigmaE(float64(float32(e)))))
}

// EncodeRecords packs a batch of journal record payloads into one
// compressed message payload. The encoding is deterministic and
// losslessly invertible by DecodeRecords for any input.
func EncodeRecords(records [][]byte, opts CodecOptions) ([]byte, error) {
	if len(records) > MaxBatchRecords {
		return nil, fmt.Errorf("downlink: batch of %d records exceeds limit %d", len(records), MaxBatchRecords)
	}
	var dir, nhits, srcflags, arrival, sigEresid, layer bytes.Buffer
	fields := make([]plane32, numF32Fields)
	var scratch [binary.MaxVarintLen64]byte
	putU := func(w *bytes.Buffer, v uint64) {
		w.Write(scratch[:binary.PutUvarint(scratch[:], v)])
	}
	putV := func(w *bytes.Buffer, v int64) {
		w.Write(scratch[:binary.PutVarint(scratch[:], v)])
	}

	var prevArrival uint64
	totalEvents, totalHits := 0, 0
	for _, rec := range records {
		if len(rec) > flightlog.MaxRecordBytes {
			return nil, fmt.Errorf("downlink: record of %d bytes exceeds limit", len(rec))
		}
		events, canonical := canonicalEvents(rec)
		if !canonical || totalEvents+len(events) > maxBatchEvents || totalHits+countHits(events) > maxBatchHits {
			dir.WriteByte(1)
			putU(&dir, uint64(len(rec)))
			dir.Write(rec)
			continue
		}
		dir.WriteByte(0)
		putU(&dir, uint64(len(events)))
		totalEvents += len(events)
		for _, ev := range events {
			putU(&nhits, uint64(len(ev.Hits)))
			srcflags.WriteByte(uint8(ev.Source))
			flagByte := byte(0)
			if ev.FullyAbsorbed {
				flagByte = 1
			}
			srcflags.WriteByte(flagByte)
			fields[fTrueSrcX].put(ev.TrueSource.X)
			fields[fTrueSrcY].put(ev.TrueSource.Y)
			fields[fTrueSrcZ].put(ev.TrueSource.Z)
			fields[fTrueEnergy].put(ev.TrueEnergy)
			bits := math.Float64bits(ev.ArrivalTime)
			putV(&arrival, int64(bits-prevArrival))
			prevArrival = bits
			totalHits += len(ev.Hits)
			for i := range ev.Hits {
				h := &ev.Hits[i]
				fields[fPosX].put(h.Pos.X)
				fields[fPosY].put(h.Pos.Y)
				fields[fPosZ].put(h.Pos.Z)
				fields[fHitE].put(h.E)
				fields[fSigmaX].put(h.SigmaX)
				fields[fSigmaY].put(h.SigmaY)
				fields[fSigmaZ].put(h.SigmaZ)
				putU(&sigEresid, uint64(math.Float32bits(float32(h.SigmaE))^predictSigmaE(h.E)))
				putU(&layer, uint64(uint8(h.Layer)))
			}
		}
	}

	var body bytes.Buffer
	writeStream := func(b *bytes.Buffer) {
		putU(&body, uint64(b.Len()))
		body.Write(b.Bytes())
	}
	writeStream(&dir)
	writeStream(&nhits)
	body.Write(srcflags.Bytes()) // length implied: 2·totalEvents
	writeStream(&arrival)
	for i := range fields {
		for _, pl := range fields[i].planes { // lengths implied by counts
			body.Write(pl)
		}
	}
	writeStream(&sigEresid)
	writeStream(&layer)

	flags := uint16(0)
	payload := body.Bytes()
	if !opts.NoFlate {
		var zb bytes.Buffer
		zw, err := flate.NewWriter(&zb, flate.DefaultCompression)
		if err != nil {
			return nil, err
		}
		if _, err := zw.Write(payload); err != nil {
			return nil, err
		}
		if err := zw.Close(); err != nil {
			return nil, err
		}
		payload = zb.Bytes()
		flags |= codecFlagFlate
	}

	out := make([]byte, 0, 16+len(payload))
	out = append(out, codecMagic[:]...)
	out = binary.LittleEndian.AppendUint16(out, CodecVersion)
	out = binary.LittleEndian.AppendUint16(out, flags)
	out = binary.AppendUvarint(out, uint64(len(records)))
	out = append(out, payload...)
	return out, nil
}

func countHits(events []*detector.Event) int {
	n := 0
	for _, ev := range events {
		n += len(ev.Hits)
	}
	return n
}

// canonicalEvents decodes rec as an evio blob and reports whether
// re-marshaling the decoded events reproduces rec exactly. Only canonical
// records take the delta path; anything else is stored raw, preserving the
// bitwise contract unconditionally.
func canonicalEvents(rec []byte) ([]*detector.Event, bool) {
	events, err := evio.Unmarshal(rec)
	if err != nil {
		return nil, false
	}
	canon, err := evio.Marshal(events)
	if err != nil || !bytes.Equal(canon, rec) {
		return nil, false
	}
	return events, true
}

// DecodeRecords inverts EncodeRecords, reproducing the original record
// payloads byte for byte. It validates every count and length against the
// package limits before allocating, and never panics on hostile input
// (the property FuzzDeltaEvio pins).
func DecodeRecords(data []byte) ([][]byte, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("downlink: codec payload too short (%d bytes)", len(data))
	}
	if [4]byte(data[0:4]) != codecMagic {
		return nil, fmt.Errorf("downlink: bad codec magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:6]); v != CodecVersion {
		return nil, fmt.Errorf("downlink: unsupported codec version %d", v)
	}
	flags := binary.LittleEndian.Uint16(data[6:8])
	if flags&^uint16(codecFlagFlate) != 0 {
		return nil, fmt.Errorf("downlink: reserved codec flags %#x set", flags)
	}
	rest := data[8:]
	nRecords, n := binary.Uvarint(rest)
	if n <= 0 || nRecords > MaxBatchRecords {
		return nil, fmt.Errorf("downlink: bad record count")
	}
	body := rest[n:]
	if flags&codecFlagFlate != 0 {
		// Bound decompression to what the record count could legitimately
		// need, so a zip bomb fails fast instead of allocating.
		limit := int64(nRecords)*int64(flightlog.MaxRecordBytes) + 1
		zr := flate.NewReader(bytes.NewReader(body))
		raw, err := io.ReadAll(io.LimitReader(zr, limit))
		zr.Close()
		if err != nil {
			return nil, fmt.Errorf("downlink: inflate: %w", err)
		}
		body = raw
	}
	return decodeBody(body, int(nRecords))
}

// cursor is a bounds-checked reader over one length-delimited stream.
type cursor struct {
	name string
	b    []byte
	off  int
}

func (c *cursor) byte() (byte, error) {
	if c.off >= len(c.b) {
		return 0, fmt.Errorf("downlink: truncated %s stream at %d", c.name, c.off)
	}
	v := c.b[c.off]
	c.off++
	return v, nil
}

func (c *cursor) take(n int) ([]byte, error) {
	if n < 0 || len(c.b)-c.off < n {
		return nil, fmt.Errorf("downlink: truncated %s stream at %d", c.name, c.off)
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out, nil
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("downlink: bad uvarint in %s stream at %d", c.name, c.off)
	}
	c.off += n
	return v, nil
}

func (c *cursor) varint() (int64, error) {
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		return 0, fmt.Errorf("downlink: bad varint in %s stream at %d", c.name, c.off)
	}
	c.off += n
	return v, nil
}

func (c *cursor) drained() error {
	if c.off != len(c.b) {
		return fmt.Errorf("downlink: %d trailing bytes in %s stream", len(c.b)-c.off, c.name)
	}
	return nil
}

// planeReader undoes plane32: four parallel byte planes XOR-accumulated
// into float32 bit patterns.
type planeReader struct {
	prev   uint32
	planes [4][]byte
	off    int
}

func (p *planeReader) next() float64 {
	d := uint32(p.planes[0][p.off]) |
		uint32(p.planes[1][p.off])<<8 |
		uint32(p.planes[2][p.off])<<16 |
		uint32(p.planes[3][p.off])<<24
	p.off++
	p.prev ^= d
	return float64(math.Float32frombits(p.prev))
}

// decodeBody parses the preconditioned stream bundle back into records.
func decodeBody(body []byte, nRecords int) ([][]byte, error) {
	top := &cursor{name: "body", b: body}
	stream := func(name string) (*cursor, error) {
		ln, err := top.uvarint()
		if err != nil {
			return nil, err
		}
		if ln > uint64(len(top.b)-top.off) {
			return nil, fmt.Errorf("downlink: %s stream of %d bytes exceeds body", name, ln)
		}
		b, err := top.take(int(ln))
		if err != nil {
			return nil, err
		}
		return &cursor{name: name, b: b}, nil
	}

	// Pass 1: the record directory fixes the shape of everything after it.
	dir, err := stream("dir")
	if err != nil {
		return nil, err
	}
	type recMeta struct {
		raw     []byte // nil for delta records
		nEvents int
	}
	metas := make([]recMeta, 0, min(nRecords, 4096))
	totalEvents := 0
	for i := 0; i < nRecords; i++ {
		kind, err := dir.byte()
		if err != nil {
			return nil, err
		}
		switch kind {
		case 1:
			ln, err := dir.uvarint()
			if err != nil {
				return nil, err
			}
			if ln > flightlog.MaxRecordBytes {
				return nil, fmt.Errorf("downlink: raw record of %d bytes exceeds limit", ln)
			}
			raw, err := dir.take(int(ln))
			if err != nil {
				return nil, err
			}
			metas = append(metas, recMeta{raw: raw})
		case 0:
			ne, err := dir.uvarint()
			if err != nil {
				return nil, err
			}
			if totalEvents+int(ne) > maxBatchEvents || ne > maxBatchEvents {
				return nil, fmt.Errorf("downlink: batch events exceed limit")
			}
			totalEvents += int(ne)
			metas = append(metas, recMeta{nEvents: int(ne)})
		default:
			return nil, fmt.Errorf("downlink: unknown record kind %d", kind)
		}
	}
	if err := dir.drained(); err != nil {
		return nil, err
	}

	// Pass 2: hit counts fix the hit-level column sizes.
	nhits, err := stream("nhits")
	if err != nil {
		return nil, err
	}
	hitCounts := make([]int, totalEvents)
	totalHits := 0
	for i := range hitCounts {
		nh, err := nhits.uvarint()
		if err != nil {
			return nil, err
		}
		if nh > math.MaxUint16 || totalHits+int(nh) > maxBatchHits {
			return nil, fmt.Errorf("downlink: batch hits exceed limit")
		}
		hitCounts[i] = int(nh)
		totalHits += int(nh)
	}
	if err := nhits.drained(); err != nil {
		return nil, err
	}

	srcflags, err := top.take(2 * totalEvents)
	if err != nil {
		return nil, err
	}
	arrival, err := stream("arrival")
	if err != nil {
		return nil, err
	}
	fields := make([]planeReader, numF32Fields)
	for i := range fields {
		count := totalEvents
		if i >= numEventFields {
			count = totalHits
		}
		for pl := 0; pl < 4; pl++ {
			b, err := top.take(count)
			if err != nil {
				return nil, fmt.Errorf("downlink: truncated field planes")
			}
			fields[i].planes[pl] = b
		}
	}
	sigEresid, err := stream("sigEresid")
	if err != nil {
		return nil, err
	}
	layer, err := stream("layer")
	if err != nil {
		return nil, err
	}
	if err := top.drained(); err != nil {
		return nil, err
	}

	// Pass 3: reconstruct each record and re-marshal through evio.
	var prevArrival uint64
	evIdx := 0
	records := make([][]byte, 0, len(metas))
	for _, m := range metas {
		if m.raw != nil {
			records = append(records, append([]byte(nil), m.raw...))
			continue
		}
		events := make([]*detector.Event, 0, m.nEvents)
		for e := 0; e < m.nEvents; e++ {
			nh := hitCounts[evIdx]
			ev := &detector.Event{
				Source:        detector.SourceKind(srcflags[2*evIdx]),
				FullyAbsorbed: srcflags[2*evIdx+1]&1 != 0,
				Hits:          make([]detector.Hit, nh),
			}
			ev.TrueSource.X = fields[fTrueSrcX].next()
			ev.TrueSource.Y = fields[fTrueSrcY].next()
			ev.TrueSource.Z = fields[fTrueSrcZ].next()
			ev.TrueEnergy = fields[fTrueEnergy].next()
			d, err := arrival.varint()
			if err != nil {
				return nil, err
			}
			prevArrival += uint64(d)
			ev.ArrivalTime = math.Float64frombits(prevArrival)
			for h := range ev.Hits {
				hit := &ev.Hits[h]
				hit.Pos = geom.Vec{
					X: fields[fPosX].next(),
					Y: fields[fPosY].next(),
					Z: fields[fPosZ].next(),
				}
				hit.E = fields[fHitE].next()
				hit.SigmaX = fields[fSigmaX].next()
				hit.SigmaY = fields[fSigmaY].next()
				hit.SigmaZ = fields[fSigmaZ].next()
				resid, err := sigEresid.uvarint()
				if err != nil {
					return nil, err
				}
				if resid > math.MaxUint32 {
					return nil, fmt.Errorf("downlink: sigmaE residual out of range")
				}
				hit.SigmaE = float64(math.Float32frombits(uint32(resid) ^ predictSigmaE(hit.E)))
				ly, err := layer.uvarint()
				if err != nil {
					return nil, err
				}
				if ly > math.MaxUint8 {
					return nil, fmt.Errorf("downlink: layer %d out of range", ly)
				}
				hit.Layer = int(ly)
			}
			events = append(events, ev)
			evIdx++
		}
		rec, err := evio.Marshal(events)
		if err != nil {
			return nil, err
		}
		records = append(records, rec)
	}
	for _, c := range []*cursor{arrival, sigEresid, layer} {
		if err := c.drained(); err != nil {
			return nil, err
		}
	}
	return records, nil
}
