package downlink

import (
	"bytes"
	"testing"
)

// FuzzChunkDecode hammers the frame decoder with arbitrary bytes. Frames
// cross the lossy link, so the decoder fronts effectively untrusted input:
// it must never panic, and any frame it accepts must re-encode to the
// exact bytes it decoded from (the canonical-form contract the ground
// resync scan relies on).
func FuzzChunkDecode(f *testing.F) {
	f.Add((&Chunk{Class: ClassAlert, MsgID: 1, Index: 0, Total: 2, Seq: 9,
		Payload: []byte("seed payload")}).EncodeFrame())
	f.Add((&Chunk{Class: ClassJournal, Total: 1}).EncodeFrame())
	f.Add((&Ack{Cum: 7, Sack: []uint32{9}, Nak: []uint32{7, 8}}).EncodeFrame())
	f.Add((&Ack{}).EncodeFrame())
	f.Add([]byte("ADLK"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decoded length %d out of range for %d input bytes", n, len(data))
		}
		var enc []byte
		switch {
		case frame.Chunk != nil:
			enc = frame.Chunk.EncodeFrame()
		case frame.Ack != nil:
			enc = frame.Ack.EncodeFrame()
		default:
			t.Fatal("decoded frame is neither chunk nor ack")
		}
		if !bytes.Equal(enc, data[:n]) {
			t.Fatalf("accepted frame is not canonical:\n%x\nvs\n%x", data[:n], enc)
		}
		// The resync scanner must agree with the direct decoder.
		frames, _ := ScanFrames(data[:n], func(*Frame) {})
		if frames != 1 {
			t.Fatalf("ScanFrames found %d frames in one valid frame", frames)
		}
	})
}

// FuzzDeltaEvio hammers the batch codec decoder. Backfill payloads arrive
// through the same lossy link, so DecodeRecords must never panic on
// hostile bytes, and anything it accepts must survive a re-encode/decode
// round trip bitwise (the journal-reproduction contract).
func FuzzDeltaEvio(f *testing.F) {
	for _, opts := range []CodecOptions{{}, {NoFlate: true}} {
		enc, err := EncodeRecords([][]byte{[]byte("raw record"), {}, []byte{0xDE, 0xAD}}, opts)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte("ADLC"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := DecodeRecords(data)
		if err != nil {
			return
		}
		for _, opts := range []CodecOptions{{}, {NoFlate: true}} {
			enc, err := EncodeRecords(records, opts)
			if err != nil {
				t.Fatalf("accepted records do not re-encode: %v", err)
			}
			back, err := DecodeRecords(enc)
			if err != nil {
				t.Fatalf("re-encoded batch does not decode: %v", err)
			}
			if len(back) != len(records) {
				t.Fatalf("round trip changed record count: %d vs %d", len(back), len(records))
			}
			for i := range records {
				if !bytes.Equal(back[i], records[i]) {
					t.Fatalf("record %d not bitwise-stable through round trip", i)
				}
			}
		}
	})
}
