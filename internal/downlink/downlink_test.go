package downlink

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"repro/internal/background"
	"repro/internal/detector"
	"repro/internal/evio"
	"repro/internal/obs"
	"repro/internal/xrand"
)

// quietRecords simulates durSec seconds of quiet-sky background through the
// default detector and marshals each admitted event as one evio journal
// record — the exact shape internal/stream appends during flight.
func quietRecords(t testing.TB, seed uint64, durSec float64) [][]byte {
	t.Helper()
	det := detector.DefaultConfig()
	bg := background.DefaultModel()
	events := bg.Simulate(&det, durSec, xrand.New(seed))
	if len(events) == 0 {
		t.Fatal("background simulation produced no events")
	}
	records := make([][]byte, 0, len(events))
	for _, ev := range events {
		rec, err := evio.Marshal([]*detector.Event{ev})
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, rec)
	}
	return records
}

func TestFrameRoundTrip(t *testing.T) {
	chunk := &Chunk{
		Class:   ClassSkyMap,
		MsgID:   7,
		Index:   2,
		Total:   5,
		Seq:     1234,
		Payload: []byte("downlink payload bytes"),
	}
	enc := chunk.EncodeFrame()
	if len(enc) != chunk.FrameSize() {
		t.Fatalf("frame size %d, FrameSize says %d", len(enc), chunk.FrameSize())
	}
	f, n, err := DecodeFrame(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("decode: %v (n=%d)", err, n)
	}
	if f.Chunk == nil || f.Ack != nil {
		t.Fatal("decoded frame is not a data frame")
	}
	got := f.Chunk
	if got.Class != chunk.Class || got.MsgID != chunk.MsgID || got.Index != chunk.Index ||
		got.Total != chunk.Total || got.Seq != chunk.Seq || !bytes.Equal(got.Payload, chunk.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, chunk)
	}

	ack := &Ack{Cum: 10, Sack: []uint32{12, 14}, Nak: []uint32{10, 11, 13}}
	aenc := ack.EncodeFrame()
	af, an, err := DecodeFrame(aenc)
	if err != nil || an != len(aenc) {
		t.Fatalf("ack decode: %v", err)
	}
	if af.Ack == nil || af.Ack.Cum != 10 || len(af.Ack.Sack) != 2 || len(af.Ack.Nak) != 3 {
		t.Fatalf("ack round trip mismatch: %+v", af.Ack)
	}
}

// TestFrameRejectsEveryBitFlip flips each byte of a valid frame in turn;
// the decoder must reject every mutant (CRC or structural check).
func TestFrameRejectsEveryBitFlip(t *testing.T) {
	enc := (&Chunk{Class: ClassAlert, Total: 1, Seq: 3, Payload: []byte{1, 2, 3}}).EncodeFrame()
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x5A
		if _, _, err := DecodeFrame(mut); err == nil {
			t.Fatalf("byte %d flip accepted", i)
		}
	}
	// Truncation at every length must also fail, never panic.
	for n := 0; n < len(enc); n++ {
		if _, _, err := DecodeFrame(enc[:n]); err == nil {
			t.Fatalf("truncation to %d accepted", n)
		}
	}
}

func TestScanFramesResyncs(t *testing.T) {
	var stream []byte
	want := 3
	for i := 0; i < want; i++ {
		c := &Chunk{Class: ClassJournal, MsgID: uint32(i), Total: 1, Seq: uint32(i),
			Payload: bytes.Repeat([]byte{byte(i)}, 40)}
		if i == 1 {
			stream = append(stream, []byte("garbage!ADLKnoise")...)
		}
		stream = append(stream, c.EncodeFrame()...)
	}
	frames, skipped := ScanFrames(stream, func(*Frame) {})
	if frames != want {
		t.Fatalf("recovered %d frames, want %d", frames, want)
	}
	if skipped == 0 {
		t.Fatal("resync reported no skipped bytes")
	}
}

func TestCodecRoundTripBitwise(t *testing.T) {
	records := quietRecords(t, 3, 2.0)
	// Mix in non-canonical records: raw garbage, an empty record, and a
	// truncated evio blob — the raw fallback must keep all of them bitwise.
	records = append(records, []byte("not evio at all"), []byte{}, records[0][:len(records[0])-3])
	for _, opts := range []CodecOptions{{}, {NoFlate: true}} {
		enc, err := EncodeRecords(records, opts)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeRecords(enc)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if len(dec) != len(records) {
			t.Fatalf("opts %+v: %d records, want %d", opts, len(dec), len(records))
		}
		for i := range records {
			if !bytes.Equal(dec[i], records[i]) {
				t.Fatalf("opts %+v: record %d differs after round trip", opts, i)
			}
		}
	}
}

// TestCodecCompressionRatio pins the acceptance floor: the delta+varint+
// deflate codec must beat 2× on quiet-sky journal segments.
func TestCodecCompressionRatio(t *testing.T) {
	records := quietRecords(t, 5, 4.0)
	raw := 0
	for _, r := range records {
		raw += len(r)
	}
	enc, err := EncodeRecords(records, CodecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(raw) / float64(len(enc))
	t.Logf("codec: %d records, %d raw bytes -> %d encoded (%.2fx)", len(records), raw, len(enc), ratio)
	if ratio < 2.0 {
		t.Fatalf("compression ratio %.2fx below the 2x floor", ratio)
	}
	noflate, err := EncodeRecords(records, CodecOptions{NoFlate: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("codec (delta only): %d bytes (%.2fx)", len(noflate), float64(raw)/float64(len(noflate)))
}

func TestCodecDeterministic(t *testing.T) {
	records := quietRecords(t, 9, 1.0)
	a, err := EncodeRecords(records, CodecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeRecords(records, CodecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("codec output differs between identical encodes")
	}
}

func TestCodecRejectsHostileInput(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("ADLC"),
		append([]byte("ADLC\x01\x00\x00\x00"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01), // huge count
		append([]byte("ADLC\x01\x00\x02\x00"), 0x01),                                                       // reserved flag
		append([]byte("ADLC\x02\x00\x00\x00"), 0x00),                                                       // bad version
	}
	for i, c := range cases {
		if _, err := DecodeRecords(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSchedulerStrictPriorityPreemption(t *testing.T) {
	s := NewScheduler(100, nil)
	if _, err := s.Enqueue(0, ClassJournal, make([]byte, 1000)); err != nil { // 10 chunks
		t.Fatal(err)
	}
	// Drain two journal chunks, then an alert arrives mid-message.
	for i := 0; i < 2; i++ {
		c, _, ok := s.NextChunk()
		if !ok || c.Class != ClassJournal {
			t.Fatalf("chunk %d: %+v", i, c)
		}
	}
	if _, err := s.Enqueue(1, ClassAlert, make([]byte, 150)); err != nil { // 2 chunks
		t.Fatal(err)
	}
	c, _, _ := s.NextChunk()
	if c.Class != ClassAlert || c.Index != 0 {
		t.Fatalf("alert did not preempt: got class %v chunk %d", c.Class, c.Index)
	}
	c, _, _ = s.NextChunk()
	if c.Class != ClassAlert || c.Index != 1 {
		t.Fatalf("second alert chunk: got class %v chunk %d", c.Class, c.Index)
	}
	// Journal resumes exactly where it was preempted.
	c, _, _ = s.NextChunk()
	if c.Class != ClassJournal || c.Index != 2 {
		t.Fatalf("journal did not resume at chunk 2: %+v", c)
	}
	// Seqs are strictly increasing across classes.
	prev := c.Seq
	for {
		c, _, ok := s.NextChunk()
		if !ok {
			break
		}
		if c.Seq <= prev {
			t.Fatalf("seq went backwards: %d after %d", c.Seq, prev)
		}
		prev = c.Seq
	}
	if s.Pending() {
		t.Fatal("scheduler still pending after drain")
	}
}

func TestSchedulerMsgIDsPerClass(t *testing.T) {
	s := NewScheduler(0, nil)
	id0, _ := s.Enqueue(0, ClassAlert, []byte("a"))
	id1, _ := s.Enqueue(0, ClassJournal, []byte("b"))
	id2, _ := s.Enqueue(0, ClassAlert, []byte("c"))
	if id0 != 0 || id1 != 0 || id2 != 1 {
		t.Fatalf("msg ids = %d, %d, %d; want 0, 0, 1", id0, id1, id2)
	}
}

// sessionTraffic is a reproducible mixed-class payload set.
func sessionTraffic(seed uint64) map[Class][][]byte {
	rng := xrand.New(seed)
	mk := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.IntN(256))
		}
		return b
	}
	return map[Class][][]byte{
		ClassAlert:     {mk(300), mk(500)},
		ClassSkyMap:    {mk(4000)},
		ClassScorecard: {mk(900)},
		ClassJournal:   {mk(9000), mk(7000), mk(11000)},
	}
}

// runSession pushes traffic through one session and returns the delivered
// payloads per class plus the final stats.
func runSession(t *testing.T, cfg Config, traffic map[Class][][]byte) (map[Class][][]byte, *Stats) {
	t.Helper()
	got := make(map[Class][][]byte)
	cfg.OnMessage = func(class Class, msgID uint32, payload []byte, _ float64) {
		if int(msgID) != len(got[class]) {
			t.Fatalf("class %v delivered msg %d out of order (have %d)", class, msgID, len(got[class]))
		}
		got[class] = append(got[class], payload)
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := Class(0); c < NumClasses; c++ {
		for _, p := range traffic[c] {
			if err := s.Enqueue(c, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !s.Flush(3600) {
		t.Fatalf("session did not drain: %+v", s.Stats())
	}
	return got, s.Stats()
}

func checkDelivered(t *testing.T, want, got map[Class][][]byte) {
	t.Helper()
	for c := Class(0); c < NumClasses; c++ {
		if len(got[c]) != len(want[c]) {
			t.Fatalf("class %v: delivered %d messages, want %d", c, len(got[c]), len(want[c]))
		}
		for i := range want[c] {
			if !bytes.Equal(got[c][i], want[c][i]) {
				t.Fatalf("class %v message %d differs after downlink", c, i)
			}
		}
	}
}

func TestSessionPerfectLink(t *testing.T) {
	traffic := sessionTraffic(1)
	got, st := runSession(t, Config{BudgetBytesPerSec: 4096, Seed: 1}, traffic)
	checkDelivered(t, traffic, got)
	if st.Retransmits != 0 || st.FramesDropped != 0 {
		t.Fatalf("perfect link retransmitted: %+v", st)
	}
	if st.Ground.Duplicates != 0 {
		t.Fatalf("perfect link produced duplicates: %+v", st.Ground)
	}
	if st.Latency[ClassAlert] == nil || st.Latency[ClassAlert].Count != 2 {
		t.Fatalf("alert latency summary missing: %+v", st.Latency[ClassAlert])
	}
}

// TestSessionLossyBitwise is the tentpole property: under 10% drop plus
// reorder plus corruption, everything still arrives bitwise-intact, with a
// nonzero retransmit count proving the ARQ path actually ran.
func TestSessionLossyBitwise(t *testing.T) {
	loss := LossProfile{DropProb: 0.10, CorruptProb: 0.02, ReorderProb: 0.25, ReorderDelaySec: 0.5}
	traffic := sessionTraffic(2)
	got, st := runSession(t, Config{BudgetBytesPerSec: 8192, Seed: 99, Loss: loss}, traffic)
	checkDelivered(t, traffic, got)
	if st.Retransmits == 0 {
		t.Fatal("lossy link needed no retransmits — emulator not engaged")
	}
	if st.FramesDropped == 0 || st.FramesCorrupted == 0 {
		t.Fatalf("loss profile not exercised: %+v", st)
	}
	if st.Ground.CorruptFrames == 0 {
		t.Fatal("ground saw no corrupt frames despite CorruptProb")
	}
}

// TestSessionDeterministic runs the identical lossy session twice and
// requires byte-identical stats — the chaos scorecard depends on it.
func TestSessionDeterministic(t *testing.T) {
	run := func() ([]byte, map[Class][][]byte) {
		loss := LossProfile{DropProb: 0.15, CorruptProb: 0.03, ReorderProb: 0.3}
		traffic := sessionTraffic(3)
		got, st := runSession(t, Config{BudgetBytesPerSec: 2048, Seed: 7, Loss: loss}, traffic)
		js, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		return js, got
	}
	js1, got1 := run()
	js2, got2 := run()
	if !bytes.Equal(js1, js2) {
		t.Fatalf("stats differ between identical runs:\n%s\n%s", js1, js2)
	}
	for c := Class(0); c < NumClasses; c++ {
		for i := range got1[c] {
			if !bytes.Equal(got1[c][i], got2[c][i]) {
				t.Fatalf("class %v message %d differs between runs", c, i)
			}
		}
	}
}

// TestAlertPreemptsBackfill saturates the journal queue on a slow link and
// requires an alert enqueued later to still arrive within the time its own
// bytes plus one in-flight chunk need — strict priority in action.
func TestAlertPreemptsBackfill(t *testing.T) {
	var alertAt float64 = -1
	cfg := Config{
		BudgetBytesPerSec: 1024,
		ChunkBytes:        256,
		Seed:              11,
		OnMessage: func(class Class, _ uint32, _ []byte, tm float64) {
			if class == ClassAlert {
				alertAt = tm
			}
		},
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 100 KB of backfill: ~100 s of link time at 1 KB/s.
	for i := 0; i < 10; i++ {
		if err := s.Enqueue(ClassJournal, make([]byte, 10000)); err != nil {
			t.Fatal(err)
		}
	}
	s.Advance(5) // backfill is mid-flight
	const alertTime = 5.0
	if err := s.EnqueueAt(alertTime, ClassAlert, make([]byte, 600)); err != nil {
		t.Fatal(err)
	}
	if !s.Flush(3600) {
		t.Fatal("session did not drain")
	}
	if alertAt < 0 {
		t.Fatal("alert never delivered")
	}
	latency := alertAt - alertTime
	// Generous bound: alert bytes + framing + one full chunk already on the
	// wire + RTT + ack interval. Without preemption the alert would wait
	// ~90 s behind the backfill.
	if latency > 5 {
		t.Fatalf("alert latency %.2f s — preemption not working", latency)
	}
	st := s.Stats()
	if st.Latency[ClassAlert].MaxSec != latency {
		t.Fatalf("latency summary %.3f disagrees with observed %.3f", st.Latency[ClassAlert].MaxSec, latency)
	}
}

// TestSessionOutage severs the link mid-transfer; everything lost in the
// outage must be retransmitted after it lifts.
func TestSessionOutage(t *testing.T) {
	loss := LossProfile{Outages: []Window{{StartSec: 1, EndSec: 20}}}
	traffic := sessionTraffic(4)
	got, st := runSession(t, Config{BudgetBytesPerSec: 4096, Seed: 13, Loss: loss}, traffic)
	checkDelivered(t, traffic, got)
	if st.OutageLost == 0 {
		t.Fatal("outage swallowed no frames")
	}
	if st.Retransmits == 0 {
		t.Fatal("no retransmits after outage")
	}
}

// TestContactWindows confirms no transmission happens outside a contact
// window: with one window opening at t=50, nothing is delivered before.
func TestContactWindows(t *testing.T) {
	var firstDelivery float64 = -1
	cfg := Config{
		BudgetBytesPerSec: 65536,
		Windows:           []Window{{StartSec: 50, EndSec: 1e9}},
		Seed:              17,
		OnMessage: func(_ Class, _ uint32, _ []byte, tm float64) {
			if firstDelivery < 0 {
				firstDelivery = tm
			}
		},
	}
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Enqueue(ClassAlert, []byte("burst!")); err != nil {
		t.Fatal(err)
	}
	if !s.Flush(3600) {
		t.Fatal("did not drain")
	}
	if firstDelivery < 50 {
		t.Fatalf("delivery at %.2f s precedes the contact window at 50 s", firstDelivery)
	}
}

func TestSessionRejectsBadConfig(t *testing.T) {
	if _, err := NewSession(Config{}); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := NewSession(Config{BudgetBytesPerSec: 100, Loss: LossProfile{DropProb: 1.0}}); err == nil {
		t.Fatal("certain loss accepted")
	}
	if _, err := NewSession(Config{BudgetBytesPerSec: math.Inf(1)}); err == nil {
		t.Fatal("infinite budget accepted")
	}
}

// TestSessionMetrics spot-checks the obs wiring.
func TestSessionMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	traffic := sessionTraffic(6)
	_, st := runSession(t, Config{BudgetBytesPerSec: 8192, Seed: 23,
		Loss: LossProfile{DropProb: 0.1}, Metrics: reg}, traffic)
	for c := Class(0); c < NumClasses; c++ {
		name := CtrChunksPrefix + "_" + c.String()
		if got := reg.Counter(name).Load(); got != st.ChunksByClass[c] {
			t.Errorf("%s = %d, stats say %d", name, got, st.ChunksByClass[c])
		}
	}
	if reg.Counter(CtrDropped).Load() != st.FramesDropped {
		t.Error("dropped counter disagrees with stats")
	}
	if reg.Counter(CtrDelivered).Load() == 0 {
		t.Error("delivered counter never incremented")
	}
}

// TestReassemblerAckState exercises the SACK/NAK bookkeeping directly.
func TestReassemblerAckState(t *testing.T) {
	r := NewReassembler()
	offer := func(seq uint32) {
		r.Offer(&Chunk{Class: ClassJournal, MsgID: 0, Index: 0, Total: 1, Seq: seq,
			Payload: []byte{byte(seq)}}, 0)
	}
	offer(0)
	offer(1)
	offer(3)
	offer(6)
	a := r.AckState()
	if a.Cum != 2 {
		t.Fatalf("cum = %d, want 2", a.Cum)
	}
	if fmt.Sprint(a.Sack) != "[3 6]" {
		t.Fatalf("sack = %v, want [3 6]", a.Sack)
	}
	if fmt.Sprint(a.Nak) != "[2 4 5]" {
		t.Fatalf("nak = %v, want [2 4 5]", a.Nak)
	}
	// Duplicates below and above cum are both counted, not re-delivered.
	offer(0)
	offer(3)
	if st := r.Stats(); st.Duplicates != 2 {
		t.Fatalf("duplicates = %d, want 2", st.Duplicates)
	}
}
