package downlink

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/xrand"
)

// LossProfile describes the link emulator's fault model. Every decision is
// drawn from a per-transmission substream of the session seed
// (root.Split(txCount), the same discipline internal/chaos uses), so the
// fault sequence is a pure function of (seed, transmission order) — not of
// wall clock or goroutine scheduling.
type LossProfile struct {
	// DropProb is the per-frame loss probability in [0, 1).
	DropProb float64 `json:"drop_prob,omitempty"`
	// CorruptProb flips one byte of the frame with this probability; the
	// receiver's CRC rejects it, so corruption behaves as detected loss.
	CorruptProb float64 `json:"corrupt_prob,omitempty"`
	// ReorderProb delays a frame by an extra ReorderDelaySec·U[0.5,1.5),
	// letting later frames overtake it.
	ReorderProb float64 `json:"reorder_prob,omitempty"`
	// ReorderDelaySec is the extra delay scale (default 0.25 s).
	ReorderDelaySec float64 `json:"reorder_delay_sec,omitempty"`
	// Outages are event-time intervals in which every frame — data and ack
	// alike — is lost.
	Outages []Window `json:"outages,omitempty"`
}

// inOutage reports whether a frame transmitted at t is swallowed.
func (l *LossProfile) inOutage(t float64) bool {
	for _, w := range l.Outages {
		if w.contains(t) {
			return true
		}
	}
	return false
}

// Config assembles a downlink session. NewSession fills zero values with
// the documented defaults.
type Config struct {
	// BudgetBytesPerSec is the downlink bandwidth budget (required > 0).
	BudgetBytesPerSec float64
	// BurstBytes is the token bucket's instantaneous headroom
	// (default 4 full frames).
	BurstBytes int
	// ChunkBytes is the per-chunk payload size (default 1024).
	ChunkBytes int
	// Windows are the contact windows; empty means the link is always up.
	Windows []Window
	// RetransmitWindow bounds outstanding unacked chunks (default 256).
	RetransmitWindow int
	// WindowReserve keeps this many outstanding slots usable only by
	// alert/sky-map chunks, so a saturated backfill window can never block
	// a fresh alert (default 8).
	WindowReserve int
	// AckIntervalSec is the ground's control-frame cadence (default 0.2).
	AckIntervalSec float64
	// RTTSec is the round-trip link latency (default 0.1, half each way).
	RTTSec float64
	// RTOSec retransmits a chunk unacked this long — the backstop for lost
	// control frames (default 4·(AckIntervalSec+RTTSec)).
	RTOSec float64
	// Seed drives the link emulator's fault substreams.
	Seed uint64
	// Loss is the emulated fault model (zero = a perfect link).
	Loss LossProfile
	// OnMessage receives every delivered message in per-class msgID order
	// (nil = collect via the Reassembler only).
	OnMessage func(class Class, msgID uint32, payload []byte, t float64)
	// Metrics receives the downlink counters/gauges (nil = off).
	Metrics *obs.Registry
}

func (c Config) withDefaults() (Config, error) {
	if !(c.BudgetBytesPerSec > 0) || math.IsInf(c.BudgetBytesPerSec, 0) {
		return c, fmt.Errorf("downlink: BudgetBytesPerSec must be positive, got %g", c.BudgetBytesPerSec)
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 1024
	}
	if c.ChunkBytes > MaxChunkPayload {
		c.ChunkBytes = MaxChunkPayload
	}
	if c.BurstBytes <= 0 {
		c.BurstBytes = 4 * (c.ChunkBytes + DataOverhead)
	}
	if c.RetransmitWindow <= 0 {
		c.RetransmitWindow = 256
	}
	if c.WindowReserve <= 0 {
		c.WindowReserve = 8
	}
	if c.WindowReserve >= c.RetransmitWindow {
		c.WindowReserve = c.RetransmitWindow / 2
	}
	if c.AckIntervalSec <= 0 {
		c.AckIntervalSec = 0.2
	}
	if c.RTTSec < 0 {
		c.RTTSec = 0
	}
	if c.RTTSec == 0 {
		c.RTTSec = 0.1
	}
	if c.RTOSec <= 0 {
		c.RTOSec = 4 * (c.AckIntervalSec + c.RTTSec)
	}
	if c.Loss.ReorderDelaySec <= 0 {
		c.Loss.ReorderDelaySec = 0.25
	}
	l := &c.Loss
	if l.DropProb < 0 || l.DropProb >= 1 || l.CorruptProb < 0 || l.CorruptProb >= 1 ||
		l.ReorderProb < 0 || l.ReorderProb > 1 {
		return c, fmt.Errorf("downlink: loss probabilities out of range (drop %g, corrupt %g, reorder %g)",
			l.DropProb, l.CorruptProb, l.ReorderProb)
	}
	return c, nil
}

// Stats is the flight-side accounting for one session. Every field is a
// pure function of (traffic, config, seed).
type Stats struct {
	ChunksSent         int64                `json:"chunks_sent"`
	ChunksByClass      [NumClasses]int64    `json:"chunks_by_class"`
	FrameBytesByClass  [NumClasses]int64    `json:"frame_bytes_by_class"`
	FrameBytesSent     int64                `json:"frame_bytes_sent"`
	Retransmits        int64                `json:"retransmits"`
	RetransmitsByClass [NumClasses]int64    `json:"retransmits_by_class"`
	FramesDropped      int64                `json:"frames_dropped"`
	FramesCorrupted    int64                `json:"frames_corrupted"`
	OutageLost         int64                `json:"outage_lost"`
	AcksSent           int64                `json:"acks_sent"`
	AcksLost           int64                `json:"acks_lost"`
	DeliveredByClass   [NumClasses]int64    `json:"delivered_by_class"`
	PayloadByClass     [NumClasses]int64    `json:"payload_bytes_by_class"`
	ElapsedSec         float64              `json:"elapsed_sec"`
	BudgetUtilization  float64              `json:"budget_utilization"`
	Ground             GroundStats          `json:"ground"`
	Latency            [NumClasses]*Summary `json:"latency_by_class"`
}

// Summary is the percentile summary of one class's enqueue→delivery
// latencies, in event-time seconds.
type Summary struct {
	Count  int     `json:"count"`
	P50Sec float64 `json:"p50_sec"`
	P90Sec float64 `json:"p90_sec"`
	MaxSec float64 `json:"max_sec"`
}

// txChunk is one outstanding (unacked) transmitted chunk.
type txChunk struct {
	chunk      *Chunk
	enqueuedAt float64
	rtoAt      float64
	inRetx     bool
}

// linkEvent is one scheduled future happening on the emulated link.
type linkEvent struct {
	t     float64
	order uint64 // insertion order: deterministic tie-break
	frame []byte // data frame bytes arriving at the ground (possibly corrupted)
	ack   *Ack   // control frame arriving at the flight side
}

// eventHeap orders link events by (time, insertion order).
type eventHeap []*linkEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].order < h[j].order
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*linkEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// Session is a full flight↔ground downlink running in event time: the
// Scheduler's chunks flow through the token bucket, contact windows, and
// the seeded link emulator to the Reassembler, whose ACK/NAK control
// frames flow back through the same faulty link; a selective-repeat ARQ
// layer with an RTO backstop recovers every loss. The caller drives time
// forward with Advance/Enqueue and drains the tail with Flush.
//
// Session is single-threaded by construction — it is a discrete-event
// simulation, so its entire output is deterministic for a given
// (traffic, config, seed).
type Session struct {
	cfg    Config
	now    float64
	sched  *Scheduler
	ground *Reassembler

	outstanding map[uint32]*txChunk
	retxQ       [NumClasses][]uint32

	tokens     float64
	lastRefill float64

	events   eventHeap
	evOrder  uint64
	ackDueAt float64

	enqTimes  map[msgKey]float64
	latencies [NumClasses][]float64

	downRoot, upRoot *xrand.RNG
	txCount, ackNum  uint64

	stats Stats
}

// NewSession validates cfg and returns an idle session at event time 0.
func NewSession(cfg Config) (*Session, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	sort.Slice(cfg.Windows, func(i, j int) bool { return cfg.Windows[i].StartSec < cfg.Windows[j].StartSec })
	root := xrand.New(cfg.Seed)
	s := &Session{
		cfg:         cfg,
		sched:       NewScheduler(cfg.ChunkBytes, cfg.Metrics),
		ground:      NewReassembler(),
		outstanding: make(map[uint32]*txChunk),
		tokens:      float64(cfg.BurstBytes),
		ackDueAt:    math.Inf(1),
		enqTimes:    make(map[msgKey]float64),
		downRoot:    root.Split(0xD0),
		upRoot:      root.Split(0x0B),
	}
	s.ground.OnMessage = s.onDelivered
	return s, nil
}

// Ground returns the session's receiver, for direct stats access.
func (s *Session) Ground() *Reassembler { return s.ground }

// Now returns the session's current event time.
func (s *Session) Now() float64 { return s.now }

// onDelivered is the Reassembler's delivery hook: latency accounting, then
// the caller's hook.
func (s *Session) onDelivered(class Class, msgID uint32, payload []byte, t float64) {
	s.stats.DeliveredByClass[class]++
	s.stats.PayloadByClass[class] += int64(len(payload))
	if te, ok := s.enqTimes[msgKey{class, msgID}]; ok {
		delete(s.enqTimes, msgKey{class, msgID})
		lat := t - te
		s.latencies[class] = append(s.latencies[class], lat)
		s.cfg.Metrics.ObserveStage(StageDeliver, time.Duration(lat*float64(time.Second)))
	}
	s.cfg.Metrics.Counter(CtrDelivered).Inc()
	if s.cfg.OnMessage != nil {
		s.cfg.OnMessage(class, msgID, payload, t)
	}
}

// Enqueue submits a payload at the session's current event time.
func (s *Session) Enqueue(class Class, payload []byte) error {
	return s.EnqueueAt(s.now, class, payload)
}

// EnqueueAt advances the session to event time t, then submits a payload.
// t must not precede the session clock.
func (s *Session) EnqueueAt(t float64, class Class, payload []byte) error {
	if t < s.now {
		return fmt.Errorf("downlink: enqueue at %g before session time %g", t, s.now)
	}
	s.Advance(t)
	id, err := s.sched.Enqueue(t, class, payload)
	if err != nil {
		return err
	}
	s.enqTimes[msgKey{class, id}] = t
	return nil
}

// Advance runs the link simulation forward to event time t.
func (s *Session) Advance(t float64) {
	for {
		tEv := math.Inf(1)
		if len(s.events) > 0 {
			tEv = s.events[0].t
		}
		tAck := s.ackDueAt
		tRto := s.nextRTO()
		tTx := s.nextTxTime()
		tn := math.Min(math.Min(tEv, tAck), math.Min(tRto, tTx))
		if tn > t || math.IsInf(tn, 1) {
			break
		}
		if tn > s.now {
			s.now = tn // the clock must track the processed instant, or the
			// token-debt wait in nextTxTime is computed from a stale time
		}
		// Fixed processing order at equal times: arrivals, ack emission,
		// RTO expiry, then transmission — any fixed order is deterministic.
		switch tn {
		case tEv:
			s.processEvent(heap.Pop(&s.events).(*linkEvent))
		case tAck:
			s.emitAck(tn)
		case tRto:
			s.expireRTO(tn)
		default:
			s.transmit(tn)
		}
	}
	if t > s.now {
		s.now = t
	}
}

// Quiescent reports whether nothing remains in flight anywhere: no queued
// chunks, no unacked chunks, no frames on the wire, no ack pending.
func (s *Session) Quiescent() bool {
	return !s.sched.Pending() && len(s.outstanding) == 0 && len(s.events) == 0 &&
		math.IsInf(s.ackDueAt, 1)
}

// Flush drives the session until it is quiescent or event time reaches
// deadline, returning whether everything was delivered and acked. For any
// loss profile short of a permanently severed link, a large enough
// deadline always drains.
func (s *Session) Flush(deadline float64) bool {
	for !s.Quiescent() {
		tn := s.nextTime()
		if math.IsInf(tn, 1) || tn > deadline {
			s.Advance(deadline)
			break
		}
		s.Advance(tn)
	}
	return s.Quiescent()
}

// nextTime returns the next instant anything happens.
func (s *Session) nextTime() float64 {
	tEv := math.Inf(1)
	if len(s.events) > 0 {
		tEv = s.events[0].t
	}
	return math.Min(math.Min(tEv, s.ackDueAt), math.Min(s.nextRTO(), s.nextTxTime()))
}

// refill advances the token bucket to time t.
func (s *Session) refill(t float64) {
	if t > s.lastRefill {
		s.tokens = math.Min(float64(s.cfg.BurstBytes), s.tokens+(t-s.lastRefill)*s.cfg.BudgetBytesPerSec)
		s.lastRefill = t
	}
}

// windowOpenAt returns the earliest time ≥ t at which a contact window is
// open, or +Inf if none remains.
func (s *Session) windowOpenAt(t float64) float64 {
	if len(s.cfg.Windows) == 0 {
		return t
	}
	for _, w := range s.cfg.Windows {
		if t < w.EndSec {
			return math.Max(t, w.StartSec)
		}
	}
	return math.Inf(1)
}

// nextSendable picks the chunk the flight side would transmit next —
// retransmissions and fresh chunks merged under strict class priority —
// without consuming it. It returns the class, and whether it is a
// retransmission.
func (s *Session) nextSendable() (Class, bool, bool) {
	newOK := func(c Class) bool {
		limit := s.cfg.RetransmitWindow
		if c > ClassSkyMap {
			limit -= s.cfg.WindowReserve
		}
		return len(s.outstanding) < limit
	}
	for c := Class(0); c < NumClasses; c++ {
		s.compactRetx(c)
		if len(s.retxQ[c]) > 0 {
			return c, true, true
		}
		if s.sched.QueueDepth(c) > 0 && newOK(c) {
			return c, false, true
		}
	}
	return 0, false, false
}

// compactRetx drops retx entries that were acked after being queued.
func (s *Session) compactRetx(c Class) {
	q := s.retxQ[c]
	out := q[:0]
	for _, seq := range q {
		if tc, ok := s.outstanding[seq]; ok && tc.inRetx {
			out = append(out, seq)
		}
	}
	s.retxQ[c] = out
}

// nextTxTime returns the earliest time a transmission can happen, or +Inf
// when there is nothing sendable (or no contact window remains).
func (s *Session) nextTxTime() float64 {
	if _, _, ok := s.nextSendable(); !ok {
		return math.Inf(1)
	}
	t := s.now
	// Token debt model: a frame may transmit once the bucket is
	// non-negative and is charged its full size, going into debt — the
	// long-run rate is exactly the budget without per-frame size peeking.
	s.refill(t)
	if s.tokens < 0 {
		t += -s.tokens / s.cfg.BudgetBytesPerSec
	}
	return s.windowOpenAt(t)
}

// nextRTO returns the earliest retransmission-timeout instant.
func (s *Session) nextRTO() float64 {
	t := math.Inf(1)
	for _, tc := range s.outstanding {
		if !tc.inRetx && tc.rtoAt < t {
			t = tc.rtoAt
		}
	}
	return t
}

// expireRTO moves every chunk whose timeout passed into the retransmit
// queue.
func (s *Session) expireRTO(t float64) {
	// Deterministic order: collect and sort by seq.
	var due []uint32
	for seq, tc := range s.outstanding {
		if !tc.inRetx && tc.rtoAt <= t {
			due = append(due, seq)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, seq := range due {
		tc := s.outstanding[seq]
		tc.inRetx = true
		s.retxQ[tc.chunk.Class] = append(s.retxQ[tc.chunk.Class], seq)
	}
}

// transmit sends one chunk at time t through the emulated link.
func (s *Session) transmit(t float64) {
	class, isRetx, ok := s.nextSendable()
	if !ok {
		return
	}
	var tc *txChunk
	if isRetx {
		seq := s.retxQ[class][0]
		s.retxQ[class] = s.retxQ[class][1:]
		tc = s.outstanding[seq]
		tc.inRetx = false
		s.stats.Retransmits++
		s.stats.RetransmitsByClass[class]++
		s.cfg.Metrics.Counter(CtrRetransPrefix + "_" + class.String()).Inc()
	} else {
		c, enqAt, _ := s.sched.NextChunk()
		tc = &txChunk{chunk: c, enqueuedAt: enqAt}
		s.outstanding[c.Seq] = tc
	}
	frame := tc.chunk.EncodeFrame()
	s.refill(t)
	s.tokens -= float64(len(frame))
	tc.rtoAt = t + s.cfg.RTOSec

	s.stats.ChunksSent++
	s.stats.ChunksByClass[class]++
	s.stats.FrameBytesByClass[class] += int64(len(frame))
	s.stats.FrameBytesSent += int64(len(frame))
	s.cfg.Metrics.Counter(CtrChunksPrefix + "_" + class.String()).Inc()
	s.cfg.Metrics.Counter(CtrBytesPrefix + "_" + class.String()).Add(int64(len(frame)))

	s.txCount++
	rng := s.downRoot.Split(s.txCount)
	serial := float64(len(frame)) / s.cfg.BudgetBytesPerSec
	switch {
	case s.cfg.Loss.inOutage(t):
		s.stats.OutageLost++
		s.cfg.Metrics.Counter(CtrOutageLost).Inc()
	case rng.Bool(s.cfg.Loss.DropProb):
		s.stats.FramesDropped++
		s.cfg.Metrics.Counter(CtrDropped).Inc()
	default:
		if rng.Bool(s.cfg.Loss.CorruptProb) {
			frame = append([]byte(nil), frame...)
			frame[rng.IntN(len(frame))] ^= byte(1 + rng.IntN(255))
			s.stats.FramesCorrupted++
			s.cfg.Metrics.Counter(CtrCorrupted).Inc()
		}
		delay := serial + s.cfg.RTTSec/2
		if rng.Bool(s.cfg.Loss.ReorderProb) {
			delay += s.cfg.Loss.ReorderDelaySec * rng.Uniform(0.5, 1.5)
		}
		s.push(&linkEvent{t: t + delay, frame: frame})
	}
}

// push inserts a link event with a deterministic tie-break order.
func (s *Session) push(ev *linkEvent) {
	ev.order = s.evOrder
	s.evOrder++
	heap.Push(&s.events, ev)
}

// processEvent handles one arrival.
func (s *Session) processEvent(ev *linkEvent) {
	switch {
	case ev.frame != nil:
		s.ground.OfferFrame(ev.frame, ev.t)
		if math.IsInf(s.ackDueAt, 1) {
			s.ackDueAt = ev.t + s.cfg.AckIntervalSec
		}
	case ev.ack != nil:
		s.applyAck(ev.ack)
	}
}

// emitAck builds and transmits one ground control frame at time t.
func (s *Session) emitAck(t float64) {
	ack := s.ground.AckState()
	s.stats.AcksSent++
	s.cfg.Metrics.Counter(CtrAcksSent).Inc()
	s.ackNum++
	rng := s.upRoot.Split(s.ackNum)
	lost := s.cfg.Loss.inOutage(t) || rng.Bool(s.cfg.Loss.DropProb) || rng.Bool(s.cfg.Loss.CorruptProb)
	if lost {
		s.stats.AcksLost++
		s.cfg.Metrics.Counter(CtrAcksLost).Inc()
	} else {
		delay := s.cfg.RTTSec / 2
		if rng.Bool(s.cfg.Loss.ReorderProb) {
			delay += s.cfg.Loss.ReorderDelaySec * rng.Uniform(0.5, 1.5)
		}
		s.push(&linkEvent{t: t + delay, ack: &ack})
	}
	// Keep acking while the flight side still has unacked or queued data —
	// in-flight data frames are in outstanding until acked, and the flight
	// RTO regenerates traffic if the last ack of a burst is lost. The ack
	// event just pushed must not count, or the loop self-sustains forever.
	if len(s.outstanding) > 0 || s.sched.Pending() {
		s.ackDueAt = t + s.cfg.AckIntervalSec
	} else {
		s.ackDueAt = math.Inf(1)
	}
}

// applyAck frees acked chunks and queues NAKed ones for retransmission.
func (s *Session) applyAck(a *Ack) {
	for seq := range s.outstanding {
		if seq < a.Cum {
			delete(s.outstanding, seq)
		}
	}
	for _, seq := range a.Sack {
		delete(s.outstanding, seq)
	}
	for _, seq := range a.Nak {
		if tc, ok := s.outstanding[seq]; ok && !tc.inRetx {
			tc.inRetx = true
			s.retxQ[tc.chunk.Class] = append(s.retxQ[tc.chunk.Class], seq)
		}
	}
}

// Stats snapshots the session accounting, including latency summaries and
// the budget utilization over the elapsed event time.
func (s *Session) Stats() *Stats {
	st := s.stats
	st.Ground = s.ground.Stats()
	st.ElapsedSec = s.now
	if s.now > 0 {
		st.BudgetUtilization = float64(st.FrameBytesSent) / (s.now * s.cfg.BudgetBytesPerSec)
	}
	for c := Class(0); c < NumClasses; c++ {
		st.Latency[c] = summarize(s.latencies[c])
	}
	s.cfg.Metrics.Gauge(GaugeUtilization).Set(st.BudgetUtilization)
	return &st
}

// Latencies returns a copy of the enqueue→delivery latencies recorded for
// one class, in delivery order (event-time seconds).
func (s *Session) Latencies(c Class) []float64 {
	return append([]float64(nil), s.latencies[c]...)
}

// summarize computes a percentile summary (nil for an empty sample).
func summarize(lat []float64) *Summary {
	if len(lat) == 0 {
		return nil
	}
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	q := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	return &Summary{
		Count:  len(sorted),
		P50Sec: q(0.50),
		P90Sec: q(0.90),
		MaxSec: sorted[len(sorted)-1],
	}
}
