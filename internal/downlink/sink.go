package downlink

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/flightlog"
)

// DirSink materializes delivered downlink messages as a ground station
// directory, the layout both cmd/adaptlink and adaptstream -downlink emit:
//
//	alerts.jsonl        one alert record per line, in delivery order
//	skymap-NNNN.b64     one encoded sky-map payload per message
//	scorecard-NNNN.json one scorecard per message
//	journal/            reassembled flight journal (delta batches decoded
//	                    back to records and re-journaled via flightlog)
//
// Messages arrive in per-class msgID order (the Reassembler's delivery
// contract), so the reassembled journal's record order — and therefore its
// segment bytes — matches the onboard original exactly.
type DirSink struct {
	dir     string
	alerts  *os.File
	journal *flightlog.Journal
	segment int
	err     error

	// Delivered counts messages accepted per class.
	Delivered [NumClasses]int
	// JournalRecords counts decoded journal records appended.
	JournalRecords int
}

// NewDirSink creates dir (and parents) and returns an empty sink.
// segmentBytes sets the reassembled journal's segment size; it must match
// the onboard journal's for byte-identical segment files (0 = the
// flightlog default).
func NewDirSink(dir string, segmentBytes int) (*DirSink, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirSink{dir: dir, segment: segmentBytes}, nil
}

// OnMessage routes one delivered message to its ground artifact. It has the
// Session/Reassembler OnMessage shape; the first failure latches into Err
// and subsequent messages are dropped.
func (s *DirSink) OnMessage(class Class, msgID uint32, payload []byte, _ float64) {
	if s.err != nil {
		return
	}
	switch class {
	case ClassAlert:
		if s.alerts == nil {
			f, err := os.Create(filepath.Join(s.dir, "alerts.jsonl"))
			if err != nil {
				s.err = err
				return
			}
			s.alerts = f
		}
		if len(payload) == 0 || payload[len(payload)-1] != '\n' {
			payload = append(append([]byte(nil), payload...), '\n')
		}
		_, s.err = s.alerts.Write(payload)
	case ClassSkyMap:
		s.err = os.WriteFile(filepath.Join(s.dir, fmt.Sprintf("skymap-%04d.b64", msgID)), payload, 0o644)
	case ClassScorecard:
		s.err = os.WriteFile(filepath.Join(s.dir, fmt.Sprintf("scorecard-%04d.json", msgID)), payload, 0o644)
	case ClassJournal:
		if s.journal == nil {
			j, err := flightlog.Open(flightlog.Options{
				Dir:          filepath.Join(s.dir, "journal"),
				SegmentBytes: int64(s.segment),
			})
			if err != nil {
				s.err = err
				return
			}
			s.journal = j
		}
		records, err := DecodeRecords(payload)
		if err != nil {
			s.err = fmt.Errorf("downlink: ground decode of journal msg %d: %w", msgID, err)
			return
		}
		for _, rec := range records {
			if err := s.journal.Append(rec); err != nil {
				s.err = err
				return
			}
			s.JournalRecords++
		}
	default:
		s.err = fmt.Errorf("downlink: delivered message of unknown class %d", class)
		return
	}
	if s.err == nil {
		s.Delivered[class]++
	}
}

// Err returns the first failure, if any.
func (s *DirSink) Err() error { return s.err }

// Close flushes and closes the ground artifacts, returning the first error
// seen over the sink's lifetime.
func (s *DirSink) Close() error {
	if s.alerts != nil {
		if err := s.alerts.Close(); err != nil && s.err == nil {
			s.err = err
		}
		s.alerts = nil
	}
	if s.journal != nil {
		if err := s.journal.Close(); err != nil && s.err == nil {
			s.err = err
		}
		s.journal = nil
	}
	return s.err
}
