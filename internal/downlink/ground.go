package downlink

import (
	"sort"
)

// GroundStats is the receiver-side accounting.
type GroundStats struct {
	// FramesReceived counts valid data frames, including duplicates.
	FramesReceived int64
	// Duplicates counts data frames whose seq was already received.
	Duplicates int64
	// CorruptFrames counts frames rejected by CRC/format validation.
	CorruptFrames int64
	// MessagesDelivered counts fully reassembled, in-order deliveries.
	MessagesDelivered int64
	// BytesDelivered sums delivered message payload bytes.
	BytesDelivered int64
	// BytesByClass splits BytesDelivered by traffic class.
	BytesByClass [NumClasses]int64
	// PendingMessages counts messages seen but not yet deliverable
	// (incomplete, or waiting on an earlier message of their class).
	PendingMessages int
}

// msgKey identifies a message across classes.
type msgKey struct {
	class Class
	id    uint32
}

// partialMsg accumulates the chunks of one message.
type partialMsg struct {
	total    int
	received int
	chunks   [][]byte
	// firstSeenAt is the event time of the first chunk's arrival, for
	// latency accounting by the session.
	firstSeenAt float64
}

// Reassembler is the ground half of the downlink: it dedupes and reorders
// chunks, tracks the selective-repeat gap state for ACK/NAK control
// frames, reassembles messages, and delivers each class's messages in
// msgID (enqueue) order — which is what makes the reassembled journal a
// byte-exact reproduction of the onboard append sequence no matter how the
// link scrambled the chunks.
//
// Reassembler is not safe for concurrent use.
type Reassembler struct {
	// OnMessage, when non-nil, receives every delivered message, strictly
	// in per-class msgID order, with the event time of delivery.
	OnMessage func(class Class, msgID uint32, payload []byte, t float64)

	received map[uint32]bool // data seqs seen (valid frames)
	cum      uint32          // next expected seq: all seqs < cum received
	maxSeen  uint32          // highest seq received + 1 (0 = none)

	partial     map[msgKey]*partialMsg
	complete    map[msgKey][]byte
	nextDeliver [NumClasses]uint32
	stats       GroundStats
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{
		received: make(map[uint32]bool),
		partial:  make(map[msgKey]*partialMsg),
		complete: make(map[msgKey][]byte),
	}
}

// OfferFrame decodes one wire frame and offers a data chunk to the
// reassembler. Invalid frames are counted and dropped (the link layer
// retransmits); ack frames are ignored (they belong to the flight side).
func (r *Reassembler) OfferFrame(data []byte, t float64) {
	f, _, err := DecodeFrame(data)
	if err != nil {
		r.stats.CorruptFrames++
		return
	}
	if f.Chunk != nil {
		r.Offer(f.Chunk, t)
	}
}

// Offer accepts one decoded chunk at event time t.
func (r *Reassembler) Offer(c *Chunk, t float64) {
	r.stats.FramesReceived++
	if c.Seq < r.cum || r.received[c.Seq] {
		r.stats.Duplicates++
		return
	}
	r.received[c.Seq] = true
	if c.Seq+1 > r.maxSeen {
		r.maxSeen = c.Seq + 1
	}
	for r.received[r.cum] {
		delete(r.received, r.cum) // retain only the sparse tail
		r.cum++
	}

	key := msgKey{c.Class, c.MsgID}
	if _, done := r.complete[key]; done || c.MsgID < r.nextDeliver[c.Class] {
		return // late duplicate of an already-assembled message
	}
	p := r.partial[key]
	if p == nil {
		p = &partialMsg{total: int(c.Total), chunks: make([][]byte, c.Total), firstSeenAt: t}
		r.partial[key] = p
	}
	if int(c.Total) != p.total || int(c.Index) >= p.total || p.chunks[c.Index] != nil {
		return // inconsistent or duplicate fragment; ignore
	}
	p.chunks[c.Index] = c.Payload
	p.received++
	if p.received < p.total {
		return
	}
	size := 0
	for _, fr := range p.chunks {
		size += len(fr)
	}
	payload := make([]byte, 0, size)
	for _, fr := range p.chunks {
		payload = append(payload, fr...)
	}
	delete(r.partial, key)
	r.complete[key] = payload
	r.deliver(c.Class, t)
}

// deliver flushes the class's contiguous run of completed messages.
func (r *Reassembler) deliver(class Class, t float64) {
	for {
		key := msgKey{class, r.nextDeliver[class]}
		payload, ok := r.complete[key]
		if !ok {
			return
		}
		delete(r.complete, key)
		r.nextDeliver[class]++
		r.stats.MessagesDelivered++
		r.stats.BytesDelivered += int64(len(payload))
		r.stats.BytesByClass[class] += int64(len(payload))
		if r.OnMessage != nil {
			r.OnMessage(class, key.id, payload, t)
		}
	}
}

// AckState snapshots the selective-repeat control state: the cumulative
// ack plus bounded sack (received beyond the gap) and nak (missing below
// the horizon) lists, both ascending.
func (r *Reassembler) AckState() Ack {
	a := Ack{Cum: r.cum}
	for seq := range r.received {
		if seq >= r.cum {
			a.Sack = append(a.Sack, seq)
		}
	}
	sort.Slice(a.Sack, func(i, j int) bool { return a.Sack[i] < a.Sack[j] })
	if len(a.Sack) > maxAckList {
		a.Sack = a.Sack[:maxAckList]
	}
	for seq := r.cum; seq < r.maxSeen && len(a.Nak) < maxAckList; seq++ {
		if !r.received[seq] {
			a.Nak = append(a.Nak, seq)
		}
	}
	return a
}

// Stats returns the receiver-side accounting so far.
func (r *Reassembler) Stats() GroundStats {
	st := r.stats
	st.PendingMessages = len(r.partial) + len(r.complete)
	return st
}
