package models

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/nn"
	"repro/internal/nn/quant"
	"repro/internal/xrand"
)

// QuantMode selects the quantization strategy (§VI lists "a broader range
// of quantization strategies" as future work; this reproduction implements
// the two standard ones).
type QuantMode int

const (
	// ModeQAT is quantization-aware training: observers calibrate, then the
	// network fine-tunes with fake quantization (the paper's §V flow).
	ModeQAT QuantMode = iota
	// ModePTQ is post-training quantization: observers calibrate on the
	// training distribution and the weights convert as-is, with no
	// fine-tuning. Cheaper, usually slightly less accurate.
	ModePTQ
)

// String implements fmt.Stringer.
func (m QuantMode) String() string {
	if m == ModePTQ {
		return "PTQ"
	}
	return "QAT"
}

// QuantizeOptions configures quantization.
type QuantizeOptions struct {
	Seed uint64
	// Mode selects QAT (default) or PTQ.
	Mode QuantMode
	// PerChannel uses one weight scale per output row instead of one per
	// tensor.
	PerChannel bool
	// WarmupEpochs run with fake quantization disabled so the observers see
	// the activation ranges first (PyTorch's observer warm-up).
	WarmupEpochs int
	// QATEpochs of fake-quantized fine-tuning (ignored for ModePTQ).
	QATEpochs int
	// LR for the fine-tune; a fraction of the original training rate.
	LR        float64
	BatchSize int
	Logf      func(format string, args ...any)
}

// DefaultQuantizeOptions returns the settings used by the experiments.
func DefaultQuantizeOptions(seed uint64) QuantizeOptions {
	return QuantizeOptions{
		Seed:         seed,
		WarmupEpochs: 1,
		QATEpochs:    5,
		LR:           5e-4,
		BatchSize:    1024,
	}
}

// QuantizeBackground converts a bundle's background network to INT8 via the
// paper's §V flow: the bundle must hold the layer-swapped (Linear→BN→ReLU)
// architecture; its BN layers are folded into the Linears, the fused
// network is fine-tuned with fake quantization on the bundle's training
// distribution (set), and the result is converted to an integer-only
// inference network.
//
// The returned fused FP32 network is the QAT-trained float model (useful
// for measuring the fusion-only effect); the Int8Net is the deployed model.
func QuantizeBackground(b *Bundle, set *datagen.Set, opts QuantizeOptions) (*quant.Int8Net, *nn.Sequential, error) {
	if !isSwapped(b.Bkg) {
		return nil, nil, fmt.Errorf("models: QuantizeBackground needs the layer-swapped architecture (train with Swapped: true)")
	}
	fused, err := quant.FuseForQuant(b.Bkg)
	if err != nil {
		return nil, nil, fmt.Errorf("models: fuse: %w", err)
	}
	if opts.PerChannel {
		for _, l := range fused.Layers {
			l.(*quant.QATLinear).PerChannel = true
		}
	}

	// Rebuild the (normalized) training data the bundle was fitted on.
	ds := datagen.BackgroundDataset(set, b.WithPolar)
	b.BkgNorm.Apply(ds.X)
	rng := xrand.New(opts.Seed)
	train, val := ds.Split(0.9, rng)

	// Observer warm-up: run with quantization disabled so ranges settle.
	setQATEnabled(fused, false)
	warm := &nn.Trainer{
		Net:       fused,
		Loss:      nn.BCEWithLogits{},
		Opt:       nn.NewSGD(0, 0), // no updates; forward-only epochs
		BatchSize: opts.BatchSize,
		MaxEpochs: maxIntQ(opts.WarmupEpochs, 1),
		Patience:  1 << 30,
		Logf:      nil,
	}
	warm.Fit(train, nil, rng.Split(1))

	setQATEnabled(fused, true)
	if opts.Mode == ModeQAT {
		// QAT fine-tune with the straight-through estimator. PTQ skips
		// this: calibration alone determines the integer model.
		tr := &nn.Trainer{
			Net:       fused,
			Loss:      nn.BCEWithLogits{},
			Opt:       nn.NewSGD(opts.LR, 0.9),
			BatchSize: opts.BatchSize,
			MaxEpochs: opts.QATEpochs,
			Patience:  opts.QATEpochs + 1,
			Logf:      prefixed(opts.Logf, "qat"),
		}
		tr.Fit(train, val, rng.Split(2))
	} else {
		_ = val
	}

	int8net, err := quant.Convert(fused)
	if err != nil {
		return nil, nil, fmt.Errorf("models: convert: %w", err)
	}
	return int8net, fused, nil
}

func setQATEnabled(net *nn.Sequential, enabled bool) {
	for _, l := range net.Layers {
		if q, ok := l.(*quant.QATLinear); ok {
			q.Enabled = enabled
		}
	}
}

func maxIntQ(a, b int) int {
	if a > b {
		return a
	}
	return b
}
