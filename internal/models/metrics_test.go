package models

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/xrand"
)

func TestConfusionMatrix(t *testing.T) {
	var c ConfusionMatrix
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, false) // TN
	c.Add(false, false) // TN
	c.Add(false, true)  // FN
	if c.TP != 1 || c.FP != 1 || c.TN != 2 || c.FN != 1 {
		t.Fatalf("matrix %+v", c)
	}
	if c.Total() != 5 {
		t.Error("Total wrong")
	}
	if math.Abs(c.Accuracy()-0.6) > 1e-12 {
		t.Errorf("Accuracy = %v", c.Accuracy())
	}
	if math.Abs(c.Precision()-0.5) > 1e-12 {
		t.Errorf("Precision = %v", c.Precision())
	}
	if math.Abs(c.Recall()-0.5) > 1e-12 {
		t.Errorf("Recall = %v", c.Recall())
	}
	if math.Abs(c.FalseRejectRate()-1.0/3) > 1e-12 {
		t.Errorf("FalseRejectRate = %v", c.FalseRejectRate())
	}
	var empty ConfusionMatrix
	if empty.Accuracy() != 0 || empty.Precision() != 0 || empty.Recall() != 0 || empty.FalseRejectRate() != 0 {
		t.Error("empty matrix rates should be 0")
	}
}

func TestROCAndAUC(t *testing.T) {
	// Perfect separation → AUC 1.
	probs := []float32{0.9, 0.8, 0.2, 0.1}
	labels := []float32{1, 1, 0, 0}
	if auc := AUC(probs, labels); math.Abs(auc-1) > 1e-12 {
		t.Errorf("perfect AUC = %v", auc)
	}
	// Inverted scores → AUC 0.
	if auc := AUC(probs, []float32{0, 0, 1, 1}); math.Abs(auc) > 1e-12 {
		t.Errorf("inverted AUC = %v", auc)
	}
	// Random scores → AUC ≈ 0.5.
	rng := xrand.New(1)
	n := 20000
	p := make([]float32, n)
	l := make([]float32, n)
	for i := 0; i < n; i++ {
		p[i] = float32(rng.Float64())
		if rng.Bool(0.4) {
			l[i] = 1
		}
	}
	if auc := AUC(p, l); math.Abs(auc-0.5) > 0.02 {
		t.Errorf("random AUC = %v", auc)
	}
	// The curve is monotone and ends at (1,1).
	curve := ROC(probs, labels)
	last := curve[len(curve)-1]
	if last.TPR != 1 || last.FPR != 1 {
		t.Errorf("curve ends at (%v, %v)", last.FPR, last.TPR)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].TPR < curve[i-1].TPR || curve[i].FPR < curve[i-1].FPR {
			t.Fatal("ROC not monotone")
		}
	}
}

func TestConfusionWithThresholds(t *testing.T) {
	probs := []float32{0.9, 0.1, 0.7, 0.3}
	labels := []float32{1, 0, 0, 1}
	polar := []float64{5, 5, 5, 5}
	var thr Thresholds
	for i := range thr.ByBin {
		thr.ByBin[i] = 0.5
	}
	c := Confusion(probs, labels, polar, &thr)
	if c.TP != 1 || c.FP != 1 || c.TN != 1 || c.FN != 1 {
		t.Errorf("confusion %+v", c)
	}
}

func TestReportByBin(t *testing.T) {
	rng := xrand.New(2)
	n := 1000
	probs := make([]float32, n)
	labels := make([]float32, n)
	polar := make([]float64, n)
	for i := 0; i < n; i++ {
		polar[i] = rng.Uniform(0, 90)
		if rng.Bool(0.4) {
			labels[i] = 1
			probs[i] = float32(rng.Gaussian(0.7, 0.1))
		} else {
			probs[i] = float32(rng.Gaussian(0.3, 0.1))
		}
	}
	thr := FitThresholds(probs, labels, polar, 1)
	var buf bytes.Buffer
	rows := ReportByBin(&buf, probs, labels, polar, thr)
	if len(rows) != NumPolarBins {
		t.Fatalf("%d rows", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.N
		if r.N > 0 && r.Matrix.Accuracy() < 0.8 {
			t.Errorf("bin %d accuracy %v on well-separated data", r.Bin, r.Matrix.Accuracy())
		}
	}
	if total != n {
		t.Errorf("rows cover %d of %d samples", total, n)
	}
	if !strings.Contains(buf.String(), "thresh") {
		t.Error("report header missing")
	}
}
