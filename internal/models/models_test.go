package models

import (
	"bytes"
	"testing"

	"repro/internal/datagen"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/xrand"
)

func TestArchitectures(t *testing.T) {
	rng := xrand.New(1)
	bkg := NewBackgroundNet(features.NumFeatures, rng)
	// Blocks: [BN, FC, ReLU]×3 + [BN, FC] = 11 layers.
	if len(bkg.Layers) != 11 {
		t.Errorf("background net has %d layers, want 11", len(bkg.Layers))
	}
	// Output is a single logit.
	out := bkg.Predict(nn.NewTensor(3, features.NumFeatures))
	if out.Rows != 3 || out.Cols != 1 {
		t.Errorf("background output %dx%d", out.Rows, out.Cols)
	}
	// Parameter count sanity: dominated by 13·256 + 256·128 + 128·64 ≈ 44k.
	if n := bkg.NumParams(); n < 40000 || n > 60000 {
		t.Errorf("background net has %d params", n)
	}

	de := NewDEtaNet(features.NumFeatures, rng)
	if n := de.NumParams(); n > 1000 {
		t.Errorf("dEta net has %d params; the paper's is tiny (max width 16)", n)
	}
	if out := de.Predict(nn.NewTensor(2, features.NumFeatures)); out.Cols != 1 {
		t.Error("dEta output not scalar")
	}

	sw := NewBackgroundNetSwapped(features.NumFeatures, rng)
	if _, ok := sw.Layers[0].(*nn.Linear); !ok {
		t.Error("swapped net should start with Linear")
	}
	if _, ok := bkg.Layers[0].(*nn.BatchNorm1D); !ok {
		t.Error("paper net should start with BatchNorm")
	}
	// The swapped order drops the input BatchNorm (13 features x {gamma, beta}).
	if want := bkg.NumParams() - 2*features.NumFeatures; sw.NumParams() != want {
		t.Errorf("swapped has %d params, want %d", sw.NumParams(), want)
	}
}

func TestThresholdFitting(t *testing.T) {
	// Perfectly separable scores: background at 0.9, GRB at 0.1.
	probs := []float32{0.9, 0.9, 0.1, 0.1, 0.85, 0.15}
	labels := []float32{1, 1, 0, 0, 1, 0}
	polar := []float64{5, 5, 5, 5, 5, 5}
	thr := FitThresholds(probs, labels, polar, 1)
	cut := thr.For(5)
	if cut <= 0.15 || cut >= 0.85 {
		t.Errorf("separable threshold %v not in the gap", cut)
	}
	if acc := Accuracy(probs, labels, polar, thr); acc != 1 {
		t.Errorf("separable accuracy %v", acc)
	}
	// Bins without data inherit the global threshold.
	if thr.For(85) != thr.For(5) {
		t.Error("empty bin did not inherit global threshold")
	}
}

func TestThresholdCostAsymmetry(t *testing.T) {
	// Overlapping scores; a higher false-reject cost must push the
	// threshold up (reject less).
	rng := xrand.New(2)
	n := 2000
	probs := make([]float32, n)
	labels := make([]float32, n)
	polar := make([]float64, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			labels[i] = 1
			probs[i] = float32(rng.Gaussian(0.6, 0.15))
		} else {
			probs[i] = float32(rng.Gaussian(0.4, 0.15))
		}
	}
	cheap := FitThresholds(probs, labels, polar, 1)
	costly := FitThresholds(probs, labels, polar, 5)
	if costly.For(0) <= cheap.For(0) {
		t.Errorf("cost 5 threshold %v not above cost 1 threshold %v", costly.For(0), cheap.For(0))
	}
}

func TestBinOf(t *testing.T) {
	if binOf(-5) != 0 || binOf(0) != 0 || binOf(9.99) != 0 {
		t.Error("bin 0 wrong")
	}
	if binOf(45) != 4 || binOf(89) != 8 || binOf(120) != 8 {
		t.Error("bin clamping wrong")
	}
}

// tinySet builds a small training set shared by the training tests.
func tinySet() *datagen.Set {
	cfg := datagen.DefaultConfig(3)
	cfg.BurstsPerAngle = 1
	cfg.PolarAnglesDeg = []float64{0, 40, 80}
	cfg.Fluence = 1.5
	return datagen.Generate(cfg)
}

func TestTrainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains networks")
	}
	set := tinySet()
	opts := DefaultTrainOptions(4)
	opts.MaxEpochs = 3
	opts.BkgLR = 5e-3
	opts.BkgBatch = 512
	b := Train(set, opts)
	if b.Bkg == nil || b.DEta == nil || b.Thr == nil || b.BkgNorm == nil || b.DEtaNorm == nil {
		t.Fatal("incomplete bundle")
	}
	if b.BkgTestAcc < 0.4 {
		t.Errorf("classifier worse than chance: %v", b.BkgTestAcc)
	}
	if b.DEtaScale <= 0 {
		t.Errorf("dEta scale %v", b.DEtaScale)
	}
	if !b.WithPolar {
		t.Error("WithPolar not recorded")
	}

	// Round-trip through the serializer.
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b2, err := LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := nn.NewTensor(4, features.NumFeatures)
	for i := range x.Data {
		x.Data[i] = float32(i%7) - 3
	}
	b.BkgNorm.Apply(x)
	p1 := b.Bkg.PredictProbs(x)
	x2 := nn.NewTensor(4, features.NumFeatures)
	for i := range x2.Data {
		x2.Data[i] = float32(i%7) - 3
	}
	b2.BkgNorm.Apply(x2)
	p2 := b2.Bkg.PredictProbs(x2)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("bundle round-trip changed predictions at %d", i)
		}
	}
	if b2.DEtaScale != b.DEtaScale || b2.Thr.ByBin != b.Thr.ByBin {
		t.Error("bundle metadata lost in round-trip")
	}
}

func TestQuantizeBackgroundRejectsUnswapped(t *testing.T) {
	if testing.Short() {
		t.Skip("trains networks")
	}
	set := tinySet()
	opts := DefaultTrainOptions(5)
	opts.MaxEpochs = 2
	opts.BkgBatch = 512
	b := Train(set, opts) // paper (BN-first) order
	if _, _, err := QuantizeBackground(b, set, DefaultQuantizeOptions(6)); err == nil {
		t.Error("quantizing the unswapped architecture should fail")
	}
}

func TestQuantizeBackgroundFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("trains networks")
	}
	set := tinySet()
	opts := DefaultTrainOptions(7)
	opts.MaxEpochs = 2
	opts.BkgBatch = 512
	opts.Swapped = true
	b := Train(set, opts)
	qopts := DefaultQuantizeOptions(8)
	qopts.QATEpochs = 1
	int8net, fused, err := QuantizeBackground(b, set, qopts)
	if err != nil {
		t.Fatal(err)
	}
	if int8net == nil || fused == nil {
		t.Fatal("nil outputs")
	}
	// INT8 classification should broadly agree with the swapped FP32 net.
	ds := datagen.BackgroundDataset(set, true)
	b.BkgNorm.Apply(ds.X)
	probs := b.Bkg.PredictProbs(ds.X)
	agree := 0
	n := 400
	for i := 0; i < n; i++ {
		if (int8net.Prob(ds.X.Row(i)) > 0.5) == (probs[i] > 0.5) {
			agree++
		}
	}
	if frac := float64(agree) / float64(n); frac < 0.85 {
		t.Errorf("INT8/FP32 agreement only %v", frac)
	}

	// The swapped bundle round-trips with its architecture flag.
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b2, err := LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b2.Bkg.Layers[0].(*nn.Linear); !ok {
		t.Error("swapped architecture lost in serialization")
	}
}

func TestBundleInt8RoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("trains networks")
	}
	set := tinySet()
	opts := DefaultTrainOptions(9)
	opts.MaxEpochs = 2
	opts.BkgBatch = 512
	opts.Swapped = true
	b := Train(set, opts)

	// A bundle without a quantized model round-trips to a nil Int8.
	var buf bytes.Buffer
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	plain, err := LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Int8 != nil {
		t.Fatal("unquantized bundle grew an Int8 model in round-trip")
	}

	qopts := DefaultQuantizeOptions(10)
	qopts.Mode = ModePTQ
	int8net, _, err := QuantizeBackground(b, set, qopts)
	if err != nil {
		t.Fatal(err)
	}
	b.Int8 = int8net

	buf.Reset()
	if err := b.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b2, err := LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Int8 == nil {
		t.Fatal("quantized model lost in round-trip")
	}

	// Integer inference must be bitwise-identical after the gob round-trip,
	// on both the batched path (exercises the re-Prepared fold cache) and
	// the per-row path.
	ds := datagen.BackgroundDataset(set, true)
	b.BkgNorm.Apply(ds.X)
	x := nn.NewTensor(32, ds.X.Cols)
	copy(x.Data, ds.X.Data[:len(x.Data)])
	want := b.Int8.Logits(x)
	got := b2.Int8.Logits(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: restored batched logit %v != original %v", i, got[i], want[i])
		}
		if pr := b2.Int8.Logit(x.Row(i)); pr != want[i] {
			t.Fatalf("row %d: restored per-row logit %v != original %v", i, pr, want[i])
		}
	}
}

func TestDescribeWidths(t *testing.T) {
	if describeWidths("x", 13, []int{2, 1}) != "x: 13→2→1" {
		t.Errorf("describeWidths = %q", describeWidths("x", 13, []int{2, 1}))
	}
}
