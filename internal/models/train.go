package models

import (
	"math"
	"sort"

	"repro/internal/datagen"
	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/nn/quant"
	"repro/internal/xrand"
)

// TrainOptions configures Train. The default hyperparameters are the
// paper's chosen values (§III): background network batch 4096 / lr 5.204e-4,
// dEta network batch 256 / lr 4.375e-3, SGD, up to 120 epochs with early
// stopping.
type TrainOptions struct {
	Seed      uint64
	WithPolar bool
	MaxEpochs int
	Patience  int
	BkgBatch  int
	BkgLR     float64
	DEtaBatch int
	DEtaLR    float64
	Momentum  float64
	// DEtaLoss selects the dEta regression loss; nil means nn.MSE (the
	// paper's ℓ₂). nn.Huber is provided for the robustness ablation.
	DEtaLoss nn.Loss
	// FalseRejectCost weights discarded GRB rings in threshold selection;
	// zero means DefaultFalseRejectCost.
	FalseRejectCost float64
	Logf            func(format string, args ...any)
	// Swapped builds the background net in the fusion-friendly layer order
	// (Linear→BN→ReLU), used as the FP32 starting point for quantization.
	Swapped bool
}

// DefaultTrainOptions returns the paper's hyperparameters with polar-angle
// input enabled.
func DefaultTrainOptions(seed uint64) TrainOptions {
	return TrainOptions{
		Seed:      seed,
		WithPolar: true,
		MaxEpochs: 120,
		Patience:  10,
		BkgBatch:  4096,
		BkgLR:     5.204e-4,
		DEtaBatch: 256,
		DEtaLR:    4.375e-3,
		Momentum:  0.9,
	}
}

// Bundle is the trained model pair plus everything inference needs.
type Bundle struct {
	Bkg       *nn.Sequential
	DEta      *nn.Sequential
	BkgNorm   *features.Normalizer
	DEtaNorm  *features.Normalizer
	Thr       *Thresholds
	WithPolar bool
	// DEtaScale calibrates the network output into a Gaussian width:
	// dη = DEtaScale · exp(prediction). The network regresses ln|Δη|, and
	// for a Gaussian residual the conditional mean of ln|Δη| sits below
	// ln σ (E[ln|x/σ|] ≈ −0.635), so the raw exp(prediction) is an
	// overconfident width. The scale is fitted on held-out data so that the
	// median standardized residual matches the Gaussian median (0.6745).
	DEtaScale float64
	// BkgTestAcc and DEtaTestMSE record held-out performance at training
	// time, for reporting.
	BkgTestAcc  float64
	DEtaTestMSE float64
	// Int8 is the quantized background network produced by
	// QuantizeBackground (adapttrain -quantize); nil for an unquantized
	// bundle. The int8 and fpga-sim inference backends require it. It
	// shares the bundle's BkgNorm and Thr: quantization changes the
	// arithmetic, not the feature pipeline or the decision thresholds.
	Int8 *quant.Int8Net
}

// Train generates the paper's training protocol from a labeled ring set:
// 80/20 train/test split, the training set further split 80/20
// train/validation, early stopping on validation loss, then per-polar-bin
// threshold selection on the training set.
func Train(set *datagen.Set, opts TrainOptions) *Bundle {
	opts = fillDefaults(opts)
	rng := xrand.New(opts.Seed)

	if opts.Logf != nil {
		in := features.NumFeaturesNoPolar
		if opts.WithPolar {
			in = features.NumFeatures
		}
		opts.Logf("%s", describeWidths("background net", in, BackgroundWidths))
		opts.Logf("%s", describeWidths("dEta net", in, DEtaWidths))
	}
	b := &Bundle{WithPolar: opts.WithPolar}

	// ----- Background network -----
	bkgAll := datagen.BackgroundDataset(set, opts.WithPolar)
	polars := datagen.PolarBins(set)
	// Keep polar guesses aligned with the split by splitting indices once.
	trainIdx, testIdx := splitIdx(bkgAll.Len(), 0.8, rng)
	bkgTrain := subset(bkgAll, trainIdx)
	bkgTest := subset(bkgAll, testIdx)
	b.BkgNorm = features.FitNormalizer(bkgTrain.X)
	b.BkgNorm.Apply(bkgTrain.X)
	b.BkgNorm.Apply(bkgTest.X)

	trIdx2, valIdx2 := splitIdx(bkgTrain.Len(), 0.8, rng)
	bkgTr := subset(bkgTrain, trIdx2)
	bkgVal := subset(bkgTrain, valIdx2)

	in := bkgAll.X.Cols
	if opts.Swapped {
		b.Bkg = NewBackgroundNetSwapped(in, rng.Split(1))
	} else {
		b.Bkg = NewBackgroundNet(in, rng.Split(1))
	}
	tr := &nn.Trainer{
		Net:       b.Bkg,
		Loss:      nn.BCEWithLogits{},
		Opt:       nn.NewSGD(opts.BkgLR, opts.Momentum),
		BatchSize: clampBatch(opts.BkgBatch, bkgTr.Len()),
		MaxEpochs: opts.MaxEpochs,
		Patience:  opts.Patience,
		Logf:      prefixed(opts.Logf, "bkg"),
	}
	tr.Fit(bkgTr, bkgVal, rng.Split(2))

	// Threshold selection on the full training split (paper: chosen to
	// minimize training loss per bin).
	trainProbs := b.Bkg.PredictProbs(bkgTrain.X)
	trainPolar := gatherF64(polars, trainIdx)
	b.Thr = FitThresholds(trainProbs, bkgTrain.Y, trainPolar, opts.FalseRejectCost)

	testProbs := b.Bkg.PredictProbs(bkgTest.X)
	b.BkgTestAcc = Accuracy(testProbs, bkgTest.Y, gatherF64(polars, testIdx), b.Thr)

	// ----- dEta network -----
	deAll := datagen.DEtaDataset(set, opts.WithPolar)
	dTrainIdx, dTestIdx := splitIdx(deAll.Len(), 0.8, rng)
	deTrain := subset(deAll, dTrainIdx)
	deTest := subset(deAll, dTestIdx)
	b.DEtaNorm = features.FitNormalizer(deTrain.X)
	b.DEtaNorm.Apply(deTrain.X)
	b.DEtaNorm.Apply(deTest.X)
	dTr, dVal := deTrain.Split(0.8, rng.Split(3))

	dLoss := opts.DEtaLoss
	if dLoss == nil {
		dLoss = nn.MSE{}
	}
	b.DEta = NewDEtaNet(in, rng.Split(4))
	dtr := &nn.Trainer{
		Net:       b.DEta,
		Loss:      dLoss,
		Opt:       nn.NewSGD(opts.DEtaLR, opts.Momentum),
		BatchSize: clampBatch(opts.DEtaBatch, dTr.Len()),
		MaxEpochs: opts.MaxEpochs,
		Patience:  opts.Patience,
		Logf:      prefixed(opts.Logf, "deta"),
	}
	dtr.Fit(dTr, dVal, rng.Split(5))
	b.DEtaTestMSE = dtr.Evaluate(deTest)
	b.DEtaScale = calibrateDEtaScale(b.DEta, deTest)

	return b
}

// calibrateDEtaScale fits the width calibration factor on held-out data:
// with r_i = |Δη|_i / exp(pred_i), a correctly scaled Gaussian width s·exp(
// pred) satisfies median(|Δη|/(s·exp(pred))) = 0.6745, so s = median(r)/0.6745.
func calibrateDEtaScale(net *nn.Sequential, test *nn.Dataset) float64 {
	if test.Len() == 0 {
		return 1
	}
	pred := net.Predict(test.X)
	ratios := make([]float64, test.Len())
	for i := range ratios {
		// Targets are ln|Δη|; predictions are the network's ln dη.
		ratios[i] = math.Exp(float64(test.Y[i]) - float64(pred.Data[i]))
	}
	sort.Float64s(ratios)
	med := ratios[len(ratios)/2]
	const gaussianMedianAbs = 0.674489750196082
	s := med / gaussianMedianAbs
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return 1
	}
	return s
}

// fillDefaults replaces unset (zero) hyperparameters with the paper's
// values, leaving explicitly set fields alone.
func fillDefaults(opts TrainOptions) TrainOptions {
	def := DefaultTrainOptions(opts.Seed)
	if opts.MaxEpochs == 0 {
		opts.MaxEpochs = def.MaxEpochs
	}
	if opts.Patience == 0 {
		opts.Patience = def.Patience
	}
	if opts.BkgBatch == 0 {
		opts.BkgBatch = def.BkgBatch
	}
	if opts.BkgLR == 0 {
		opts.BkgLR = def.BkgLR
	}
	if opts.DEtaBatch == 0 {
		opts.DEtaBatch = def.DEtaBatch
	}
	if opts.DEtaLR == 0 {
		opts.DEtaLR = def.DEtaLR
	}
	if opts.Momentum == 0 {
		opts.Momentum = def.Momentum
	}
	return opts
}

func clampBatch(b, n int) int {
	if b > n/2 && n >= 4 {
		b = n / 2
	}
	if b < 2 {
		b = 2
	}
	return b
}

func prefixed(logf func(string, ...any), tag string) func(string, ...any) {
	if logf == nil {
		return nil
	}
	return func(format string, args ...any) {
		logf("["+tag+"] "+format, args...)
	}
}

func splitIdx(n int, frac float64, rng *xrand.RNG) (a, b []int) {
	perm := rng.Perm(n)
	k := int(frac * float64(n))
	return perm[:k], perm[k:]
}

func subset(d *nn.Dataset, idx []int) *nn.Dataset {
	y := make([]float32, len(idx))
	for i, j := range idx {
		y[i] = d.Y[j]
	}
	return &nn.Dataset{X: d.X.Gather(idx), Y: y}
}

func gatherF64(xs []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = xs[j]
	}
	return out
}
