// Package models defines and trains the paper's two neural networks
// (§III): the background network, a binary classifier that flags Compton
// rings caused by background particles, and the dEta network, a regressor
// that predicts ln(dη) for surviving rings. Both share the paper's block
// architecture (Fig. 5): BatchNorm1D → fully-connected → ReLU, repeated,
// with tunable depth and widths.
//
// The production architectures follow the paper's §III "Model Training":
// four FC layers each; background net max width 256 in its first FC layer
// with widths gradually decreasing; dEta net max width 16 in the middle with
// shorter widths at the beginning and end.
package models

import (
	"fmt"
	"sort"

	"repro/internal/nn"
	"repro/internal/xrand"
)

// BackgroundWidths are the FC output widths of the background network.
var BackgroundWidths = []int{256, 128, 64, 1}

// DEtaWidths are the FC output widths of the dEta network.
var DEtaWidths = []int{8, 16, 8, 1}

// NewMLP builds the paper's block architecture: for each width w,
// BatchNorm1D(prev) → Linear(prev→w) → ReLU, except the final block, which
// omits the ReLU (raw logit / regression output).
func NewMLP(in int, widths []int, rng *xrand.RNG) *nn.Sequential {
	var layers []nn.Layer
	prev := in
	for i, w := range widths {
		layers = append(layers, nn.NewBatchNorm1D(prev), nn.NewLinear(prev, w, rng))
		if i < len(widths)-1 {
			layers = append(layers, nn.NewReLU())
		}
		prev = w
	}
	return nn.NewSequential(layers...)
}

// NewMLPSwapped builds the layer-swapped variant used for quantization
// (§V: "retraining the background model with an updated architecture that
// reverses the order of these two layers within a block"): Linear →
// BatchNorm1D → ReLU blocks, final Linear bare, so Linear+BN+ReLU can fuse.
func NewMLPSwapped(in int, widths []int, rng *xrand.RNG) *nn.Sequential {
	var layers []nn.Layer
	prev := in
	for i, w := range widths {
		layers = append(layers, nn.NewLinear(prev, w, rng))
		if i < len(widths)-1 {
			layers = append(layers, nn.NewBatchNorm1D(w), nn.NewReLU())
		}
		prev = w
	}
	return nn.NewSequential(layers...)
}

// NewBackgroundNet returns the production background classifier for in
// input features.
func NewBackgroundNet(in int, rng *xrand.RNG) *nn.Sequential {
	return NewMLP(in, BackgroundWidths, rng)
}

// NewBackgroundNetSwapped returns the fusion-friendly variant for the
// quantization study.
func NewBackgroundNetSwapped(in int, rng *xrand.RNG) *nn.Sequential {
	return NewMLPSwapped(in, BackgroundWidths, rng)
}

// NewDEtaNet returns the production dEta regressor.
func NewDEtaNet(in int, rng *xrand.RNG) *nn.Sequential {
	return NewMLP(in, DEtaWidths, rng)
}

// NumPolarBins is the number of ten-degree polar-angle bins for threshold
// selection (0°–90°).
const NumPolarBins = 9

// Thresholds holds the per-polar-bin classification thresholds (§III: "we
// divided the range of input polar angles into ten-degree bins and chose an
// output threshold for each bin that minimized training loss; the threshold
// is then selected dynamically at inference time based on the input polar
// angle").
type Thresholds struct {
	ByBin [NumPolarBins]float32
}

// binOf maps a polar angle in degrees to its bin index.
func binOf(polarDeg float64) int {
	b := int(polarDeg / 10)
	if b < 0 {
		b = 0
	}
	if b >= NumPolarBins {
		b = NumPolarBins - 1
	}
	return b
}

// For returns the threshold for the given polar-angle guess.
func (t *Thresholds) For(polarDeg float64) float32 { return t.ByBin[binOf(polarDeg)] }

// DefaultFalseRejectCost weights the loss of discarding a true GRB ring
// relative to keeping a background ring when fitting thresholds. Discarding
// signal is worse for localization than keeping background (the robust
// least-squares gate suppresses background anyway), so the default is
// asymmetric. Cost 1 recovers plain misclassification minimization.
const DefaultFalseRejectCost = 2.0

// FitThresholds chooses, for each polar bin, the probability threshold that
// minimizes the thresholded training loss over the given predictions (§III),
// with false rejections of GRB rings weighted by cost (use
// DefaultFalseRejectCost; 1 for the symmetric paper-literal rule). Bins with
// no data inherit the global best threshold.
func FitThresholds(probs []float32, labels []float32, polarDeg []float64, cost float64) *Thresholds {
	if len(probs) != len(labels) || len(probs) != len(polarDeg) {
		panic("models: FitThresholds length mismatch")
	}
	if cost <= 0 {
		cost = DefaultFalseRejectCost
	}
	var t Thresholds
	global := bestThreshold(probs, labels, nil, cost)
	for b := 0; b < NumPolarBins; b++ {
		sel := make([]bool, len(probs))
		any := false
		for i := range probs {
			if binOf(polarDeg[i]) == b {
				sel[i] = true
				any = true
			}
		}
		if !any {
			t.ByBin[b] = global
			continue
		}
		t.ByBin[b] = bestThreshold(probs, labels, sel, cost)
	}
	return &t
}

// bestThreshold scans candidate cutoffs to minimize the weighted error
// cost·(GRB rings flagged) + (background rings kept) over the selected
// samples (sel nil = all). Classification rule: prob > thr ⇒ background
// (label 1).
func bestThreshold(probs, labels []float32, sel []bool, cost float64) float32 {
	type pl struct {
		p float32
		l float32
	}
	var xs []pl
	for i := range probs {
		if sel == nil || sel[i] {
			xs = append(xs, pl{probs[i], labels[i]})
		}
	}
	if len(xs) == 0 {
		return 0.5
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i].p < xs[j].p })
	// With the threshold below everything, every ring is classified
	// background: we pay cost for each GRB ring flagged.
	var errors float64
	for _, x := range xs {
		if x.l < 0.5 {
			errors += cost
		}
	}
	best := errors
	bestThr := xs[0].p - 1e-6
	// Raising the threshold past sample i flips it to "kept": a background
	// ring becomes a kept-background error (+1), a GRB ring stops being
	// falsely rejected (−cost).
	for i, x := range xs {
		if x.l >= 0.5 {
			errors++
		} else {
			errors -= cost
		}
		thr := x.p + 1e-6
		if i+1 < len(xs) {
			thr = (x.p + xs[i+1].p) / 2
		}
		if errors < best {
			best = errors
			bestThr = thr
		}
	}
	return bestThr
}

// Accuracy returns the fraction of correct thresholded classifications.
func Accuracy(probs, labels []float32, polarDeg []float64, t *Thresholds) float64 {
	if len(probs) == 0 {
		return 0
	}
	correct := 0
	for i := range probs {
		pred := float32(0)
		if probs[i] > t.For(polarDeg[i]) {
			pred = 1
		}
		if (pred >= 0.5) == (labels[i] >= 0.5) {
			correct++
		}
	}
	return float64(correct) / float64(len(probs))
}

// describeWidths prints an architecture summary for logs.
func describeWidths(name string, in int, widths []int) string {
	s := fmt.Sprintf("%s: %d", name, in)
	for _, w := range widths {
		s += fmt.Sprintf("→%d", w)
	}
	return s
}
