package models

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/features"
	"repro/internal/nn"
	"repro/internal/nn/quant"
	"repro/internal/xrand"
)

// bundleFile is the on-disk representation of a Bundle. The Int8 pair was
// added after the first release: gob zeroes absent fields, so bundles
// written by older builds decode with HasInt8 false, and older builds
// ignore the new fields in bundles written by this one. Int8 is a value
// (not a pointer) so a quantization-free bundle never makes gob flatten a
// nil pointer.
type bundleFile struct {
	WithPolar   bool
	Swapped     bool
	BkgState    nn.State
	DEtaState   nn.State
	BkgNorm     features.Normalizer
	DEtaNorm    features.Normalizer
	Thr         Thresholds
	DEtaScale   float64
	BkgTestAcc  float64
	DEtaTestMSE float64
	HasInt8     bool
	Int8        quant.Int8Net
}

// Save writes the bundle with gob encoding.
func (b *Bundle) Save(w io.Writer) error {
	swapped := isSwapped(b.Bkg)
	f := bundleFile{
		WithPolar:   b.WithPolar,
		Swapped:     swapped,
		BkgState:    b.Bkg.ExportState(),
		DEtaState:   b.DEta.ExportState(),
		BkgNorm:     *b.BkgNorm,
		DEtaNorm:    *b.DEtaNorm,
		Thr:         *b.Thr,
		DEtaScale:   b.DEtaScale,
		BkgTestAcc:  b.BkgTestAcc,
		DEtaTestMSE: b.DEtaTestMSE,
	}
	if b.Int8 != nil {
		f.HasInt8 = true
		f.Int8 = *b.Int8
	}
	return gob.NewEncoder(w).Encode(f)
}

// isSwapped detects the fusion-friendly layer order (first layer Linear
// rather than BatchNorm).
func isSwapped(net *nn.Sequential) bool {
	if len(net.Layers) == 0 {
		return false
	}
	_, ok := net.Layers[0].(*nn.Linear)
	return ok
}

// LoadBundle reads a bundle written by Save, rebuilding the architectures.
func LoadBundle(r io.Reader) (*Bundle, error) {
	var f bundleFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("models: decode bundle: %w", err)
	}
	in := features.NumFeaturesNoPolar
	if f.WithPolar {
		in = features.NumFeatures
	}
	rng := xrand.New(0) // weights are overwritten by ImportState
	b := &Bundle{
		WithPolar:   f.WithPolar,
		BkgNorm:     &f.BkgNorm,
		DEtaNorm:    &f.DEtaNorm,
		Thr:         &f.Thr,
		DEtaScale:   f.DEtaScale,
		BkgTestAcc:  f.BkgTestAcc,
		DEtaTestMSE: f.DEtaTestMSE,
	}
	if f.Swapped {
		b.Bkg = NewBackgroundNetSwapped(in, rng)
	} else {
		b.Bkg = NewBackgroundNet(in, rng)
	}
	b.DEta = NewDEtaNet(in, rng)
	if err := b.Bkg.ImportState(f.BkgState); err != nil {
		return nil, fmt.Errorf("models: background net: %w", err)
	}
	if err := b.DEta.ImportState(f.DEtaState); err != nil {
		return nil, fmt.Errorf("models: dEta net: %w", err)
	}
	if f.HasInt8 {
		net := f.Int8
		if len(net.Layers) == 0 {
			return nil, fmt.Errorf("models: bundle claims a quantized model but has no layers")
		}
		// gob cannot restore the unexported GEMM cache; rebuild it.
		net.Prepare()
		b.Int8 = &net
	}
	return b, nil
}

// SaveFile writes the bundle to path.
func (b *Bundle) SaveFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return b.Save(f)
}

// LoadBundleFile reads a bundle written by SaveFile.
func LoadBundleFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadBundle(f)
}
