package models

import (
	"fmt"
	"io"
	"sort"
)

// ConfusionMatrix summarizes thresholded binary classification with the
// background convention: positive = background (label 1).
type ConfusionMatrix struct {
	TP, FP, TN, FN int
}

// Add records one thresholded prediction.
func (c *ConfusionMatrix) Add(predictedBackground, isBackground bool) {
	switch {
	case predictedBackground && isBackground:
		c.TP++
	case predictedBackground && !isBackground:
		c.FP++
	case !predictedBackground && !isBackground:
		c.TN++
	default:
		c.FN++
	}
}

// Total returns the number of recorded samples.
func (c ConfusionMatrix) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy returns the fraction classified correctly.
func (c ConfusionMatrix) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(t)
}

// Precision returns TP/(TP+FP): how much of the rejected set really was
// background.
func (c ConfusionMatrix) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN): the fraction of background rings rejected.
func (c ConfusionMatrix) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FalseRejectRate returns FP/(FP+TN): the fraction of GRB rings wrongly
// discarded — the quantity the asymmetric threshold cost protects.
func (c ConfusionMatrix) FalseRejectRate() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// Confusion evaluates the per-bin thresholds over a labeled set.
func Confusion(probs, labels []float32, polarDeg []float64, t *Thresholds) ConfusionMatrix {
	var c ConfusionMatrix
	for i := range probs {
		c.Add(probs[i] > t.For(polarDeg[i]), labels[i] >= 0.5)
	}
	return c
}

// ROCPoint is one operating point of the ROC curve.
type ROCPoint struct {
	Threshold float32
	TPR, FPR  float64
}

// ROC computes the full ROC curve by sweeping the threshold over the
// sorted scores, highest threshold first (so the curve runs from (0,0) to
// (1,1)).
func ROC(probs, labels []float32) []ROCPoint {
	if len(probs) != len(labels) {
		panic("models: ROC length mismatch")
	}
	idx := make([]int, len(probs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return probs[idx[a]] > probs[idx[b]] })
	var nPos, nNeg int
	for _, l := range labels {
		if l >= 0.5 {
			nPos++
		} else {
			nNeg++
		}
	}
	var tp, fp int
	curve := []ROCPoint{{Threshold: 2, TPR: 0, FPR: 0}}
	for k := 0; k < len(idx); {
		thr := probs[idx[k]]
		for k < len(idx) && probs[idx[k]] == thr {
			if labels[idx[k]] >= 0.5 {
				tp++
			} else {
				fp++
			}
			k++
		}
		curve = append(curve, ROCPoint{
			Threshold: thr,
			TPR:       safeDiv(tp, nPos),
			FPR:       safeDiv(fp, nNeg),
		})
	}
	return curve
}

// AUC integrates the ROC curve with the trapezoid rule; 0.5 is chance,
// 1.0 perfect.
func AUC(probs, labels []float32) float64 {
	curve := ROC(probs, labels)
	var area float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

func safeDiv(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// BinReport is the per-polar-bin classifier evaluation.
type BinReport struct {
	Bin       int
	LowDeg    float64
	Threshold float32
	N         int
	Matrix    ConfusionMatrix
}

// ReportByBin evaluates the classifier separately in each ten-degree polar
// bin, writing a table to w and returning the rows.
func ReportByBin(w io.Writer, probs, labels []float32, polarDeg []float64, t *Thresholds) []BinReport {
	rows := make([]BinReport, NumPolarBins)
	for b := range rows {
		rows[b] = BinReport{Bin: b, LowDeg: float64(10 * b), Threshold: t.ByBin[b]}
	}
	for i := range probs {
		b := binOf(polarDeg[i])
		rows[b].N++
		rows[b].Matrix.Add(probs[i] > t.ByBin[b], labels[i] >= 0.5)
	}
	if w != nil {
		fmt.Fprintf(w, "%-6s %-6s %-9s %-6s %-9s %-9s %-9s\n",
			"bin", "deg", "thresh", "n", "acc", "bkg-rec", "grb-rej")
		for _, r := range rows {
			if r.N == 0 {
				continue
			}
			fmt.Fprintf(w, "%-6d %-6.0f %-9.3f %-6d %-9.3f %-9.3f %-9.3f\n",
				r.Bin, r.LowDeg, r.Threshold, r.N,
				r.Matrix.Accuracy(), r.Matrix.Recall(), r.Matrix.FalseRejectRate())
		}
	}
	return rows
}
