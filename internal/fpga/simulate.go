package fpga

// Simulate runs a cycle-level event simulation of the synthesized dataflow
// pipeline for n back-to-back inputs and returns the cycle at which the last
// output leaves the kernel. It models each stage as a pipelined unit that
// accepts a new input every stage.II cycles and emits it stage.Latency
// cycles later, with stages decoupled by FIFOs (the HLS DATAFLOW model) and
// the kernel-level II including the inter-stage handshake overhead.
//
// For a correct Report the result equals Report.TotalCycles(n); the
// simulator exists to validate that closed form (see the package tests) and
// to support experiments with irregular arrival patterns.
func Simulate(r Report, n int) int {
	if n <= 0 {
		return 0
	}
	// ready[s] is the earliest cycle stage s can accept its next input.
	ready := make([]int, len(r.Stages))
	// The kernel-level handshake adds one cycle per stage boundary to the
	// effective per-stage II (this is what Report.II = max(stage II) + #stages
	// accounts for); distribute it as one extra cycle per stage.
	var finish int
	for i := 0; i < n; i++ {
		t := arrivalCycle(i) // inputs arrive back-to-back
		for s := range r.Stages {
			if t < ready[s] {
				t = ready[s]
			}
			ready[s] = t + r.Stages[s].II + 1 // +1 handshake
			t += r.Stages[s].Latency
		}
		finish = t + interfaceOverheadCycles
	}
	return finish
}

// arrivalCycle is the cycle input i is presented to the kernel; inputs are
// streamed back-to-back.
func arrivalCycle(i int) int { return i }

// SimulateMs converts Simulate's cycle count to milliseconds at the
// report's clock.
func SimulateMs(r Report, n int) float64 {
	return float64(Simulate(r, n)) * r.ClockNs * 1e-6
}

// BackgroundNetLayers returns the fused layer dimensions of the paper's
// background network kernel for in input features: the three hidden fused
// Linear+BN+ReLU stages and the final Linear (the output sigmoid is elided;
// §V applies the threshold in the logit domain instead).
func BackgroundNetLayers(in int) []LayerDims {
	return []LayerDims{
		{In: in, Out: 256},
		{In: 256, Out: 128},
		{In: 128, Out: 64},
		{In: 64, Out: 1},
	}
}
