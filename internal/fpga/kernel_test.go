package fpga

import (
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/internal/nn/quant"
	"repro/internal/xrand"
)

// kernelFixture builds a small calibrated Int8Net and a feature batch.
func kernelFixture(t *testing.T) (*quant.Int8Net, *nn.Tensor) {
	t.Helper()
	rng := xrand.New(21)
	net := nn.NewSequential(
		nn.NewLinear(6, 16, rng), nn.NewBatchNorm1D(16), nn.NewReLU(),
		nn.NewLinear(16, 8, rng), nn.NewBatchNorm1D(8), nn.NewReLU(),
		nn.NewLinear(8, 1, rng),
	)
	fused, err := quant.FuseForQuant(net)
	if err != nil {
		t.Fatal(err)
	}
	x := nn.NewTensor(64, 6)
	for i := range x.Data {
		x.Data[i] = float32(rng.Gaussian(0, 1))
	}
	for _, l := range fused.Layers {
		l.(*quant.QATLinear).Enabled = false
	}
	warm := &nn.Trainer{Net: fused, Loss: nn.BCEWithLogits{}, Opt: nn.NewSGD(0, 0), BatchSize: 32, MaxEpochs: 1, Patience: 5}
	warm.Fit(&nn.Dataset{X: x, Y: make([]float32, x.Rows)}, nil, rng)
	int8net, err := quant.Convert(fused)
	if err != nil {
		t.Fatal(err)
	}
	return int8net, x
}

// TestKernelParity: fpga-sim is a cost model around the int8 arithmetic, so
// its probabilities must be bitwise-identical to the bare Int8Net's.
func TestKernelParity(t *testing.T) {
	int8net, x := kernelFixture(t)
	k := NewKernel(int8net, DefaultDevice())
	want := int8net.Probs(x)
	got := k.Probs(x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: kernel %v != int8 %v", i, got[i], want[i])
		}
	}
}

func TestKernelCycleLedger(t *testing.T) {
	int8net, x := kernelFixture(t)
	k := NewKernel(int8net, DefaultDevice())
	rep := k.Report()

	out := make([]float32, x.Rows)
	k.ProbsInto(x, out)
	one := nn.NewTensor(1, x.Cols)
	copy(one.Data, x.Row(0))
	k.ProbsInto(one, out[:1])
	// An empty batch charges nothing.
	k.ProbsInto(nn.NewTensor(0, x.Cols), nil)

	wantCycles := int64(rep.TotalCycles(x.Rows) + rep.TotalCycles(1))
	if k.SimCycles() != wantCycles {
		t.Errorf("cycles %d, want %d", k.SimCycles(), wantCycles)
	}
	if k.SimInputs() != int64(x.Rows+1) {
		t.Errorf("inputs %d, want %d", k.SimInputs(), x.Rows+1)
	}
	if k.SimBatches() != 2 {
		t.Errorf("batches %d, want 2", k.SimBatches())
	}
	wantMs := float64(wantCycles) * rep.ClockNs * 1e-6
	if k.SimMs() != wantMs {
		t.Errorf("SimMs %v, want %v", k.SimMs(), wantMs)
	}
	if k.Net() != int8net {
		t.Error("Net accessor lost the wrapped network")
	}
}

// TestKernelConcurrentLedger: the ledger must stay exact when the kernel
// serves sharded pipeline workers concurrently (run under -race).
func TestKernelConcurrentLedger(t *testing.T) {
	int8net, x := kernelFixture(t)
	k := NewKernel(int8net, DefaultDevice())
	const workers, calls = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]float32, x.Rows)
			for c := 0; c < calls; c++ {
				k.ProbsInto(x, out)
			}
		}()
	}
	wg.Wait()
	want := int64(workers * calls * k.Report().TotalCycles(x.Rows))
	if k.SimCycles() != want {
		t.Errorf("concurrent cycles %d, want %d", k.SimCycles(), want)
	}
	if k.SimBatches() != workers*calls {
		t.Errorf("concurrent batches %d, want %d", k.SimBatches(), workers*calls)
	}
}

func TestNewKernelNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewKernel(nil) did not panic")
		}
	}()
	NewKernel(nil, DefaultDevice())
}
