// Package fpga models the HLS dataflow implementation of the background
// network used in the paper's §V "FPGA Deployment": a pipeline of fused
// Linear(+BN)+ReLU stages synthesized with Vitis HLS, evaluated by C/RTL
// co-simulation at a conservative 10 ns (100 MHz) clock.
//
// Real synthesis is a hardware-toolchain gate this reproduction cannot
// cross, so the package provides two substitutes (DESIGN.md §2):
//
//   - an analytic scheduling and resource model (Synthesize) that derives
//     each stage's initiation interval, latency, and logic usage from the
//     layer dimensions, the numeric type, and a device resource budget,
//     following standard HLS unroll/pipeline cost accounting; and
//   - a cycle-level event simulator (Simulate) of the resulting dataflow
//     pipeline, which reproduces the paper's total-latency law
//     n·II + (L − II) for n inputs and validates the closed form.
//
// The model's per-lane cost constants are calibrated to representative
// Vitis HLS reports for port-limited fully-connected kernels, which places
// the synthesized design at the same kind of operating point as the paper's
// kernel (II in the hundreds of cycles, L/II ≈ 1.3–1.6, INT8 ≈ 1.75× FP32
// throughput with smaller BRAM/DSP/FF footprints). The scheduling and the
// n·II + (L − II) total-latency law are structural, not fitted.
package fpga

import (
	"fmt"
	"math"
)

// NumType selects the kernel's arithmetic precision.
type NumType int

const (
	// INT8 is the quantized 8-bit integer kernel.
	INT8 NumType = iota
	// FP32 is the single-precision floating-point kernel.
	FP32
)

// String implements fmt.Stringer.
func (t NumType) String() string {
	if t == INT8 {
		return "INT8"
	}
	return "FP32"
}

// LayerDims describes one fused fully-connected stage.
type LayerDims struct {
	In, Out int
}

// MACs returns the multiply-accumulate count per input vector.
func (l LayerDims) MACs() int { return l.In * l.Out }

// Device describes the synthesis target's resource budget, representative
// of the mid-range UltraScale+ parts considered for ADAPT's processing
// stack.
type Device struct {
	DSP       int
	BRAM      int
	FF        int
	LUT       int
	ClockNs   float64 // target clock period (paper: conservative 10 ns)
	DSPBudget float64 // fraction of DSPs the kernel may claim
}

// DefaultDevice returns the evaluation target: a large UltraScale+ class
// device at a conservative 100 MHz.
func DefaultDevice() Device {
	return Device{
		DSP:       9024,
		BRAM:      4032,
		FF:        2364480,
		LUT:       1182240,
		ClockNs:   10,
		DSPBudget: 0.85,
	}
}

// typeCost captures per-type implementation costs in the scheduling model.
// The per-lane register/LUT constants and the lane caps are calibrated to
// representative Vitis HLS reports for port-limited fully-connected kernels
// (weight reads, not DSP count, bound the unroll factor at this scale);
// they are not fitted to the paper's Table III values, but they land the
// model at the same kind of design point.
type typeCost struct {
	// maxLanes is the per-stage parallel multiplier bound imposed by
	// weight-memory port bandwidth after array partitioning: INT8 packs
	// four weights per BRAM word, FP32 one, and LUT-RAM assists narrow
	// types.
	maxLanes int
	// dspPerMAC is the DSP slices consumed per parallel multiplier lane
	// (INT8 uses the DSP pre-adder path; FP32 mul+add ≈ 3).
	dspPerMAC float64
	// weightBits per weight for BRAM accounting.
	weightBits int
	// bramDup is the partition-replication factor needed to feed the lanes
	// (FP32's wide words force replicated banks).
	bramDup int
	// pipeDepth is the per-stage pipeline depth overhead in cycles
	// (deeper FP pipelines).
	pipeDepth int
	// ffPerLane / lutPerLane are register and LUT costs per multiplier
	// lane, including the adder-tree and FIFO share.
	ffPerLane  float64
	lutPerLane float64
	// lutFixed is glue logic per stage (control FSM, AXI adapters).
	lutFixed float64
}

func costsFor(t NumType) typeCost {
	if t == INT8 {
		return typeCost{
			maxLanes:   64,
			dspPerMAC:  1.0,
			weightBits: 8,
			bramDup:    1,
			pipeDepth:  6,
			ffPerLane:  1400,
			lutPerLane: 2950,
			lutFixed:   4000,
		}
	}
	return typeCost{
		maxLanes:   36,
		dspPerMAC:  3.0,
		weightBits: 32,
		bramDup:    3,
		pipeDepth:  24,
		ffPerLane:  4500,
		lutPerLane: 5500,
		lutFixed:   6000,
	}
}

// StageReport is the synthesized schedule of one dataflow stage.
type StageReport struct {
	Dims     LayerDims
	Parallel int // parallel multiplier lanes allocated
	II       int // initiation interval, cycles
	Latency  int // latency of one input through the stage, cycles
}

// Report is the synthesis result for the whole kernel, matching the
// statistics of the paper's Table III.
type Report struct {
	Type    NumType
	Stages  []StageReport
	Latency int // cycles for one input through the pipeline (L)
	II      int // kernel initiation interval (cycles between inputs)
	BRAM    int
	DSP     int
	FF      int
	LUT     int
	ClockNs float64
}

// interfaceOverheadCycles models the AXI ingress/egress latency added to L.
const interfaceOverheadCycles = 40

// Synthesize schedules the layer pipeline onto the device. Parallel
// multiplier lanes are allocated to stages in proportion to their MAC
// demand (the HLS "balance the dataflow" optimization), subject to the DSP
// budget and full-unroll bounds; each stage is then pipelined at
// II = ceil(MACs / lanes).
func Synthesize(layers []LayerDims, t NumType, dev Device) Report {
	if len(layers) == 0 {
		panic("fpga: no layers")
	}
	c := costsFor(t)
	budget := float64(dev.DSP) * dev.DSPBudget

	// Allocate each stage its port-bandwidth-limited unroll factor, then
	// scale back uniformly if the DSP budget is exceeded (it is not, for
	// the paper's kernel on the default device, but small devices matter
	// for the ablation benches).
	lanes := make([]int, len(layers))
	var dspNeed float64
	for i, l := range layers {
		p := c.maxLanes
		if p > l.MACs() {
			p = l.MACs()
		}
		lanes[i] = p
		dspNeed += float64(p) * c.dspPerMAC
	}
	if dspNeed > budget {
		shrink := budget / dspNeed
		for i := range lanes {
			lanes[i] = int(float64(lanes[i]) * shrink)
			if lanes[i] < 1 {
				lanes[i] = 1
			}
		}
	}

	rep := Report{Type: t, ClockNs: dev.ClockNs}
	var dsp float64
	var ff, lut float64
	weightBits := 0
	kernelII := 0
	latency := interfaceOverheadCycles
	for i, l := range layers {
		ii := ceilDiv(l.MACs(), lanes[i])
		// Stage latency: fill the MAC array, drain the adder tree, plus the
		// numeric pipeline depth.
		stageLat := ii + int(math.Ceil(math.Log2(float64(l.In+1)))) + c.pipeDepth
		rep.Stages = append(rep.Stages, StageReport{Dims: l, Parallel: lanes[i], II: ii, Latency: stageLat})
		if ii > kernelII {
			kernelII = ii
		}
		latency += stageLat
		dsp += float64(lanes[i]) * c.dspPerMAC
		ff += float64(lanes[i]) * c.ffPerLane
		lut += float64(lanes[i])*c.lutPerLane + c.lutFixed
		weightBits += l.MACs()*c.weightBits + l.Out*32 // weights + biases
	}
	// The kernel initiation interval is the bottleneck stage's interval
	// plus one cycle of FIFO handshake; Simulate reproduces exactly this.
	rep.II = kernelII + 1
	rep.Latency = latency
	rep.DSP = int(dsp)
	rep.FF = int(ff)
	rep.LUT = int(lut)
	// BRAM36 blocks hold 36 kbit each; activation FIFOs add one block per
	// stage boundary per 8 lanes.
	fifoBRAM := 0
	for i, l := range layers {
		if i > 0 {
			fifoBRAM += ceilDiv(l.In*32, 36*1024) + 1
		}
	}
	rep.BRAM = ceilDiv(weightBits, 36*1024)*c.bramDup + fifoBRAM
	return rep
}

// TotalCycles returns the pipelined total for n inputs: n·II + (L − II),
// the formula of §V (citing the HLS performance model).
func (r Report) TotalCycles(n int) int {
	if n <= 0 {
		return 0
	}
	return n*r.II + (r.Latency - r.II)
}

// TotalMs returns the wall-clock time for n inputs at the report's clock.
func (r Report) TotalMs(n int) float64 {
	return float64(r.TotalCycles(n)) * r.ClockNs * 1e-6
}

// Throughput returns inputs per second in steady state.
func (r Report) Throughput() float64 {
	return 1e9 / (float64(r.II) * r.ClockNs)
}

// String implements fmt.Stringer with a Table-III-style summary.
func (r Report) String() string {
	return fmt.Sprintf("%s: L=%d cycles, II=%d cycles, BRAM=%d, DSP=%d, FF=%d, LUT=%d",
		r.Type, r.Latency, r.II, r.BRAM, r.DSP, r.FF, r.LUT)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
