package fpga

import (
	"testing"
	"testing/quick"
)

func reports() (Report, Report) {
	layers := BackgroundNetLayers(13)
	dev := DefaultDevice()
	return Synthesize(layers, INT8, dev), Synthesize(layers, FP32, dev)
}

func TestSimulatorMatchesClosedForm(t *testing.T) {
	i8, f32 := reports()
	for _, r := range []Report{i8, f32} {
		f := func(rawN uint16) bool {
			n := int(rawN%2000) + 1
			return Simulate(r, n) == r.TotalCycles(n)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: simulator disagrees with n·II+(L−II): %v", r.Type, err)
		}
	}
}

func TestTotalCyclesEdgeCases(t *testing.T) {
	i8, _ := reports()
	if i8.TotalCycles(0) != 0 || Simulate(i8, 0) != 0 {
		t.Error("zero inputs should cost zero cycles")
	}
	if i8.TotalCycles(1) != i8.Latency {
		t.Errorf("one input costs %d, want L=%d", i8.TotalCycles(1), i8.Latency)
	}
}

func TestInt8VsFp32Ordering(t *testing.T) {
	i8, f32 := reports()
	// The Table III shape: INT8 beats FP32 on latency, II, BRAM, DSP, FF.
	if i8.Latency >= f32.Latency {
		t.Errorf("latency: INT8 %d !< FP32 %d", i8.Latency, f32.Latency)
	}
	if i8.II >= f32.II {
		t.Errorf("II: INT8 %d !< FP32 %d", i8.II, f32.II)
	}
	if i8.BRAM >= f32.BRAM {
		t.Errorf("BRAM: INT8 %d !< FP32 %d", i8.BRAM, f32.BRAM)
	}
	if i8.DSP >= f32.DSP {
		t.Errorf("DSP: INT8 %d !< FP32 %d", i8.DSP, f32.DSP)
	}
	if i8.FF >= f32.FF {
		t.Errorf("FF: INT8 %d !< FP32 %d", i8.FF, f32.FF)
	}
	// The paper's headline: ~1.75x throughput. Accept a band around it.
	ratio := i8.Throughput() / f32.Throughput()
	if ratio < 1.3 || ratio > 2.5 {
		t.Errorf("throughput ratio %v outside [1.3, 2.5]", ratio)
	}
	// L > II for both (pipelined kernels).
	if i8.Latency <= i8.II || f32.Latency <= f32.II {
		t.Error("latency should exceed initiation interval")
	}
}

func TestTotalMsAtPaperWorkload(t *testing.T) {
	i8, f32 := reports()
	// 597 rings at 100 MHz should land in the single-digit-ms regime the
	// paper reports (4.13 / 7.22 ms).
	if ms := i8.TotalMs(597); ms < 1 || ms > 10 {
		t.Errorf("INT8 597-ring latency %v ms implausible", ms)
	}
	if ms := f32.TotalMs(597); ms < 2 || ms > 20 {
		t.Errorf("FP32 597-ring latency %v ms implausible", ms)
	}
	if i8.TotalMs(597) >= f32.TotalMs(597) {
		t.Error("INT8 not faster at the paper workload")
	}
}

func TestDSPBudgetShrink(t *testing.T) {
	layers := BackgroundNetLayers(13)
	tiny := DefaultDevice()
	tiny.DSP = 40 // starve the kernel
	r := Synthesize(layers, FP32, tiny)
	if float64(r.DSP) > float64(tiny.DSP)*tiny.DSPBudget+3*3 {
		t.Errorf("DSP usage %d exceeds starved budget %d", r.DSP, tiny.DSP)
	}
	full := Synthesize(layers, FP32, DefaultDevice())
	if r.II <= full.II {
		t.Error("starved device should have worse II")
	}
}

func TestStageSchedules(t *testing.T) {
	i8, _ := reports()
	if len(i8.Stages) != 4 {
		t.Fatalf("%d stages, want 4", len(i8.Stages))
	}
	maxII := 0
	for _, s := range i8.Stages {
		if s.Parallel < 1 || s.II < 1 || s.Latency <= s.II {
			t.Errorf("bad stage schedule %+v", s)
		}
		if s.II > maxII {
			maxII = s.II
		}
	}
	if i8.II != maxII+1 {
		t.Errorf("kernel II %d != bottleneck %d + handshake", i8.II, maxII)
	}
	// The 256×128 layer dominates.
	if i8.Stages[1].II != maxII {
		t.Error("expected the 256→128 stage to be the bottleneck")
	}
}

func TestThroughput(t *testing.T) {
	i8, _ := reports()
	want := 1e9 / (float64(i8.II) * i8.ClockNs)
	if got := i8.Throughput(); got != want {
		t.Errorf("Throughput = %v, want %v", got, want)
	}
	if i8.String() == "" {
		t.Error("empty report string")
	}
	if INT8.String() != "INT8" || FP32.String() != "FP32" {
		t.Error("NumType strings wrong")
	}
}

func TestSynthesizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for empty layer list")
		}
	}()
	Synthesize(nil, INT8, DefaultDevice())
}

func TestLayerDims(t *testing.T) {
	l := LayerDims{In: 13, Out: 256}
	if l.MACs() != 13*256 {
		t.Error("MACs wrong")
	}
	bg := BackgroundNetLayers(13)
	if bg[0].In != 13 || bg[len(bg)-1].Out != 1 {
		t.Error("background net layer dims wrong")
	}
	// Widths follow the paper: 256, 128, 64, 1.
	for i, want := range []int{256, 128, 64, 1} {
		if bg[i].Out != want {
			t.Errorf("layer %d out = %d, want %d", i, bg[i].Out, want)
		}
	}
}
