package fpga

import (
	"sync/atomic"

	"repro/internal/nn"
	"repro/internal/nn/quant"
)

// Kernel is the fpga-sim inference backend: the INT8 background network
// evaluated with the exact integer arithmetic of quant.Int8Net, wrapped in
// the synthesized kernel's cycle accounting. The package's analytic model
// (Synthesize) is a schedule/resource model, not a functional simulator, so
// the numeric results of this backend are bitwise-identical to the int8
// backend by construction — what fpga-sim adds is the deployment-side
// latency ledger: every batch of n rows charges TotalCycles(n) = n·II +
// (L − II) against the synthesized report, giving the flight-hardware cost
// of the inference the software actually performed.
type Kernel struct {
	net    *quant.Int8Net
	report Report

	// Cumulative simulated-hardware counters, updated atomically so the
	// kernel can serve the pipeline's sharded inference and the serving
	// micro-batcher concurrently.
	cycles  atomic.Int64
	inputs  atomic.Int64
	batches atomic.Int64
}

// NewKernel synthesizes net's layer pipeline for dev at INT8 precision and
// returns the simulated kernel. net must be non-nil and prepared (any net
// from quant.Convert or models.LoadBundle is).
func NewKernel(net *quant.Int8Net, dev Device) *Kernel {
	if net == nil {
		panic("fpga: NewKernel requires an Int8Net")
	}
	layers := make([]LayerDims, len(net.Layers))
	for i, l := range net.Layers {
		layers[i] = LayerDims{In: l.In, Out: l.Out}
	}
	return &Kernel{net: net, report: Synthesize(layers, INT8, dev)}
}

// Probs implements the pipeline's BkgClassifier contract.
func (k *Kernel) Probs(x *nn.Tensor) []float32 {
	out := make([]float32, x.Rows)
	k.ProbsInto(x, out)
	return out
}

// ProbsInto implements the pipeline's allocation-free fast path. Each call
// models one burst of x.Rows inputs streamed through the synthesized
// pipeline and charges its cycles to the kernel's ledger.
func (k *Kernel) ProbsInto(x *nn.Tensor, out []float32) {
	k.net.ProbsInto(x, out)
	if x.Rows > 0 {
		k.cycles.Add(int64(k.report.TotalCycles(x.Rows)))
		k.inputs.Add(int64(x.Rows))
		k.batches.Add(1)
	}
}

// Report returns the synthesis report the kernel was built from.
func (k *Kernel) Report() Report { return k.report }

// Net returns the underlying integer network.
func (k *Kernel) Net() *quant.Int8Net { return k.net }

// SimCycles returns the cumulative simulated hardware cycles charged so far.
func (k *Kernel) SimCycles() int64 { return k.cycles.Load() }

// SimInputs returns the cumulative rows inferred.
func (k *Kernel) SimInputs() int64 { return k.inputs.Load() }

// SimBatches returns the number of inference bursts charged.
func (k *Kernel) SimBatches() int64 { return k.batches.Load() }

// SimMs returns the cumulative simulated wall-clock time at the report's
// clock, the number to weigh against the software path's measured latency.
func (k *Kernel) SimMs() float64 {
	return float64(k.cycles.Load()) * k.report.ClockNs * 1e-6
}
