package campaign

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestCampaignParallelMatchesSerial pins the per-trial fan-out contract:
// sharding trials across workers must reproduce the serial campaign
// exactly — same outcomes in the same order, same false-alert and
// quiet-time accounting.
func TestCampaignParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	run := func(workers int) *Result {
		cfg := DefaultConfig(99)
		cfg.Bursts = 6
		cfg.QuietSecondsPerBurst = 1
		cfg.Workers = workers
		return Run(cfg, nil)
	}
	serial := run(1)
	for _, workers := range []int{2, 4} {
		got := run(workers)
		if !reflect.DeepEqual(got.Outcomes, serial.Outcomes) {
			t.Errorf("workers %d: outcomes diverge from serial\n got: %+v\nwant: %+v",
				workers, got.Outcomes, serial.Outcomes)
		}
		if got.FalseAlerts != serial.FalseAlerts {
			t.Errorf("workers %d: false alerts %d, serial %d", workers, got.FalseAlerts, serial.FalseAlerts)
		}
		if got.QuietSeconds != serial.QuietSeconds {
			t.Errorf("workers %d: quiet seconds %v, serial %v", workers, got.QuietSeconds, serial.QuietSeconds)
		}
	}
}

// TestCampaignMetricsAndCancellation exercises the obs wiring and the
// cancellable entry point.
func TestCampaignMetricsAndCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign simulation in -short mode")
	}
	reg := obs.NewRegistry()
	cfg := DefaultConfig(5)
	cfg.Bursts = 3
	cfg.QuietSecondsPerBurst = 1
	cfg.Metrics = reg
	res, err := RunContext(context.Background(), cfg, nil)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if len(res.Outcomes) != 3 {
		t.Fatalf("got %d outcomes, want 3", len(res.Outcomes))
	}
	if n := reg.Stage("trial").Count(); n != 3 {
		t.Errorf("trial histogram has %d samples, want 3", n)
	}
	// The pipeline's stage metrics flow through core into the same
	// registry whenever a burst triggered localization.
	if runs := reg.Counter("runs").Load(); runs < 1 {
		t.Errorf("pipeline runs counter = %d, want >= 1", runs)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, cfg, nil); err != context.Canceled {
		t.Errorf("cancelled campaign err = %v, want context.Canceled", err)
	}
}
