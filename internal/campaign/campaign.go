// Package campaign simulates observation campaigns: a population of
// gamma-ray bursts with a realistic brightness distribution arriving over a
// long exposure, processed by the on-board detection + localization system.
// It measures the mission-level quantities the paper's introduction argues
// for (§I: prompt detection, accurate localization, order-of-magnitude
// sensitivity improvements for the future APT): trigger efficiency and
// localization accuracy as functions of fluence.
package campaign

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/background"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/evio"
	"repro/internal/flightlog"
	"repro/internal/geom"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Population describes the burst brightness distribution: a power law in
// fluence, N(>S) ∝ S^(−Slope), the standard log N–log S form (Slope = 3/2
// for a homogeneous Euclidean source population).
type Population struct {
	// FluenceMin and FluenceMax bound the sampled fluences (MeV/cm²).
	FluenceMin, FluenceMax float64
	// Slope is the cumulative-distribution slope (3/2 Euclidean).
	Slope float64
	// MaxPolarDeg bounds source polar angles (Earth blocks the rest).
	MaxPolarDeg float64
}

// DefaultPopulation returns a Euclidean population spanning the dim-to-
// bright range of the paper's evaluation.
func DefaultPopulation() Population {
	return Population{FluenceMin: 0.25, FluenceMax: 8, Slope: 1.5, MaxPolarDeg: 80}
}

// Validate reports whether the population is a usable sampling
// distribution. Campaign configs built in Go are normally correct by
// construction; chaos scenario specs, which arrive as untrusted JSON,
// validate their random-burst populations through this before sampling.
func (p Population) Validate() error {
	switch {
	case !(p.FluenceMin > 0) || math.IsInf(p.FluenceMin, 0):
		return fmt.Errorf("campaign: FluenceMin must be positive and finite, got %g", p.FluenceMin)
	case !(p.FluenceMax > p.FluenceMin) || math.IsInf(p.FluenceMax, 0):
		return fmt.Errorf("campaign: FluenceMax must exceed FluenceMin, got %g <= %g", p.FluenceMax, p.FluenceMin)
	case !(p.Slope > 0) || math.IsInf(p.Slope, 0):
		return fmt.Errorf("campaign: Slope must be positive and finite, got %g", p.Slope)
	case !(p.MaxPolarDeg > 0) || p.MaxPolarDeg > 90:
		return fmt.Errorf("campaign: MaxPolarDeg must be in (0, 90], got %g", p.MaxPolarDeg)
	}
	return nil
}

// Sample draws one burst from the population.
func (p Population) Sample(rng *xrand.RNG) detector.Burst {
	// N(>S) ∝ S^−a ⇒ pdf ∝ S^−(a+1); sample via the power-law helper with
	// index −(a+1).
	fluence := rng.PowerLaw(-(p.Slope + 1), p.FluenceMin, p.FluenceMax)
	x, y, z := rng.UnitVectorPolarRange(0, geom.Rad(p.MaxPolarDeg))
	dir := geom.Vec{X: x, Y: y, Z: z}
	return detector.Burst{
		Fluence:    fluence,
		PolarDeg:   geom.Deg(geom.Polar(dir)),
		AzimuthDeg: geom.Deg(geom.Azimuth(dir)),
	}
}

// Config drives a campaign run.
type Config struct {
	Seed uint64
	// Bursts is how many bursts to inject (each in its own quiet stretch).
	Bursts int
	// QuietSecondsPerBurst is the background-only padding around each
	// burst, which the trigger must not fire on.
	QuietSecondsPerBurst float64
	// Population of burst brightnesses and directions.
	Population Population
	// Bundle supplies the networks (nil = no-ML pipeline).
	Bundle *models.Bundle
	// Backend selects the background-classifier inference implementation
	// for every trial's pipeline ("" = float32).
	Backend pipeline.Backend
	// Workers caps the per-trial fan-out: each burst's quiet window is an
	// independent simulation + detection + localization, so trials shard
	// across the pool. 0 means the process default, 1 serial. Outcomes are
	// identical for any value (fixed per-trial RNG substreams, reduced in
	// trial order). When trials fan out, the pipeline inside each trial
	// runs serially so the two levels don't multiply.
	Workers int
	// Metrics, when non-nil, receives the per-trial latency histogram
	// ("trial") and the pipeline stage metrics of every processed burst.
	Metrics *obs.Registry
	// Journal, when non-nil, records each trial's simulated exposure as one
	// evio blob — an archival flight journal of the whole campaign. Trials
	// complete in pool order, so record order varies run to run; each
	// record is internally sorted by arrival time.
	Journal *flightlog.Journal
}

// DefaultConfig returns a laptop-scale campaign.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:                 seed,
		Bursts:               30,
		QuietSecondsPerBurst: 2,
		Population:           DefaultPopulation(),
	}
}

// BurstOutcome records one injected burst's fate.
type BurstOutcome struct {
	Burst     detector.Burst
	Detected  bool
	ErrorDeg  float64 // valid when Detected and localization succeeded
	Localized bool
	// EstimateDeg is the system's self-reported 1σ radius.
	EstimateDeg float64
}

// Result summarizes a campaign.
type Result struct {
	Outcomes []BurstOutcome
	// FalseAlerts counts triggers with no injected burst within the window.
	FalseAlerts int
	// QuietSeconds is the total burst-free exposure scanned.
	QuietSeconds float64
}

// DetectionEfficiency returns the detected fraction of bursts with fluence
// in [lo, hi).
func (r *Result) DetectionEfficiency(lo, hi float64) (eff float64, n int) {
	det := 0
	for _, o := range r.Outcomes {
		if o.Burst.Fluence < lo || o.Burst.Fluence >= hi {
			continue
		}
		n++
		if o.Detected {
			det++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(det) / float64(n), n
}

// LocalizationErrors returns the errors of localized bursts in a fluence
// band.
func (r *Result) LocalizationErrors(lo, hi float64) []float64 {
	var out []float64
	for _, o := range r.Outcomes {
		if o.Localized && o.Burst.Fluence >= lo && o.Burst.Fluence < hi {
			out = append(out, o.ErrorDeg)
		}
	}
	return out
}

// Run simulates the campaign: each burst is embedded in its own quiet
// window and handed to the on-board system; detection means the trigger
// fired within the burst's true window.
func Run(cfg Config, w io.Writer) *Result {
	res, _ := RunContext(context.Background(), cfg, w)
	return res
}

// RunContext is Run with trial fan-out under a cancellable context.
// Cancellation stops scheduling new trials and returns the context error
// alongside the (partial, undercounted) result.
func RunContext(ctx context.Context, cfg Config, w io.Writer) (*Result, error) {
	det := detector.DefaultConfig()
	bg := background.DefaultModel()
	root := xrand.New(cfg.Seed)

	// Calibrate the quiet rate once, as the flight software would.
	calRNG := root.Split(0xCA1)
	meanRate := float64(len(bg.Simulate(&det, 1.0, calRNG)))

	// Split the per-trial RNG substreams up front, serially: Split reads
	// the root generator's state, and the trial loop below runs on the
	// worker pool.
	rngs := make([]*xrand.RNG, cfg.Bursts)
	for i := range rngs {
		rngs[i] = root.Split(uint64(i) + 1)
	}

	pool := par.NewPool(cfg.Workers)
	// When trials shard across workers, each trial's pipeline runs
	// serially — the trial level already saturates the pool, and nesting
	// would oversubscribe the machine.
	innerWorkers := 0
	if pool.Workers() > 1 {
		innerWorkers = 1
	}

	type trial struct {
		outcome     BurstOutcome
		falseAlerts int
	}
	trials := make([]trial, cfg.Bursts)
	err := pool.ForEach(ctx, cfg.Bursts, func(i int) {
		stop := cfg.Metrics.StartStage("trial")
		defer stop()
		rng := rngs[i]
		burst := cfg.Population.Sample(rng)

		exposure := cfg.QuietSecondsPerBurst + 1.0
		events := bg.Simulate(&det, exposure, rng)
		t0 := cfg.QuietSecondsPerBurst / 2
		for _, ev := range detector.SimulateBurst(&det, burst, rng) {
			ev.ArrivalTime += t0
			events = append(events, ev)
		}

		if cfg.Journal != nil {
			sorted := append([]*detector.Event(nil), events...)
			sort.Slice(sorted, func(a, b int) bool { return sorted[a].ArrivalTime < sorted[b].ArrivalTime })
			if blob, jerr := evio.Marshal(sorted); jerr == nil {
				if jerr = cfg.Journal.Append(blob); jerr != nil {
					cfg.Metrics.Counter("campaign_journal_errors").Inc()
				}
			} else {
				cfg.Metrics.Counter("campaign_journal_errors").Inc()
			}
		}

		sysCfg := core.DefaultConfig(meanRate)
		sysCfg.Bundle = cfg.Bundle
		sysCfg.Backend = cfg.Backend
		sysCfg.Workers = innerWorkers
		sysCfg.Metrics = cfg.Metrics
		alerts := core.NewSystem(sysCfg).ProcessExposure(events, rng)

		trials[i].outcome = BurstOutcome{Burst: burst}
		for _, a := range alerts {
			if a.TriggerTime >= t0-0.3 && a.TriggerTime <= t0+1.0 {
				trials[i].outcome.Detected = true
				if a.Result.Loc.OK {
					trials[i].outcome.Localized = true
					trials[i].outcome.ErrorDeg = a.Result.Loc.ErrorDeg(burst.SourceDirection())
					trials[i].outcome.EstimateDeg = a.Result.ErrorRadiusDeg
				}
			} else {
				trials[i].falseAlerts++
			}
		}
	})

	// Reduce in trial order: the aggregate is identical to the serial
	// loop's regardless of how trials interleaved on the pool.
	res := &Result{}
	for i := range trials {
		res.QuietSeconds += cfg.QuietSecondsPerBurst
		res.FalseAlerts += trials[i].falseAlerts
		res.Outcomes = append(res.Outcomes, trials[i].outcome)
	}

	if w != nil && err == nil {
		res.Report(w)
	}
	return res, err
}

// Report prints the campaign summary: efficiency and accuracy per fluence
// band, plus the false-alert rate.
func (r *Result) Report(w io.Writer) {
	bands := [][2]float64{{0.25, 0.5}, {0.5, 1}, {1, 2}, {2, 8}}
	fmt.Fprintf(w, "campaign: %d bursts, %.0f s quiet exposure, %d false alerts\n",
		len(r.Outcomes), r.QuietSeconds, r.FalseAlerts)
	fmt.Fprintf(w, "  %-14s %-8s %-10s %-14s\n", "fluence band", "n", "detected", "68% err (deg)")
	for _, b := range bands {
		eff, n := r.DetectionEfficiency(b[0], b[1])
		errs := r.LocalizationErrors(b[0], b[1])
		errStr := "—"
		if len(errs) > 0 {
			errStr = fmt.Sprintf("%.2f", stats.Containment(errs, 0.68))
		}
		fmt.Fprintf(w, "  %5.2f–%-7.2f %-8d %-10.2f %-14s\n", b[0], b[1], n, eff, errStr)
	}
}

// SensitivityFluence estimates the 50%-efficiency detection threshold by
// scanning the outcomes with a simple sliding logistic fit surrogate: the
// fluence at which the running detection fraction first stays ≥ 0.5.
func (r *Result) SensitivityFluence() float64 {
	// Sort outcomes by fluence and find the dimmest band where the
	// detected fraction of bursts at or above that fluence is ≥ 0.9.
	type fo struct {
		f   float64
		det bool
	}
	var xs []fo
	for _, o := range r.Outcomes {
		xs = append(xs, fo{o.Burst.Fluence, o.Detected})
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	// Insertion sort (n is small).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j].f < xs[j-1].f; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	for i := range xs {
		det, n := 0, 0
		for _, x := range xs[i:] {
			n++
			if x.det {
				det++
			}
		}
		if float64(det)/float64(n) >= 0.9 {
			return xs[i].f
		}
	}
	return xs[len(xs)-1].f
}
