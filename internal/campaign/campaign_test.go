package campaign

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/detector"
	"repro/internal/evio"
	"repro/internal/flightlog"
	"repro/internal/xrand"
)

func TestPopulationSample(t *testing.T) {
	p := DefaultPopulation()
	rng := xrand.New(1)
	brighterThan1 := 0
	n := 20000
	for i := 0; i < n; i++ {
		b := p.Sample(rng)
		if b.Fluence < p.FluenceMin || b.Fluence > p.FluenceMax {
			t.Fatalf("fluence %v out of range", b.Fluence)
		}
		if b.PolarDeg < 0 || b.PolarDeg > p.MaxPolarDeg+1e-9 {
			t.Fatalf("polar %v out of range", b.PolarDeg)
		}
		if b.Fluence > 1 {
			brighterThan1++
		}
	}
	// Euclidean log N–log S: P(S > 1) = (1^-1.5 − max^-1.5)/(min^-1.5 − max^-1.5).
	mn := math.Pow(p.FluenceMin, -p.Slope)
	mx := math.Pow(p.FluenceMax, -p.Slope)
	want := (1 - mx) / (mn - mx)
	got := float64(brighterThan1) / float64(n)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("P(S>1) = %v, want %v", got, want)
	}
}

func TestCampaignRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := DefaultConfig(3)
	cfg.Bursts = 12
	cfg.QuietSecondsPerBurst = 1
	var buf bytes.Buffer
	res := Run(cfg, &buf)

	if len(res.Outcomes) != cfg.Bursts {
		t.Fatalf("%d outcomes, want %d", len(res.Outcomes), cfg.Bursts)
	}
	// Bright bursts must be detected and localized.
	for _, o := range res.Outcomes {
		if o.Burst.Fluence >= 2 {
			if !o.Detected {
				t.Errorf("bright burst (%.2f MeV/cm²) missed", o.Burst.Fluence)
			} else if o.Localized && o.ErrorDeg > 20 {
				t.Errorf("bright burst localized to %v°", o.ErrorDeg)
			}
		}
	}
	// The trigger must not fire on quiet stretches.
	if res.FalseAlerts > 1 {
		t.Errorf("%d false alerts over %v quiet seconds", res.FalseAlerts, res.QuietSeconds)
	}
	if !strings.Contains(buf.String(), "fluence band") {
		t.Error("report table missing")
	}
	if s := res.SensitivityFluence(); math.IsNaN(s) || s < cfg.Population.FluenceMin || s > cfg.Population.FluenceMax {
		t.Errorf("sensitivity estimate %v out of range", s)
	}
}

// TestCampaignJournalRecords runs a tiny campaign with a flight journal
// attached and checks that every trial's exposure was archived as one
// decodable evio blob.
func TestCampaignJournalRecords(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	j, err := flightlog.Open(flightlog.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(5)
	cfg.Bursts = 4
	cfg.QuietSecondsPerBurst = 1
	cfg.Journal = j
	Run(cfg, nil)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	trials := 0
	err = flightlog.Replay(j.Dir(), func(payload []byte) error {
		events, err := evio.Unmarshal(payload)
		if err != nil {
			return err
		}
		if len(events) == 0 {
			t.Error("journaled trial holds no events")
		}
		for i := 1; i < len(events); i++ {
			if events[i].ArrivalTime < events[i-1].ArrivalTime {
				t.Fatal("journaled trial not sorted by arrival time")
			}
		}
		trials++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if trials != cfg.Bursts {
		t.Fatalf("journal holds %d trials, want %d", trials, cfg.Bursts)
	}
}

func TestResultAccessors(t *testing.T) {
	r := &Result{Outcomes: []BurstOutcome{
		{Burst: burst(0.3), Detected: false},
		{Burst: burst(0.3), Detected: true, Localized: true, ErrorDeg: 5},
		{Burst: burst(3.0), Detected: true, Localized: true, ErrorDeg: 1},
	}}
	eff, n := r.DetectionEfficiency(0.25, 0.5)
	if n != 2 || eff != 0.5 {
		t.Errorf("efficiency %v over %d", eff, n)
	}
	errs := r.LocalizationErrors(0.25, 0.5)
	if len(errs) != 1 || errs[0] != 5 {
		t.Errorf("errors %v", errs)
	}
	if _, n := r.DetectionEfficiency(10, 20); n != 0 {
		t.Error("empty band not empty")
	}
}

func TestSensitivityMonotone(t *testing.T) {
	// All-detected population → sensitivity at the dimmest burst.
	r := &Result{Outcomes: []BurstOutcome{
		{Burst: burst(0.5), Detected: true},
		{Burst: burst(1), Detected: true},
		{Burst: burst(2), Detected: true},
	}}
	if got := r.SensitivityFluence(); got != 0.5 {
		t.Errorf("all-detected sensitivity %v, want 0.5", got)
	}
	// Dim bursts missed → threshold above them.
	r = &Result{Outcomes: []BurstOutcome{
		{Burst: burst(0.5), Detected: false},
		{Burst: burst(1), Detected: true},
		{Burst: burst(2), Detected: true},
	}}
	if got := r.SensitivityFluence(); got != 1 {
		t.Errorf("sensitivity %v, want 1", got)
	}
}

func burst(f float64) detector.Burst { return detector.Burst{Fluence: f} }

func TestPopulationValidate(t *testing.T) {
	if err := DefaultPopulation().Validate(); err != nil {
		t.Fatalf("default population invalid: %v", err)
	}
	bad := []Population{
		{FluenceMin: 0, FluenceMax: 8, Slope: 1.5, MaxPolarDeg: 80},
		{FluenceMin: 2, FluenceMax: 1, Slope: 1.5, MaxPolarDeg: 80},
		{FluenceMin: 0.25, FluenceMax: 8, Slope: 0, MaxPolarDeg: 80},
		{FluenceMin: 0.25, FluenceMax: 8, Slope: 1.5, MaxPolarDeg: 120},
		{FluenceMin: math.Inf(1), FluenceMax: math.Inf(1), Slope: 1.5, MaxPolarDeg: 80},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("population %d validated but should not: %+v", i, p)
		}
	}
}
