package evio

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/detector"
	"repro/internal/geom"
)

// fuzzSeedEvents builds a small valid stream for the seed corpus.
func fuzzSeedEvents() []*detector.Event {
	return []*detector.Event{
		{
			Source:      detector.SourceGRB,
			TrueSource:  geom.Vec{Z: 1},
			TrueEnergy:  1.25,
			ArrivalTime: 0.5,
			Hits: []detector.Hit{
				{Pos: geom.Vec{X: 1, Y: 2, Z: 3}, E: 0.511, SigmaX: 0.1, SigmaY: 0.1, SigmaZ: 0.2, SigmaE: 0.05, Layer: 0},
				{Pos: geom.Vec{X: -1, Y: 0, Z: -9}, E: 0.7, SigmaX: 0.1, SigmaY: 0.1, SigmaZ: 0.2, SigmaE: 0.05, Layer: 3},
			},
		},
		{Source: detector.SourceBackground, FullyAbsorbed: true},
	}
}

// FuzzReader feeds arbitrary bytes to the stream reader — the same path
// adaptserve exposes to untrusted network clients. The reader must never
// panic: truncated, corrupt, or hostile streams return errors. Run with
// `go test -fuzz=FuzzReader ./internal/evio`.
func FuzzReader(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteAll(&valid, fuzzSeedEvents()); err != nil {
		f.Fatal(err)
	}
	var empty bytes.Buffer
	if err := NewWriter(&empty).Close(); err != nil {
		f.Fatal(err)
	}

	f.Add(valid.Bytes())                        // well-formed stream
	f.Add(empty.Bytes())                        // header only
	f.Add([]byte{})                             // no bytes at all
	f.Add(valid.Bytes()[:6])                    // truncated mid-header
	f.Add(valid.Bytes()[:len(valid.Bytes())-3]) // truncated mid-hit
	f.Add([]byte("XDEV\x01\x00\x00\x00"))       // bad magic
	f.Add([]byte("ADEV\x63\x00\x00\x00"))       // unsupported version
	// Header claiming 0xFFFF hits with no hit payload.
	f.Add(append(append([]byte{}, empty.Bytes()...),
		0xFF, 0xFF, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0))
	// Multi-segment stream: two complete streams back to back, as a naive
	// concatenation of journal segments would produce. The second header's
	// magic lands where an event header is expected; the reader must
	// reject it without panicking rather than resynchronize silently.
	f.Add(append(append([]byte{}, valid.Bytes()...), valid.Bytes()...))
	// Multi-segment with an empty first segment (header-only prefix).
	f.Add(append(append([]byte{}, empty.Bytes()...), valid.Bytes()...))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := NewReader(bytes.NewReader(data)).ReadAll()
		if err != nil {
			if errors.Is(err, io.EOF) {
				t.Fatalf("ReadAll leaked raw io.EOF instead of nil or a wrapped error")
			}
			return
		}
		// Property: anything the reader accepts must round-trip — encode
		// the decoded events and decode again to an equal stream.
		var buf bytes.Buffer
		if werr := WriteAll(&buf, events); werr != nil {
			t.Fatalf("re-encode of accepted stream failed: %v", werr)
		}
		again, rerr := NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
		if rerr != nil {
			t.Fatalf("re-decode of re-encoded stream failed: %v", rerr)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed event count: %d → %d", len(events), len(again))
		}
		for i := range events {
			if len(again[i].Hits) != len(events[i].Hits) {
				t.Fatalf("event %d: round trip changed hit count: %d → %d",
					i, len(events[i].Hits), len(again[i].Hits))
			}
		}
	})
}
