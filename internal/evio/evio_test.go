package evio

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/detector"
	"repro/internal/xrand"
)

func TestRoundTripSimulatedEvents(t *testing.T) {
	cfg := detector.DefaultConfig()
	rng := xrand.New(1)
	events := detector.SimulateBurst(&cfg, detector.Burst{Fluence: 0.3, PolarDeg: 25, AzimuthDeg: 90}, rng)
	if len(events) == 0 {
		t.Fatal("no events to serialize")
	}

	var buf bytes.Buffer
	if err := WriteAll(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("%d events back, want %d", len(got), len(events))
	}
	for i, ev := range events {
		g := got[i]
		if len(g.Hits) != len(ev.Hits) || g.Source != ev.Source || g.FullyAbsorbed != ev.FullyAbsorbed {
			t.Fatalf("event %d metadata mismatch", i)
		}
		if g.ArrivalTime != ev.ArrivalTime {
			t.Fatalf("event %d arrival %v vs %v (float64 must be exact)", i, g.ArrivalTime, ev.ArrivalTime)
		}
		if math.Abs(g.TrueEnergy-ev.TrueEnergy) > 1e-6*ev.TrueEnergy {
			t.Fatalf("event %d energy %v vs %v", i, g.TrueEnergy, ev.TrueEnergy)
		}
		for j := range ev.Hits {
			a, b := ev.Hits[j], g.Hits[j]
			if a.Layer != b.Layer {
				t.Fatalf("hit layer mismatch")
			}
			if math.Abs(a.Pos.X-b.Pos.X) > 1e-5 || math.Abs(a.E-b.E) > 1e-6 {
				t.Fatalf("hit values drifted beyond float32 precision")
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := xrand.New(seed)
		n := int(nRaw % 5)
		events := make([]*detector.Event, 0, n)
		for i := 0; i < n; i++ {
			nh := rng.IntN(4) + 1
			ev := &detector.Event{
				Source:        detector.SourceKind(rng.IntN(2)),
				TrueEnergy:    rng.Uniform(0.03, 30),
				ArrivalTime:   rng.Float64(),
				FullyAbsorbed: rng.Bool(0.5),
			}
			for h := 0; h < nh; h++ {
				ev.Hits = append(ev.Hits, detector.Hit{
					Pos:    vec3(rng.Uniform(-20, 20), rng.Uniform(-20, 20), rng.Uniform(-32, 0)),
					E:      rng.Uniform(0.02, 5),
					SigmaX: 0.17, SigmaY: 0.17, SigmaZ: 0.43,
					SigmaE: rng.Uniform(0.001, 0.2),
					Layer:  rng.IntN(4),
				})
			}
			events = append(events, ev)
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, events); err != nil {
			return false
		}
		got, err := NewReader(&buf).ReadAll()
		if err != nil || len(got) != len(events) {
			return false
		}
		for i := range events {
			if len(got[i].Hits) != len(events[i].Hits) {
				return false
			}
			if got[i].ArrivalTime != events[i].ArrivalTime {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// randomBatch builds a randomized event batch whose field values are exact
// in the on-disk format (float32 positions/energies, float64 arrival), so
// the writer round trip must reproduce them bit-for-bit.
func randomBatch(rng *xrand.RNG, n int) []*detector.Event {
	events := make([]*detector.Event, 0, n)
	for i := 0; i < n; i++ {
		ev := &detector.Event{
			Source:        detector.SourceKind(rng.IntN(2)),
			TrueSource:    vec3(float64(float32(rng.Uniform(-1, 1))), float64(float32(rng.Uniform(-1, 1))), float64(float32(rng.Uniform(0, 1)))),
			TrueEnergy:    float64(float32(rng.Uniform(0.03, 30))),
			ArrivalTime:   rng.Float64(),
			FullyAbsorbed: rng.Bool(0.5),
		}
		for h := rng.IntN(6); h > 0; h-- {
			ev.Hits = append(ev.Hits, detector.Hit{
				Pos:    vec3(float64(float32(rng.Uniform(-20, 20))), float64(float32(rng.Uniform(-20, 20))), float64(float32(rng.Uniform(-32, 0)))),
				E:      float64(float32(rng.Uniform(0.02, 5))),
				SigmaX: 0.125, SigmaY: 0.25, SigmaZ: 0.5,
				SigmaE: float64(float32(rng.Uniform(0.001, 0.2))),
				Layer:  rng.IntN(4),
			})
		}
		events = append(events, ev)
	}
	return events
}

// TestWriterRoundTripProperty is the writer-side complement of FuzzReader:
// for randomized event batches, encode→decode must return exactly the
// values written (all fields representable in the format), and re-encoding
// the decoded batch must reproduce the original stream byte for byte.
func TestWriterRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := xrand.New(seed)
		events := randomBatch(rng, int(nRaw%8))

		blob, err := Marshal(events)
		if err != nil {
			t.Logf("Marshal: %v", err)
			return false
		}
		got, err := Unmarshal(blob)
		if err != nil || len(got) != len(events) {
			t.Logf("Unmarshal: %d events, err %v", len(got), err)
			return false
		}
		for i, ev := range events {
			g := got[i]
			if g.Source != ev.Source || g.FullyAbsorbed != ev.FullyAbsorbed ||
				g.ArrivalTime != ev.ArrivalTime || g.TrueEnergy != ev.TrueEnergy ||
				g.TrueSource != ev.TrueSource || len(g.Hits) != len(ev.Hits) {
				t.Logf("event %d header mismatch: %+v vs %+v", i, g, ev)
				return false
			}
			for j := range ev.Hits {
				a, b := ev.Hits[j], g.Hits[j]
				if a != b {
					t.Logf("event %d hit %d mismatch: %+v vs %+v", i, j, a, b)
					return false
				}
			}
		}
		// Byte-exactness: the decoded batch re-encodes to the same stream.
		again, err := Marshal(got)
		if err != nil || !bytes.Equal(again, blob) {
			t.Logf("re-encode differs (err %v)", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 8 {
		t.Errorf("empty stream is %d bytes, want 8 (header only)", buf.Len())
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil || len(got) != 0 {
		t.Errorf("empty stream read: %v events, err %v", len(got), err)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE\x01\x00\x00\x00"))).ReadAll(); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("ADEV\x63\x00\x00\x00"))).ReadAll(); err == nil {
		t.Error("future version accepted")
	}
	// Truncated mid-event: an error, not a silent EOF.
	var buf bytes.Buffer
	ev := &detector.Event{Hits: []detector.Hit{{E: 1}}}
	if err := WriteAll(&buf, []*detector.Event{ev}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	_, err := NewReader(bytes.NewReader(trunc)).ReadAll()
	if err == nil || errors.Is(err, io.EOF) {
		t.Errorf("truncated stream error = %v, want a framing error", err)
	}
}

func TestWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEvent(&detector.Event{}); err == nil {
		t.Error("write after close succeeded")
	}
	if err := w.Close(); err != nil {
		t.Error("double close errored")
	}
}

func vec3(x, y, z float64) (v struct{ X, Y, Z float64 }) {
	v.X, v.Y, v.Z = x, y, z
	return v
}
