// Package evio serializes detector events in a compact binary framing
// suitable for the instrument's storage and telemetry budget, with a
// streaming reader/writer pair. The format is versioned and
// little-endian:
//
//	file   := magic(4) version(u16) reserved(u16) record*
//	record := eventHeader hits*
//	eventHeader := nHits(u16) source(u8) flags(u8) trueSrc(3×f32)
//	               trueEnergy(f32) arrival(f64)
//	hit    := pos(3×f32) e(f32) sigmaXYZ(3×f32) sigmaE(f32) layer(u8) pad(3)
//
// Ground-truth fields (true source, energy, source label) travel with the
// event because the format's first consumer is the simulation/training
// loop; a flight build would zero them. TrueHits are not serialized — they
// exist only for diagnostics inside a single process.
package evio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/detector"
	"repro/internal/geom"
)

// magic identifies evio streams ("ADEV").
var magic = [4]byte{'A', 'D', 'E', 'V'}

// Version of the on-disk format.
const Version uint16 = 1

// flag bits in the event header.
const (
	flagFullyAbsorbed = 1 << 0
)

// Writer streams events to an io.Writer.
type Writer struct {
	w      *bufio.Writer
	wrote  bool
	closed bool
}

// NewWriter starts a stream on w. The header is written lazily with the
// first event (or by Close for an empty stream).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (w *Writer) header() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	if _, err := w.w.Write(magic[:]); err != nil {
		return err
	}
	if err := binary.Write(w.w, binary.LittleEndian, Version); err != nil {
		return err
	}
	return binary.Write(w.w, binary.LittleEndian, uint16(0)) // reserved
}

// WriteEvent appends one event to the stream.
func (w *Writer) WriteEvent(ev *detector.Event) error {
	if w.closed {
		return errors.New("evio: write after Close")
	}
	if len(ev.Hits) > math.MaxUint16 {
		return fmt.Errorf("evio: event with %d hits exceeds format limit", len(ev.Hits))
	}
	if err := w.header(); err != nil {
		return err
	}
	var flags uint8
	if ev.FullyAbsorbed {
		flags |= flagFullyAbsorbed
	}
	hdr := struct {
		NHits      uint16
		Source     uint8
		Flags      uint8
		TrueSrc    [3]float32
		TrueEnergy float32
		Arrival    float64
	}{
		NHits:      uint16(len(ev.Hits)),
		Source:     uint8(ev.Source),
		Flags:      flags,
		TrueSrc:    [3]float32{float32(ev.TrueSource.X), float32(ev.TrueSource.Y), float32(ev.TrueSource.Z)},
		TrueEnergy: float32(ev.TrueEnergy),
		Arrival:    ev.ArrivalTime,
	}
	if err := binary.Write(w.w, binary.LittleEndian, &hdr); err != nil {
		return err
	}
	for i := range ev.Hits {
		h := &ev.Hits[i]
		rec := struct {
			Pos    [3]float32
			E      float32
			Sigma  [3]float32
			SigmaE float32
			Layer  uint8
			Pad    [3]uint8
		}{
			Pos:    [3]float32{float32(h.Pos.X), float32(h.Pos.Y), float32(h.Pos.Z)},
			E:      float32(h.E),
			Sigma:  [3]float32{float32(h.SigmaX), float32(h.SigmaY), float32(h.SigmaZ)},
			SigmaE: float32(h.SigmaE),
			Layer:  uint8(h.Layer),
		}
		if err := binary.Write(w.w, binary.LittleEndian, &rec); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes the stream (writing the header even if no events were
// written). It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.header(); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader streams events from an io.Reader.
type Reader struct {
	r       *bufio.Reader
	started bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (r *Reader) start() error {
	if r.started {
		return nil
	}
	r.started = true
	var m [4]byte
	if _, err := io.ReadFull(r.r, m[:]); err != nil {
		return fmt.Errorf("evio: reading magic: %w", err)
	}
	if m != magic {
		return fmt.Errorf("evio: bad magic %q", m)
	}
	var ver, reserved uint16
	if err := binary.Read(r.r, binary.LittleEndian, &ver); err != nil {
		return err
	}
	if ver != Version {
		return fmt.Errorf("evio: unsupported version %d", ver)
	}
	return binary.Read(r.r, binary.LittleEndian, &reserved)
}

// ReadEvent returns the next event, or io.EOF at end of stream.
func (r *Reader) ReadEvent() (*detector.Event, error) {
	if err := r.start(); err != nil {
		return nil, err
	}
	var hdr struct {
		NHits      uint16
		Source     uint8
		Flags      uint8
		TrueSrc    [3]float32
		TrueEnergy float32
		Arrival    float64
	}
	if err := binary.Read(r.r, binary.LittleEndian, &hdr); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("evio: event header: %w", err)
	}
	ev := &detector.Event{
		Source:        detector.SourceKind(hdr.Source),
		TrueSource:    geom.Vec{X: float64(hdr.TrueSrc[0]), Y: float64(hdr.TrueSrc[1]), Z: float64(hdr.TrueSrc[2])},
		TrueEnergy:    float64(hdr.TrueEnergy),
		ArrivalTime:   hdr.Arrival,
		FullyAbsorbed: hdr.Flags&flagFullyAbsorbed != 0,
		Hits:          make([]detector.Hit, hdr.NHits),
	}
	for i := range ev.Hits {
		var rec struct {
			Pos    [3]float32
			E      float32
			Sigma  [3]float32
			SigmaE float32
			Layer  uint8
			Pad    [3]uint8
		}
		if err := binary.Read(r.r, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("evio: hit %d: %w", i, err)
		}
		ev.Hits[i] = detector.Hit{
			Pos:    geom.Vec{X: float64(rec.Pos[0]), Y: float64(rec.Pos[1]), Z: float64(rec.Pos[2])},
			E:      float64(rec.E),
			SigmaX: float64(rec.Sigma[0]),
			SigmaY: float64(rec.Sigma[1]),
			SigmaZ: float64(rec.Sigma[2]),
			SigmaE: float64(rec.SigmaE),
			Layer:  int(rec.Layer),
		}
	}
	return ev, nil
}

// ReadAll drains the stream.
func (r *Reader) ReadAll() ([]*detector.Event, error) {
	var out []*detector.Event
	for {
		ev, err := r.ReadEvent()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}

// WriteAll writes all events and closes the stream.
func WriteAll(w io.Writer, events []*detector.Event) error {
	ew := NewWriter(w)
	for _, ev := range events {
		if err := ew.WriteEvent(ev); err != nil {
			return err
		}
	}
	return ew.Close()
}

// Marshal encodes events as one self-contained evio stream in memory —
// the payload form the flight journal records (one blob per admitted
// event or exposure). The encoding is deterministic: equal event lists
// produce equal bytes.
func Marshal(events []*detector.Event) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, events); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes a stream produced by Marshal (or any evio stream held
// in memory).
func Unmarshal(data []byte) ([]*detector.Event, error) {
	return NewReader(bytes.NewReader(data)).ReadAll()
}
