package serve

import (
	"io"
	"net/http"
	"strconv"

	"repro/internal/detector"
	"repro/internal/evio"
	"repro/internal/flightlog"
	"repro/internal/stream"
)

// ContentTypeFlightLog is the body framing of POST /v1/replay: the raw
// concatenation of a flight journal's segment files, exactly what
// `cat journal-*.flog` produces on the ground after a downlink.
const ContentTypeFlightLog = "application/x-adapt-flightlog"

// handleReplay implements POST /v1/replay: run the streaming trigger over
// a recorded flight journal and return the alert records the flight did
// (or should have) produced. The body is the concatenated segment files of
// one journal; a torn tail from a mid-append crash is tolerated and
// reported in the response, never silently dropped. Localization windows
// run through the same pipeline as /v1/localize — including the shared NN
// micro-batcher — so a replay benefits from cross-request batching, and
// because the batcher evaluates the same network row-independently, its
// alerts are bitwise-identical to an onboard run with the same models.
//
// Query parameters:
//
//	seed        solver seed (default 1)
//	bkg_rate    calibrated quiet-sky rate in events/s (default: the
//	            journal's own mean rate, which is deterministic from the
//	            body)
//	sigma       trigger threshold in Poisson sigma (default 8)
//	window      trigger sliding-window seconds (default 0.1)
func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	stop := s.metrics.StartStage("serve_replay")
	defer stop()
	s.metrics.Counter("serve_replay_requests").Inc()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.metrics.Counter("serve_replay_bad_request").Inc()
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var events []*detector.Event
	st, err := flightlog.ScanStream(body, func(payload []byte) error {
		evs, err := evio.Unmarshal(payload)
		if err != nil {
			return err
		}
		events = append(events, evs...)
		return nil
	})
	if err != nil {
		s.metrics.Counter("serve_replay_bad_request").Inc()
		writeError(w, http.StatusBadRequest, "parse journal: %v", err)
		return
	}
	if len(events) == 0 {
		s.metrics.Counter("serve_replay_bad_request").Inc()
		writeError(w, http.StatusBadRequest, "journal holds no events")
		return
	}

	q := r.URL.Query()
	seed := uint64(1)
	if v := q.Get("seed"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil && n > 0 {
			seed = n
		}
	}
	rate := 0.0
	if v := q.Get("bkg_rate"); v != "" {
		rate, _ = strconv.ParseFloat(v, 64)
	}
	if rate <= 0 {
		// The journal's own mean rate: deterministic from the body, and a
		// reasonable quiet-sky estimate when bursts are a small fraction of
		// the exposure.
		span := events[len(events)-1].ArrivalTime - events[0].ArrivalTime
		if span <= 0 {
			span = 1
		}
		rate = float64(len(events)) / span
	}

	ctx, cancel := s.requestCtx(r)
	defer cancel()
	release, wait := s.admit(ctx, w, "replay")
	if release == nil {
		return
	}
	defer release()

	set := s.store.current()
	cfg := stream.DefaultConfig(rate)
	cfg.Recon = s.inst.Recon
	cfg.Loc = s.inst.Loc
	cfg.MaxNNIters = s.inst.MaxNNIters
	cfg.Workers = s.inst.Workers
	cfg.Bundle = set.bundle
	cfg.BkgOverride = set.classifier()
	cfg.Seed = seed
	if v := q.Get("sigma"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			cfg.SigmaThreshold = f
		}
	}
	if v := q.Get("window"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			cfg.WindowSec = f
		}
	}
	cfg.AlertBuffer = 64

	p := stream.New(cfg)
	alerts := make([]stream.Record, 0, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for a := range p.Alerts() {
			alerts = append(alerts, a.Record())
		}
	}()
	for _, ev := range events {
		p.Ingest(ev)
	}
	p.Close()
	<-done

	s.metrics.Counter("serve_replay_ok").Inc()
	resp := &ReplayResponse{
		Events:         len(events),
		Records:        st.Records,
		TruncatedBytes: st.TruncatedBytes,
		BkgRateHz:      rate,
		ML:             set.bundle != nil,
		Alerts:         alerts,
		QueueMs:        wait.Seconds() * 1e3,
	}
	if canonicalRequested(r) {
		resp.QueueMs = 0
	}
	s.setModelHeaders(w, set)
	writeJSON(w, http.StatusOK, resp)
}
