package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errOverload is returned by admission.acquire when the waiting room is
// full — the explicit backpressure signal the HTTP layer maps to
// 429 Too Many Requests with a Retry-After hint.
var errOverload = errors.New("serve: admission queue full")

// admission is a bounded two-stage queue in front of the pipeline: at most
// `slots` requests compute concurrently, at most `queue` more wait for a
// slot, and everything beyond that is rejected immediately rather than
// buffered without bound. Waiters honor their request context, so a
// per-request deadline expires in the queue instead of wedging it.
type admission struct {
	slots chan struct{}
	// inflight counts holders plus waiters; admission is refused when it
	// would exceed cap(slots)+queue.
	inflight atomic.Int64
	limit    int64
}

func newAdmission(slots, queue int) *admission {
	if slots <= 0 {
		slots = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &admission{
		slots: make(chan struct{}, slots),
		limit: int64(slots + queue),
	}
}

// acquire blocks until a compute slot is free, the waiting room is full
// (errOverload), or ctx expires (ctx.Err()). Every successful acquire must
// be paired with release.
func (a *admission) acquire(ctx context.Context) error {
	if a.inflight.Add(1) > a.limit {
		a.inflight.Add(-1)
		return errOverload
	}
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		a.inflight.Add(-1)
		return ctx.Err()
	}
}

// release frees the compute slot taken by acquire.
func (a *admission) release() {
	<-a.slots
	a.inflight.Add(-1)
}

// queued reports how many requests are currently admitted or waiting.
func (a *admission) queued() int64 { return a.inflight.Load() }

// computing reports how many requests currently hold a compute slot.
func (a *admission) computing() int64 { return int64(len(a.slots)) }

// waiting reports how many admitted requests are queued for a slot. The
// two loads are not atomic together, so a transient negative is clamped.
func (a *admission) waiting() int64 {
	w := a.queued() - a.computing()
	if w < 0 {
		w = 0
	}
	return w
}
