package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// LoadConfig drives RunLoad, the built-in load generator (adaptserve
// -loadgen). It replays one request body at a target rate so service
// throughput claims are reproducible: same body, same QPS, same report.
type LoadConfig struct {
	// TargetURL is the full endpoint URL, e.g.
	// "http://127.0.0.1:8080/v1/localize".
	TargetURL string
	// Targets, when non-empty, overrides TargetURL with an open-loop
	// multi-target mode: requests round-robin across the listed endpoint
	// URLs while latency still aggregates into one fleet-wide histogram,
	// so an N-replica fleet is measured as one service. Per-target
	// outcome counts land in LoadReport.PerTarget.
	Targets []string
	// Body is the request payload, sent verbatim on every request.
	Body []byte
	// ContentType of Body (default ContentTypeEvio).
	ContentType string
	// QPS is the open-loop request rate (default 20).
	QPS float64
	// Duration bounds the run (default 5s).
	Duration time.Duration
	// Concurrency is the worker count; requests beyond it are dropped at
	// the generator (counted as Skipped) rather than queued without bound,
	// keeping the offered rate honest under a slow server (default 8).
	Concurrency int
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
	// Metrics receives the latency histogram ("loadgen_latency") and
	// outcome counters; nil creates a fresh registry.
	Metrics *obs.Registry
}

// TargetCount is one target's outcome tally in a multi-target run.
type TargetCount struct {
	URL      string
	Sent     int64
	OK       int64
	Rejected int64
	Failed   int64
}

// LoadReport summarizes one load-generator run. Latency percentiles come
// from the same obs histogram machinery the server itself reports with.
type LoadReport struct {
	Sent     int64
	OK       int64
	Rejected int64 // 429 backpressure responses
	Failed   int64 // transport errors and non-200/429 statuses
	Skipped  int64 // ticks dropped because all workers were busy
	Elapsed  time.Duration
	// OfferedQPS is the configured open-loop rate the run aimed for.
	OfferedQPS float64
	// AchievedQPS is completed requests (all outcomes) per second.
	AchievedQPS float64
	// GoodQPS is successful (2xx) requests per second — the number that
	// saturates as offered load exceeds fleet capacity.
	GoodQPS float64
	// Latency summarizes per-request wall time (obs √2-bucket histogram);
	// in multi-target mode it is fleet-wide, across every target.
	Latency obs.HistogramSnapshot
	// PerTarget breaks outcomes down by target URL (multi-target mode;
	// single-target runs report one row).
	PerTarget []TargetCount
	// Metrics is the registry the run recorded into.
	Metrics *obs.Registry
}

// targetTally accumulates one target's outcomes with atomics so every
// loadgen worker can record without locking.
type targetTally struct {
	url                        string
	sent, ok, rejected, failed atomic.Int64
}

// RunLoad fires cfg.Body at the target(s) at cfg.QPS until cfg.Duration (or
// ctx cancellation) and reports outcome counts plus latency percentiles.
// With multiple targets, requests round-robin across them (open loop: the
// offered rate is fleet-total, not per-target).
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	targets := cfg.Targets
	if len(targets) == 0 {
		if cfg.TargetURL == "" {
			return nil, fmt.Errorf("serve: loadgen needs a target URL")
		}
		targets = []string{cfg.TargetURL}
	}
	if cfg.QPS <= 0 {
		cfg.QPS = 20
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.ContentType == "" {
		cfg.ContentType = ContentTypeEvio
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}

	rep := &LoadReport{Metrics: reg, OfferedQPS: cfg.QPS}
	hist := reg.Stage("loadgen_latency")
	var sent, ok2xx, rejected, failed, skipped atomic.Int64
	tallies := make([]*targetTally, len(targets))
	for i, u := range targets {
		tallies[i] = &targetTally{url: u}
	}
	var rr atomic.Int64 // round-robin cursor across targets

	jobs := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				tally := tallies[int(rr.Add(1)-1)%len(tallies)]
				t0 := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					tally.url, bytes.NewReader(cfg.Body))
				if err != nil {
					failed.Add(1)
					tally.failed.Add(1)
					continue
				}
				req.Header.Set("Content-Type", cfg.ContentType)
				sent.Add(1)
				tally.sent.Add(1)
				resp, err := client.Do(req)
				if err != nil {
					failed.Add(1)
					tally.failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				hist.Observe(time.Since(t0))
				switch {
				case resp.StatusCode >= 200 && resp.StatusCode < 300:
					ok2xx.Add(1)
					tally.ok.Add(1)
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected.Add(1)
					tally.rejected.Add(1)
				default:
					failed.Add(1)
					tally.failed.Add(1)
				}
			}
		}()
	}

	start := time.Now()
	interval := time.Duration(float64(time.Second) / cfg.QPS)
	ticker := time.NewTicker(interval)
	deadline := time.NewTimer(cfg.Duration)
loop:
	for {
		select {
		case <-ticker.C:
			select {
			case jobs <- struct{}{}:
			default:
				skipped.Add(1) // every worker busy: offered load exceeded
			}
		case <-deadline.C:
			break loop
		case <-ctx.Done():
			break loop
		}
	}
	ticker.Stop()
	deadline.Stop()
	close(jobs)
	wg.Wait()

	rep.Sent = sent.Load()
	rep.OK = ok2xx.Load()
	rep.Rejected = rejected.Load()
	rep.Failed = failed.Load()
	rep.Skipped = skipped.Load()
	rep.Elapsed = time.Since(start)
	if rep.Elapsed > 0 {
		rep.AchievedQPS = float64(rep.OK+rep.Rejected+rep.Failed) / rep.Elapsed.Seconds()
		rep.GoodQPS = float64(rep.OK) / rep.Elapsed.Seconds()
	}
	rep.Latency = hist.Snapshot()
	for _, t := range tallies {
		rep.PerTarget = append(rep.PerTarget, TargetCount{
			URL:      t.url,
			Sent:     t.sent.Load(),
			OK:       t.ok.Load(),
			Rejected: t.rejected.Load(),
			Failed:   t.failed.Load(),
		})
	}
	return rep, ctx.Err()
}

// RunSaturation sweeps the offered rate across qpsSteps, running the base
// config at each step (fresh registry per step so percentiles don't mix
// load levels), and returns one report per step. The resulting curve —
// offered vs. good QPS with tail latency — is how fleet capacity is read:
// good QPS tracks offered until saturation, then flattens while p99 and
// the 429 rate climb.
func RunSaturation(ctx context.Context, base LoadConfig, qpsSteps []float64) ([]*LoadReport, error) {
	if len(qpsSteps) == 0 {
		return nil, fmt.Errorf("serve: saturation sweep needs at least one QPS step")
	}
	var out []*LoadReport
	for _, qps := range qpsSteps {
		cfg := base
		cfg.QPS = qps
		cfg.Metrics = nil // one registry per step
		rep, err := RunLoad(ctx, cfg)
		if rep != nil {
			out = append(out, rep)
		}
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// WriteText renders the report for terminals and CI logs.
func (r *LoadReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "loadgen: %d sent in %.1fs (%.1f req/s achieved)\n",
		r.Sent, r.Elapsed.Seconds(), r.AchievedQPS)
	fmt.Fprintf(w, "  ok %d, rejected(429) %d, failed %d, skipped %d\n",
		r.OK, r.Rejected, r.Failed, r.Skipped)
	fmt.Fprintf(w, "  latency ms: p50 %.2f, p90 %.2f, p99 %.2f, max %.2f (n=%d)\n",
		r.Latency.P50Ms, r.Latency.P90Ms, r.Latency.P99Ms, r.Latency.MaxMs, r.Latency.Count)
	if len(r.PerTarget) > 1 {
		for _, t := range r.PerTarget {
			fmt.Fprintf(w, "  target %-40s sent %6d, ok %6d, rejected %5d, failed %5d\n",
				t.URL, t.Sent, t.OK, t.Rejected, t.Failed)
		}
	}
}

// WriteSaturationText renders a sweep as one table, a row per step.
func WriteSaturationText(w io.Writer, reports []*LoadReport) {
	fmt.Fprintf(w, "saturation sweep (%d steps)\n", len(reports))
	fmt.Fprintf(w, "  %10s %12s %10s %8s %8s %8s %10s %10s %10s\n",
		"offered", "achieved", "good", "ok", "rej429", "failed", "p50(ms)", "p90(ms)", "p99(ms)")
	for _, r := range reports {
		fmt.Fprintf(w, "  %10.1f %12.1f %10.1f %8d %8d %8d %10.2f %10.2f %10.2f\n",
			r.OfferedQPS, r.AchievedQPS, r.GoodQPS, r.OK, r.Rejected, r.Failed,
			r.Latency.P50Ms, r.Latency.P90Ms, r.Latency.P99Ms)
	}
}
