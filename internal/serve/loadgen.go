package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// LoadConfig drives RunLoad, the built-in load generator (adaptserve
// -loadgen). It replays one request body at a target rate so service
// throughput claims are reproducible: same body, same QPS, same report.
type LoadConfig struct {
	// TargetURL is the full endpoint URL, e.g.
	// "http://127.0.0.1:8080/v1/localize".
	TargetURL string
	// Body is the request payload, sent verbatim on every request.
	Body []byte
	// ContentType of Body (default ContentTypeEvio).
	ContentType string
	// QPS is the open-loop request rate (default 20).
	QPS float64
	// Duration bounds the run (default 5s).
	Duration time.Duration
	// Concurrency is the worker count; requests beyond it are dropped at
	// the generator (counted as Skipped) rather than queued without bound,
	// keeping the offered rate honest under a slow server (default 8).
	Concurrency int
	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client
	// Metrics receives the latency histogram ("loadgen_latency") and
	// outcome counters; nil creates a fresh registry.
	Metrics *obs.Registry
}

// LoadReport summarizes one load-generator run. Latency percentiles come
// from the same obs histogram machinery the server itself reports with.
type LoadReport struct {
	Sent     int64
	OK       int64
	Rejected int64 // 429 backpressure responses
	Failed   int64 // transport errors and non-200/429 statuses
	Skipped  int64 // ticks dropped because all workers were busy
	Elapsed  time.Duration
	// AchievedQPS is completed requests (all outcomes) per second.
	AchievedQPS float64
	// Latency summarizes per-request wall time (obs √2-bucket histogram).
	Latency obs.HistogramSnapshot
	// Metrics is the registry the run recorded into.
	Metrics *obs.Registry
}

// RunLoad fires cfg.Body at cfg.TargetURL at cfg.QPS until cfg.Duration (or
// ctx cancellation) and reports outcome counts plus latency percentiles.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.TargetURL == "" {
		return nil, fmt.Errorf("serve: loadgen needs a target URL")
	}
	if cfg.QPS <= 0 {
		cfg.QPS = 20
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.ContentType == "" {
		cfg.ContentType = ContentTypeEvio
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}

	rep := &LoadReport{Metrics: reg}
	hist := reg.Stage("loadgen_latency")
	var sent, ok2xx, rejected, failed, skipped atomic.Int64

	jobs := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range jobs {
				t0 := time.Now()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					cfg.TargetURL, bytes.NewReader(cfg.Body))
				if err != nil {
					failed.Add(1)
					continue
				}
				req.Header.Set("Content-Type", cfg.ContentType)
				sent.Add(1)
				resp, err := client.Do(req)
				if err != nil {
					failed.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				hist.Observe(time.Since(t0))
				switch {
				case resp.StatusCode >= 200 && resp.StatusCode < 300:
					ok2xx.Add(1)
				case resp.StatusCode == http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					failed.Add(1)
				}
			}
		}()
	}

	start := time.Now()
	interval := time.Duration(float64(time.Second) / cfg.QPS)
	ticker := time.NewTicker(interval)
	deadline := time.NewTimer(cfg.Duration)
loop:
	for {
		select {
		case <-ticker.C:
			select {
			case jobs <- struct{}{}:
			default:
				skipped.Add(1) // every worker busy: offered load exceeded
			}
		case <-deadline.C:
			break loop
		case <-ctx.Done():
			break loop
		}
	}
	ticker.Stop()
	deadline.Stop()
	close(jobs)
	wg.Wait()

	rep.Sent = sent.Load()
	rep.OK = ok2xx.Load()
	rep.Rejected = rejected.Load()
	rep.Failed = failed.Load()
	rep.Skipped = skipped.Load()
	rep.Elapsed = time.Since(start)
	if rep.Elapsed > 0 {
		rep.AchievedQPS = float64(rep.OK+rep.Rejected+rep.Failed) / rep.Elapsed.Seconds()
	}
	rep.Latency = hist.Snapshot()
	return rep, ctx.Err()
}

// WriteText renders the report for terminals and CI logs.
func (r *LoadReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "loadgen: %d sent in %.1fs (%.1f req/s achieved)\n",
		r.Sent, r.Elapsed.Seconds(), r.AchievedQPS)
	fmt.Fprintf(w, "  ok %d, rejected(429) %d, failed %d, skipped %d\n",
		r.OK, r.Rejected, r.Failed, r.Skipped)
	fmt.Fprintf(w, "  latency ms: p50 %.2f, p90 %.2f, p99 %.2f, max %.2f (n=%d)\n",
		r.Latency.P50Ms, r.Latency.P90Ms, r.Latency.P99Ms, r.Latency.MaxMs, r.Latency.Count)
}
