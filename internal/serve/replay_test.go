package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/adapt"
	"repro/internal/background"
	"repro/internal/detector"
	"repro/internal/evio"
	"repro/internal/flightlog"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// journalBody simulates one exposure (background + a burst at t0), records
// it to a flight journal one record per event, and returns the
// concatenated segment bytes — the exact body a ground client would POST —
// plus the journal directory.
func journalBody(t *testing.T, seed uint64, t0 float64) ([]byte, string) {
	t.Helper()
	det := detector.DefaultConfig()
	bg := background.DefaultModel()
	rng := xrand.New(seed)
	events := bg.Simulate(&det, 1.0, rng)
	burst := detector.Burst{Fluence: 2.0, PolarDeg: 20, AzimuthDeg: 130}
	for _, ev := range detector.SimulateBurst(&det, burst, rng) {
		ev.ArrivalTime += t0
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].ArrivalTime < events[j].ArrivalTime
	})

	dir := filepath.Join(t.TempDir(), "fl")
	j, err := flightlog.Open(flightlog.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		blob, err := evio.Marshal([]*detector.Event{ev})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(blob); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(dir, "journal-*.flog"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("glob: %v (%d segments)", err, len(segs))
	}
	var body []byte
	for _, seg := range segs {
		b, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		body = append(body, b...)
	}
	return body, dir
}

func postReplay(t *testing.T, ts *httptest.Server, path string, body []byte) (*ReplayResponse, *http.Response) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, ContentTypeFlightLog, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp
	}
	var rr ReplayResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	return &rr, resp
}

// TestReplayMatchesDirectStream is the endpoint's determinism acceptance
// test: POSTing a recorded journal reproduces, bitwise, the alert records
// of a direct streaming-trigger run over the same journal with the same
// models — even though the service routes every localization window's NN
// inference through the shared micro-batcher.
func TestReplayMatchesDirectStream(t *testing.T) {
	bundle := tinyBundle(t)
	body, _ := journalBody(t, 7, 0.5)

	srv := New(Config{Bundle: bundle})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const rate, seed = 17718, 9
	rr, resp := postReplay(t, ts, "/v1/replay?seed=9&bkg_rate=17718", body)
	if rr == nil {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(rr.Alerts) == 0 {
		t.Fatal("replay produced no alerts; the burst should have triggered")
	}
	if rr.TruncatedBytes != 0 {
		t.Fatalf("clean journal reports %d truncated bytes", rr.TruncatedBytes)
	}
	if !rr.ML {
		t.Fatal("ML bundle was not in the loop")
	}

	// Direct reference: the same events (decoded from the same bytes)
	// through the same trigger configuration, using the bundle's own
	// network instead of the batcher.
	var events []*detector.Event
	if _, err := flightlog.ScanStream(body, func(p []byte) error {
		evs, err := evio.Unmarshal(p)
		if err != nil {
			return err
		}
		events = append(events, evs...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	inst := adapt.DefaultInstrument()
	cfg := stream.DefaultConfig(rate)
	cfg.Recon = inst.Recon
	cfg.Loc = inst.Loc
	cfg.MaxNNIters = inst.MaxNNIters
	cfg.Bundle = bundle
	cfg.Seed = seed
	p := stream.New(cfg)
	done := make(chan []stream.Record)
	go func() {
		var out []stream.Record
		for a := range p.Alerts() {
			out = append(out, a.Record())
		}
		done <- out
	}()
	for _, ev := range events {
		p.Ingest(ev)
	}
	p.Close()
	want := <-done

	if !reflect.DeepEqual(rr.Alerts, want) {
		t.Errorf("replay alerts diverged from direct stream run\n got %+v\nwant %+v", rr.Alerts, want)
	}
	if rr.Events != len(events) {
		t.Errorf("replay decoded %d events, want %d", rr.Events, len(events))
	}
}

// TestReplayTornTail: a journal cut mid-record (crash during append, or a
// partial downlink) must still replay its durable prefix and report the
// truncation.
func TestReplayTornTail(t *testing.T) {
	body, _ := journalBody(t, 11, 0.5)
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	clean, resp := postReplay(t, ts, "/v1/replay", body)
	if clean == nil {
		t.Fatalf("status %d", resp.StatusCode)
	}
	torn, resp := postReplay(t, ts, "/v1/replay", body[:len(body)-7])
	if torn == nil {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if torn.TruncatedBytes == 0 {
		t.Error("torn tail not reported")
	}
	if torn.Records != clean.Records-1 {
		t.Errorf("torn replay decoded %d records, want %d", torn.Records, clean.Records-1)
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, body := range map[string][]byte{
		"not-a-journal": []byte("hello"),
		"empty":         {},
	} {
		_, resp := postReplay(t, ts, "/v1/replay", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if r, err := ts.Client().Get(ts.URL + "/v1/replay"); err != nil || r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: %v %d, want 405", err, r.StatusCode)
	}
}
