package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestReadyzJSON checks the enriched readiness body a router consumes:
// admission occupancy, model identity, and the 200/503 semantics.
func TestReadyzJSON(t *testing.T) {
	srv := New(Config{MaxConcurrent: 3, QueueDepth: 12})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", resp.StatusCode)
	}
	var rr ReadyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatalf("readyz body not JSON: %v", err)
	}
	if !rr.Ready || rr.Draining {
		t.Errorf("idle server readyz = %+v, want ready and not draining", rr)
	}
	if rr.MaxConcurrent != 3 || rr.QueueLimit != 12 {
		t.Errorf("capacity fields = (%d, %d), want (3, 12)", rr.MaxConcurrent, rr.QueueLimit)
	}
	if rr.InFlight != 0 || rr.QueueDepth != 0 {
		t.Errorf("idle occupancy = (%d, %d), want (0, 0)", rr.InFlight, rr.QueueDepth)
	}
	if rr.ModelGeneration != 0 || rr.ModelsLoaded {
		t.Errorf("no-ML identity = (gen %d, loaded %v), want (0, false)", rr.ModelGeneration, rr.ModelsLoaded)
	}
	if rr.Backend != "float32" {
		t.Errorf("backend = %q, want float32", rr.Backend)
	}

	// Draining flips the status to 503 but the body stays parseable.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain = %d, want 503", rec.Code)
	}
	var drained ReadyzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &drained); err != nil {
		t.Fatalf("drained readyz body not JSON: %v", err)
	}
	if drained.Ready || !drained.Draining {
		t.Errorf("drained readyz = %+v, want not ready and draining", drained)
	}
}

// TestReadyzModelGeneration: installing a bundle bumps the generation a
// router fences its cache on.
func TestReadyzModelGeneration(t *testing.T) {
	srv := New(Config{Bundle: tinyBundle(t)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rr ReadyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.ModelGeneration != 1 || !rr.ModelsLoaded {
		t.Errorf("bundled identity = (gen %d, loaded %v), want (1, true)", rr.ModelGeneration, rr.ModelsLoaded)
	}
}

// TestRetryAfterJitter: the 429 hint is jittered, bounded, and not a
// constant — so a router shedding one burst across many clients doesn't
// resynchronize their retries onto the same second.
func TestRetryAfterJitter(t *testing.T) {
	srv := New(Config{MaxConcurrent: 2})
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		sec := srv.retryAfterSeconds()
		if sec < 1 || sec > 30 {
			t.Fatalf("Retry-After %ds outside [1, 30]", sec)
		}
		seen[sec] = true
	}
	// With no latency history the estimate is 1s ×U[0.5,1.5): ceil lands on
	// 1 or 2, and 200 draws make missing either side astronomically unlikely.
	if len(seen) < 2 {
		t.Errorf("Retry-After constant across 200 draws (%v), want jitter", seen)
	}
}

// TestModelIdentityHeaders: every data response carries the generation
// and backend headers the router's exact cache keys on.
func TestModelIdentityHeaders(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := evioBody(t, simulateEvents(1.0, 30, 5))
	resp, err := http.Post(ts.URL+"/v1/localize", ContentTypeEvio, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(HeaderModelGeneration); got != "0" {
		t.Errorf("%s = %q, want 0", HeaderModelGeneration, got)
	}
	if got := resp.Header.Get(HeaderBackend); got != "float32" {
		t.Errorf("%s = %q, want float32", HeaderBackend, got)
	}
}

// TestCanonicalBitwiseStable: with ?canonical=1 the only nondeterministic
// response fields (wall-clock timings) are zeroed, so identical requests
// yield identical bytes — the property the router's bitwise cache needs.
func TestCanonicalBitwiseStable(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := evioBody(t, simulateEvents(1.0, 30, 5))
	fetch := func() []byte {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/localize?seed=2&canonical=1", ContentTypeEvio, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.Bytes()
	}
	a, b := fetch(), fetch()
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical responses differ:\n%s\n%s", a, b)
	}
	var lr LocalizeResponse
	if err := json.Unmarshal(a, &lr); err != nil {
		t.Fatal(err)
	}
	var zero LocalizeResponse
	if lr.TimingMs != zero.TimingMs || lr.QueueMs != 0 {
		t.Errorf("canonical timings not zeroed: timing %+v, queue %g", lr.TimingMs, lr.QueueMs)
	}
}

// TestLoadgenMultiTarget: the open-loop generator round-robins across
// targets, tallies each one separately, and the per-target counts sum to
// the fleet-wide totals.
func TestLoadgenMultiTarget(t *testing.T) {
	var urls []string
	for i := 0; i < 2; i++ {
		srv := New(Config{MaxConcurrent: 2, QueueDepth: 16})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		urls = append(urls, ts.URL+"/v1/localize")
	}

	body := evioBody(t, simulateEvents(0.5, 20, 3))
	rep, err := RunLoad(context.Background(), LoadConfig{
		Targets:     urls,
		Body:        body,
		QPS:         40,
		Duration:    time.Second,
		Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 0 {
		t.Errorf("failed = %d, want 0", rep.Failed)
	}
	if rep.OfferedQPS != 40 {
		t.Errorf("OfferedQPS = %g, want 40", rep.OfferedQPS)
	}
	if rep.GoodQPS <= 0 {
		t.Errorf("GoodQPS = %g, want > 0", rep.GoodQPS)
	}
	if len(rep.PerTarget) != 2 {
		t.Fatalf("PerTarget rows = %d, want 2", len(rep.PerTarget))
	}
	var sent, ok int64
	for _, tc := range rep.PerTarget {
		if tc.Sent == 0 {
			t.Errorf("target %s got no traffic (round-robin broken)", tc.URL)
		}
		sent += tc.Sent
		ok += tc.OK
	}
	if sent != rep.Sent || ok != rep.OK {
		t.Errorf("per-target sums (%d sent, %d ok) != totals (%d, %d)", sent, ok, rep.Sent, rep.OK)
	}

	var out bytes.Buffer
	rep.WriteText(&out)
	if !bytes.Contains(out.Bytes(), []byte("target")) {
		t.Errorf("multi-target report missing per-target rows:\n%s", out.String())
	}
}

// TestRunSaturation: the sweep runs every step with an isolated registry
// and records the offered rate per row.
func TestRunSaturation(t *testing.T) {
	srv := New(Config{MaxConcurrent: 2, QueueDepth: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := evioBody(t, simulateEvents(0.5, 20, 3))
	steps := []float64{10, 30}
	reps, err := RunSaturation(context.Background(), LoadConfig{
		TargetURL:   ts.URL + "/v1/localize",
		Body:        body,
		Duration:    500 * time.Millisecond,
		Concurrency: 4,
	}, steps)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(steps) {
		t.Fatalf("got %d reports, want %d", len(reps), len(steps))
	}
	for i, rep := range reps {
		if rep.OfferedQPS != steps[i] {
			t.Errorf("step %d OfferedQPS = %g, want %g", i, rep.OfferedQPS, steps[i])
		}
		if rep.Metrics == reps[(i+1)%len(reps)].Metrics {
			t.Error("saturation steps share a registry; percentiles would mix load levels")
		}
	}
	var out bytes.Buffer
	WriteSaturationText(&out, reps)
	if !bytes.Contains(out.Bytes(), []byte("offered")) {
		t.Errorf("saturation table missing header:\n%s", out.String())
	}
}
