package serve

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/pipeline"
	"repro/internal/stream"
)

// Content types accepted by the event-bearing endpoints.
const (
	// ContentTypeEvio is the evio binary framing (internal/evio), the
	// compact form a telemetry or replay client should prefer.
	ContentTypeEvio = "application/x-adapt-evio"
	// ContentTypeJSON is the JSON request schema below.
	ContentTypeJSON = "application/json"
)

// Response headers stamped on every /v1/* body, identifying which weights
// and arithmetic produced it (the cache key axes of a fleet front door).
const (
	HeaderModelGeneration = "X-Adapt-Model-Generation"
	HeaderBackend         = "X-Adapt-Backend"
)

// ReadyzResponse is the JSON body of GET /readyz. The HTTP status keeps
// the binary load-balancer contract (200 send / 503 drain); the body lets
// a smarter front door weight replicas by live queue shape and verify the
// fleet serves one (model generation, backend) before caching results.
type ReadyzResponse struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
	// InFlight requests hold compute slots; QueueDepth more are admitted
	// and waiting. MaxConcurrent and QueueLimit are the respective bounds.
	InFlight      int64 `json:"in_flight"`
	QueueDepth    int64 `json:"queue_depth"`
	MaxConcurrent int   `json:"max_concurrent"`
	QueueLimit    int   `json:"queue_limit"`
	// ModelGeneration counts installs (0 = no install yet); ModelsLoaded
	// reports whether a bundle is live; Backend is the pinned arithmetic.
	ModelGeneration uint64 `json:"model_generation"`
	ModelsLoaded    bool   `json:"models_loaded"`
	Backend         string `json:"backend"`
}

// HitJSON is one detector hit in the JSON request schema. Units match
// detector.Hit: centimeters and MeV.
type HitJSON struct {
	PosCm     [3]float64 `json:"pos_cm"`
	EMeV      float64    `json:"e_mev"`
	SigmaCm   [3]float64 `json:"sigma_cm"`
	SigmaEMeV float64    `json:"sigma_e_mev"`
	Layer     int        `json:"layer"`
}

// EventJSON is one detected photon in the JSON request schema.
type EventJSON struct {
	Hits     []HitJSON `json:"hits"`
	ArrivalS float64   `json:"arrival_s,omitempty"`
}

// LocalizeRequest is the JSON body of POST /v1/localize (an evio body
// carries the events instead; seed then comes from the ?seed query
// parameter).
type LocalizeRequest struct {
	// Seed drives the solver's random sampling; 0 means 1, the default
	// used by adapt.Instrument.Localize.
	Seed   uint64      `json:"seed,omitempty"`
	Events []EventJSON `json:"events"`
}

// ClassifyRequest is the JSON body of POST /v1/classify.
type ClassifyRequest struct {
	// PolarDeg is the source polar-angle guess fed to the classifier's
	// polar input and threshold bin.
	PolarDeg float64     `json:"polar_deg"`
	Events   []EventJSON `json:"events"`
}

// Vec3 is a unit direction in instrument coordinates.
type Vec3 struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	Z float64 `json:"z"`
}

// TimingMs is the per-stage latency decomposition of one pipeline run, in
// milliseconds (the paper's Tables I/II stages).
type TimingMs struct {
	Reconstruction float64 `json:"reconstruction"`
	Setup          float64 `json:"setup"`
	BkgNN          float64 `json:"bkg_nn"`
	DEtaNN         float64 `json:"deta_nn"`
	ApproxRefine   float64 `json:"approx_refine"`
	Total          float64 `json:"total"`
}

// LocalizeResponse is the JSON body returned by POST /v1/localize.
type LocalizeResponse struct {
	// OK mirrors the solver: false means too few usable rings.
	OK bool `json:"ok"`
	// Dir is the inferred unit source direction (present when OK).
	Dir *Vec3 `json:"dir,omitempty"`
	// PolarDeg/AzimuthDeg are Dir in spherical instrument coordinates.
	PolarDeg   float64 `json:"polar_deg,omitempty"`
	AzimuthDeg float64 `json:"azimuth_deg,omitempty"`
	// ErrorRadiusDeg is the pipeline's self-reported 1σ radius.
	ErrorRadiusDeg float64 `json:"error_radius_deg,omitempty"`
	Rings          int     `json:"rings"`
	Kept           int     `json:"kept"`
	NNIterations   int     `json:"nn_iterations,omitempty"`
	// ML reports whether a model bundle was in the loop.
	ML bool `json:"ml"`
	// TimingMs is the run's own stage decomposition; QueueMs is how long
	// the request waited for admission before the run started.
	TimingMs TimingMs `json:"timing_ms"`
	QueueMs  float64  `json:"queue_ms"`
}

// ClassifyResponse is the JSON body returned by POST /v1/classify.
type ClassifyResponse struct {
	Rings    int     `json:"rings"`
	PolarDeg float64 `json:"polar_deg"`
	// Threshold is the per-polar-bin decision threshold applied.
	Threshold float64 `json:"threshold"`
	// Probs[i] is ring i's background probability, in reconstruction
	// (event) order over the rings that survived quality filters.
	Probs []float64 `json:"probs"`
	// Background[i] = Probs[i] > Threshold.
	Background []bool  `json:"background"`
	QueueMs    float64 `json:"queue_ms"`
}

// SkymapRequest is the JSON body of POST /v1/skymap (an evio body carries
// the events instead; the parameters then come from the query string:
// ?seed, ?temp, ?bands, ?refine).
type SkymapRequest struct {
	// Seed drives the solver's random sampling; 0 means 1.
	Seed uint64 `json:"seed,omitempty"`
	// Temperature is the posterior tempering divisor (0 = the calibrated
	// skymap default; 1 = the statistical-only map).
	Temperature float64 `json:"temperature,omitempty"`
	// CoarseBands / RefineFactor override the payload resolution
	// (0 = defaults; bounded by the skymap format limits).
	CoarseBands  int         `json:"coarse_bands,omitempty"`
	RefineFactor int         `json:"refine_factor,omitempty"`
	Events       []EventJSON `json:"events"`
}

// SkymapResponse is the JSON body returned by POST /v1/skymap. The field
// name skymap_b64 matches the stream alert record, so one decoder handles
// both transports.
type SkymapResponse struct {
	// OK mirrors the solver: false means too few usable rings (no map).
	OK bool `json:"ok"`
	// SkyMapB64 is the encoded downlink map (internal/skymap binary
	// format) in standard base64; PayloadBytes is its decoded size.
	SkyMapB64    string `json:"skymap_b64,omitempty"`
	PayloadBytes int    `json:"payload_bytes,omitempty"`
	// Temperature echoes the tempering the map was built with.
	Temperature float64 `json:"temperature,omitempty"`
	// PeakDir is the map's maximum-density direction; Area68Deg2 and
	// Area90Deg2 are the embedded tempered credible areas.
	PeakDir    *Vec3   `json:"peak_dir,omitempty"`
	Area68Deg2 float64 `json:"area68_deg2,omitempty"`
	Area90Deg2 float64 `json:"area90_deg2,omitempty"`
	Rings      int     `json:"rings"`
	Kept       int     `json:"kept"`
	// ML reports whether a model bundle was in the loop (mixture surface).
	ML      bool    `json:"ml"`
	QueueMs float64 `json:"queue_ms"`
}

// ReplayResponse is the JSON body returned by POST /v1/replay.
type ReplayResponse struct {
	// Events and Records count what the journal body held.
	Events  int `json:"events"`
	Records int `json:"records"`
	// TruncatedBytes is the torn tail a mid-append crash left behind the
	// last durable record (0 for a clean journal).
	TruncatedBytes int64 `json:"truncated_bytes"`
	// BkgRateHz is the trigger's quiet-sky rate, whether passed or derived.
	BkgRateHz float64 `json:"bkg_rate_hz"`
	// ML reports whether a model bundle was in the loop.
	ML bool `json:"ml"`
	// Alerts are the trigger's downlink records, in trigger order.
	Alerts  []stream.Record `json:"alerts"`
	QueueMs float64         `json:"queue_ms"`
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// toEvents converts the JSON schema to detector events, validating hit
// counts against the same bound the evio format enforces.
func toEvents(in []EventJSON) ([]*detector.Event, error) {
	out := make([]*detector.Event, len(in))
	for i := range in {
		e := &in[i]
		if len(e.Hits) > 65535 {
			return nil, fmt.Errorf("event %d: %d hits exceeds format limit", i, len(e.Hits))
		}
		ev := &detector.Event{
			ArrivalTime: e.ArrivalS,
			Hits:        make([]detector.Hit, len(e.Hits)),
		}
		for j := range e.Hits {
			h := &e.Hits[j]
			ev.Hits[j] = detector.Hit{
				Pos:    geom.Vec{X: h.PosCm[0], Y: h.PosCm[1], Z: h.PosCm[2]},
				E:      h.EMeV,
				SigmaX: h.SigmaCm[0],
				SigmaY: h.SigmaCm[1],
				SigmaZ: h.SigmaCm[2],
				SigmaE: h.SigmaEMeV,
				Layer:  h.Layer,
			}
		}
		out[i] = ev
	}
	return out, nil
}

// localizeResponse renders a pipeline result, with queue wait in ms.
func localizeResponse(res pipeline.Result, ml bool, queueMs float64) *LocalizeResponse {
	ms := func(d interface{ Seconds() float64 }) float64 { return d.Seconds() * 1e3 }
	resp := &LocalizeResponse{
		OK:           res.Loc.OK,
		Rings:        res.Rings,
		Kept:         res.Kept,
		NNIterations: res.NNIterations,
		ML:           ml,
		QueueMs:      queueMs,
		TimingMs: TimingMs{
			Reconstruction: ms(res.Timing.Reconstruction),
			Setup:          ms(res.Timing.Setup),
			BkgNN:          ms(res.Timing.BkgNN),
			DEtaNN:         ms(res.Timing.DEtaNN),
			ApproxRefine:   ms(res.Timing.ApproxRefine),
			Total:          ms(res.Timing.Total),
		},
	}
	if res.Loc.OK {
		d := res.Loc.Dir
		resp.Dir = &Vec3{X: d.X, Y: d.Y, Z: d.Z}
		resp.PolarDeg = geom.Deg(geom.Polar(d))
		resp.AzimuthDeg = geom.Deg(geom.Azimuth(d))
		resp.ErrorRadiusDeg = res.ErrorRadiusDeg
	}
	return resp
}
