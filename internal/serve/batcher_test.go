package serve

import (
	"sync"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/xrand"
)

// testNet builds a small untrained (but fixed-weight) single-output net.
func testNet() *nn.Sequential {
	return models.NewBackgroundNet(14, xrand.New(42))
}

// testCls wraps testNet in the float32 backend classifier the server
// normally hands the batcher.
func testCls(net *nn.Sequential) pipeline.BkgClassifier {
	return pipeline.FP32Classifier{Net: net}
}

// randTensor fills a rows×14 feature matrix deterministically.
func randTensor(rows int, seed uint64) *nn.Tensor {
	rng := xrand.New(seed)
	x := nn.NewTensor(rows, 14)
	for i := range x.Data {
		x.Data[i] = float32(rng.Float64()*2 - 1)
	}
	return x
}

// TestBatcherBitwiseIdentical checks the core batching invariant: outputs
// are bitwise-identical to unbatched inference, for every caller in a
// coalesced batch.
func TestBatcherBitwiseIdentical(t *testing.T) {
	net := testNet()
	reg := obs.NewRegistry()
	// Large window so the size trigger (exactly two submissions) flushes.
	b := NewBatcher(testCls(net), 64, time.Second, reg)

	x1, x2 := randTensor(32, 1), randTensor(32, 2)
	want1, want2 := net.PredictProbs(x1), net.PredictProbs(x2)

	var wg sync.WaitGroup
	got1, got2 := make([]float32, 32), make([]float32, 32)
	wg.Add(2)
	go func() { defer wg.Done(); b.ProbsInto(x1, got1) }()
	go func() { defer wg.Done(); b.ProbsInto(x2, got2) }()
	wg.Wait()

	for i := range want1 {
		if got1[i] != want1[i] {
			t.Fatalf("caller 1 row %d: batched %v != direct %v", i, got1[i], want1[i])
		}
	}
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Fatalf("caller 2 row %d: batched %v != direct %v", i, got2[i], want2[i])
		}
	}
	if reg.Counter("serve_nn_coalesced").Load() == 0 {
		t.Error("submissions were not coalesced")
	}
}

// TestBatcherWindowFlush checks the deadline trigger: a lone submission
// below the size trigger still completes within ~the window.
func TestBatcherWindowFlush(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBatcher(testCls(testNet()), 1024, 5*time.Millisecond, reg)
	x := randTensor(8, 3)
	out := make([]float32, 8)
	t0 := time.Now()
	b.ProbsInto(x, out) // must not hang waiting for more rows
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Fatalf("window flush took %v", elapsed)
	}
	if reg.Counter("serve_nn_flush_window").Load() != 1 {
		t.Errorf("flush_window = %d, want 1", reg.Counter("serve_nn_flush_window").Load())
	}
	want := testNet().PredictProbs(x)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("row %d: %v != %v", i, out[i], want[i])
		}
	}
}

// TestBatcherOversizeDirect checks submissions at/above the size trigger
// bypass the queue.
func TestBatcherOversizeDirect(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBatcher(testCls(testNet()), 16, time.Second, reg)
	x := randTensor(64, 4)
	out := make([]float32, 64)
	b.ProbsInto(x, out)
	if reg.Counter("serve_nn_direct").Load() != 1 {
		t.Errorf("direct = %d, want 1", reg.Counter("serve_nn_direct").Load())
	}
}

// TestBatcherClose checks Close flushes pending work and later submissions
// still compute (the hot-reload handoff contract).
func TestBatcherClose(t *testing.T) {
	b := NewBatcher(testCls(testNet()), 1024, time.Hour, nil) // window never fires
	x := randTensor(4, 5)
	out := make([]float32, 4)
	done := make(chan struct{})
	go func() { b.ProbsInto(x, out); close(done) }()
	// Wait until the submission is pending, then close.
	for {
		b.mu.Lock()
		n := len(b.pending)
		b.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not flush the pending submission")
	}
	// Post-close submissions run directly.
	out2 := make([]float32, 4)
	b.ProbsInto(x, out2)
	for i := range out {
		if out[i] != out2[i] {
			t.Fatalf("row %d: pre-close %v != post-close %v", i, out[i], out2[i])
		}
	}
}

// TestBatcherZeroRows must be a no-op.
func TestBatcherZeroRows(t *testing.T) {
	b := NewBatcher(testCls(testNet()), 16, time.Millisecond, nil)
	b.ProbsInto(nn.NewTensor(0, 14), nil)
}
